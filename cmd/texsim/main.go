// Command texsim runs one workload through one texture cache configuration
// and prints a transaction report: L1/L2 hit rates, host and local memory
// traffic, TLB behaviour, and working-set statistics.
//
// Examples:
//
//	texsim -workload village -l1 2048 -l2mb 2
//	texsim -workload city -mode bilinear -l2mb 0          # pull architecture
//	texsim -workload village -l2mb 4 -l2tile 32 -policy lru -zfirst
//
// With -sweep the workload is rendered once and the reference stream is
// replayed through the canonical cache sweep (the same 13 specs the
// experiment suite uses; -specs selects a comma-separated subset) on the
// parallel sweep engine; -parallel bounds the replay worker pool,
// -renderworkers the frame-parallel render farm (for both, 0 = GOMAXPROCS,
// 1 = the serial reference path), and -replayworkers shards each spec
// group's replay into that many checkpoint-chained frame ranges
// (0 or 1 = whole-stream replay per group):
//
//	texsim -workload city -sweep -parallel 4 -renderworkers 4 -replayworkers 4 -specs pull-2k,l2-2m
//
// With -sweep -fast the replay collapses to one instrumented render: the
// analytic reuse model (internal/model/reusemodel) predicts every
// model-reachable spec's counters from the stream's sector-aware
// stack-distance profile, TLB statistics come from exact in-probe
// filters, and only specs outside the model's reach are replayed. The
// report marks modeled rows; exact sweeps run with -reuse additionally
// report the model's per-spec error:
//
//	texsim -workload city -sweep -fast
//
// Telemetry and profiling:
//
//	-metrics run.jsonl   stream per-frame counters (JSONL, or CSV via .csv)
//	-manifest run.json   record config hash, environment, totals and spans
//	-reuse hist.json     reuse-distance histogram over L2 block addresses
//	-trace out.json      worker-attributed Chrome trace_event file — open it
//	                     in Perfetto (ui.perfetto.dev) or chrome://tracing;
//	                     also prints the aggregated phase/straggler report
//	-monitor addr        serve live JSON run snapshots over HTTP while the
//	                     run is in flight (GET /snapshot, GET /trace)
//	-spans out.jsonl     write the texscope phase-span log (read it back with
//	                     tracetool spans)
//	-cpuprofile cpu.pb   CPU profile; -memprofile heap.pb heap profile
//
//	texsim -workload village -sweep -metrics run.jsonl -manifest run.json
//	texsim -workload city -sweep -parallel 4 -trace sweep.json
//	texsim -workload city -sweep -monitor localhost:8844
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"texcache/internal/cache"
	"texcache/internal/core"
	"texcache/internal/experiments"
	"texcache/internal/raster"
	"texcache/internal/telemetry"
	"texcache/internal/texture"
	"texcache/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	wl := flag.String("workload", "village", "village | city | mall")
	width := flag.Int("width", 512, "screen width")
	height := flag.Int("height", 384, "screen height")
	frames := flag.Int("frames", 60, "frames to simulate (0 = paper scale)")
	mode := flag.String("mode", "trilinear", "point | bilinear | trilinear")
	l1 := flag.Int("l1", 2048, "L1 cache bytes")
	l2mb := flag.Int("l2mb", 2, "L2 cache MB (0 = pull architecture)")
	l2tile := flag.Int("l2tile", 16, "L2 tile edge texels (8 | 16 | 32)")
	policy := flag.String("policy", "clock", "clock | lru | random")
	tlb := flag.Int("tlb", 16, "TLB entries")
	zfirst := flag.Bool("zfirst", false, "depth test before texture access")
	nosector := flag.Bool("nosector", false, "disable sector mapping")
	stats := flag.Bool("stats", false, "collect working-set statistics")
	sweep := flag.Bool("sweep", false, "replay the rendered stream through the canonical cache sweep")
	fast := flag.Bool("fast", false,
		"with -sweep: predict model-reachable specs analytically from one instrumented render")
	parallel := flag.Int("parallel", 0, "sweep worker pool size (0 = GOMAXPROCS, 1 = serial)")
	replayWorkers := flag.Int("replayworkers", 0,
		"frame-range shards per sweep spec group (0 or 1 = whole-stream replay)")
	renderWorkers := flag.Int("renderworkers", 0,
		"render farm size for -sweep (0 = GOMAXPROCS, 1 = serial render pass)")
	specsArg := flag.String("specs", "all", `comma-separated sweep spec names, or "all" (with -sweep)`)
	metricsPath := flag.String("metrics", "", "write the per-frame metric stream here (.csv = CSV, else JSONL)")
	manifestPath := flag.String("manifest", "", "write a run manifest (config hash, environment, totals, spans) here")
	reusePath := flag.String("reuse", "", "write a reuse-distance histogram over L2 block addresses here")
	tracePath := flag.String("trace", "",
		"write a worker-attributed Chrome trace_event file (Perfetto) here and print the phase report")
	monitorAddr := flag.String("monitor", "",
		"serve live run snapshots as JSON over HTTP on this address while running")
	spansPath := flag.String("spans", "", "write the texscope phase-span log (JSONL, for tracetool spans) here")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile here")
	memprofile := flag.String("memprofile", "", "write a heap profile here")
	flag.Parse()

	var w *workload.Workload
	switch *wl {
	case "village":
		w = workload.Village()
	case "city":
		w = workload.City()
	case "mall":
		w = workload.Mall()
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		return 2
	}

	cfg := core.Config{
		Width: *width, Height: *height, Frames: *frames,
		L1Bytes:        *l1,
		TLBEntries:     *tlb,
		ZBeforeTexture: *zfirst,
	}
	switch *mode {
	case "point":
		cfg.Mode = raster.Point
	case "bilinear":
		cfg.Mode = raster.Bilinear
	case "trilinear":
		cfg.Mode = raster.Trilinear
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		return 2
	}
	if *l2mb > 0 {
		var pol cache.PolicyKind
		switch *policy {
		case "clock":
			pol = cache.Clock
		case "lru":
			pol = cache.TrueLRU
		case "random":
			pol = cache.Random
		default:
			fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
			return 2
		}
		cfg.L2 = &cache.L2Config{
			SizeBytes:       *l2mb << 20,
			Layout:          texture.TileLayout{L2Size: *l2tile, L1Size: 4},
			Policy:          pol,
			NoSectorMapping: *nosector,
		}
	}
	if *stats {
		cfg.StatLayouts = []texture.TileLayout{{L2Size: 16, L1Size: 4}}
	}
	cfg.CollectReuse = *reusePath != ""

	if *fast && !*sweep {
		fmt.Fprintln(os.Stderr, "texsim: -fast only applies to -sweep runs")
		return 2
	}

	var specs []core.CacheSpec
	if *sweep {
		var err error
		if specs, err = selectSpecs(*specsArg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	// Telemetry plumbing: the metric stream goes to -metrics, totals
	// accumulate for the manifest, and the manifest run gets a wall-clock
	// tracer whose spans ride along as sidecar data.
	var totals telemetry.Totals
	emitters := []telemetry.Emitter{&totals}
	var flushMetrics func() error
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		bw := bufio.NewWriter(f)
		var sink telemetry.Emitter
		var sinkErr func() error
		if strings.HasSuffix(*metricsPath, ".csv") {
			s := telemetry.NewCSV(bw)
			sink, sinkErr = s, s.Err
		} else {
			s := telemetry.NewJSONL(bw)
			sink, sinkErr = s, s.Err
		}
		emitters = append(emitters, sink)
		flushMetrics = func() error {
			if err := sinkErr(); err != nil {
				_ = f.Close()
				return err
			}
			if err := bw.Flush(); err != nil {
				_ = f.Close()
				return err
			}
			return f.Close()
		}
	}
	cfg.Metrics = telemetry.Tee(emitters...)
	if *manifestPath != "" || *spansPath != "" {
		cfg.Tracer = telemetry.NewTracer(telemetry.NewWallClock())
	}
	if *tracePath != "" || *monitorAddr != "" {
		cfg.Trace = telemetry.NewTrace(telemetry.NewWallClock())
	}
	if *monitorAddr != "" {
		monFrames := *frames
		if monFrames <= 0 {
			monFrames = w.Frames
		}
		stop, err := startMonitor(*monitorAddr, cfg.Trace, monFrames)
		if err != nil {
			fmt.Fprintln(os.Stderr, "texsim: monitor:", err)
			return 1
		}
		defer stop()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			_ = f.Close()
		}()
	}

	var reuse *telemetry.ReuseHistogram
	var modelErrs []telemetry.SpecModelError
	simFrames := 0
	if *sweep {
		cfg.Parallelism = *parallel
		cfg.RenderWorkers = *renderWorkers
		cfg.ReplayWorkers = *replayWorkers
		cfg.FastSweep = *fast
		cmp, err := core.RunComparison(w, cfg, specs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		reportSweep(w, cfg, specs, cmp)
		reuse = cmp.Reuse
		modelErrs = cmp.ModelErrors()
		simFrames = len(cmp.FramePixels)
	} else {
		res, err := core.Run(w, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		report(w, cfg, res)
		reuse = res.Reuse
		simFrames = len(res.Frames)
	}

	if flushMetrics != nil {
		if err := flushMetrics(); err != nil {
			fmt.Fprintln(os.Stderr, "texsim: writing metrics:", err)
			return 1
		}
	}
	if *reusePath != "" {
		if err := writeReuse(*reusePath, reuse); err != nil {
			fmt.Fprintln(os.Stderr, "texsim: writing reuse histogram:", err)
			return 1
		}
	}
	if *manifestPath != "" {
		if err := writeManifest(*manifestPath, w, cfg, specs, *sweep, simFrames, totals.T, modelErrs); err != nil {
			fmt.Fprintln(os.Stderr, "texsim: writing manifest:", err)
			return 1
		}
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath, cfg.Trace); err != nil {
			fmt.Fprintln(os.Stderr, "texsim: writing trace:", err)
			return 1
		}
	}
	if *spansPath != "" {
		if err := writeSpans(*spansPath, cfg.Tracer); err != nil {
			fmt.Fprintln(os.Stderr, "texsim: writing spans:", err)
			return 1
		}
	}
	return 0
}

// startMonitor serves live run snapshots over HTTP until the returned
// stop function is called. Listening before returning means a caller
// that polls immediately after texsim prints the address never races
// the socket.
func startMonitor(addr string, tr *telemetry.Trace, frames int) (stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: telemetry.NewMonitor(tr, frames)}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "texsim: monitor:", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "texsim: monitor listening on http://%s/\n", ln.Addr())
	return func() { _ = srv.Close() }, nil
}

// writeTrace exports the run's Chrome trace_event file and prints the
// aggregated phase report to stdout.
func writeTrace(path string, tr *telemetry.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\ntrace written to %s (open in Perfetto or chrome://tracing)\n", path)
	return tr.Report().WriteText(os.Stdout)
}

// writeSpans writes the texscope phase-span log as JSONL, the shape
// tracetool spans reads back.
func writeSpans(path string, tr *telemetry.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// selectSpecs resolves the -specs argument against the canonical sweep.
// An empty or unknown name is a usage error naming every valid spec, so a
// typo cannot silently sweep nothing.
func selectSpecs(arg string) ([]core.CacheSpec, error) {
	all := experiments.SweepSpecs()
	if strings.TrimSpace(arg) == "all" {
		return all, nil
	}
	valid := make([]string, 0, len(all))
	byName := make(map[string]core.CacheSpec, len(all))
	for _, s := range all {
		valid = append(valid, s.Name)
		byName[s.Name] = s
	}
	names := strings.Split(arg, ",")
	specs := make([]core.CacheSpec, 0, len(names))
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		s, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("texsim: unknown sweep spec %q; valid specs: %s",
				name, strings.Join(valid, ", "))
		}
		specs = append(specs, s)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("texsim: -specs selected no sweep specs; valid specs: %s",
			strings.Join(valid, ", "))
	}
	return specs, nil
}

// writeReuse writes the reuse-distance histogram artifact.
func writeReuse(path string, h *telemetry.ReuseHistogram) error {
	if h == nil {
		return fmt.Errorf("no histogram collected")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := h.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// writeManifest records the run's identity: configuration fingerprint,
// environment, spec list, stream totals, any recorded phase spans, and —
// for sweeps with a reuse profile — the per-spec model report.
func writeManifest(path string, w *workload.Workload, cfg core.Config,
	specs []core.CacheSpec, sweep bool, frames int, totals telemetry.RunTotals,
	model []telemetry.SpecModelError) error {
	tool := "texsim"
	parts := []string{
		w.Name,
		fmt.Sprintf("%dx%d", cfg.Width, cfg.Height),
		fmt.Sprintf("frames=%d", frames),
		fmt.Sprintf("mode=%v", cfg.Mode),
		fmt.Sprintf("l1=%d", cfg.L1Bytes),
		fmt.Sprintf("tlb=%d", cfg.TLBEntries),
		fmt.Sprintf("zfirst=%v", cfg.ZBeforeTexture),
	}
	if cfg.L2 != nil {
		parts = append(parts, fmt.Sprintf("l2=%d/%d/%v/nosector=%v",
			cfg.L2.SizeBytes, cfg.L2.Layout.L2Size, cfg.L2.Policy, cfg.L2.NoSectorMapping))
	}
	m := telemetry.NewManifest(tool)
	if sweep {
		m.Tool = "texsim -sweep"
		for _, s := range specs {
			m.Specs = append(m.Specs, s.Name)
			parts = append(parts, "spec="+s.Name)
		}
	}
	m.ConfigHash = telemetry.ConfigHash(parts...)
	m.Workload = w.Name
	m.Frames = frames
	m.Totals = totals
	m.Spans = cfg.Tracer.Spans()
	m.Model = model

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// reportSweep prints one compact row per swept spec. When a reuse
// profile was collected, a trailing model column distinguishes modeled
// rows from exact replays and reports the per-spec model error where
// both sides exist.
func reportSweep(w *workload.Workload, cfg core.Config, specs []core.CacheSpec, cmp *core.Comparison) {
	fmt.Printf("workload %s: %d frames at %dx%d (%v)\n",
		w.Name, len(cmp.FramePixels), cfg.Width, cfg.Height, cfg.Mode)
	hasModel := len(cmp.Model) > 0
	fmt.Printf("%-10s %10s %10s %10s %14s",
		"spec", "L1 hit", "L2 full", "TLB hit", "host MB/frame")
	if hasModel {
		fmt.Printf("  %s", "model")
	}
	fmt.Println()
	for i, spec := range specs {
		res := cmp.Results[i]
		t := res.Totals
		l2 := "-"
		tlb := "-"
		if spec.L2 != nil {
			l2 = fmt.Sprintf("%.2f%%", 100*t.L2.FullHitRate())
			if spec.TLBEntries > 0 {
				tlb = fmt.Sprintf("%.2f%%", 100*t.TLB.HitRate())
			}
		}
		fmt.Printf("%-10s %9.2f%% %10s %10s %14.3f",
			spec.Name, 100*t.L1.HitRate(), l2, tlb, res.AvgHostMBPerFrame())
		if hasModel {
			fmt.Printf("  %s", modelNote(cmp.Model[i]))
		}
		fmt.Println()
	}
}

// modelNote summarizes one spec's standing with the analytic model.
func modelNote(m core.SpecModel) string {
	switch {
	case !m.Modeled:
		return "exact (" + m.Unreachable + ")"
	case m.HasExact:
		return fmt.Sprintf("err L1 %.2f%% / L2 %.2f%%",
			100*m.Err.L1AbsErr, 100*m.Err.L2AbsErr)
	default:
		return "modeled"
	}
}

func report(w *workload.Workload, cfg core.Config, res *core.Results) {
	n := float64(len(res.Frames))
	t := res.Totals
	fmt.Printf("workload %s: %d textures (%.1f MB host), %d triangles, %d frames at %dx%d (%v)\n",
		w.Name, w.Scene.Textures.Len(),
		float64(w.Scene.Textures.HostBytes())/(1<<20),
		w.Scene.TriangleCount(), len(res.Frames), cfg.Width, cfg.Height, cfg.Mode)

	fmt.Printf("\nL1 cache (%d KB, 2-way, 64B lines):\n", cfg.L1Bytes/1024)
	fmt.Printf("  accesses   %14d\n", t.L1.Accesses)
	fmt.Printf("  hit rate   %14.2f%%\n", 100*t.L1.HitRate())

	if cfg.L2 != nil {
		fmt.Printf("\nL2 cache (%d MB, %dx%d tiles, %s):\n",
			cfg.L2.SizeBytes>>20, cfg.L2.Layout.L2Size, cfg.L2.Layout.L2Size,
			cfg.L2.Policy)
		fmt.Printf("  full hits  %14d (%.2f%%)\n", t.L2.FullHits, 100*t.L2.FullHitRate())
		fmt.Printf("  partial    %14d (%.2f%%)\n", t.L2.PartialHits, 100*t.L2.PartialHitRate())
		fmt.Printf("  misses     %14d\n", t.L2.FullMisses)
		fmt.Printf("  evictions  %14d (max victim search %d)\n", t.L2.Evictions, t.L2.MaxSearch)
		if cfg.TLBEntries > 0 {
			fmt.Printf("  TLB        %14.2f%% hit (%d entries)\n",
				100*t.TLB.HitRate(), cfg.TLBEntries)
		}
	} else {
		fmt.Printf("\npull architecture (no L2)\n")
	}

	fmt.Printf("\ntraffic per frame:\n")
	fmt.Printf("  host (AGP)      %10.3f MB\n", float64(t.HostBytes)/n/(1<<20))
	fmt.Printf("  L2 -> L1 fills  %10.3f MB\n", float64(t.L2ReadBytes)/n/(1<<20))
	fmt.Printf("  host -> L2      %10.3f MB\n", float64(t.L2WriteBytes)/n/(1<<20))
	fmt.Printf("  at 30 Hz, host bandwidth = %.1f MB/s\n",
		float64(t.HostBytes)/n*30/(1<<20))

	if res.Summary != nil {
		s := res.Summary
		fmt.Printf("\nworking set (point of view of §4):\n")
		fmt.Printf("  depth complexity  %6.2f\n", s.DepthComplexity)
		ls, ok := s.Layout(texture.TileLayout{L2Size: 16, L1Size: 4})
		if ok {
			fmt.Printf("  16x16 blocks/frame %8.0f (%.2f MB), %.0f new (%.0f KB)\n",
				ls.AvgBlocks, ls.AvgBytes/(1<<20),
				ls.AvgNewBlocks, ls.AvgNewBytes/1024)
			fmt.Printf("  block utilization  %8.2f\n", ls.Utilization)
		}
		fmt.Printf("  min push memory    %8.2f MB avg, %.2f MB peak\n",
			s.AvgPushBytes/(1<<20), float64(s.MaxPushBytes)/(1<<20))
		var total int64
		for _, n := range s.LevelRefs {
			total += n
		}
		if total > 0 {
			fmt.Printf("  MIP level histogram:\n")
			for m, refs := range s.LevelRefs {
				if refs > 0 {
					fmt.Printf("    level %2d %6.1f%%\n",
						m, 100*float64(refs)/float64(total))
				}
			}
		}
	}
}
