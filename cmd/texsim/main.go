// Command texsim runs one workload through one texture cache configuration
// and prints a transaction report: L1/L2 hit rates, host and local memory
// traffic, TLB behaviour, and working-set statistics.
//
// Examples:
//
//	texsim -workload village -l1 2048 -l2mb 2
//	texsim -workload city -mode bilinear -l2mb 0          # pull architecture
//	texsim -workload village -l2mb 4 -l2tile 32 -policy lru -zfirst
//
// With -sweep the workload is rendered once and the reference stream is
// replayed through a small cache sweep (pull at the chosen L1 size, plus
// 2/4/8 MB L2 behind it) on the parallel sweep engine; -parallel bounds
// the worker pool (0 = GOMAXPROCS, 1 = serial reference engine):
//
//	texsim -workload city -sweep -parallel 4
package main

import (
	"flag"
	"fmt"
	"os"

	"texcache/internal/cache"
	"texcache/internal/core"
	"texcache/internal/raster"
	"texcache/internal/texture"
	"texcache/internal/workload"
)

func main() {
	wl := flag.String("workload", "village", "village | city | mall")
	width := flag.Int("width", 512, "screen width")
	height := flag.Int("height", 384, "screen height")
	frames := flag.Int("frames", 60, "frames to simulate (0 = paper scale)")
	mode := flag.String("mode", "trilinear", "point | bilinear | trilinear")
	l1 := flag.Int("l1", 2048, "L1 cache bytes")
	l2mb := flag.Int("l2mb", 2, "L2 cache MB (0 = pull architecture)")
	l2tile := flag.Int("l2tile", 16, "L2 tile edge texels (8 | 16 | 32)")
	policy := flag.String("policy", "clock", "clock | lru | random")
	tlb := flag.Int("tlb", 16, "TLB entries")
	zfirst := flag.Bool("zfirst", false, "depth test before texture access")
	nosector := flag.Bool("nosector", false, "disable sector mapping")
	stats := flag.Bool("stats", false, "collect working-set statistics")
	sweep := flag.Bool("sweep", false, "replay the rendered stream through a cache sweep")
	parallel := flag.Int("parallel", 0, "sweep worker pool size (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	var w *workload.Workload
	switch *wl {
	case "village":
		w = workload.Village()
	case "city":
		w = workload.City()
	case "mall":
		w = workload.Mall()
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}

	cfg := core.Config{
		Width: *width, Height: *height, Frames: *frames,
		L1Bytes:        *l1,
		TLBEntries:     *tlb,
		ZBeforeTexture: *zfirst,
	}
	switch *mode {
	case "point":
		cfg.Mode = raster.Point
	case "bilinear":
		cfg.Mode = raster.Bilinear
	case "trilinear":
		cfg.Mode = raster.Trilinear
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if *l2mb > 0 {
		var pol cache.PolicyKind
		switch *policy {
		case "clock":
			pol = cache.Clock
		case "lru":
			pol = cache.TrueLRU
		case "random":
			pol = cache.Random
		default:
			fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
			os.Exit(2)
		}
		cfg.L2 = &cache.L2Config{
			SizeBytes:       *l2mb << 20,
			Layout:          texture.TileLayout{L2Size: *l2tile, L1Size: 4},
			Policy:          pol,
			NoSectorMapping: *nosector,
		}
	}
	if *stats {
		cfg.StatLayouts = []texture.TileLayout{{L2Size: 16, L1Size: 4}}
	}

	if *sweep {
		cfg.Parallelism = *parallel
		if err := runSweep(w, cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	res, err := core.Run(w, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report(w, cfg, res)
}

// runSweep renders the workload once and replays the reference stream
// through the pull architecture at the chosen L1 size plus 2/4/8 MB L2
// configurations, printing one compact row per spec.
func runSweep(w *workload.Workload, cfg core.Config) error {
	specs := []core.CacheSpec{
		{Name: fmt.Sprintf("pull-%dk", cfg.L1Bytes/1024), L1Bytes: cfg.L1Bytes},
	}
	for _, mb := range []int{2, 4, 8} {
		specs = append(specs, core.CacheSpec{
			Name:    fmt.Sprintf("l2-%dm", mb),
			L1Bytes: cfg.L1Bytes,
			L2: &cache.L2Config{
				SizeBytes: mb << 20,
				Layout:    texture.TileLayout{L2Size: 16, L1Size: 4},
				Policy:    cache.Clock,
			},
			TLBEntries: cfg.TLBEntries,
		})
	}
	cmp, err := core.RunComparison(w, cfg, specs)
	if err != nil {
		return err
	}
	fmt.Printf("workload %s: %d frames at %dx%d (%v)\n",
		w.Name, len(cmp.Results[0].Frames), cfg.Width, cfg.Height, cfg.Mode)
	fmt.Printf("%-10s %10s %10s %10s %14s\n",
		"spec", "L1 hit", "L2 full", "TLB hit", "host MB/frame")
	for i, spec := range specs {
		res := cmp.Results[i]
		t := res.Totals
		l2 := "-"
		tlb := "-"
		if spec.L2 != nil {
			l2 = fmt.Sprintf("%.2f%%", 100*t.L2.FullHitRate())
			if spec.TLBEntries > 0 {
				tlb = fmt.Sprintf("%.2f%%", 100*t.TLB.HitRate())
			}
		}
		fmt.Printf("%-10s %9.2f%% %10s %10s %14.3f\n",
			spec.Name, 100*t.L1.HitRate(), l2, tlb, res.AvgHostMBPerFrame())
	}
	return nil
}

func report(w *workload.Workload, cfg core.Config, res *core.Results) {
	n := float64(len(res.Frames))
	t := res.Totals
	fmt.Printf("workload %s: %d textures (%.1f MB host), %d triangles, %d frames at %dx%d (%v)\n",
		w.Name, w.Scene.Textures.Len(),
		float64(w.Scene.Textures.HostBytes())/(1<<20),
		w.Scene.TriangleCount(), len(res.Frames), cfg.Width, cfg.Height, cfg.Mode)

	fmt.Printf("\nL1 cache (%d KB, 2-way, 64B lines):\n", cfg.L1Bytes/1024)
	fmt.Printf("  accesses   %14d\n", t.L1.Accesses)
	fmt.Printf("  hit rate   %14.2f%%\n", 100*t.L1.HitRate())

	if cfg.L2 != nil {
		fmt.Printf("\nL2 cache (%d MB, %dx%d tiles, %s):\n",
			cfg.L2.SizeBytes>>20, cfg.L2.Layout.L2Size, cfg.L2.Layout.L2Size,
			cfg.L2.Policy)
		fmt.Printf("  full hits  %14d (%.2f%%)\n", t.L2.FullHits, 100*t.L2.FullHitRate())
		fmt.Printf("  partial    %14d (%.2f%%)\n", t.L2.PartialHits, 100*t.L2.PartialHitRate())
		fmt.Printf("  misses     %14d\n", t.L2.FullMisses)
		fmt.Printf("  evictions  %14d (max victim search %d)\n", t.L2.Evictions, t.L2.MaxSearch)
		if cfg.TLBEntries > 0 {
			fmt.Printf("  TLB        %14.2f%% hit (%d entries)\n",
				100*t.TLB.HitRate(), cfg.TLBEntries)
		}
	} else {
		fmt.Printf("\npull architecture (no L2)\n")
	}

	fmt.Printf("\ntraffic per frame:\n")
	fmt.Printf("  host (AGP)      %10.3f MB\n", float64(t.HostBytes)/n/(1<<20))
	fmt.Printf("  L2 -> L1 fills  %10.3f MB\n", float64(t.L2ReadBytes)/n/(1<<20))
	fmt.Printf("  host -> L2      %10.3f MB\n", float64(t.L2WriteBytes)/n/(1<<20))
	fmt.Printf("  at 30 Hz, host bandwidth = %.1f MB/s\n",
		float64(t.HostBytes)/n*30/(1<<20))

	if res.Summary != nil {
		s := res.Summary
		fmt.Printf("\nworking set (point of view of §4):\n")
		fmt.Printf("  depth complexity  %6.2f\n", s.DepthComplexity)
		ls, ok := s.Layout(texture.TileLayout{L2Size: 16, L1Size: 4})
		if ok {
			fmt.Printf("  16x16 blocks/frame %8.0f (%.2f MB), %.0f new (%.0f KB)\n",
				ls.AvgBlocks, ls.AvgBytes/(1<<20),
				ls.AvgNewBlocks, ls.AvgNewBytes/1024)
			fmt.Printf("  block utilization  %8.2f\n", ls.Utilization)
		}
		fmt.Printf("  min push memory    %8.2f MB avg, %.2f MB peak\n",
			s.AvgPushBytes/(1<<20), float64(s.MaxPushBytes)/(1<<20))
		var total int64
		for _, n := range s.LevelRefs {
			total += n
		}
		if total > 0 {
			fmt.Printf("  MIP level histogram:\n")
			for m, refs := range s.LevelRefs {
				if refs > 0 {
					fmt.Printf("    level %2d %6.1f%%\n",
						m, 100*float64(refs)/float64(total))
				}
			}
		}
	}
}
