// Command renderframes writes snapshot frames of the animations as PNG or
// PPM images — the analogue of the paper's Figure 12.
//
// Usage:
//
//	renderframes -workload village -frames 4 -out /tmp/shots
//	renderframes -workload mall -format ppm
package main

import (
	"bufio"
	"flag"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"os"
	"path/filepath"

	"texcache/internal/raster"
	"texcache/internal/scene"
	"texcache/internal/texture"
	"texcache/internal/workload"
)

func main() {
	wl := flag.String("workload", "village", "village | city | mall")
	width := flag.Int("width", 640, "image width")
	height := flag.Int("height", 480, "image height")
	frames := flag.Int("frames", 4, "number of snapshots, spread over the animation")
	outDir := flag.String("out", ".", "output directory")
	format := flag.String("format", "png", "png | ppm")
	flag.Parse()

	var w *workload.Workload
	switch *wl {
	case "village":
		w = workload.Village()
	case "city":
		w = workload.City()
	case "mall":
		w = workload.Mall()
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}
	if *format != "png" && *format != "ppm" {
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}

	r := raster.MustNew(raster.Config{
		Width: *width, Height: *height,
		Mode:        raster.Bilinear,
		Framebuffer: true,
	})
	p := scene.NewPipeline(r)
	aspect := float64(*width) / float64(*height)

	for i := 0; i < *frames; i++ {
		f := 0
		if *frames > 1 {
			f = i * (w.Frames - 1) / (*frames - 1)
		}
		cam := w.Camera(aspect, f, w.Frames)
		p.RenderFrame(w.Scene, cam)
		name := filepath.Join(*outDir,
			fmt.Sprintf("%s-%03d.%s", w.Name, f, *format))
		var err error
		if *format == "png" {
			err = writePNG(name, r.Color(), *width, *height)
		} else {
			err = writePPM(name, r.Color(), *width, *height)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (frame %d/%d)\n", name, f, w.Frames)
	}
}

// writePNG writes the framebuffer via the standard image/png encoder.
func writePNG(path string, pix []texture.RGBA, w, h int) error {
	img := image.NewNRGBA(image.Rect(0, 0, w, h))
	for i, c := range pix {
		img.SetNRGBA(i%w, i/w, color.NRGBA{R: c.R, G: c.G, B: c.B, A: 255})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := png.Encode(f, img); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// writePPM writes a binary P6 image.
func writePPM(path string, pix []texture.RGBA, w, h int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	fmt.Fprintf(bw, "P6\n%d %d\n255\n", w, h)
	for _, c := range pix {
		// The writer's error is sticky and surfaces at Flush.
		_ = bw.WriteByte(c.R)
		_ = bw.WriteByte(c.G)
		_ = bw.WriteByte(c.B)
	}
	if err := bw.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
