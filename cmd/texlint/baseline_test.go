package main

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"texcache/internal/lint"
)

func diag(file string, line int, analyzer, msg string) lint.Diagnostic {
	return lint.Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Analyzer: analyzer,
		Message:  msg,
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint.baseline")
	recorded := []lint.Diagnostic{
		diag("a.go", 10, "hotalloc", "call to append allocates"),
		diag("a.go", 20, "hotalloc", "call to append allocates"),
		diag("b.go", 3, "purity", "reads mutable package-level state"),
	}
	if err := saveBaseline(path, recorded); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	current := []lint.Diagnostic{
		// The recorded findings moved to new lines: still baselined.
		diag("a.go", 14, "hotalloc", "call to append allocates"),
		diag("a.go", 25, "hotalloc", "call to append allocates"),
		diag("b.go", 5, "purity", "reads mutable package-level state"),
		// A third identical finding exceeds the recorded multiplicity.
		diag("a.go", 30, "hotalloc", "call to append allocates"),
		// A new message is a regression.
		diag("c.go", 1, "globalmut", "write to package-level x"),
	}
	got := applyBaseline(current, base)
	if len(got) != 2 {
		t.Fatalf("applyBaseline kept %d findings, want 2: %v", len(got), got)
	}
	if got[0].Pos.Filename != "a.go" || got[0].Pos.Line != 30 {
		t.Errorf("first survivor = %v, want the over-multiplicity a.go:30", got[0])
	}
	if got[1].Pos.Filename != "c.go" || got[1].Analyzer != "globalmut" {
		t.Errorf("second survivor = %v, want the new c.go finding", got[1])
	}
}

func TestBaselineEmptyRepositoryStaysClean(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint.baseline")
	if err := saveBaseline(path, nil); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := applyBaseline(nil, base); len(got) != 0 {
		t.Fatalf("empty baseline over empty findings kept %v", got)
	}
}

func TestLoadBaselineRejectsMalformedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint.baseline")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(path); err == nil {
		t.Fatal("malformed baseline loaded without error")
	}
}
