package main

import (
	"fmt"
	"strings"

	"texcache/internal/lint"
)

// selectAnalyzers applies the -only and -skip flags to the base suite.
// -only keeps exactly the named analyzers (in registration order, so runs
// stay deterministic regardless of how the flag lists them); -skip removes
// the named ones; both together keep only minus skip. An unknown name in
// either flag is a usage error whose message lists every registered
// analyzer.
func selectAnalyzers(base []*lint.Analyzer, only, skip string) ([]*lint.Analyzer, error) {
	onlySet, err := nameSet(base, "-only", only)
	if err != nil {
		return nil, err
	}
	skipSet, err := nameSet(base, "-skip", skip)
	if err != nil {
		return nil, err
	}
	out := make([]*lint.Analyzer, 0, len(base))
	for _, a := range base {
		if onlySet != nil && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("texlint: -only/-skip selected no analyzers (registered: %s)", registered(base))
	}
	return out, nil
}

// nameSet parses one comma-separated flag value into a set, rejecting
// names that are not in the suite. A nil map means the flag was not given.
func nameSet(base []*lint.Analyzer, flagName, value string) (map[string]bool, error) {
	if value == "" {
		return nil, nil
	}
	known := make(map[string]bool, len(base))
	for _, a := range base {
		known[a.Name] = true
	}
	set := make(map[string]bool)
	for _, name := range strings.Split(value, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !known[name] {
			return nil, fmt.Errorf("texlint: %s: unknown analyzer %q (registered: %s)", flagName, name, registered(base))
		}
		set[name] = true
	}
	return set, nil
}

// registered renders the suite's analyzer names for error messages.
func registered(base []*lint.Analyzer) string {
	names := make([]string, len(base))
	for i, a := range base {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}
