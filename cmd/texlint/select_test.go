package main

import (
	"strings"
	"testing"

	"texcache/internal/lint"
)

func names(as []*lint.Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

func TestSelectAnalyzersOnly(t *testing.T) {
	got, err := selectAnalyzers(lint.All(), "mapiter,chanleak", "")
	if err != nil {
		t.Fatal(err)
	}
	// Registration order, not flag order, so runs are deterministic.
	if g := strings.Join(names(got), ","); g != "chanleak,mapiter" {
		t.Errorf("selected %q, want chanleak,mapiter", g)
	}
}

func TestSelectAnalyzersSkip(t *testing.T) {
	all := lint.All()
	got, err := selectAnalyzers(all, "", "mapiter")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(all)-1 {
		t.Fatalf("skip removed %d analyzers, want 1", len(all)-len(got))
	}
	for _, a := range got {
		if a.Name == "mapiter" {
			t.Error("skipped analyzer still selected")
		}
	}
}

func TestSelectAnalyzersOnlyAndSkipCompose(t *testing.T) {
	got, err := selectAnalyzers(lint.All(), "chanleak,wgbalance", "wgbalance")
	if err != nil {
		t.Fatal(err)
	}
	if g := strings.Join(names(got), ","); g != "chanleak" {
		t.Errorf("selected %q, want chanleak", g)
	}
}

func TestSelectAnalyzersUnknownName(t *testing.T) {
	for _, flags := range [][2]string{{"nosuch", ""}, {"", "nosuch"}} {
		_, err := selectAnalyzers(lint.All(), flags[0], flags[1])
		if err == nil {
			t.Fatalf("unknown name in %v accepted", flags)
		}
		// The usage error must list every registered analyzer.
		for _, a := range lint.All() {
			if !strings.Contains(err.Error(), a.Name) {
				t.Errorf("error %q does not list registered analyzer %s", err, a.Name)
			}
		}
	}
}

func TestSelectAnalyzersEmptySelection(t *testing.T) {
	if _, err := selectAnalyzers(lint.All(), "mapiter", "mapiter"); err == nil {
		t.Error("empty selection accepted")
	}
}

func TestSelectAnalyzersDefaultIsAll(t *testing.T) {
	got, err := selectAnalyzers(lint.All(), "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(lint.All()) {
		t.Errorf("default selection has %d analyzers, want %d", len(got), len(lint.All()))
	}
}
