// Command texlint runs the texcache static-analysis suite over the module.
//
// Usage:
//
//	go run ./cmd/texlint ./...
//	go run ./cmd/texlint -json ./internal/cache
//	go run ./cmd/texlint -list
//
// texlint loads every non-test package of the enclosing module, runs all
// analyzers (or the comma-separated -analyzers subset) and prints one
// diagnostic per line as
//
//	file:line: [analyzer] message
//
// Exit status is 0 when clean, 1 when findings were reported and 2 on a
// load or usage error. Findings are suppressed by a comment on the same
// line or the line above:
//
//	//texlint:ignore <analyzer> [reason]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"texcache/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut   = flag.Bool("json", false, "emit diagnostics as a JSON array")
		list      = flag.Bool("list", false, "list analyzers and exit")
		analyzers = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	suite := lint.All()
	if *analyzers != "" {
		var err error
		suite, err = lint.ByName(strings.Split(*analyzers, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "texlint:", err)
		return 2
	}
	root, err := lint.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "texlint:", err)
		return 2
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "texlint:", err)
		return 2
	}
	pkgs = filterPackages(pkgs, root, cwd, flag.Args())
	if len(pkgs) == 0 {
		fmt.Fprintf(os.Stderr, "texlint: no packages match %s\n", strings.Join(flag.Args(), " "))
		return 2
	}

	diags := lint.Run(pkgs, suite)
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}

	if *jsonOut {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "texlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "texlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// filterPackages restricts the loaded module to the packages named by the
// argument patterns. "./..." (or no arguments) keeps everything under the
// current directory; "dir" or "dir/..." keeps that directory (and, with
// /..., its subtree), resolved relative to the current directory.
func filterPackages(pkgs []*lint.Package, root, cwd string, patterns []string) []*lint.Package {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	type rule struct {
		dir     string // absolute
		subtree bool
	}
	var rules []rule
	for _, p := range patterns {
		subtree := false
		if strings.HasSuffix(p, "/...") {
			subtree = true
			p = strings.TrimSuffix(p, "/...")
			if p == "." || p == "" {
				p = cwd
			}
		} else if p == "..." {
			subtree = true
			p = cwd
		}
		if !filepath.IsAbs(p) {
			p = filepath.Join(cwd, p)
		}
		rules = append(rules, rule{dir: filepath.Clean(p), subtree: subtree})
	}
	keep := pkgs[:0]
	for _, pkg := range pkgs {
		dir := pkgDir(pkg, root)
		for _, r := range rules {
			if dir == r.dir || (r.subtree && strings.HasPrefix(dir+string(filepath.Separator), r.dir+string(filepath.Separator))) {
				keep = append(keep, pkg)
				break
			}
		}
	}
	return keep
}

// pkgDir recovers the package's directory from its first file position.
func pkgDir(pkg *lint.Package, root string) string {
	if len(pkg.Files) == 0 {
		return root
	}
	return filepath.Dir(pkg.Fset.Position(pkg.Files[0].Pos()).Filename)
}
