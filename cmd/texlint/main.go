// Command texlint runs the texcache static-analysis suite over the module.
//
// Usage:
//
//	go run ./cmd/texlint ./...
//	go run ./cmd/texlint -json ./internal/cache
//	go run ./cmd/texlint -list
//	go run ./cmd/texlint -only chanleak,chanprotocol,wgbalance,mapiter ./...
//	go run ./cmd/texlint -skip mapiter ./...
//	go run ./cmd/texlint -write-baseline lint.baseline ./...
//	go run ./cmd/texlint -baseline lint.baseline ./...
//
// texlint loads every non-test package of the enclosing module, runs all
// analyzers — scoped by -only (run exactly these), -skip (run all but
// these), or the legacy -analyzers list; an unknown name in any of them is
// a usage error listing the registered analyzers — and prints one
// diagnostic per line as
//
//	file:line: [analyzer] message
//
// Exit status is 0 when clean, 1 when findings were reported and 2 on a
// load or usage error. Findings are suppressed by a comment on the same
// line or the line above:
//
//	//texlint:ignore <analyzer> [reason]
//
// Package-scoped waivers come from texlint.conf.json at the module root
// (or the file named by -config): a JSON map of analyzer name to the
// import paths exempt from it, e.g.
//
//	{"allow": {"determinism": ["texcache/internal/telemetry"]}}
//
// For adopting a new analyzer over an existing codebase, -write-baseline
// records the current findings as a JSON file and -baseline suppresses
// exactly those recorded findings on later runs, so only regressions
// fail. Baseline entries match on file, analyzer and message — not line —
// so unrelated edits do not dislodge them; run both from the module root
// so the recorded file paths agree.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"texcache/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut   = flag.Bool("json", false, "emit diagnostics as a JSON array")
		list      = flag.Bool("list", false, "list analyzers and exit")
		analyzers = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		only      = flag.String("only", "", "run only these comma-separated analyzers")
		skip      = flag.String("skip", "", "run all but these comma-separated analyzers")
		baseline  = flag.String("baseline", "", "suppress findings recorded in this JSON baseline file")
		writeBase = flag.String("write-baseline", "", "record current findings to this JSON baseline file and exit clean")
		confPath  = flag.String("config", "", "package waiver file (default: "+lint.ConfigFile+" at the module root, if present)")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	suite := lint.All()
	if *analyzers != "" {
		var err error
		suite, err = lint.ByName(strings.Split(*analyzers, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	suite, err := selectAnalyzers(suite, *only, *skip)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "texlint:", err)
		return 2
	}
	root, err := lint.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "texlint:", err)
		return 2
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "texlint:", err)
		return 2
	}
	pkgs = filterPackages(pkgs, root, cwd, flag.Args())
	if len(pkgs) == 0 {
		fmt.Fprintf(os.Stderr, "texlint: no packages match %s\n", strings.Join(flag.Args(), " "))
		return 2
	}

	var conf *lint.FileConfig
	if *confPath != "" {
		data, err := os.ReadFile(*confPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "texlint:", err)
			return 2
		}
		if conf, err = lint.ParseConfig(data); err != nil {
			fmt.Fprintln(os.Stderr, "texlint:", err)
			return 2
		}
	} else if conf, err = lint.LoadConfig(root); err != nil {
		fmt.Fprintln(os.Stderr, "texlint:", err)
		return 2
	}

	diags, err := lint.RunConfigured(pkgs, suite, conf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "texlint:", err)
		return 2
	}
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}

	if *writeBase != "" {
		if err := saveBaseline(*writeBase, diags); err != nil {
			fmt.Fprintln(os.Stderr, "texlint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "texlint: recorded %d finding(s) in %s\n", len(diags), *writeBase)
		return 0
	}
	if *baseline != "" {
		base, err := loadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "texlint:", err)
			return 2
		}
		diags = applyBaseline(diags, base)
	}

	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "texlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "texlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// jsonDiag is the serialised diagnostic shared by -json and the baseline
// files.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// baselineKey identifies a finding across runs. Line and column are
// deliberately excluded: edits elsewhere in a file move findings without
// changing what they say, and a moved finding is not a new finding.
type baselineKey struct {
	File, Analyzer, Message string
}

// saveBaseline records the findings as a JSON baseline file.
func saveBaseline(path string, diags []lint.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		_ = f.Close() // the encode error is the one worth reporting
		return err
	}
	return f.Close()
}

// loadBaseline reads a baseline file into per-key multiplicities, so a
// file with two identical findings baselines exactly two.
func loadBaseline(path string) (map[baselineKey]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []jsonDiag
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	base := make(map[baselineKey]int, len(entries))
	for _, e := range entries {
		base[baselineKey{e.File, e.Analyzer, e.Message}]++
	}
	return base, nil
}

// applyBaseline drops findings recorded in the baseline, respecting
// multiplicity, and returns the remainder (the regressions).
func applyBaseline(diags []lint.Diagnostic, base map[baselineKey]int) []lint.Diagnostic {
	keep := diags[:0]
	for _, d := range diags {
		k := baselineKey{d.Pos.Filename, d.Analyzer, d.Message}
		if base[k] > 0 {
			base[k]--
			continue
		}
		keep = append(keep, d)
	}
	return keep
}

// filterPackages restricts the loaded module to the packages named by the
// argument patterns. "./..." (or no arguments) keeps everything under the
// current directory; "dir" or "dir/..." keeps that directory (and, with
// /..., its subtree), resolved relative to the current directory.
func filterPackages(pkgs []*lint.Package, root, cwd string, patterns []string) []*lint.Package {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	type rule struct {
		dir     string // absolute
		subtree bool
	}
	rules := make([]rule, 0, len(patterns))
	for _, p := range patterns {
		subtree := false
		if strings.HasSuffix(p, "/...") {
			subtree = true
			p = strings.TrimSuffix(p, "/...")
			if p == "." || p == "" {
				p = cwd
			}
		} else if p == "..." {
			subtree = true
			p = cwd
		}
		if !filepath.IsAbs(p) {
			p = filepath.Join(cwd, p)
		}
		rules = append(rules, rule{dir: filepath.Clean(p), subtree: subtree})
	}
	keep := pkgs[:0]
	for _, pkg := range pkgs {
		dir := pkgDir(pkg, root)
		for _, r := range rules {
			if dir == r.dir || (r.subtree && strings.HasPrefix(dir+string(filepath.Separator), r.dir+string(filepath.Separator))) {
				keep = append(keep, pkg)
				break
			}
		}
	}
	return keep
}

// pkgDir recovers the package's directory from its first file position.
func pkgDir(pkg *lint.Package, root string) string {
	if len(pkg.Files) == 0 {
		return root
	}
	return filepath.Dir(pkg.Fset.Position(pkg.Files[0].Pos()).Filename)
}
