// Command benchjson runs the sweep-engine benchmarks exactly once each
// and writes a machine-readable BENCH_sweep.json: per-benchmark wall time
// and allocation counts plus a run manifest, so CI can archive comparable
// performance artifacts per commit without parsing `go test -bench`
// output. One iteration is deliberate — the full 13-spec Village sweep is
// long enough to be a stable single-shot sample in CI, and the artifact
// records the environment needed to compare runs honestly.
//
// Usage:
//
//	benchjson                          # writes BENCH_sweep.json
//	benchjson -o out.json
//	benchjson -diff BENCH_baseline.json
//
// With -diff, the run is additionally compared against a previously
// written report: any benchmark whose ns/op, allocs/op or bytes/op
// regresses by more than 25% against its same-named baseline entry fails
// the run (exit status 1), which is how CI gates performance — wall time
// catches slowdowns, allocation count catches hot-path allocations that
// a noisy timer would hide, and allocated bytes catch buffer-growth
// blowups (the parallel sweep once allocated 90x the serial engine's
// bytes at an almost identical allocation count). Benchmarks present on
// only one side are reported but never fail the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"

	"texcache/internal/core"
	"texcache/internal/experiments"
	"texcache/internal/raster"
	"texcache/internal/telemetry"
	"texcache/internal/texture"
	"texcache/internal/vecmath"
	"texcache/internal/workload"
)

// regressionLimit is the per-metric ratio (new/old) above which -diff
// fails; it applies to ns/op and allocs/op alike.
const regressionLimit = 1.25

// benchResult is one benchmark's single-iteration sample.
type benchResult struct {
	Name          string `json:"name"`
	Parallelism   int    `json:"parallelism"`
	RenderWorkers int    `json:"render_workers"`
	ReplayWorkers int    `json:"replay_workers,omitempty"`
	NsPerOp       int64  `json:"ns_per_op"`
	AllocsPerOp   int64  `json:"allocs_per_op"`
	BytesPerOp    int64  `json:"bytes_per_op"`
	Frames        int    `json:"frames"`
	Specs         int    `json:"specs"`
}

// report is the artifact document.
type report struct {
	Benchmarks []benchResult      `json:"benchmarks"`
	Manifest   telemetry.Manifest `json:"manifest"`
}

func main() {
	os.Exit(run())
}

func run() int {
	out := flag.String("o", "BENCH_sweep.json", "output path")
	diff := flag.String("diff", "", "baseline report to compare against; >25% ns/op, allocs/op or bytes/op regressions fail the run")
	flag.Parse()

	scale := experiments.Bench()
	render := core.Config{
		Width:  scale.Width,
		Height: scale.Height,
		Frames: scale.VillageFrames,
		Mode:   raster.Trilinear,
	}
	specs := experiments.SweepSpecs()

	// Mirror bench_test.go's sweep benchmarks: the serial reference
	// engine, a bounded 4-worker pool, the GOMAXPROCS default (replay pool
	// and render farm both parallel), the farm-isolating variant that
	// keeps the render pass serial, the intra-spec frame-range engine
	// (four checkpoint-chained ranges per spec group), and the analytic
	// -fast engine (one instrumented render, no replay).
	cases := []struct {
		name          string
		parallelism   int
		renderWorkers int
		replayWorkers int
		fast          bool
	}{
		{"SweepSerial", 1, 1, 0, false},
		{"SweepParallel4", 4, 0, 0, false},
		{"SweepParallel", 0, 0, 0, false},
		{"SweepParallelRenderSerial", 0, 1, 0, false},
		{"SweepRanged4", 1, 0, 4, false},
		{"SweepFast", 0, 0, 0, true},
	}

	clock := telemetry.NewWallClock()
	rep := report{Manifest: telemetry.NewManifest("benchjson")}
	rep.Manifest.Workload = "village"
	rep.Manifest.Frames = render.Frames
	parts := []string{
		"village",
		fmt.Sprintf("%dx%d", render.Width, render.Height),
		fmt.Sprintf("frames=%d", render.Frames),
	}
	for _, s := range specs {
		rep.Manifest.Specs = append(rep.Manifest.Specs, s.Name)
		parts = append(parts, "spec="+s.Name)
	}
	rep.Manifest.ConfigHash = telemetry.ConfigHash(parts...)

	for _, bc := range cases {
		cfg := render
		cfg.Parallelism = bc.parallelism
		cfg.RenderWorkers = bc.renderWorkers
		cfg.ReplayWorkers = bc.replayWorkers
		cfg.FastSweep = bc.fast

		// Quiesce the heap so alloc deltas attribute to the run alone.
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := clock.Now()
		cmp, err := core.RunComparison(workload.Village(), cfg, specs)
		elapsed := clock.Now() - start
		runtime.ReadMemStats(&after)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", bc.name, err)
			return 1
		}
		rep.Benchmarks = append(rep.Benchmarks, benchResult{
			Name:          bc.name,
			Parallelism:   bc.parallelism,
			RenderWorkers: bc.renderWorkers,
			ReplayWorkers: bc.replayWorkers,
			NsPerOp:       elapsed,
			AllocsPerOp:   int64(after.Mallocs - before.Mallocs),
			BytesPerOp:    int64(after.TotalAlloc - before.TotalAlloc),
			Frames:        len(cmp.FramePixels),
			Specs:         len(cmp.Results),
		})
		fmt.Fprintf(os.Stderr, "benchjson: %-25s %12d ns/op %12d allocs/op\n",
			bc.name, elapsed, after.Mallocs-before.Mallocs)
	}

	fill, err := rasterizerFill(clock)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	rep.Benchmarks = append(rep.Benchmarks, fill)
	fmt.Fprintf(os.Stderr, "benchjson: %-25s %12d ns/op %12d allocs/op\n",
		fill.Name, fill.NsPerOp, fill.AllocsPerOp)

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		_ = f.Close()
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s\n", *out)

	if *diff != "" {
		return diffReports(*diff, rep)
	}
	return 0
}

// rasterizerFill is the per-texel hot-path sample: repeated textured quad
// fills (two triangles covering a 256x256 target under trilinear
// filtering) through the devirtualized trace sink, averaged over enough
// iterations to be a stable single-shot measurement.
func rasterizerFill(clock *telemetry.WallClock) (benchResult, error) {
	const iters = 32
	r, err := raster.New(raster.Config{Width: 256, Height: 256, Mode: raster.Trilinear})
	if err != nil {
		return benchResult{}, err
	}
	var texels int64
	r.SetSink(raster.SinkFunc(func(tid texture.ID, u, v, m int) { texels++ }))
	tex, err := texture.New("t", 256, 256, texture.RGBA8888, nil)
	if err != nil {
		return benchResult{}, err
	}
	quad := benchQuad()

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := clock.Now()
	for i := 0; i < iters; i++ {
		r.BeginFrame()
		for _, tri := range quad {
			r.DrawTriangle(tex, tri[0], tri[1], tri[2], 1)
		}
	}
	elapsed := clock.Now() - start
	runtime.ReadMemStats(&after)
	return benchResult{
		Name:        "RasterizerFill",
		NsPerOp:     elapsed / iters,
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / iters,
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / iters,
		Frames:      iters,
	}, nil
}

func benchQuad() [2][3]raster.Vertex {
	mk := func(x, y, u, v float64) raster.Vertex {
		return raster.Vertex{
			Pos: vecmath.Vec4{X: x, Y: y, Z: 0, W: 1},
			UV:  vecmath.Vec2{X: u, Y: v},
		}
	}
	bl := mk(-1, -1, 0, 1)
	br := mk(1, -1, 1, 1)
	tl := mk(-1, 1, 0, 0)
	tr := mk(1, 1, 1, 0)
	return [2][3]raster.Vertex{{tl, bl, br}, {tl, br, tr}}
}

// diffMetrics are the gated per-benchmark figures, in reporting order.
// A metric with a zero or negative baseline value is reported but not
// gated — a baseline with no recorded allocations cannot regress.
var diffMetrics = []struct {
	name string
	get  func(benchResult) int64
}{
	{"ns/op", func(b benchResult) int64 { return b.NsPerOp }},
	{"allocs/op", func(b benchResult) int64 { return b.AllocsPerOp }},
	{"bytes/op", func(b benchResult) int64 { return b.BytesPerOp }},
}

// diffReports compares the fresh report against a baseline artifact and
// fails (exit 1) when any gated metric of a same-named benchmark
// regresses beyond regressionLimit.
func diffReports(path string, cur report) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: diff:", err)
		return 1
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: diff: parsing %s: %v\n", path, err)
		return 1
	}
	return diffAgainst(os.Stderr, path, base, cur)
}

// diffAgainst is the comparison core behind -diff, split from the file
// handling so tests can drive it with synthetic reports. Output order is
// deterministic: current benchmarks in report order with one line per
// metric, then baseline-only leftovers sorted by name.
func diffAgainst(w io.Writer, path string, base, cur report) int {
	baseline := make(map[string]benchResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}

	regressed := make(map[string]bool)
	for _, b := range cur.Benchmarks {
		old, ok := baseline[b.Name]
		if !ok {
			fmt.Fprintf(w, "benchjson: diff: %s: not in baseline, skipping\n", b.Name)
			continue
		}
		delete(baseline, b.Name)
		for _, m := range diffMetrics {
			was, now := m.get(old), m.get(b)
			if was <= 0 {
				fmt.Fprintf(w, "benchjson: diff: %s: baseline %s %d, skipping\n", b.Name, m.name, was)
				continue
			}
			ratio := float64(now) / float64(was)
			verdict := "ok"
			if ratio > regressionLimit {
				verdict = "REGRESSION"
				regressed[m.name] = true
			}
			fmt.Fprintf(w, "benchjson: diff: %-25s %12d -> %12d %s (%.2fx) %s\n",
				b.Name, was, now, m.name, ratio, verdict)
		}
	}
	leftovers := make([]string, 0, len(baseline))
	for name := range baseline {
		leftovers = append(leftovers, name)
	}
	sort.Strings(leftovers)
	for _, name := range leftovers {
		fmt.Fprintf(w, "benchjson: diff: %s: in baseline only, skipping\n", name)
	}
	if len(regressed) > 0 {
		for _, m := range diffMetrics {
			if regressed[m.name] {
				fmt.Fprintf(w, "benchjson: diff: %s regressed beyond %.0f%% against %s\n",
					m.name, 100*(regressionLimit-1), path)
			}
		}
		return 1
	}
	fmt.Fprintf(w, "benchjson: diff: within %.0f%% of %s\n", 100*(regressionLimit-1), path)
	return 0
}
