// Command benchjson runs the sweep-engine benchmarks exactly once each
// and writes a machine-readable BENCH_sweep.json: per-benchmark wall time
// and allocation counts plus a run manifest, so CI can archive comparable
// performance artifacts per commit without parsing `go test -bench`
// output. One iteration is deliberate — the full 13-spec Village sweep is
// long enough to be a stable single-shot sample in CI, and the artifact
// records the environment needed to compare runs honestly.
//
// Usage:
//
//	benchjson            # writes BENCH_sweep.json in the current directory
//	benchjson -o out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"texcache/internal/core"
	"texcache/internal/experiments"
	"texcache/internal/raster"
	"texcache/internal/telemetry"
	"texcache/internal/workload"
)

// benchResult is one benchmark's single-iteration sample.
type benchResult struct {
	Name        string `json:"name"`
	Parallelism int    `json:"parallelism"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	Frames      int    `json:"frames"`
	Specs       int    `json:"specs"`
}

// report is the artifact document.
type report struct {
	Benchmarks []benchResult      `json:"benchmarks"`
	Manifest   telemetry.Manifest `json:"manifest"`
}

func main() {
	os.Exit(run())
}

func run() int {
	out := flag.String("o", "BENCH_sweep.json", "output path")
	flag.Parse()

	scale := experiments.Bench()
	render := core.Config{
		Width:  scale.Width,
		Height: scale.Height,
		Frames: scale.VillageFrames,
		Mode:   raster.Trilinear,
	}
	specs := experiments.SweepSpecs()

	// Mirror bench_test.go's sweep benchmarks: the serial reference
	// engine, a bounded 4-worker pool, and the GOMAXPROCS default.
	cases := []struct {
		name        string
		parallelism int
	}{
		{"SweepSerial", 1},
		{"SweepParallel4", 4},
		{"SweepParallel", 0},
	}

	clock := telemetry.NewWallClock()
	rep := report{Manifest: telemetry.NewManifest("benchjson")}
	rep.Manifest.Workload = "village"
	rep.Manifest.Frames = render.Frames
	parts := []string{
		"village",
		fmt.Sprintf("%dx%d", render.Width, render.Height),
		fmt.Sprintf("frames=%d", render.Frames),
	}
	for _, s := range specs {
		rep.Manifest.Specs = append(rep.Manifest.Specs, s.Name)
		parts = append(parts, "spec="+s.Name)
	}
	rep.Manifest.ConfigHash = telemetry.ConfigHash(parts...)

	for _, bc := range cases {
		cfg := render
		cfg.Parallelism = bc.parallelism

		// Quiesce the heap so alloc deltas attribute to the run alone.
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := clock.Now()
		cmp, err := core.RunComparison(workload.Village(), cfg, specs)
		elapsed := clock.Now() - start
		runtime.ReadMemStats(&after)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", bc.name, err)
			return 1
		}
		rep.Benchmarks = append(rep.Benchmarks, benchResult{
			Name:        bc.name,
			Parallelism: bc.parallelism,
			NsPerOp:     elapsed,
			AllocsPerOp: int64(after.Mallocs - before.Mallocs),
			BytesPerOp:  int64(after.TotalAlloc - before.TotalAlloc),
			Frames:      len(cmp.FramePixels),
			Specs:       len(cmp.Results),
		})
		fmt.Fprintf(os.Stderr, "benchjson: %-15s %12d ns/op %12d allocs/op\n",
			bc.name, elapsed, after.Mallocs-before.Mallocs)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		_ = f.Close()
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s\n", *out)
	return 0
}
