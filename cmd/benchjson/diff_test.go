package main

import (
	"bytes"
	"strings"
	"testing"
)

func bench(name string, ns, allocs int64) benchResult {
	return benchResult{Name: name, NsPerOp: ns, AllocsPerOp: allocs}
}

func runDiff(t *testing.T, base, cur []benchResult) (int, string) {
	t.Helper()
	var buf bytes.Buffer
	code := diffAgainst(&buf, "base.json", report{Benchmarks: base}, report{Benchmarks: cur})
	return code, buf.String()
}

func TestDiffWithinLimitPasses(t *testing.T) {
	code, out := runDiff(t,
		[]benchResult{bench("A", 1000, 100)},
		[]benchResult{bench("A", 1200, 120)}, // both +20%, under the 25% gate
	)
	if code != 0 {
		t.Fatalf("exit %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "within 25% of base.json") {
		t.Errorf("missing pass summary:\n%s", out)
	}
}

func TestDiffNsRegressionFails(t *testing.T) {
	code, out := runDiff(t,
		[]benchResult{bench("A", 1000, 100)},
		[]benchResult{bench("A", 1300, 100)},
	)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "ns/op regressed beyond 25%") {
		t.Errorf("missing ns/op failure summary:\n%s", out)
	}
	if strings.Contains(out, "allocs/op regressed") {
		t.Errorf("allocs/op wrongly blamed:\n%s", out)
	}
}

func TestDiffAllocsRegressionFailsAlone(t *testing.T) {
	// The timer is fine; only the allocation count blew past the gate.
	code, out := runDiff(t,
		[]benchResult{bench("A", 1000, 100)},
		[]benchResult{bench("A", 1000, 200)},
	)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "allocs/op regressed beyond 25%") {
		t.Errorf("missing allocs/op failure summary:\n%s", out)
	}
	if strings.Contains(out, "ns/op regressed") {
		t.Errorf("ns/op wrongly blamed:\n%s", out)
	}
	if !strings.Contains(out, "200 allocs/op (2.00x) REGRESSION") {
		t.Errorf("missing per-benchmark allocs/op line:\n%s", out)
	}
}

func TestDiffBytesRegressionFailsAlone(t *testing.T) {
	// Same timer, same allocation count, but each allocation grew — the
	// shape of the sweep engine's buffer-growth blowup, where the parallel
	// path allocated ~90x the serial bytes at a near-identical alloc count.
	withBytes := func(b benchResult, n int64) benchResult {
		b.BytesPerOp = n
		return b
	}
	code, out := runDiff(t,
		[]benchResult{withBytes(bench("A", 1000, 100), 1_000_000)},
		[]benchResult{withBytes(bench("A", 1000, 100), 90_000_000)},
	)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "bytes/op regressed beyond 25%") {
		t.Errorf("missing bytes/op failure summary:\n%s", out)
	}
	if strings.Contains(out, "ns/op regressed") || strings.Contains(out, "allocs/op regressed") {
		t.Errorf("other metrics wrongly blamed:\n%s", out)
	}
	if !strings.Contains(out, "90000000 bytes/op (90.00x) REGRESSION") {
		t.Errorf("missing per-benchmark bytes/op line:\n%s", out)
	}
}

func TestDiffZeroBaselineAllocsSkipped(t *testing.T) {
	// A baseline that recorded no allocations cannot gate them.
	code, out := runDiff(t,
		[]benchResult{bench("A", 1000, 0)},
		[]benchResult{bench("A", 1000, 500)},
	)
	if code != 0 {
		t.Fatalf("exit %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "baseline allocs/op 0, skipping") {
		t.Errorf("missing skip notice:\n%s", out)
	}
}

func TestDiffOneSidedBenchmarksNeverGate(t *testing.T) {
	code, out := runDiff(t,
		[]benchResult{bench("Zed", 1000, 100), bench("Abc", 1000, 100)},
		[]benchResult{bench("New", 1000, 100)},
	)
	if code != 0 {
		t.Fatalf("exit %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "New: not in baseline, skipping") {
		t.Errorf("missing current-only notice:\n%s", out)
	}
	// Leftovers come out sorted regardless of baseline order.
	abc := strings.Index(out, "Abc: in baseline only")
	zed := strings.Index(out, "Zed: in baseline only")
	if abc < 0 || zed < 0 || abc > zed {
		t.Errorf("baseline-only entries missing or unsorted:\n%s", out)
	}
}

func TestDiffOutputIsDeterministic(t *testing.T) {
	base := []benchResult{bench("B", 1000, 100), bench("A", 1000, 100), bench("C", 1000, 100)}
	cur := []benchResult{bench("A", 900, 90), bench("B", 1100, 110)}
	_, first := runDiff(t, base, cur)
	for i := 0; i < 8; i++ {
		if _, out := runDiff(t, base, cur); out != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, out, first)
		}
	}
}
