// Command plotfigs renders the experiment CSV exports (cmd/experiments
// -csv) into SVG line charts mirroring the paper's figures.
//
// Usage:
//
//	experiments -exp all -csv series/
//	plotfigs -in series/ -out figs/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"texcache/internal/plot"
)

func main() {
	in := flag.String("in", ".", "directory containing the CSV series")
	out := flag.String("out", ".", "directory to write SVG figures")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	n := 0
	for _, spec := range figureSpecs {
		path := filepath.Join(*in, spec.csv)
		if _, err := os.Stat(path); err != nil {
			fmt.Fprintf(os.Stderr, "skipping %s: %v\n", spec.csv, err)
			continue
		}
		chart, err := spec.build(path)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", spec.csv, err))
		}
		dst := filepath.Join(*out, spec.svg)
		f, err := os.Create(dst)
		if err != nil {
			fatal(err)
		}
		if err := chart.Render(f); err != nil {
			_ = f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", dst)
		n++
	}
	if n == 0 {
		fatal(fmt.Errorf("no CSV series found in %s", *in))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// figureSpec maps one CSV file to one SVG chart.
type figureSpec struct {
	csv   string
	svg   string
	build func(path string) (*plot.Chart, error)
}

var figureSpecs = []figureSpec{
	{"fig4-village.csv", "fig4-village.svg", buildFig4("Figure 4: minimum memory (Village)")},
	{"fig4-city.csv", "fig4-city.svg", buildFig4("Figure 4: minimum memory (City)")},
	{"fig5-village.csv", "fig5-village.svg", buildFig5("Figure 5: total vs new L2 memory (Village)")},
	{"fig5-city.csv", "fig5-city.svg", buildFig5("Figure 5: total vs new L2 memory (City)")},
	{"fig6-village.csv", "fig6-village.svg", buildFig6("Figure 6: minimum L1 bandwidth (Village)")},
	{"fig6-city.csv", "fig6-city.svg", buildFig6("Figure 6: minimum L1 bandwidth (City)")},
	{"fig9-village.csv", "fig9-village.svg", buildFig9("Figure 9: L1 miss rate by cache size (Village)")},
	{"fig10-village.csv", "fig10-village.svg", buildFig10("Figure 10: download bandwidth (Village)")},
	{"fig10-city.csv", "fig10-city.svg", buildFig10("Figure 10: download bandwidth (City)")},
	{"fig11-village.csv", "fig11-village.svg", buildFig11("Figure 11: TLB hit rate (Village)")},
	{"fig11-city.csv", "fig11-city.svg", buildFig11("Figure 11: TLB hit rate (City)")},
}

const toMB = 1.0 / (1 << 20)

func buildFig4(title string) func(string) (*plot.Chart, error) {
	return func(path string) (*plot.Chart, error) {
		header, cols, err := plot.LoadCSV(path)
		if err != nil {
			return nil, err
		}
		return &plot.Chart{
			Title: title, XLabel: "frame", YLabel: "MB",
			Series: plot.SeriesFromColumns(header, cols, toMB, trimSuffix("_bytes")),
		}, nil
	}
}

func buildFig5(title string) func(string) (*plot.Chart, error) {
	return func(path string) (*plot.Chart, error) {
		header, cols, err := plot.LoadCSV(path)
		if err != nil {
			return nil, err
		}
		return &plot.Chart{
			Title: title, XLabel: "frame", YLabel: "MB", LogY: true,
			Series: plot.SeriesFromColumns(header, cols, toMB, trimSuffix("_bytes")),
		}, nil
	}
}

func buildFig6(title string) func(string) (*plot.Chart, error) {
	return buildFig5(title) // same shape: per-frame bytes, log scale
}

func buildFig9(title string) func(string) (*plot.Chart, error) {
	return func(path string) (*plot.Chart, error) {
		header, cols, err := plot.LoadCSV(path)
		if err != nil {
			return nil, err
		}
		return &plot.Chart{
			Title: title, XLabel: "frame", YLabel: "miss rate (%)",
			Series: plot.SeriesFromColumns(header, cols, 100, trimPrefix("miss_rate_")),
		}, nil
	}
}

func buildFig10(title string) func(string) (*plot.Chart, error) {
	return func(path string) (*plot.Chart, error) {
		header, cols, err := plot.LoadCSV(path)
		if err != nil {
			return nil, err
		}
		return &plot.Chart{
			Title: title, XLabel: "frame", YLabel: "MB/frame", LogY: true,
			Series: plot.SeriesFromColumns(header, cols, toMB, trimPrefix("host_bytes_")),
		}, nil
	}
}

func buildFig11(title string) func(string) (*plot.Chart, error) {
	return func(path string) (*plot.Chart, error) {
		header, cols, err := plot.LoadCSV(path)
		if err != nil {
			return nil, err
		}
		return &plot.Chart{
			Title: title, XLabel: "TLB entries", YLabel: "hit rate (%)",
			Series: plot.SeriesFromColumns(header, cols, 100, nil),
		}, nil
	}
}

func trimSuffix(sfx string) func(string) string {
	return func(s string) string {
		if len(s) > len(sfx) && s[len(s)-len(sfx):] == sfx {
			return s[:len(s)-len(sfx)]
		}
		return s
	}
}

func trimPrefix(pfx string) func(string) string {
	return func(s string) string {
		if len(s) > len(pfx) && s[:len(pfx)] == pfx {
			return s[len(pfx):]
		}
		return s
	}
}
