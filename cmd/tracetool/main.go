// Command tracetool records, inspects, and replays texel reference traces,
// the trace-driven methodology of the study in file form.
//
// Usage:
//
//	tracetool record -workload village -o village.trace -frames 60
//	tracetool info village.trace
//	tracetool replay -workload village -l1 2048 -l2mb 2 village.trace
//	tracetool spans run.jsonl
//
// The workload passed to replay must match the one that recorded the
// trace: texture ids are assigned by the (deterministic) scene builder.
// spans reads a texscope phase-span log (texsim -spans, or the spans
// array of a -manifest file rewritten as JSONL) and prints a per-phase
// summary table sorted by total time; "-" reads stdin.
package main

import (
	"flag"
	"fmt"
	"os"

	"texcache/internal/cache"
	"texcache/internal/core"
	"texcache/internal/raster"
	"texcache/internal/texture"
	"texcache/internal/trace"
	"texcache/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "spans":
		spans(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tracetool record|info|replay|spans [flags] [file]")
	os.Exit(2)
}

func workloadByName(name string) *workload.Workload {
	switch name {
	case "village":
		return workload.Village()
	case "city":
		return workload.City()
	case "mall":
		return workload.Mall()
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", name)
		os.Exit(2)
		return nil
	}
}

func parseMode(s string) raster.SampleMode {
	switch s {
	case "point":
		return raster.Point
	case "bilinear":
		return raster.Bilinear
	case "trilinear":
		return raster.Trilinear
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", s)
		os.Exit(2)
		return 0
	}
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	wl := fs.String("workload", "village", "village | city | mall")
	out := fs.String("o", "out.trace", "output file")
	frames := fs.Int("frames", 60, "frames (0 = paper scale)")
	width := fs.Int("width", 512, "screen width")
	height := fs.Int("height", 384, "screen height")
	mode := fs.String("mode", "trilinear", "point | bilinear | trilinear")
	_ = fs.Parse(args) // ExitOnError: Parse exits on bad flags

	w := workloadByName(*wl)
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	cfg := core.Config{
		Width: *width, Height: *height, Frames: *frames,
		Mode: parseMode(*mode), L1Bytes: 2 << 10,
	}
	n, err := core.RecordTrace(w, cfg, f)
	if err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	st, _ := os.Stat(*out)
	fmt.Printf("recorded %d frames of %s to %s (%.1f MB)\n",
		n, w.Name, *out, float64(st.Size())/(1<<20))
}

// infoHandler accumulates summary statistics from a trace.
type infoHandler struct {
	frames   int
	events   int64
	pixels   int64
	textures map[uint32]bool
	levels   map[int]int64
}

func (h *infoHandler) BeginFrame() {}

func (h *infoHandler) Texel(tid uint32, u, v, m int) {
	h.events++
	h.textures[tid] = true
	h.levels[m]++
}

func (h *infoHandler) EndFrame(pixels int64) {
	h.frames++
	h.pixels += pixels
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	_ = fs.Parse(args) // ExitOnError: Parse exits on bad flags
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer func() { _ = f.Close() }() // read-only
	h := &infoHandler{textures: map[uint32]bool{}, levels: map[int]int64{}}
	if _, err := trace.Replay(f, h); err != nil {
		fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("%s: %d frames, %d texel references, %d textures\n",
		path, h.frames, h.events, len(h.textures))
	fmt.Printf("pixels: %d (%.1f refs/pixel)\n",
		h.pixels, float64(h.events)/float64(h.pixels))
	fmt.Printf("size: %.1f MB (%.2f bytes/reference)\n",
		float64(st.Size())/(1<<20), float64(st.Size())/float64(h.events))
	fmt.Printf("MIP level histogram:\n")
	for m := 0; m < 16; m++ {
		if n := h.levels[m]; n > 0 {
			fmt.Printf("  level %2d %12d (%5.1f%%)\n",
				m, n, 100*float64(n)/float64(h.events))
		}
	}
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	wl := fs.String("workload", "village", "workload that recorded the trace")
	l1 := fs.Int("l1", 2048, "L1 bytes")
	l2mb := fs.Int("l2mb", 2, "L2 MB (0 = pull)")
	l2tile := fs.Int("l2tile", 16, "L2 tile edge texels")
	tlb := fs.Int("tlb", 16, "TLB entries")
	_ = fs.Parse(args) // ExitOnError: Parse exits on bad flags
	if fs.NArg() != 1 {
		usage()
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer func() { _ = f.Close() }() // read-only

	w := workloadByName(*wl)
	cfg := core.Config{
		Width: 1, Height: 1, // only used for summary normalisation
		L1Bytes:    *l1,
		TLBEntries: *tlb,
	}
	if *l2mb > 0 {
		cfg.L2 = &cache.L2Config{
			SizeBytes: *l2mb << 20,
			Layout:    texture.TileLayout{L2Size: *l2tile, L1Size: 4},
			Policy:    cache.Clock,
		}
	}
	res, err := core.ReplayTrace(f, w.Scene.Textures, cfg)
	if err != nil {
		fatal(err)
	}
	t := res.Totals
	n := float64(len(res.Frames))
	fmt.Printf("replayed %d frames\n", len(res.Frames))
	fmt.Printf("L1 hit rate: %.2f%%\n", 100*t.L1.HitRate())
	if cfg.L2 != nil {
		fmt.Printf("L2: full %.2f%%, partial %.2f%% (of L1 misses)\n",
			100*t.L2.FullHitRate(), 100*t.L2.PartialHitRate())
		fmt.Printf("TLB hit rate: %.2f%%\n", 100*t.TLB.HitRate())
	}
	fmt.Printf("host bandwidth: %.3f MB/frame\n", float64(t.HostBytes)/n/(1<<20))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
