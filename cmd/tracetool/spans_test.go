package main

import (
	"strings"
	"testing"
)

// TestSummarizeSpansGolden pins the spans table byte-for-byte against a
// hand-written log shaped exactly like telemetry.Tracer.WriteJSON
// output: a run window of [0, 10ms), a repeated nested phase, and a
// blank line that must be skipped.
func TestSummarizeSpansGolden(t *testing.T) {
	in := strings.Join([]string{
		`{"name":"render","depth":0,"start_ns":0,"dur_ns":6000000}`,
		`{"name":"encode","depth":1,"start_ns":1000000,"dur_ns":2000000}`,
		`{"name":"encode","depth":1,"start_ns":4000000,"dur_ns":1500000}`,
		``,
		`{"name":"replay:pull-2k","depth":0,"start_ns":6000000,"dur_ns":4000000}`,
	}, "\n") + "\n"

	want := "" +
		"4 spans, 3 phases, run 10.000 ms\n" +
		"phase               count     total ms      mean ms       max ms    %run\n" +
		"render                  1        6.000        6.000        6.000   60.0%\n" +
		"replay:pull-2k          1        4.000        4.000        4.000   40.0%\n" +
		"encode                  2        3.500        1.750        2.000   35.0%\n"

	got, err := summarizeSpans(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("summary mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestSummarizeSpansTieBreak pins the deterministic ordering of phases
// with equal totals: name order, stable across runs.
func TestSummarizeSpansTieBreak(t *testing.T) {
	in := `{"name":"b","depth":0,"start_ns":0,"dur_ns":5}` + "\n" +
		`{"name":"a","depth":0,"start_ns":5,"dur_ns":5}` + "\n"
	got, err := summarizeSpans(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	ia, ib := strings.Index(got, "\na "), strings.Index(got, "\nb ")
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("equal-total phases not in name order:\n%s", got)
	}
}

func TestSummarizeSpansErrors(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"blank":     "\n\n",
		"junk":      "not json\n",
		"anonymous": `{"depth":0,"start_ns":0,"dur_ns":5}` + "\n",
	}
	for name, in := range cases {
		if _, err := summarizeSpans(strings.NewReader(in)); err == nil {
			t.Errorf("%s input: want error, got none", name)
		}
	}
}

// TestSummarizeSpansZeroRun covers the degenerate all-zero-duration log:
// no division by the empty run window.
func TestSummarizeSpansZeroRun(t *testing.T) {
	in := `{"name":"x","depth":0,"start_ns":7,"dur_ns":0}` + "\n"
	got, err := summarizeSpans(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "run 0.000 ms") || !strings.Contains(got, "0.0%") {
		t.Errorf("zero-run summary:\n%s", got)
	}
}
