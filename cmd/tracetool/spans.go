// The spans subcommand reads a texscope phase-span log (the JSONL that
// texsim -spans or a manifest's sidecar tracer writes) and prints a
// per-phase summary table: span count, total, mean and max duration,
// and each phase's share of the run wall clock.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// spanRecord mirrors one line of telemetry.Tracer.WriteJSON output.
type spanRecord struct {
	Name    string `json:"name"`
	Depth   int    `json:"depth"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// spanPhase is one row of the summary: every span sharing a name.
type spanPhase struct {
	name  string
	count int
	total int64
	max   int64
}

func spans(args []string) {
	fs := flag.NewFlagSet("spans", flag.ExitOnError)
	_ = fs.Parse(args) // ExitOnError: Parse exits on bad flags
	if fs.NArg() != 1 {
		usage()
	}
	var in io.Reader
	if path := fs.Arg(0); path == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer func() { _ = f.Close() }() // read-only
		in = f
	}
	out, err := summarizeSpans(in)
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)
}

// summarizeSpans parses the span log and renders the summary table,
// returned as a string so tests can pin it byte-for-byte.
func summarizeSpans(r io.Reader) (string, error) {
	var records []spanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec spanRecord
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return "", fmt.Errorf("spans: line %d: %w", line, err)
		}
		if rec.Name == "" {
			return "", fmt.Errorf("spans: line %d: span without a name", line)
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	if len(records) == 0 {
		return "", fmt.Errorf("spans: no spans in input")
	}

	// The run window spans the earliest start to the latest end; nested
	// spans overlap their parents, so phase totals may exceed 100%.
	minStart, maxEnd := records[0].StartNS, int64(0)
	byName := map[string]*spanPhase{}
	var order []*spanPhase
	for _, rec := range records {
		if rec.StartNS < minStart {
			minStart = rec.StartNS
		}
		if end := rec.StartNS + rec.DurNS; end > maxEnd {
			maxEnd = end
		}
		p := byName[rec.Name]
		if p == nil {
			p = &spanPhase{name: rec.Name}
			byName[rec.Name] = p
			order = append(order, p)
		}
		p.count++
		p.total += rec.DurNS
		if rec.DurNS > p.max {
			p.max = rec.DurNS
		}
	}
	run := maxEnd - minStart
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].total != order[j].total {
			return order[i].total > order[j].total
		}
		return order[i].name < order[j].name
	})

	var b strings.Builder
	fmt.Fprintf(&b, "%d spans, %d phases, run %.3f ms\n",
		len(records), len(order), float64(run)/1e6)
	fmt.Fprintf(&b, "%-18s %6s %12s %12s %12s %7s\n",
		"phase", "count", "total ms", "mean ms", "max ms", "%run")
	for _, p := range order {
		pct := 0.0
		if run > 0 {
			pct = 100 * float64(p.total) / float64(run)
		}
		fmt.Fprintf(&b, "%-18s %6d %12.3f %12.3f %12.3f %6.1f%%\n",
			p.name, p.count,
			float64(p.total)/1e6,
			float64(p.total)/float64(p.count)/1e6,
			float64(p.max)/1e6, pct)
	}
	return b.String(), nil
}
