// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all                # every experiment, reduced scale
//	experiments -exp table3 -scale full # one experiment at paper scale
//	experiments -exp list               # list experiment ids
//
// Scales: bench (256x192, fastest), reduced (512x384, default), full
// (1024x768 over the paper's 411/525 frames; slow).
//
// Telemetry and profiling: -metrics streams one record per simulated
// frame of every underlying run (JSONL, or CSV when the path ends in
// .csv); -manifest records the run's configuration hash, environment and
// stream totals; -cpuprofile / -memprofile write pprof profiles.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"texcache/internal/experiments"
	"texcache/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "all", "experiment id, 'all', or 'list'")
	scaleName := flag.String("scale", "reduced", "bench | reduced | full")
	out := flag.String("o", "", "write output to file instead of stdout")
	parallel := flag.Int("parallel", 0,
		"worker pool size for prefetch and cache sweeps (0 = GOMAXPROCS, -1 = serial)")
	renderWorkers := flag.Int("renderworkers", 0,
		"render farm size for cache sweeps (0 = GOMAXPROCS, -1 or 1 = serial render pass)")
	replayWorkers := flag.Int("replayworkers", 0,
		"frame-range shards per sweep spec group (0 or 1 = whole-stream replay)")
	fast := flag.Bool("fast", false,
		"analytic cache sweeps: predict model-reachable specs from one reuse-profile pass; per-frame figures then report totals only")
	csvDir := flag.String("csv", "", "also export per-frame figure series as CSV into this directory")
	metricsPath := flag.String("metrics", "", "write every run's per-frame metric stream here (.csv = CSV, else JSONL)")
	manifestPath := flag.String("manifest", "", "write a run manifest (config hash, environment, totals) here")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile here")
	memprofile := flag.String("memprofile", "", "write a heap profile here")
	flag.Parse()

	if *exp == "list" {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return 0
	}

	var scale experiments.Scale
	switch *scaleName {
	case "bench":
		scale = experiments.Bench()
	case "reduced":
		scale = experiments.Reduced()
	case "full":
		scale = experiments.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		return 2
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() { _ = f.Close() }()
		w = f
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			_ = f.Close()
		}()
	}

	ctx := experiments.NewContext(scale, w)
	if *parallel < 0 {
		ctx.Parallelism = 1 // serial reference engine
	} else {
		ctx.Parallelism = *parallel
	}
	if *renderWorkers < 0 {
		ctx.RenderWorkers = 1 // serial render pass
	} else {
		ctx.RenderWorkers = *renderWorkers
	}
	ctx.ReplayWorkers = *replayWorkers
	ctx.FastSweep = *fast

	var totals telemetry.Totals
	emitters := []telemetry.Emitter{&totals}
	var flushMetrics func() error
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		bw := bufio.NewWriter(f)
		var sink telemetry.Emitter
		var sinkErr func() error
		if strings.HasSuffix(*metricsPath, ".csv") {
			s := telemetry.NewCSV(bw)
			sink, sinkErr = s, s.Err
		} else {
			s := telemetry.NewJSONL(bw)
			sink, sinkErr = s, s.Err
		}
		emitters = append(emitters, sink)
		flushMetrics = func() error {
			if err := sinkErr(); err != nil {
				_ = f.Close()
				return err
			}
			if err := bw.Flush(); err != nil {
				_ = f.Close()
				return err
			}
			return f.Close()
		}
	}
	if *metricsPath != "" || *manifestPath != "" {
		ctx.Metrics = telemetry.Tee(emitters...)
	}

	run := func(e experiments.Experiment) int {
		start := time.Now() //texlint:ignore determinism progress timing on stderr only
		if err := e.Run(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			return 1
		}
		//texlint:ignore determinism progress timing on stderr only
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
		return 0
	}

	if *exp == "all" {
		if *parallel >= 0 {
			start := time.Now() //texlint:ignore determinism progress timing on stderr only
			if err := ctx.Prefetch(*parallel); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			//texlint:ignore determinism progress timing on stderr only
			fmt.Fprintf(os.Stderr, "[prefetch done in %v]\n", time.Since(start).Round(time.Millisecond))
		}
		for _, e := range experiments.All() {
			if rc := run(e); rc != 0 {
				return rc
			}
		}
	} else {
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -exp list\n", *exp)
			return 2
		}
		if rc := run(e); rc != 0 {
			return rc
		}
	}
	if rc := exportCSV(ctx, *csvDir); rc != 0 {
		return rc
	}

	if flushMetrics != nil {
		if err := flushMetrics(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: writing metrics:", err)
			return 1
		}
	}
	if *manifestPath != "" {
		m := telemetry.NewManifest("experiments")
		m.ConfigHash = telemetry.ConfigHash(
			scale.Name,
			fmt.Sprintf("%dx%d", scale.Width, scale.Height),
			"exp="+*exp,
		)
		m.Totals = totals.T
		f, err := os.Create(*manifestPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := m.WriteJSON(f); err != nil {
			_ = f.Close()
			fmt.Fprintln(os.Stderr, "experiments: writing manifest:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: writing manifest:", err)
			return 1
		}
	}
	return 0
}

func exportCSV(ctx *experiments.Context, dir string) int {
	if dir == "" {
		return 0
	}
	if err := ctx.ExportCSV(dir); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "[csv series written to %s]\n", dir)
	return 0
}
