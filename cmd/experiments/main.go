// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all                # every experiment, reduced scale
//	experiments -exp table3 -scale full # one experiment at paper scale
//	experiments -exp list               # list experiment ids
//
// Scales: bench (256x192, fastest), reduced (512x384, default), full
// (1024x768 over the paper's 411/525 frames; slow).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"texcache/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id, 'all', or 'list'")
	scaleName := flag.String("scale", "reduced", "bench | reduced | full")
	out := flag.String("o", "", "write output to file instead of stdout")
	parallel := flag.Int("parallel", 0,
		"worker pool size for prefetch and cache sweeps (0 = GOMAXPROCS, -1 = serial)")
	csvDir := flag.String("csv", "", "also export per-frame figure series as CSV into this directory")
	flag.Parse()

	if *exp == "list" {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}

	var scale experiments.Scale
	switch *scaleName {
	case "bench":
		scale = experiments.Bench()
	case "reduced":
		scale = experiments.Reduced()
	case "full":
		scale = experiments.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() { _ = f.Close() }()
		w = f
	}

	ctx := experiments.NewContext(scale, w)
	if *parallel < 0 {
		ctx.Parallelism = 1 // serial reference engine
	} else {
		ctx.Parallelism = *parallel
	}
	run := func(e experiments.Experiment) {
		start := time.Now() //texlint:ignore determinism progress timing on stderr only
		if err := e.Run(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		//texlint:ignore determinism progress timing on stderr only
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		if *parallel >= 0 {
			start := time.Now() //texlint:ignore determinism progress timing on stderr only
			if err := ctx.Prefetch(*parallel); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			//texlint:ignore determinism progress timing on stderr only
			fmt.Fprintf(os.Stderr, "[prefetch done in %v]\n", time.Since(start).Round(time.Millisecond))
		}
		for _, e := range experiments.All() {
			run(e)
		}
		exportCSV(ctx, *csvDir)
		return
	}
	e, ok := experiments.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; try -exp list\n", *exp)
		os.Exit(2)
	}
	run(e)
	exportCSV(ctx, *csvDir)
}

func exportCSV(ctx *experiments.Context, dir string) {
	if dir == "" {
		return
	}
	if err := ctx.ExportCSV(dir); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "[csv series written to %s]\n", dir)
}
