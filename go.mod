module texcache

go 1.22
