package texcache

import (
	"bytes"
	"io"
	"testing"

	"texcache/internal/cache"
	"texcache/internal/core"
	"texcache/internal/experiments"
	"texcache/internal/raster"
	"texcache/internal/texture"
	"texcache/internal/vecmath"
	"texcache/internal/workload"
)

// ---------------------------------------------------------------------------
// Experiment regeneration benchmarks: one per table and figure of the
// paper. Each iteration regenerates the experiment at bench scale from a
// fresh context (no memoization across iterations), so the reported time
// is the true cost of reproducing that result.
// ---------------------------------------------------------------------------

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(experiments.Bench(), io.Discard)
		if err := e.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B)    { benchExperiment(b, "fig3") }
func BenchmarkTable1(b *testing.B)  { benchExperiment(b, "table1") }
func BenchmarkFig4(b *testing.B)    { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)    { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkFig9(b *testing.B)    { benchExperiment(b, "fig9") }
func BenchmarkTable2(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkFig10(b *testing.B)   { benchExperiment(b, "fig10") }
func BenchmarkTable3(b *testing.B)  { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)  { benchExperiment(b, "table4") }
func BenchmarkTable56(b *testing.B) { benchExperiment(b, "table56") }
func BenchmarkTable7(b *testing.B)  { benchExperiment(b, "table7") }
func BenchmarkTable8(b *testing.B)  { benchExperiment(b, "table8") }

func BenchmarkAblationZBuffer(b *testing.B)     { benchExperiment(b, "ablation-z") }
func BenchmarkAblationReplacement(b *testing.B) { benchExperiment(b, "ablation-repl") }
func BenchmarkAblationSector(b *testing.B)      { benchExperiment(b, "ablation-sector") }
func BenchmarkAblationAssoc(b *testing.B)       { benchExperiment(b, "ablation-assoc") }
func BenchmarkFutureWorkload(b *testing.B)      { benchExperiment(b, "future") }
func BenchmarkPushArchitecture(b *testing.B)    { benchExperiment(b, "push") }

// ---------------------------------------------------------------------------
// Component micro-benchmarks: throughput of the building blocks.
// ---------------------------------------------------------------------------

// BenchmarkL1Access measures the L1 lookup/fill path with a strided
// reference pattern (~90% hits, matching workload behaviour).
func BenchmarkL1Access(b *testing.B) {
	l1 := cache.MustNewL1(16 << 10)
	refs := make([]cache.L1Ref, 4096)
	for i := range refs {
		tile := uint32(i % 512) // working set larger than the cache
		refs[i] = cache.L1Ref{
			Tag: cache.PackTag(0, tile/16, uint16(tile%16)),
			Set: cache.SetHash(int32(tile%64), int32(tile/64), 0, 0),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l1.Access(refs[i%len(refs)])
	}
}

// BenchmarkL2Access measures the L2 page-table path including clock
// replacement under capacity pressure.
func BenchmarkL2Access(b *testing.B) {
	layout := texture.TileLayout{L2Size: 16, L1Size: 4}
	l2 := cache.MustNewL2(cache.L2Config{
		SizeBytes: 1 << 20, Layout: layout, Policy: cache.Clock,
	}, 8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l2.Access(uint32(i%4096), uint8(i%16))
	}
}

// BenchmarkTLBLookup measures the 16-entry TLB scan.
func BenchmarkTLBLookup(b *testing.B) {
	tlb := cache.NewTLB(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tlb.Lookup(uint32(i % 24))
	}
}

// BenchmarkAddrTranslation measures <u,v,m> -> <tid,L2,L1> translation.
func BenchmarkAddrTranslation(b *testing.B) {
	tex := texture.MustNew("t", 1024, 1024, texture.RGBA8888, nil)
	ti := texture.MustNewTiling(tex, texture.TileLayout{L2Size: 16, L1Size: 4})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ti.Addr(i&1023, (i>>2)&1023, 0)
	}
}

// BenchmarkRasterizerFill measures textured pixel throughput including
// trilinear texel emission.
func BenchmarkRasterizerFill(b *testing.B) {
	r := raster.MustNew(raster.Config{Width: 256, Height: 256, Mode: raster.Trilinear})
	var texels int64
	r.SetSink(raster.SinkFunc(func(tid texture.ID, u, v, m int) { texels++ }))
	tex := texture.MustNew("t", 256, 256, texture.RGBA8888, nil)
	quad := benchQuad()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.BeginFrame()
		for _, tri := range quad {
			r.DrawTriangle(tex, tri[0], tri[1], tri[2], 1)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(65536), "pixels/op")
	}
}

// BenchmarkVillageFrame measures one full simulated frame (geometry,
// rasterization, L1+L2 simulation) of the Village at bench resolution.
func BenchmarkVillageFrame(b *testing.B) {
	w := workload.Village()
	cfg := core.Config{
		Width: 256, Height: 192,
		Frames:  1,
		Mode:    raster.Trilinear,
		L1Bytes: 2 << 10,
		L2: &cache.L2Config{
			SizeBytes: 2 << 20,
			Layout:    texture.TileLayout{L2Size: 16, L1Size: 4},
			Policy:    cache.Clock,
		},
	}
	sim, err := core.NewSimulator(w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Sweep engine benchmarks: the full 13-spec cache sweep of the Village at
// bench scale, serial reference fan-out vs the render-once/replay-many
// worker pool. The parallel engine's gain comes from replaying the
// in-memory trace through all hierarchies concurrently instead of pushing
// every texel through 13 hierarchies in one goroutine.
// ---------------------------------------------------------------------------

func benchSweep(b *testing.B, parallelism, renderWorkers int, fast bool) {
	b.Helper()
	scale := experiments.Bench()
	render := core.Config{
		Width:         scale.Width,
		Height:        scale.Height,
		Frames:        scale.VillageFrames,
		Mode:          raster.Trilinear,
		Parallelism:   parallelism,
		RenderWorkers: renderWorkers,
		FastSweep:     fast,
	}
	specs := experiments.SweepSpecs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunComparison(workload.Village(), render, specs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSerial is the legacy single-goroutine engine.
func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, 1, 1, false) }

// BenchmarkSweepParallel4 bounds the pool at four replay workers, with the
// render farm at its GOMAXPROCS default.
func BenchmarkSweepParallel4(b *testing.B) { benchSweep(b, 4, 0, false) }

// BenchmarkSweepParallel uses the default pool (GOMAXPROCS replay workers
// and render farm) — the fully parallel engine.
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 0, 0, false) }

// BenchmarkSweepParallelRenderSerial isolates the render farm's
// contribution: parallel replay as in BenchmarkSweepParallel, but with the
// serial render pass (RenderWorkers 1, the farm's oracle).
func BenchmarkSweepParallelRenderSerial(b *testing.B) { benchSweep(b, 0, 1, false) }

// BenchmarkSweepFast is the analytic engine: one instrumented render
// feeds the reuse model, which predicts every model-reachable spec's
// counters — for the canonical sweep the replay set is empty, so no
// trace is recorded or replayed at all.
func BenchmarkSweepFast(b *testing.B) { benchSweep(b, 0, 0, true) }

// ---------------------------------------------------------------------------
// Intra-spec replay benchmarks: one recorded Village stream replayed
// through a single 2 MB L2 hierarchy, whole-stream vs four
// checkpoint-chained frame ranges (rangereplay.go). The trace is recorded
// once outside the timer, so the measured work is purely the replay
// engine; serial and ranged produce DeepEqual Results by construction, and
// the ranged engine's gain is decode/translate overlap across ranges
// (visible only with more than one CPU).
// ---------------------------------------------------------------------------

func benchReplaySingleSpec(b *testing.B, replayWorkers int) {
	b.Helper()
	scale := experiments.Bench()
	cfg := core.Config{
		Width: scale.Width, Height: scale.Height,
		Frames:  scale.VillageFrames,
		Mode:    raster.Trilinear,
		L1Bytes: 2 * 1024,
		L2: &cache.L2Config{
			SizeBytes: 2 * 1024 * 1024,
			Layout:    texture.TileLayout{L2Size: 16, L1Size: 4},
			Policy:    cache.Clock,
		},
		TLBEntries:    16,
		ReplayWorkers: replayWorkers,
	}
	w := workload.Village()
	var buf bytes.Buffer
	if _, err := core.RecordTrace(w, cfg, &buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ReplayTrace(bytes.NewReader(data), w.Scene.Textures, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplaySingleSpecSerial is the whole-stream reference replay.
func BenchmarkReplaySingleSpecSerial(b *testing.B) { benchReplaySingleSpec(b, 1) }

// BenchmarkReplaySingleSpecRanged4 shards the same stream into four
// checkpoint-chained frame ranges.
func BenchmarkReplaySingleSpecRanged4(b *testing.B) { benchReplaySingleSpec(b, 4) }

// BenchmarkTraceRecordReplay measures the trace encode+decode round trip.
func BenchmarkTraceRecordReplay(b *testing.B) {
	w := workload.City()
	cfg := core.Config{
		Width: 160, Height: 120,
		Frames:  2,
		Mode:    raster.Point,
		L1Bytes: 2 << 10,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sink countingWriter
		if _, err := core.RecordTrace(w, cfg, &sink); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(sink.n)
	}
}

type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

func benchQuad() [2][3]raster.Vertex {
	mk := func(x, y, u, v float64) raster.Vertex {
		return raster.Vertex{
			Pos: vecmath.Vec4{X: x, Y: y, Z: 0, W: 1},
			UV:  vecmath.Vec2{X: u, Y: v},
		}
	}
	bl := mk(-1, -1, 0, 1)
	br := mk(1, -1, 1, 1)
	tl := mk(-1, 1, 0, 0)
	tr := mk(1, 1, 1, 0)
	return [2][3]raster.Vertex{{tl, bl, br}, {tl, br, tr}}
}
