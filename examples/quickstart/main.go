// Quickstart: build a small textured scene with the scene API, simulate it
// through the pull architecture and through two-level texture caching, and
// print the bandwidth the L2 cache saves.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"texcache/internal/cache"
	"texcache/internal/core"
	"texcache/internal/raster"
	"texcache/internal/scene"
	"texcache/internal/texture"
	"texcache/internal/vecmath"
	"texcache/internal/workload"
)

func main() {
	// A scene is a texture registry plus textured objects.
	s := scene.NewScene()
	brick := s.Textures.Register(texture.MustNew("brick", 256, 256, texture.RGB888,
		texture.Brick{
			Brick:  texture.RGBA{R: 160, G: 70, B: 50, A: 255},
			Mortar: texture.RGBA{R: 210, G: 205, B: 195, A: 255},
			Rows:   12,
		}))
	ground := s.Textures.Register(texture.MustNew("ground", 512, 512, texture.RGB565,
		texture.Checker{
			A: texture.RGBA{R: 120, G: 140, B: 110, A: 255},
			B: texture.RGBA{R: 100, G: 120, B: 95, A: 255},
			N: 16,
		}))

	floor := &scene.Mesh{}
	floor.GroundGrid(0, 50, 50, 4, 4, ground, 4, 4)
	s.Add(scene.NewObject("floor", floor, vecmath.Identity()))

	for i := 0; i < 6; i++ {
		tower := &scene.Mesh{}
		tower.Box(
			vecmath.Vec3{X: -3, Y: 0, Z: -3},
			vecmath.Vec3{X: 3, Y: 8 + float64(i), Z: 3},
			scene.BoxTextures{Sides: brick, Top: brick, SideRepeatU: 2, SideRepeatV: 3})
		s.Add(scene.NewObject(fmt.Sprintf("tower-%d", i), tower,
			vecmath.Translate(vecmath.Vec3{X: float64(i%3)*15 - 15, Z: float64(i/3)*15 - 8})))
	}

	// A workload is a scene plus a scripted camera path.
	w := &workload.Workload{
		Name:  "quickstart",
		Scene: s,
		Path: scene.Path{Points: []scene.Waypoint{
			{Eye: vecmath.Vec3{X: -30, Y: 5, Z: 40}, Target: vecmath.Vec3{Y: 4}},
			{Eye: vecmath.Vec3{X: 0, Y: 6, Z: 35}, Target: vecmath.Vec3{Y: 4}},
			{Eye: vecmath.Vec3{X: 30, Y: 5, Z: 40}, Target: vecmath.Vec3{Y: 4}},
		}},
		Frames: 60,
		Up:     vecmath.Vec3{Y: 1},
	}

	base := core.Config{
		Width: 512, Height: 384,
		Frames:  60,
		Mode:    raster.Trilinear,
		L1Bytes: 2 * 1024,
	}

	// Pull architecture: L1 only, every miss downloads from host memory.
	pull, err := core.Run(w, base)
	if err != nil {
		log.Fatal(err)
	}

	// Proposed architecture: a 2 MB L2 texture cache in local memory.
	withL2 := base
	withL2.L2 = &cache.L2Config{
		SizeBytes: 2 << 20,
		Layout:    texture.TileLayout{L2Size: 16, L1Size: 4},
		Policy:    cache.Clock,
	}
	l2, err := core.Run(w, withL2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("L1 hit rate:              %.2f%%\n", 100*pull.Totals.L1.HitRate())
	fmt.Printf("pull host bandwidth:      %.3f MB/frame\n", pull.AvgHostMBPerFrame())
	fmt.Printf("L2 host bandwidth:        %.3f MB/frame\n", l2.AvgHostMBPerFrame())
	fmt.Printf("L2 full hit rate:         %.2f%% of L1 misses\n",
		100*l2.Totals.L2.FullHitRate())
	if l2h := l2.AvgHostMBPerFrame(); l2h > 0 {
		fmt.Printf("bandwidth saving:         %.1fx\n", pull.AvgHostMBPerFrame()/l2h)
	}
}
