// Tracereplay: the trace-driven methodology. Record the texel reference
// stream of an animation once, then replay it through several cache
// configurations without re-rendering — exactly how the paper sweeps cache
// parameters over fixed animations.
//
// Run with: go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"
	"log"

	"texcache/internal/cache"
	"texcache/internal/core"
	"texcache/internal/raster"
	"texcache/internal/texture"
	"texcache/internal/workload"
)

func main() {
	w := workload.Village()
	cfg := core.Config{
		Width: 320, Height: 240,
		Frames:  30,
		Mode:    raster.Bilinear,
		L1Bytes: 2 << 10,
	}

	// Record once. The trace is delta-coded; coherent rasterization
	// compresses to a few bytes per texel reference.
	var buf bytes.Buffer
	frames, err := core.RecordTrace(w, cfg, &buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d frames: %.1f MB of trace\n",
		frames, float64(buf.Len())/(1<<20))

	// Replay through three cache configurations.
	layout := texture.TileLayout{L2Size: 16, L1Size: 4}
	for _, c := range []struct {
		name string
		l2MB int
	}{
		{"pull (no L2)", 0},
		{"1MB L2", 1},
		{"4MB L2", 4},
	} {
		replayCfg := cfg
		if c.l2MB > 0 {
			replayCfg.L2 = &cache.L2Config{
				SizeBytes: c.l2MB << 20,
				Layout:    layout,
				Policy:    cache.Clock,
			}
		}
		res, err := core.ReplayTrace(bytes.NewReader(buf.Bytes()),
			w.Scene.Textures, replayCfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s L1 hit %6.2f%%   host %8.3f MB/frame\n",
			c.name, 100*res.Totals.L1.HitRate(), res.AvgHostMBPerFrame())
	}
	fmt.Println("\nSame reference stream, different cache hardware — no re-rendering.")
}
