// City: the paper's fly-through workload, used here to reproduce the §4
// working-set methodology — measure depth complexity and block utilisation
// with point sampling, then check the analytic expected-working-set model
// W = R*d*4/util against the measured per-frame block footprint (Table 1).
//
// Run with: go run ./examples/city
package main

import (
	"fmt"
	"log"

	"texcache/internal/core"
	"texcache/internal/model"
	"texcache/internal/raster"
	"texcache/internal/texture"
	"texcache/internal/workload"
)

func main() {
	w := workload.City()
	fmt.Printf("City: %d objects, %d textures (one facade per building), %.1f MB host\n",
		len(w.Scene.Objects), w.Scene.Textures.Len(),
		float64(w.Scene.Textures.HostBytes())/(1<<20))

	layout := texture.TileLayout{L2Size: 16, L1Size: 4}
	cfg := core.Config{
		Width: 512, Height: 384,
		Frames:      100,
		Mode:        raster.Point, // the paper's §4 methodology
		L1Bytes:     2 << 10,
		StatLayouts: []texture.TileLayout{layout},
	}
	res, err := core.Run(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	s := res.Summary
	ls, _ := s.Layout(layout)

	expected := model.ExpectedWorkingSet(s.ScreenPixels, s.DepthComplexity, ls.Utilization)
	fmt.Printf("\ndepth complexity d        = %.2f   (paper: 1.9)\n", s.DepthComplexity)
	fmt.Printf("block utilization         = %.2f   (paper: 7.8)\n", ls.Utilization)
	fmt.Printf("expected working set W    = %.2f MB\n", expected/(1<<20))
	fmt.Printf("measured blocks per frame = %.2f MB (avg), %.2f MB (max)\n",
		ls.AvgBytes/(1<<20), float64(ls.MaxBytes)/(1<<20))
	fmt.Printf("new blocks per frame      = %.0f KB (%.1f%% of the working set)\n",
		ls.AvgNewBytes/1024, 100*ls.AvgNewBlocks/ls.AvgBlocks)
	fmt.Printf("min push-arch memory      = %.2f MB (whole textures touched)\n",
		s.AvgPushBytes/(1<<20))
	fmt.Printf("\nThe model W tracks the measured per-frame footprint, and both sit far\n")
	fmt.Printf("below the push architecture's requirement — the Figure 4 result.\n")
}
