// Village: the paper's walk-through workload end-to-end. Renders the
// animation once and simulates five cache architectures against the same
// texel reference stream (the Figure 10 / Table 3 comparison).
//
// Run with: go run ./examples/village
package main

import (
	"fmt"
	"log"

	"texcache/internal/cache"
	"texcache/internal/core"
	"texcache/internal/raster"
	"texcache/internal/texture"
	"texcache/internal/workload"
)

func main() {
	w := workload.Village()
	fmt.Printf("Village: %d objects, %d triangles, %d textures (%.1f MB in host memory)\n",
		len(w.Scene.Objects), w.Scene.TriangleCount(), w.Scene.Textures.Len(),
		float64(w.Scene.Textures.HostBytes())/(1<<20))

	layout := texture.TileLayout{L2Size: 16, L1Size: 4}
	specs := []core.CacheSpec{
		{Name: "pull, 16KB L1", L1Bytes: 16 << 10},
		{Name: "pull,  2KB L1", L1Bytes: 2 << 10},
		{Name: "2MB L2, 2KB L1", L1Bytes: 2 << 10,
			L2: &cache.L2Config{SizeBytes: 2 << 20, Layout: layout, Policy: cache.Clock}},
		{Name: "4MB L2, 2KB L1", L1Bytes: 2 << 10,
			L2: &cache.L2Config{SizeBytes: 4 << 20, Layout: layout, Policy: cache.Clock}},
		{Name: "8MB L2, 2KB L1", L1Bytes: 2 << 10,
			L2: &cache.L2Config{SizeBytes: 8 << 20, Layout: layout, Policy: cache.Clock}},
	}

	render := core.Config{
		Width: 512, Height: 384,
		Frames: 80, // subsample of the 411-frame walk-through
		Mode:   raster.Trilinear,
	}
	cmp, err := core.RunComparison(w, render, specs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-16s %10s %14s %14s\n",
		"architecture", "L1 hit", "host MB/frame", "MB/s at 30Hz")
	for i, spec := range specs {
		res := cmp.Results[i]
		perFrame := res.AvgHostMBPerFrame()
		fmt.Printf("%-16s %9.2f%% %14.3f %14.1f\n",
			spec.Name, 100*res.Totals.L1.HitRate(), perFrame, perFrame*30)
	}

	pull := cmp.Results[1].AvgHostMBPerFrame()
	l2 := cmp.Results[2].AvgHostMBPerFrame()
	fmt.Printf("\nEven a 2MB L2 cache cuts host texture bandwidth %.0fx (paper: 18x at 1024x768).\n",
		pull/l2)
}
