// Mall: the paper's §6 "workload of the future" — every surface carries
// two textures (a shared diffuse map and a unique lightmap, applied by
// multipass rendering). The example shows that L2 texture caching keeps
// its advantage when texel traffic doubles and the texture population is
// dominated by single-use lightmaps.
//
// Run with: go run ./examples/mall
package main

import (
	"fmt"
	"log"

	"texcache/internal/cache"
	"texcache/internal/core"
	"texcache/internal/raster"
	"texcache/internal/texture"
	"texcache/internal/workload"
)

func main() {
	w := workload.Mall()
	fmt.Printf("Mall: %d textures (%.1f MB host), %d triangles\n",
		w.Scene.Textures.Len(), float64(w.Scene.Textures.HostBytes())/(1<<20),
		w.Scene.TriangleCount())
	fmt.Println("every lit surface is drawn twice: shared diffuse + unique lightmap")

	layout := texture.TileLayout{L2Size: 16, L1Size: 4}
	specs := []core.CacheSpec{
		{Name: "pull, 2KB L1", L1Bytes: 2 << 10},
		{Name: "2MB L2", L1Bytes: 2 << 10,
			L2: &cache.L2Config{SizeBytes: 2 << 20, Layout: layout, Policy: cache.Clock}},
		{Name: "2MB L2 + z-first", L1Bytes: 2 << 10,
			L2: &cache.L2Config{SizeBytes: 2 << 20, Layout: layout, Policy: cache.Clock}},
	}

	render := core.Config{
		Width: 512, Height: 384,
		Frames: 60,
		Mode:   raster.Trilinear,
	}
	cmp, err := core.RunComparison(w, render, specs[:2])
	if err != nil {
		log.Fatal(err)
	}

	// The third configuration adds the §6 z-before-texture optimisation,
	// which needs its own render pass (it changes the reference stream).
	zRender := render
	zRender.ZBeforeTexture = true
	zCmp, err := core.RunComparison(workload.Mall(), zRender, specs[2:])
	if err != nil {
		log.Fatal(err)
	}

	results := append(cmp.Results, zCmp.Results...)
	fmt.Printf("\n%-18s %10s %14s\n", "architecture", "L1 hit", "host MB/frame")
	for i, spec := range specs {
		res := results[i]
		fmt.Printf("%-18s %9.2f%% %14.3f\n",
			spec.Name, 100*res.Totals.L1.HitRate(), res.AvgHostMBPerFrame())
	}
	fmt.Printf("\npull vs 2MB L2: %.0fx bandwidth saving on a doubled-texture workload\n",
		results[0].AvgHostMBPerFrame()/results[1].AvgHostMBPerFrame())
}
