// Package texcache reproduces "Multi-Level Texture Caching for 3D Graphics
// Hardware" (Cox, Bhandari, Shantz; ISCA 1998): a trace-driven study of a
// two-level texture cache for 3D accelerators, in which a small on-chip L1
// texture cache is backed by a multi-megabyte L2 cache in accelerator-local
// DRAM managed like virtual memory, with textures resident in host system
// memory.
//
// The repository layout:
//
//   - internal/texture: MIP pyramids, hierarchical tiling, <tid, L2, L1>
//     virtual texture addressing.
//   - internal/cache: L1 set-associative cache, L2 page-table cache with
//     clock replacement and sector mapping, TLB.
//   - internal/raster, internal/scene: the perspective-correct scanline
//     rasterizer and scene pipeline that generate texel reference streams.
//   - internal/workload: procedural Village and City animations tuned to
//     the paper's published workload statistics.
//   - internal/core: the transaction-accurate simulator and trace
//     record/replay.
//   - internal/model: the paper's analytic models (working set, structure
//     sizes, fractional advantage).
//   - internal/experiments: regenerators for every table and figure.
//   - internal/lint, cmd/texlint: the repo's stdlib-only static-analysis
//     suite. `go run ./cmd/texlint ./...` checks determinism of the texel
//     reference stream (no wall-clock, no unseeded randomness, no
//     order-dependent map iteration), 64-bit counter widths, hot-path
//     hygiene on texlint:hotpath functions, panic-message prefixes and
//     unchecked errors; findings are suppressed with
//     //texlint:ignore <analyzer> comments.
//
// See README.md for a tour and EXPERIMENTS.md for reproduction results.
package texcache
