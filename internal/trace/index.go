package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// FramePos records where one frame begins inside a contiguous trace
// stream: the byte offset of its opFrame opcode and the delta-coder
// state carried into the frame (current texture, MIP level and texel
// coordinates — the writer persists them across frame boundaries within
// one stream). Seeding a ShardDecoder with a FramePos via Seek lets a
// replay worker start decoding at that frame without decoding anything
// before it.
type FramePos struct {
	Offset int64
	TID    uint32
	M      int
	U, V   int
}

// IndexFrames scans a complete contiguous trace stream and returns one
// FramePos per frame, in order. The scan is purely structural — no
// handler runs — but performs the decoder's full validation: header,
// opcode set, varint well-formedness, frame nesting, and truncation.
// A position is only returned for a frame whose opPixels terminator was
// reached, and the whole index is rejected on any malformed byte, so a
// hostile or truncated shard can never yield a seekable position into
// garbage; the error is the one a full decode of the same bytes reports.
func IndexFrames(data []byte) ([]FramePos, error) {
	if len(data) < len(magic) {
		return nil, errors.New("trace: short header")
	}
	for i := range magic {
		if data[i] != magic[i] {
			return nil, errors.New("trace: bad magic or version")
		}
	}
	var index []FramePos
	var tid uint32
	var m, u, v int
	inFrame := false
	i, n := len(magic), len(data)
	for i < n {
		opStart := i
		code := data[i]
		i++
		switch code {
		case opFrame:
			if inFrame {
				return nil, errors.New("trace: nested frame")
			}
			inFrame = true
			index = append(index, FramePos{Offset: int64(opStart), TID: tid, M: m, U: u, V: v})
		case opSample:
			du, j := binary.Varint(data[i:])
			if j <= 0 {
				return nil, errBadVarint
			}
			dv, j2 := binary.Varint(data[i+j:])
			if j2 <= 0 {
				return nil, errBadVarint
			}
			if !inFrame {
				return nil, errors.New("trace: sample outside frame")
			}
			u += int(du)
			v += int(dv)
			i += j + j2
		case opTexture, opLevel, opPixels:
			x, j := binary.Uvarint(data[i:])
			if j <= 0 {
				return nil, errBadUvarint
			}
			i += j
			switch code {
			case opTexture:
				tid = uint32(x)
			case opLevel:
				m = int(x)
			default: // opPixels
				if !inFrame {
					return nil, errors.New("trace: frame end outside frame")
				}
				inFrame = false
			}
		default:
			return nil, badOpcode(code)
		}
	}
	if inFrame {
		return nil, errors.New("trace: truncated inside a frame")
	}
	return index, nil
}

// Seek primes the decoder to begin mid-stream at a frame boundary
// recorded by IndexFrames: the header is treated as already verified
// and the delta-coder state entering the frame is seeded, so feeding
// the stream's bytes from fp.Offset onward replays exactly the frames
// from that boundary, with event-for-event identical semantics to a
// decode from the start of the stream.
func (d *ShardDecoder) Seek(fp FramePos) {
	*d = ShardDecoder{tid: fp.TID, m: fp.M, u: fp.U, v: fp.V, hdr: len(magic)}
}

// ReplayBytesRange replays frames [from, to) of a contiguous stream
// through h, using an index previously built by IndexFrames over the
// same bytes. It is the bounds-checked range-seek entry point: the
// range is validated against the index and the index against the data,
// so a stale or hostile index cannot cause an out-of-bounds decode.
// It returns the number of frames replayed.
func ReplayBytesRange(data []byte, index []FramePos, from, to int, h Handler) (int, error) {
	if from < 0 || to < from || to > len(index) {
		return 0, fmt.Errorf("trace: frame range [%d,%d) outside index of %d frames", from, to, len(index))
	}
	if from == to {
		return 0, nil
	}
	start := index[from].Offset
	end := int64(len(data))
	if to < len(index) {
		end = index[to].Offset
	}
	if start < int64(len(magic)) || start > end || end > int64(len(data)) {
		return 0, fmt.Errorf("trace: index offsets [%d,%d) outside stream of %d bytes", start, end, len(data))
	}
	var d ShardDecoder
	d.Seek(index[from])
	if err := d.Feed(data[start:end], h); err != nil {
		return d.Frames(), err
	}
	return d.Finish(h)
}
