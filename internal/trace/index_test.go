package trace

import (
	"bytes"
	"testing"
)

// indexStream builds a multi-frame stream whose delta-coder state (tid,
// level, coordinates) deliberately persists across every frame boundary,
// so a seek that fails to seed the carried state decodes wrong texels.
func indexStream(t *testing.T, frames int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	u, v := 100, -50
	for f := 0; f < frames; f++ {
		w.BeginFrame()
		for i := 0; i < 5; i++ {
			// Continue the coordinate walk from the previous frame and
			// only switch texture/level occasionally, so most frames
			// begin with inherited tid/m/u/v.
			u += 3*f + i
			v -= 2 * i
			w.Texel(uint32(7+f/2), u, v, (f/3)%4)
		}
		w.EndFrame(int64(10 * (f + 1)))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// frameEvents replays the whole stream and splits the event log per
// frame, as the oracle for range decodes.
func frameEvents(t *testing.T, data []byte) []*eventLog {
	t.Helper()
	split := &frameSplitter{}
	if _, err := ReplayBytes(data, split); err != nil {
		t.Fatal(err)
	}
	return split.frames
}

type frameSplitter struct {
	frames []*eventLog
	cur    *eventLog
}

func (s *frameSplitter) BeginFrame() {
	s.cur = &eventLog{}
	s.cur.BeginFrame()
	s.frames = append(s.frames, s.cur)
}
func (s *frameSplitter) EndFrame(px int64)            { s.cur.EndFrame(px) }
func (s *frameSplitter) Texel(tid uint32, u, v, m int) { s.cur.Texel(tid, u, v, m) }

// TestIndexFramesSeekMatchesSerial indexes a stream and replays every
// [from, to) frame range through the seek entry point, demanding the
// exact event sequence a serial decode produces for those frames.
func TestIndexFramesSeekMatchesSerial(t *testing.T) {
	const frames = 9
	data := indexStream(t, frames)
	index, err := IndexFrames(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(index) != frames {
		t.Fatalf("indexed %d frames, want %d", len(index), frames)
	}
	if index[0].Offset != int64(len(magic)) {
		t.Errorf("first frame offset = %d, want %d", index[0].Offset, len(magic))
	}
	want := frameEvents(t, data)

	for from := 0; from <= frames; from++ {
		for to := from; to <= frames; to++ {
			var got frameSplitter
			n, err := ReplayBytesRange(data, index, from, to, &got)
			if err != nil {
				t.Fatalf("range [%d,%d): %v", from, to, err)
			}
			if n != to-from {
				t.Fatalf("range [%d,%d): replayed %d frames", from, to, n)
			}
			for i, fl := range got.frames {
				if !fl.equal(want[from+i]) {
					t.Fatalf("range [%d,%d): frame %d events diverged", from, to, from+i)
				}
			}
		}
	}
}

// TestIndexFramesRejectsHostileStreams requires the structural scan to
// reject every malformed stream a full decode rejects — no position may
// ever point into bytes the validator did not walk.
func TestIndexFramesRejectsHostileStreams(t *testing.T) {
	good := indexStream(t, 3)
	hostile := map[string][]byte{
		"empty":             {},
		"short header":      []byte("TXT"),
		"bad magic":         []byte("WRONG!"),
		"unknown opcode":    append(append([]byte{}, magic...), 0xEE),
		"end outside frame": append(append([]byte{}, magic...), opPixels, 3),
		"sample outside":    append(append([]byte{}, magic...), opSample, 2, 2),
		"nested frame":      append(append([]byte{}, magic...), opFrame, opFrame),
		"overflow varint": append(append([]byte{}, magic...), opFrame, opSample,
			0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80),
		"truncated mid-frame":  good[:len(good)-3],
		"truncated mid-varint": good[:len(good)-1],
	}
	for name, data := range hostile {
		if _, err := IndexFrames(data); err == nil {
			t.Errorf("%s: IndexFrames accepted a malformed stream", name)
		}
		// The error must agree with the full decoder's verdict.
		var d ShardDecoder
		var log eventLog
		ferr := d.Feed(data, &log)
		if ferr == nil {
			_, ferr = d.Finish(&log)
		}
		if ferr == nil {
			t.Errorf("%s: contiguous decode accepted what IndexFrames rejected", name)
		}
	}
}

// TestReplayBytesRangeBounds pins the bounds checks of the range-seek
// entry point against bad ranges and hostile indices.
func TestReplayBytesRangeBounds(t *testing.T) {
	data := indexStream(t, 4)
	index, err := IndexFrames(data)
	if err != nil {
		t.Fatal(err)
	}
	var log eventLog
	for _, rg := range [][2]int{{-1, 2}, {3, 2}, {0, 5}, {5, 5}} {
		if _, err := ReplayBytesRange(data, index, rg[0], rg[1], &log); err == nil {
			t.Errorf("range [%d,%d): accepted out-of-bounds range", rg[0], rg[1])
		}
	}
	// A fabricated index pointing past the data must be refused, not
	// panic.
	bad := append([]FramePos(nil), index...)
	bad[1].Offset = int64(len(data)) + 100
	if _, err := ReplayBytesRange(data, bad, 1, 2, &log); err == nil {
		t.Error("accepted an index offset beyond the stream")
	}
	bad[1].Offset = 0 // inside the header
	if _, err := ReplayBytesRange(data, bad, 1, 2, &log); err == nil {
		t.Error("accepted an index offset inside the header")
	}
	// Empty range on a valid index replays nothing and succeeds.
	if n, err := ReplayBytesRange(data, index, 2, 2, &log); err != nil || n != 0 {
		t.Errorf("empty range: n=%d err=%v", n, err)
	}
}
