package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// carryMax bounds the pending-operation buffer of a ShardDecoder. The
// longest operation a stream can hold is opSample with two maximum-width
// varints (1 + 2*10 bytes), but a carry only ever holds an *undecided*
// prefix: a varint decides (value or overflow) by its 10th byte, so the
// longest undecidable tail is an opcode, one full 10-byte varint and nine
// continuation bytes of the next — 20 bytes. 24 leaves slack.
const carryMax = 24

// ShardDecoder decodes a trace stream delivered in arbitrary chunks, as
// the parallel sweep engine's pooled shard storage produces it: the
// render pass publishes fixed-size chunks of the encoded frame as they
// fill, and each replay worker feeds them through a ShardDecoder without
// ever materializing the contiguous stream. Operations that straddle a
// chunk boundary are carried between Feed calls. Semantics — event
// sequence, frame counts, error strings, FailingHandler aborts — are
// identical to ReplayBytes over the concatenated bytes; ReplayBytes is
// itself implemented on this decoder.
//
// The zero value is ready to use; Reset re-arms a used decoder.
type ShardDecoder struct {
	tid     uint32
	m, u, v int
	frames  int
	hdr     int // bytes of the magic header verified so far
	ncarry  int // pending bytes of an operation split across chunks
	inFrame bool
	err     error // first error, latched; Feed and Finish repeat it
	carry   [carryMax]byte
}

// Reset returns the decoder to its initial state for a new stream.
func (d *ShardDecoder) Reset() { *d = ShardDecoder{} }

// Frames returns the number of fully decoded frames so far.
func (d *ShardDecoder) Frames() int { return d.frames }

// uvarintFrom decodes an unsigned varint at data[i]. more means the
// operand runs off the end of data and needs bytes from the next chunk;
// err is the overflow (corruption) case.
func uvarintFrom(data []byte, i int) (v uint64, j int, more bool, err error) {
	x, n := binary.Uvarint(data[i:])
	if n == 0 {
		return 0, i, true, nil
	}
	if n < 0 {
		return 0, i, false, errBadUvarint
	}
	return x, i + n, false, nil
}

// varintFrom is uvarintFrom for zigzag varints.
func varintFrom(data []byte, i int) (v int64, j int, more bool, err error) {
	x, n := binary.Varint(data[i:])
	if n == 0 {
		return 0, i, true, nil
	}
	if n < 0 {
		return 0, i, false, errBadVarint
	}
	return x, i + n, false, nil
}

// step decodes exactly one operation from buf, which starts at an opcode.
// It returns the bytes consumed, or 0 when buf holds only a prefix of the
// operation; final converts that prefix into the truncated-operand error
// the contiguous decoder would report at end of stream.
func (d *ShardDecoder) step(buf []byte, h Handler, final bool) (int, error) {
	code := buf[0]
	i := 1
	switch code {
	case opSample:
		du, j, more, err := varintFrom(buf, i)
		if more {
			if final {
				return 0, errBadVarint
			}
			return 0, nil
		}
		if err != nil {
			return 0, err
		}
		dv, j2, more, err := varintFrom(buf, j)
		if more {
			if final {
				return 0, errBadVarint
			}
			return 0, nil
		}
		if err != nil {
			return 0, err
		}
		if !d.inFrame {
			return 0, errors.New("trace: sample outside frame")
		}
		d.u += int(du)
		d.v += int(dv)
		h.Texel(d.tid, d.u, d.v, d.m)
		return j2, nil
	case opFrame:
		if d.inFrame {
			return 0, errors.New("trace: nested frame")
		}
		if err := handlerErr(h); err != nil {
			return 0, err
		}
		d.inFrame = true
		h.BeginFrame()
		return i, nil
	case opTexture, opLevel, opPixels:
		x, j, more, err := uvarintFrom(buf, i)
		if more {
			if final {
				return 0, errBadUvarint
			}
			return 0, nil
		}
		if err != nil {
			return 0, err
		}
		switch code {
		case opTexture:
			d.tid = uint32(x)
		case opLevel:
			d.m = int(x)
		default: // opPixels
			if !d.inFrame {
				return 0, errors.New("trace: frame end outside frame")
			}
			d.inFrame = false
			d.frames++
			h.EndFrame(int64(x))
			if err := handlerErr(h); err != nil {
				return 0, err
			}
		}
		return j, nil
	default:
		return 0, badOpcode(code)
	}
}

// badOpcode builds the unknown-opcode error in exactly the form the
// historical contiguous decoder used, so chunked and whole-slice decodes
// stay indistinguishable to callers matching on the message.
func badOpcode(code byte) error {
	return fmt.Errorf("trace: unknown opcode %#x", code)
}

// Feed decodes every complete operation of data, invoking h per event,
// and stashes the bytes of a trailing incomplete operation for the next
// call. The first error is latched: subsequent Feed calls return it
// without touching h.
func (d *ShardDecoder) Feed(data []byte, h Handler) error {
	if d.err != nil {
		return d.err
	}
	for d.hdr < len(magic) && len(data) > 0 {
		if data[0] != magic[d.hdr] {
			d.err = errors.New("trace: bad magic or version")
			return d.err
		}
		d.hdr++
		data = data[1:]
	}
	if d.ncarry > 0 && len(data) > 0 {
		// Complete the operation split across the chunk boundary.
		n := copy(d.carry[d.ncarry:], data)
		used, err := d.step(d.carry[:d.ncarry+n], h, false)
		if err != nil {
			d.err = err
			return err
		}
		if used == 0 {
			// Still undecided; an undecidable prefix never exceeds
			// carryMax, so all of data fit in the carry buffer.
			d.ncarry += n
			return nil
		}
		data = data[used-d.ncarry:]
		d.ncarry = 0
	}

	// Hot loop, mirroring ReplayBytes' shape: decoder state in locals,
	// single-byte delta fast path first.
	tid, m, u, v := d.tid, d.m, d.u, d.v
	inFrame, frames := d.inFrame, d.frames
	var ferr error
	i, n := 0, len(data)
loop:
	for i < n {
		opStart := i
		code := data[i]
		i++
		switch code {
		case opSample:
			var du, dv int64
			if i+1 < n && data[i] < 0x80 && data[i+1] < 0x80 {
				bu, bv := data[i], data[i+1]
				du = int64(bu>>1) ^ -int64(bu&1)
				dv = int64(bv>>1) ^ -int64(bv&1)
				i += 2
			} else {
				var more bool
				if du, i, more, ferr = varintFrom(data, i); more || ferr != nil {
					if more {
						i = opStart
					}
					break loop
				}
				if dv, i, more, ferr = varintFrom(data, i); more || ferr != nil {
					if more {
						i = opStart
					}
					break loop
				}
			}
			if !inFrame {
				ferr = errors.New("trace: sample outside frame")
				break loop
			}
			u += int(du)
			v += int(dv)
			h.Texel(tid, u, v, m)
		case opFrame:
			if inFrame {
				ferr = errors.New("trace: nested frame")
				break loop
			}
			if ferr = handlerErr(h); ferr != nil {
				break loop
			}
			inFrame = true
			h.BeginFrame()
		case opTexture, opLevel, opPixels:
			var x uint64
			var more bool
			if x, i, more, ferr = uvarintFrom(data, i); more || ferr != nil {
				if more {
					i = opStart
				}
				break loop
			}
			switch code {
			case opTexture:
				tid = uint32(x)
			case opLevel:
				m = int(x)
			default: // opPixels
				if !inFrame {
					ferr = errors.New("trace: frame end outside frame")
					break loop
				}
				inFrame = false
				frames++
				h.EndFrame(int64(x))
				if ferr = handlerErr(h); ferr != nil {
					break loop
				}
			}
		default:
			ferr = badOpcode(code)
			break loop
		}
	}
	d.tid, d.m, d.u, d.v = tid, m, u, v
	d.inFrame, d.frames = inFrame, frames
	if ferr != nil {
		d.err = ferr
		return ferr
	}
	if i < n {
		d.ncarry = copy(d.carry[:], data[i:])
	}
	return nil
}

// Finish declares the stream complete and returns the frame count with
// the error a contiguous decode of the same bytes would have produced:
// a latched Feed error, a missing or short header, a truncated operand,
// truncation inside a frame, or the handler's own latched failure.
func (d *ShardDecoder) Finish(h Handler) (int, error) {
	if d.err != nil {
		return d.frames, d.err
	}
	if d.hdr < len(magic) {
		d.err = errors.New("trace: short header")
		return d.frames, d.err
	}
	if d.ncarry > 0 {
		_, err := d.step(d.carry[:d.ncarry], h, true)
		d.ncarry = 0
		if err != nil {
			d.err = err
			return d.frames, err
		}
	}
	if d.inFrame {
		d.err = errors.New("trace: truncated inside a frame")
		return d.frames, d.err
	}
	return d.frames, handlerErr(h)
}
