// Package trace defines a compact binary format for texel reference
// traces, enabling the trace-driven methodology of the paper: the
// rasterizer records the reference stream once, and the cache simulator
// replays it through many cache configurations without re-rendering.
//
// The format is a byte stream of opcodes with unsigned varint operands.
// Texel coordinates are delta-encoded (zigzag varints) against the
// previous sample, which compresses well because rasterization in scanline
// order produces strongly coherent texture-space walks.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Opcodes of the stream. A stream is a header followed by frames; each
// frame is opFrame, any number of state/sample ops, then opPixels closing
// the frame with its rasterized pixel count.
const (
	opFrame   = 0x01 // begin frame
	opTexture = 0x02 // set current texture id (uvarint)
	opLevel   = 0x03 // set current MIP level (uvarint)
	opSample  = 0x04 // texel at (last.u + zigzag, last.v + zigzag)
	opPixels  = 0x05 // end frame; operand = pixels rasterized (uvarint)
)

// magic identifies trace streams; the trailing byte is the version.
var magic = []byte{'T', 'X', 'T', 'R', 1}

// Event is one decoded texel reference.
type Event struct {
	TID     uint32
	U, V, M int
}

// Writer encodes a reference stream.
type Writer struct {
	w        *bufio.Writer
	buf      [binary.MaxVarintLen64]byte
	curTID   uint32
	curM     int
	lastU    int
	lastV    int
	started  bool
	inFrame  bool
	closed   bool
	closeErr error
	err      error
}

// NewWriter begins a stream on w.
func NewWriter(w io.Writer) *Writer {
	tw := &Writer{w: bufio.NewWriter(w)}
	_, tw.err = tw.w.Write(magic)
	// Force state emission on the first sample of the stream.
	tw.curTID = ^uint32(0)
	tw.curM = -1
	return tw
}

func (w *Writer) op(code byte) {
	if w.err != nil {
		return
	}
	w.err = w.w.WriteByte(code)
}

func (w *Writer) uvarint(v uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.buf[:], v)
	_, w.err = w.w.Write(w.buf[:n])
}

func (w *Writer) svarint(v int64) {
	if w.err != nil {
		return
	}
	n := binary.PutVarint(w.buf[:], v)
	_, w.err = w.w.Write(w.buf[:n])
}

// BeginFrame starts a frame.
func (w *Writer) BeginFrame() {
	if w.inFrame {
		w.fail(errors.New("trace: BeginFrame inside a frame"))
		return
	}
	w.inFrame = true
	w.op(opFrame)
}

// Texel records one texel reference. It is the per-texel entry point of
// the trace-record path — the rasterizer's devirtualized TraceSink calls
// it once per emitted texel.
//
// texsim:hot
func (w *Writer) Texel(tid uint32, u, v, m int) {
	if !w.inFrame {
		w.fail(errors.New("trace: Texel outside a frame"))
		return
	}
	if tid != w.curTID {
		w.op(opTexture)
		w.uvarint(uint64(tid))
		w.curTID = tid
	}
	if m != w.curM {
		w.op(opLevel)
		w.uvarint(uint64(m))
		w.curM = m
	}
	w.op(opSample)
	w.svarint(int64(u - w.lastU))
	w.svarint(int64(v - w.lastV))
	w.lastU, w.lastV = u, v
}

// EndFrame closes the frame, recording the rasterized pixel count.
func (w *Writer) EndFrame(pixels int64) {
	if !w.inFrame {
		w.fail(errors.New("trace: EndFrame outside a frame"))
		return
	}
	w.inFrame = false
	w.op(opPixels)
	w.uvarint(uint64(pixels))
}

func (w *Writer) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// Err returns the first error the writer has encountered so far, nil if
// none. Callers recording long streams can poll it between frames to stop
// rendering as soon as the underlying writer fails.
func (w *Writer) Err() error { return w.err }

// Close flushes the stream and returns the first error encountered: a
// prior write failure, closing mid-frame, or the flush itself. Buffered
// bytes are flushed even on error, so the complete frames of a partial
// stream remain decodable. Close is idempotent: repeated calls return the
// same result without further writes.
func (w *Writer) Close() error {
	if w.closed {
		return w.closeErr
	}
	w.closed = true
	flushErr := w.w.Flush()
	switch {
	case w.err != nil:
		w.closeErr = w.err
	case w.inFrame:
		w.closeErr = errors.New("trace: Close inside a frame")
	default:
		w.closeErr = flushErr
	}
	return w.closeErr
}

// Handler receives replayed trace content. BeginFrame is called before the
// frame's texels; EndFrame after, with the frame's pixel count.
type Handler interface {
	BeginFrame()
	Texel(tid uint32, u, v, m int)
	EndFrame(pixels int64)
}

// FailingHandler is an optional extension of Handler. A handler whose
// ReplayErr returns non-nil aborts the replay: the decoders consult it at
// frame boundaries (cheap — never on the per-texel path) and return the
// handler's error with the count of fully replayed frames. Handlers that
// validate events against external state (texture registries, address
// tables) latch their first failure here instead of panicking mid-stream.
type FailingHandler interface {
	ReplayErr() error
}

// handlerErr returns the handler's latched error when h implements
// FailingHandler, nil otherwise.
func handlerErr(h Handler) error {
	if f, ok := h.(FailingHandler); ok {
		return f.ReplayErr()
	}
	return nil
}

// Replay decodes a stream from r, invoking h for each event. It returns
// the number of frames replayed.
func Replay(r io.Reader, h Handler) (frames int, err error) {
	return ReplayFrames(r, h, 0)
}

// ReplayFrames is Replay bounded to the first maxFrames frames of the
// stream (0 or negative means no limit). Decoding stops cleanly at the
// closing frame boundary, so a bounded replay never reads past its last
// frame's data.
func ReplayFrames(r io.Reader, h Handler, maxFrames int) (frames int, err error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return 0, fmt.Errorf("trace: reading header: %w", err)
	}
	for i, b := range magic {
		if head[i] != b {
			return 0, errors.New("trace: bad magic or version")
		}
	}
	var (
		tid     uint32
		m       int
		u, v    int
		inFrame bool
	)
	for {
		code, err := br.ReadByte()
		if err == io.EOF {
			if inFrame {
				return frames, errors.New("trace: truncated inside a frame")
			}
			return frames, handlerErr(h)
		}
		if err != nil {
			return frames, err
		}
		switch code {
		case opFrame:
			if inFrame {
				return frames, errors.New("trace: nested frame")
			}
			if err := handlerErr(h); err != nil {
				return frames, err
			}
			inFrame = true
			h.BeginFrame()
		case opTexture:
			x, err := binary.ReadUvarint(br)
			if err != nil {
				return frames, err
			}
			tid = uint32(x)
		case opLevel:
			x, err := binary.ReadUvarint(br)
			if err != nil {
				return frames, err
			}
			m = int(x)
		case opSample:
			du, err := binary.ReadVarint(br)
			if err != nil {
				return frames, err
			}
			dv, err := binary.ReadVarint(br)
			if err != nil {
				return frames, err
			}
			if !inFrame {
				return frames, errors.New("trace: sample outside frame")
			}
			u += int(du)
			v += int(dv)
			h.Texel(tid, u, v, m)
		case opPixels:
			x, err := binary.ReadUvarint(br)
			if err != nil {
				return frames, err
			}
			if !inFrame {
				return frames, errors.New("trace: frame end outside frame")
			}
			inFrame = false
			frames++
			h.EndFrame(int64(x))
			if err := handlerErr(h); err != nil {
				return frames, err
			}
			if maxFrames > 0 && frames >= maxFrames {
				return frames, nil
			}
		default:
			return frames, fmt.Errorf("trace: unknown opcode %#x", code)
		}
	}
}

// Decoder errors shared by the slice decoder's helpers.
var (
	errBadUvarint = errors.New("trace: bad uvarint")
	errBadVarint  = errors.New("trace: bad varint")
)

// ReplayBytes decodes an in-memory stream, invoking h for each event. It
// is the whole-slice entry to the replay path: the decode loop indexes
// the slice directly instead of paying an io.Reader round trip per byte,
// and the sample loop special-cases single-byte deltas, which dominate
// coherent rasterization walks. Semantics are identical to Replay,
// including FailingHandler aborts. It is implemented as a single Feed
// into a ShardDecoder, so chunked and contiguous decodes cannot diverge.
func ReplayBytes(data []byte, h Handler) (frames int, err error) {
	if len(data) < len(magic) {
		return 0, errors.New("trace: short header")
	}
	var d ShardDecoder
	if err := d.Feed(data, h); err != nil {
		return d.frames, err
	}
	return d.Finish(h)
}
