// Package trace defines a compact binary format for texel reference
// traces, enabling the trace-driven methodology of the paper: the
// rasterizer records the reference stream once, and the cache simulator
// replays it through many cache configurations without re-rendering.
//
// The format is a byte stream of opcodes with unsigned varint operands.
// Texel coordinates are delta-encoded (zigzag varints) against the
// previous sample, which compresses well because rasterization in scanline
// order produces strongly coherent texture-space walks.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Opcodes of the stream. A stream is a header followed by frames; each
// frame is opFrame, any number of state/sample ops, then opPixels closing
// the frame with its rasterized pixel count.
const (
	opFrame   = 0x01 // begin frame
	opTexture = 0x02 // set current texture id (uvarint)
	opLevel   = 0x03 // set current MIP level (uvarint)
	opSample  = 0x04 // texel at (last.u + zigzag, last.v + zigzag)
	opPixels  = 0x05 // end frame; operand = pixels rasterized (uvarint)
)

// magic identifies trace streams; the trailing byte is the version.
var magic = []byte{'T', 'X', 'T', 'R', 1}

// Event is one decoded texel reference.
type Event struct {
	TID     uint32
	U, V, M int
}

// Writer encodes a reference stream.
type Writer struct {
	w       *bufio.Writer
	buf     [binary.MaxVarintLen64]byte
	curTID  uint32
	curM    int
	lastU   int
	lastV   int
	started bool
	inFrame bool
	err     error
}

// NewWriter begins a stream on w.
func NewWriter(w io.Writer) *Writer {
	tw := &Writer{w: bufio.NewWriter(w)}
	_, tw.err = tw.w.Write(magic)
	// Force state emission on the first sample of the stream.
	tw.curTID = ^uint32(0)
	tw.curM = -1
	return tw
}

func (w *Writer) op(code byte) {
	if w.err != nil {
		return
	}
	w.err = w.w.WriteByte(code)
}

func (w *Writer) uvarint(v uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.buf[:], v)
	_, w.err = w.w.Write(w.buf[:n])
}

func (w *Writer) svarint(v int64) {
	if w.err != nil {
		return
	}
	n := binary.PutVarint(w.buf[:], v)
	_, w.err = w.w.Write(w.buf[:n])
}

// BeginFrame starts a frame.
func (w *Writer) BeginFrame() {
	if w.inFrame {
		w.fail(errors.New("trace: BeginFrame inside a frame"))
		return
	}
	w.inFrame = true
	w.op(opFrame)
}

// Texel records one texel reference.
func (w *Writer) Texel(tid uint32, u, v, m int) {
	if !w.inFrame {
		w.fail(errors.New("trace: Texel outside a frame"))
		return
	}
	if tid != w.curTID {
		w.op(opTexture)
		w.uvarint(uint64(tid))
		w.curTID = tid
	}
	if m != w.curM {
		w.op(opLevel)
		w.uvarint(uint64(m))
		w.curM = m
	}
	w.op(opSample)
	w.svarint(int64(u - w.lastU))
	w.svarint(int64(v - w.lastV))
	w.lastU, w.lastV = u, v
}

// EndFrame closes the frame, recording the rasterized pixel count.
func (w *Writer) EndFrame(pixels int64) {
	if !w.inFrame {
		w.fail(errors.New("trace: EndFrame outside a frame"))
		return
	}
	w.inFrame = false
	w.op(opPixels)
	w.uvarint(uint64(pixels))
}

func (w *Writer) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// Close flushes the stream and returns the first error encountered.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.inFrame {
		return errors.New("trace: Close inside a frame")
	}
	return w.w.Flush()
}

// Handler receives replayed trace content. BeginFrame is called before the
// frame's texels; EndFrame after, with the frame's pixel count.
type Handler interface {
	BeginFrame()
	Texel(tid uint32, u, v, m int)
	EndFrame(pixels int64)
}

// Replay decodes a stream from r, invoking h for each event. It returns
// the number of frames replayed.
func Replay(r io.Reader, h Handler) (frames int, err error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return 0, fmt.Errorf("trace: reading header: %w", err)
	}
	for i, b := range magic {
		if head[i] != b {
			return 0, errors.New("trace: bad magic or version")
		}
	}
	var (
		tid     uint32
		m       int
		u, v    int
		inFrame bool
	)
	for {
		code, err := br.ReadByte()
		if err == io.EOF {
			if inFrame {
				return frames, errors.New("trace: truncated inside a frame")
			}
			return frames, nil
		}
		if err != nil {
			return frames, err
		}
		switch code {
		case opFrame:
			if inFrame {
				return frames, errors.New("trace: nested frame")
			}
			inFrame = true
			h.BeginFrame()
		case opTexture:
			x, err := binary.ReadUvarint(br)
			if err != nil {
				return frames, err
			}
			tid = uint32(x)
		case opLevel:
			x, err := binary.ReadUvarint(br)
			if err != nil {
				return frames, err
			}
			m = int(x)
		case opSample:
			du, err := binary.ReadVarint(br)
			if err != nil {
				return frames, err
			}
			dv, err := binary.ReadVarint(br)
			if err != nil {
				return frames, err
			}
			if !inFrame {
				return frames, errors.New("trace: sample outside frame")
			}
			u += int(du)
			v += int(dv)
			h.Texel(tid, u, v, m)
		case opPixels:
			x, err := binary.ReadUvarint(br)
			if err != nil {
				return frames, err
			}
			if !inFrame {
				return frames, errors.New("trace: frame end outside frame")
			}
			inFrame = false
			frames++
			h.EndFrame(int64(x))
		default:
			return frames, fmt.Errorf("trace: unknown opcode %#x", code)
		}
	}
}
