package trace_test

import (
	"bytes"
	"fmt"

	"texcache/internal/trace"
)

// printHandler prints each replayed event.
type printHandler struct{}

func (printHandler) BeginFrame() { fmt.Println("frame start") }

func (printHandler) Texel(tid uint32, u, v, m int) {
	fmt.Printf("  texel tid=%d (%d,%d) level %d\n", tid, u, v, m)
}

func (printHandler) EndFrame(pixels int64) {
	fmt.Printf("frame end, %d pixels\n", pixels)
}

// Example demonstrates recording a reference stream and replaying it.
func Example() {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	w.BeginFrame()
	w.Texel(3, 64, 32, 0)
	w.Texel(3, 65, 32, 0)
	w.EndFrame(2)
	if err := w.Close(); err != nil {
		panic(err)
	}

	frames, err := trace.Replay(&buf, printHandler{})
	if err != nil {
		panic(err)
	}
	fmt.Println("frames:", frames)
	// Output:
	// frame start
	//   texel tid=3 (64,32) level 0
	//   texel tid=3 (65,32) level 0
	// frame end, 2 pixels
	// frames: 1
}
