package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// recorder collects replayed events for comparison.
type recorder struct {
	frames  [][]Event
	pixels  []int64
	current []Event
}

func (r *recorder) BeginFrame() { r.current = nil }

func (r *recorder) Texel(tid uint32, u, v, m int) {
	r.current = append(r.current, Event{tid, u, v, m})
}

func (r *recorder) EndFrame(pixels int64) {
	r.frames = append(r.frames, r.current)
	r.pixels = append(r.pixels, pixels)
}

func TestRoundTripSimple(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.BeginFrame()
	w.Texel(3, 10, 20, 0)
	w.Texel(3, 11, 20, 0)
	w.Texel(7, 0, 0, 2)
	w.EndFrame(42)
	w.BeginFrame()
	w.Texel(7, 1, 1, 2)
	w.EndFrame(7)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var r recorder
	frames, err := Replay(&buf, &r)
	if err != nil {
		t.Fatal(err)
	}
	if frames != 2 {
		t.Fatalf("frames = %d, want 2", frames)
	}
	want0 := []Event{{3, 10, 20, 0}, {3, 11, 20, 0}, {7, 0, 0, 2}}
	if len(r.frames[0]) != len(want0) {
		t.Fatalf("frame 0 events = %d, want %d", len(r.frames[0]), len(want0))
	}
	for i, e := range want0 {
		if r.frames[0][i] != e {
			t.Errorf("frame 0 event %d = %+v, want %+v", i, r.frames[0][i], e)
		}
	}
	if r.pixels[0] != 42 || r.pixels[1] != 7 {
		t.Errorf("pixels = %v", r.pixels)
	}
	if r.frames[1][0] != (Event{7, 1, 1, 2}) {
		t.Errorf("frame 1 event = %+v", r.frames[1][0])
	}
}

func TestRoundTripRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var want [][]Event
	var wantPix []int64
	for f := 0; f < 20; f++ {
		w.BeginFrame()
		var evs []Event
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			e := Event{
				TID: uint32(rng.Intn(50)),
				U:   rng.Intn(4096),
				V:   rng.Intn(4096),
				M:   rng.Intn(12),
			}
			evs = append(evs, e)
			w.Texel(e.TID, e.U, e.V, e.M)
		}
		pix := rng.Int63n(1 << 40)
		w.EndFrame(pix)
		want = append(want, evs)
		wantPix = append(wantPix, pix)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var r recorder
	frames, err := Replay(&buf, &r)
	if err != nil {
		t.Fatal(err)
	}
	if frames != 20 {
		t.Fatalf("frames = %d", frames)
	}
	for f := range want {
		if len(r.frames[f]) != len(want[f]) {
			t.Fatalf("frame %d: %d events, want %d", f, len(r.frames[f]), len(want[f]))
		}
		for i := range want[f] {
			if r.frames[f][i] != want[f][i] {
				t.Fatalf("frame %d event %d = %+v, want %+v",
					f, i, r.frames[f][i], want[f][i])
			}
		}
		if r.pixels[f] != wantPix[f] {
			t.Errorf("frame %d pixels = %d, want %d", f, r.pixels[f], wantPix[f])
		}
	}
}

func TestCompressionOfCoherentStream(t *testing.T) {
	// A coherent texture-space walk should cost only a few bytes per
	// sample thanks to delta coding.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.BeginFrame()
	const n = 10000
	for i := 0; i < n; i++ {
		w.Texel(1, i%256, i/256, 0)
	}
	w.EndFrame(n)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	perSample := float64(buf.Len()) / n
	if perSample > 4 {
		t.Errorf("coherent stream costs %.2f bytes/sample, want <= 4", perSample)
	}
}

func TestWriterMisuse(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Texel(0, 0, 0, 0) // outside frame
	if err := w.Close(); err == nil {
		t.Error("Texel outside frame not reported")
	}

	w = NewWriter(&buf)
	w.BeginFrame()
	w.BeginFrame()
	if err := w.Close(); err == nil {
		t.Error("nested BeginFrame not reported")
	}

	w = NewWriter(&buf)
	w.BeginFrame()
	if err := w.Close(); err == nil {
		t.Error("Close inside frame not reported")
	}
}

func TestReplayBadMagic(t *testing.T) {
	var r recorder
	if _, err := Replay(strings.NewReader("NOTATRACE"), &r); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Replay(strings.NewReader("TX"), &r); err == nil {
		t.Error("short header accepted")
	}
}

func TestReplayTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.BeginFrame()
	w.Texel(1, 5, 5, 0)
	w.EndFrame(1)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut inside the frame body.
	cut := full[:len(full)-3]
	var r recorder
	if _, err := Replay(bytes.NewReader(cut), &r); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestReplayUnknownOpcode(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{'T', 'X', 'T', 'R', 1, 0xEE})
	var r recorder
	if _, err := Replay(&buf, &r); err == nil {
		t.Error("unknown opcode accepted")
	}
}

func TestNegativeDeltasAcrossFrames(t *testing.T) {
	// Deltas persist across frame boundaries; walking backwards must
	// reproduce exactly.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.BeginFrame()
	w.Texel(0, 1000, 1000, 3)
	w.EndFrame(1)
	w.BeginFrame()
	w.Texel(0, 1, 2, 3)
	w.EndFrame(1)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var r recorder
	if _, err := Replay(&buf, &r); err != nil {
		t.Fatal(err)
	}
	if r.frames[1][0] != (Event{0, 1, 2, 3}) {
		t.Errorf("event = %+v", r.frames[1][0])
	}
}

// errWriter fails after n bytes, exercising error propagation through the
// buffered encoder.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errFull
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errFull
	}
	w.n -= len(p)
	return len(p), nil
}

var errFull = &writerError{"disk full"}

type writerError struct{ msg string }

func (e *writerError) Error() string { return e.msg }

func TestWriterPropagatesIOError(t *testing.T) {
	// Small limit: the header may fit but frame data will not. The
	// encoder buffers, so the error surfaces at Close.
	w := NewWriter(&errWriter{n: 8})
	for f := 0; f < 100; f++ {
		w.BeginFrame()
		for i := 0; i < 100; i++ {
			w.Texel(uint32(i%7), i*3, i*5, i%9)
		}
		w.EndFrame(100)
	}
	if err := w.Close(); err == nil {
		t.Error("write error not propagated")
	}
	// EndFrame outside a frame is also an error even with I/O broken.
	w2 := NewWriter(&errWriter{n: 0})
	w2.EndFrame(1)
	if err := w2.Close(); err == nil {
		t.Error("EndFrame misuse not reported")
	}
}

func TestCloseMidFrameFlushesCompleteFrames(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.BeginFrame()
	w.Texel(1, 10, 10, 0)
	w.EndFrame(5)
	w.BeginFrame()
	w.Texel(1, 11, 10, 0)
	w.EndFrame(6)
	w.BeginFrame() // left open
	w.Texel(2, 0, 0, 1)
	err := w.Close()
	if err == nil {
		t.Fatal("Close inside a frame not reported")
	}
	// Idempotent: a second Close returns the same error, writes nothing.
	n := buf.Len()
	if err2 := w.Close(); err2 != err {
		t.Errorf("second Close = %v, want %v", err2, err)
	}
	if buf.Len() != n {
		t.Error("second Close wrote bytes")
	}
	// The flushed prefix still holds the two complete frames: a bounded
	// replay decodes them cleanly, an unbounded one reports truncation
	// only after delivering both.
	var r recorder
	frames, err := ReplayFrames(bytes.NewReader(buf.Bytes()), &r, 2)
	if err != nil || frames != 2 {
		t.Fatalf("bounded replay = (%d, %v), want (2, nil)", frames, err)
	}
	if r.pixels[0] != 5 || r.pixels[1] != 6 {
		t.Errorf("pixels = %v", r.pixels)
	}
	var r2 recorder
	frames, err = Replay(bytes.NewReader(buf.Bytes()), &r2)
	if err == nil || frames != 2 {
		t.Errorf("unbounded replay = (%d, %v), want (2, truncation error)", frames, err)
	}
}

func TestCloseIdempotentOnSuccess(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.BeginFrame()
	w.Texel(0, 0, 0, 0)
	w.EndFrame(1)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
}

func TestReplayFramesLimit(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for f := 0; f < 5; f++ {
		w.BeginFrame()
		w.Texel(0, f, f, 0)
		w.EndFrame(int64(f))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	var r recorder
	frames, err := ReplayFrames(bytes.NewReader(data), &r, 3)
	if err != nil {
		t.Fatal(err)
	}
	if frames != 3 || len(r.frames) != 3 {
		t.Fatalf("frames = %d (%d delivered), want 3", frames, len(r.frames))
	}
	// A limit at or past the stream end behaves like no limit.
	var r2 recorder
	if frames, err = ReplayFrames(bytes.NewReader(data), &r2, 9); err != nil || frames != 5 {
		t.Errorf("over-limit replay = (%d, %v), want (5, nil)", frames, err)
	}
	var r3 recorder
	if frames, err = ReplayFrames(bytes.NewReader(data), &r3, 0); err != nil || frames != 5 {
		t.Errorf("unlimited replay = (%d, %v), want (5, nil)", frames, err)
	}
}

// latchingHandler fails itself after a fixed number of frames, modelling a
// handler that validates events against external state.
type latchingHandler struct {
	recorder
	failAfter int
	err       error
}

func (h *latchingHandler) EndFrame(pixels int64) {
	h.recorder.EndFrame(pixels)
	if len(h.recorder.frames) >= h.failAfter {
		h.err = errFull
	}
}

func (h *latchingHandler) ReplayErr() error { return h.err }

func TestFailingHandlerAbortsReplay(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for f := 0; f < 6; f++ {
		w.BeginFrame()
		w.Texel(0, f, 0, 0)
		w.EndFrame(1)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	h := &latchingHandler{failAfter: 2}
	frames, err := Replay(bytes.NewReader(data), h)
	if err != errFull {
		t.Fatalf("err = %v, want the handler's error", err)
	}
	if frames != 2 || len(h.recorder.frames) != 2 {
		t.Errorf("frames = %d (%d delivered), want 2", frames, len(h.recorder.frames))
	}
	hb := &latchingHandler{failAfter: 2}
	frames, err = ReplayBytes(data, hb)
	if err != errFull || frames != 2 {
		t.Errorf("ReplayBytes = (%d, %v), want (2, handler error)", frames, err)
	}
}

// TestReplayBytesMatchesReplay drives both decoders over the same streams —
// valid, truncated, and corrupted — and demands identical frame counts and
// error outcomes.
func TestReplayBytesMatchesReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for f := 0; f < 10; f++ {
		w.BeginFrame()
		for i := 0; i < 50+rng.Intn(50); i++ {
			w.Texel(uint32(rng.Intn(20)), rng.Intn(2048), rng.Intn(2048), rng.Intn(11))
		}
		w.EndFrame(rng.Int63n(1 << 30))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	inputs := [][]byte{
		valid,
		valid[:len(valid)-4],                     // truncated mid-frame
		valid[:3],                                // short header
		append([]byte("XXTR\x01"), valid[5:]...), // bad magic
		{},
	}
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] = 0xEE
	inputs = append(inputs, corrupt)

	for i, data := range inputs {
		var ra, rb recorder
		fa, ea := Replay(bytes.NewReader(data), &ra)
		fb, eb := ReplayBytes(data, &rb)
		if fa != fb {
			t.Errorf("input %d: frames %d (reader) vs %d (bytes)", i, fa, fb)
		}
		if (ea == nil) != (eb == nil) {
			t.Errorf("input %d: err %v (reader) vs %v (bytes)", i, ea, eb)
		}
		if len(ra.frames) != len(rb.frames) {
			t.Fatalf("input %d: delivered %d vs %d frames", i, len(ra.frames), len(rb.frames))
		}
		for f := range ra.frames {
			if len(ra.frames[f]) != len(rb.frames[f]) {
				t.Fatalf("input %d frame %d: %d vs %d events",
					i, f, len(ra.frames[f]), len(rb.frames[f]))
			}
			for j := range ra.frames[f] {
				if ra.frames[f][j] != rb.frames[f][j] {
					t.Fatalf("input %d frame %d event %d: %+v vs %+v",
						i, f, j, ra.frames[f][j], rb.frames[f][j])
				}
			}
		}
	}
}
