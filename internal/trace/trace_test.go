package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// recorder collects replayed events for comparison.
type recorder struct {
	frames  [][]Event
	pixels  []int64
	current []Event
}

func (r *recorder) BeginFrame() { r.current = nil }

func (r *recorder) Texel(tid uint32, u, v, m int) {
	r.current = append(r.current, Event{tid, u, v, m})
}

func (r *recorder) EndFrame(pixels int64) {
	r.frames = append(r.frames, r.current)
	r.pixels = append(r.pixels, pixels)
}

func TestRoundTripSimple(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.BeginFrame()
	w.Texel(3, 10, 20, 0)
	w.Texel(3, 11, 20, 0)
	w.Texel(7, 0, 0, 2)
	w.EndFrame(42)
	w.BeginFrame()
	w.Texel(7, 1, 1, 2)
	w.EndFrame(7)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var r recorder
	frames, err := Replay(&buf, &r)
	if err != nil {
		t.Fatal(err)
	}
	if frames != 2 {
		t.Fatalf("frames = %d, want 2", frames)
	}
	want0 := []Event{{3, 10, 20, 0}, {3, 11, 20, 0}, {7, 0, 0, 2}}
	if len(r.frames[0]) != len(want0) {
		t.Fatalf("frame 0 events = %d, want %d", len(r.frames[0]), len(want0))
	}
	for i, e := range want0 {
		if r.frames[0][i] != e {
			t.Errorf("frame 0 event %d = %+v, want %+v", i, r.frames[0][i], e)
		}
	}
	if r.pixels[0] != 42 || r.pixels[1] != 7 {
		t.Errorf("pixels = %v", r.pixels)
	}
	if r.frames[1][0] != (Event{7, 1, 1, 2}) {
		t.Errorf("frame 1 event = %+v", r.frames[1][0])
	}
}

func TestRoundTripRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var want [][]Event
	var wantPix []int64
	for f := 0; f < 20; f++ {
		w.BeginFrame()
		var evs []Event
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			e := Event{
				TID: uint32(rng.Intn(50)),
				U:   rng.Intn(4096),
				V:   rng.Intn(4096),
				M:   rng.Intn(12),
			}
			evs = append(evs, e)
			w.Texel(e.TID, e.U, e.V, e.M)
		}
		pix := rng.Int63n(1 << 40)
		w.EndFrame(pix)
		want = append(want, evs)
		wantPix = append(wantPix, pix)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var r recorder
	frames, err := Replay(&buf, &r)
	if err != nil {
		t.Fatal(err)
	}
	if frames != 20 {
		t.Fatalf("frames = %d", frames)
	}
	for f := range want {
		if len(r.frames[f]) != len(want[f]) {
			t.Fatalf("frame %d: %d events, want %d", f, len(r.frames[f]), len(want[f]))
		}
		for i := range want[f] {
			if r.frames[f][i] != want[f][i] {
				t.Fatalf("frame %d event %d = %+v, want %+v",
					f, i, r.frames[f][i], want[f][i])
			}
		}
		if r.pixels[f] != wantPix[f] {
			t.Errorf("frame %d pixels = %d, want %d", f, r.pixels[f], wantPix[f])
		}
	}
}

func TestCompressionOfCoherentStream(t *testing.T) {
	// A coherent texture-space walk should cost only a few bytes per
	// sample thanks to delta coding.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.BeginFrame()
	const n = 10000
	for i := 0; i < n; i++ {
		w.Texel(1, i%256, i/256, 0)
	}
	w.EndFrame(n)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	perSample := float64(buf.Len()) / n
	if perSample > 4 {
		t.Errorf("coherent stream costs %.2f bytes/sample, want <= 4", perSample)
	}
}

func TestWriterMisuse(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Texel(0, 0, 0, 0) // outside frame
	if err := w.Close(); err == nil {
		t.Error("Texel outside frame not reported")
	}

	w = NewWriter(&buf)
	w.BeginFrame()
	w.BeginFrame()
	if err := w.Close(); err == nil {
		t.Error("nested BeginFrame not reported")
	}

	w = NewWriter(&buf)
	w.BeginFrame()
	if err := w.Close(); err == nil {
		t.Error("Close inside frame not reported")
	}
}

func TestReplayBadMagic(t *testing.T) {
	var r recorder
	if _, err := Replay(strings.NewReader("NOTATRACE"), &r); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Replay(strings.NewReader("TX"), &r); err == nil {
		t.Error("short header accepted")
	}
}

func TestReplayTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.BeginFrame()
	w.Texel(1, 5, 5, 0)
	w.EndFrame(1)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut inside the frame body.
	cut := full[:len(full)-3]
	var r recorder
	if _, err := Replay(bytes.NewReader(cut), &r); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestReplayUnknownOpcode(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{'T', 'X', 'T', 'R', 1, 0xEE})
	var r recorder
	if _, err := Replay(&buf, &r); err == nil {
		t.Error("unknown opcode accepted")
	}
}

func TestNegativeDeltasAcrossFrames(t *testing.T) {
	// Deltas persist across frame boundaries; walking backwards must
	// reproduce exactly.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.BeginFrame()
	w.Texel(0, 1000, 1000, 3)
	w.EndFrame(1)
	w.BeginFrame()
	w.Texel(0, 1, 2, 3)
	w.EndFrame(1)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var r recorder
	if _, err := Replay(&buf, &r); err != nil {
		t.Fatal(err)
	}
	if r.frames[1][0] != (Event{0, 1, 2, 3}) {
		t.Errorf("event = %+v", r.frames[1][0])
	}
}

// errWriter fails after n bytes, exercising error propagation through the
// buffered encoder.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errFull
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errFull
	}
	w.n -= len(p)
	return len(p), nil
}

var errFull = &writerError{"disk full"}

type writerError struct{ msg string }

func (e *writerError) Error() string { return e.msg }

func TestWriterPropagatesIOError(t *testing.T) {
	// Small limit: the header may fit but frame data will not. The
	// encoder buffers, so the error surfaces at Close.
	w := NewWriter(&errWriter{n: 8})
	for f := 0; f < 100; f++ {
		w.BeginFrame()
		for i := 0; i < 100; i++ {
			w.Texel(uint32(i%7), i*3, i*5, i%9)
		}
		w.EndFrame(100)
	}
	if err := w.Close(); err == nil {
		t.Error("write error not propagated")
	}
	// EndFrame outside a frame is also an error even with I/O broken.
	w2 := NewWriter(&errWriter{n: 0})
	w2.EndFrame(1)
	if err := w2.Close(); err == nil {
		t.Error("EndFrame misuse not reported")
	}
}
