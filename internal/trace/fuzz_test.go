package trace

import (
	"bytes"
	"testing"
)

// discardHandler drops all events; fuzzing only cares that Replay never
// panics or loops on malformed input.
type discardHandler struct{}

func (discardHandler) BeginFrame()                   {}
func (discardHandler) Texel(tid uint32, u, v, m int) {}
func (discardHandler) EndFrame(pixels int64)         {}

// FuzzReplay feeds arbitrary bytes to the decoder. Malformed streams must
// produce an error (or succeed), never a panic or unbounded memory growth.
func FuzzReplay(f *testing.F) {
	// Seed with a valid stream.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.BeginFrame()
	w.Texel(3, 100, 200, 2)
	w.Texel(3, 101, 200, 2)
	w.Texel(9, 0, 0, 0)
	w.EndFrame(7)
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("TXTR"))
	f.Add([]byte{'T', 'X', 'T', 'R', 1, 0x01, 0x04, 0xFF})
	f.Add([]byte{'T', 'X', 'T', 'R', 1, 0x01, 0x05, 0x80, 0x80, 0x80})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Both decoders must terminate without panicking, and must agree
		// on the frame count and on whether the stream is well-formed.
		fa, ea := Replay(bytes.NewReader(data), discardHandler{})
		fb, eb := ReplayBytes(data, discardHandler{})
		if fa != fb {
			t.Fatalf("frames: %d (reader) vs %d (bytes)", fa, fb)
		}
		if (ea == nil) != (eb == nil) {
			t.Fatalf("errors disagree: %v (reader) vs %v (bytes)", ea, eb)
		}
	})
}

// FuzzRoundTrip checks that any sequence of well-formed writer calls
// decodes back to exactly the written events.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, spec []byte) {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		type ev struct {
			tid     uint32
			u, v, m int
		}
		var want []ev
		w.BeginFrame()
		for i := 0; i+3 < len(spec); i += 4 {
			e := ev{
				tid: uint32(spec[i]),
				u:   int(spec[i+1]) * 7,
				v:   int(spec[i+2]) * 13,
				m:   int(spec[i+3]) % 12,
			}
			want = append(want, e)
			w.Texel(e.tid, e.u, e.v, e.m)
		}
		w.EndFrame(int64(len(want)))
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		data := buf.Bytes()
		var got []ev
		h := handlerFuncs{
			texel: func(tid uint32, u, v, m int) {
				got = append(got, ev{tid, u, v, m})
			},
		}
		if _, err := Replay(bytes.NewReader(data), h); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("events: got %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("event %d: got %+v, want %+v", i, got[i], want[i])
			}
		}
		// The slice decoder must reproduce the identical event sequence.
		var got2 []ev
		h2 := handlerFuncs{
			texel: func(tid uint32, u, v, m int) {
				got2 = append(got2, ev{tid, u, v, m})
			},
		}
		if _, err := ReplayBytes(data, h2); err != nil {
			t.Fatal(err)
		}
		if len(got2) != len(want) {
			t.Fatalf("ReplayBytes events: got %d, want %d", len(got2), len(want))
		}
		for i := range want {
			if got2[i] != want[i] {
				t.Fatalf("ReplayBytes event %d: got %+v, want %+v", i, got2[i], want[i])
			}
		}
	})
}

// handlerFuncs adapts closures to Handler for tests.
type handlerFuncs struct {
	texel func(tid uint32, u, v, m int)
}

func (handlerFuncs) BeginFrame() {}

func (h handlerFuncs) Texel(tid uint32, u, v, m int) {
	if h.texel != nil {
		h.texel(tid, u, v, m)
	}
}

func (handlerFuncs) EndFrame(pixels int64) {}
