package trace

import (
	"bytes"
	"testing"
)

// feedChunks drives a ShardDecoder with data split at the given cut
// points (indices into data, strictly increasing) and returns the
// Finish result.
func feedChunks(t *testing.T, data []byte, cuts []int, h Handler) (int, error) {
	t.Helper()
	var d ShardDecoder
	prev := 0
	for _, c := range cuts {
		if err := d.Feed(data[prev:c], h); err != nil {
			return d.Frames(), err
		}
		prev = c
	}
	if err := d.Feed(data[prev:], h); err != nil {
		return d.Frames(), err
	}
	return d.Finish(h)
}

// everyCutPair exercises a stream at every single- and a sample of
// two-point splits, demanding byte-for-byte event agreement with the
// contiguous decoder.
func TestShardDecoderEveryCut(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.BeginFrame()
	w.Texel(7, 100, 200, 1)
	w.Texel(7, 101, 200, 1)
	w.Texel(9, 5000, -3, 2) // large deltas: multi-byte varints to straddle
	w.Texel(9, 5001, -2, 2)
	w.EndFrame(42)
	w.BeginFrame()
	w.Texel(1, 0, 0, 0)
	w.EndFrame(7)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	var want eventLog
	wantFrames, err := ReplayBytes(data, &want)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(data); cut++ {
		var got eventLog
		frames, err := feedChunks(t, data, []int{cut}, &got)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if frames != wantFrames {
			t.Fatalf("cut %d: frames = %d, want %d", cut, frames, wantFrames)
		}
		if !got.equal(&want) {
			t.Fatalf("cut %d: event log diverged", cut)
		}
	}
	// Pairs of cuts, striding to keep the count sane.
	for a := 0; a <= len(data); a += 3 {
		for b := a; b <= len(data); b += 5 {
			var got eventLog
			frames, err := feedChunks(t, data, []int{a, b}, &got)
			if err != nil {
				t.Fatalf("cuts %d,%d: %v", a, b, err)
			}
			if frames != wantFrames || !got.equal(&want) {
				t.Fatalf("cuts %d,%d: diverged", a, b)
			}
		}
	}
}

// eventLog records the replayed event sequence for comparison.
type eventLog struct {
	events []Event
	pixels []int64
	begins int
}

func (l *eventLog) BeginFrame()       { l.begins++ }
func (l *eventLog) EndFrame(px int64) { l.pixels = append(l.pixels, px) }
func (l *eventLog) Texel(tid uint32, u, v, m int) {
	l.events = append(l.events, Event{TID: tid, U: u, V: v, M: m})
}

func (l *eventLog) equal(o *eventLog) bool {
	if l.begins != o.begins || len(l.events) != len(o.events) || len(l.pixels) != len(o.pixels) {
		return false
	}
	for i := range l.events {
		if l.events[i] != o.events[i] {
			return false
		}
	}
	for i := range l.pixels {
		if l.pixels[i] != o.pixels[i] {
			return false
		}
	}
	return true
}

// Hostile prefixes: chunked decoding must agree with ReplayBytes on the
// error for truncated and corrupt streams, at every cut.
func TestShardDecoderHostileAgreesWithContiguous(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.BeginFrame()
	w.Texel(300, 70000, -70000, 3)
	w.EndFrame(9)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	hostile := [][]byte{
		{},
		[]byte("TXT"),
		[]byte("WRONG"),
		append(append([]byte{}, magic...), 0xEE), // unknown opcode
		append(append([]byte{}, magic...), opPixels, 3),      // frame end outside frame
		append(append([]byte{}, magic...), opSample, 2, 2),   // sample outside frame
		append(append([]byte{}, magic...), opFrame, opFrame), // nested frame
		append(append([]byte{}, magic...), opTexture, 0x80),  // truncated uvarint
	}
	for i := 1; i < len(full); i++ {
		hostile = append(hostile, full[:i]) // every truncation point
	}

	for _, data := range hostile {
		var ref eventLog
		wantFrames, wantErr := ReplayBytes(data, &ref)
		for cut := 0; cut <= len(data); cut++ {
			var got eventLog
			frames, err := feedChunks(t, data, []int{cut}, &got)
			if (err == nil) != (wantErr == nil) {
				t.Fatalf("data %x cut %d: err = %v, want %v", data, cut, err, wantErr)
			}
			if err != nil && wantErr != nil && err.Error() != wantErr.Error() {
				t.Fatalf("data %x cut %d: err = %q, want %q", data, cut, err, wantErr)
			}
			if frames != wantFrames {
				t.Fatalf("data %x cut %d: frames = %d, want %d", data, cut, frames, wantFrames)
			}
		}
	}
}

// A latched error must repeat on further Feeds without re-invoking the
// handler, and Reset must clear it.
func TestShardDecoderLatchAndReset(t *testing.T) {
	var d ShardDecoder
	var l eventLog
	bad := append(append([]byte{}, magic...), 0xEE)
	if err := d.Feed(bad, &l); err == nil {
		t.Fatal("want error on unknown opcode")
	}
	before := l.begins
	if err := d.Feed([]byte{opFrame}, &l); err == nil {
		t.Fatal("latched error not repeated")
	}
	if l.begins != before {
		t.Fatal("handler invoked after latched error")
	}
	if _, err := d.Finish(&l); err == nil {
		t.Fatal("Finish must repeat the latched error")
	}

	d.Reset()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.BeginFrame()
	w.Texel(1, 2, 3, 0)
	w.EndFrame(1)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Feed(buf.Bytes(), &l); err != nil {
		t.Fatal(err)
	}
	frames, err := d.Finish(&l)
	if err != nil || frames != 1 {
		t.Fatalf("after Reset: frames = %d, err = %v", frames, err)
	}
}

// FuzzShardChunks feeds arbitrary bytes through the chunked decoder at a
// fuzzer-chosen split and requires full agreement with ReplayBytes:
// frame count, error text and event sequence.
func FuzzShardChunks(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.BeginFrame()
	w.Texel(3, 10, 10, 0)
	w.Texel(3, 11, 10, 0)
	w.EndFrame(4)
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes(), uint16(7))
	f.Add([]byte("TXTR\x01"), uint16(2))
	f.Fuzz(func(t *testing.T, data []byte, rawCut uint16) {
		var ref eventLog
		wantFrames, wantErr := ReplayBytes(data, &ref)

		cut := 0
		if len(data) > 0 {
			cut = int(rawCut) % (len(data) + 1)
		}
		var got eventLog
		var d ShardDecoder
		frames, err := func() (int, error) {
			if err := d.Feed(data[:cut], &got); err != nil {
				return d.Frames(), err
			}
			if err := d.Feed(data[cut:], &got); err != nil {
				return d.Frames(), err
			}
			return d.Finish(&got)
		}()

		// ReplayBytes short-circuits streams shorter than the header
		// before feeding the decoder; the chunked path reports the
		// same error only at Finish, and may call the magic mismatch
		// first. Align on the one case where the contracts differ.
		if len(data) < 5 {
			if err == nil {
				t.Fatalf("short stream decoded without error")
			}
			return
		}
		if (err == nil) != (wantErr == nil) {
			t.Fatalf("err = %v, want %v (cut %d)", err, wantErr, cut)
		}
		if err != nil && err.Error() != wantErr.Error() {
			t.Fatalf("err = %q, want %q (cut %d)", err, wantErr, cut)
		}
		if frames != wantFrames {
			t.Fatalf("frames = %d, want %d (cut %d)", frames, wantFrames, cut)
		}
		if !got.equal(&ref) {
			t.Fatalf("event log diverged (cut %d)", cut)
		}
	})
}
