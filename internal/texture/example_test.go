package texture_test

import (
	"fmt"

	"texcache/internal/texture"
)

// ExampleTiling_Addr shows the virtual texture addressing of §2.2: a texel
// coordinate within a MIP level translates to <tid, L2, L1> with a few
// shifts and a table lookup.
func ExampleTiling_Addr() {
	tex := texture.MustNew("bricks", 64, 64, texture.RGB888, nil)
	tex.ID = 7
	tiling := texture.MustNewTiling(tex, texture.TileLayout{L2Size: 16, L1Size: 4})

	// Texel (17, 9) of the base level: L2 tile (1, 0), sub-tile (0, 2)
	// within it.
	a := tiling.Addr(17, 9, 0)
	fmt.Printf("tid=%d L2=%d L1=%d\n", a.TID, a.L2, a.L1)
	// The 1x1 MIP level is block 0 (numbering starts at the lowest level).
	fmt.Printf("lowest level block: %d\n", tiling.Addr(0, 0, tex.NumLevels()-1).L2)
	// Output:
	// tid=7 L2=10 L1=8
	// lowest level block: 0
}

// ExampleSet shows host-driver texture registration and page-table
// allocation.
func ExampleSet() {
	set := texture.NewSet()
	set.Register(texture.MustNew("a", 32, 32, texture.RGBA8888, nil))
	set.Register(texture.MustNew("b", 32, 32, texture.L8, nil))
	layout := texture.TileLayout{L2Size: 16, L1Size: 4}
	set.MustPrepare(layout)

	fmt.Printf("textures: %d\n", set.Len())
	fmt.Printf("page table entries: %d\n", set.PageTableEntries(layout))
	fmt.Printf("texture b starts at entry %d\n", set.Start(layout, 1))
	// Output:
	// textures: 2
	// page table entries: 18
	// texture b starts at entry 9
}
