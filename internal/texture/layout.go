package texture

import "fmt"

// TileLayout selects the hierarchical tiling parameters of the study:
// square L2 tiles of L2Size x L2Size texels, each divided into square L1
// sub-tiles of L1Size x L1Size texels. The paper studies L2 sizes of 8, 16
// and 32, and L1 sizes of 4 and 8 (§3.2), fixing L1 = 4x4 for simulation.
type TileLayout struct {
	L2Size int // L2 tile edge length in texels
	L1Size int // L1 sub-tile edge length in texels
}

// CanonicalL1 returns the fixed layout used for L1 cache tag calculation in
// the simulator, matching the paper's choice (§3.3): 16x16 L2 tiles over 4x4
// L1 sub-tiles, independent of the L2 cache's simulated tile size. It is a
// function rather than a package-level var so callers cannot mutate the
// canonical choice mid-run.
//
// texsim:pure
func CanonicalL1() TileLayout { return TileLayout{L2Size: 16, L1Size: 4} }

// Validate reports whether the layout is usable.
func (l TileLayout) Validate() error {
	if l.L1Size <= 0 || l.L2Size <= 0 {
		return fmt.Errorf("texture: non-positive tile sizes %+v", l)
	}
	if !isPow2(l.L1Size) || !isPow2(l.L2Size) {
		return fmt.Errorf("texture: tile sizes must be powers of two %+v", l)
	}
	if l.L2Size < l.L1Size {
		return fmt.Errorf("texture: L2 tile %d smaller than L1 tile %d", l.L2Size, l.L1Size)
	}
	return nil
}

// SubPerEdge returns the number of L1 sub-tiles along one edge of an L2 tile.
func (l TileLayout) SubPerEdge() int { return l.L2Size / l.L1Size }

// SubPerBlock returns the number of L1 sub-tiles within one L2 tile. This
// bounds the sector bit-vector width: 64 for 32x32 over 4x4.
func (l TileLayout) SubPerBlock() int { s := l.SubPerEdge(); return s * s }

// L2BlockBytes returns the cache storage of one L2 tile at 32-bit texels.
// The hierarchy reads it on every partial hit and full miss.
//
// texsim:hot texsim:pure
func (l TileLayout) L2BlockBytes() int {
	return l.L2Size * l.L2Size * CacheTexelBytes
}

// L1BlockBytes returns the cache storage of one L1 sub-tile at 32-bit texels.
func (l TileLayout) L1BlockBytes() int {
	return l.L1Size * l.L1Size * CacheTexelBytes
}

// Virtual is the virtual texture block address <tid, L2, L1> of §2.2:
// TID names the texture, L2 the tile within the texture (numbered
// sequentially from the first block of the lowest-resolution MIP level to
// the last block of the base level, each level starting a new block), and
// L1 the sub-tile within its parent L2 tile.
type Virtual struct {
	TID ID
	L2  uint32
	L1  uint16
}

// Tiling precomputes the address-translation tables for one texture under
// one layout: the translation from <u, v, m> to <tid, L2, L1> is then a
// small number of shifts, additions, and a table lookup, as the paper
// describes.
type Tiling struct {
	Tex    *Texture
	Layout TileLayout

	// levelBase[m] is the first L2 block number of MIP level m. Numbering
	// starts at the lowest-resolution (last) level per Figure 2.
	levelBase []uint32
	// tilesAcross[m] is the count of L2 tiles along a row of level m.
	tilesAcross []int32

	// Shift amounts derived from the power-of-two tile sizes.
	l2Shift  uint // log2(L2Size)
	l1Shift  uint // log2(L1Size)
	subShift uint // log2(SubPerEdge)
	subMask  int  // SubPerEdge - 1

	numL2 uint32 // total L2 blocks in the texture
}

// NewTiling builds the translation tables for tex under layout.
func NewTiling(tex *Texture, layout TileLayout) (*Tiling, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	ti := &Tiling{
		Tex:         tex,
		Layout:      layout,
		levelBase:   make([]uint32, len(tex.Levels)),
		tilesAcross: make([]int32, len(tex.Levels)),
		l2Shift:     log2(layout.L2Size),
		l1Shift:     log2(layout.L1Size),
		subShift:    log2(layout.SubPerEdge()),
		subMask:     layout.SubPerEdge() - 1,
	}
	// Assign block numbers starting from the lowest MIP level (the last
	// entry of Levels) upward, so block 0 belongs to the 1x1 level.
	var next uint32
	for m := len(tex.Levels) - 1; m >= 0; m-- {
		l := tex.Levels[m]
		across := ceilDiv(l.Width, layout.L2Size)
		down := ceilDiv(l.Height, layout.L2Size)
		ti.tilesAcross[m] = int32(across)
		ti.levelBase[m] = next
		next += uint32(across * down)
	}
	ti.numL2 = next
	return ti, nil
}

// MustNewTiling is NewTiling but panics on error.
func MustNewTiling(tex *Texture, layout TileLayout) *Tiling {
	ti, err := NewTiling(tex, layout)
	if err != nil {
		panic(err)
	}
	return ti
}

func log2(v int) uint {
	var s uint
	for v > 1 {
		v >>= 1
		s++
	}
	return s
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// NumL2Blocks returns the total number of L2 blocks across all MIP levels,
// i.e. the page-table footprint of this texture (its tlen).
func (ti *Tiling) NumL2Blocks() uint32 { return ti.numL2 }

// Addr translates a texel coordinate <u, v> within MIP level m to the
// virtual texture block address <tid, L2, L1>. u and v must already be
// wrapped into the level extent and m must be a valid level.
//
// texlint:hotpath texsim:pure
func (ti *Tiling) Addr(u, v, m int) Virtual {
	l2u := u >> ti.l2Shift
	l2v := v >> ti.l2Shift
	l2 := ti.levelBase[m] + uint32(l2v)*uint32(ti.tilesAcross[m]) + uint32(l2u)
	su := (u >> ti.l1Shift) & ti.subMask
	sv := (v >> ti.l1Shift) & ti.subMask
	l1 := uint16(sv<<ti.subShift | su)
	return Virtual{TID: ti.Tex.ID, L2: l2, L1: l1}
}

// LevelOfL2 returns the MIP level containing the given L2 block number,
// or -1 if out of range. Used by tests and trace tooling.
func (ti *Tiling) LevelOfL2(l2 uint32) int {
	if l2 >= ti.numL2 {
		return -1
	}
	for m := 0; m < len(ti.levelBase); m++ {
		// levelBase decreases with m (level 0 has the largest base).
		if l2 >= ti.levelBase[m] {
			return m
		}
	}
	return -1
}

// TexelOrigin inverts Addr: it returns the texel coordinate of the top-left
// corner of the L1 sub-tile named by (l2, l1), plus its MIP level.
func (ti *Tiling) TexelOrigin(l2 uint32, l1 uint16) (u, v, m int, ok bool) {
	m = ti.LevelOfL2(l2)
	if m < 0 {
		return 0, 0, 0, false
	}
	rel := l2 - ti.levelBase[m]
	across := uint32(ti.tilesAcross[m])
	l2u := int(rel % across)
	l2v := int(rel / across)
	su := int(l1) & ti.subMask
	sv := int(l1) >> ti.subShift
	u = l2u<<ti.l2Shift + su<<ti.l1Shift
	v = l2v<<ti.l2Shift + sv<<ti.l1Shift
	if u >= ti.Tex.Levels[m].Width || v >= ti.Tex.Levels[m].Height {
		return 0, 0, 0, false
	}
	return u, v, m, true
}
