package texture

import (
	"testing"
)

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		f    Format
		want int
	}{
		{L8, 1}, {RGB565, 2}, {RGB888, 3}, {RGBA8888, 4},
	}
	for _, c := range cases {
		if got := c.f.BytesPerTexel(); got != c.want {
			t.Errorf("%v.BytesPerTexel() = %d, want %d", c.f, got, c.want)
		}
	}
}

func TestNewMipChain(t *testing.T) {
	tex, err := New("t", 256, 64, RGBA8888, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 256x64 -> 128x32 -> 64x16 -> 32x8 -> 16x4 -> 8x2 -> 4x1 -> 2x1 -> 1x1
	if got := tex.NumLevels(); got != 9 {
		t.Fatalf("NumLevels = %d, want 9", got)
	}
	last := tex.Levels[len(tex.Levels)-1]
	if last.Width != 1 || last.Height != 1 {
		t.Errorf("last level = %+v, want 1x1", last)
	}
	if tex.Levels[3].Width != 32 || tex.Levels[3].Height != 8 {
		t.Errorf("level 3 = %+v, want 32x8", tex.Levels[3])
	}
}

func TestNewRejectsBadSizes(t *testing.T) {
	for _, sz := range [][2]int{{0, 16}, {16, 0}, {-4, 4}, {3, 16}, {16, 100}} {
		if _, err := New("bad", sz[0], sz[1], L8, nil); err == nil {
			t.Errorf("New(%dx%d) succeeded, want error", sz[0], sz[1])
		}
	}
}

func TestHostBytes(t *testing.T) {
	tex := MustNew("t", 4, 4, RGBA8888, nil)
	// Levels: 4x4 + 2x2 + 1x1 = 21 texels * 4 bytes.
	if got := tex.HostBytes(); got != 84 {
		t.Errorf("HostBytes = %d, want 84", got)
	}
	tex2 := MustNew("t2", 4, 4, L8, nil)
	if got := tex2.HostBytes(); got != 21 {
		t.Errorf("HostBytes L8 = %d, want 21", got)
	}
}

func TestWrapTexel(t *testing.T) {
	cases := []struct{ c, extent, want int }{
		{0, 8, 0}, {7, 8, 7}, {8, 8, 0}, {9, 8, 1},
		{-1, 8, 7}, {-8, 8, 0}, {-9, 8, 7}, {17, 8, 1},
	}
	for _, c := range cases {
		if got := WrapTexel(c.c, c.extent); got != c.want {
			t.Errorf("WrapTexel(%d, %d) = %d, want %d", c.c, c.extent, got, c.want)
		}
	}
}

func TestTileLayoutValidate(t *testing.T) {
	good := []TileLayout{{8, 4}, {16, 4}, {32, 4}, {8, 8}, {16, 8}, {4, 4}}
	for _, l := range good {
		if err := l.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", l, err)
		}
	}
	bad := []TileLayout{{4, 8}, {0, 4}, {16, 0}, {12, 4}, {16, 3}}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", l)
		}
	}
}

func TestTileLayoutDerived(t *testing.T) {
	l := TileLayout{16, 4}
	if got := l.SubPerEdge(); got != 4 {
		t.Errorf("SubPerEdge = %d, want 4", got)
	}
	if got := l.SubPerBlock(); got != 16 {
		t.Errorf("SubPerBlock = %d, want 16", got)
	}
	if got := l.L2BlockBytes(); got != 1024 {
		t.Errorf("L2BlockBytes = %d, want 1024", got)
	}
	if got := l.L1BlockBytes(); got != 64 {
		t.Errorf("L1BlockBytes = %d, want 64", got)
	}
	if got := (TileLayout{32, 4}).SubPerBlock(); got != 64 {
		t.Errorf("32/4 SubPerBlock = %d, want 64", got)
	}
}

func TestTilingBlockNumbering(t *testing.T) {
	// 64x64 texture with 16x16 L2 tiles:
	// level 0: 64x64 -> 4x4 = 16 blocks
	// level 1: 32x32 -> 2x2 = 4
	// level 2: 16x16 -> 1
	// level 3: 8x8   -> 1
	// level 4: 4x4   -> 1
	// level 5: 2x2   -> 1
	// level 6: 1x1   -> 1
	tex := MustNew("t", 64, 64, RGBA8888, nil)
	ti := MustNewTiling(tex, TileLayout{16, 4})
	if got := ti.NumL2Blocks(); got != 25 {
		t.Fatalf("NumL2Blocks = %d, want 25", got)
	}
	// Block 0 is the 1x1 (lowest) level; the base level starts at 9.
	if got := ti.Addr(0, 0, 6); got.L2 != 0 {
		t.Errorf("lowest level L2 = %d, want 0", got.L2)
	}
	if got := ti.Addr(0, 0, 0); got.L2 != 9 {
		t.Errorf("base level first L2 = %d, want 9", got.L2)
	}
	// Each new level begins with a unique L2 block.
	seen := map[uint32]int{}
	for m := 0; m < tex.NumLevels(); m++ {
		a := ti.Addr(0, 0, m)
		if prev, dup := seen[a.L2]; dup {
			t.Errorf("levels %d and %d share first block %d", prev, m, a.L2)
		}
		seen[a.L2] = m
	}
}

func TestTilingAddrWithinLevel(t *testing.T) {
	tex := MustNew("t", 64, 64, RGBA8888, nil)
	ti := MustNewTiling(tex, TileLayout{16, 4})
	base := ti.Addr(0, 0, 0).L2

	// Texel (17, 0) is in L2 tile (1, 0) of the base level.
	a := ti.Addr(17, 0, 0)
	if a.L2 != base+1 {
		t.Errorf("L2 = %d, want %d", a.L2, base+1)
	}
	// Within that tile it is at sub-tile (0, 0).
	if a.L1 != 0 {
		t.Errorf("L1 = %d, want 0", a.L1)
	}
	// Texel (5, 9): sub-tile (1, 2) -> L1 = 2*4+1 = 9.
	a = ti.Addr(5, 9, 0)
	if a.L2 != base {
		t.Errorf("L2 = %d, want %d", a.L2, base)
	}
	if a.L1 != 9 {
		t.Errorf("L1 = %d, want 9", a.L1)
	}
	// Texel (16, 48): L2 tile (1, 3) -> base + 3*4 + 1.
	a = ti.Addr(16, 48, 0)
	if want := base + 13; a.L2 != want {
		t.Errorf("L2 = %d, want %d", a.L2, want)
	}
}

func TestTilingRoundTripExhaustive(t *testing.T) {
	// For every texel of a small texture under several layouts, Addr must
	// be invertible back to the containing sub-tile origin.
	tex := MustNew("t", 32, 16, RGB565, nil)
	for _, layout := range []TileLayout{{8, 4}, {16, 4}, {32, 4}, {16, 8}, {8, 8}} {
		ti := MustNewTiling(tex, layout)
		for m := 0; m < tex.NumLevels(); m++ {
			l := tex.Levels[m]
			for v := 0; v < l.Height; v++ {
				for u := 0; u < l.Width; u++ {
					a := ti.Addr(u, v, m)
					ou, ov, om, ok := ti.TexelOrigin(a.L2, a.L1)
					if !ok {
						t.Fatalf("layout %+v: TexelOrigin(%d,%d) failed for (%d,%d,%d)",
							layout, a.L2, a.L1, u, v, m)
					}
					if om != m {
						t.Fatalf("layout %+v: level %d, want %d", layout, om, m)
					}
					if u-ou < 0 || u-ou >= layout.L1Size || v-ov < 0 || v-ov >= layout.L1Size {
						t.Fatalf("layout %+v: texel (%d,%d) not within sub-tile at (%d,%d)",
							layout, u, v, ou, ov)
					}
				}
			}
		}
	}
}

func TestTilingAddrUniqueAcrossSubTiles(t *testing.T) {
	// Distinct sub-tiles must map to distinct <L2, L1> pairs.
	tex := MustNew("t", 64, 64, RGBA8888, nil)
	ti := MustNewTiling(tex, TileLayout{16, 4})
	type key struct {
		l2 uint32
		l1 uint16
	}
	seen := map[key][3]int{}
	for m := 0; m < tex.NumLevels(); m++ {
		l := tex.Levels[m]
		for v := 0; v < l.Height; v += 4 {
			for u := 0; u < l.Width; u += 4 {
				a := ti.Addr(u, v, m)
				k := key{a.L2, a.L1}
				if prev, dup := seen[k]; dup {
					t.Fatalf("tiles %v and (%d,%d,%d) collide at %+v", prev, u, v, m, k)
				}
				seen[k] = [3]int{u, v, m}
			}
		}
	}
	if len(seen) != int(totalSubTiles(tex, 4)) {
		t.Errorf("unique addresses = %d, want %d", len(seen), totalSubTiles(tex, 4))
	}
}

func totalSubTiles(tex *Texture, l1 int) int64 {
	var n int64
	for _, l := range tex.Levels {
		n += int64(ceilDiv(l.Width, l1)) * int64(ceilDiv(l.Height, l1))
	}
	return n
}

func TestLevelOfL2(t *testing.T) {
	tex := MustNew("t", 64, 64, RGBA8888, nil)
	ti := MustNewTiling(tex, TileLayout{16, 4})
	for m := 0; m < tex.NumLevels(); m++ {
		a := ti.Addr(0, 0, m)
		if got := ti.LevelOfL2(a.L2); got != m {
			t.Errorf("LevelOfL2(%d) = %d, want %d", a.L2, got, m)
		}
	}
	if got := ti.LevelOfL2(ti.NumL2Blocks()); got != -1 {
		t.Errorf("LevelOfL2(out of range) = %d, want -1", got)
	}
}

func TestSetRegistrationAndPageTable(t *testing.T) {
	s := NewSet()
	a := s.Register(MustNew("a", 64, 64, RGBA8888, nil))
	b := s.Register(MustNew("b", 32, 32, L8, nil))
	if a.ID != 0 || b.ID != 1 {
		t.Fatalf("ids = %d, %d; want 0, 1", a.ID, b.ID)
	}
	layout := TileLayout{16, 4}
	s.MustPrepare(layout)

	// Texture a: 25 blocks (see numbering test). Texture b: 32x32 -> 4,
	// then 16x16,8x8,4x4,2x2,1x1 -> 1 each = 9 blocks.
	if got := s.Start(layout, a.ID); got != 0 {
		t.Errorf("start(a) = %d, want 0", got)
	}
	if got := s.Start(layout, b.ID); got != 25 {
		t.Errorf("start(b) = %d, want 25", got)
	}
	if got := s.PageTableEntries(layout); got != 34 {
		t.Errorf("PageTableEntries = %d, want 34", got)
	}
	if got := s.HostBytes(); got != a.HostBytes()+b.HostBytes() {
		t.Errorf("HostBytes = %d", got)
	}
	if s.ByID(0) != a || s.ByID(1) != b {
		t.Error("ByID mismatch")
	}
}

func TestSetRegisterAfterPreparePanics(t *testing.T) {
	s := NewSet()
	s.Register(MustNew("a", 16, 16, L8, nil))
	s.MustPrepare(TileLayout{16, 4})
	defer func() {
		if recover() == nil {
			t.Error("Register after Prepare did not panic")
		}
	}()
	s.Register(MustNew("b", 16, 16, L8, nil))
}

func TestPatternsDeterministic(t *testing.T) {
	pats := []Pattern{
		Solid{RGBA{1, 2, 3, 4}},
		Checker{RGBA{0, 0, 0, 255}, RGBA{255, 255, 255, 255}, 8},
		Brick{RGBA{150, 60, 40, 255}, RGBA{200, 200, 190, 255}, 8},
		Stripes{RGBA{10, 10, 10, 255}, RGBA{240, 240, 240, 255}, 4},
		Windows{RGBA{90, 90, 100, 255}, RGBA{40, 60, 120, 255}, 6, 8},
		Noise{RGBA{100, 120, 90, 255}, 40, 32, 7},
		SkyGradient{RGBA{40, 80, 200, 255}, RGBA{200, 220, 255, 255}},
	}
	for i, p := range pats {
		for _, uv := range [][2]float64{{0.1, 0.1}, {0.5, 0.9}, {0.99, 0.01}} {
			a := p.At(uv[0], uv[1])
			b := p.At(uv[0], uv[1])
			if a != b {
				t.Errorf("pattern %d not deterministic at %v", i, uv)
			}
		}
	}
}

func TestCheckerPattern(t *testing.T) {
	c := Checker{RGBA{0, 0, 0, 255}, RGBA{255, 255, 255, 255}, 2}
	if got := c.At(0.1, 0.1); got != c.A {
		t.Errorf("top-left cell = %v, want A", got)
	}
	if got := c.At(0.9, 0.1); got != c.B {
		t.Errorf("adjacent cell = %v, want B", got)
	}
	if got := c.At(0.9, 0.9); got != c.A {
		t.Errorf("diagonal cell = %v, want A", got)
	}
}

func TestTextureSample(t *testing.T) {
	tex := MustNew("t", 8, 8, RGBA8888, Solid{RGBA{9, 8, 7, 6}})
	if got := tex.Sample(3, 3, 0); got != (RGBA{9, 8, 7, 6}) {
		t.Errorf("Sample = %v", got)
	}
	// Level clamps and coordinates wrap rather than fault.
	if got := tex.Sample(-100, 1000, 99); got != (RGBA{9, 8, 7, 6}) {
		t.Errorf("Sample out of range = %v", got)
	}
	bare := MustNew("bare", 8, 8, RGBA8888, nil)
	if got := bare.Sample(0, 0, 0); got != (RGBA{128, 128, 128, 255}) {
		t.Errorf("nil pattern Sample = %v", got)
	}
}

func TestClampLevel(t *testing.T) {
	tex := MustNew("t", 16, 16, L8, nil) // 5 levels
	if got := tex.ClampLevel(-3); got != 0 {
		t.Errorf("clamp(-3) = %d", got)
	}
	if got := tex.ClampLevel(2); got != 2 {
		t.Errorf("clamp(2) = %d", got)
	}
	if got := tex.ClampLevel(50); got != 4 {
		t.Errorf("clamp(50) = %d", got)
	}
}
