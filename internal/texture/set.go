package texture

import "fmt"

// Set is the registry of textures an application has loaded, standing in
// for the host driver's texture bookkeeping. It assigns texture IDs and,
// for each tile layout in use, the contiguous page-table ranges
// [tstart, tstart+tlen) that the paper's driver software allocates (§5.2).
type Set struct {
	textures []*Texture
	tilings  map[TileLayout][]*Tiling
	starts   map[TileLayout][]uint32 // tstart per texture, parallel to textures
	totals   map[TileLayout]uint32   // total page-table entries under a layout
}

// NewSet returns an empty texture registry.
func NewSet() *Set {
	return &Set{
		tilings: make(map[TileLayout][]*Tiling),
		starts:  make(map[TileLayout][]uint32),
		totals:  make(map[TileLayout]uint32),
	}
}

// Register adds a texture to the set, assigns its ID, and returns it.
// Textures must be registered before any layout is prepared.
func (s *Set) Register(t *Texture) *Texture {
	if len(s.tilings) > 0 {
		panic("texture: Register after Prepare")
	}
	t.ID = ID(len(s.textures))
	s.textures = append(s.textures, t)
	return t
}

// Len returns the number of registered textures.
func (s *Set) Len() int { return len(s.textures) }

// ByID returns the texture with the given ID. The stats collector calls it
// per texel, so the bad-ID panic carries a constant message.
//
// texsim:hot
func (s *Set) ByID(id ID) *Texture {
	if int(id) >= len(s.textures) {
		panic("texture: unknown texture id")
	}
	return s.textures[id]
}

// All returns the registered textures in ID order. The returned slice must
// not be modified.
func (s *Set) All() []*Texture { return s.textures }

// HostBytes returns the total host memory occupied by all registered
// textures at their original depths ("texture loaded into main memory").
func (s *Set) HostBytes() int64 {
	var total int64
	for _, t := range s.textures {
		total += t.HostBytes()
	}
	return total
}

// Prepare builds (and memoizes) the tilings and page-table allocation for
// the given layout. It must be called once per layout before Tiling or
// Start are used; calling it repeatedly is cheap.
func (s *Set) Prepare(layout TileLayout) error {
	if _, ok := s.tilings[layout]; ok {
		return nil
	}
	tilings := make([]*Tiling, len(s.textures))
	starts := make([]uint32, len(s.textures))
	var next uint32
	for i, t := range s.textures {
		ti, err := NewTiling(t, layout)
		if err != nil {
			return err
		}
		tilings[i] = ti
		starts[i] = next
		next += ti.NumL2Blocks()
	}
	s.tilings[layout] = tilings
	s.starts[layout] = starts
	s.totals[layout] = next
	return nil
}

// MustPrepare is Prepare but panics on error.
func (s *Set) MustPrepare(layout TileLayout) {
	if err := s.Prepare(layout); err != nil {
		panic(err)
	}
}

// Tilings returns the per-texture tilings for a prepared layout, indexed by
// texture ID.
func (s *Set) Tilings(layout TileLayout) []*Tiling {
	t, ok := s.tilings[layout]
	if !ok {
		panic(fmt.Sprintf("texture: layout %+v not prepared", layout))
	}
	return t
}

// Start returns the page-table start index (tstart) of the texture under a
// prepared layout.
func (s *Set) Start(layout TileLayout, id ID) uint32 {
	st, ok := s.starts[layout]
	if !ok {
		panic(fmt.Sprintf("texture: layout %+v not prepared", layout))
	}
	return st[id]
}

// PageTableEntries returns the total number of page-table entries required
// to cover every registered texture under a prepared layout.
func (s *Set) PageTableEntries(layout TileLayout) uint32 {
	n, ok := s.totals[layout]
	if !ok {
		panic(fmt.Sprintf("texture: layout %+v not prepared", layout))
	}
	return n
}
