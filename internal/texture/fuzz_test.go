package texture

import "testing"

// FuzzAddr verifies the address-translation round trip on valid texel
// coordinates: Addr must place every <u, v, m> in an L2/L1 block that
// TexelOrigin maps back to the enclosing L1 tile's origin at the same MIP
// level. Together with the level-major block numbering this guarantees
// two different tiles never share a virtual address — the invariant the
// whole cache hierarchy tags by.
func FuzzAddr(f *testing.F) {
	tilings := []*Tiling{
		MustNewTiling(MustNew("square", 128, 128, RGBA8888, nil), CanonicalL1()),
		MustNewTiling(MustNew("wide", 256, 32, RGB565, nil), CanonicalL1()),
		MustNewTiling(MustNew("tall", 16, 64, RGBA8888, nil), TileLayout{L2Size: 32, L1Size: 4}),
		MustNewTiling(MustNew("tiny", 4, 4, RGBA8888, nil), CanonicalL1()),
	}
	f.Add(uint16(0), uint16(0), uint8(0), uint8(0))
	f.Add(uint16(127), uint16(127), uint8(0), uint8(0))
	f.Add(uint16(200), uint16(31), uint8(2), uint8(1))
	f.Add(uint16(9), uint16(60), uint8(5), uint8(2))
	f.Fuzz(func(t *testing.T, uRaw, vRaw uint16, mRaw, which uint8) {
		ti := tilings[int(which)%len(tilings)]
		m := int(mRaw) % len(ti.Tex.Levels)
		lvl := ti.Tex.Levels[m]
		u := int(uRaw) % lvl.Width
		v := int(vRaw) % lvl.Height

		a := ti.Addr(u, v, m)
		if a.L2 >= ti.NumL2Blocks() {
			t.Fatalf("Addr(%d,%d,%d) L2 block %d out of range [0,%d)", u, v, m, a.L2, ti.NumL2Blocks())
		}
		if lm := ti.LevelOfL2(a.L2); lm != m {
			t.Fatalf("Addr(%d,%d,%d) landed in level %d's block range", u, v, m, lm)
		}
		ou, ov, om, ok := ti.TexelOrigin(a.L2, a.L1)
		if !ok {
			t.Fatalf("TexelOrigin rejected Addr(%d,%d,%d) = %+v", u, v, m, a)
		}
		l1 := ti.Layout.L1Size
		if om != m || ou != u/l1*l1 || ov != v/l1*l1 {
			t.Fatalf("round trip Addr(%d,%d,%d) -> %+v -> (%d,%d,%d); want tile origin (%d,%d,%d)",
				u, v, m, a, ou, ov, om, u/l1*l1, v/l1*l1, m)
		}
		if int(a.L1) >= ti.Layout.SubPerBlock() {
			t.Fatalf("Addr(%d,%d,%d) L1 sub-tile %d exceeds %d per block",
				u, v, m, a.L1, ti.Layout.SubPerBlock())
		}
	})
}
