// Package texture implements the texture substrate of the study: MIP-mapped
// textures (Williams' pyramidal parametrics), hierarchical texture tiling,
// and the virtual texture addressing <tid, L2, L1> of Cox et al. §2.2.
//
// A texture is stored at many resolutions called MIP levels; level 0 is the
// base (finest) image and each successive level is a quarter-size filtered
// copy down to 1x1. Within a MIP level, texels are grouped into square L2
// tiles, and each L2 tile into square L1 sub-tiles. The concatenation
// <tid, L2, L1> uniquely identifies an L1 sub-tile among all textures.
package texture

import (
	"fmt"
	"math/bits"
)

// Format describes the texel storage depth of a texture as resident in host
// memory. The accelerator expands texels to 32 bits for cache storage; the
// push architecture stores textures at their original depth.
type Format int

const (
	// L8 is 8-bit luminance.
	L8 Format = iota
	// RGB565 is 16-bit packed colour.
	RGB565
	// RGB888 is 24-bit colour.
	RGB888
	// RGBA8888 is 32-bit colour with alpha.
	RGBA8888
)

// BytesPerTexel returns the storage cost of one texel in this format. It
// sits on the per-frame push-bytes path, so the impossible-format panic
// carries a constant message rather than formatting the value.
func (f Format) BytesPerTexel() int {
	switch f {
	case L8:
		return 1
	case RGB565:
		return 2
	case RGB888:
		return 3
	case RGBA8888:
		return 4
	default:
		panic("texture: unknown format")
	}
}

// String implements fmt.Stringer.
func (f Format) String() string {
	switch f {
	case L8:
		return "L8"
	case RGB565:
		return "RGB565"
	case RGB888:
		return "RGB888"
	case RGBA8888:
		return "RGBA8888"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// CacheTexelBytes is the size of a texel once expanded for cache storage.
// The paper fixes this at 32 bits (§3.2).
const CacheTexelBytes = 4

// ID identifies a texture within a TextureSet (the paper's rid/tid).
type ID uint32

// MipLevel records the dimensions of one level of a MIP pyramid.
type MipLevel struct {
	Width, Height int
}

// Texture is a MIP-mapped 2D image. Texel content is procedural (see
// Pattern); the cache study needs only addresses and sizes, while the
// renderer evaluates Pattern on demand for snapshot images.
type Texture struct {
	ID     ID
	Name   string
	Format Format
	// Levels holds the MIP pyramid; Levels[0] is the base image and the
	// last level is 1x1.
	Levels []MipLevel
	// Pattern supplies texel colour for rendering. May be nil for
	// trace-only textures.
	Pattern Pattern
}

// New constructs a MIP-mapped texture of the given base dimensions.
// Dimensions must be positive powers of two (the standard constraint for
// MIP mapping hardware of the period).
func New(name string, w, h int, format Format, pattern Pattern) (*Texture, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("texture %q: non-positive size %dx%d", name, w, h)
	}
	if !isPow2(w) || !isPow2(h) {
		return nil, fmt.Errorf("texture %q: size %dx%d is not a power of two", name, w, h)
	}
	t := &Texture{Name: name, Format: format, Pattern: pattern}
	for {
		t.Levels = append(t.Levels, MipLevel{w, h})
		if w == 1 && h == 1 {
			break
		}
		w = max(1, w/2)
		h = max(1, h/2)
	}
	return t, nil
}

// MustNew is New but panics on error; for use with constant sizes.
func MustNew(name string, w, h int, format Format, pattern Pattern) *Texture {
	t, err := New(name, w, h, format, pattern)
	if err != nil {
		panic(err)
	}
	return t
}

func isPow2(v int) bool { return v > 0 && bits.OnesCount(uint(v)) == 1 }

// NumLevels returns the number of MIP levels.
func (t *Texture) NumLevels() int { return len(t.Levels) }

// Width returns the base-level width.
func (t *Texture) Width() int { return t.Levels[0].Width }

// Height returns the base-level height.
func (t *Texture) Height() int { return t.Levels[0].Height }

// HostBytes returns the total bytes the texture occupies in host memory at
// its original depth, summed over all MIP levels. The stats collector calls
// it per texel on first touch of a frame.
//
// texsim:hot
func (t *Texture) HostBytes() int64 {
	var total int64
	bpt := int64(t.Format.BytesPerTexel())
	for _, l := range t.Levels {
		total += int64(l.Width) * int64(l.Height) * bpt
	}
	return total
}

// Texels returns the total texel count across all MIP levels.
func (t *Texture) Texels() int64 {
	var total int64
	for _, l := range t.Levels {
		total += int64(l.Width) * int64(l.Height)
	}
	return total
}

// ClampLevel clamps a MIP level to the valid range for this texture.
//
// texsim:pure
func (t *Texture) ClampLevel(m int) int {
	if m < 0 {
		return 0
	}
	if m >= len(t.Levels) {
		return len(t.Levels) - 1
	}
	return m
}

// WrapTexel maps an arbitrary integer texel coordinate into the level's
// extent using repeat (wrap) addressing, the mode used by both workloads.
// MIP level extents are powers of two (New enforces power-of-two base
// dimensions and halving preserves the property), so the per-texel path
// reduces to a mask; the mod fallback keeps the function total for
// arbitrary extents.
//
// texsim:pure
func WrapTexel(c, extent int) int {
	if extent&(extent-1) == 0 {
		return c & (extent - 1)
	}
	c %= extent
	if c < 0 {
		c += extent
	}
	return c
}
