package texture

import "math"

// RGBA is an 8-bit-per-channel colour sample produced by a Pattern.
type RGBA struct {
	R, G, B, A uint8
}

// Pattern supplies procedural texel content. The paper's workloads use image
// databases we do not have; procedural patterns stand in for them when
// rendering snapshot frames. Cache behaviour is independent of content.
//
// At receives normalized coordinates in [0,1) of the texel centre at the
// base level; implementations should be deterministic.
type Pattern interface {
	At(u, v float64) RGBA
}

// Solid is a single flat colour.
type Solid struct{ C RGBA }

// At implements Pattern.
func (s Solid) At(u, v float64) RGBA { return s.C }

// Checker alternates two colours in an N x N grid.
type Checker struct {
	A, B RGBA
	N    int
}

// At implements Pattern.
func (c Checker) At(u, v float64) RGBA {
	n := c.N
	if n <= 0 {
		n = 8
	}
	iu := int(u * float64(n))
	iv := int(v * float64(n))
	if (iu+iv)%2 == 0 {
		return c.A
	}
	return c.B
}

// Brick draws a running-bond brick pattern with mortar lines.
type Brick struct {
	Brick, Mortar RGBA
	Rows          int
}

// At implements Pattern.
func (b Brick) At(u, v float64) RGBA {
	rows := b.Rows
	if rows <= 0 {
		rows = 8
	}
	fv := v * float64(rows)
	row := int(fv)
	fu := u * float64(rows) / 2
	if row%2 == 1 {
		fu += 0.5
	}
	_, fracU := math.Modf(fu)
	_, fracV := math.Modf(fv)
	if fracU < 0.06 || fracV < 0.1 {
		return b.Mortar
	}
	return b.Brick
}

// Stripes draws horizontal stripes of two colours.
type Stripes struct {
	A, B RGBA
	N    int
}

// At implements Pattern.
func (s Stripes) At(u, v float64) RGBA {
	n := s.N
	if n <= 0 {
		n = 8
	}
	if int(v*float64(n))%2 == 0 {
		return s.A
	}
	return s.B
}

// Windows draws a building facade: a wall colour with a regular grid of
// window cells.
type Windows struct {
	Wall, Glass RGBA
	Cols, Rows  int
}

// At implements Pattern.
func (w Windows) At(u, v float64) RGBA {
	cols, rows := w.Cols, w.Rows
	if cols <= 0 {
		cols = 6
	}
	if rows <= 0 {
		rows = 8
	}
	_, fu := math.Modf(u * float64(cols))
	_, fv := math.Modf(v * float64(rows))
	if fu > 0.25 && fu < 0.75 && fv > 0.3 && fv < 0.8 {
		return w.Glass
	}
	return w.Wall
}

// Noise is deterministic value noise derived from an integer hash; Seed
// varies the field.
type Noise struct {
	Base  RGBA
	Vary  uint8 // amplitude of brightness variation
	Scale int   // feature frequency
	Seed  uint32
}

// At implements Pattern.
func (n Noise) At(u, v float64) RGBA {
	scale := n.Scale
	if scale <= 0 {
		scale = 32
	}
	iu := uint32(u * float64(scale))
	iv := uint32(v * float64(scale))
	h := hash3(iu, iv, n.Seed)
	d := int(h % uint32(int(n.Vary)+1))
	add := func(c uint8) uint8 {
		s := int(c) + d - int(n.Vary)/2
		if s < 0 {
			s = 0
		}
		if s > 255 {
			s = 255
		}
		return uint8(s)
	}
	return RGBA{add(n.Base.R), add(n.Base.G), add(n.Base.B), n.Base.A}
}

// SkyGradient blends from a horizon colour at v=1 to a zenith colour at v=0.
type SkyGradient struct {
	Zenith, Horizon RGBA
}

// At implements Pattern.
func (s SkyGradient) At(u, v float64) RGBA {
	mix := func(a, b uint8) uint8 {
		return uint8(float64(a)*(1-v) + float64(b)*v)
	}
	return RGBA{
		mix(s.Zenith.R, s.Horizon.R),
		mix(s.Zenith.G, s.Horizon.G),
		mix(s.Zenith.B, s.Horizon.B),
		255,
	}
}

// hash3 is a small avalanching integer hash for deterministic noise.
func hash3(x, y, s uint32) uint32 {
	h := x*0x9E3779B1 ^ y*0x85EBCA77 ^ s*0xC2B2AE3D
	h ^= h >> 15
	h *= 0x2545F491
	h ^= h >> 13
	return h
}

// Sample evaluates the texture's pattern at integer texel coordinates of
// MIP level m. Coordinates are wrapped. Textures without a Pattern sample
// as mid-grey.
func (t *Texture) Sample(u, v, m int) RGBA {
	m = t.ClampLevel(m)
	l := t.Levels[m]
	u = WrapTexel(u, l.Width)
	v = WrapTexel(v, l.Height)
	if t.Pattern == nil {
		return RGBA{128, 128, 128, 255}
	}
	// Evaluate at the texel centre in normalized coordinates. MIP
	// filtering is approximated by sampling the analytic pattern at the
	// coarser level's sample spacing, which is adequate for snapshots.
	fu := (float64(u) + 0.5) / float64(l.Width)
	fv := (float64(v) + 0.5) / float64(l.Height)
	return t.Pattern.At(fu, fv)
}
