package texture

import (
	"testing"
	"testing/quick"
)

// TestTilingPropertyRandom drives Addr/TexelOrigin with randomized texture
// sizes, layouts and coordinates.
func TestTilingPropertyRandom(t *testing.T) {
	sizes := []int{16, 32, 64, 128, 256}
	layouts := []TileLayout{{8, 4}, {16, 4}, {32, 4}, {16, 8}}
	f := func(wi, hi, li, ui, vi, mi uint16) bool {
		w := sizes[int(wi)%len(sizes)]
		h := sizes[int(hi)%len(sizes)]
		layout := layouts[int(li)%len(layouts)]
		tex := MustNew("t", w, h, RGBA8888, nil)
		ti := MustNewTiling(tex, layout)

		m := int(mi) % tex.NumLevels()
		l := tex.Levels[m]
		u := int(ui) % l.Width
		v := int(vi) % l.Height

		a := ti.Addr(u, v, m)
		// Address in range.
		if a.L2 >= ti.NumL2Blocks() {
			return false
		}
		if int(a.L1) >= layout.SubPerBlock() {
			return false
		}
		// Inverse maps back to the containing sub-tile.
		ou, ov, om, ok := ti.TexelOrigin(a.L2, a.L1)
		if !ok || om != m {
			return false
		}
		return u >= ou && u < ou+layout.L1Size && v >= ov && v < ov+layout.L1Size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestTilingAdjacencyProperty verifies that texels within the same L1
// sub-tile share an address and texels in different sub-tiles do not.
func TestTilingAdjacencyProperty(t *testing.T) {
	tex := MustNew("t", 128, 128, RGBA8888, nil)
	ti := MustNewTiling(tex, TileLayout{16, 4})
	f := func(ui, vi uint16) bool {
		u := int(ui) % 124
		v := int(vi) % 124
		base := ti.Addr(u, v, 0)
		// Same 4x4 sub-tile: identical address.
		su, sv := (u/4)*4, (v/4)*4
		if ti.Addr(su, sv, 0) != base {
			return false
		}
		// The texel 4 to the right is in a different sub-tile.
		return ti.Addr(u+4, v, 0) != base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestLevelBlockCountsProperty checks that the per-level block counts sum
// to NumL2Blocks for arbitrary rectangular textures.
func TestLevelBlockCountsProperty(t *testing.T) {
	sizes := []int{1, 2, 4, 8, 16, 32, 64, 256, 1024}
	f := func(wi, hi, li uint8) bool {
		w := sizes[int(wi)%len(sizes)]
		h := sizes[int(hi)%len(sizes)]
		layouts := []TileLayout{{8, 4}, {16, 4}, {32, 4}}
		layout := layouts[int(li)%len(layouts)]
		tex := MustNew("t", w, h, L8, nil)
		ti := MustNewTiling(tex, layout)
		var sum int
		for m := 0; m < tex.NumLevels(); m++ {
			l := tex.Levels[m]
			sum += ceilDiv(l.Width, layout.L2Size) * ceilDiv(l.Height, layout.L2Size)
		}
		return uint32(sum) == ti.NumL2Blocks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
