package texture

import "testing"

func TestFormatString(t *testing.T) {
	cases := map[Format]string{
		L8: "L8", RGB565: "RGB565", RGB888: "RGB888", RGBA8888: "RGBA8888",
	}
	for f, want := range cases {
		if got := f.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(f), got, want)
		}
	}
	if got := Format(99).String(); got != "Format(99)" {
		t.Errorf("unknown format = %q", got)
	}
}

func TestFormatBytesPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown format BytesPerTexel did not panic")
		}
	}()
	Format(99).BytesPerTexel()
}

func TestTextureAccessors(t *testing.T) {
	tex := MustNew("t", 64, 32, RGB565, nil)
	if tex.Width() != 64 || tex.Height() != 32 {
		t.Errorf("dims = %dx%d", tex.Width(), tex.Height())
	}
	// 64x32 + 32x16 + 16x8 + 8x4 + 4x2 + 2x1 + 1x1 texels.
	want := int64(64*32 + 32*16 + 16*8 + 8*4 + 4*2 + 2*1 + 1)
	if got := tex.Texels(); got != want {
		t.Errorf("Texels = %d, want %d", got, want)
	}
}

func TestSetAccessorsAndPanics(t *testing.T) {
	s := NewSet()
	a := s.Register(MustNew("a", 16, 16, L8, nil))
	if got := s.All(); len(got) != 1 || got[0] != a {
		t.Errorf("All = %v", got)
	}
	layout := TileLayout{L2Size: 16, L1Size: 4}
	s.MustPrepare(layout)
	if got := s.Tilings(layout); len(got) != 1 || got[0].Tex != a {
		t.Error("Tilings wrong")
	}

	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("ByID out of range", func() { s.ByID(5) })
	unprepared := TileLayout{L2Size: 8, L1Size: 4}
	expectPanic("Tilings unprepared", func() { s.Tilings(unprepared) })
	expectPanic("Start unprepared", func() { s.Start(unprepared, 0) })
	expectPanic("PageTableEntries unprepared", func() { s.PageTableEntries(unprepared) })
	expectPanic("MustPrepare invalid", func() {
		s2 := NewSet()
		s2.Register(MustNew("x", 16, 16, L8, nil))
		s2.MustPrepare(TileLayout{L2Size: 3, L1Size: 4})
	})
	expectPanic("MustNew invalid", func() { MustNew("bad", 3, 3, L8, nil) })
	expectPanic("MustNewTiling invalid", func() {
		MustNewTiling(a, TileLayout{L2Size: 5, L1Size: 4})
	})
}

func TestTextureSampleOnAllPatterns(t *testing.T) {
	// Exercise Texture.Sample through every pattern so colour plumbing
	// is covered end to end.
	pats := []Pattern{
		Solid{RGBA{1, 2, 3, 4}},
		Checker{N: 4},
		Brick{Rows: 4},
		Stripes{N: 2},
		Windows{Cols: 2, Rows: 2},
		Noise{Vary: 10, Scale: 8},
		SkyGradient{Zenith: RGBA{A: 255}, Horizon: RGBA{R: 255, A: 255}},
	}
	for i, p := range pats {
		tex := MustNew("p", 16, 16, RGBA8888, p)
		for m := 0; m < tex.NumLevels(); m++ {
			l := tex.Levels[m]
			_ = tex.Sample(l.Width/2, l.Height/2, m)
		}
		_ = i
	}
	// Zero-config defaults are exercised too (N/Rows/Scale <= 0).
	defaults := []Pattern{Checker{}, Brick{}, Stripes{}, Windows{}, Noise{}}
	for _, p := range defaults {
		if c := p.At(0.3, 0.7); c.A == 1 {
			t.Log(c) // no assertion; determinism is checked elsewhere
		}
	}
}
