// Package vecmath provides the small fixed-size linear algebra kernel used
// by the geometry pipeline: 2-, 3- and 4-component vectors, 4x4 matrices,
// and the view/projection constructions needed for perspective rendering.
//
// Conventions: right-handed world space, column vectors, matrices stored
// row-major and applied as M * v. Clip space follows OpenGL: visible points
// satisfy -w <= x,y,z <= w.
package vecmath

import "math"

// Vec2 is a 2-component vector, used for texture coordinates.
type Vec2 struct {
	X, Y float64
}

// Add returns v + o.
func (v Vec2) Add(o Vec2) Vec2 { return Vec2{v.X + o.X, v.Y + o.Y} }

// Sub returns v - o.
func (v Vec2) Sub(o Vec2) Vec2 { return Vec2{v.X - o.X, v.Y - o.Y} }

// Scale returns v * s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Lerp linearly interpolates from v to o by t in [0,1].
func (v Vec2) Lerp(o Vec2, t float64) Vec2 {
	return Vec2{v.X + (o.X-v.X)*t, v.Y + (o.Y-v.Y)*t}
}

// Vec3 is a 3-component vector for positions, directions, and colours.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + o.
func (v Vec3) Add(o Vec3) Vec3 { return Vec3{v.X + o.X, v.Y + o.Y, v.Z + o.Z} }

// Sub returns v - o.
func (v Vec3) Sub(o Vec3) Vec3 { return Vec3{v.X - o.X, v.Y - o.Y, v.Z - o.Z} }

// Scale returns v * s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product v . o.
func (v Vec3) Dot(o Vec3) float64 { return v.X*o.X + v.Y*o.Y + v.Z*o.Z }

// Cross returns the cross product v x o.
func (v Vec3) Cross(o Vec3) Vec3 {
	return Vec3{
		v.Y*o.Z - v.Z*o.Y,
		v.Z*o.X - v.X*o.Z,
		v.X*o.Y - v.Y*o.X,
	}
}

// Len returns the Euclidean length of v.
func (v Vec3) Len() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Normalize() Vec3 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Lerp linearly interpolates from v to o by t in [0,1].
func (v Vec3) Lerp(o Vec3, t float64) Vec3 {
	return Vec3{v.X + (o.X-v.X)*t, v.Y + (o.Y-v.Y)*t, v.Z + (o.Z-v.Z)*t}
}

// Vec4 is a homogeneous 4-component vector.
type Vec4 struct {
	X, Y, Z, W float64
}

// V4 extends a Vec3 with the given w component.
func V4(v Vec3, w float64) Vec4 { return Vec4{v.X, v.Y, v.Z, w} }

// XYZ returns the first three components as a Vec3.
func (v Vec4) XYZ() Vec3 { return Vec3{v.X, v.Y, v.Z} }

// Add returns v + o.
func (v Vec4) Add(o Vec4) Vec4 {
	return Vec4{v.X + o.X, v.Y + o.Y, v.Z + o.Z, v.W + o.W}
}

// Sub returns v - o.
func (v Vec4) Sub(o Vec4) Vec4 {
	return Vec4{v.X - o.X, v.Y - o.Y, v.Z - o.Z, v.W - o.W}
}

// Scale returns v * s.
func (v Vec4) Scale(s float64) Vec4 {
	return Vec4{v.X * s, v.Y * s, v.Z * s, v.W * s}
}

// Dot returns the 4-component dot product.
func (v Vec4) Dot(o Vec4) float64 {
	return v.X*o.X + v.Y*o.Y + v.Z*o.Z + v.W*o.W
}

// Lerp linearly interpolates from v to o by t in [0,1].
func (v Vec4) Lerp(o Vec4, t float64) Vec4 {
	return Vec4{
		v.X + (o.X-v.X)*t,
		v.Y + (o.Y-v.Y)*t,
		v.Z + (o.Z-v.Z)*t,
		v.W + (o.W-v.W)*t,
	}
}
