package vecmath

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func vec3Eq(a, b Vec3) bool {
	return almostEq(a.X, b.X) && almostEq(a.Y, b.Y) && almostEq(a.Z, b.Z)
}

func TestVec2Arithmetic(t *testing.T) {
	a := Vec2{1, 2}
	b := Vec2{3, -4}
	if got := a.Add(b); got != (Vec2{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec2{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec2{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != (Vec2{2, -1}) {
		t.Errorf("Lerp = %v", got)
	}
}

func TestVec3DotCross(t *testing.T) {
	x := Vec3{1, 0, 0}
	y := Vec3{0, 1, 0}
	z := Vec3{0, 0, 1}
	if got := x.Cross(y); !vec3Eq(got, z) {
		t.Errorf("x cross y = %v, want z", got)
	}
	if got := y.Cross(z); !vec3Eq(got, x) {
		t.Errorf("y cross z = %v, want x", got)
	}
	if got := x.Dot(y); got != 0 {
		t.Errorf("x dot y = %v, want 0", got)
	}
	if got := (Vec3{2, 3, 4}).Dot(Vec3{5, 6, 7}); got != 56 {
		t.Errorf("dot = %v, want 56", got)
	}
}

func TestVec3Normalize(t *testing.T) {
	v := Vec3{3, 4, 0}.Normalize()
	if !almostEq(v.Len(), 1) {
		t.Errorf("len = %v, want 1", v.Len())
	}
	zero := Vec3{}.Normalize()
	if zero != (Vec3{}) {
		t.Errorf("normalize zero = %v, want zero", zero)
	}
}

func TestCrossOrthogonalProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{clampf(ax), clampf(ay), clampf(az)}
		b := Vec3{clampf(bx), clampf(by), clampf(bz)}
		c := a.Cross(b)
		// The cross product is orthogonal to both operands.
		return math.Abs(c.Dot(a)) < 1e-3 && math.Abs(c.Dot(b)) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampf maps arbitrary float64 values (including NaN/Inf from quick) into a
// well-behaved range for geometric property tests.
func clampf(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 1
	}
	return math.Mod(v, 100)
}

func TestMat4Identity(t *testing.T) {
	v := Vec4{1, 2, 3, 4}
	if got := Identity().MulVec4(v); got != v {
		t.Errorf("I*v = %v, want %v", got, v)
	}
}

func TestMat4MulAssociativityWithVector(t *testing.T) {
	f := func(seed int64) bool {
		a := RotateY(float64(seed%7) * 0.3).Mul(Translate(Vec3{1, 2, 3}))
		b := RotateX(float64(seed%5) * 0.7).Mul(ScaleUniform(2))
		v := Vec4{float64(seed % 11), 1, -2, 1}
		left := a.Mul(b).MulVec4(v)
		right := a.MulVec4(b.MulVec4(v))
		return vec3Eq(left.XYZ(), right.XYZ()) && almostEq(left.W, right.W)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTranslate(t *testing.T) {
	m := Translate(Vec3{1, 2, 3})
	if got := m.MulPoint(Vec3{10, 20, 30}); !vec3Eq(got, Vec3{11, 22, 33}) {
		t.Errorf("translate point = %v", got)
	}
	// Directions are unaffected by translation.
	if got := m.MulDir(Vec3{1, 0, 0}); !vec3Eq(got, Vec3{1, 0, 0}) {
		t.Errorf("translate dir = %v", got)
	}
}

func TestRotateY(t *testing.T) {
	m := RotateY(math.Pi / 2)
	// +Z rotates to +X under a right-handed rotation about Y.
	if got := m.MulDir(Vec3{0, 0, 1}); !vec3Eq(got, Vec3{1, 0, 0}) {
		t.Errorf("rotateY(+z) = %v, want +x", got)
	}
}

func TestLookAtBasics(t *testing.T) {
	eye := Vec3{0, 0, 5}
	view := LookAt(eye, Vec3{0, 0, 0}, Vec3{0, 1, 0})
	// The eye maps to the origin.
	if got := view.MulPoint(eye); !vec3Eq(got, Vec3{}) {
		t.Errorf("view(eye) = %v, want origin", got)
	}
	// A point in front of the camera has negative z in view space.
	if got := view.MulPoint(Vec3{0, 0, 0}); got.Z >= 0 {
		t.Errorf("view(target).Z = %v, want < 0", got.Z)
	}
}

func TestPerspectiveClipSpace(t *testing.T) {
	proj := Perspective(math.Pi/2, 1, 1, 100)
	// A point on the near plane straight ahead maps to z/w = -1.
	near := proj.MulVec4(Vec4{0, 0, -1, 1})
	if !almostEq(near.Z/near.W, -1) {
		t.Errorf("near z/w = %v, want -1", near.Z/near.W)
	}
	far := proj.MulVec4(Vec4{0, 0, -100, 1})
	if !almostEq(far.Z/far.W, 1) {
		t.Errorf("far z/w = %v, want 1", far.Z/far.W)
	}
}

func TestFrustumPlanesContainment(t *testing.T) {
	proj := Perspective(math.Pi/2, 1, 1, 100)
	view := LookAt(Vec3{0, 0, 0}, Vec3{0, 0, -1}, Vec3{0, 1, 0})
	planes := FrustumPlanes(proj.Mul(view))

	inside := Vec3{0, 0, -10}
	for i, p := range planes {
		if p.Dist(inside) < 0 {
			t.Errorf("plane %d rejects interior point: %v", i, p.Dist(inside))
		}
	}
	outside := []Vec3{
		{0, 0, 10},    // behind the camera
		{0, 0, -1000}, // beyond far
		{-1000, 0, -10},
		{1000, 0, -10},
		{0, 1000, -10},
		{0, -1000, -10},
	}
	for _, pt := range outside {
		rejected := false
		for _, p := range planes {
			if p.Dist(pt) < 0 {
				rejected = true
				break
			}
		}
		if !rejected {
			t.Errorf("point %v not rejected by any plane", pt)
		}
	}
}

func TestTranspose(t *testing.T) {
	m := Mat4{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}
	tt := m.Transpose().Transpose()
	if tt != m {
		t.Errorf("double transpose != original")
	}
	if m.Transpose()[1] != 5 {
		t.Errorf("transpose[0][1] = %v, want 5", m.Transpose()[1])
	}
}

func TestVec4Lerp(t *testing.T) {
	a := Vec4{0, 0, 0, 0}
	b := Vec4{2, 4, 6, 8}
	if got := a.Lerp(b, 0.25); got != (Vec4{0.5, 1, 1.5, 2}) {
		t.Errorf("lerp = %v", got)
	}
}

func TestPlaneNormalized(t *testing.T) {
	p := Plane{Vec3{0, 3, 0}, 6}.Normalized()
	if !almostEq(p.N.Len(), 1) {
		t.Errorf("normal length = %v", p.N.Len())
	}
	if !almostEq(p.Dist(Vec3{0, -2, 0}), 0) {
		t.Errorf("point on plane has dist %v", p.Dist(Vec3{0, -2, 0}))
	}
}

func TestLookAtDegenerateUp(t *testing.T) {
	// Looking straight down with up = +Y would make forward parallel to
	// up; the matrix must still be finite and orthonormal.
	view := LookAt(Vec3{Y: 10}, Vec3{}, Vec3{Y: 1})
	for i, v := range view {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("view[%d] = %v", i, v)
		}
	}
	// The eye must map to the origin and rows stay orthonormal.
	if got := view.MulPoint(Vec3{Y: 10}); got.Len() > 1e-9 {
		t.Errorf("view(eye) = %v", got)
	}
	r0 := Vec3{view[0], view[1], view[2]}
	r1 := Vec3{view[4], view[5], view[6]}
	if !almostEq(r0.Len(), 1) || !almostEq(r1.Len(), 1) || !almostEq(r0.Dot(r1), 0) {
		t.Errorf("basis not orthonormal: %v %v", r0, r1)
	}
	// Looking straight up likewise.
	view = LookAt(Vec3{}, Vec3{Y: 5}, Vec3{Y: 1})
	for i, v := range view {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("up view[%d] = %v", i, v)
		}
	}
}
