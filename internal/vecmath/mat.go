package vecmath

import "math"

// Mat4 is a 4x4 matrix stored row-major: m[row*4+col].
type Mat4 [16]float64

// Identity returns the identity matrix.
func Identity() Mat4 {
	return Mat4{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// Mul returns the matrix product m * o.
func (m Mat4) Mul(o Mat4) Mat4 {
	var r Mat4
	for row := 0; row < 4; row++ {
		for col := 0; col < 4; col++ {
			var s float64
			for k := 0; k < 4; k++ {
				s += m[row*4+k] * o[k*4+col]
			}
			r[row*4+col] = s
		}
	}
	return r
}

// MulVec4 returns m * v.
func (m Mat4) MulVec4(v Vec4) Vec4 {
	return Vec4{
		m[0]*v.X + m[1]*v.Y + m[2]*v.Z + m[3]*v.W,
		m[4]*v.X + m[5]*v.Y + m[6]*v.Z + m[7]*v.W,
		m[8]*v.X + m[9]*v.Y + m[10]*v.Z + m[11]*v.W,
		m[12]*v.X + m[13]*v.Y + m[14]*v.Z + m[15]*v.W,
	}
}

// MulPoint transforms a 3D point (w = 1) and returns the xyz of the result.
// The caller must ensure m's bottom row is (0,0,0,1) or accept the dropped w.
func (m Mat4) MulPoint(p Vec3) Vec3 {
	return m.MulVec4(V4(p, 1)).XYZ()
}

// MulDir transforms a direction (w = 0).
func (m Mat4) MulDir(d Vec3) Vec3 {
	return m.MulVec4(V4(d, 0)).XYZ()
}

// Translate returns a translation matrix.
func Translate(t Vec3) Mat4 {
	m := Identity()
	m[3], m[7], m[11] = t.X, t.Y, t.Z
	return m
}

// ScaleUniform returns a uniform scaling matrix.
func ScaleUniform(s float64) Mat4 { return ScaleXYZ(Vec3{s, s, s}) }

// ScaleXYZ returns a per-axis scaling matrix.
func ScaleXYZ(s Vec3) Mat4 {
	m := Identity()
	m[0], m[5], m[10] = s.X, s.Y, s.Z
	return m
}

// RotateY returns a rotation about the +Y axis by the given angle in radians.
func RotateY(rad float64) Mat4 {
	c, s := math.Cos(rad), math.Sin(rad)
	return Mat4{
		c, 0, s, 0,
		0, 1, 0, 0,
		-s, 0, c, 0,
		0, 0, 0, 1,
	}
}

// RotateX returns a rotation about the +X axis by the given angle in radians.
func RotateX(rad float64) Mat4 {
	c, s := math.Cos(rad), math.Sin(rad)
	return Mat4{
		1, 0, 0, 0,
		0, c, -s, 0,
		0, s, c, 0,
		0, 0, 0, 1,
	}
}

// RotateZ returns a rotation about the +Z axis by the given angle in radians.
func RotateZ(rad float64) Mat4 {
	c, s := math.Cos(rad), math.Sin(rad)
	return Mat4{
		c, -s, 0, 0,
		s, c, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// LookAt builds a right-handed view matrix with the camera at eye, looking
// toward target, with the given approximate up vector. If the view
// direction is (nearly) parallel to up — looking straight down or up — a
// fallback up axis is substituted so the basis stays orthonormal.
func LookAt(eye, target, up Vec3) Mat4 {
	f := target.Sub(eye).Normalize() // forward
	s := f.Cross(up)                 // right
	if s.Len() < 1e-9 {
		// Pick the world axis least aligned with f.
		fallback := Vec3{X: 1}
		if math.Abs(f.X) > math.Abs(f.Z) {
			fallback = Vec3{Z: 1}
		}
		s = f.Cross(fallback)
	}
	s = s.Normalize()
	u := s.Cross(f) // true up
	return Mat4{
		s.X, s.Y, s.Z, -s.Dot(eye),
		u.X, u.Y, u.Z, -u.Dot(eye),
		-f.X, -f.Y, -f.Z, f.Dot(eye),
		0, 0, 0, 1,
	}
}

// Perspective builds an OpenGL-style perspective projection. fovY is the
// vertical field of view in radians; aspect is width/height; near and far
// are positive distances to the clip planes.
func Perspective(fovY, aspect, near, far float64) Mat4 {
	f := 1 / math.Tan(fovY/2)
	return Mat4{
		f / aspect, 0, 0, 0,
		0, f, 0, 0,
		0, 0, (far + near) / (near - far), 2 * far * near / (near - far),
		0, 0, -1, 0,
	}
}

// Transpose returns the transpose of m.
func (m Mat4) Transpose() Mat4 {
	var r Mat4
	for row := 0; row < 4; row++ {
		for col := 0; col < 4; col++ {
			r[col*4+row] = m[row*4+col]
		}
	}
	return r
}

// Plane is a plane in the form ax + by + cz + d >= 0 for points inside.
type Plane struct {
	N Vec3    // normal (a, b, c), not necessarily unit length
	D float64 // d
}

// Dist returns the signed distance-like value a*x + b*y + c*z + d. It is a
// true distance only when N is unit length; for inside/outside tests the
// sign alone suffices.
func (p Plane) Dist(v Vec3) float64 { return p.N.Dot(v) + p.D }

// Normalized returns the plane scaled so that N is unit length.
func (p Plane) Normalized() Plane {
	l := p.N.Len()
	if l == 0 {
		return p
	}
	inv := 1 / l
	return Plane{p.N.Scale(inv), p.D * inv}
}

// FrustumPlanes extracts the six view-frustum planes from a combined
// projection*view matrix (Gribb–Hartmann). Points inside the frustum have
// Dist >= 0 for all six. Order: left, right, bottom, top, near, far.
func FrustumPlanes(pv Mat4) [6]Plane {
	row := func(i int) Vec4 {
		return Vec4{pv[i*4+0], pv[i*4+1], pv[i*4+2], pv[i*4+3]}
	}
	r0, r1, r2, r3 := row(0), row(1), row(2), row(3)
	mk := func(v Vec4) Plane {
		return Plane{Vec3{v.X, v.Y, v.Z}, v.W}.Normalized()
	}
	return [6]Plane{
		mk(r3.Add(r0)), // left:   w + x >= 0
		mk(r3.Sub(r0)), // right:  w - x >= 0
		mk(r3.Add(r1)), // bottom: w + y >= 0
		mk(r3.Sub(r1)), // top:    w - y >= 0
		mk(r3.Add(r2)), // near:   w + z >= 0
		mk(r3.Sub(r2)), // far:    w - z >= 0
	}
}
