package push

import (
	"testing"

	"texcache/internal/texture"
)

// mkSet builds a registry of n textures of the given square sizes.
func mkSet(t *testing.T, sizes ...int) *texture.Set {
	t.Helper()
	s := texture.NewSet()
	for i, sz := range sizes {
		s.Register(texture.MustNew(
			// Unique names aid debugging only.
			string(rune('a'+i)), sz, sz, texture.RGBA8888, nil))
	}
	return s
}

func TestNewManagerRejects(t *testing.T) {
	set := mkSet(t, 16)
	if _, err := NewManager(Config{LocalBytes: 0}, set); err == nil {
		t.Error("zero memory accepted")
	}
	if _, err := NewManager(Config{LocalBytes: -5}, set); err == nil {
		t.Error("negative memory accepted")
	}
}

func TestTouchDownloadsOnce(t *testing.T) {
	set := mkSet(t, 64, 64)
	m, err := NewManager(Config{LocalBytes: 1 << 20}, set)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Touch(0) {
		t.Fatal("Touch failed with ample memory")
	}
	if !m.Touch(0) || !m.Touch(0) {
		t.Fatal("resident texture refused")
	}
	st := m.Stats()
	if st.Downloads != 1 {
		t.Errorf("Downloads = %d, want 1 (re-touches are free)", st.Downloads)
	}
	if st.DownloadBytes != set.ByID(0).HostBytes() {
		t.Errorf("DownloadBytes = %d, want %d", st.DownloadBytes, set.ByID(0).HostBytes())
	}
	if !m.Resident(0) || m.Resident(1) {
		t.Error("residency wrong")
	}
}

func TestWholeTextureGranularity(t *testing.T) {
	// The push architecture downloads entire textures even if one texel
	// is needed — the inefficiency the paper calls out.
	set := mkSet(t, 256)
	m, _ := NewManager(Config{LocalBytes: 1 << 20}, set)
	m.Touch(0)
	if got := m.Stats().DownloadBytes; got != set.ByID(0).HostBytes() {
		t.Errorf("downloaded %d bytes, want the whole texture %d",
			got, set.ByID(0).HostBytes())
	}
}

func alignUp(v int64) int64 { return (v + 255) / 256 * 256 }

func TestLRUEviction(t *testing.T) {
	// Three equal textures in memory sized for exactly two (aligned).
	set := mkSet(t, 128, 128, 128)
	one := alignUp(set.ByID(0).HostBytes())
	m, _ := NewManager(Config{LocalBytes: one * 2}, set)
	m.Touch(0)
	m.Touch(1)
	if m.ResidentTextures() != 2 {
		t.Fatalf("resident = %d, want 2", m.ResidentTextures())
	}
	m.Touch(2) // evicts 0 (least recently used)
	if m.Resident(0) {
		t.Error("LRU texture 0 still resident")
	}
	if !m.Resident(1) || !m.Resident(2) {
		t.Error("wrong texture evicted")
	}
	if got := m.Stats().Evictions; got != 1 {
		t.Errorf("Evictions = %d, want 1", got)
	}
	// Re-touching 0 re-downloads it (thrash).
	m.Touch(0)
	if got := m.Stats().Downloads; got != 4 {
		t.Errorf("Downloads = %d, want 4", got)
	}
}

func TestTouchRefreshesLRU(t *testing.T) {
	set := mkSet(t, 128, 128, 128)
	one := alignUp(set.ByID(0).HostBytes())
	m, _ := NewManager(Config{LocalBytes: one * 2}, set)
	m.Touch(0)
	m.Touch(1)
	m.Touch(0) // refresh 0: now 1 is LRU
	m.Touch(2)
	if m.Resident(1) {
		t.Error("texture 1 should have been the LRU victim")
	}
	if !m.Resident(0) {
		t.Error("recently used texture 0 evicted")
	}
}

func TestOversizeTextureFails(t *testing.T) {
	set := mkSet(t, 512, 16)
	m, _ := NewManager(Config{LocalBytes: 64 << 10}, set)
	if m.Touch(0) {
		t.Error("texture larger than local memory became resident")
	}
	if got := m.Stats().Failures; got != 1 {
		t.Errorf("Failures = %d, want 1", got)
	}
	// Small textures still work afterwards.
	if !m.Touch(1) {
		t.Error("small texture refused after failure")
	}
}

func TestFragmentationAndCompaction(t *testing.T) {
	// Sizes chosen so that after evicting a middle texture the free
	// space is split and a larger texture forces compaction.
	set := texture.NewSet()
	set.Register(texture.MustNew("a", 128, 128, texture.RGBA8888, nil)) // ~87K
	set.Register(texture.MustNew("b", 128, 128, texture.RGBA8888, nil))
	set.Register(texture.MustNew("c", 128, 128, texture.RGBA8888, nil))
	set.Register(texture.MustNew("d", 128, 256, texture.RGBA8888, nil)) // ~175K
	one := set.ByID(0).HostBytes()
	local := alignUp(one)*3 + 512 // room for exactly three small textures

	m, _ := NewManager(Config{LocalBytes: local}, set)
	m.Touch(0)
	m.Touch(1)
	m.Touch(2)
	// Re-touch 1 so the outer segments 0 and 2 are the LRU victims: the
	// surviving middle segment splits the free space into two holes.
	m.Touch(1)
	// d needs two small slots' worth of contiguous space; with the free
	// space fragmented around segment 1, compaction is required.
	if !m.Touch(3) {
		t.Fatal("large texture failed to load")
	}
	if !m.Resident(3) {
		t.Fatal("large texture not resident")
	}
	st := m.Stats()
	if st.Evictions < 2 {
		t.Errorf("Evictions = %d, want >= 2", st.Evictions)
	}
	if st.Compactions < 1 {
		t.Errorf("Compactions = %d, want >= 1 (fragmented free space)", st.Compactions)
	}
	// Memory accounting stays consistent.
	if m.UsedBytes() > local {
		t.Errorf("UsedBytes %d exceeds capacity %d", m.UsedBytes(), local)
	}
}

func TestFreeFragments(t *testing.T) {
	set := mkSet(t, 64, 64, 64)
	one := set.ByID(0).HostBytes()
	m, _ := NewManager(Config{LocalBytes: one * 8}, set)
	if got := m.FreeFragments(); got != 1 {
		t.Errorf("empty memory fragments = %d, want 1", got)
	}
	m.Touch(0)
	m.Touch(1)
	m.Touch(2)
	// Contiguously allocated from offset 0: one free fragment at the end.
	if got := m.FreeFragments(); got != 1 {
		t.Errorf("fragments = %d, want 1", got)
	}
}

func TestManyTexturesChurn(t *testing.T) {
	// Random-ish access over more textures than fit; invariants must
	// hold throughout.
	sizes := make([]int, 12)
	for i := range sizes {
		sizes[i] = 64 << (i % 3) // 64, 128, 256
	}
	set := mkSet(t, sizes...)
	m, _ := NewManager(Config{LocalBytes: 512 << 10}, set)
	state := uint64(42)
	for i := 0; i < 2000; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		tid := texture.ID(state % 12)
		if !m.Touch(tid) {
			t.Fatalf("step %d: Touch(%d) failed", i, tid)
		}
		if !m.Resident(tid) {
			t.Fatalf("step %d: texture %d not resident after Touch", i, tid)
		}
		if m.UsedBytes() > 512<<10 {
			t.Fatalf("step %d: over capacity", i)
		}
	}
	if m.Stats().Downloads <= 12 {
		t.Error("no churn observed; test misconfigured")
	}
}
