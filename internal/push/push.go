// Package push models the traditional push architecture the paper compares
// against (§1, Figure 1a): a fixed-size texture memory local to the
// accelerator, managed at whole-texture granularity by the application or
// driver. Before any texel of a texture can be sampled, the entire texture
// (all MIP levels, at original depth) must be downloaded into a contiguous
// segment of local memory — the "segment manager" the paper calls a
// provably hard bin-packing problem.
//
// The manager implements what a competent period driver did: first-fit
// allocation over a free list, least-recently-used whole-texture eviction,
// and compaction as a last resort when free space suffices but is
// fragmented. Downloads, evictions, compactions and failures are counted
// so the push architecture's real bandwidth (not just its lower bound) can
// be compared with pull and L2 caching.
package push

import (
	"fmt"
	"sort"

	"texcache/internal/texture"
)

// Config parameterises the local texture memory.
type Config struct {
	// LocalBytes is the accelerator-local texture memory capacity (the
	// high-end InfiniteReality of the paper shipped 64 MB; PC parts of
	// the era had 4-16 MB).
	LocalBytes int64
	// Align rounds segment sizes up (DRAM page granularity). Zero means
	// 256 bytes.
	Align int64
}

// Stats counts manager activity.
type Stats struct {
	// DownloadBytes is host->local traffic: whole textures at original
	// depth, counted on every (re-)load.
	DownloadBytes int64
	// Downloads counts texture loads; Evictions counts whole-texture
	// evictions; Compactions counts defragmentation passes.
	Downloads   int64
	Evictions   int64
	Compactions int64
	// Failures counts textures that could not be made resident (larger
	// than local memory); their accesses fall through to host memory.
	Failures int64
}

// segment is an allocated region [off, off+size).
type segment struct {
	off, size int64
	tid       texture.ID
	lastUse   int64
}

// Manager is the push-architecture texture memory manager.
type Manager struct {
	cfg  Config
	set  *texture.Set
	tick int64
	// resident maps texture id -> index into segs, or -1.
	resident []int
	segs     []*segment // allocated segments, unordered
	usedByte int64
	stats    Stats
}

// NewManager builds a manager over the texture registry.
func NewManager(cfg Config, set *texture.Set) (*Manager, error) {
	if cfg.LocalBytes <= 0 {
		return nil, fmt.Errorf("push: non-positive local memory %d", cfg.LocalBytes)
	}
	if cfg.Align <= 0 {
		cfg.Align = 256
	}
	m := &Manager{
		cfg:      cfg,
		set:      set,
		resident: make([]int, set.Len()),
	}
	for i := range m.resident {
		m.resident[i] = -1
	}
	return m, nil
}

// align rounds size up to the configured granularity.
func (m *Manager) align(size int64) int64 {
	a := m.cfg.Align
	return (size + a - 1) / a * a
}

// Touch declares that the texture is needed now (a texel of it is about to
// be sampled). It returns true if the texture is (or becomes) resident.
// Non-resident textures are downloaded in full; if space is insufficient,
// LRU textures are evicted and, when free space is sufficient but
// fragmented, memory is compacted.
func (m *Manager) Touch(tid texture.ID) bool {
	m.tick++
	if idx := m.resident[tid]; idx >= 0 {
		m.segs[idx].lastUse = m.tick
		return true
	}
	size := m.align(m.set.ByID(tid).HostBytes())
	if size > m.cfg.LocalBytes {
		m.stats.Failures++
		return false
	}
	// Evict least-recently-used textures until the total free space can
	// hold the new texture.
	for m.cfg.LocalBytes-m.usedByte < size {
		m.evictLRU()
	}
	off, ok := m.findHole(size)
	if !ok {
		// Enough free space in total, but fragmented: compact.
		m.compact()
		m.stats.Compactions++
		off, ok = m.findHole(size)
		if !ok {
			// Cannot happen: compaction coalesces all free space.
			panic("push: no hole after compaction")
		}
	}
	seg := &segment{off: off, size: size, tid: tid, lastUse: m.tick}
	m.resident[tid] = len(m.segs)
	m.segs = append(m.segs, seg)
	m.usedByte += size
	m.stats.Downloads++
	m.stats.DownloadBytes += m.set.ByID(tid).HostBytes()
	return true
}

// evictLRU removes the least recently used resident texture.
func (m *Manager) evictLRU() {
	if len(m.segs) == 0 {
		panic("push: eviction from empty memory")
	}
	lru := 0
	for i, s := range m.segs {
		if s.lastUse < m.segs[lru].lastUse {
			lru = i
		}
	}
	m.removeSegment(lru)
	m.stats.Evictions++
}

// removeSegment deletes segs[i], maintaining the resident index map.
func (m *Manager) removeSegment(i int) {
	s := m.segs[i]
	m.resident[s.tid] = -1
	m.usedByte -= s.size
	last := len(m.segs) - 1
	m.segs[i] = m.segs[last]
	m.segs = m.segs[:last]
	if i < last {
		m.resident[m.segs[i].tid] = i
	}
}

// findHole first-fits a free region of at least size bytes, returning its
// offset.
func (m *Manager) findHole(size int64) (int64, bool) {
	// Sort segments by offset and walk the gaps.
	offs := make([]*segment, len(m.segs))
	copy(offs, m.segs)
	sort.Slice(offs, func(a, b int) bool { return offs[a].off < offs[b].off })
	var cursor int64
	for _, s := range offs {
		if s.off-cursor >= size {
			return cursor, true
		}
		cursor = s.off + s.size
	}
	if m.cfg.LocalBytes-cursor >= size {
		return cursor, true
	}
	return 0, false
}

// compact slides every segment down to remove fragmentation (modelled as a
// local-memory copy; no host traffic).
func (m *Manager) compact() {
	offs := make([]*segment, len(m.segs))
	copy(offs, m.segs)
	sort.Slice(offs, func(a, b int) bool { return offs[a].off < offs[b].off })
	var cursor int64
	for _, s := range offs {
		s.off = cursor
		cursor += s.size
	}
}

// Resident reports whether the texture currently occupies local memory.
func (m *Manager) Resident(tid texture.ID) bool { return m.resident[tid] >= 0 }

// UsedBytes returns the bytes currently allocated.
func (m *Manager) UsedBytes() int64 { return m.usedByte }

// ResidentTextures returns the count of textures in local memory.
func (m *Manager) ResidentTextures() int { return len(m.segs) }

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats { return m.stats }

// FreeFragments returns the number of disjoint free regions — a direct
// fragmentation measure of the bin-packing problem.
func (m *Manager) FreeFragments() int {
	offs := make([]*segment, len(m.segs))
	copy(offs, m.segs)
	sort.Slice(offs, func(a, b int) bool { return offs[a].off < offs[b].off })
	frags := 0
	var cursor int64
	for _, s := range offs {
		if s.off > cursor {
			frags++
		}
		cursor = s.off + s.size
	}
	if cursor < m.cfg.LocalBytes {
		frags++
	}
	return frags
}
