// Package stats implements the tracing library of the study (§3.2, §4):
// it tracks texture block references per frame at several tile
// granularities and derives the paper's working-set measures — blocks
// touched per frame (total and new relative to the previous frame), the
// minimum local memory of the push and L2-caching architectures, and the
// minimum L1 download bandwidth of the pull architecture.
package stats

import (
	"fmt"

	"texcache/internal/texture"
)

// LayoutFrame reports block usage for one tile granularity in one frame.
type LayoutFrame struct {
	Layout texture.TileLayout
	// Blocks is the number of unique blocks referenced this frame.
	Blocks int64
	// NewBlocks is the number of those not referenced the previous frame.
	NewBlocks int64
}

// MinBytes returns the minimum cache memory to hold the frame's blocks at
// 32-bit texels (the L2-caching architecture's requirement in Figure 4 when
// Layout is an L2 tile size; the L1 download quantum when it is an L1 tile).
func (l LayoutFrame) MinBytes() int64 {
	return l.Blocks * int64(l.Layout.L2BlockBytes())
}

// NewBytes returns the bytes of blocks new this frame.
func (l LayoutFrame) NewBytes() int64 {
	return l.NewBlocks * int64(l.Layout.L2BlockBytes())
}

// Frame aggregates one frame's reference statistics.
type Frame struct {
	// Index is the zero-based frame number.
	Index int
	// Pixels is the number of textured pixels rasterized.
	Pixels int64
	// TexelRefs is the number of texel references presented.
	TexelRefs int64
	// PerLayout holds block statistics for each tracked granularity, in
	// the order the layouts were given to NewCollector.
	PerLayout []LayoutFrame
	// TexturesTouched counts distinct textures referenced.
	TexturesTouched int
	// PushBytes is the minimum push-architecture local memory: the sum
	// of full texture sizes (at original depth) for textures used this
	// frame, assuming a perfect whole-texture replacement policy.
	PushBytes int64
	// HostLoadedBytes is the total texture bytes resident in system
	// memory (all architectures).
	HostLoadedBytes int64
	// LevelRefs histograms texel references by MIP level (levels beyond
	// the last bucket accumulate in it). The MIP distribution shows how
	// the accelerator's level selection tracks texture compression.
	LevelRefs [MaxLevels]int64
}

// MaxLevels bounds the MIP histogram: level 15 corresponds to a 32768x32768
// base texture, beyond any texture of the period.
const MaxLevels = 16

// LayoutStats returns the LayoutFrame for the given layout, or false.
func (f *Frame) LayoutStats(layout texture.TileLayout) (LayoutFrame, bool) {
	for _, l := range f.PerLayout {
		if l.Layout == layout {
			return l, true
		}
	}
	return LayoutFrame{}, false
}

// Utilization returns the paper's block utilisation for the layout: the
// average number of times each texel of a touched block is referenced,
// TexelRefs / (Blocks * texels-per-block). Values above 1 indicate texel
// re-use (repeated textures); below 1, internal fragmentation.
func (f *Frame) Utilization(layout texture.TileLayout) float64 {
	l, ok := f.LayoutStats(layout)
	if !ok || l.Blocks == 0 {
		return 0
	}
	texelsPerBlock := int64(layout.L2Size) * int64(layout.L2Size)
	return float64(f.TexelRefs) / float64(l.Blocks*texelsPerBlock)
}

// blockTracker tracks unique/new blocks at one tile granularity using
// last-seen frame stamps over the flattened block index space.
type blockTracker struct {
	layout   texture.TileLayout
	tilings  []*texture.Tiling
	starts   []uint32
	lastSeen []int32
	unique   int64
	fresh    int64
}

func newBlockTracker(set *texture.Set, layout texture.TileLayout) *blockTracker {
	set.MustPrepare(layout)
	t := &blockTracker{
		layout:   layout,
		tilings:  set.Tilings(layout),
		starts:   make([]uint32, set.Len()),
		lastSeen: make([]int32, set.PageTableEntries(layout)),
	}
	for i := range t.starts {
		t.starts[i] = set.Start(layout, texture.ID(i))
	}
	// -2 so that frame 0's blocks count as new (frame-1 == -1 must not
	// match the initial stamp).
	for i := range t.lastSeen {
		t.lastSeen[i] = -2
	}
	return t
}

func (t *blockTracker) texel(tid texture.ID, u, v, m, frame int) {
	a := t.tilings[tid].Addr(u, v, m)
	idx := t.starts[tid] + a.L2
	last := t.lastSeen[idx]
	if last == int32(frame) {
		return
	}
	t.unique++
	if last != int32(frame)-1 {
		t.fresh++
	}
	t.lastSeen[idx] = int32(frame)
}

// Collector receives the texel reference stream and produces per-frame
// statistics. Layouts given as L2 tile sizes (e.g. {16,4}) measure L2
// working sets; layouts with L2Size == L1Size (e.g. {4,4}) measure L1 tile
// traffic, since then each "block" is exactly one L1 tile.
type Collector struct {
	set        *texture.Set
	trackers   []*blockTracker
	texSeen    []int32
	frame      int
	inFrame    bool
	pixels     int64
	texels     int64
	texTouched int
	pushBytes  int64
	levels     [MaxLevels]int64
	frames     []Frame
}

// NewCollector builds a collector tracking the given tile granularities.
func NewCollector(set *texture.Set, layouts ...texture.TileLayout) (*Collector, error) {
	if len(layouts) == 0 {
		return nil, fmt.Errorf("stats: no layouts to track")
	}
	c := &Collector{
		set:      set,
		texSeen:  make([]int32, set.Len()),
		trackers: make([]*blockTracker, 0, len(layouts)),
	}
	for i := range c.texSeen {
		c.texSeen[i] = -1
	}
	for _, l := range layouts {
		if err := l.Validate(); err != nil {
			return nil, err
		}
		c.trackers = append(c.trackers, newBlockTracker(set, l))
	}
	return c, nil
}

// MustNewCollector is NewCollector but panics on error.
func MustNewCollector(set *texture.Set, layouts ...texture.TileLayout) *Collector {
	c, err := NewCollector(set, layouts...)
	if err != nil {
		panic(err)
	}
	return c
}

// BeginFrame starts a new frame.
func (c *Collector) BeginFrame() {
	if c.inFrame {
		panic("stats: BeginFrame inside a frame")
	}
	c.inFrame = true
	c.pixels = 0
	c.texels = 0
	c.texTouched = 0
	c.pushBytes = 0
	c.levels = [MaxLevels]int64{}
	for _, t := range c.trackers {
		t.unique = 0
		t.fresh = 0
	}
}

// Pixel records one textured pixel rasterized (for depth complexity).
func (c *Collector) Pixel() { c.pixels++ }

// AddPixels records n textured pixels at once (e.g. a rasterizer's frame
// total).
func (c *Collector) AddPixels(n int64) { c.pixels += n }

// Texel records one texel reference. u and v must be wrapped into the
// level extent and m must be a valid MIP level of the texture.
//
// texlint:hotpath
func (c *Collector) Texel(tid texture.ID, u, v, m int) {
	c.texels++
	if lvl := min(m, MaxLevels-1); lvl >= 0 {
		c.levels[lvl]++
	}
	if c.texSeen[tid] != int32(c.frame) {
		c.texSeen[tid] = int32(c.frame)
		c.texTouched++
		c.pushBytes += c.set.ByID(tid).HostBytes()
	}
	for _, t := range c.trackers {
		t.texel(tid, u, v, m, c.frame)
	}
}

// EndFrame closes the current frame and returns its statistics.
func (c *Collector) EndFrame() Frame {
	if !c.inFrame {
		panic("stats: EndFrame outside a frame")
	}
	c.inFrame = false
	f := Frame{
		Index:           c.frame,
		Pixels:          c.pixels,
		TexelRefs:       c.texels,
		TexturesTouched: c.texTouched,
		PushBytes:       c.pushBytes,
		HostLoadedBytes: c.set.HostBytes(),
		LevelRefs:       c.levels,
		PerLayout:       make([]LayoutFrame, 0, len(c.trackers)),
	}
	for _, t := range c.trackers {
		f.PerLayout = append(f.PerLayout, LayoutFrame{
			Layout:    t.layout,
			Blocks:    t.unique,
			NewBlocks: t.fresh,
		})
	}
	c.frames = append(c.frames, f)
	c.frame++
	return f
}

// Frames returns the statistics of all completed frames.
func (c *Collector) Frames() []Frame { return c.frames }
