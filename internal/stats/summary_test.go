package stats_test

import (
	"math"
	"reflect"
	"strconv"
	"testing"

	"texcache/internal/core"
	"texcache/internal/raster"
	"texcache/internal/stats"
	"texcache/internal/texture"
	"texcache/internal/workload"
)

var layout4 = texture.TileLayout{L2Size: 4, L1Size: 4}

// sampleFrame is a hand-computable frame: depth complexity 2 over 100
// screen pixels, utilization 320/(10*16) = 2 at the 4x4 granularity.
func sampleFrame() stats.Frame {
	f := stats.Frame{
		Index:           0,
		Pixels:          200,
		TexelRefs:       320,
		TexturesTouched: 3,
		PushBytes:       5000,
		HostLoadedBytes: 7777,
		PerLayout: []stats.LayoutFrame{
			{Layout: layout4, Blocks: 10, NewBlocks: 4},
		},
	}
	f.LevelRefs[0] = 300
	f.LevelRefs[1] = 20
	return f
}

func TestSummarize(t *testing.T) {
	blockBytes := float64(layout4.L2BlockBytes()) // 4*4*4 = 64

	single := stats.Summary{
		Frames:          1,
		ScreenPixels:    100,
		DepthComplexity: 2,
		AvgTexelRefs:    320,
		AvgPushBytes:    5000,
		MaxPushBytes:    5000,
		HostLoadedBytes: 7777,
		PerLayout: []stats.LayoutSummary{{
			Layout:       layout4,
			AvgBlocks:    10,
			AvgNewBlocks: 4,
			MaxBlocks:    10,
			AvgBytes:     10 * blockBytes,
			AvgNewBytes:  4 * blockBytes,
			MaxBytes:     10 * int64(blockBytes),
			Utilization:  2,
		}},
	}
	single.LevelRefs[0] = 300
	single.LevelRefs[1] = 20

	// Averages over identical frames equal the single-frame values except
	// the level histogram, which accumulates.
	identical := single
	identical.Frames = 3
	identical.LevelRefs[0] = 900
	identical.LevelRefs[1] = 60

	cases := []struct {
		name         string
		frames       []stats.Frame
		screenPixels int64
		want         stats.Summary
	}{
		{
			name:         "empty",
			frames:       nil,
			screenPixels: 100,
			want:         stats.Summary{Frames: 0, ScreenPixels: 100},
		},
		{
			name:         "single frame",
			frames:       []stats.Frame{sampleFrame()},
			screenPixels: 100,
			want:         single,
		},
		{
			name:         "all identical frames",
			frames:       []stats.Frame{sampleFrame(), sampleFrame(), sampleFrame()},
			screenPixels: 100,
			want:         identical,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := stats.Summarize(tc.frames, tc.screenPixels)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("Summarize() = %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestSummarizeZeroScreenPixels(t *testing.T) {
	s := stats.Summarize([]stats.Frame{sampleFrame()}, 0)
	if s.DepthComplexity != 0 {
		t.Errorf("DepthComplexity = %v with zero screen pixels, want 0", s.DepthComplexity)
	}
}

func TestSummaryLayoutLookup(t *testing.T) {
	s := stats.Summarize([]stats.Frame{sampleFrame()}, 100)
	if ls, ok := s.Layout(layout4); !ok || ls.MaxBlocks != 10 {
		t.Errorf("Layout(%v) = %+v, %v; want hit with MaxBlocks 10", layout4, ls, ok)
	}
	if _, ok := s.Layout(texture.TileLayout{L2Size: 32, L1Size: 4}); ok {
		t.Error("Layout() reported a hit for an untracked granularity")
	}
}

// Golden values for the reduced Village run below. Regenerate by running
// the test with -run TestSummarizeVillageGolden -v and copying the logged
// actuals; the simulation is deterministic, so drift means behaviour
// changed.
const (
	goldenFrames          = 4
	goldenDepthComplexity = "3.2777864583333334"
	goldenAvgTexelRefs    = "62933.5"
	goldenMaxPushBytes    = 17607330
	goldenHostLoaded      = 17607330
	goldenAvgBlocks       = "135.25"
	goldenMaxBlocks       = 178
	goldenUtilization     = "1.8270452823898682"
)

func TestSummarizeVillageGolden(t *testing.T) {
	layout := texture.TileLayout{L2Size: 16, L1Size: 4}
	cfg := core.Config{
		Width:       160,
		Height:      120,
		Frames:      goldenFrames,
		Mode:        raster.Point,
		L1Bytes:     2 << 10,
		StatLayouts: []texture.TileLayout{layout},
	}
	res, err := core.Run(workload.Village(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s == nil {
		t.Fatal("Run() returned no Summary despite StatLayouts")
	}
	ls, ok := s.Layout(layout)
	if !ok {
		t.Fatalf("Summary tracks %v but Layout() missed", layout)
	}
	t.Logf("actuals: depth=%.6f texels=%.6f maxPush=%d host=%d avgBlocks=%.1f maxBlocks=%d util=%.1f",
		s.DepthComplexity, s.AvgTexelRefs, s.MaxPushBytes, s.HostLoadedBytes,
		ls.AvgBlocks, ls.MaxBlocks, ls.Utilization)

	if s.Frames != goldenFrames {
		t.Errorf("Frames = %d, want %d", s.Frames, goldenFrames)
	}
	checkF(t, "DepthComplexity", s.DepthComplexity, goldenDepthComplexity)
	checkF(t, "AvgTexelRefs", s.AvgTexelRefs, goldenAvgTexelRefs)
	if s.MaxPushBytes != goldenMaxPushBytes {
		t.Errorf("MaxPushBytes = %d, want %d", s.MaxPushBytes, goldenMaxPushBytes)
	}
	if s.HostLoadedBytes != goldenHostLoaded {
		t.Errorf("HostLoadedBytes = %d, want %d", s.HostLoadedBytes, goldenHostLoaded)
	}
	checkF(t, "AvgBlocks", ls.AvgBlocks, goldenAvgBlocks)
	if ls.MaxBlocks != goldenMaxBlocks {
		t.Errorf("MaxBlocks = %d, want %d", ls.MaxBlocks, goldenMaxBlocks)
	}
	checkF(t, "Utilization", ls.Utilization, goldenUtilization)
	if want := ls.MaxBlocks * int64(layout.L2BlockBytes()); ls.MaxBytes != want {
		t.Errorf("MaxBytes = %d, inconsistent with MaxBlocks (%d)", ls.MaxBytes, want)
	}

	// The summary must agree with re-reducing the per-frame series.
	var frames []stats.Frame
	for _, fr := range res.Frames {
		if fr.Stats == nil {
			t.Fatal("frame missing Stats despite StatLayouts")
		}
		frames = append(frames, *fr.Stats)
	}
	redo := stats.Summarize(frames, int64(cfg.Width)*int64(cfg.Height))
	if !reflect.DeepEqual(redo, *s) {
		t.Errorf("re-reduced summary disagrees:\n got %+v\nwant %+v", redo, *s)
	}
}

// checkF compares a float against its golden decimal rendering to 1e-9
// relative tolerance, keeping the checked-in constants human-readable.
func checkF(t *testing.T, name string, got float64, golden string) {
	t.Helper()
	want, err := strconv.ParseFloat(golden, 64)
	if err != nil {
		t.Fatalf("bad golden for %s: %v", name, err)
	}
	if diff := math.Abs(got - want); diff > 1e-9*math.Max(1, math.Abs(want)) {
		t.Errorf("%s = %v, want %s", name, got, golden)
	}
}
