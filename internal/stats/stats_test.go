package stats

import (
	"testing"

	"texcache/internal/texture"
)

func testSet(t *testing.T) *texture.Set {
	t.Helper()
	s := texture.NewSet()
	s.Register(texture.MustNew("a", 64, 64, texture.RGBA8888, nil))
	s.Register(texture.MustNew("b", 32, 32, texture.L8, nil))
	return s
}

var l16 = texture.TileLayout{L2Size: 16, L1Size: 4}
var l4 = texture.TileLayout{L2Size: 4, L1Size: 4}

func TestCollectorUniqueBlocks(t *testing.T) {
	set := testSet(t)
	c := MustNewCollector(set, l16)
	c.BeginFrame()
	// Four texels in the same 16x16 block: one unique block.
	for _, uv := range [][2]int{{0, 0}, {1, 1}, {15, 15}, {8, 3}} {
		c.Texel(0, uv[0], uv[1], 0)
	}
	// One texel in a different block.
	c.Texel(0, 16, 0, 0)
	f := c.EndFrame()
	if f.TexelRefs != 5 {
		t.Errorf("TexelRefs = %d, want 5", f.TexelRefs)
	}
	l, _ := f.LayoutStats(l16)
	if l.Blocks != 2 {
		t.Errorf("Blocks = %d, want 2", l.Blocks)
	}
	if l.NewBlocks != 2 {
		t.Errorf("NewBlocks = %d, want 2 (all new in frame 0)", l.NewBlocks)
	}
}

func TestCollectorNewVsRepeatedBlocks(t *testing.T) {
	set := testSet(t)
	c := MustNewCollector(set, l16)

	c.BeginFrame()
	c.Texel(0, 0, 0, 0)
	c.Texel(0, 16, 0, 0)
	c.EndFrame()

	// Frame 1 revisits one block and adds one.
	c.BeginFrame()
	c.Texel(0, 0, 0, 0)
	c.Texel(0, 32, 0, 0)
	f := c.EndFrame()
	l, _ := f.LayoutStats(l16)
	if l.Blocks != 2 || l.NewBlocks != 1 {
		t.Errorf("frame 1: blocks=%d new=%d, want 2/1", l.Blocks, l.NewBlocks)
	}

	// Frame 2 revisits a block from frame 0 that frame 1 skipped: it
	// counts as new again (inter-frame working set is frame-to-frame).
	c.BeginFrame()
	c.Texel(0, 16, 0, 0)
	f = c.EndFrame()
	l, _ = f.LayoutStats(l16)
	if l.Blocks != 1 || l.NewBlocks != 1 {
		t.Errorf("frame 2: blocks=%d new=%d, want 1/1", l.Blocks, l.NewBlocks)
	}
}

func TestCollectorDistinguishesMipLevels(t *testing.T) {
	set := testSet(t)
	c := MustNewCollector(set, l16)
	c.BeginFrame()
	c.Texel(0, 0, 0, 0)
	c.Texel(0, 0, 0, 1) // same coordinates, different level: new block
	f := c.EndFrame()
	l, _ := f.LayoutStats(l16)
	if l.Blocks != 2 {
		t.Errorf("Blocks = %d, want 2 (levels are distinct blocks)", l.Blocks)
	}
}

func TestCollectorDistinguishesTextures(t *testing.T) {
	set := testSet(t)
	c := MustNewCollector(set, l16)
	c.BeginFrame()
	c.Texel(0, 0, 0, 0)
	c.Texel(1, 0, 0, 0)
	f := c.EndFrame()
	l, _ := f.LayoutStats(l16)
	if l.Blocks != 2 {
		t.Errorf("Blocks = %d, want 2 (textures are distinct)", l.Blocks)
	}
	if f.TexturesTouched != 2 {
		t.Errorf("TexturesTouched = %d, want 2", f.TexturesTouched)
	}
}

func TestCollectorPushBytes(t *testing.T) {
	set := testSet(t)
	a, b := set.ByID(0), set.ByID(1)
	c := MustNewCollector(set, l16)

	c.BeginFrame()
	c.Texel(0, 0, 0, 0)
	f := c.EndFrame()
	if f.PushBytes != a.HostBytes() {
		t.Errorf("PushBytes = %d, want %d", f.PushBytes, a.HostBytes())
	}

	c.BeginFrame()
	c.Texel(0, 0, 0, 0)
	c.Texel(0, 5, 5, 0)
	c.Texel(1, 0, 0, 0)
	f = c.EndFrame()
	if want := a.HostBytes() + b.HostBytes(); f.PushBytes != want {
		t.Errorf("PushBytes = %d, want %d", f.PushBytes, want)
	}
	if f.HostLoadedBytes != set.HostBytes() {
		t.Errorf("HostLoadedBytes = %d, want %d", f.HostLoadedBytes, set.HostBytes())
	}
}

func TestCollectorMultipleLayouts(t *testing.T) {
	set := testSet(t)
	c := MustNewCollector(set, l16, l4)
	c.BeginFrame()
	// Texels at (0,0) and (8,8): same 16x16 block, different 4x4 tiles.
	c.Texel(0, 0, 0, 0)
	c.Texel(0, 8, 8, 0)
	f := c.EndFrame()
	big, _ := f.LayoutStats(l16)
	small, _ := f.LayoutStats(l4)
	if big.Blocks != 1 {
		t.Errorf("16x16 blocks = %d, want 1", big.Blocks)
	}
	if small.Blocks != 2 {
		t.Errorf("4x4 tiles = %d, want 2", small.Blocks)
	}
}

func TestUtilization(t *testing.T) {
	set := testSet(t)
	c := MustNewCollector(set, l16)
	c.BeginFrame()
	// 512 references all within one 16x16 block (256 texels):
	// utilisation = 512 / 256 = 2.
	for i := 0; i < 512; i++ {
		c.Texel(0, i%16, (i/16)%16, 0)
	}
	f := c.EndFrame()
	if got := f.Utilization(l16); got != 2 {
		t.Errorf("Utilization = %v, want 2", got)
	}
}

func TestLayoutFrameBytes(t *testing.T) {
	l := LayoutFrame{Layout: l16, Blocks: 3, NewBlocks: 1}
	if got := l.MinBytes(); got != 3*1024 {
		t.Errorf("MinBytes = %d, want 3072", got)
	}
	if got := l.NewBytes(); got != 1024 {
		t.Errorf("NewBytes = %d, want 1024", got)
	}
}

func TestFramePanics(t *testing.T) {
	set := testSet(t)
	c := MustNewCollector(set, l16)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("EndFrame outside frame did not panic")
			}
		}()
		c.EndFrame()
	}()
	c.BeginFrame()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nested BeginFrame did not panic")
			}
		}()
		c.BeginFrame()
	}()
}

func TestSummarize(t *testing.T) {
	set := testSet(t)
	c := MustNewCollector(set, l16)
	// Frame 0: 2 blocks; frame 1: 4 blocks (2 new).
	c.BeginFrame()
	c.Pixel()
	c.Pixel()
	c.Texel(0, 0, 0, 0)
	c.Texel(0, 16, 0, 0)
	c.EndFrame()
	c.BeginFrame()
	c.Pixel()
	c.Pixel()
	c.Pixel()
	c.Pixel()
	c.Texel(0, 0, 0, 0)
	c.Texel(0, 16, 0, 0)
	c.Texel(0, 32, 0, 0)
	c.Texel(0, 48, 0, 0)
	c.EndFrame()

	s := Summarize(c.Frames(), 2)
	if s.Frames != 2 {
		t.Fatalf("Frames = %d", s.Frames)
	}
	// (2+4)/2 pixels per frame over R=2 screen pixels: d = 1.5.
	if s.DepthComplexity != 1.5 {
		t.Errorf("DepthComplexity = %v, want 1.5", s.DepthComplexity)
	}
	ls, ok := s.Layout(l16)
	if !ok {
		t.Fatal("layout summary missing")
	}
	if ls.AvgBlocks != 3 {
		t.Errorf("AvgBlocks = %v, want 3", ls.AvgBlocks)
	}
	if ls.MaxBlocks != 4 {
		t.Errorf("MaxBlocks = %d, want 4", ls.MaxBlocks)
	}
	if ls.AvgNewBlocks != 2 { // frame 0: 2 new; frame 1: 2 new
		t.Errorf("AvgNewBlocks = %v, want 2", ls.AvgNewBlocks)
	}
	if ls.AvgBytes != 3*1024 {
		t.Errorf("AvgBytes = %v", ls.AvgBytes)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, 100)
	if s.Frames != 0 || s.DepthComplexity != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestCollectorWrapsNothing(t *testing.T) {
	// The collector contract requires pre-wrapped coordinates; verify a
	// full-extent sweep touches exactly the expected number of blocks.
	set := texture.NewSet()
	set.Register(texture.MustNew("t", 32, 32, texture.RGBA8888, nil))
	c := MustNewCollector(set, l16)
	c.BeginFrame()
	for v := 0; v < 32; v++ {
		for u := 0; u < 32; u++ {
			c.Texel(0, u, v, 0)
		}
	}
	f := c.EndFrame()
	l, _ := f.LayoutStats(l16)
	if l.Blocks != 4 {
		t.Errorf("Blocks = %d, want 4 (32x32 / 16x16)", l.Blocks)
	}
	if got := f.Utilization(l16); got != 1 {
		t.Errorf("Utilization = %v, want 1 (every texel exactly once)", got)
	}
}

func TestLevelHistogram(t *testing.T) {
	set := testSet(t)
	c := MustNewCollector(set, l16)
	c.BeginFrame()
	c.Texel(0, 0, 0, 0)
	c.Texel(0, 0, 0, 0)
	c.Texel(0, 0, 0, 3)
	c.Texel(0, 0, 0, 5)
	f := c.EndFrame()
	if f.LevelRefs[0] != 2 || f.LevelRefs[3] != 1 || f.LevelRefs[5] != 1 {
		t.Errorf("LevelRefs = %v", f.LevelRefs[:6])
	}
	var total int64
	for _, n := range f.LevelRefs {
		total += n
	}
	if total != f.TexelRefs {
		t.Errorf("histogram total %d != TexelRefs %d", total, f.TexelRefs)
	}
	// Next frame starts a fresh histogram.
	c.BeginFrame()
	c.Texel(0, 0, 0, 1)
	f = c.EndFrame()
	if f.LevelRefs[0] != 0 || f.LevelRefs[1] != 1 {
		t.Errorf("second frame LevelRefs = %v", f.LevelRefs[:2])
	}
}

func TestSummaryLevelHistogram(t *testing.T) {
	set := testSet(t)
	c := MustNewCollector(set, l16)
	c.BeginFrame()
	c.Texel(0, 0, 0, 0)
	c.Texel(0, 0, 0, 2)
	c.EndFrame()
	c.BeginFrame()
	c.Texel(0, 0, 0, 2)
	c.EndFrame()
	s := Summarize(c.Frames(), 1)
	if s.LevelRefs[0] != 1 || s.LevelRefs[2] != 2 {
		t.Errorf("summary LevelRefs = %v", s.LevelRefs[:4])
	}
}
