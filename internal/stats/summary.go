package stats

import "texcache/internal/texture"

// Summary aggregates per-frame statistics across an animation, yielding
// the averaged quantities the paper's tables report.
type Summary struct {
	Frames int
	// ScreenPixels is the screen resolution R used for depth complexity.
	ScreenPixels int64
	// DepthComplexity is the average pixels rendered per screen pixel.
	DepthComplexity float64
	// AvgTexelRefs is the mean texel references per frame.
	AvgTexelRefs float64
	// PerLayout aggregates each tracked granularity.
	PerLayout []LayoutSummary
	// AvgPushBytes is the mean minimum push-architecture memory.
	AvgPushBytes float64
	// MaxPushBytes is the peak minimum push-architecture memory.
	MaxPushBytes int64
	// HostLoadedBytes is the final total texture residency.
	HostLoadedBytes int64
	// LevelRefs is the total MIP-level reference histogram.
	LevelRefs [MaxLevels]int64
}

// LayoutSummary aggregates one granularity over all frames.
type LayoutSummary struct {
	Layout texture.TileLayout
	// AvgBlocks and AvgNewBlocks are per-frame means.
	AvgBlocks, AvgNewBlocks float64
	// MaxBlocks is the largest per-frame block count ("minimum memory"
	// in Figure 4 is this series; its max sizes a cache that never
	// overflows within a frame).
	MaxBlocks int64
	// AvgBytes and AvgNewBytes are the means in bytes at 32-bit texels.
	AvgBytes, AvgNewBytes float64
	// MaxBytes is MaxBlocks in bytes.
	MaxBytes int64
	// Utilization is the mean block utilisation.
	Utilization float64
}

// Summarize reduces the frame series. screenPixels is the display
// resolution R (e.g. 1024*768) used to derive depth complexity.
func Summarize(frames []Frame, screenPixels int64) Summary {
	s := Summary{Frames: len(frames), ScreenPixels: screenPixels}
	if len(frames) == 0 {
		return s
	}
	n := float64(len(frames))
	var pixels, texels, push int64
	for _, f := range frames {
		pixels += f.Pixels
		texels += f.TexelRefs
		push += f.PushBytes
		if f.PushBytes > s.MaxPushBytes {
			s.MaxPushBytes = f.PushBytes
		}
		for m, n := range f.LevelRefs {
			s.LevelRefs[m] += n
		}
	}
	if screenPixels > 0 {
		s.DepthComplexity = float64(pixels) / n / float64(screenPixels)
	}
	s.AvgTexelRefs = float64(texels) / n
	s.AvgPushBytes = float64(push) / n
	s.HostLoadedBytes = frames[len(frames)-1].HostLoadedBytes

	s.PerLayout = make([]LayoutSummary, 0, len(frames[0].PerLayout))
	for li := range frames[0].PerLayout {
		layout := frames[0].PerLayout[li].Layout
		ls := LayoutSummary{Layout: layout}
		var blocks, fresh int64
		var utilSum float64
		for _, f := range frames {
			l := f.PerLayout[li]
			blocks += l.Blocks
			fresh += l.NewBlocks
			if l.Blocks > ls.MaxBlocks {
				ls.MaxBlocks = l.Blocks
			}
			utilSum += f.Utilization(layout)
		}
		blockBytes := float64(layout.L2BlockBytes())
		ls.AvgBlocks = float64(blocks) / n
		ls.AvgNewBlocks = float64(fresh) / n
		ls.AvgBytes = ls.AvgBlocks * blockBytes
		ls.AvgNewBytes = ls.AvgNewBlocks * blockBytes
		ls.MaxBytes = ls.MaxBlocks * int64(layout.L2BlockBytes())
		ls.Utilization = utilSum / n
		s.PerLayout = append(s.PerLayout, ls)
	}
	return s
}

// Layout returns the summary for the given layout, or false.
func (s *Summary) Layout(layout texture.TileLayout) (LayoutSummary, bool) {
	for _, l := range s.PerLayout {
		if l.Layout == layout {
			return l, true
		}
	}
	return LayoutSummary{}, false
}
