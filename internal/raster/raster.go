// Package raster implements the software rasterizer that generates the
// texel reference stream of the study. Triangles arrive in clip space
// (already frustum-clipped by the scene pipeline); the rasterizer performs
// the viewport transform and walks pixels in scanline order (the paper's
// assumption, §2.3), interpolating texture coordinates with perspective
// correction, selecting a MIP level from the texture-space footprint, and
// emitting every texel reference to a Sink.
//
// An optional colour+depth framebuffer supports snapshot rendering
// (Figure 12), and a z-before-texture mode implements the paper's first
// future-work optimisation (§6): occluded pixels then skip texturing.
package raster

import (
	"fmt"
	"math"

	"texcache/internal/texture"
	"texcache/internal/trace"
	"texcache/internal/vecmath"
)

// SampleMode selects the texture filter.
type SampleMode int

const (
	// Point samples the nearest texel of the nearest MIP level; the
	// paper's §4 statistics use point sampling to expose basic locality.
	Point SampleMode = iota
	// Bilinear samples a 2x2 footprint of the nearest MIP level.
	Bilinear
	// Trilinear samples 2x2 footprints of the two bracketing MIP levels.
	Trilinear
)

// String implements fmt.Stringer.
func (m SampleMode) String() string {
	switch m {
	case Point:
		return "point"
	case Bilinear:
		return "bilinear"
	case Trilinear:
		return "trilinear"
	default:
		return fmt.Sprintf("SampleMode(%d)", int(m))
	}
}

// Sink receives the texel reference stream. Coordinates are wrapped into
// the level extent and m is a valid level of the texture.
type Sink interface {
	Texel(tid texture.ID, u, v, m int)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(tid texture.ID, u, v, m int)

// Texel implements Sink.
func (f SinkFunc) Texel(tid texture.ID, u, v, m int) { f(tid, u, v, m) }

// TraceSink streams texel references straight into a trace.Writer. The
// rasterizer recognises this concrete type in SetSink and bypasses the
// Sink interface on the per-texel emit path — one direct call per texel
// instead of an interface dispatch plus an adapter hop. W may be swapped
// between frames (the sweep engine encodes one independent shard per
// frame) but must not change while a triangle is being rasterized.
type TraceSink struct{ W *trace.Writer }

// Texel implements Sink for callers holding the sink as an interface;
// the rasterizer's fast path calls the writer directly instead.
//
// texlint:hotpath
func (s *TraceSink) Texel(tid texture.ID, u, v, m int) { s.W.Texel(uint32(tid), u, v, m) }

// Vertex is a clip-space vertex with normalized texture coordinates.
type Vertex struct {
	Pos vecmath.Vec4 // clip-space position; W > 0 after near clipping
	UV  vecmath.Vec2 // texture coordinates (may exceed [0,1] for wrap)
}

// Config parameterises a Rasterizer.
type Config struct {
	Width, Height int
	Mode          SampleMode
	// ZBeforeTexture performs the depth test before texture access, so
	// occluded pixels generate no texel traffic (§6 future work). The
	// paper's baseline textures before z.
	ZBeforeTexture bool
	// Framebuffer enables colour output (for snapshots). The depth
	// buffer is always maintained.
	Framebuffer bool
}

// Rasterizer rasterizes textured triangles and streams texel references.
type Rasterizer struct {
	cfg   Config
	depth []float32
	color []texture.RGBA
	sink  Sink
	// tsink is non-nil when sink is a *TraceSink: the type assertion is
	// hoisted here, out of the inner scanline loop, so emit can call the
	// trace writer directly instead of dispatching through the interface.
	tsink  *TraceSink
	pixels int64
}

// New constructs a rasterizer.
func New(cfg Config) (*Rasterizer, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("raster: invalid size %dx%d", cfg.Width, cfg.Height)
	}
	r := &Rasterizer{cfg: cfg, depth: make([]float32, cfg.Width*cfg.Height)}
	if cfg.Framebuffer {
		r.color = make([]texture.RGBA, cfg.Width*cfg.Height)
	}
	r.clear()
	return r, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Rasterizer {
	r, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Config returns the rasterizer configuration.
func (r *Rasterizer) Config() Config { return r.cfg }

// SetSink directs the texel reference stream. A nil sink discards it.
// A *TraceSink is recognised and devirtualized: its writer is called
// directly on the per-texel path.
func (r *Rasterizer) SetSink(s Sink) {
	r.sink = s
	r.tsink, _ = s.(*TraceSink)
}

func (r *Rasterizer) clear() {
	for i := range r.depth {
		r.depth[i] = math.MaxFloat32
	}
	for i := range r.color {
		r.color[i] = texture.RGBA{R: 24, G: 28, B: 38, A: 255}
	}
}

// BeginFrame clears the depth (and colour) buffers and the pixel counter.
func (r *Rasterizer) BeginFrame() {
	r.clear()
	r.pixels = 0
}

// Pixels returns the textured pixels generated since BeginFrame; dividing
// by the screen resolution yields the paper's depth complexity d.
func (r *Rasterizer) Pixels() int64 { return r.pixels }

// Color returns the framebuffer, or nil when disabled. Row-major,
// index y*Width+x.
func (r *Rasterizer) Color() []texture.RGBA { return r.color }

// gradient holds a screen-space linear interpolant f(x, y) = At*x + Bt*y + Ct.
type gradient struct {
	a, b, c float64
}

// texsim:pure
func (g gradient) at(x, y float64) float64 { return g.a*x + g.b*y + g.c }

// planeGradients solves for the linear interpolant through three screen
// points with values f0, f1, f2. denom is the doubled signed area.
//
// texsim:pure
func planeGradient(x0, y0, x1, y1, x2, y2, invDenom, f0, f1, f2 float64) gradient {
	a := ((f1-f0)*(y2-y0) - (f2-f0)*(y1-y0)) * invDenom
	b := ((f2-f0)*(x1-x0) - (f1-f0)*(x2-x0)) * invDenom
	return gradient{a, b, f0 - a*x0 - b*y0}
}

// DrawTriangle rasterizes one triangle textured by tex with a flat shade
// factor in [0,1] applied to the sampled colour (snapshot lighting).
func (r *Rasterizer) DrawTriangle(tex *texture.Texture, v0, v1, v2 Vertex, shade float64) {
	w, h := float64(r.cfg.Width), float64(r.cfg.Height)
	// Viewport transform. Clipping guarantees W > 0.
	toScreen := func(v Vertex) (x, y, z, invW float64) {
		iw := 1 / v.Pos.W
		x = (v.Pos.X*iw*0.5 + 0.5) * w
		y = (1 - (v.Pos.Y*iw*0.5 + 0.5)) * h
		z = v.Pos.Z * iw // [-1, 1], smaller is nearer
		return x, y, z, iw
	}
	x0, y0, z0, iw0 := toScreen(v0)
	x1, y1, z1, iw1 := toScreen(v1)
	x2, y2, z2, iw2 := toScreen(v2)

	denom := (x1-x0)*(y2-y0) - (x2-x0)*(y1-y0)
	if denom == 0 {
		return // degenerate
	}
	invDenom := 1 / denom

	// Texture dimensions scale normalized UV into texel space.
	tw := float64(tex.Width())
	th := float64(tex.Height())

	// Perspective-correct interpolants: u/w, v/w, 1/w, and z.
	gu := planeGradient(x0, y0, x1, y1, x2, y2, invDenom,
		v0.UV.X*tw*iw0, v1.UV.X*tw*iw1, v2.UV.X*tw*iw2)
	gv := planeGradient(x0, y0, x1, y1, x2, y2, invDenom,
		v0.UV.Y*th*iw0, v1.UV.Y*th*iw1, v2.UV.Y*th*iw2)
	giw := planeGradient(x0, y0, x1, y1, x2, y2, invDenom, iw0, iw1, iw2)
	gz := planeGradient(x0, y0, x1, y1, x2, y2, invDenom, z0, z1, z2)

	minY := int(math.Floor(min3(y0, y1, y2)))
	maxY := int(math.Ceil(max3(y0, y1, y2)))
	if minY < 0 {
		minY = 0
	}
	if maxY > r.cfg.Height {
		maxY = r.cfg.Height
	}

	// Edge half-planes oriented so that interior points are non-negative.
	type edge struct{ a, b, c float64 }
	mkEdge := func(ax, ay, bx, by float64) edge {
		e := edge{a: by - ay, b: ax - bx}
		e.c = -(e.a*ax + e.b*ay)
		return e
	}
	e01 := mkEdge(x0, y0, x1, y1)
	e12 := mkEdge(x1, y1, x2, y2)
	e20 := mkEdge(x2, y2, x0, y0)
	// The edge function E(P) = a*Px + b*Py + c equals cross(P-A, B-A),
	// which is -denom when evaluated at the opposite vertex; interior
	// points are positive exactly when denom < 0, so flip otherwise.
	if denom > 0 {
		e01.a, e01.b, e01.c = -e01.a, -e01.b, -e01.c
		e12.a, e12.b, e12.c = -e12.a, -e12.b, -e12.c
		e20.a, e20.b, e20.c = -e20.a, -e20.b, -e20.c
	}
	edges := [3]edge{e01, e12, e20}

	// Per-triangle invariants hoisted out of the per-pixel path: the
	// texture, gradients, shade and config flags are loaded once here
	// instead of on every shadePixel call.
	t := triState{
		tex: tex, gu: gu, gv: gv, giw: giw, gz: gz,
		shade: shade, zfirst: r.cfg.ZBeforeTexture,
	}
	width := r.cfg.Width

	for yi := minY; yi < maxY; yi++ {
		py := float64(yi) + 0.5
		// Intersect the row with each half-plane to find the span of
		// covered pixel centres: a*x + b*py + c >= 0.
		lo, hi := 0.0, w
		skip := false
		for _, e := range edges {
			rhs := -(e.b*py + e.c)
			switch {
			case e.a > 0:
				if x := rhs / e.a; x > lo {
					lo = x
				}
			case e.a < 0:
				if x := rhs / e.a; x < hi {
					hi = x
				}
			default:
				if rhs > 0 { // row entirely outside
					skip = true
				}
			}
		}
		if skip || lo >= hi {
			continue
		}
		// Pixel centres x+0.5 in [lo, hi): left-closed keeps shared
		// edges from double-rasterizing.
		xStart := int(math.Ceil(lo - 0.5))
		xEnd := int(math.Ceil(hi - 0.5))
		if xStart < 0 {
			xStart = 0
		}
		if xEnd > width {
			xEnd = width
		}
		rowBase := yi * width
		for xi := xStart; xi < xEnd; xi++ {
			px := float64(xi) + 0.5
			r.shadePixel(&t, px, py, rowBase+xi)
		}
	}
}

// triState carries one triangle's interpolation state through the
// scanline loop, so shadePixel reads per-triangle invariants from one
// cache line instead of re-deriving them per pixel.
type triState struct {
	tex             *texture.Texture
	gu, gv, giw, gz gradient
	shade           float64
	zfirst          bool
}

// shadePixel runs the per-pixel pipeline: depth, texture sampling, write.
// idx is the framebuffer index yi*Width+xi, accumulated per row by the
// caller.
func (r *Rasterizer) shadePixel(t *triState, px, py float64, idx int) {
	z := float32(t.gz.at(px, py))
	pass := z <= r.depth[idx]

	if t.zfirst && !pass {
		return // occluded: no texel traffic, no pixel generated
	}
	r.pixels++

	iw := t.giw.at(px, py)
	if iw <= 0 {
		return // behind the eye; clipping should prevent this
	}
	wRecip := 1 / iw
	u := t.gu.at(px, py) * wRecip
	v := t.gv.at(px, py) * wRecip

	// Texture-space footprint of the pixel via exact derivatives of the
	// rational interpolant: d(f/g)/dx = (f'g - fg')/g^2.
	dudx := (t.gu.a - u*t.giw.a) * wRecip
	dvdx := (t.gv.a - v*t.giw.a) * wRecip
	dudy := (t.gu.b - u*t.giw.b) * wRecip
	dvdy := (t.gv.b - v*t.giw.b) * wRecip
	rho := maxf(math.Hypot(dudx, dvdx), math.Hypot(dudy, dvdy))
	var lambda float64
	if rho > 0 {
		lambda = math.Log2(rho)
	}

	col := r.sampleAndEmit(t.tex, u, v, lambda)

	if pass {
		r.depth[idx] = z
		if r.color != nil {
			r.color[idx] = applyShade(col, t.shade)
		}
	}
}

// sampleAndEmit performs the configured filtering: it emits every texel
// reference to the sink and returns the filtered colour (valid only when a
// framebuffer is attached; otherwise the value is unused).
func (r *Rasterizer) sampleAndEmit(tex *texture.Texture, u, v, lambda float64) texture.RGBA {
	switch r.cfg.Mode {
	case Point:
		m := tex.ClampLevel(int(math.Round(lambda)))
		return r.pointSample(tex, u, v, m)
	case Bilinear:
		m := tex.ClampLevel(int(math.Round(lambda)))
		return r.bilinearSample(tex, u, v, m)
	case Trilinear:
		if lambda <= 0 {
			// Magnification: a single bilinear fetch at the base level.
			return r.bilinearSample(tex, u, v, 0)
		}
		m0 := tex.ClampLevel(int(math.Floor(lambda)))
		m1 := tex.ClampLevel(m0 + 1)
		c0 := r.bilinearSample(tex, u, v, m0)
		if m1 == m0 {
			return c0
		}
		c1 := r.bilinearSample(tex, u, v, m1)
		frac := lambda - math.Floor(lambda)
		return lerpColor(c0, c1, frac)
	default:
		panic(fmt.Sprintf("raster: unknown sample mode %d", int(r.cfg.Mode)))
	}
}

// levelInv[m] holds the exact reciprocal 1/2^m. Multiplying by an exact
// power-of-two reciprocal is the same correctly-rounded IEEE operation as
// dividing by 2^m, so levelCoord avoids a per-texel divide without
// changing a single bit of the result.
var levelInv = computeLevelInv()

func computeLevelInv() [64]float64 {
	var t [64]float64
	t[0] = 1
	for m := 1; m < len(t); m++ {
		t[m] = t[m-1] * 0.5
	}
	return t
}

// levelCoord scales base-level texel coordinates to level m. It reads
// the levelInv table (written only at package init), so it carries no
// purity marker — the analyzer rejects package-level reads.
func levelCoord(c float64, m int) float64 {
	return c * levelInv[m]
}

func (r *Rasterizer) emit(tex *texture.Texture, u, v, m int) {
	l := tex.Levels[m]
	u = texture.WrapTexel(u, l.Width)
	v = texture.WrapTexel(v, l.Height)
	if r.tsink != nil {
		r.tsink.W.Texel(uint32(tex.ID), u, v, m)
	} else if r.sink != nil {
		r.sink.Texel(tex.ID, u, v, m)
	}
}

func (r *Rasterizer) pointSample(tex *texture.Texture, u, v float64, m int) texture.RGBA {
	ui := int(math.Floor(levelCoord(u, m)))
	vi := int(math.Floor(levelCoord(v, m)))
	r.emit(tex, ui, vi, m)
	if r.color == nil {
		return texture.RGBA{}
	}
	return tex.Sample(ui, vi, m)
}

func (r *Rasterizer) bilinearSample(tex *texture.Texture, u, v float64, m int) texture.RGBA {
	lu := levelCoord(u, m) - 0.5
	lv := levelCoord(v, m) - 0.5
	u0 := int(math.Floor(lu))
	v0 := int(math.Floor(lv))
	fu := lu - float64(u0)
	fv := lv - float64(v0)
	r.emit(tex, u0, v0, m)
	r.emit(tex, u0+1, v0, m)
	r.emit(tex, u0, v0+1, m)
	r.emit(tex, u0+1, v0+1, m)
	if r.color == nil {
		return texture.RGBA{}
	}
	c00 := tex.Sample(u0, v0, m)
	c10 := tex.Sample(u0+1, v0, m)
	c01 := tex.Sample(u0, v0+1, m)
	c11 := tex.Sample(u0+1, v0+1, m)
	top := lerpColor(c00, c10, fu)
	bot := lerpColor(c01, c11, fu)
	return lerpColor(top, bot, fv)
}

// lerpColor blends two colours channel-wise by t.
//
// texsim:pure
func lerpColor(a, b texture.RGBA, t float64) texture.RGBA {
	mix := func(x, y uint8) uint8 {
		return uint8(float64(x) + (float64(y)-float64(x))*t)
	}
	return texture.RGBA{
		R: mix(a.R, b.R), G: mix(a.G, b.G), B: mix(a.B, b.B), A: mix(a.A, b.A),
	}
}

// applyShade scales the colour channels by the clamped shade factor.
//
// texsim:pure
func applyShade(c texture.RGBA, s float64) texture.RGBA {
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return texture.RGBA{
		R: uint8(float64(c.R) * s),
		G: uint8(float64(c.G) * s),
		B: uint8(float64(c.B) * s),
		A: c.A,
	}
}

// The min/max helpers use inlinable branches instead of math.Min/Max.
// For the non-NaN screen coordinates and footprint lengths they see, the
// results are identical; the branches inline where the math calls do not
// (they carry NaN and signed-zero handling the rasterizer never needs).

// texsim:pure
func min3(a, b, c float64) float64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

// texsim:pure
func max3(a, b, c float64) float64 {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	return m
}

// texsim:pure
func maxf(a, b float64) float64 {
	if b > a {
		return b
	}
	return a
}
