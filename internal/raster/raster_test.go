package raster

import (
	"math"
	"testing"

	"texcache/internal/texture"
	"texcache/internal/vecmath"
)

// collectSink records emitted texel references.
type collectSink struct {
	refs []ref
}

type ref struct {
	tid     texture.ID
	u, v, m int
}

func (s *collectSink) Texel(tid texture.ID, u, v, m int) {
	s.refs = append(s.refs, ref{tid, u, v, m})
}

func tex(t *testing.T, w, h int) *texture.Texture {
	t.Helper()
	return texture.MustNew("t", w, h, texture.RGBA8888,
		texture.Checker{A: texture.RGBA{R: 255, A: 255}, B: texture.RGBA{G: 255, A: 255}, N: 4})
}

// fullScreenQuad returns two triangles covering the whole viewport at
// depth w=dist with UVs spanning [0,1].
func fullScreenQuad(dist float64) [2][3]Vertex {
	// Clip coords at x,y in {-w, w} project to the viewport corners.
	// Z chosen so that z/w = (dist-1)/dist: farther quads have larger
	// normalized depth, as a projection matrix would produce.
	mk := func(x, y, u, v float64) Vertex {
		return Vertex{
			Pos: vecmath.Vec4{X: x * dist, Y: y * dist, Z: dist - 1, W: dist},
			UV:  vecmath.Vec2{X: u, Y: v},
		}
	}
	bl := mk(-1, -1, 0, 1)
	br := mk(1, -1, 1, 1)
	tl := mk(-1, 1, 0, 0)
	tr := mk(1, 1, 1, 0)
	return [2][3]Vertex{{tl, bl, br}, {tl, br, tr}}
}

func TestFullScreenQuadCoversEveryPixelOnce(t *testing.T) {
	r := MustNew(Config{Width: 64, Height: 32, Mode: Point})
	var sink collectSink
	r.SetSink(&sink)
	tx := tex(t, 64, 32)
	r.BeginFrame()
	for _, tri := range fullScreenQuad(1) {
		r.DrawTriangle(tx, tri[0], tri[1], tri[2], 1)
	}
	if got := r.Pixels(); got != 64*32 {
		t.Fatalf("pixels = %d, want %d (no gaps, no double-raster on shared edge)",
			got, 64*32)
	}
	if len(sink.refs) != 64*32 {
		t.Fatalf("texel refs = %d, want %d (point sampling: 1/pixel)",
			len(sink.refs), 64*32)
	}
}

func TestPointSamplingMapsUVLinearly(t *testing.T) {
	// A screen-aligned quad with matching texture size gives an identity
	// pixel->texel mapping at level 0.
	r := MustNew(Config{Width: 32, Height: 32, Mode: Point})
	seen := map[[2]int]bool{}
	r.SetSink(SinkFunc(func(tid texture.ID, u, v, m int) {
		if m != 0 {
			t.Fatalf("level = %d, want 0 for 1:1 mapping", m)
		}
		seen[[2]int{u, v}] = true
	}))
	tx := tex(t, 32, 32)
	r.BeginFrame()
	for _, tri := range fullScreenQuad(1) {
		r.DrawTriangle(tx, tri[0], tri[1], tri[2], 1)
	}
	if len(seen) != 32*32 {
		t.Fatalf("distinct texels = %d, want 1024", len(seen))
	}
}

func TestMipLevelSelectionByDistance(t *testing.T) {
	// Doubling the texture relative to the screen doubles texels per
	// pixel: rho = 2 selects level 1 for a 64-texel texture on a
	// 32-pixel screen.
	r := MustNew(Config{Width: 32, Height: 32, Mode: Point})
	levels := map[int]int{}
	r.SetSink(SinkFunc(func(tid texture.ID, u, v, m int) { levels[m]++ }))
	tx := tex(t, 64, 64)
	r.BeginFrame()
	for _, tri := range fullScreenQuad(1) {
		r.DrawTriangle(tx, tri[0], tri[1], tri[2], 1)
	}
	if len(levels) != 1 || levels[1] == 0 {
		t.Fatalf("levels used = %v, want only level 1", levels)
	}
}

func TestBilinearEmitsFourTexels(t *testing.T) {
	r := MustNew(Config{Width: 16, Height: 16, Mode: Bilinear})
	var sink collectSink
	r.SetSink(&sink)
	tx := tex(t, 16, 16)
	r.BeginFrame()
	for _, tri := range fullScreenQuad(1) {
		r.DrawTriangle(tx, tri[0], tri[1], tri[2], 1)
	}
	if want := int(r.Pixels()) * 4; len(sink.refs) != want {
		t.Fatalf("refs = %d, want %d", len(sink.refs), want)
	}
}

func TestTrilinearEmitsEightTexelsWhenBetweenLevels(t *testing.T) {
	// A 48-texel-per-32-pixel mapping gives rho = 1.5: lambda between
	// levels 0 and 1 — but 48 is not a power of two, so use a 64 texture
	// with UV scaled to 0.75 giving the same footprint.
	r := MustNew(Config{Width: 32, Height: 32, Mode: Trilinear})
	var sink collectSink
	r.SetSink(&sink)
	tx := tex(t, 64, 64)
	quad := fullScreenQuad(1)
	for i := range quad {
		for j := range quad[i] {
			quad[i][j].UV = quad[i][j].UV.Scale(0.75)
		}
	}
	r.BeginFrame()
	for _, tri := range quad {
		r.DrawTriangle(tx, tri[0], tri[1], tri[2], 1)
	}
	if want := int(r.Pixels()) * 8; len(sink.refs) != want {
		t.Fatalf("refs = %d, want %d (4 texels x 2 levels)", len(sink.refs), want)
	}
	levels := map[int]bool{}
	for _, rf := range sink.refs {
		levels[rf.m] = true
	}
	if !levels[0] || !levels[1] {
		t.Errorf("levels = %v, want 0 and 1", levels)
	}
}

func TestTrilinearMagnificationEmitsFour(t *testing.T) {
	// Magnified texture (texture smaller than screen area): lambda < 0
	// clamps both levels to 0 and only one bilinear fetch is needed.
	r := MustNew(Config{Width: 32, Height: 32, Mode: Trilinear})
	var sink collectSink
	r.SetSink(&sink)
	tx := tex(t, 8, 8)
	r.BeginFrame()
	for _, tri := range fullScreenQuad(1) {
		r.DrawTriangle(tx, tri[0], tri[1], tri[2], 1)
	}
	if want := int(r.Pixels()) * 4; len(sink.refs) != want {
		t.Fatalf("refs = %d, want %d", len(sink.refs), want)
	}
}

func TestDepthComplexityCountsOverdraw(t *testing.T) {
	r := MustNew(Config{Width: 16, Height: 16, Mode: Point})
	tx := tex(t, 16, 16)
	r.BeginFrame()
	for i := 0; i < 3; i++ {
		for _, tri := range fullScreenQuad(1) {
			r.DrawTriangle(tx, tri[0], tri[1], tri[2], 1)
		}
	}
	if got := r.Pixels(); got != 3*16*16 {
		t.Fatalf("pixels = %d, want %d (overdraw counts)", got, 3*16*16)
	}
}

func TestZBeforeTextureSkipsOccluded(t *testing.T) {
	r := MustNew(Config{Width: 16, Height: 16, Mode: Point, ZBeforeTexture: true})
	var sink collectSink
	r.SetSink(&sink)
	tx := tex(t, 16, 16)
	r.BeginFrame()
	// Near quad first...
	for _, tri := range fullScreenQuad(1) {
		r.DrawTriangle(tx, tri[0], tri[1], tri[2], 1)
	}
	// ...then a far quad, fully occluded.
	far := fullScreenQuad(10)
	for _, tri := range far {
		r.DrawTriangle(tx, tri[0], tri[1], tri[2], 1)
	}
	if got := r.Pixels(); got != 16*16 {
		t.Fatalf("pixels = %d, want %d (occluded pixels skipped)", got, 16*16)
	}
	if len(sink.refs) != 16*16 {
		t.Fatalf("refs = %d, want %d", len(sink.refs), 16*16)
	}
}

func TestZBufferResolvesOrderIndependently(t *testing.T) {
	// Far drawn first, then near: colour must come from the near quad.
	r := MustNew(Config{Width: 8, Height: 8, Mode: Point, Framebuffer: true})
	red := texture.MustNew("red", 8, 8, texture.RGBA8888,
		texture.Solid{C: texture.RGBA{R: 255, A: 255}})
	blue := texture.MustNew("blue", 8, 8, texture.RGBA8888,
		texture.Solid{C: texture.RGBA{B: 255, A: 255}})
	r.BeginFrame()
	for _, tri := range fullScreenQuad(10) {
		r.DrawTriangle(red, tri[0], tri[1], tri[2], 1)
	}
	for _, tri := range fullScreenQuad(1) {
		r.DrawTriangle(blue, tri[0], tri[1], tri[2], 1)
	}
	c := r.Color()[3*8+3]
	if c.B != 255 || c.R != 0 {
		t.Fatalf("centre pixel = %+v, want blue (near quad wins)", c)
	}

	// And the reverse order must give the same image.
	r2 := MustNew(Config{Width: 8, Height: 8, Mode: Point, Framebuffer: true})
	r2.BeginFrame()
	for _, tri := range fullScreenQuad(1) {
		r2.DrawTriangle(blue, tri[0], tri[1], tri[2], 1)
	}
	for _, tri := range fullScreenQuad(10) {
		r2.DrawTriangle(red, tri[0], tri[1], tri[2], 1)
	}
	c2 := r2.Color()[3*8+3]
	if c2 != c {
		t.Fatalf("order dependence: %+v vs %+v", c, c2)
	}
}

func TestPerspectiveCorrection(t *testing.T) {
	// A quad receding in depth: with perspective-correct interpolation
	// the texture-space midpoint is NOT at the screen-space midpoint
	// (it shifts toward the near edge). Verify the u at the horizontal
	// screen centre exceeds what affine interpolation would give.
	r := MustNew(Config{Width: 64, Height: 64, Mode: Point})
	tx := tex(t, 64, 64)

	// Left edge at w=1, right edge at w=4 (receding to the right).
	mk := func(x, y, w, u, v float64) Vertex {
		return Vertex{Pos: vecmath.Vec4{X: x * w, Y: y * w, Z: 0, W: w},
			UV: vecmath.Vec2{X: u, Y: v}}
	}
	bl := mk(-1, -1, 1, 0, 1)
	tl := mk(-1, 1, 1, 0, 0)
	br := mk(1, -1, 4, 1, 1)
	tr := mk(1, 1, 4, 1, 0)

	// At screen fraction s = 0.5 the perspective-correct u is
	//   lerp(u0/w0, u1/w1, s) / lerp(1/w0, 1/w1, s)
	//   = (0.5 * 1/4) / (0.5 * (1 + 1/4)) = 0.2 of the texture
	// i.e. ~12.8 texels at level 0 (affine interpolation would give 32).
	found := false
	r.SetSink(SinkFunc(func(tid texture.ID, u, v, m int) {
		baseU := u << uint(m) // scale back to base-level texels
		if baseU >= 10 && baseU <= 16 {
			found = true
		}
	}))
	r.BeginFrame()
	r.DrawTriangle(tx, tl, bl, br, 1)
	r.DrawTriangle(tx, tl, br, tr, 1)
	if !found {
		t.Error("no sample near the perspective-correct centre u (~12.8 texels)")
	}
}

func TestDegenerateTriangleIgnored(t *testing.T) {
	r := MustNew(Config{Width: 16, Height: 16, Mode: Point})
	tx := tex(t, 16, 16)
	v := Vertex{Pos: vecmath.Vec4{X: 0, Y: 0, Z: 0, W: 1}}
	r.BeginFrame()
	r.DrawTriangle(tx, v, v, v, 1)
	if r.Pixels() != 0 {
		t.Error("degenerate triangle rasterized pixels")
	}
}

func TestOffscreenTriangleClippedToViewport(t *testing.T) {
	r := MustNew(Config{Width: 16, Height: 16, Mode: Point})
	tx := tex(t, 16, 16)
	// Triangle entirely to the left of the viewport.
	mk := func(x, y float64) Vertex {
		return Vertex{Pos: vecmath.Vec4{X: x, Y: y, Z: 0, W: 1}}
	}
	r.BeginFrame()
	r.DrawTriangle(tx, mk(-5, 0), mk(-3, 1), mk(-3, -1), 1)
	if r.Pixels() != 0 {
		t.Error("offscreen triangle rasterized pixels")
	}
	// Triangle partially overlapping must not write out of bounds
	// (would panic) and must rasterize something.
	r.DrawTriangle(tx, mk(-1, -2), mk(3, 2), mk(-1, 2), 1)
	if r.Pixels() == 0 {
		t.Error("partially visible triangle rasterized nothing")
	}
}

func TestWindingOrderIrrelevant(t *testing.T) {
	// Both windings must rasterize the same pixels (no back-face culling
	// at this stage; the scene pipeline handles culling).
	r1 := MustNew(Config{Width: 16, Height: 16, Mode: Point})
	r2 := MustNew(Config{Width: 16, Height: 16, Mode: Point})
	tx := tex(t, 16, 16)
	mk := func(x, y float64) Vertex {
		return Vertex{Pos: vecmath.Vec4{X: x, Y: y, Z: 0, W: 1},
			UV: vecmath.Vec2{X: (x + 1) / 2, Y: (y + 1) / 2}}
	}
	a, b, c := mk(-0.8, -0.8), mk(0.8, -0.8), mk(0, 0.8)
	r1.BeginFrame()
	r1.DrawTriangle(tx, a, b, c, 1)
	r2.BeginFrame()
	r2.DrawTriangle(tx, c, b, a, 1)
	if r1.Pixels() == 0 || r1.Pixels() != r2.Pixels() {
		t.Errorf("winding changed coverage: %d vs %d", r1.Pixels(), r2.Pixels())
	}
}

func TestSampleModeString(t *testing.T) {
	if Point.String() != "point" || Bilinear.String() != "bilinear" ||
		Trilinear.String() != "trilinear" {
		t.Error("unexpected mode strings")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Width: 0, Height: 10}); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := New(Config{Width: 10, Height: -1}); err == nil {
		t.Error("negative height accepted")
	}
}

func TestShadeDarkensColour(t *testing.T) {
	r := MustNew(Config{Width: 4, Height: 4, Mode: Point, Framebuffer: true})
	white := texture.MustNew("w", 4, 4, texture.RGBA8888,
		texture.Solid{C: texture.RGBA{R: 200, G: 200, B: 200, A: 255}})
	r.BeginFrame()
	for _, tri := range fullScreenQuad(1) {
		r.DrawTriangle(white, tri[0], tri[1], tri[2], 0.5)
	}
	c := r.Color()[2*4+2]
	if c.R != 100 || c.G != 100 || c.B != 100 {
		t.Errorf("shaded colour = %+v, want 100s", c)
	}
}

func TestLerpColor(t *testing.T) {
	a := texture.RGBA{R: 0, G: 100, B: 200, A: 255}
	b := texture.RGBA{R: 100, G: 200, B: 0, A: 255}
	mid := lerpColor(a, b, 0.5)
	if mid.R != 50 || mid.G != 150 || mid.B != 100 {
		t.Errorf("lerp = %+v", mid)
	}
	if lerpColor(a, b, 0) != a {
		t.Error("t=0 not identity")
	}
}

func TestFootprintIsotropy(t *testing.T) {
	// rho must be rotation-agnostic enough that a 2x-minified quad
	// selects level 1 regardless of 90-degree UV rotation.
	r := MustNew(Config{Width: 32, Height: 32, Mode: Point})
	levels := map[int]int{}
	r.SetSink(SinkFunc(func(tid texture.ID, u, v, m int) { levels[m]++ }))
	tx := tex(t, 64, 64)
	quad := fullScreenQuad(1)
	// Rotate UVs 90 degrees: (u,v) -> (v, 1-u).
	for i := range quad {
		for j := range quad[i] {
			uv := quad[i][j].UV
			quad[i][j].UV = vecmath.Vec2{X: uv.Y, Y: 1 - uv.X}
		}
	}
	r.BeginFrame()
	for _, tri := range quad {
		r.DrawTriangle(tx, tri[0], tri[1], tri[2], 1)
	}
	if len(levels) != 1 || levels[1] == 0 {
		t.Errorf("levels = %v, want only level 1", levels)
	}
}

func TestEmittedCoordinatesInRange(t *testing.T) {
	r := MustNew(Config{Width: 32, Height: 32, Mode: Trilinear})
	tx := tex(t, 32, 32)
	r.SetSink(SinkFunc(func(tid texture.ID, u, v, m int) {
		l := tx.Levels[m]
		if u < 0 || u >= l.Width || v < 0 || v >= l.Height {
			t.Fatalf("texel (%d,%d) out of range for level %d (%dx%d)",
				u, v, m, l.Width, l.Height)
		}
	}))
	// UVs far outside [0,1] exercise wrapping.
	quad := fullScreenQuad(1)
	for i := range quad {
		for j := range quad[i] {
			quad[i][j].UV = quad[i][j].UV.Scale(7).Add(vecmath.Vec2{X: -3, Y: 11})
		}
	}
	r.BeginFrame()
	for _, tri := range quad {
		r.DrawTriangle(tx, tri[0], tri[1], tri[2], 1)
	}
	if r.Pixels() == 0 {
		t.Fatal("nothing rasterized")
	}
}

func TestGradientMath(t *testing.T) {
	// planeGradient through three points must reproduce the values.
	// Plane through the three samples is f = 5 + x + 2y.
	g := planeGradient(0, 0, 10, 0, 0, 10, 1/(10.0*10.0), 5, 15, 25)
	for _, c := range []struct{ x, y, want float64 }{
		{0, 0, 5}, {10, 0, 15}, {0, 10, 25}, {5, 5, 20},
	} {
		if got := g.at(c.x, c.y); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("g(%v,%v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}
