package raster

import (
	"math/rand"
	"testing"

	"texcache/internal/texture"
	"texcache/internal/vecmath"
)

// TestSharedEdgeWatertight splits random convex quads into two triangles
// along the diagonal and checks that no pixel is rasterized twice and the
// union equals the quad rendered as two fans from the other diagonal
// within a tolerance. Watertightness matters because double-rasterized
// edges would inflate depth complexity and texel counts.
func TestSharedEdgeWatertight(t *testing.T) {
	const w, h = 64, 64
	rng := rand.New(rand.NewSource(99))
	tex := texture.MustNew("t", 64, 64, texture.RGBA8888, nil)

	for trial := 0; trial < 50; trial++ {
		// A random convex quad in clip space, built from a rectangle
		// with jittered corners (jitter kept small enough to preserve
		// convexity).
		cx := rng.Float64()*1.2 - 0.6
		cy := rng.Float64()*1.2 - 0.6
		rx := 0.2 + rng.Float64()*0.5
		ry := 0.2 + rng.Float64()*0.5
		j := func() float64 { return (rng.Float64() - 0.5) * 0.1 }
		mk := func(x, y float64) Vertex {
			return Vertex{Pos: vecmath.Vec4{X: x, Y: y, Z: 0, W: 1}}
		}
		a := mk(cx-rx+j(), cy-ry+j())
		b := mk(cx+rx+j(), cy-ry+j())
		c := mk(cx+rx+j(), cy+ry+j())
		d := mk(cx-rx+j(), cy+ry+j())

		r := MustNew(Config{Width: w, Height: h, Mode: Point})

		r.BeginFrame()
		r.DrawTriangle(tex, a, b, c, 1)
		r.DrawTriangle(tex, a, c, d, 1)
		diag1 := r.Pixels()

		r.BeginFrame()
		r.DrawTriangle(tex, b, c, d, 1)
		r.DrawTriangle(tex, b, d, a, 1)
		diag2 := r.Pixels()

		// The same quad split along the other diagonal must cover the
		// same pixel count (shared-edge pixels counted exactly once in
		// both splits). Allow a 2-pixel slack for the pixels through
		// which the two different diagonals pass.
		delta := diag1 - diag2
		if delta < 0 {
			delta = -delta
		}
		if delta > 2 {
			t.Fatalf("trial %d: diagonal splits cover %d vs %d pixels",
				trial, diag1, diag2)
		}
	}
}

// TestAbuttingTrianglesNoSeam renders a quad as two triangles and as a
// single covering pass, verifying identical total coverage (no seam gaps
// along the shared edge).
func TestAbuttingTrianglesNoSeam(t *testing.T) {
	const w, h = 48, 48
	tex := texture.MustNew("t", 64, 64, texture.RGBA8888, nil)
	mk := func(x, y float64) Vertex {
		return Vertex{Pos: vecmath.Vec4{X: x, Y: y, Z: 0, W: 1}}
	}
	// Full-viewport quad: the two splits must cover exactly w*h.
	a, b, c, d := mk(-1, -1), mk(1, -1), mk(1, 1), mk(-1, 1)
	r := MustNew(Config{Width: w, Height: h, Mode: Point})
	r.BeginFrame()
	r.DrawTriangle(tex, a, b, c, 1)
	r.DrawTriangle(tex, a, c, d, 1)
	if got := r.Pixels(); got != w*h {
		t.Errorf("coverage = %d, want %d (gap or overlap at shared edge)", got, w*h)
	}
}
