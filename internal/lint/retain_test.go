package lint

import "testing"

// TestRetainPinnedStores covers sub-slices stored into each sink kind,
// and the copying idioms that must stay quiet.
func TestRetainPinnedStores(t *testing.T) {
	testAnalyzer(t, Retain, "retainfix", `package retainfix

type holder struct {
	window []byte
	list   [][]byte
}

var global []byte

func pins(h *holder, buf []byte, out [][]byte, ch chan []byte) {
	h.window = buf[4:8] //want storing a sub-slice of buf into a struct field pins the whole backing array
	out[0] = buf[:16]   //want an indexed slot
	ch <- buf[8:]       //want a channel
	global = buf[2:4]   //want a package-level variable
	h.list = append(h.list, buf[0:4]) //want an element of a struct field
}

func quiet(h *holder, buf []byte, dst []byte) []byte {
	// The scratch reset re-slices in place.
	buf = buf[:0]
	// A local view dies with the call.
	view := buf[1:3]
	_ = view
	// Spreading copies the elements, no header is retained.
	dst = append(dst, buf[4:8]...)
	// copy moves bytes into storage the caller owns.
	copy(dst, buf[4:8])
	// Returning a sub-slice is the callee's contract with its caller,
	// not a silent pin into shared state.
	return buf[2:6]
}
`)
}
