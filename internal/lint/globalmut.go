package lint

import (
	"go/ast"
	"go/types"
)

// Globalmut is the texvet global-state analyzer. Run-to-run determinism
// requires that package-level state is immutable after initialization:
// a global written mid-run makes the second simulation in a process see
// different inputs than the first, which is exactly the class of bug that
// silently skews an A/B cache comparison while both runs "pass".
//
// Two rules:
//
//  1. Any write to package-level state outside a func init, the var's own
//     initializer, or a sync.Once.Do body is reported — whether the write
//     targets the variable itself or reaches it through an element, field
//     or dereference.
//  2. An exported package-level var of slice, map, array or struct type
//     is reported even when the declaring package never writes it:
//     importers can mutate it in place, so the paper's tables would
//     depend on client call order. The fix is a const, an accessor
//     returning a copy, or unexporting.
var Globalmut = &Analyzer{
	Name: "globalmut",
	Doc:  "forbid writes to package-level state outside init and exported mutable globals",
	Run:  runGlobalmut,
}

func runGlobalmut(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				checkGlobalDecl(pass, d)
			case *ast.FuncDecl:
				if d.Body == nil || isInitFunc(d) {
					continue
				}
				checkGlobalWrites(pass, info, d.Body)
			}
		}
	}
}

// isInitFunc reports whether the declaration is a package init function.
func isInitFunc(d *ast.FuncDecl) bool {
	return d.Recv == nil && d.Name.Name == "init"
}

// checkGlobalDecl applies rule 2 to a package-level var declaration.
func checkGlobalDecl(pass *Pass, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, id := range vs.Names {
			v, ok := pass.Pkg.Info.Defs[id].(*types.Var)
			if !ok || !isPackageLevel(v) || !v.Exported() {
				continue
			}
			switch v.Type().Underlying().(type) {
			case *types.Slice, *types.Map, *types.Struct, *types.Array:
				pass.Reportf(id.Pos(),
					"exported package-level var %s is mutable shared state; use a const, an accessor returning a copy, or unexport it", v.Name())
			}
		}
	}
}

// checkGlobalWrites applies rule 1 inside one function body.
func checkGlobalWrites(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	// onceBodies collects function literals passed to sync.Once.Do; a
	// write inside one is the guarded lazy-init idiom and is exempt.
	onceBodies := make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Do" {
			return true
		}
		if recv := info.TypeOf(sel.X); !isSyncType(recv) {
			return true
		}
		if lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
			onceBodies[lit] = true
		}
		return true
	})

	inOnce := func(n ast.Node) bool {
		for lit := range onceBodies {
			if contains(lit, n) {
				return true
			}
		}
		return false
	}
	report := func(n ast.Node, target ast.Expr) {
		v := rootVar(info, target)
		if v == nil || !isPackageLevel(v) || inOnce(n) {
			return
		}
		pass.Reportf(n.Pos(),
			"write to package-level %s outside init; package state must be immutable after initialization", v.Name())
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				report(n, lhs)
			}
		case *ast.IncDecStmt:
			report(n, n.X)
		}
		return true
	})
}
