package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// Counterwidth requires byte/texel accumulators to be 64-bit. At the
// paper's full scale a single run touches 1024x768 pixels over 411 frames
// with up to eight texel reads per pixel — ~2.6e9 references, past the
// int32 limit before byte multipliers are even applied, and `int` is only
// 64-bit by accident of platform. Counters identified by name (Bytes,
// Texels, Accesses, Misses, ...) must therefore accumulate in int64 or
// uint64.
var Counterwidth = &Analyzer{
	Name: "counterwidth",
	Doc:  "byte/texel counters must accumulate in 64-bit integers",
	Run:  runCounterwidth,
}

// counterName matches identifiers that accumulate reference or byte
// counts at trace scale.
var counterName = regexp.MustCompile(
	`(?i)(bytes|texels?|pixels?|refs|accesses|misses|hits|lookups|evictions|steps)$`)

func runCounterwidth(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
					checkCounter(pass, n.Lhs[0])
				}
			case *ast.IncDecStmt:
				if n.Tok == token.INC {
					checkCounter(pass, n.X)
				}
			}
			return true
		})
	}
}

func checkCounter(pass *Pass, lhs ast.Expr) {
	name := lhsName(lhs)
	if name == "" || !counterName.MatchString(name) {
		return
	}
	t := pass.TypeOf(lhs)
	if t == nil {
		return
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return
	}
	switch b.Kind() {
	case types.Int, types.Int8, types.Int16, types.Int32,
		types.Uint, types.Uint8, types.Uint16, types.Uint32:
		pass.Reportf(lhs.Pos(),
			"counter %s accumulates in %s; use int64 — it overflows at full trace scale (1024x768 x 411 frames)",
			name, t)
	}
}

// lhsName returns the final identifier of the assignment target.
func lhsName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return lhsName(e.X)
	}
	return ""
}
