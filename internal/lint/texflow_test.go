package lint

import (
	"go/types"
	"testing"
)

// flowFixture type-checks one in-memory file and returns its package and
// computed facts.
func flowFixture(t *testing.T, src string) (*Package, *FlowFacts) {
	t.Helper()
	pkg, err := CheckSource("flowfix", map[string]string{"flowfix.go": src})
	if err != nil {
		t.Fatalf("fixture does not type-check: %v", err)
	}
	return pkg, CollectFacts([]*Package{pkg}).Flow
}

func lookupFunc(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	obj := pkg.Types.Scope().Lookup(name)
	fn, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("function %s not found (got %v)", name, obj)
	}
	return fn
}

func TestFlowFactsChanSummaries(t *testing.T) {
	pkg, flow := flowFixture(t, `package flowfix

func producer(ch chan int)  { ch <- 1 }
func consumer(ch chan int)  { <-ch }
func finisher(ch chan int)  { close(ch) }
func drainAll(ch chan int)  { for range ch {} }
func forwarder(ch chan int) { producer(ch) }
func chain(ch chan int)     { forwarder(ch) }

// Ops inside a select are excluded from summaries.
func selective(ch chan int, stop chan struct{}) {
	select {
	case ch <- 1:
	case <-stop:
	}
}
`)
	cases := []struct {
		fn   string
		want ChanOps
	}{
		{"producer", ChanOps{Sends: true}},
		{"consumer", ChanOps{Recvs: true}},
		{"finisher", ChanOps{Closes: true}},
		{"drainAll", ChanOps{Recvs: true}},
		{"forwarder", ChanOps{Sends: true}}, // direct callee
		{"chain", ChanOps{Sends: true}},     // two hops, needs the fixpoint
		{"selective", ChanOps{}},
	}
	for _, c := range cases {
		fn := lookupFunc(t, pkg, c.fn)
		got := ChanOps{}
		if ops := flow.ChanParams[fn][0]; ops != nil {
			got = *ops
		}
		if got != c.want {
			t.Errorf("%s: chan param ops = %+v, want %+v", c.fn, got, c.want)
		}
	}
}

func TestFlowFactsWGSummaries(t *testing.T) {
	pkg, flow := flowFixture(t, `package flowfix

import "sync"

func worker(wg *sync.WaitGroup) { defer wg.Done() }
func spawner(wg *sync.WaitGroup) {
	wg.Add(1)
	wg.Wait()
}
func viaHelper(wg *sync.WaitGroup) { worker(wg) }
`)
	cases := []struct {
		fn   string
		want WGOps
	}{
		{"worker", WGOps{Dones: true}},
		{"spawner", WGOps{Adds: true, Waits: true}},
		{"viaHelper", WGOps{Dones: true}},
	}
	for _, c := range cases {
		fn := lookupFunc(t, pkg, c.fn)
		got := WGOps{}
		if ops := flow.WGParams[fn][0]; ops != nil {
			got = *ops
		}
		if got != c.want {
			t.Errorf("%s: wg param ops = %+v, want %+v", c.fn, got, c.want)
		}
	}
}

func TestFlowFactsMapOrderAndSinks(t *testing.T) {
	pkg, flow := flowFixture(t, `package flowfix

import (
	"fmt"
	"sort"
)

func keysOf(m map[string]int) []string {
	out := []string{}
	for k := range m {
		out = append(out, k)
	}
	return out
}

func sortedKeysOf(m map[string]int) []string {
	out := keysOf(m)
	sort.Strings(out)
	return out
}

// Only the first result carries map order; the error stays clean.
func keysAndErr(m map[string]int) ([]string, error) {
	return keysOf(m), nil
}

func emitAll(vs []string) {
	for _, v := range vs {
		fmt.Println(v)
	}
}

func passesThrough(vs []string) { emitAll(vs) }
`)
	if got := flow.MapOrdered[lookupFunc(t, pkg, "keysOf")]; !got[0] {
		t.Errorf("keysOf result 0 not marked map-ordered: %v", got)
	}
	if got := flow.MapOrdered[lookupFunc(t, pkg, "sortedKeysOf")]; got[0] {
		t.Errorf("sortedKeysOf marked map-ordered despite the sort: %v", got)
	}
	got := flow.MapOrdered[lookupFunc(t, pkg, "keysAndErr")]
	if !got[0] || got[1] {
		t.Errorf("keysAndErr map-ordered results = %v, want only index 0", got)
	}
	if !flow.ParamSinks[lookupFunc(t, pkg, "emitAll")][0] {
		t.Errorf("emitAll param 0 not marked as sink-bound")
	}
	if !flow.ParamSinks[lookupFunc(t, pkg, "passesThrough")][0] {
		t.Errorf("passesThrough param 0 not marked as sink-bound (needs fixpoint)")
	}
}

func TestFlowFactsAnnotations(t *testing.T) {
	pkg, flow := flowFixture(t, `package flowfix

type rt struct {
	shards [][]byte
	ready  []chan struct{}
}

//texsim:publishes shards ready
func (r *rt) publish(f int) {
	r.shards[f] = nil
	close(r.ready[f])
}

//texsim:closes ownership transferred
func closeIt(ch chan int) { close(ch) }
`)
	scope := pkg.Types.Scope()
	rtObj, _ := scope.Lookup("rt").(*types.TypeName)
	if rtObj == nil {
		t.Fatal("type rt not found")
	}
	var publish *types.Func
	for fn := range flow.Publishes {
		if fn.Name() == "publish" {
			publish = fn
		}
	}
	if publish == nil {
		t.Fatal("publish annotation not recorded")
	}
	if f := flow.Publishes[publish]; len(f) != 2 || f[0] != "shards" || f[1] != "ready" {
		t.Errorf("publish annotation fields = %v, want [shards ready]", f)
	}
	if !flow.Closers[lookupFunc(t, pkg, "closeIt")] {
		t.Error("closeIt not recorded as sanctioned closer")
	}
}
