package lint

// mapiter is the interprocedural complement to the determinism analyzer's
// map-range check. determinism flags output emitted directly inside a
// range-over-map body; mapiter tracks the taint — "this value depends on
// Go's randomized map iteration order" — through assignments, helper
// calls, and function boundaries (via the texflow MapOrdered and
// ParamSinks summaries), and reports when it reaches an emitting sink
// without an intervening sort: fmt output, writer/encoder methods, module
// emit methods (Emit/Frame/Texel), stores into Results/Frames/Records/
// Shards slots, or a call whose summarized parameter feeds such a sink.
//
// The repo's contract is byte-identical output at any parallelism, so any
// map-order dependence in an emitted value is a determinism bug even when
// each individual run "looks fine". Sorting launders the taint: the
// collect-then-sort idiom (append inside the range, sort.Strings after)
// passes, as do slices.Sorted(maps.Keys(m)) pipelines. See taint.go for
// the propagation rules and their limits.

import (
	"go/ast"
)

// Mapiter reports map-iteration-order-dependent values reaching emitted
// output without a sort.
var Mapiter = &Analyzer{
	Name: "mapiter",
	Doc:  "map iteration order flows into emitted output without an intervening sort",
	Run:  runMapiter,
}

func runMapiter(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			var flow *FlowFacts
			if pass.Facts != nil {
				flow = pass.Facts.Flow
			}
			tt := newTaintTracker(pass.Pkg.Info, flow)
			tt.onSink = func(n ast.Node, t *taint, desc string) {
				if t.mapOrder {
					pass.Reportf(n.Pos(), "value derived from map iteration order reaches %s without an intervening sort (nondeterministic output)", desc)
				}
			}
			tt.walk(fn.Body)
		}
	}
}
