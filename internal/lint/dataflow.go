package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file implements the texvet dataflow layer on top of the CFG:
// a classic gen/kill reaching-definitions solver plus the "alias-lite"
// helpers the concurrency and purity analyzers share. Alias-lite tracks
// only one level of indirection — a local initialized from &V, &V.f,
// &V[i], or from a reference-typed read of V, may alias V — which is
// enough to see through the `p := &shared[i]; p.f = x` idiom without a
// full points-to analysis.

// defSite is one definition of a variable: the statement node performing
// it and the defining expression (nil when unknown, e.g. *p = x).
type defSite struct {
	v    *types.Var
	node ast.Node
	rhs  ast.Expr
}

// DefFlow holds the reaching-definitions solution for one function body.
type DefFlow struct {
	cfg  *CFG
	info *types.Info
	defs []defSite
	// in[b] is the set of def indices reaching the entry of block b.
	in map[*Block]map[int]bool
}

// ReachingDefs solves reaching definitions over the CFG by worklist
// iteration. info resolves identifiers to their objects.
func ReachingDefs(cfg *CFG, info *types.Info) *DefFlow {
	df := &DefFlow{cfg: cfg, info: info, in: make(map[*Block]map[int]bool)}

	// Collect definition sites per block, in execution order.
	blockDefs := make(map[*Block][]int)
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			for _, d := range df.defsIn(n) {
				blockDefs[b] = append(blockDefs[b], len(df.defs))
				df.defs = append(df.defs, d)
			}
		}
	}

	// gen/kill per block: later defs of a variable kill earlier ones.
	gen := make(map[*Block]map[int]bool)
	kill := make(map[*Block]map[*types.Var]bool)
	for _, b := range cfg.Blocks {
		g := make(map[int]bool)
		k := make(map[*types.Var]bool)
		for _, id := range blockDefs[b] {
			v := df.defs[id].v
			for prev := range g {
				if df.defs[prev].v == v {
					delete(g, prev)
				}
			}
			g[id] = true
			k[v] = true
		}
		gen[b] = g
		kill[b] = k
	}

	// Worklist iteration to fixpoint.
	work := make([]*Block, len(cfg.Blocks))
	copy(work, cfg.Blocks)
	for _, b := range cfg.Blocks {
		df.in[b] = make(map[int]bool)
	}
	out := func(b *Block) map[int]bool {
		o := make(map[int]bool)
		for id := range df.in[b] {
			if !kill[b][df.defs[id].v] {
				o[id] = true
			}
		}
		for id := range gen[b] {
			o[id] = true
		}
		return o
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		o := out(b)
		for _, s := range b.Succs {
			changed := false
			for id := range o {
				if !df.in[s][id] {
					df.in[s][id] = true
					changed = true
				}
			}
			if changed {
				work = append(work, s)
			}
		}
	}
	return df
}

// defsIn extracts the definitions a single CFG node performs, excluding
// anything inside nested function literals.
func (df *DefFlow) defsIn(n ast.Node) []defSite {
	var out []defSite
	add := func(id *ast.Ident, node ast.Node, rhs ast.Expr) {
		if id == nil || id.Name == "_" {
			return
		}
		obj := df.info.ObjectOf(id)
		if v, ok := obj.(*types.Var); ok {
			out = append(out, defSite{v: v, node: node, rhs: rhs})
		}
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for i, lhs := range m.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					var rhs ast.Expr
					if len(m.Rhs) == len(m.Lhs) {
						rhs = m.Rhs[i]
					}
					add(id, m, rhs)
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(m.X).(*ast.Ident); ok {
				add(id, m, nil)
			}
		case *ast.RangeStmt:
			if id, ok := m.Key.(*ast.Ident); ok {
				add(id, m, nil)
			}
			if id, ok := m.Value.(*ast.Ident); ok {
				add(id, m, nil)
			}
			return false // body statements are separate CFG nodes
		case *ast.ValueSpec:
			for i, id := range m.Names {
				var rhs ast.Expr
				if i < len(m.Values) {
					rhs = m.Values[i]
				}
				add(id, m, rhs)
			}
		}
		return true
	})
	return out
}

// ReachingAt returns the definitions of v that may reach node n (which
// must be, or be contained in, a CFG node). A nil slice means no explicit
// definition reaches — v is a parameter, receiver or captured variable.
func (df *DefFlow) ReachingAt(n ast.Node, v *types.Var) []defSite {
	b, idx := df.locate(n)
	if b == nil {
		return nil
	}
	live := make(map[int]bool)
	for id := range df.in[b] {
		live[id] = true
	}
	// Apply the block's defs up to (not including) the containing node.
	for i := 0; i < idx; i++ {
		for _, d := range df.defsIn(b.Nodes[i]) {
			id := df.findDef(d)
			if id < 0 {
				continue
			}
			for prev := range live {
				if df.defs[prev].v == d.v {
					delete(live, prev)
				}
			}
			live[id] = true
		}
	}
	var out []defSite
	for id := range df.defs {
		if live[id] && df.defs[id].v == v {
			out = append(out, df.defs[id])
		}
	}
	return out
}

// locate finds the CFG node containing n and its block.
func (df *DefFlow) locate(n ast.Node) (*Block, int) {
	for _, b := range df.cfg.Blocks {
		for i, m := range b.Nodes {
			if m == n || contains(m, n) {
				return b, i
			}
		}
	}
	return nil, 0
}

// findDef maps an extracted defSite back to its index.
func (df *DefFlow) findDef(d defSite) int {
	for i, e := range df.defs {
		if e.v == d.v && e.node == d.node && e.rhs == d.rhs {
			return i
		}
	}
	return -1
}

// contains reports whether outer's source range encloses inner's.
func contains(outer, inner ast.Node) bool {
	if outer == nil || inner == nil {
		return false
	}
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}

// rootVar resolves the base variable of an lvalue or reference expression:
// V, V.f, V[i], *V, (&V) and chains thereof all root at V. It returns nil
// for literals, calls and globals-of-other-kinds.
func rootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := info.ObjectOf(x).(*types.Var)
			return v
		case *ast.SelectorExpr:
			// Package-qualified identifiers (pkg.Var) resolve through the
			// selection; otherwise descend into the operand.
			if info.Selections[x] == nil {
				v, _ := info.ObjectOf(x.Sel).(*types.Var)
				return v
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isRefType reports whether values of t share underlying storage when
// copied: pointers, slices, maps, channels and functions.
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}

// hasRefComponent reports whether t is or contains reference storage —
// a struct with a slice field copied by value still shares its backing
// array. Arrays and structs are examined recursively.
func hasRefComponent(t types.Type) bool {
	seen := make(map[types.Type]bool)
	var walk func(t types.Type) bool
	walk = func(t types.Type) bool {
		if t == nil || seen[t] {
			return false
		}
		seen[t] = true
		switch u := t.Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
			*types.Signature, *types.Interface:
			return true
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if walk(u.Field(i).Type()) {
					return true
				}
			}
		case *types.Array:
			return walk(u.Elem())
		}
		return false
	}
	return walk(t)
}

// mayAlias reports whether expression e (typically an initializer) can
// yield a reference into variable v's storage: &v..., v itself when
// reference-typed, a slice of v, etc.
func mayAlias(info *types.Info, e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND && rootVar(info, n.X) == v {
				found = true
				return false
			}
		case *ast.Ident:
			if obj, ok := info.ObjectOf(n).(*types.Var); ok && obj == v && isRefType(v.Type()) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSyncType reports whether t is a synchronization primitive whose
// methods establish happens-before edges: anything from package sync or
// golang.org/x/sync, or a channel.
func isSyncType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic")
}

// isBarrierNode reports whether a CFG node synchronizes with other
// goroutines: a channel send or receive, close, or a call to a sync
// method that orders memory (Wait, Lock, RLock, Do, Done).
func isBarrierNode(info *types.Info, n ast.Node) bool {
	barrier := false
	ast.Inspect(n, func(m ast.Node) bool {
		if barrier {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			barrier = true
			return false
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				barrier = true
				return false
			}
		case *ast.CallExpr:
			if isBuiltin(info, m, "close") {
				barrier = true
				return false
			}
			sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Wait", "Lock", "RLock", "Do", "Done":
				if recv := info.TypeOf(sel.X); isSyncType(recv) {
					barrier = true
					return false
				}
			}
		}
		return true
	})
	return barrier
}
