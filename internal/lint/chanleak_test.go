package lint

import "testing"

func TestChanleak(t *testing.T) {
	src := `package chanleak

import "sync"

func compute() int { return 1 }
func setup() error { return nil }
func work()        {}

// The motivating bug: an error path returns before the receive, stranding
// the worker on its unbuffered send forever.
func leakOnErrorPath() error {
	ch := make(chan int)
	go func() { ch <- compute() }() //want goroutine may block forever sending on ch
	if err := setup(); err != nil {
		return err
	}
	<-ch
	return nil
}

// Receiver direction: the goroutine waits for a value no path provides.
func leakReceiver() error {
	done := make(chan int)
	go func() { <-done }() //want goroutine may block forever receiving from done
	if err := setup(); err != nil {
		return err
	}
	done <- 1
	return nil
}

func worker(ch chan int) { ch <- compute() }

// The blocking send hides behind a helper call; the texflow summary makes
// go worker(ch) as visible as a literal.
func leakViaHelper() error {
	ch := make(chan int)
	go worker(ch) //want goroutine may block forever sending on ch
	if err := setup(); err != nil {
		return err
	}
	<-ch
	return nil
}

// Every path receives: the worker is always released.
func receivedOnAllPaths() int {
	ch := make(chan int)
	go func() { ch <- compute() }()
	return <-ch
}

// A buffered channel never blocks its single sender.
func bufferedSend() error {
	ch := make(chan int, 1)
	go func() { ch <- compute() }()
	if err := setup(); err != nil {
		return err
	}
	return nil
}

func drain(ch chan int) { <-ch }

// A deferred receive (here via a summarized helper) covers every exit.
func deferredRelease() error {
	ch := make(chan int)
	go func() { ch <- compute() }()
	defer drain(ch)
	if err := setup(); err != nil {
		return err
	}
	return nil
}

var sink chan int

// The channel escapes to a global: peers outside the function may exist.
func escapes() {
	ch := make(chan int)
	go func() { ch <- compute() }()
	sink = ch
}

// A second goroutine performs the complementary op: their lifetimes are
// coupled, out of scope.
func pairedGoroutines() error {
	ch := make(chan int)
	go func() { ch <- compute() }()
	go func() { <-ch }()
	return setup()
}

// Ops under a select are not treated as guaranteed blocks.
func selectNotBlocking(stop chan struct{}) {
	ch := make(chan int)
	go func() {
		select {
		case ch <- 1:
		case <-stop:
		}
	}()
}

// Miniature of the sweep pool: buffered semaphore plus WaitGroup workers.
func sweepPool(specs []int) {
	sem := make(chan struct{}, 4)
	var wg sync.WaitGroup
	for range specs {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			work()
		}()
	}
	wg.Wait()
}
`
	testAnalyzer(t, Chanleak, "chanleak", src)
}
