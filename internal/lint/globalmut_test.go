package lint

import "testing"

func TestGlobalmut(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"write-outside-init", `package fix

var counter int
var table = map[string]int{}

func init() {
	table["seed"] = 1 // init is the sanctioned place
}

func bump() {
	counter++ //want write to package-level counter
}

func set(k string, v int) {
	table[k] = v //want write to package-level table
}

func local() {
	counter := 0
	counter++ // shadowing local: fine
	_ = counter
}
`},
		{"exported-mutable", `package fix

var Exported = []int{1, 2} //want mutable shared state

var ExportedMap = map[string]int{} //want mutable shared state

var ExportedStruct struct{ N int } //want mutable shared state

var Threshold = 8 // scalar: copied on read, fine

var unexported = []int{1, 2} // unexported aggregate: rule 1 still guards writes

func Get() int { return unexported[0] }
`},
		{"once-guarded", `package fix

import "sync"

var once sync.Once
var lazy []int

func get() []int {
	once.Do(func() {
		lazy = []int{1, 2, 3}
	})
	return lazy
}
`},
		{"write-through-pointer", `package fix

var state struct{ n int }

func poke() {
	state.n = 4 //want write to package-level state
}
`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { testAnalyzer(t, Globalmut, "fix", c.src) })
	}
}
