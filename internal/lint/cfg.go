package lint

import (
	"go/ast"
	"go/token"
)

// This file implements the control-flow graph underlying the texvet
// dataflow analyzers (sharedstate, and the reaching-definitions engine in
// dataflow.go). The graph is statement-level: each basic block holds the
// statements and governing expressions that execute together, and edges
// follow Go's structured control flow — if/for/range/switch/select,
// labeled break and continue, goto and fallthrough. Function literals are
// opaque nodes: their bodies belong to their own CFGs, built on demand,
// because a literal's body executes at call time, not where it appears.
//
// BuildCFG is intentionally total: it must return a usable graph for any
// syntactically valid function body and never panic (FuzzBuildCFG enforces
// this), degrading to conservative edges when a construct is exotic.

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every basic block in creation order; Blocks[0] is the
	// entry block.
	Blocks []*Block
}

// Block is one basic block: a run of nodes that execute consecutively.
type Block struct {
	// Index is the position in CFG.Blocks.
	Index int
	// Nodes holds statements and governing expressions in execution
	// order. Expressions appear for conditions and range/switch operands.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
}

// Entry returns the entry block (nil for an empty graph).
func (g *CFG) Entry() *Block {
	if len(g.Blocks) == 0 {
		return nil
	}
	return g.Blocks[0]
}

// BlockOf returns the block containing the statement or expression node
// registered during construction, or nil.
func (g *CFG) BlockOf(n ast.Node) *Block {
	for _, b := range g.Blocks {
		for _, m := range b.Nodes {
			if m == n {
				return b
			}
		}
	}
	return nil
}

// BuildCFG constructs the CFG of a function body. body may be nil (a
// declaration without a body), yielding an empty graph.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: make(map[string]*labelBlocks),
	}
	entry := b.newBlock()
	b.cur = entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.resolveGotos()
	return b.cfg
}

// labelBlocks records the jump targets of one label.
type labelBlocks struct {
	// start is the block beginning the labeled statement (goto/continue
	// landing area; continue actually targets post, set for loops).
	start *Block
	// brk is the block following the labeled statement.
	brk *Block
	// post is the continue target when the labeled statement is a loop.
	post *Block
}

// loopFrame tracks the targets of unlabeled break/continue.
type loopFrame struct {
	brk  *Block
	post *Block // nil for switch/select frames (continue passes through)
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block
	loops  []loopFrame
	labels map[string]*labelBlocks
	// pendingGotos are forward gotos awaiting their label.
	pendingGotos []pendingGoto
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge links from -> to, tolerating nils.
func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// emit appends a node to the current block.
func (b *cfgBuilder) emit(n ast.Node) {
	if n == nil || b.cur == nil {
		return
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// startBlock begins a new block reachable from the current one.
func (b *cfgBuilder) startBlock() *Block {
	nb := b.newBlock()
	b.edge(b.cur, nb)
	b.cur = nb
	return nb
}

// terminate ends the current flow: subsequent statements are unreachable
// until an edge (label, loop head) re-enters them.
func (b *cfgBuilder) terminate() {
	b.cur = b.newBlock() // fresh block with no predecessors
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt lowers one statement. label names the statement when it was the
// body of a LabeledStmt.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case nil:
		return

	case *ast.LabeledStmt:
		lb := &labelBlocks{}
		b.labels[s.Label.Name] = lb
		start := b.startBlock()
		lb.start = start
		b.stmt(s.Stmt, s.Label.Name)
		// brk/post were filled by the labeled loop/switch if any; the
		// break target defaults to whatever follows.
		if lb.brk == nil {
			lb.brk = b.cur
		}

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.emit(s.Cond)
		condBlk := b.cur
		thenBlk := b.newBlock()
		b.edge(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmtList(s.Body.List)
		thenEnd := b.cur

		var elseEnd *Block
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else, "")
			elseEnd = b.cur
		}
		join := b.newBlock()
		b.edge(thenEnd, join)
		if s.Else != nil {
			b.edge(elseEnd, join)
		} else {
			b.edge(condBlk, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		head := b.startBlock()
		if s.Cond != nil {
			b.emit(s.Cond)
		}
		join := b.newBlock()
		post := b.newBlock()
		if s.Cond != nil {
			b.edge(head, join)
		}
		b.noteLoop(label, join, post)
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.loops = append(b.loops, loopFrame{brk: join, post: post})
		b.stmtList(s.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(b.cur, post)
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		b.edge(post, head)
		b.cur = join

	case *ast.RangeStmt:
		b.emit(s.X)
		head := b.startBlock()
		if s.Key != nil || s.Value != nil {
			// The per-iteration assignment happens at the head.
			head.Nodes = append(head.Nodes, s)
		}
		join := b.newBlock()
		b.edge(head, join)
		b.noteLoop(label, join, head)
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.loops = append(b.loops, loopFrame{brk: join, post: head})
		b.stmtList(s.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(b.cur, head)
		b.cur = join

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		if s.Tag != nil {
			b.emit(s.Tag)
		}
		b.switchClauses(s.Body, label, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.emit(s.Assign)
		b.switchClauses(s.Body, label, nil)

	case *ast.SelectStmt:
		b.switchClauses(s.Body, label, func(c ast.Stmt) ast.Stmt {
			if cc, ok := c.(*ast.CommClause); ok {
				return cc.Comm
			}
			return nil
		})

	case *ast.ReturnStmt:
		b.emit(s)
		b.terminate()

	case *ast.BranchStmt:
		b.emit(s)
		b.branch(s)

	case *ast.GoStmt, *ast.DeferStmt, *ast.ExprStmt, *ast.AssignStmt,
		*ast.IncDecStmt, *ast.SendStmt, *ast.DeclStmt, *ast.EmptyStmt:
		b.emit(s)

	default:
		// Unknown statement kinds flow straight through.
		b.emit(s)
	}
}

// noteLoop records break/continue targets on the statement's label.
func (b *cfgBuilder) noteLoop(label string, brk, post *Block) {
	if label == "" {
		return
	}
	if lb := b.labels[label]; lb != nil {
		lb.brk = brk
		lb.post = post
	}
}

// switchClauses lowers the clause list of a switch, type switch or select.
// comm extracts the guarding communication of a select clause, if any.
func (b *cfgBuilder) switchClauses(body *ast.BlockStmt, label string, comm func(ast.Stmt) ast.Stmt) {
	head := b.cur
	join := b.newBlock()
	b.noteLoop(label, join, nil)
	hasDefault := false
	var prevBody *Block // fallthrough source
	for _, cs := range body.List {
		var stmts []ast.Stmt
		var guards []ast.Node
		isDefault := false
		switch cs := cs.(type) {
		case *ast.CaseClause:
			stmts = cs.Body
			isDefault = cs.List == nil
			for _, e := range cs.List {
				guards = append(guards, e)
			}
		case *ast.CommClause:
			stmts = cs.Body
			isDefault = cs.Comm == nil
			if comm != nil {
				if g := comm(cs); g != nil {
					guards = append(guards, g)
				}
			}
		default:
			continue
		}
		if isDefault {
			hasDefault = true
		}
		clause := b.newBlock()
		b.edge(head, clause)
		if prevBody != nil {
			// A trailing fallthrough in the previous clause jumps here.
			b.edge(prevBody, clause)
		}
		b.cur = clause
		for _, g := range guards {
			b.emit(g)
		}
		b.loops = append(b.loops, loopFrame{brk: join})
		b.stmtList(stmts)
		b.loops = b.loops[:len(b.loops)-1]
		prevBody = b.cur
		b.edge(b.cur, join)
	}
	if !hasDefault {
		b.edge(head, join)
	}
	b.cur = join
}

// branch lowers break/continue/goto/fallthrough.
func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if name != "" {
			if lb := b.labels[name]; lb != nil && lb.brk != nil {
				b.edge(b.cur, lb.brk)
			}
		} else if n := len(b.loops); n > 0 {
			b.edge(b.cur, b.loops[n-1].brk)
		}
		b.terminate()
	case token.CONTINUE:
		if name != "" {
			if lb := b.labels[name]; lb != nil && lb.post != nil {
				b.edge(b.cur, lb.post)
			}
		} else {
			for i := len(b.loops) - 1; i >= 0; i-- {
				if b.loops[i].post != nil {
					b.edge(b.cur, b.loops[i].post)
					break
				}
			}
		}
		b.terminate()
	case token.GOTO:
		if name != "" {
			if lb := b.labels[name]; lb != nil && lb.start != nil {
				b.edge(b.cur, lb.start)
			} else {
				b.pendingGotos = append(b.pendingGotos, pendingGoto{b.cur, name})
			}
		}
		b.terminate()
	case token.FALLTHROUGH:
		// switchClauses links the previous clause end to the next clause;
		// nothing to do here.
	}
}

// resolveGotos patches forward gotos whose labels appeared later.
func (b *cfgBuilder) resolveGotos() {
	for _, g := range b.pendingGotos {
		if lb := b.labels[g.label]; lb != nil && lb.start != nil {
			b.edge(g.from, lb.start)
		}
	}
	b.pendingGotos = nil
}

// ReachableFrom walks the CFG forward starting immediately after node
// `from` in block `start`, returning every node that may execute
// afterwards. Traversal of a block stops (and its successors are not
// followed from that point) at the first node for which barrier returns
// true; barrier may be nil. The `from` node itself is not included.
func ReachableFrom(g *CFG, from ast.Node, barrier func(ast.Node) bool) []ast.Node {
	start := g.BlockOf(from)
	if start == nil {
		return nil
	}
	var out []ast.Node
	seen := make(map[*Block]bool)
	// scan walks one block from node index i, collecting nodes and
	// queueing successors unless a barrier stops the flow.
	var scan func(b *Block, i int)
	scan = func(b *Block, i int) {
		for ; i < len(b.Nodes); i++ {
			n := b.Nodes[i]
			if barrier != nil && barrier(n) {
				return
			}
			out = append(out, n)
		}
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				scan(s, 0)
			}
		}
	}
	// Locate `from` within its block and resume after it.
	idx := 0
	for i, n := range start.Nodes {
		if n == from {
			idx = i + 1
			break
		}
	}
	seen[start] = true
	scan(start, idx)
	// The start block's successors were handled by scan; blocks reachable
	// through loop back-edges that re-enter `start` must re-scan its
	// prefix (nodes before `from` in the same loop body). Conservatively
	// include them when start has a predecessor among reached blocks.
	for _, b := range g.Blocks {
		if !seen[b] {
			continue
		}
		for _, s := range b.Succs {
			if s == start {
				scan(start, 0)
				return out
			}
		}
	}
	return out
}
