package lint

import "testing"

func TestErrcheck(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"dropped", `package fix

import "errors"

func fail() error { return errors.New("fix: boom") }

func multi() (int, error) { return 0, nil }

func f() {
	fail()    //want drops its error
	multi()   //want drops its error
	_ = fail() // explicit discard is the sanctioned escape hatch
	if err := fail(); err != nil {
		return
	}
	n, err := multi()
	_, _ = n, err
}
`},
		{"defer-and-go", `package fix

import "errors"

func fail() error { return errors.New("fix: boom") }

func f() {
	defer fail() //want deferred call
	go fail()    //want spawned call
	defer func() { _ = fail() }()
}
`},
		{"exemptions", `package fix

import (
	"bytes"
	"fmt"
	"strings"
)

func f() {
	fmt.Println("hi")
	var sb strings.Builder
	sb.WriteString("x")
	var buf bytes.Buffer
	buf.WriteByte('x')
	fmt.Fprintf(&sb, "%d", 1)
}
`},
		{"non-error-results", `package fix

func count() int { return 1 }

func f() {
	count() // no error in the results; not this analyzer's business
}
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			testAnalyzer(t, Errcheck, "errcheck_"+tc.name, tc.src)
		})
	}
}
