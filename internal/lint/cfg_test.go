package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses a function body and returns it with its file set.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	f, err := parser.ParseFile(token.NewFileSet(), "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

func TestBuildCFGShapes(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"straightline", `x := 1; y := x + 1; _ = y`},
		{"if-else", `if a() { b() } else { c() }; d()`},
		{"for-break-continue", `for i := 0; i < 9; i++ { if i == 3 { continue }; if i == 7 { break }; use(i) }`},
		{"range", `for k, v := range m { use(k); use(v) }`},
		{"switch-fallthrough", `switch x { case 1: a(); fallthrough; case 2: b(); default: c() }`},
		{"type-switch", `switch v := x.(type) { case int: use(v); case string: use(v) }`},
		{"select", `select { case v := <-ch: use(v); case ch2 <- 1: default: }`},
		{"labeled-loops", `outer: for i := 0; i < 3; i++ { for j := 0; j < 3; j++ { if j == i { continue outer }; if j > i { break outer } } }`},
		{"goto-forward", `if x > 0 { goto done }; work(); done: finish()`},
		{"goto-backward", `again: if retry() { goto again }; finish()`},
		{"nested-defer-go", `defer cleanup(); go worker(); for { if stop() { return } }`},
		{"empty", ``},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := BuildCFG(parseBody(t, c.body))
			if g.Entry() == nil {
				t.Fatal("no entry block")
			}
			// Every successor must be a block of the same graph.
			index := make(map[*Block]bool)
			for _, b := range g.Blocks {
				index[b] = true
			}
			for _, b := range g.Blocks {
				for _, s := range b.Succs {
					if !index[s] {
						t.Fatalf("block %d has a successor outside the graph", b.Index)
					}
				}
			}
		})
	}
}

// TestReachableFromBarrier checks that a barrier node cuts the forward
// walk: statements beyond the barrier are not reported reachable.
func TestReachableFromBarrier(t *testing.T) {
	body := parseBody(t, `
	before()
	start()
	middle()
	barrier()
	after()
`)
	g := BuildCFG(body)
	start := body.List[1]
	barrier := body.List[3]
	reach := ReachableFrom(g, start, func(n ast.Node) bool { return n == barrier })
	has := func(n ast.Node) bool {
		for _, m := range reach {
			if m == n {
				return true
			}
		}
		return false
	}
	if !has(body.List[2]) {
		t.Error("middle() should be reachable from start()")
	}
	if has(body.List[0]) {
		t.Error("before() precedes start() with no loop: unreachable")
	}
	if has(barrier) || has(body.List[4]) {
		t.Error("barrier() and after() must be cut off")
	}
}

// TestReachableFromLoop checks that a loop back-edge makes statements
// textually before the start node reachable again.
func TestReachableFromLoop(t *testing.T) {
	body := parseBody(t, `
	for i := 0; i < 4; i++ {
		first()
		second()
	}
`)
	g := BuildCFG(body)
	loop := body.List[0].(*ast.ForStmt)
	first := loop.Body.List[0]
	second := loop.Body.List[1]
	reach := ReachableFrom(g, second, nil)
	found := false
	for _, n := range reach {
		if n == first {
			found = true
		}
	}
	if !found {
		t.Error("first() should be reachable from second() via the loop back-edge")
	}
	_ = second
}

// reachSet collects ReachableFrom into an identity set for assertions.
func reachSet(g *CFG, from ast.Node) map[ast.Node]bool {
	set := make(map[ast.Node]bool)
	for _, n := range ReachableFrom(g, from, nil) {
		set[n] = true
	}
	return set
}

// TestSelectDefaultInLoop: a select with a default clause inside a loop
// must join both arms back into the loop body, and the loop back-edge
// must make each arm reachable from the other on a later iteration.
func TestSelectDefaultInLoop(t *testing.T) {
	body := parseBody(t, `
	for {
		select {
		case v := <-ch:
			use(v)
		default:
			idle()
		}
		post()
		if done() {
			break
		}
	}
	after()
`)
	g := BuildCFG(body)
	loop := body.List[0].(*ast.ForStmt)
	sel := loop.Body.List[0].(*ast.SelectStmt)
	use := sel.Body.List[0].(*ast.CommClause).Body[0]
	idle := sel.Body.List[1].(*ast.CommClause).Body[0]
	post := loop.Body.List[1]
	after := body.List[1]

	fromIdle := reachSet(g, idle)
	for _, want := range []struct {
		name string
		n    ast.Node
	}{{"post()", post}, {"after()", after}, {"use(v) via back-edge", use}} {
		if !fromIdle[want.n] {
			t.Errorf("%s not reachable from idle()", want.name)
		}
	}
	if !reachSet(g, use)[idle] {
		t.Error("idle() not reachable from use(v) via the loop back-edge")
	}
}

// TestLabeledBreakContinueOutOfSelect: break/continue with a loop label
// inside a select must target the loop, not the select. A labeled break
// exits the whole loop — the select's own fallthrough path (tail) must
// not be reachable from it.
func TestLabeledBreakContinueOutOfSelect(t *testing.T) {
	body := parseBody(t, `
	loop:
	for {
		select {
		case v := <-in:
			if v == 0 {
				break loop
			}
			use(v)
		case <-stop:
			continue loop
		}
		tail()
	}
	after()
`)
	g := BuildCFG(body)
	loop := body.List[0].(*ast.LabeledStmt).Stmt.(*ast.ForStmt)
	sel := loop.Body.List[0].(*ast.SelectStmt)
	recv := sel.Body.List[0].(*ast.CommClause)
	brk := recv.Body[0].(*ast.IfStmt).Body.List[0]
	use := recv.Body[1]
	cont := sel.Body.List[1].(*ast.CommClause).Body[0]
	tail := loop.Body.List[1]
	after := body.List[1]

	fromBreak := reachSet(g, brk)
	if !fromBreak[after] {
		t.Error("after() not reachable from `break loop`")
	}
	if fromBreak[tail] || fromBreak[use] {
		t.Error("`break loop` must exit the loop, not fall through the select")
	}
	fromCont := reachSet(g, cont)
	if !fromCont[use] || !fromCont[tail] {
		t.Error("`continue loop` must re-enter the loop body via the back-edge")
	}
	if !fromCont[after] {
		t.Error("after() not reachable from `continue loop` (via a later break)")
	}
}

// TestLabeledBreakOutOfBareSelect: a label directly on a select makes
// `break label` legal; it must jump past the select without executing
// the other clause.
func TestLabeledBreakOutOfBareSelect(t *testing.T) {
	body := parseBody(t, `
	done:
	select {
	case <-a:
		break done
	case <-b:
		x()
	}
	after()
`)
	g := BuildCFG(body)
	sel := body.List[0].(*ast.LabeledStmt).Stmt.(*ast.SelectStmt)
	brk := sel.Body.List[0].(*ast.CommClause).Body[0]
	x := sel.Body.List[1].(*ast.CommClause).Body[0]
	after := body.List[1]

	from := reachSet(g, brk)
	if !from[after] {
		t.Error("after() not reachable from `break done`")
	}
	if from[x] {
		t.Error("the other select clause must not be reachable from `break done`")
	}
}

// TestGoroutineSpawningMethodValues: go statements over bound method
// values and stored method values are plain straight-line nodes — the
// spawned body belongs to another goroutine's control flow, so a
// function-literal goroutine's statements must not be lowered into the
// spawner's graph.
func TestGoroutineSpawningMethodValues(t *testing.T) {
	body := parseBody(t, `
	w := newWorker()
	go w.Run()
	step := w.Step
	go step()
	defer w.Close()
	go func() {
		w.Finish()
	}()
	<-done
`)
	g := BuildCFG(body)
	for i, s := range body.List {
		if g.BlockOf(s) == nil {
			t.Errorf("statement %d (%T) not placed in any block", i, s)
		}
	}
	// Control flows straight through every spawn to the final receive.
	from := reachSet(g, body.List[0])
	for i := 1; i < len(body.List); i++ {
		if !from[body.List[i]] {
			t.Errorf("statement %d (%T) not reachable from the first statement", i, body.List[i])
		}
	}
	// The literal goroutine's body is not part of this graph.
	lit := body.List[5].(*ast.GoStmt).Call.Fun.(*ast.FuncLit)
	if g.BlockOf(lit.Body.List[0]) != nil {
		t.Error("goroutine literal body was lowered into the spawning function's CFG")
	}
}

// FuzzBuildCFG asserts totality: any body Go's parser accepts must yield
// a CFG without panicking, and ReachableFrom must likewise be total.
func FuzzBuildCFG(f *testing.F) {
	seeds := []string{
		`x := 1`,
		`for { break }`,
		`for i := range xs { if i > 2 { continue }; use(i) }`,
		`switch { case a: fallthrough; default: b() }`,
		`select { case <-ch: }`,
		`L: for { for { continue L } }`,
		`goto X; X: return`,
		`if a { goto B }; B: ;`,
		`defer f(); go g(); return`,
		"ch <- 1\n\t<-ch\n\tclose(ch)",
		`{ { { return } } }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		src := "package p\nfunc f() {\n" + body + "\n}\n"
		file, err := parser.ParseFile(token.NewFileSet(), "fuzz.go", src, parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			g := BuildCFG(fn.Body)
			if g == nil || g.Entry() == nil {
				t.Fatal("BuildCFG returned an unusable graph")
			}
			for _, b := range g.Blocks {
				for _, n := range b.Nodes {
					ReachableFrom(g, n, nil)
				}
			}
		}
	})
}
