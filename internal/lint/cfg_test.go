package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses a function body and returns it with its file set.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	f, err := parser.ParseFile(token.NewFileSet(), "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

func TestBuildCFGShapes(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"straightline", `x := 1; y := x + 1; _ = y`},
		{"if-else", `if a() { b() } else { c() }; d()`},
		{"for-break-continue", `for i := 0; i < 9; i++ { if i == 3 { continue }; if i == 7 { break }; use(i) }`},
		{"range", `for k, v := range m { use(k); use(v) }`},
		{"switch-fallthrough", `switch x { case 1: a(); fallthrough; case 2: b(); default: c() }`},
		{"type-switch", `switch v := x.(type) { case int: use(v); case string: use(v) }`},
		{"select", `select { case v := <-ch: use(v); case ch2 <- 1: default: }`},
		{"labeled-loops", `outer: for i := 0; i < 3; i++ { for j := 0; j < 3; j++ { if j == i { continue outer }; if j > i { break outer } } }`},
		{"goto-forward", `if x > 0 { goto done }; work(); done: finish()`},
		{"goto-backward", `again: if retry() { goto again }; finish()`},
		{"nested-defer-go", `defer cleanup(); go worker(); for { if stop() { return } }`},
		{"empty", ``},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := BuildCFG(parseBody(t, c.body))
			if g.Entry() == nil {
				t.Fatal("no entry block")
			}
			// Every successor must be a block of the same graph.
			index := make(map[*Block]bool)
			for _, b := range g.Blocks {
				index[b] = true
			}
			for _, b := range g.Blocks {
				for _, s := range b.Succs {
					if !index[s] {
						t.Fatalf("block %d has a successor outside the graph", b.Index)
					}
				}
			}
		})
	}
}

// TestReachableFromBarrier checks that a barrier node cuts the forward
// walk: statements beyond the barrier are not reported reachable.
func TestReachableFromBarrier(t *testing.T) {
	body := parseBody(t, `
	before()
	start()
	middle()
	barrier()
	after()
`)
	g := BuildCFG(body)
	start := body.List[1]
	barrier := body.List[3]
	reach := ReachableFrom(g, start, func(n ast.Node) bool { return n == barrier })
	has := func(n ast.Node) bool {
		for _, m := range reach {
			if m == n {
				return true
			}
		}
		return false
	}
	if !has(body.List[2]) {
		t.Error("middle() should be reachable from start()")
	}
	if has(body.List[0]) {
		t.Error("before() precedes start() with no loop: unreachable")
	}
	if has(barrier) || has(body.List[4]) {
		t.Error("barrier() and after() must be cut off")
	}
}

// TestReachableFromLoop checks that a loop back-edge makes statements
// textually before the start node reachable again.
func TestReachableFromLoop(t *testing.T) {
	body := parseBody(t, `
	for i := 0; i < 4; i++ {
		first()
		second()
	}
`)
	g := BuildCFG(body)
	loop := body.List[0].(*ast.ForStmt)
	first := loop.Body.List[0]
	second := loop.Body.List[1]
	reach := ReachableFrom(g, second, nil)
	found := false
	for _, n := range reach {
		if n == first {
			found = true
		}
	}
	if !found {
		t.Error("first() should be reachable from second() via the loop back-edge")
	}
	_ = second
}

// FuzzBuildCFG asserts totality: any body Go's parser accepts must yield
// a CFG without panicking, and ReachableFrom must likewise be total.
func FuzzBuildCFG(f *testing.F) {
	seeds := []string{
		`x := 1`,
		`for { break }`,
		`for i := range xs { if i > 2 { continue }; use(i) }`,
		`switch { case a: fallthrough; default: b() }`,
		`select { case <-ch: }`,
		`L: for { for { continue L } }`,
		`goto X; X: return`,
		`if a { goto B }; B: ;`,
		`defer f(); go g(); return`,
		"ch <- 1\n\t<-ch\n\tclose(ch)",
		`{ { { return } } }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		src := "package p\nfunc f() {\n" + body + "\n}\n"
		file, err := parser.ParseFile(token.NewFileSet(), "fuzz.go", src, parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			g := BuildCFG(fn.Body)
			if g == nil || g.Entry() == nil {
				t.Fatal("BuildCFG returned an unusable graph")
			}
			for _, b := range g.Blocks {
				for _, n := range b.Nodes {
					ReachableFrom(g, n, nil)
				}
			}
		}
	})
}
