package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Hotpath enforces allocation and formatting hygiene in functions whose
// doc comment carries a "texlint:hotpath" marker. These are the per-texel
// functions — the address sink and the L1/L2/TLB lookup paths — executed
// hundreds of millions of times per run; a stray fmt call or closure
// allocation there dominates the simulation wall-clock.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid fmt, closures, interface conversions and dynamic panics in texlint:hotpath functions",
	Run:  runHotpath,
}

// HotpathMarker is the doc-comment marker naming a function hot.
const HotpathMarker = "texlint:hotpath"

func runHotpath(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotpath(fn) {
				continue
			}
			checkHotBody(pass, fn)
		}
	}
}

// isHotpath reports whether the function's doc comment contains the
// hotpath marker (with or without a space after the comment slashes) or
// its texvet alias texsim:hot.
func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.Contains(c.Text, HotpathMarker) || strings.Contains(c.Text, HotMarker) {
			return true
		}
	}
	return false
}

func checkHotBody(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	info := pass.Pkg.Info
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hot path %s allocates a closure", name)
			return false // the literal's body is not the hot path itself
		case *ast.TypeAssertExpr:
			if n.Type != nil { // exclude type switches' x.(type)
				pass.Reportf(n.Pos(), "hot path %s performs an interface type assertion", name)
			}
		case *ast.CallExpr:
			checkHotCall(pass, name, n)
		case *ast.TypeSwitchStmt:
			pass.Reportf(n.Pos(), "hot path %s performs an interface type switch", name)
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "hot path %s defers a call", name)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "hot path %s spawns a goroutine", name)
		}
		return true
	})
	_ = info
}

func checkHotCall(pass *Pass, name string, call *ast.CallExpr) {
	info := pass.Pkg.Info
	// Any fmt call: Sprintf and friends allocate and reflect.
	if p := calleePkgPath(info, call); p == "fmt" {
		if obj := calleeObj(info, call); obj != nil {
			pass.Reportf(call.Pos(), "hot path %s calls fmt.%s", name, obj.Name())
		}
		return
	}
	// panic with a non-constant argument: building the value (fmt.Sprintf,
	// concatenation, boxing an error) costs on the fast path even though
	// the panic itself never fires on correct input.
	if isBuiltin(info, call, "panic") && len(call.Args) == 1 {
		if tv, ok := info.Types[call.Args[0]]; !ok || tv.Value == nil {
			pass.Reportf(call.Pos(), "hot path %s panics with a non-constant argument", name)
		}
		return
	}
	// Explicit conversion to an interface type boxes the operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if types.IsInterface(tv.Type) {
			if at := info.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at) {
				pass.Reportf(call.Pos(), "hot path %s converts %s to interface %s",
					name, at, tv.Type)
			}
		}
	}
}
