package lint

// This file is the texmem interprocedural layer: allocation-lifetime
// summaries shared by the pooling analyzers (poolcheck, retain,
// growloop). Where texflow summarizes what a function does to channels
// and WaitGroups, texmem summarizes what a function does to the heap:
// which sites allocate (make, new, append growth, escaping composite
// literals), how big the allocation is when a size is derivable from
// constants or from len() of a parameter, whether the allocated memory
// escapes to a long-lived sink (a Results slot, a struct field, a
// channel) or dies within the call, and which allocations are already
// covered by a recognized reuse pattern — sync.Pool Get/Put, a
// cap-guarded scratch buffer, a `b = b[:0]` reslice, a preallocated
// make(..., 0, n), or a function annotated texsim:pool.
//
// Like texflow, the summaries are may-facts closed over the module's
// static call graph by fixpoint iteration: a function that calls a
// helper which allocates unpooled non-small memory on every call is
// itself marked as allocating per call, so an analyzer looking at a loop
// sees through the helper.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// PoolMarker annotates a function as a pooling allocator: its
// allocations are amortized by an internal free list, so calls to it are
// a recognized reuse pattern, not a per-call allocation. It is the
// custom-pool analogue of the natively recognized (*sync.Pool).Get.
const PoolMarker = "texsim:pool"

// largeAllocBytes is the size-class boundary: a constant-sized
// allocation at or above it is "large" (worth pooling), below it small
// (ignored by poolcheck). One page.
const largeAllocBytes = 4096

// AllocKind classifies an allocation site.
type AllocKind uint8

const (
	// AllocMake is a make() of a slice, map or channel.
	AllocMake AllocKind = iota
	// AllocNew is new(T) or an escaping &T{...} / []T{...} literal.
	AllocNew
	// AllocAppend is append growth: x = append(x, ...).
	AllocAppend
)

// SizeClass is how much is known about an allocation's size.
type SizeClass uint8

const (
	// SizeUnknown means no bound is derivable.
	SizeUnknown SizeClass = iota
	// SizeConst means Bytes holds a constant-derived byte size.
	SizeConst
	// SizeParamLen means the allocation is bounded by len() of the
	// parameter at index Param.
	SizeParamLen
)

// EscapeKind classifies an allocation's lifetime, ordered by severity
// so joining two observations is a max().
type EscapeKind uint8

const (
	// EscapeNone means the allocation dies within the call.
	EscapeNone EscapeKind = iota
	// EscapeReturn means the allocation is handed to the caller as a
	// return value — the constructor idiom.
	EscapeReturn
	// EscapeSink means the allocation is published to a long-lived
	// sink: a field, an indexed slot, a channel, a global, or an
	// element append into any of those.
	EscapeSink
)

// AllocSite is one allocation in a function body.
type AllocSite struct {
	Kind  AllocKind
	Class SizeClass
	// Bytes is the constant-derived size for SizeConst, 0 otherwise.
	Bytes int64
	// Param is the parameter index bounding a SizeParamLen site.
	Param int
	// Pos locates the allocating expression.
	Pos token.Pos
	// Escape classifies where the allocated memory may end up: dead
	// within the call, handed to the caller through a return value, or
	// published to a long-lived sink (a struct field, an indexed slot, a
	// channel, a global, or an element append into any of those). The
	// distinction matters to poolcheck: a constructor that returns a
	// fresh slice is the callee doing its job, while a loop that stores
	// a fresh buffer into shared state every iteration is the pattern
	// pooling exists to kill.
	Escape EscapeKind
	// InLoop reports the site sits inside a for/range statement of its
	// function, i.e. allocates per iteration.
	InLoop bool
	// Reused reports a recognized reuse pattern covers the site: it is
	// cap-guarded, its target is resliced to zero length, it carries an
	// explicit capacity, or it sits in a sync.Pool New factory.
	Reused bool
}

// Large reports whether the site's size class makes it worth pooling:
// unknown (unbounded growth), bounded by a parameter's length, or a
// constant of at least largeAllocBytes.
func (s *AllocSite) Large() bool {
	switch s.Class {
	case SizeConst:
		return s.Bytes >= largeAllocBytes
	default:
		return true
	}
}

// MemFacts is the texmem summary set, computed once per Run over every
// loaded package (see CollectFacts).
type MemFacts struct {
	// Allocs lists each function's allocation sites.
	Allocs map[*types.Func][]*AllocSite
	// PerCall marks functions that may allocate unpooled large memory on
	// every call, directly or through module callees (the fixpoint bit).
	PerCall map[*types.Func]bool
	// Pooled marks functions that are a pooling allocator: annotated
	// texsim:pool, or fetching from a sync.Pool.
	Pooled map[*types.Func]bool
	// GrowFields maps a named struct type to the receiver fields its
	// methods grow by append — the write-buffer idiom whose per-iteration
	// instances poolcheck hunts.
	GrowFields map[*types.Named]map[string]bool
	// Spawners marks functions containing go statements: the pool-spawn
	// sites whose call closure poolcheck treats as worker context.
	Spawners map[*types.Func]bool
	// Spawned marks named functions launched by a go statement — the
	// worker bodies themselves, where poolcheck applies its strictest
	// per-iteration rule.
	Spawned map[*types.Func]bool
}

// memDecl pairs a declared function with its package, like flowDecl.
type memDecl struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

// collectMemFacts computes the texmem summaries, iterating to fixpoint
// so PerCall flows through call chains in any declaration order.
func collectMemFacts(pkgs []*Package) *MemFacts {
	mf := &MemFacts{
		Allocs:     make(map[*types.Func][]*AllocSite),
		PerCall:    make(map[*types.Func]bool),
		Pooled:     make(map[*types.Func]bool),
		GrowFields: make(map[*types.Named]map[string]bool),
		Spawners:   make(map[*types.Func]bool),
		Spawned:    make(map[*types.Func]bool),
	}
	var decls []memDecl
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				decls = append(decls, memDecl{fn: obj, decl: fn, pkg: pkg})
				if hasMarker(fn, PoolMarker) {
					mf.Pooled[obj] = true
				}
			}
		}
	}
	// The intraprocedural facts (sites, growth fields, spawners) are
	// call-order independent; compute them once.
	for _, d := range decls {
		mf.scanIntra(d)
	}
	// PerCall closes over the call graph; summaries only grow, so a full
	// pass without change terminates the iteration.
	for iter := 0; iter < 32; iter++ {
		changed := false
		for _, d := range decls {
			if mf.propagate(d) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return mf
}

// hasMarker reports whether the declaration's doc comment carries the
// given texsim marker.
func hasMarker(fn *ast.FuncDecl, marker string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// receiverNamed resolves the method declaration's receiver to its named
// struct type, or nil for plain functions.
func receiverNamed(info *types.Info, decl *ast.FuncDecl) *types.Named {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return nil
	}
	t := info.TypeOf(decl.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// scanIntra computes one function's call-order-independent facts:
// allocation sites (with class, loop depth, escape and reuse), receiver
// growth fields, and spawner status.
func (mf *MemFacts) scanIntra(d memDecl) {
	info := d.pkg.Info
	params := paramVars(info, d.decl)
	recv := receiverNamed(info, d.decl)

	// First pass: reuse-pattern targets. resliced holds objects assigned
	// x = x[:0] (or a receiver field name so resliced); prealloc holds
	// objects whose make carries an explicit capacity; preallocField holds
	// struct fields initialized with an explicit capacity, either in a
	// composite literal (Specs: make([]string, 0, n)) or by a direct
	// field store (s.rows = make([][]string, 0, n)).
	resliced := make(map[types.Object]bool)
	reslicedFields := make(map[string]bool)
	prealloc := make(map[types.Object]bool)
	preallocField := make(map[types.Object]bool)
	capGuarded := make(map[ast.Node]bool) // if-statements guarding by cap()/len()
	makeWithCap := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		return ok && isBuiltin(info, call, "make") && len(call.Args) >= 3
	}
	ast.Inspect(d.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if makeWithCap(n.Rhs[i]) {
					if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
						if field := info.ObjectOf(sel.Sel); field != nil {
							preallocField[field] = true
						}
					}
					continue
				}
				sl, ok := ast.Unparen(n.Rhs[i]).(*ast.SliceExpr)
				if !ok || !sameRef(info, lhs, sl.X) {
					continue
				}
				if !isZeroLen(info, sl) {
					continue
				}
				switch x := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					if obj := info.ObjectOf(x); obj != nil {
						resliced[obj] = true
					}
				case *ast.SelectorExpr:
					reslicedFields[x.Sel.Name] = true
				}
			}
		case *ast.KeyValueExpr:
			if key, ok := n.Key.(*ast.Ident); ok && makeWithCap(n.Value) {
				if field := info.ObjectOf(key); field != nil {
					preallocField[field] = true
				}
			}
		case *ast.IfStmt:
			if condMentionsCapOrLen(info, n.Cond) {
				capGuarded[n] = true
			}
		}
		return true
	})

	// Second pass: sink escapes at the variable level. escaped holds
	// locals whose ref value may reach a long-lived sink.
	escaped := collectEscapes(info, d.decl.Body)

	// Third pass: the sites themselves, with an enclosing-node stack for
	// loop depth and cap-guard containment.
	var stack []ast.Node
	usesSyncPoolGet := false
	var sites []*AllocSite
	ast.Inspect(d.decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		inLoop := false
		guarded := false
		inPoolNew := false
		for _, a := range stack[:len(stack)-1] {
			switch a := a.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				inLoop = true
			case *ast.IfStmt:
				if capGuarded[a] {
					guarded = true
				}
			case *ast.FuncLit:
				// A closure body is its own execution context; its sites
				// are summarized for the enclosing declaration (the
				// closure runs on behalf of it), but a sync.Pool New
				// factory is the reuse pattern itself.
				if isPoolNewFactory(info, stack, a) {
					inPoolNew = true
				}
			}
		}

		switch n := n.(type) {
		case *ast.GoStmt:
			mf.Spawners[d.fn] = true
			if callee, ok := calleeObj(info, n.Call).(*types.Func); ok {
				mf.Spawned[callee] = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if isSyncPoolMethod(info, sel, "Get") {
					usesSyncPoolGet = true
				}
			}
			site := classifyAlloc(info, params, n)
			if site == nil {
				return true
			}
			site.InLoop = inLoop
			site.Reused = guarded || inPoolNew
			if !site.Reused {
				site.Reused = allocTargetReused(info, stack, n, resliced, reslicedFields, prealloc, preallocField)
			}
			site.Escape = allocEscapes(info, stack, n, escaped)
			if site.Kind == AllocMake && len(n.Args) >= 3 {
				// make with an explicit capacity is itself the reuse
				// pattern: the author sized the buffer up front. Remember
				// the target so appends into it are recognized too.
				site.Reused = true
				if obj := allocTargetObj(info, stack, n); obj != nil {
					prealloc[obj] = true
				}
			}
			sites = append(sites, site)
			// Receiver-field append growth: s.buf = append(s.buf, ...).
			if site.Kind == AllocAppend && recv != nil {
				if fname := appendReceiverField(info, stack, n, d.decl); fname != "" {
					m := mf.GrowFields[recv]
					if m == nil {
						m = make(map[string]bool)
						mf.GrowFields[recv] = m
					}
					m[fname] = true
				}
			}
		}
		return true
	})
	if usesSyncPoolGet {
		mf.Pooled[d.fn] = true
	}
	mf.Allocs[d.fn] = sites
}

// propagate recomputes the PerCall bit for one function: set when the
// function has its own unpooled large non-guarded allocation, or calls a
// module function already marked PerCall and not Pooled.
func (mf *MemFacts) propagate(d memDecl) bool {
	if mf.PerCall[d.fn] {
		return false
	}
	if mf.Pooled[d.fn] {
		return false
	}
	for _, s := range mf.Allocs[d.fn] {
		if s.Large() && !s.Reused {
			mf.PerCall[d.fn] = true
			return true
		}
	}
	info := d.pkg.Info
	found := false
	ast.Inspect(d.decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, _ := calleeObj(info, call).(*types.Func)
		if callee == nil || callee == d.fn {
			return true
		}
		if mf.PerCall[callee] && !mf.Pooled[callee] {
			found = true
			return false
		}
		return true
	})
	if found {
		mf.PerCall[d.fn] = true
	}
	return found
}

// stdSizes provides best-effort type sizes for the size classes; the
// exact word width is irrelevant to a 4 KiB threshold.
var stdSizes = types.SizesFor("gc", "amd64")

// typeBytes returns t's size in bytes, or 1 when unsized (so counts
// still classify).
func typeBytes(t types.Type) int64 {
	if t == nil || stdSizes == nil {
		return 1
	}
	defer func() { _ = recover() }() // Sizeof panics on type parameters
	if sz := stdSizes.Sizeof(t); sz > 0 {
		return sz
	}
	return 1
}

// classifyAlloc recognizes an allocating call expression and derives its
// size class. It returns nil for non-allocating calls.
func classifyAlloc(info *types.Info, params map[*types.Var]int, call *ast.CallExpr) *AllocSite {
	switch {
	case isBuiltin(info, call, "make"):
		site := &AllocSite{Kind: AllocMake, Pos: call.Pos()}
		if len(call.Args) < 2 {
			// make(map) / make(chan) with no size hint: small.
			site.Class = SizeConst
			site.Bytes = 0
			return site
		}
		sizeArg := call.Args[len(call.Args)-1] // cap when present, else len
		elem := int64(1)
		if sl, ok := info.TypeOf(call.Args[0]).Underlying().(*types.Slice); ok {
			elem = typeBytes(sl.Elem())
		}
		if n, ok := intConst(info, sizeArg); ok {
			site.Class = SizeConst
			site.Bytes = n * elem
			return site
		}
		if idx, ok := lenOfParam(info, params, sizeArg); ok {
			site.Class = SizeParamLen
			site.Param = idx
			return site
		}
		site.Class = SizeUnknown
		return site
	case isBuiltin(info, call, "new"):
		site := &AllocSite{Kind: AllocNew, Pos: call.Pos(), Class: SizeConst}
		if len(call.Args) == 1 {
			site.Bytes = typeBytes(info.TypeOf(call.Args[0]))
		}
		return site
	case isBuiltin(info, call, "append"):
		if len(call.Args) == 0 {
			return nil
		}
		// Only growth counts: x = append(x, ...) — appends assigned
		// elsewhere are a copy of the source, classified at their make.
		return &AllocSite{Kind: AllocAppend, Pos: call.Pos(), Class: SizeUnknown}
	}
	return nil
}

// intConst extracts a non-negative integer constant from e.
func intConst(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return 0, false
	}
	n, exact := constant.Int64Val(v)
	if !exact || n < 0 {
		return 0, false
	}
	return n, true
}

// lenOfParam recognizes len(p) (or p itself for an int parameter) where
// p is a parameter, returning its index.
func lenOfParam(info *types.Info, params map[*types.Var]int, e ast.Expr) (int, bool) {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok && isBuiltin(info, call, "len") && len(call.Args) == 1 {
		e = ast.Unparen(call.Args[0])
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return 0, false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return 0, false
	}
	idx, ok := params[v]
	return idx, ok
}

// sameRef reports whether two expressions name the same variable or the
// same field of the same variable (x vs x, s.buf vs s.buf).
func sameRef(info *types.Info, a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch a := a.(type) {
	case *ast.Ident:
		bid, ok := b.(*ast.Ident)
		return ok && info.ObjectOf(a) != nil && info.ObjectOf(a) == info.ObjectOf(bid)
	case *ast.SelectorExpr:
		bsel, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == bsel.Sel.Name && sameRef(info, a.X, bsel.X)
	}
	return false
}

// isZeroLen reports whether the slice expression is the scratch-reset
// idiom x[:0] (or x[0:0]).
func isZeroLen(info *types.Info, sl *ast.SliceExpr) bool {
	if sl.High == nil {
		return false
	}
	n, ok := intConst(info, sl.High)
	if !ok || n != 0 {
		return false
	}
	if sl.Low == nil {
		return true
	}
	low, ok := intConst(info, sl.Low)
	return ok && low == 0
}

// condMentionsCapOrLen reports whether the condition compares cap() or
// len() of something — the grow-once scratch guard
// `if cap(s.buf) < n { s.buf = make(...) }`.
func condMentionsCapOrLen(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if isBuiltin(info, call, "cap") || isBuiltin(info, call, "len") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSyncPoolMethod reports whether sel is a method named name on a
// sync.Pool value.
func isSyncPoolMethod(info *types.Info, sel *ast.SelectorExpr, name string) bool {
	if sel.Sel.Name != name {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync" && named.Obj().Name() == "Pool"
}

// isPoolNewFactory reports whether the function literal is assigned to a
// sync.Pool New field (composite literal or assignment), directly
// judging from the literal's parent in the stack.
func isPoolNewFactory(info *types.Info, stack []ast.Node, lit *ast.FuncLit) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] != lit {
			continue
		}
		if i == 0 {
			return false
		}
		switch p := stack[i-1].(type) {
		case *ast.KeyValueExpr:
			if key, ok := p.Key.(*ast.Ident); ok && key.Name == "New" && i >= 2 {
				if cl, ok := stack[i-2].(*ast.CompositeLit); ok {
					t := info.TypeOf(cl)
					if ptr, ok := t.(*types.Pointer); ok {
						t = ptr.Elem()
					}
					if named, ok := t.(*types.Named); ok {
						pkg := named.Obj().Pkg()
						return pkg != nil && pkg.Path() == "sync" && named.Obj().Name() == "Pool"
					}
				}
			}
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if sel, ok := ast.Unparen(l).(*ast.SelectorExpr); ok {
					if isSyncPoolMethod(info, sel, "New") {
						return true
					}
				}
			}
		}
		return false
	}
	return false
}

// allocTargetObj resolves the variable an allocating call is assigned to
// by inspecting the call's parent in the stack: v := make(...) or
// v = append(v, ...).
func allocTargetObj(info *types.Info, stack []ast.Node, call *ast.CallExpr) types.Object {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] != call {
			continue
		}
		if i == 0 {
			return nil
		}
		assign, ok := stack[i-1].(*ast.AssignStmt)
		if !ok {
			return nil
		}
		for j, rhs := range assign.Rhs {
			if ast.Unparen(rhs) != call || j >= len(assign.Lhs) {
				continue
			}
			if id, ok := ast.Unparen(assign.Lhs[j]).(*ast.Ident); ok {
				return info.ObjectOf(id)
			}
		}
		return nil
	}
	return nil
}

// allocTargetReused reports a reuse pattern on the allocation's target:
// the variable is resliced to zero length in this function, or carries
// an explicit preallocated capacity; for field appends, the field is
// resliced or was initialized with an explicit capacity.
func allocTargetReused(info *types.Info, stack []ast.Node, call *ast.CallExpr,
	resliced map[types.Object]bool, reslicedFields map[string]bool,
	prealloc, preallocField map[types.Object]bool) bool {
	if obj := allocTargetObj(info, stack, call); obj != nil {
		if resliced[obj] || prealloc[obj] {
			return true
		}
	}
	// append into a resliced or preallocated field:
	// s.buf = append(s.buf, ...).
	if isBuiltin(info, call, "append") && len(call.Args) > 0 {
		if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
			if reslicedFields[sel.Sel.Name] {
				return true
			}
			if field := info.ObjectOf(sel.Sel); field != nil && preallocField[field] {
				return true
			}
		}
	}
	return false
}

// appendReceiverField returns the receiver field name grown by
// s.f = append(s.f, ...) in a method with receiver s, or "".
func appendReceiverField(info *types.Info, stack []ast.Node, call *ast.CallExpr, decl *ast.FuncDecl) string {
	if !isBuiltin(info, call, "append") || len(call.Args) == 0 {
		return ""
	}
	sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return ""
	}
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return ""
	}
	if info.ObjectOf(id) != info.ObjectOf(decl.Recv.List[0].Names[0]) {
		return ""
	}
	// Growth only: the append must be stored back into the same field.
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] != call {
			continue
		}
		if i == 0 {
			return ""
		}
		if assign, ok := stack[i-1].(*ast.AssignStmt); ok {
			for j, rhs := range assign.Rhs {
				if ast.Unparen(rhs) == call && j < len(assign.Lhs) && sameRef(info, assign.Lhs[j], sel) {
					return sel.Sel.Name
				}
			}
		}
		return ""
	}
	return ""
}

// collectEscapes walks a body once and returns, per local ref variable,
// the strongest way its value may leave the call: stored through a
// selector, index or star expression, sent on a channel, or appended as
// an element into any of those (EscapeSink); or returned to the caller
// (EscapeReturn). Plain call arguments are treated as borrowed — a
// documented may-miss that keeps the summaries quiet on writer/handler
// plumbing.
func collectEscapes(info *types.Info, body ast.Node) map[types.Object]EscapeKind {
	escaped := make(map[types.Object]EscapeKind)
	markIdent := func(e ast.Expr, kind EscapeKind) {
		e = ast.Unparen(e)
		// A field read of a local (buf.data) escapes the local itself.
		if sel, ok := e.(*ast.SelectorExpr); ok {
			e = ast.Unparen(sel.X)
		}
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return
		}
		if v, ok := obj.(*types.Var); !ok || !hasRefComponent(v.Type()) {
			return
		}
		if kind > escaped[obj] {
			escaped[obj] = kind
		}
	}
	sinkLHS := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			return true
		case *ast.Ident:
			obj := info.ObjectOf(e)
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil {
				// Package-level variable.
				return v.Parent() == v.Pkg().Scope()
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				rhs := ast.Unparen(n.Rhs[i])
				// Element append into a sink or another variable:
				// dst = append(dst, v) stores v's reference.
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(info, call, "append") {
					if call.Ellipsis == token.NoPos { // append(dst, v...) copies
						for _, a := range call.Args[1:] {
							markIdent(a, EscapeSink)
						}
					}
					continue
				}
				if sinkLHS(lhs) {
					markIdent(rhs, EscapeSink)
				}
			}
		case *ast.SendStmt:
			markIdent(n.Value, EscapeSink)
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				markIdent(r, EscapeReturn)
			}
		}
		return true
	})
	return escaped
}

// allocEscapes classifies how the allocation's value may leave the
// call: either the call is itself stored through a sink LHS, returned
// or sent directly, or its target variable is in the escaped map.
func allocEscapes(info *types.Info, stack []ast.Node, call *ast.CallExpr, escaped map[types.Object]EscapeKind) EscapeKind {
	if obj := allocTargetObj(info, stack, call); obj != nil {
		return escaped[obj]
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] != call {
			continue
		}
		if i == 0 {
			return EscapeNone
		}
		switch p := stack[i-1].(type) {
		case *ast.AssignStmt:
			for j, rhs := range p.Rhs {
				if ast.Unparen(rhs) != call || j >= len(p.Lhs) {
					continue
				}
				switch ast.Unparen(p.Lhs[j]).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					return EscapeSink
				}
			}
		case *ast.ReturnStmt:
			return EscapeReturn
		case *ast.SendStmt:
			return EscapeSink
		}
		return EscapeNone
	}
	return EscapeNone
}

// WorkerContexts returns the package's worker-context functions for
// poolcheck: functions that spawn goroutines, everything reachable from
// them through in-package static calls, and everything reachable from a
// hot-annotated root. These are the bodies whose loops run per frame or
// per texel on worker goroutines.
func (mf *MemFacts) WorkerContexts(pass *Pass) map[*types.Func]*ast.FuncDecl {
	info := pass.Pkg.Info
	decls := make(map[*types.Func]*ast.FuncDecl)
	var roots []*types.Func
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[obj] = fn
			if mf.Spawners[obj] || pass.Facts.Hot[obj] {
				roots = append(roots, obj)
			}
		}
	}
	out := make(map[*types.Func]*ast.FuncDecl)
	queue := roots
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if _, seen := out[fn]; seen {
			continue
		}
		decl := decls[fn]
		if decl == nil {
			continue
		}
		out[fn] = decl
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, _ := calleeObj(info, call).(*types.Func)
			if callee == nil {
				return true
			}
			if _, declared := decls[callee]; declared {
				if _, seen := out[callee]; !seen {
					queue = append(queue, callee)
				}
			}
			return true
		})
	}
	return out
}
