package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// stdImporter type-checks standard-library dependencies from source; the
// toolchain no longer ships export data for them. One shared instance (and
// one shared FileSet) caches each stdlib package across every load and
// every test fixture.
var (
	sharedFset = token.NewFileSet()
	stdOnce    sync.Once
	stdImp     types.Importer
	newInfo    = func() *types.Info {
		return &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
	}
)

func stdImporter() types.Importer {
	stdOnce.Do(func() {
		stdImp = importer.ForCompiler(sharedFset, "source", nil)
	})
	return stdImp
}

// moduleImporter serves already-checked module packages from a map and
// defers everything else (the standard library) to the source importer.
type moduleImporter struct {
	module map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.module[path]; ok {
		return p, nil
	}
	return stdImporter().Import(path)
}

// ModuleRoot walks upward from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if p, err := strconv.Unquote(rest); err == nil {
				return p, nil
			}
			return rest, nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// parsedPkg is one directory's worth of parsed, not-yet-checked sources.
type parsedPkg struct {
	path    string // import path
	dir     string
	files   []*ast.File
	imports []string // module-internal imports only
}

// LoadModule parses and type-checks every non-test package of the module
// rooted at root, returning them in dependency order. Test files are
// excluded by design: the determinism and hot-path invariants apply to
// simulator code, and tests legitimately use t.TempDir, timeouts and
// unsorted iteration.
func LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	parsed := make(map[string]*parsedPkg)
	for _, dir := range dirs {
		pp, err := parseDir(root, modPath, dir)
		if err != nil {
			return nil, err
		}
		if pp != nil {
			parsed[pp.path] = pp
		}
	}

	order, err := topoSort(parsed)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{module: make(map[string]*types.Package)}
	pkgs := make([]*Package, 0, len(order))
	for _, path := range order {
		pp := parsed[path]
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(pp.path, sharedFset, pp.files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", pp.path, err)
		}
		imp.module[pp.path] = tpkg
		pkgs = append(pkgs, &Package{
			Path:  pp.path,
			Fset:  sharedFset,
			Files: pp.files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// parseDir parses the non-test .go files of dir, or returns nil when the
// directory holds no buildable Go sources.
func parseDir(root, modPath, dir string) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	importPath := modPath
	if rel != "." {
		importPath = modPath + "/" + filepath.ToSlash(rel)
	}
	pp := &parsedPkg{path: importPath, dir: dir, files: make([]*ast.File, 0, len(entries))}
	seen := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(sharedFset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if !buildConstraintsSatisfied(f) {
			continue
		}
		pp.files = append(pp.files, f)
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if (p == modPath || strings.HasPrefix(p, modPath+"/")) && !seen[p] {
				seen[p] = true
				pp.imports = append(pp.imports, p)
			}
		}
	}
	if len(pp.files) == 0 {
		return nil, nil
	}
	return pp, nil
}

// buildConstraintsSatisfied evaluates a file's //go:build line against the
// loader's base configuration: the host GOOS/GOARCH with no custom tags.
// Files gated behind tags like `texsan` (the runtime sanitizer build of
// internal/cache) are excluded, exactly as `go build ./...` excludes them,
// so tag-disjoint files never collide during type checking.
func buildConstraintsSatisfied(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			if !expr.Eval(baseTagSatisfied) {
				return false
			}
		}
	}
	return true
}

// baseTagSatisfied is the loader's default tag environment: host platform,
// the gc toolchain and every released language version; all custom tags
// (texsan, race, ...) are off.
func baseTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc", "unix":
		return true
	}
	return strings.HasPrefix(tag, "go1.")
}

// topoSort orders packages so every module-internal import precedes its
// importer, detecting cycles.
func topoSort(parsed map[string]*parsedPkg) ([]string, error) {
	paths := make([]string, 0, len(parsed))
	for p := range parsed {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int)
	var order []string
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", p)
		}
		state[p] = visiting
		pp := parsed[p]
		if pp != nil {
			deps := append([]string(nil), pp.imports...)
			sort.Strings(deps)
			for _, dep := range deps {
				if _, ok := parsed[dep]; !ok {
					return fmt.Errorf("lint: %s imports %s which has no sources", p, dep)
				}
				if err := visit(dep); err != nil {
					return err
				}
			}
			order = append(order, p)
		}
		state[p] = done
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// CheckSource parses and type-checks a single in-memory fixture package;
// the map is filename -> source. It is the test harness for analyzers.
func CheckSource(path string, files map[string]string) (*Package, error) {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	parsedFiles := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(sharedFset, n, files[n],
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsedFiles = append(parsedFiles, f)
	}
	info := newInfo()
	conf := types.Config{Importer: &moduleImporter{}}
	tpkg, err := conf.Check(path, sharedFset, parsedFiles, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Fset: sharedFset, Files: parsedFiles, Types: tpkg, Info: info}, nil
}
