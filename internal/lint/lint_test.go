package lint

import (
	"strings"
	"testing"
)

// checkFixture type-checks one in-memory file and runs the given analyzers.
func checkFixture(t *testing.T, name, src string, as ...*Analyzer) []Diagnostic {
	t.Helper()
	pkg, err := CheckSource(name, map[string]string{name + ".go": src})
	if err != nil {
		t.Fatalf("fixture does not type-check: %v", err)
	}
	return Run([]*Package{pkg}, as)
}

func TestIgnoreDirectives(t *testing.T) {
	src := `package fix

import "time"

func sameLine() time.Time {
	return time.Now() //texlint:ignore determinism used only for log timestamps
}

func lineAbove() time.Time {
	//texlint:ignore determinism
	return time.Now()
}

func ignoreAll() time.Time {
	//texlint:ignore all
	return time.Now()
}

func wrongAnalyzer() time.Time {
	//texlint:ignore errcheck
	return time.Now()
}

func commaList() time.Time {
	//texlint:ignore errcheck,determinism startup banner only
	return time.Now()
}

func unsuppressed() time.Time {
	return time.Now()
}
`
	diags := checkFixture(t, "ignores", src, Determinism)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (wrongAnalyzer + unsuppressed): %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "determinism" {
			t.Errorf("unexpected analyzer %q", d.Analyzer)
		}
	}
}

func TestDiagnosticsSortedAndFormatted(t *testing.T) {
	src := `package fix

import "time"

type s struct{ hostBytes int32 }

func b(x *s, n int32) {
	x.hostBytes += n
}

func a() time.Time {
	return time.Now()
}
`
	diags := checkFixture(t, "sorted", src, Determinism, Counterwidth)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	if diags[0].Pos.Line >= diags[1].Pos.Line {
		t.Errorf("diagnostics not sorted by line: %d then %d", diags[0].Pos.Line, diags[1].Pos.Line)
	}
	got := diags[0].String()
	if !strings.Contains(got, "sorted.go:8: [counterwidth]") {
		t.Errorf("String() = %q, want file:line: [analyzer] form", got)
	}
}

func TestByName(t *testing.T) {
	as, err := ByName([]string{"determinism", "errcheck"})
	if err != nil || len(as) != 2 {
		t.Fatalf("ByName(known) = %v, %v", as, err)
	}
	if _, err := ByName([]string{"nope"}); err == nil {
		t.Fatal("ByName(unknown) succeeded, want error")
	}
}

func TestAllHaveNamesAndDocs(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) < 5 {
		t.Errorf("suite has %d analyzers, want at least 5", len(seen))
	}
}
