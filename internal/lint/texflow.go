package lint

// This file is the texflow interprocedural layer: the function summaries
// shared by the concurrency-protocol analyzers (chanleak, chanprotocol,
// wgbalance) and the determinism-taint analyzer (mapiter). Where the
// texvet tier (cfg.go, dataflow.go) reasons within one function body,
// texflow computes per-function facts — what a function does to a channel
// or WaitGroup it receives, whether its return value is derived from map
// iteration order, whether a parameter flows into an emitting sink — and
// closes them over the module's static call graph by fixpoint iteration,
// so a call to a helper carries the helper's concurrency behaviour into
// the caller's analysis.
//
// The summaries are deliberately may-facts: "this function may send on its
// first channel parameter", never "must". Analyzers that need must-style
// reasoning (chanleak's every-path-to-exit check) combine the summaries
// with the CFG of the function under analysis. Ops performed inside a
// select statement are excluded from channel summaries: a select with
// several ready cases (or a default) is not a reliable block or release
// point, and the analyzers document this as a soundness limit.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ChanOps records what a function may do to one of its channel parameters,
// directly or through callees (transitively, via the fixpoint).
type ChanOps struct {
	Sends  bool
	Recvs  bool
	Closes bool
}

// WGOps records what a function may do to a *sync.WaitGroup parameter.
type WGOps struct {
	Adds  bool
	Dones bool
	Waits bool
}

// PublishMarker is the annotation naming a store-then-close publication
// contract: `//texsim:publishes <payload> <announce>` on a function
// declares that every close of a channel reached through a field or
// variable named <announce> must be preceded, in its own basic block, by a
// store into <payload>. It is the checkable encoding of the render farm's
// "store shards[f], then close(ready[f])" idiom.
const PublishMarker = "texsim:publishes"

// ClosesMarker designates a function as a sanctioned closer of a channel
// it did not create: `//texsim:closes <reason>`. chanprotocol flags closes
// of channel parameters without it.
const ClosesMarker = "texsim:closes"

// FlowFacts is the texflow interprocedural summary set, computed once per
// Run over every loaded package (see CollectFacts).
type FlowFacts struct {
	// ChanParams maps a function to the channel operations it may perform
	// on each parameter index.
	ChanParams map[*types.Func]map[int]*ChanOps
	// WGParams maps a function to the WaitGroup operations it may perform
	// on each *sync.WaitGroup parameter index.
	WGParams map[*types.Func]map[int]*WGOps
	// MapOrdered marks, per function, the result indices whose value may
	// be derived from map iteration order without an intervening sort.
	MapOrdered map[*types.Func]map[int]bool
	// ParamSinks marks parameter indices that may flow into an emitting
	// sink (output stream, telemetry emitter, trace writer) without an
	// intervening sort.
	ParamSinks map[*types.Func]map[int]bool
	// Publishes holds the raw fields of each function's texsim:publishes
	// annotation (expected: payload name, announce name).
	Publishes map[*types.Func][]string
	// Closers marks functions annotated texsim:closes.
	Closers map[*types.Func]bool
}

// flowDecl pairs a declared function with the package that type-checked it.
type flowDecl struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

// collectFlowFacts computes the texflow summaries for every function
// declared in the loaded packages, iterating to fixpoint so facts flow
// through call chains in any declaration order.
func collectFlowFacts(pkgs []*Package) *FlowFacts {
	ff := &FlowFacts{
		ChanParams: make(map[*types.Func]map[int]*ChanOps),
		WGParams:   make(map[*types.Func]map[int]*WGOps),
		MapOrdered: make(map[*types.Func]map[int]bool),
		ParamSinks: make(map[*types.Func]map[int]bool),
		Publishes:  make(map[*types.Func][]string),
		Closers:    make(map[*types.Func]bool),
	}
	var decls []flowDecl
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				decls = append(decls, flowDecl{fn: obj, decl: fn, pkg: pkg})
				ff.parseMarkers(obj, fn)
			}
		}
	}
	// Summaries only grow, so iterating until a full pass changes nothing
	// terminates; the bound guards against a logic error, not real code.
	for iter := 0; iter < 32; iter++ {
		changed := false
		for _, d := range decls {
			if ff.scanFunc(d) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return ff
}

// parseMarkers records texsim:publishes and texsim:closes annotations from
// the function's doc comment.
func (ff *FlowFacts) parseMarkers(obj *types.Func, fn *ast.FuncDecl) {
	if fn.Doc == nil {
		return
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, ok := strings.CutPrefix(text, PublishMarker); ok {
			ff.Publishes[obj] = strings.Fields(rest)
		}
		if strings.HasPrefix(text, ClosesMarker) {
			ff.Closers[obj] = true
		}
	}
}

// paramVars maps each named parameter object of the declaration to its
// index in the signature.
func paramVars(info *types.Info, decl *ast.FuncDecl) map[*types.Var]int {
	out := make(map[*types.Var]int)
	if decl.Type.Params == nil {
		return out
	}
	i := 0
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				out[v] = i
			}
			i++
		}
	}
	return out
}

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isWaitGroup reports whether t is sync.WaitGroup or *sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// scanFunc recomputes one function's summaries, returning whether anything
// new was learned.
func (ff *FlowFacts) scanFunc(d flowDecl) bool {
	info := d.pkg.Info
	params := paramVars(info, d.decl)
	changed := false

	chanOps := func(idx int) *ChanOps {
		m := ff.ChanParams[d.fn]
		if m == nil {
			m = make(map[int]*ChanOps)
			ff.ChanParams[d.fn] = m
		}
		if m[idx] == nil {
			m[idx] = &ChanOps{}
		}
		return m[idx]
	}
	wgOps := func(idx int) *WGOps {
		m := ff.WGParams[d.fn]
		if m == nil {
			m = make(map[int]*WGOps)
			ff.WGParams[d.fn] = m
		}
		if m[idx] == nil {
			m[idx] = &WGOps{}
		}
		return m[idx]
	}
	set := func(dst *bool) {
		if !*dst {
			*dst = true
			changed = true
		}
	}

	// chanParamOf resolves an expression to a channel parameter index.
	chanParamOf := func(e ast.Expr) (int, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return 0, false
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return 0, false
		}
		idx, ok := params[v]
		return idx, ok && isChanType(v.Type())
	}
	// wgParamOf resolves wg / &wg to a WaitGroup parameter index.
	wgParamOf := func(e ast.Expr) (int, bool) {
		e = ast.Unparen(e)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = u.X
		}
		id, ok := e.(*ast.Ident)
		if !ok {
			return 0, false
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return 0, false
		}
		idx, ok := params[v]
		return idx, ok && isWaitGroup(v.Type())
	}

	var walk func(n ast.Node, inSelect bool)
	walk = func(n ast.Node, inSelect bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.SelectStmt:
				// Channel ops under a select are not summarized (see the
				// file comment); everything else inside still is.
				walk(m.Body, true)
				return false
			case *ast.SendStmt:
				if idx, ok := chanParamOf(m.Chan); ok && !inSelect {
					set(&chanOps(idx).Sends)
				}
			case *ast.UnaryExpr:
				if m.Op == token.ARROW {
					if idx, ok := chanParamOf(m.X); ok && !inSelect {
						set(&chanOps(idx).Recvs)
					}
				}
			case *ast.RangeStmt:
				if idx, ok := chanParamOf(m.X); ok {
					set(&chanOps(idx).Recvs)
				}
			case *ast.CallExpr:
				if isBuiltin(info, m, "close") && len(m.Args) == 1 {
					if idx, ok := chanParamOf(m.Args[0]); ok {
						set(&chanOps(idx).Closes)
					}
					return true
				}
				// Method calls on a WaitGroup parameter.
				if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok {
					if idx, ok := wgParamOf(sel.X); ok {
						switch sel.Sel.Name {
						case "Add":
							set(&wgOps(idx).Adds)
						case "Done":
							set(&wgOps(idx).Dones)
						case "Wait":
							set(&wgOps(idx).Waits)
						}
					}
				}
				// Forwarding a parameter to a summarized callee inherits
				// the callee's ops for that position.
				callee, _ := calleeObj(info, m).(*types.Func)
				if callee == nil || callee == d.fn {
					return true
				}
				for ai, arg := range m.Args {
					if idx, ok := chanParamOf(arg); ok {
						if ops := ff.ChanParams[callee][ai]; ops != nil {
							if ops.Sends && !inSelect {
								set(&chanOps(idx).Sends)
							}
							if ops.Recvs && !inSelect {
								set(&chanOps(idx).Recvs)
							}
							if ops.Closes {
								set(&chanOps(idx).Closes)
							}
						}
					}
					if idx, ok := wgParamOf(arg); ok {
						if ops := ff.WGParams[callee][ai]; ops != nil {
							if ops.Adds {
								set(&wgOps(idx).Adds)
							}
							if ops.Dones {
								set(&wgOps(idx).Dones)
							}
							if ops.Waits {
								set(&wgOps(idx).Waits)
							}
						}
					}
				}
			}
			return true
		})
	}
	walk(d.decl.Body, false)

	// Map-order taint: does any return value derive from map iteration
	// order, and does any parameter reach a sink unsorted?
	tt := newTaintTracker(info, ff)
	tt.onReturn = func(_ *ast.ReturnStmt, ts []*taint) {
		for i, t := range ts {
			if t == nil || !t.mapOrder {
				continue
			}
			m := ff.MapOrdered[d.fn]
			if m == nil {
				m = make(map[int]bool)
				ff.MapOrdered[d.fn] = m
			}
			if !m[i] {
				m[i] = true
				changed = true
			}
		}
	}
	for v := range params {
		tt.state[v] = &taint{params: map[*types.Var]bool{v: true}}
	}
	tt.onSink = func(_ ast.Node, t *taint, _ string) {
		for pv := range t.params {
			idx, ok := params[pv]
			if !ok {
				continue
			}
			m := ff.ParamSinks[d.fn]
			if m == nil {
				m = make(map[int]bool)
				ff.ParamSinks[d.fn] = m
			}
			if !m[idx] {
				m[idx] = true
				changed = true
			}
		}
	}
	tt.walk(d.decl.Body)

	return changed
}

// ChanArgOps returns the summarized channel ops a call may perform on the
// given variable when it appears as a plain-identifier argument. It is the
// bridge analyzers use to see through helper calls like drain(ch).
func (ff *FlowFacts) ChanArgOps(info *types.Info, call *ast.CallExpr, v *types.Var) ChanOps {
	var out ChanOps
	callee, _ := calleeObj(info, call).(*types.Func)
	if callee == nil || ff == nil {
		return out
	}
	for ai, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok || info.Uses[id] != v {
			continue
		}
		if ops := ff.ChanParams[callee][ai]; ops != nil {
			out.Sends = out.Sends || ops.Sends
			out.Recvs = out.Recvs || ops.Recvs
			out.Closes = out.Closes || ops.Closes
		}
	}
	return out
}

// WGArgOps returns the summarized WaitGroup ops a call may perform on the
// given variable passed as wg or &wg.
func (ff *FlowFacts) WGArgOps(info *types.Info, call *ast.CallExpr, v *types.Var) WGOps {
	var out WGOps
	callee, _ := calleeObj(info, call).(*types.Func)
	if callee == nil || ff == nil {
		return out
	}
	for ai, arg := range call.Args {
		e := ast.Unparen(arg)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = u.X
		}
		id, ok := e.(*ast.Ident)
		if !ok || info.Uses[id] != v {
			continue
		}
		if ops := ff.WGParams[callee][ai]; ops != nil {
			out.Adds = out.Adds || ops.Adds
			out.Dones = out.Dones || ops.Dones
			out.Waits = out.Waits || ops.Waits
		}
	}
	return out
}
