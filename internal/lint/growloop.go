package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Growloop is the texmem append-preallocation analyzer. Go's append
// grows a slice by a bounded factor (~1.25x at size), so filling a
// slice of final length n element-by-element from zero capacity
// allocates and copies a geometric ladder of intermediate arrays — the
// cumulative allocation is several times the final size, all garbage.
// When the iteration count is statically in hand at loop entry, the fix
// is one line: make(..., 0, n).
//
// Growloop flags an unconditional single-element append to a target
// that provably starts empty — a local declared `var x []T`, `x :=
// []T{}`, `x = nil` or `x := make([]T, 0)`, or a field a local
// composite literal leaves unset — inside a counted loop whose trip
// count is derivable: `for i := 0; i < n; i++` or `for range xs`, with
// the bound not reassigned in the body. The bound is the final length
// only when nothing else feeds the slice, so two screens apply: the
// target must have exactly one append in the function, and when the
// counted loop is itself nested in another loop, the target must be
// declared inside that outer loop (a target declared further out
// accumulates across outer iterations and its final length is not this
// loop's bound). Targets with a reuse pattern are skipped: an explicit
// make capacity, or the x = x[:0] scratch reset (its steady-state
// capacity amortizes growth). Conditional appends, multi-element
// appends and uncounted loops have no derivable final length and are
// not flagged.
var Growloop = &Analyzer{
	Name: "growloop",
	Doc:  "flag append-in-loop without preallocation where the final length is statically derivable",
	Run:  runGrowloop,
}

func runGrowloop(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkGrowBody(pass, fn)
		}
	}
}

// growScope is the per-function pre-pass: which locals provably start
// empty, which have known capacity or are resliced, and which locals
// hold a composite literal whose unset fields start nil.
type growScope struct {
	pass      *Pass
	decl      *ast.FuncDecl
	emptyDecl map[types.Object]bool
	capKnown  map[types.Object]bool
	resliced  map[types.Object]bool
	localLits map[types.Object]*ast.CompositeLit
	// appends counts `x = append(x, ...)` statements per target object;
	// more than one means the counted bound is not the final length.
	appends map[types.Object]int
	// setFields holds field objects assigned directly somewhere in the
	// function (s.f = make(...), s.f = other): their start state at the
	// loop is not the literal's zero value, so they are never flagged.
	setFields map[types.Object]bool
}

func checkGrowBody(pass *Pass, decl *ast.FuncDecl) {
	info := pass.Pkg.Info
	gs := &growScope{
		pass:      pass,
		decl:      decl,
		emptyDecl: make(map[types.Object]bool),
		capKnown:  make(map[types.Object]bool),
		resliced:  make(map[types.Object]bool),
		localLits: make(map[types.Object]*ast.CompositeLit),
		appends:   make(map[types.Object]int),
		setFields: make(map[types.Object]bool),
	}

	classify := func(id *ast.Ident, rhs ast.Expr) {
		obj := info.ObjectOf(id)
		if obj == nil {
			return
		}
		switch rhs := ast.Unparen(rhs).(type) {
		case *ast.CallExpr:
			if isBuiltin(info, rhs, "make") {
				if len(rhs.Args) >= 3 {
					gs.capKnown[obj] = true
				} else if len(rhs.Args) == 2 {
					if n, ok := intConst(info, rhs.Args[1]); ok && n == 0 {
						gs.emptyDecl[obj] = true
					}
				}
			}
		case *ast.CompositeLit:
			if len(rhs.Elts) == 0 {
				if _, isSlice := typeOfObj(obj).(*types.Slice); isSlice {
					gs.emptyDecl[obj] = true
					return
				}
			}
			gs.localLits[obj] = rhs
		case *ast.UnaryExpr:
			if rhs.Op == token.AND {
				if cl, ok := rhs.X.(*ast.CompositeLit); ok {
					gs.localLits[obj] = cl
				}
			}
		case *ast.SliceExpr:
			if isZeroLen(info, rhs) && sameRef(info, id, rhs.X) {
				gs.resliced[obj] = true
			}
		case *ast.Ident:
			if rhs.Name == "nil" {
				gs.emptyDecl[obj] = true
			}
		}
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						classify(name, vs.Values[i])
						continue
					}
					obj := info.ObjectOf(name)
					if obj == nil {
						continue
					}
					if _, isSlice := typeOfObj(obj).(*types.Slice); isSlice {
						gs.emptyDecl[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr); ok && isBuiltin(info, call, "append") {
					if obj := appendKey(info, lhs); obj != nil {
						gs.appends[obj]++
					}
				} else if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					// A non-append store to a field means its state at
					// the loop is not the enclosing literal's zero value.
					if field := info.ObjectOf(sel.Sel); field != nil {
						gs.setFields[field] = true
					}
				}
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					classify(id, n.Rhs[i])
				}
			}
		}
		return true
	})

	// Walk with an explicit node stack so each counted loop knows its
	// nearest enclosing loop body (ast.Inspect signals post-order with a
	// nil node).
	var stack []ast.Node
	enclosingLoopBody := func() *ast.BlockStmt {
		for i := len(stack) - 1; i >= 0; i-- {
			switch outer := stack[i].(type) {
			case *ast.ForStmt:
				return outer.Body
			case *ast.RangeStmt:
				return outer.Body
			}
		}
		return nil
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch loop := n.(type) {
		case *ast.ForStmt:
			if bound, bx, ok := countedBound(info, loop); ok && !identReassigned(info, loop.Body, bx) {
				gs.checkCountedLoop(loop.Body, bound, enclosingLoopBody())
			}
		case *ast.RangeStmt:
			if bound, ok := rangeBound(info, loop); ok {
				gs.checkCountedLoop(loop.Body, bound, enclosingLoopBody())
			}
		}
		stack = append(stack, n)
		return true
	})
}

// appendKey maps an append target expression to the object whose append
// count it contributes to: the variable itself for identifiers, the
// field object for selector targets.
func appendKey(info *types.Info, lhs ast.Expr) types.Object {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.SelectorExpr:
		return info.ObjectOf(e.Sel)
	}
	return nil
}

// typeOfObj returns the object's underlying type, nil-safe.
func typeOfObj(obj types.Object) types.Type {
	if obj == nil || obj.Type() == nil {
		return nil
	}
	return obj.Type().Underlying()
}

// countedBound recognizes `for i := 0; i < n; i++` (and <=) and returns
// the bound's rendering plus its identifier object when the bound is a
// plain variable (for the reassignment check).
func countedBound(info *types.Info, loop *ast.ForStmt) (string, types.Object, bool) {
	if loop.Init == nil || loop.Cond == nil || loop.Post == nil {
		return "", nil, false
	}
	init, ok := loop.Init.(*ast.AssignStmt)
	if !ok || len(init.Lhs) != 1 || init.Tok != token.DEFINE {
		return "", nil, false
	}
	iv, ok := ast.Unparen(init.Lhs[0]).(*ast.Ident)
	if !ok {
		return "", nil, false
	}
	if inc, ok := loop.Post.(*ast.IncDecStmt); !ok || inc.Tok != token.INC {
		return "", nil, false
	}
	cond, ok := ast.Unparen(loop.Cond).(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return "", nil, false
	}
	cid, ok := ast.Unparen(cond.X).(*ast.Ident)
	if !ok || cid.Name != iv.Name {
		return "", nil, false
	}
	switch b := ast.Unparen(cond.Y).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(b)
		switch obj.(type) {
		case *types.Var, *types.Const:
			return b.Name, obj, true
		}
	case *ast.SelectorExpr:
		return boundText(b), nil, true
	case *ast.BasicLit:
		return b.Value, nil, true
	case *ast.CallExpr:
		if isBuiltin(info, b, "len") && len(b.Args) == 1 {
			return "len(" + boundText(b.Args[0]) + ")", nil, true
		}
	}
	return "", nil, false
}

// rangeBound derives the trip-count rendering of a range loop: len(xs)
// for slices, arrays, maps and strings, the value itself for an integer
// range. Channel ranges have no derivable count.
func rangeBound(info *types.Info, loop *ast.RangeStmt) (string, bool) {
	t := info.TypeOf(loop.X)
	if t == nil {
		return "", false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Map:
		return "len(" + boundText(loop.X) + ")", true
	case *types.Pointer: // *[N]T array pointer
		if _, ok := u.Elem().Underlying().(*types.Array); ok {
			return "len(" + boundText(loop.X) + ")", true
		}
	case *types.Basic:
		if u.Info()&types.IsString != 0 {
			return "len(" + boundText(loop.X) + ")", true
		}
		if u.Info()&types.IsInteger != 0 {
			return boundText(loop.X), true
		}
	}
	return "", false
}

// identReassigned reports whether the bound object is assigned inside
// the loop body (which would invalidate the derived trip count). A nil
// bound object (selector or literal bounds) is never reassigned.
func identReassigned(info *types.Info, body *ast.BlockStmt, bound types.Object) bool {
	if bound == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && info.ObjectOf(id) == bound {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && info.ObjectOf(id) == bound {
				found = true
			}
		}
		return !found
	})
	return found
}

// boundText renders simple bound expressions (identifiers and selector
// chains) for the diagnostic.
func boundText(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return boundText(e.X) + "." + e.Sel.Name
	}
	return "n"
}

// checkCountedLoop flags unconditional single-element appends without
// preallocation directly in the loop body's statement list. outer is
// the body of the nearest enclosing loop (nil at top level).
func (gs *growScope) checkCountedLoop(body *ast.BlockStmt, bound string, outer *ast.BlockStmt) {
	info := gs.pass.Pkg.Info
	// A target resliced to zero inside the loop body is the scratch
	// idiom; collect before judging.
	loopResliced := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range assign.Lhs {
			if i >= len(assign.Rhs) {
				break
			}
			if sl, ok := ast.Unparen(assign.Rhs[i]).(*ast.SliceExpr); ok && isZeroLen(info, sl) && sameRef(info, lhs, sl.X) {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					loopResliced[info.ObjectOf(id)] = true
				}
			}
		}
		return true
	})

	for _, stmt := range body.List {
		assign, ok := stmt.(*ast.AssignStmt)
		if !ok {
			continue
		}
		for i, lhs := range assign.Lhs {
			if i >= len(assign.Rhs) {
				break
			}
			call, ok := ast.Unparen(assign.Rhs[i]).(*ast.CallExpr)
			if !ok || !isBuiltin(info, call, "append") {
				continue
			}
			// Growth form only: x = append(x, elem) with one element and
			// no spread.
			if len(call.Args) != 2 || call.Ellipsis.IsValid() || !sameRef(info, lhs, call.Args[0]) {
				continue
			}
			if gs.appends[appendKey(info, lhs)] != 1 {
				continue // other appends feed the slice; bound != final length
			}
			if !gs.unpreallocated(lhs, loopResliced, outer) {
				continue
			}
			gs.pass.Reportf(call.Pos(),
				"%s appends to %s once per iteration of a loop bounded by %s without preallocation; make it with capacity %s before the loop",
				gs.decl.Name.Name, boundText(lhs), bound, bound)
		}
	}
}

// unpreallocated decides whether the append target provably starts with
// no capacity at the counted loop's entry: a local declared empty, or a
// field of a local composite literal that does not initialize it. When
// the counted loop is nested in an outer loop, the target must be
// declared inside that outer loop — otherwise it accumulates across
// outer iterations and the bound is not its final length.
func (gs *growScope) unpreallocated(lhs ast.Expr, loopResliced map[types.Object]bool, outer *ast.BlockStmt) bool {
	info := gs.pass.Pkg.Info
	declaredFresh := func(obj types.Object) bool {
		return outer == nil || (obj.Pos() >= outer.Pos() && obj.Pos() <= outer.End())
	}
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil || gs.capKnown[obj] || gs.resliced[obj] || loopResliced[obj] {
			return false
		}
		return gs.emptyDecl[obj] && declaredFresh(obj)
	case *ast.SelectorExpr:
		base, ok := ast.Unparen(e.X).(*ast.Ident)
		if !ok {
			return false
		}
		if field := info.ObjectOf(e.Sel); field == nil || gs.setFields[field] {
			return false
		}
		baseObj := info.ObjectOf(base)
		lit, ok := gs.localLits[baseObj]
		if !ok || !declaredFresh(baseObj) {
			return false
		}
		// The composite literal must leave this field unset (nil).
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				return false // positional literal: fields unknown
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == e.Sel.Name {
				return false
			}
		}
		return true
	}
	return false
}
