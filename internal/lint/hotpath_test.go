package lint

import "testing"

func TestHotpath(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"fmt", `package fix

import "fmt"

// Access is per-texel.
//
// texlint:hotpath
func Access(x int) string {
	return fmt.Sprintf("%d", x) //want calls fmt.Sprintf
}

// Cold is not annotated, so formatting is fine.
func Cold(x int) string {
	return fmt.Sprintf("%d", x)
}
`},
		{"closure", `package fix

// texlint:hotpath
func Access(xs []int) int {
	f := func(v int) int { return v * 2 } //want allocates a closure
	return f(xs[0])
}
`},
		{"assert-and-convert", `package fix

import "io"

type buf struct{}

func (buf) Write(p []byte) (int, error) { return len(p), nil }

// texlint:hotpath
func Access(v any, b buf) (io.Writer, bool) {
	_, ok := v.(io.Writer) //want type assertion
	w := io.Writer(b)      //want converts
	return w, ok
}
`},
		{"panic-dynamic", `package fix

// texlint:hotpath
func Access(i, n int) {
	if i >= n {
		panic("fix: index out of range") // constant message: allowed
	}
	if i < 0 {
		panic("fix: bad index " + string(rune(i))) //want non-constant
	}
}
`},
		{"defer-go", `package fix

// texlint:hotpath
func Access(f func()) {
	defer f() //want defers
	go f()    //want goroutine
}
`},
		{"clean", `package fix

type cache struct {
	tags []uint64
	hits int64
}

// Access is the real shape of the simulator's hot path: integer ops,
// slice indexing, field updates.
//
// texlint:hotpath
func (c *cache) Access(tag uint64, set uint32) bool {
	i := int(set) % len(c.tags)
	if c.tags[i] == tag {
		c.hits++
		return true
	}
	c.tags[i] = tag
	return false
}
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			testAnalyzer(t, Hotpath, "hotpath_"+tc.name, tc.src)
		})
	}
}
