package lint

import (
	"go/ast"
	"go/types"
)

// Retain is the texmem backing-array pinning analyzer. A sub-slice
// shares its backing array with the buffer it was cut from: storing
// `buf[a:b]` into a long-lived sink — a struct field, a results slot, a
// map, a channel — keeps the entire decoded buffer reachable for as
// long as the slot lives, which both defeats pooling (the buffer can
// never be reused while a sub-slice pins it) and silently multiplies
// the live heap by the full buffer size per retained window.
//
// Retain flags stores of a sub-slice expression over a local slice
// variable or slice parameter into such a sink. Copies do not pin and
// are not flagged: `append(dst, buf[a:b]...)` copies the elements, as
// do string conversions and explicit copy() calls.
var Retain = &Analyzer{
	Name: "retain",
	Doc:  "flag sub-slices of buffers stored into long-lived sinks, pinning the backing array",
	Run:  runRetain,
}

func runRetain(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkRetainBody(pass, fn)
		}
	}
}

func checkRetainBody(pass *Pass, decl *ast.FuncDecl) {
	info := pass.Pkg.Info

	// report flags one pinned sub-slice store.
	report := func(pos ast.Node, sl *ast.SliceExpr, sink string) {
		base, _ := ast.Unparen(sl.X).(*ast.Ident)
		name := "a buffer"
		if base != nil {
			name = base.Name
		}
		pass.Reportf(pos.Pos(),
			"storing a sub-slice of %s into %s pins the whole backing array, blocking reuse of the buffer; copy the bytes instead",
			name, sink)
	}

	// pinnedSub recognizes buf[a:b] over a local or parameter slice
	// variable. The reslice-to-zero scratch reset x = x[:0] is the reuse
	// idiom itself and never pins anything beyond its own buffer.
	pinnedSub := func(e ast.Expr) *ast.SliceExpr {
		sl, ok := ast.Unparen(e).(*ast.SliceExpr)
		if !ok {
			return nil
		}
		id, ok := ast.Unparen(sl.X).(*ast.Ident)
		if !ok {
			return nil
		}
		v, ok := info.ObjectOf(id).(*types.Var)
		if !ok {
			return nil
		}
		if _, isSlice := v.Type().Underlying().(*types.Slice); !isSlice {
			return nil
		}
		return sl
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				rhs := ast.Unparen(n.Rhs[i])
				// dst = append(dst, buf[a:b]) stores the slice header as
				// an element (pins); append(dst, buf[a:b]...) copies.
				if call, ok := rhs.(*ast.CallExpr); ok {
					if isBuiltin(info, call, "append") && !call.Ellipsis.IsValid() {
						for _, arg := range call.Args[1:] {
							if sl := pinnedSub(arg); sl != nil && sinkExpr(info, n.Lhs[i]) {
								report(arg, sl, "an element of "+exprSink(n.Lhs[i]))
							}
						}
					}
					continue
				}
				sl := pinnedSub(rhs)
				if sl == nil {
					continue
				}
				// The scratch reset x = x[:0] re-slices in place.
				if sameRef(info, lhs, sl.X) {
					continue
				}
				if sinkExpr(info, lhs) {
					report(n.Rhs[i], sl, exprSink(lhs))
				}
			}
		case *ast.SendStmt:
			if sl := pinnedSub(n.Value); sl != nil {
				report(n.Value, sl, "a channel")
			}
		}
		return true
	})
}

// sinkExpr reports whether storing through lhs publishes to long-lived
// state: a field, an indexed slot, a dereference, or a package-level
// variable.
func sinkExpr(info *types.Info, lhs ast.Expr) bool {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		if v, ok := info.ObjectOf(e).(*types.Var); ok && v.Pkg() != nil {
			return v.Parent() == v.Pkg().Scope()
		}
	}
	return false
}

// exprSink names the sink category for diagnostics.
func exprSink(lhs ast.Expr) string {
	switch ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return "a struct field"
	case *ast.IndexExpr:
		return "an indexed slot"
	case *ast.StarExpr:
		return "shared state through a pointer"
	}
	return "a package-level variable"
}
