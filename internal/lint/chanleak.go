package lint

// chanleak finds goroutines that can block forever because every peer that
// would unblock them may be gone: a worker spawned to send its result on an
// unbuffered channel leaks when an error path returns from the spawning
// function before the receive. This is the bug class that silently strands
// render-farm and sweep workers — the miss counters still add up, the
// process just accretes parked goroutines.
//
// The check is deliberately narrow to stay quiet: it considers only
// channels created locally with make(chan T) (unbuffered), whose variable
// never escapes the function (not returned, not stored into a structure,
// not passed to a non-module function). For each go statement that sends
// or receives on such a channel — directly in a function literal, or via a
// module function whose texflow summary says so — it walks the spawner's
// CFG from the go statement and reports when an exit is reachable with no
// releasing operation (a receive for a blocked sender; a send or close for
// a blocked receiver) on the path. Deferred releases cover every exit, and
// a second goroutine performing the complementary operation disables the
// check, since goroutine-to-goroutine lifetimes are out of scope.
//
// Known limits: operations inside select statements are ignored (a select
// is not a guaranteed block or release), and a releasing operation that
// itself sits behind a condition on an unrelated error is trusted.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Chanleak reports goroutines that may block forever on a channel no live
// peer will touch.
var Chanleak = &Analyzer{
	Name: "chanleak",
	Doc:  "goroutine may block forever on a channel abandoned by its spawner",
	Run:  runChanleak,
}

func runChanleak(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, sc := range scopesOf(file) {
			chanleakScope(pass, sc)
		}
	}
}

// localUnbufferedChans finds channels created in this scope via
// ch := make(chan T) with no buffer (or a constant-zero buffer).
func localUnbufferedChans(pass *Pass, sc funcScope) []*types.Var {
	info := pass.Pkg.Info
	var out []*types.Var
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltin(info, call, "make") || len(call.Args) == 0 {
			return
		}
		if len(call.Args) >= 2 {
			tv, ok := info.Types[call.Args[1]]
			if !ok || tv.Value == nil || tv.Value.String() != "0" {
				return
			}
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		v, ok := info.Defs[id].(*types.Var)
		if ok && isChanType(v.Type()) {
			out = append(out, v)
		}
	}
	inspectScope(sc.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// chanEscapes reports whether v is used anywhere in the scope (nested
// literals included) outside the vocabulary the analyzer understands:
// send/receive/range/close, nil comparison, len/cap, and arguments to
// module functions with texflow summaries. Returns, stores and calls into
// foreign code all count as escapes and silence the check.
func chanEscapes(pass *Pass, sc funcScope, v *types.Var) bool {
	info := pass.Pkg.Info
	safe := make(map[ast.Node]bool)
	mark := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok && info.Uses[id] == v {
			safe[id] = true
		}
	}
	escaped := false
	ast.Inspect(sc.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			mark(n.Chan)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				mark(n.X)
			}
		case *ast.RangeStmt:
			mark(n.X)
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				mark(n.X)
				mark(n.Y)
			}
		case *ast.CallExpr:
			if isBuiltin(info, n, "close") || isBuiltin(info, n, "len") || isBuiltin(info, n, "cap") {
				for _, a := range n.Args {
					mark(a)
				}
				return true
			}
			if isModuleFunc(pass.Facts, calleeObj(info, n)) {
				for _, a := range n.Args {
					mark(a)
				}
			}
		}
		return true
	})
	ast.Inspect(sc.body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if ok && info.Uses[id] == v && !safe[id] {
			escaped = true
		}
		return !escaped
	})
	return escaped
}

// goChanOps returns what the goroutine started by g may do to v: the ops
// of a direct function-literal body, or the summarized ops of a module
// function call like go worker(ch).
func goChanOps(pass *Pass, flow *FlowFacts, g *ast.GoStmt, v *types.Var) ChanOps {
	info := pass.Pkg.Info
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return chanOpsIn(info, flow, lit.Body, v)
	}
	if flow != nil {
		return flow.ChanArgOps(info, g.Call, v)
	}
	return ChanOps{}
}

func chanleakScope(pass *Pass, sc funcScope) {
	info := pass.Pkg.Info
	flow := pass.Facts.Flow
	chans := localUnbufferedChans(pass, sc)
	if len(chans) == 0 {
		return
	}

	// Goroutines spawned in this scope (not in nested literals — those are
	// their own scopes).
	var gos []*ast.GoStmt
	inspectScope(sc.body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			gos = append(gos, g)
		}
		return true
	})
	if len(gos) == 0 {
		return
	}

	var cfg *CFG // built lazily, shared across channels
	for _, v := range chans {
		if chanEscapes(pass, sc, v) {
			continue
		}
		// Deferred releases in the spawner cover every exit path.
		var deferred ChanOps
		inspectScope(sc.body, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				ops := chanOpsIn(info, flow, d, v)
				if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
					inner := chanOpsIn(info, flow, lit.Body, v)
					ops.Sends = ops.Sends || inner.Sends
					ops.Recvs = ops.Recvs || inner.Recvs
					ops.Closes = ops.Closes || inner.Closes
				}
				deferred.Sends = deferred.Sends || ops.Sends
				deferred.Recvs = deferred.Recvs || ops.Recvs
				deferred.Closes = deferred.Closes || ops.Closes
			}
			return true
		})

		for i, g := range gos {
			ops := goChanOps(pass, flow, g, v)
			if !ops.Sends && !ops.Recvs {
				continue
			}
			// A complementary op in another goroutine couples the two
			// lifetimes; out of scope.
			peer := false
			for j, other := range gos {
				if i == j {
					continue
				}
				oops := goChanOps(pass, flow, other, v)
				if (ops.Sends && oops.Recvs) || (ops.Recvs && (oops.Sends || oops.Closes)) {
					peer = true
				}
			}
			if peer {
				continue
			}
			releases := func(n ast.Node) bool {
				switch n.(type) {
				case *ast.GoStmt, *ast.DeferStmt:
					// Other goroutines were handled above; defers were
					// checked for full coverage already.
					return false
				}
				rel := chanOpsIn(info, flow, n, v)
				if ops.Sends && rel.Recvs {
					return true
				}
				if ops.Recvs && (rel.Sends || rel.Closes) {
					return true
				}
				return false
			}
			if ops.Sends && deferred.Recvs {
				continue
			}
			if ops.Recvs && (deferred.Sends || deferred.Closes) {
				continue
			}
			if cfg == nil {
				cfg = BuildCFG(sc.body)
			}
			if canExitWithout(cfg, g, releases) {
				verb := "sending on"
				release := "receiving from"
				if !ops.Sends {
					verb = "receiving from"
					release = "sending on or closing"
				}
				pass.Reportf(g.Pos(), "goroutine may block forever %s %s: the function can return without %s it (goroutine leak)",
					verb, v.Name(), release)
			}
		}
	}
}
