package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Sharedstate is the texvet concurrency analyzer: it finds shared mutable
// state escaping into goroutines without synchronization. The simulator's
// parallel layers (the experiment prefetcher today, sharded tracing
// tomorrow) must keep every result a pure function of the job list —
// an unsynchronized captured write not only races, it makes the merged
// output depend on goroutine scheduling, which silently perturbs the
// reproduced tables.
//
// Three rules, all CFG/dataflow-driven:
//
//  1. A `go func(){...}()` literal that writes (directly or through an
//     alias-lite pointer) a variable captured from the enclosing function
//     conflicts with any access to that variable reachable from the go
//     statement, unless every path to the access crosses a
//     synchronization barrier (WaitGroup.Wait, Mutex.Lock, Once.Do,
//     channel operation, close). Symmetrically, a capture the goroutine
//     only reads conflicts with any spawner-side write reachable from
//     the spawn without a barrier.
//  2. A go statement that captures (rather than receives as an argument)
//     an iteration variable of an enclosing loop is flagged: even with
//     per-iteration loop variables, the capture makes the goroutine's
//     input implicit and fragile under refactoring.
//  3. A reference-typed value sent over a channel and then written on the
//     sender side (reachable, no barrier) is flagged: the receiver and
//     the sender share the referent.
var Sharedstate = &Analyzer{
	Name: "sharedstate",
	Doc:  "forbid unsynchronized shared state captured by goroutines or sent over channels",
	Run:  runSharedstate,
}

func runSharedstate(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSharedState(pass, fn)
		}
	}
}

func checkSharedState(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	cfg := BuildCFG(fn.Body)
	df := ReachingDefs(cfg, info)
	barrier := func(n ast.Node) bool { return isBarrierNode(info, n) }

	// Loop stack: iteration variables of the loops enclosing each node.
	type loopVars = map[*types.Var]bool
	var stack []loopVars

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			lv := loopVars{}
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if v, ok := info.ObjectOf(id).(*types.Var); ok {
						lv[v] = true
					}
				}
			}
			stack = append(stack, lv)
			ast.Inspect(n.Body, walk)
			stack = stack[:len(stack)-1]
			return false
		case *ast.ForStmt:
			lv := loopVars{}
			if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if v, ok := info.ObjectOf(id).(*types.Var); ok {
							lv[v] = true
						}
					}
				}
			}
			stack = append(stack, lv)
			if n.Body != nil {
				ast.Inspect(n.Body, walk)
			}
			stack = stack[:len(stack)-1]
			return false
		case *ast.GoStmt:
			lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoLiteral(pass, cfg, df, n, lit, stack, barrier)
			// The literal's own body may spawn further goroutines.
			return true
		case *ast.SendStmt:
			checkSend(pass, cfg, n, barrier)
			return true
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
}

// checkGoLiteral applies rules 1 and 2 to one `go func(){...}(...)`.
func checkGoLiteral(pass *Pass, cfg *CFG, df *DefFlow, g *ast.GoStmt, lit *ast.FuncLit,
	stack []map[*types.Var]bool, barrier func(ast.Node) bool) {
	info := pass.Pkg.Info

	captured := capturedVars(info, lit)

	// Rule 2: loop-variable capture.
	for _, frame := range stack {
		for v := range frame {
			if captured[v] {
				pass.Reportf(g.Pos(),
					"goroutine captures loop variable %s; pass it as an argument instead", v.Name())
			}
		}
	}

	// Rule 1: captured writes vs reachable outside accesses.
	written := writtenCaptures(info, lit, captured)
	reach := ReachableFrom(cfg, g, barrier)

	// Symmetric direction: a capture the goroutine only reads races with
	// any spawner-side write reachable from the spawn without a barrier.
	for v := range captured {
		if _, goroutineWrites := written[v]; goroutineWrites {
			continue // the write-side loop below owns these
		}
		if isSyncType(v.Type()) || isLoopVar(stack, v) {
			continue // sync types synchronize; loop vars are rule 2's
		}
		for _, n := range reach {
			if n == g || contains(lit, n) {
				continue
			}
			if writesVar(info, n, v) || aliasedWrite(df, info, n, v) {
				pass.Reportf(g.Pos(),
					"captured %s is written after the go statement without synchronization while the goroutine reads it", v.Name())
				break
			}
		}
	}
	if len(written) == 0 {
		return
	}
	for v := range written {
		if isSyncType(v.Type()) {
			continue
		}
		for _, n := range reach {
			if n == g || contains(lit, n) {
				continue
			}
			if accessesVar(info, n, v, lit) || aliasedWrite(df, info, n, v) {
				pass.Reportf(g.Pos(),
					"goroutine writes captured %s, which is also accessed after the go statement without synchronization", v.Name())
				break
			}
		}
		// Two goroutines from the same loop writing the same capture race
		// with each other even if the spawner never touches it again —
		// unless each write lands in a distinct element (written[v] is
		// false for element-indexed writes, see writtenCaptures).
		if written[v] && insideLoop(stack) {
			pass.Reportf(g.Pos(),
				"goroutines spawned in a loop write captured %s without synchronization", v.Name())
		}
	}
}

func insideLoop(stack []map[*types.Var]bool) bool { return len(stack) > 0 }

// isLoopVar reports whether v is an iteration variable of any enclosing
// loop.
func isLoopVar(stack []map[*types.Var]bool, v *types.Var) bool {
	for _, frame := range stack {
		if frame[v] {
			return true
		}
	}
	return false
}

// capturedVars returns the variables the literal references that are
// declared outside it (free variables), excluding package-level state.
func capturedVars(info *types.Info, lit *ast.FuncLit) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if isPackageLevel(v) {
			return true // globalmut's jurisdiction
		}
		if v.Pos() == 0 || contains(lit, identDeclNode(v)) {
			return true
		}
		// Declared before the literal's body: captured iff its position
		// is outside the literal's source range.
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			out[v] = true
		}
		return true
	})
	return out
}

// identDeclNode gives a fake single-position "node" for containment tests.
type posNode token.Pos

func (p posNode) Pos() token.Pos { return token.Pos(p) }
func (p posNode) End() token.Pos { return token.Pos(p) }

func identDeclNode(v *types.Var) ast.Node { return posNode(v.Pos()) }

// isPackageLevel reports whether v is a package-scope variable.
func isPackageLevel(v *types.Var) bool {
	return v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// writtenCaptures finds captured variables the literal writes. The bool
// value records whether any write hits the whole variable or an aliased
// region (true) versus only distinct per-spawn elements like buf[i] where
// i is a literal parameter (false) — the latter is the safe slot-per-
// worker idiom, racy against readers but not between workers.
func writtenCaptures(info *types.Info, lit *ast.FuncLit, captured map[*types.Var]bool) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	// paramObjs: the literal's own parameters, used to recognize the
	// slot-per-worker idiom.
	paramObjs := make(map[*types.Var]bool)
	if lit.Type.Params != nil {
		for _, f := range lit.Type.Params.List {
			for _, id := range f.Names {
				if v, ok := info.Defs[id].(*types.Var); ok {
					paramObjs[v] = true
				}
			}
		}
	}
	// aliases: locals of the literal that may point into a captured var.
	aliases := make(map[*types.Var]*types.Var) // local -> captured root
	aliasSlotted := make(map[*types.Var]bool)  // alias came from &cap[param]
	note := func(local, root *types.Var, rhs ast.Expr) {
		if root != nil && captured[root] {
			aliases[local] = root
			aliasSlotted[local] = indexedByParam(info, rhs, paramObjs)
		}
	}
	record := func(target ast.Expr, whole bool) {
		root := rootVar(info, target)
		if root == nil {
			return
		}
		if r, ok := aliases[root]; ok {
			slotted := aliasSlotted[root]
			if prev, seen := out[r]; !seen || (!prev && !slotted) {
				out[r] = !slotted
			}
			return
		}
		if !captured[root] {
			return
		}
		slotted := !whole && indexedByParam(info, target, paramObjs)
		if prev, seen := out[root]; !seen || (!prev && !slotted) {
			out[root] = !slotted
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					v, _ := info.ObjectOf(id).(*types.Var)
					if v != nil && !captured[v] {
						// Local definition: track aliasing.
						if n.Tok == token.DEFINE && i < len(n.Rhs) {
							note(v, rootVar(info, n.Rhs[i]), n.Rhs[i])
						}
						continue
					}
					record(lhs, true)
					continue
				}
				record(lhs, false)
			}
		case *ast.IncDecStmt:
			_, whole := ast.Unparen(n.X).(*ast.Ident)
			record(n.X, whole)
		}
		return true
	})
	return out
}

// indexedByParam reports whether e contains an index expression whose
// index is one of the literal's parameters — the slot-per-worker shape
// results[i] with i passed in.
func indexedByParam(info *types.Info, e ast.Expr, params map[*types.Var]bool) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(ix.Index).(*ast.Ident); ok {
			if v, ok := info.ObjectOf(id).(*types.Var); ok && params[v] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// aliasedWrite reports whether node n writes v through a pointer alias:
// an assignment whose target roots at a local q where some definition of
// q reaching n (per the reaching-definitions solution) may alias v. This
// sees through `p := &shared; ...; *p = x` on the spawner's side.
func aliasedWrite(df *DefFlow, info *types.Info, n ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		var targets []ast.Expr
		switch m := m.(type) {
		case *ast.AssignStmt:
			targets = m.Lhs
		case *ast.IncDecStmt:
			targets = []ast.Expr{m.X}
		default:
			return true
		}
		for _, t := range targets {
			q := rootVar(info, t)
			if q == nil || q == v {
				continue
			}
			// A write *through* q only shares storage when it dereferences
			// or indexes; a plain reassignment q = ... does not touch v.
			if _, plain := ast.Unparen(t).(*ast.Ident); plain && !isRefType(q.Type()) {
				continue
			}
			for _, d := range df.ReachingAt(m, q) {
				if d.rhs != nil && mayAlias(info, d.rhs, v) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// accessesVar reports whether node n (outside literal `exclude`) reads or
// writes v.
func accessesVar(info *types.Info, n ast.Node, v *types.Var, exclude ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if m == exclude {
			return false
		}
		if id, ok := m.(*ast.Ident); ok {
			if obj, ok := info.Uses[id].(*types.Var); ok && obj == v {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkSend applies rule 3: a reference-typed value sent on a channel and
// mutated afterwards on the sender side.
func checkSend(pass *Pass, cfg *CFG, send *ast.SendStmt, barrier func(ast.Node) bool) {
	info := pass.Pkg.Info
	val := ast.Unparen(send.Value)
	var v *types.Var
	switch x := val.(type) {
	case *ast.Ident:
		if t := info.TypeOf(x); !isRefType(t) && !hasRefComponent(t) {
			return
		}
		v, _ = info.ObjectOf(x).(*types.Var)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			v = rootVar(info, x.X)
		}
	}
	if v == nil || isPackageLevel(v) {
		return
	}
	for _, n := range ReachableFrom(cfg, send, barrier) {
		if writesVar(info, n, v) {
			pass.Reportf(send.Pos(),
				"%s is sent over a channel and then written without synchronization; the receiver shares the referent", v.Name())
			return
		}
	}
}

// writesVar reports whether node n assigns to v or through v.
func writesVar(info *types.Info, n ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				if rootVar(info, lhs) == v {
					found = true
					return false
				}
			}
		case *ast.IncDecStmt:
			if rootVar(info, m.X) == v {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
