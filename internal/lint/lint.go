// Package lint is a small static-analysis framework for the texcache
// simulator, built purely on the standard library's go/parser, go/ast,
// go/types and go/importer. It exists because the simulator's value rests
// on its texel reference stream being bit-for-bit deterministic: the
// paper's tables are only comparable across cache architectures because
// the identical trace drives every configuration. The analyzers enforce
// the invariants that keep it so — no wall-clock or unseeded randomness,
// no order-dependent map iteration feeding results, 64-bit byte/texel
// counters, allocation-free hot paths, and the repo's panic and error
// conventions.
//
// Sixteen analyzers run in four tiers: the syntactic tier
// (determinism, counterwidth, hotpath, panicstyle, errcheck), the
// CFG/dataflow tier (sharedstate, hotalloc, globalmut, purity), the
// interprocedural concurrency-protocol tier (chanleak, chanprotocol,
// wgbalance, mapiter), which runs over per-function summaries of channel
// and WaitGroup effects and map-order taint computed by a module-wide
// fixpoint (FlowFacts), and the allocation-lifetime tier (poolcheck,
// retain, growloop), which runs over texmem summaries (MemFacts) of
// allocation sites with size classes, escape-to-sink classification,
// reuse-pattern recognition and a per-call allocation-closure fixpoint.
//
// Diagnostics may be suppressed with a comment on the offending line or
// the line directly above it:
//
//	//texlint:ignore <analyzer> [reason]
//
// where <analyzer> is an analyzer name or "all".
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the analyzer that produced it and
// a human-readable message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical "file:line: [analyzer]
// message" form used by cmd/texlint.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Package is one parsed and type-checked package as presented to analyzers.
type Package struct {
	// Path is the import path (or a synthetic name for test fixtures).
	Path string
	// Fset positions all files of the package.
	Fset *token.FileSet
	// Files holds the parsed syntax, comments included.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression and object tables.
	Info *types.Info
}

// Pass is the per-(analyzer, package) context handed to Analyzer.Run.
type Pass struct {
	Pkg      *Package
	Facts    *Facts
	analyzer *Analyzer
	out      *[]Diagnostic
}

// Facts carries cross-package knowledge shared by the texvet dataflow
// analyzers: which functions are annotated hot or pure, and which import
// paths belong to the module under analysis. It is computed once per Run
// over every loaded package, so an analyzer inspecting package P can ask
// about functions defined in P's dependencies.
type Facts struct {
	// Hot maps functions whose doc comment carries the texlint:hotpath
	// or texsim:hot marker.
	Hot map[*types.Func]bool
	// Pure maps functions whose doc comment carries the texsim:pure
	// marker.
	Pure map[*types.Func]bool
	// ModulePkgs is the set of import paths analyzed together.
	ModulePkgs map[string]bool
	// Flow holds the texflow interprocedural summaries (channel and
	// WaitGroup parameter ops, map-order taint, publication contracts).
	Flow *FlowFacts
	// Mem holds the texmem allocation-lifetime summaries (alloc sites
	// with size classes, per-call allocation closure, reuse patterns,
	// buffer-growth fields, goroutine spawn graph).
	Mem *MemFacts
}

// HotMarker is the texvet alias of the hotpath marker; both name a
// function whose call tree is the per-texel fast path.
const HotMarker = "texsim:hot"

// PureMarker names a function that must be verifiably side-effect-free.
const PureMarker = "texsim:pure"

// CollectFacts scans every package's function doc comments for hot and
// pure markers.
func CollectFacts(pkgs []*Package) *Facts {
	f := &Facts{
		Hot:        make(map[*types.Func]bool),
		Pure:       make(map[*types.Func]bool),
		ModulePkgs: make(map[string]bool),
		Flow:       collectFlowFacts(pkgs),
		Mem:        collectMemFacts(pkgs),
	}
	for _, pkg := range pkgs {
		f.ModulePkgs[pkg.Path] = true
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Doc == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				for _, c := range fn.Doc.List {
					if strings.Contains(c.Text, HotpathMarker) || strings.Contains(c.Text, HotMarker) {
						f.Hot[obj] = true
					}
					if strings.Contains(c.Text, PureMarker) {
						f.Pure[obj] = true
					}
				}
			}
		}
	}
	return f
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// Analyzer is one self-contained check.
type Analyzer struct {
	// Name is the identifier used in diagnostics and ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects one package, reporting findings through the pass.
	Run func(*Pass)
}

// All returns every analyzer in the suite, in stable order: the five
// first-generation syntactic analyzers, the four texvet dataflow
// analyzers, the four texflow concurrency-protocol analyzers, and the
// three texmem allocation-lifetime analyzers.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		Hotpath,
		Counterwidth,
		Panicstyle,
		Errcheck,
		Sharedstate,
		Hotalloc,
		Globalmut,
		Purity,
		Chanleak,
		Chanprotocol,
		Wgbalance,
		Mapiter,
		Poolcheck,
		Retain,
		Growloop,
	}
}

// ByName returns the analyzers named, or an error naming the unknown one.
func ByName(names []string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	out := make([]*Analyzer, 0, len(names))
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies the analyzers to every package, filters findings through
// //texlint:ignore directives, and returns the remainder sorted by file,
// line and analyzer. It applies no package waivers; see RunConfigured.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunConfigured(pkgs, analyzers, nil) // a nil config cannot be invalid
	return diags
}

// RunConfigured is Run with a waiver config: analyzer x package pairs the
// config allows are skipped entirely, so an allowlisted package neither
// reports findings nor needs ignore comments for that analyzer. A config
// that waives an analyzer name not registered in All() is an error — a
// programmatically built FileConfig bypasses ParseConfig's validation,
// and a typo'd name would otherwise silently waive nothing.
func RunConfigured(pkgs []*Package, analyzers []*Analyzer, cfg *FileConfig) ([]Diagnostic, error) {
	if cfg != nil {
		if name := firstUnknownAnalyzer(cfg.Allow); name != "" {
			return nil, fmt.Errorf("lint: config waives unregistered analyzer %q", name)
		}
	}
	facts := CollectFacts(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if cfg.Allows(a.Name, pkg.Path) {
				continue
			}
			pass := &Pass{Pkg: pkg, Facts: facts, analyzer: a, out: &diags}
			a.Run(pass)
		}
		diags = suppress(diags, pkg)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// ignoreDirective is one parsed //texlint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzers map[string]bool // or {"all": true}
}

// parseIgnores collects every ignore directive in the package.
func parseIgnores(pkg *Package) []ignoreDirective {
	var dirs []ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "texlint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := ignoreDirective{
					file:      pos.Filename,
					line:      pos.Line,
					analyzers: make(map[string]bool),
				}
				// Everything after the analyzer list is free-form
				// rationale; analyzers are comma- or space-separated
				// names before the first non-name token.
			tokens:
				for _, tok := range strings.Fields(rest) {
					for _, name := range strings.Split(tok, ",") {
						if name == "" {
							continue
						}
						if !isAnalyzerName(name) {
							break tokens
						}
						d.analyzers[name] = true
					}
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs
}

// isAnalyzerName reports whether s names a known analyzer or "all".
func isAnalyzerName(s string) bool {
	if s == "all" {
		return true
	}
	for _, a := range All() {
		if a.Name == s {
			return true
		}
	}
	return false
}

// suppress drops diagnostics covered by an ignore directive on the same
// line or the line immediately above.
func suppress(diags []Diagnostic, pkg *Package) []Diagnostic {
	dirs := parseIgnores(pkg)
	if len(dirs) == 0 {
		return diags
	}
	covered := func(d Diagnostic) bool {
		for _, dir := range dirs {
			if dir.file != d.Pos.Filename {
				continue
			}
			if dir.line != d.Pos.Line && dir.line != d.Pos.Line-1 {
				continue
			}
			if dir.analyzers["all"] || dir.analyzers[d.Analyzer] {
				return true
			}
		}
		return false
	}
	out := diags[:0]
	for _, d := range diags {
		if !covered(d) {
			out = append(out, d)
		}
	}
	return out
}

// calleeObj resolves the object a call invokes, following selector and
// plain identifiers. It returns nil for indirect calls and conversions.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// calleeIsPkgFunc reports whether the call invokes pkgPath.name.
func calleeIsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := calleeObj(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// calleePkgPath returns the defining package path of the callee, or "".
func calleePkgPath(info *types.Info, call *ast.CallExpr) string {
	obj := calleeObj(info, call)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}
