package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Purity is the texvet side-effect analyzer. Sampling and addressing
// functions — texel wrapping, MIP clamping, tile-address translation,
// filtering arithmetic — are the arrows between Figure 7's boxes: they
// must map coordinates to addresses and colours without touching any
// state, or replaying the same scene would stop producing the same
// reference stream. Functions whose doc comment carries texsim:pure are
// verified side-effect-free:
//
//   - no writes to package-level state;
//   - no writes through pointers, slices or maps that may reach the
//     caller (receiver, parameters, captured state) — writes to purely
//     local value storage, and to locals proven fresh by alias-lite
//     (initialized only from make/new/composite literals), are fine;
//   - no channel operations and no goroutine launches;
//   - calls only to other pure-marked functions, to unannotated
//     functions of the same package that pass the same checks
//     transitively, or to whitelisted side-effect-free standard library
//     packages (math, math/bits, strings, strconv, unicode, sort.Search-
//     style pure fmt formatting).
var Purity = &Analyzer{
	Name: "purity",
	Doc:  "verify texsim:pure functions are side-effect-free",
	Run:  runPurity,
}

// pureStdlibPkgs are standard-library packages whose exported functions
// neither write global state nor mutate arguments.
var pureStdlibPkgs = map[string]bool{
	"math":         true,
	"math/bits":    true,
	"math/cmplx":   true,
	"strings":      true,
	"strconv":      true,
	"unicode":      true,
	"unicode/utf8": true,
}

// pureStdlibFuncs whitelists individual functions from otherwise impure
// packages: pure formatters and constructors.
var pureStdlibFuncs = map[string]bool{
	"fmt.Sprintf":  true,
	"fmt.Sprint":   true,
	"fmt.Sprintln": true,
	"fmt.Errorf":   true,
	"errors.New":   true,
}

func runPurity(pass *Pass) {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := pass.Pkg.Info.Defs[fn.Name].(*types.Func); ok {
				decls[obj] = fn
			}
		}
	}
	pc := &purityChecker{pass: pass, decls: decls, verified: make(map[*types.Func]int)}
	for obj, fn := range decls {
		if pass.Facts.Pure[obj] {
			pc.check(obj, fn, true)
		}
	}
}

// purityChecker memoizes transitive verification of unannotated
// in-package callees so shared helpers are checked once.
type purityChecker struct {
	pass  *Pass
	decls map[*types.Func]*ast.FuncDecl
	// verified: 0 unknown, 1 in progress or pure, 2 impure.
	verified map[*types.Func]int
}

// check verifies one function. When report is true, violations are
// reported as diagnostics; otherwise it only records purity (used for
// transitive callees, whose violation is reported at the call site in the
// annotated function). Returns true when the body passed every check.
func (pc *purityChecker) check(obj *types.Func, fn *ast.FuncDecl, report bool) bool {
	if state := pc.verified[obj]; state != 0 && !report {
		return state == 1
	}
	pc.verified[obj] = 1 // assume pure across recursion
	v := &purityVisitor{pc: pc, fn: fn, report: report, name: obj.Name()}
	v.collectFresh()
	ok := v.walk(fn.Body)
	if !ok {
		pc.verified[obj] = 2
	}
	return ok
}

// purityVisitor walks one function body applying the purity rules.
type purityVisitor struct {
	pc     *purityChecker
	fn     *ast.FuncDecl
	name   string
	report bool
	// fresh holds locals proven to own their storage: every definition
	// is a make/new/composite-literal/fresh-append allocation.
	fresh map[*types.Var]bool
	ok    bool
}

func (v *purityVisitor) info() *types.Info { return v.pc.pass.Pkg.Info }

func (v *purityVisitor) violate(pos token.Pos, format string, args ...any) {
	v.ok = false
	if v.report {
		v.pc.pass.Reportf(pos, format, args...)
	}
}

// collectFresh computes the alias-lite fresh set, iterating to a fixed
// point so `a := make(...); b := a` marks b fresh too.
func (v *purityVisitor) collectFresh() {
	v.fresh = make(map[*types.Var]bool)
	info := v.info()
	// candidate defs: var -> list of RHS expressions (nil marks an
	// unknown definition, e.g. range values or multi-assign from calls).
	defs := make(map[*types.Var][]ast.Expr)
	addDef := func(id *ast.Ident, rhs ast.Expr) {
		if id == nil || id.Name == "_" {
			return
		}
		if obj, ok := info.ObjectOf(id).(*types.Var); ok && !isPackageLevel(obj) {
			defs[obj] = append(defs[obj], rhs)
		}
	}
	ast.Inspect(v.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, _ := ast.Unparen(lhs).(*ast.Ident)
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				addDef(id, rhs)
			}
		case *ast.RangeStmt:
			if id, ok := n.Key.(*ast.Ident); ok {
				addDef(id, nil)
			}
			if id, ok := n.Value.(*ast.Ident); ok {
				addDef(id, nil)
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				var rhs ast.Expr
				if i < len(n.Values) {
					rhs = n.Values[i]
				}
				addDef(id, rhs)
			}
		}
		return true
	})
	for changed := true; changed; {
		changed = false
		for obj, rhss := range defs {
			if v.fresh[obj] {
				continue
			}
			all := len(rhss) > 0
			for _, rhs := range rhss {
				if !v.isFreshExpr(rhs, obj) {
					all = false
					break
				}
			}
			if all {
				v.fresh[obj] = true
				changed = true
			}
		}
	}
}

// isFreshExpr reports whether e evaluates to storage no one else holds.
// self names the variable being defined, so `s = append(s, x)` keeps a
// fresh s fresh.
func (v *purityVisitor) isFreshExpr(e ast.Expr, self *types.Var) bool {
	if e == nil {
		return false
	}
	info := v.info()
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		if isBuiltin(info, e, "make") || isBuiltin(info, e, "new") {
			return true
		}
		if isBuiltin(info, e, "append") && len(e.Args) > 0 {
			if id, ok := ast.Unparen(e.Args[0]).(*ast.Ident); ok {
				if obj, ok := info.ObjectOf(id).(*types.Var); ok {
					return obj == self || v.fresh[obj]
				}
			}
		}
		return false
	case *ast.Ident:
		if obj, ok := info.ObjectOf(e).(*types.Var); ok {
			return v.fresh[obj]
		}
	case *ast.BasicLit:
		return true
	}
	return false
}

// walk applies the purity rules to a body; returns false on violation.
func (v *purityVisitor) walk(body *ast.BlockStmt) bool {
	v.ok = true
	info := v.info()
	// lhsRoots: identifiers that are the roots of assignment targets.
	// checkWrite owns those; the read-of-global rule must not double-report.
	lhsRoots := make(map[*ast.Ident]bool)
	noteLHS := func(e ast.Expr) {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.Ident:
				lhsRoots[x] = true
				return
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				noteLHS(lhs)
			}
		case *ast.IncDecStmt:
			noteLHS(n.X)
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				v.checkWrite(n.Pos(), lhs)
			}
		case *ast.IncDecStmt:
			v.checkWrite(n.Pos(), n.X)
		case *ast.SendStmt:
			v.violate(n.Pos(), "pure function %s performs a channel send", v.name)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				v.violate(n.Pos(), "pure function %s performs a channel receive", v.name)
			}
		case *ast.GoStmt:
			v.violate(n.Pos(), "pure function %s spawns a goroutine", v.name)
		case *ast.CallExpr:
			v.checkCall(n)
		case *ast.Ident:
			if lhsRoots[n] {
				return true
			}
			if obj, ok := info.Uses[n].(*types.Var); ok && isPackageLevel(obj) {
				if !obj.IsField() {
					v.violate(n.Pos(),
						"pure function %s reads mutable package-level %s; pass it in or make it a constant", v.name, obj.Name())
				}
			}
		}
		return true
	})
	return v.ok
}

// checkWrite verifies an assignment target stays within local storage.
func (v *purityVisitor) checkWrite(pos token.Pos, target ast.Expr) {
	info := v.info()
	root := rootVar(info, target)
	if root == nil {
		v.violate(pos, "pure function %s writes through an unanalyzable expression", v.name)
		return
	}
	if isPackageLevel(root) {
		v.violate(pos, "pure function %s writes package-level %s", v.name, root.Name())
		return
	}
	// A whole-variable write to a local is a rebinding, always fine.
	if _, plain := ast.Unparen(target).(*ast.Ident); plain {
		return
	}
	// A write through an element, field or dereference mutates whatever
	// the root references: fine when the root is a fresh local or a
	// plain value aggregate declared locally; a violation when the root
	// is (or may share storage with) the receiver, a parameter or a
	// capture.
	if v.fresh[root] {
		return
	}
	if v.isParamOrRecv(root) {
		v.violate(pos, "pure function %s writes through parameter or receiver %s", v.name, root.Name())
		return
	}
	if hasRefComponent(root.Type()) && !v.fresh[root] {
		v.violate(pos,
			"pure function %s writes through %s, which may share storage with the caller", v.name, root.Name())
	}
}

// isParamOrRecv reports whether root is a parameter or the receiver and
// the write can reach caller-visible storage (reference-typed or written
// through a pointer).
func (v *purityVisitor) isParamOrRecv(root *types.Var) bool {
	if !isRefType(root.Type()) && !hasRefComponent(root.Type()) {
		return false
	}
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			for _, id := range f.Names {
				if obj, ok := v.info().Defs[id].(*types.Var); ok && obj == root {
					return true
				}
			}
		}
		return false
	}
	return check(v.fn.Recv) || check(v.fn.Type.Params)
}

// checkCall verifies the callee is itself side-effect-free.
func (v *purityVisitor) checkCall(call *ast.CallExpr) {
	info := v.info()
	// An immediately-invoked literal's body is walked inline by the same
	// traversal; the call itself introduces nothing.
	if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return
	}
	// Builtins and conversions are pure except the channel/copy family.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "close", "delete", "copy", "clear", "print", "println":
				v.violate(call.Pos(), "pure function %s calls impure builtin %s", v.name, id.Name)
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	callee, _ := calleeObj(info, call).(*types.Func)
	if callee == nil {
		// Calling a func-typed local: allow when the value is a fresh
		// local literal; otherwise unanalyzable.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if obj, ok := info.ObjectOf(id).(*types.Var); ok && !isPackageLevel(obj) {
				_ = obj
				return // local func value; its literal body is walked inline
			}
		}
		v.violate(call.Pos(), "pure function %s makes an unanalyzable call", v.name)
		return
	}
	pkg := callee.Pkg()
	if pkg == nil {
		return
	}
	if v.pc.pass.Facts.Pure[callee] {
		return
	}
	path := pkg.Path()
	if pureStdlibPkgs[path] || pureStdlibFuncs[path+"."+callee.Name()] {
		return
	}
	if pkg == v.pc.pass.Pkg.Types {
		if decl := v.pc.decls[callee]; decl != nil {
			if v.pc.check(callee, decl, false) {
				return
			}
			v.violate(call.Pos(),
				"pure function %s calls %s, which has side effects", v.name, callee.Name())
			return
		}
	}
	v.violate(call.Pos(),
		"pure function %s calls %s.%s, which is not marked texsim:pure", v.name, pkg.Name(), callee.Name())
}
