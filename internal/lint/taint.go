package lint

// Map-order taint engine shared by the mapiter analyzer and the texflow
// summary pass. A value is tainted when it may depend on Go's randomized
// map iteration order: the key/value of a range over a map, the result of
// maps.Keys/maps.Values, or the result of a function summarized as
// MapOrdered. Taint propagates through assignments, append, arithmetic,
// composite literals, and ordinary calls (a helper that formats tainted
// keys returns tainted output); it is cleared by the sort family
// (sort.Strings, slices.Sort, slices.Sorted, ...) and by reassignment from
// a clean value. Each taint value also carries its origin parameters so
// the texflow pass can summarize "parameter i of f reaches a sink".
//
// The walk is in source order, one pass, may-style: a taint assigned in
// one branch survives into the join. Sorting later in the text clears it,
// which matches the repo's collect-then-sort idiom.

import (
	"go/ast"
	"go/types"
)

// taint records why a value is order-dependent: derived from map iteration
// order, and/or derived from one of the enclosing function's parameters.
type taint struct {
	mapOrder bool
	params   map[*types.Var]bool
}

func (t *taint) clone() *taint {
	if t == nil {
		return nil
	}
	c := &taint{mapOrder: t.mapOrder}
	if len(t.params) > 0 {
		c.params = make(map[*types.Var]bool, len(t.params))
		for p := range t.params {
			c.params[p] = true
		}
	}
	return c
}

// mergeTaint unions two taints; nil means clean.
func mergeTaint(a, b *taint) *taint {
	if a == nil {
		return b.clone()
	}
	out := a.clone()
	if b != nil {
		out.mapOrder = out.mapOrder || b.mapOrder
		for p := range b.params {
			if out.params == nil {
				out.params = make(map[*types.Var]bool)
			}
			out.params[p] = true
		}
	}
	return out
}

// taintTracker walks one function body tracking map-order taint per
// variable and firing callbacks at sinks and returns.
type taintTracker struct {
	info  *types.Info
	flow  *FlowFacts
	state map[*types.Var]*taint

	// onSink fires when a tainted value reaches an emitting sink: an
	// output/encoder/writer call, a module emit method, a callee position
	// summarized as a sink, or a store into a results-style field. n is
	// the sink node, desc names the sink for diagnostics.
	onSink func(n ast.Node, t *taint, desc string)
	// onReturn fires at each return statement with the taint of every
	// result position (nil entries are clean results).
	onReturn func(ret *ast.ReturnStmt, ts []*taint)
}

func newTaintTracker(info *types.Info, flow *FlowFacts) *taintTracker {
	return &taintTracker{
		info:  info,
		flow:  flow,
		state: make(map[*types.Var]*taint),
	}
}

// sinkFields are struct-field names whose slots feed deterministic output
// downstream (sweep Results, render-farm Frames, trace Records/Shards);
// storing an order-tainted value into one is a sink.
var sinkFields = map[string]bool{
	"Results": true, "Frames": true, "Records": true, "Shards": true,
}

// emitMethods are module emitter methods whose call order reaches
// telemetry streams or trace output.
var emitMethods = map[string]bool{
	"Emit": true, "Frame": true, "Texel": true,
	"Encode": true, "WriteAll": true,
}

// sortClears reports whether the call is a sort-family statement
// (sort.Strings(s), slices.Sort(s), sort.Slice(s, less), ...) and returns
// the variable it orders.
func (tt *taintTracker) sortClears(call *ast.CallExpr) *types.Var {
	p := calleePkgPath(tt.info, call)
	if p != "sort" && p != "slices" {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	return rootVar(tt.info, call.Args[0])
}

// isSortedExpr reports calls that return an already-ordered value
// (slices.Sorted, slices.SortedFunc, slices.SortedStableFunc).
func (tt *taintTracker) isSortedExpr(call *ast.CallExpr) bool {
	if calleePkgPath(tt.info, call) != "slices" {
		return false
	}
	obj := calleeObj(tt.info, call)
	if obj == nil {
		return false
	}
	switch obj.Name() {
	case "Sorted", "SortedFunc", "SortedStableFunc":
		return true
	}
	return false
}

// exprTaint computes the taint of an expression under the current state.
func (tt *taintTracker) exprTaint(e ast.Expr) *taint {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := tt.info.Uses[e].(*types.Var); ok {
			return tt.state[v]
		}
		return nil
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.SliceExpr:
		if v := rootVar(tt.info, e.(ast.Expr)); v != nil {
			return tt.state[v]
		}
		return nil
	case *ast.UnaryExpr:
		return tt.exprTaint(e.X)
	case *ast.BinaryExpr:
		return mergeTaint(tt.exprTaint(e.X), tt.exprTaint(e.Y))
	case *ast.CompositeLit:
		var t *taint
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			t = mergeTaint(t, tt.exprTaint(el))
		}
		return t
	case *ast.TypeAssertExpr:
		return tt.exprTaint(e.X)
	case *ast.CallExpr:
		return tt.callTaint(e)
	}
	return nil
}

// callTaint computes the taint of a call's result: sorted producers are
// clean, maps.Keys/Values and MapOrdered callees introduce map-order
// taint, everything else propagates its arguments (conversions, Sprintf,
// append, strings.Join, user helpers).
func (tt *taintTracker) callTaint(call *ast.CallExpr) *taint {
	if tt.isSortedExpr(call) {
		return nil
	}
	if isBuiltin(tt.info, call, "len") || isBuiltin(tt.info, call, "cap") {
		return nil
	}
	var t *taint
	for _, arg := range call.Args {
		t = mergeTaint(t, tt.exprTaint(arg))
	}
	if calleeIsPkgFunc(tt.info, call, "maps", "Keys") ||
		calleeIsPkgFunc(tt.info, call, "maps", "Values") {
		t = mergeTaint(t, &taint{mapOrder: true})
	}
	if tt.flow != nil {
		if fn, ok := calleeObj(tt.info, call).(*types.Func); ok && len(tt.flow.MapOrdered[fn]) > 0 {
			t = mergeTaint(t, &taint{mapOrder: true})
		}
	}
	return t
}

// callResultTaints computes the per-result taints of a call assigned into
// a tuple, so f()'s clean error result stays clean even when its first
// result carries map order.
func (tt *taintTracker) callResultTaints(call *ast.CallExpr, nres int) []*taint {
	out := make([]*taint, nres)
	var argT *taint
	for _, arg := range call.Args {
		argT = mergeTaint(argT, tt.exprTaint(arg))
	}
	var ordered map[int]bool
	if tt.flow != nil {
		if fn, ok := calleeObj(tt.info, call).(*types.Func); ok {
			ordered = tt.flow.MapOrdered[fn]
		}
	}
	for i := range out {
		out[i] = argT.clone()
		if ordered[i] {
			out[i] = mergeTaint(out[i], &taint{mapOrder: true})
		}
	}
	return out
}

// sinkCall reports whether the call is itself an emitting sink and
// returns a short description.
func (tt *taintTracker) sinkCall(call *ast.CallExpr) (string, bool) {
	if calleePkgPath(tt.info, call) == "fmt" {
		if obj := calleeObj(tt.info, call); obj != nil && outputFuncs[obj.Name()] {
			return "fmt." + obj.Name(), true
		}
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if s := tt.info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
		name := sel.Sel.Name
		if outputMethods[name] || emitMethods[name] {
			return "method " + name, true
		}
	}
	return "", false
}

// checkCall fires onSink for tainted arguments reaching sink calls and
// summarized sink parameters of callees.
func (tt *taintTracker) checkCall(call *ast.CallExpr) {
	if tt.onSink == nil {
		return
	}
	desc, isSink := tt.sinkCall(call)
	var callee *types.Func
	if tt.flow != nil {
		callee, _ = calleeObj(tt.info, call).(*types.Func)
	}
	for ai, arg := range call.Args {
		t := tt.exprTaint(arg)
		if t == nil {
			continue
		}
		if isSink {
			tt.onSink(call, t, desc)
			return
		}
		if callee != nil && tt.flow.ParamSinks[callee] != nil && tt.flow.ParamSinks[callee][ai] {
			tt.onSink(call, t, "call to "+callee.Name()+" (emits parameter)")
			return
		}
	}
}

// sinkStoreField returns the sink-field name if the lvalue stores into a
// Results/Frames/Records/Shards field (directly or through an index).
func sinkStoreField(e ast.Expr) (string, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sinkFields[x.Sel.Name] {
				return x.Sel.Name, true
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return "", false
		}
	}
}

// assign records taint for one lhs := rhs pair and checks store sinks.
func (tt *taintTracker) assign(lhs, rhs ast.Expr, t *taint) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		if v, ok := tt.info.Defs[id].(*types.Var); ok {
			tt.state[v] = t
			return
		}
		if v, ok := tt.info.Uses[id].(*types.Var); ok {
			tt.state[v] = t
			return
		}
		return
	}
	if t == nil {
		return
	}
	if field, ok := sinkStoreField(lhs); ok && tt.onSink != nil {
		tt.onSink(lhs, t, "store into "+field+" slot")
		return
	}
	// Storing taint through a field/index keeps the container tainted.
	if v := rootVar(tt.info, lhs); v != nil {
		tt.state[v] = mergeTaint(tt.state[v], t)
	}
}

// walk processes the body in source order, including nested function
// literals (captured variables share the same state).
func (tt *taintTracker) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			var seed *taint
			if x := tt.info.TypeOf(n.X); x != nil {
				if _, isMap := x.Underlying().(*types.Map); isMap {
					seed = &taint{mapOrder: true}
				}
			}
			seed = mergeTaint(seed, tt.exprTaint(n.X))
			if n.Key != nil {
				tt.assign(n.Key, nil, nil)
				if seed != nil {
					tt.assign(n.Key, nil, seed.clone())
				}
			}
			if n.Value != nil {
				tt.assign(n.Value, nil, nil)
				if seed != nil {
					tt.assign(n.Value, nil, seed.clone())
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					tt.assign(n.Lhs[i], n.Rhs[i], tt.exprTaint(n.Rhs[i]))
				}
			} else if len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					ts := tt.callResultTaints(call, len(n.Lhs))
					for i, lhs := range n.Lhs {
						tt.assign(lhs, n.Rhs[0], ts[i])
					}
					return true
				}
				t := tt.exprTaint(n.Rhs[0])
				for _, lhs := range n.Lhs {
					tt.assign(lhs, n.Rhs[0], t.clone())
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var t *taint
					if i < len(vs.Values) {
						t = tt.exprTaint(vs.Values[i])
					} else if len(vs.Values) == 1 {
						t = tt.exprTaint(vs.Values[0])
					}
					tt.assign(name, nil, t)
				}
			}
		case *ast.CallExpr:
			if v := tt.sortClears(n); v != nil {
				tt.checkCall(n)
				delete(tt.state, v)
				return true
			}
			tt.checkCall(n)
		case *ast.ReturnStmt:
			if tt.onReturn != nil && len(n.Results) > 0 {
				ts := make([]*taint, len(n.Results))
				any := false
				if len(n.Results) == 1 {
					if call, ok := ast.Unparen(n.Results[0]).(*ast.CallExpr); ok && call != nil {
						if tup, _ := tt.info.TypeOf(call).(*types.Tuple); tup != nil {
							// return f() forwarding a multi-result call.
							ts = tt.callResultTaints(call, tup.Len())
						} else {
							ts[0] = tt.exprTaint(n.Results[0])
						}
					} else {
						ts[0] = tt.exprTaint(n.Results[0])
					}
				} else {
					for i, res := range n.Results {
						ts[i] = tt.exprTaint(res)
					}
				}
				for _, t := range ts {
					if t != nil {
						any = true
					}
				}
				if any {
					tt.onReturn(n, ts)
				}
			}
		}
		return true
	})
}
