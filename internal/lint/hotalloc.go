package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotalloc is the texvet allocation analyzer. Where hotpath polices the
// annotated function bodies themselves, hotalloc closes the call tree:
// it builds the package's static call graph, computes every function
// reachable from a hot-annotated root (texlint:hotpath / texsim:hot), and
// reports allocation sites anywhere in that set — append, make, new,
// closure creation, explicit or implicit interface boxing, and
// non-constant string concatenation. Each of these costs a heap visit (or
// at best a stack spill) on a path executed hundreds of millions of times
// per run.
//
// Cross-package reachability is enforced by annotation closure: a call
// from hot code to a function in another module package is only allowed
// when the callee is itself annotated hot, so each package's analysis
// composes into whole-module coverage. Calls through interfaces cannot be
// resolved statically and are reported so they are either devirtualized
// or explicitly waived.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocation sites reachable from hot-annotated functions",
	Run:  runHotalloc,
}

func runHotalloc(pass *Pass) {
	info := pass.Pkg.Info

	// Collect declared functions and the annotated roots.
	decls := make(map[*types.Func]*ast.FuncDecl)
	var roots []*types.Func
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[obj] = fn
			if pass.Facts.Hot[obj] {
				roots = append(roots, obj)
			}
		}
	}
	if len(roots) == 0 {
		return
	}

	// Breadth-first closure over in-package static calls.
	reachable := make(map[*types.Func]bool)
	queue := append([]*types.Func(nil), roots...)
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if reachable[fn] {
			continue
		}
		reachable[fn] = true
		decl := decls[fn]
		if decl == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, _ := calleeObj(info, call).(*types.Func)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			if callee.Pkg() == pass.Pkg.Types {
				if _, declared := decls[callee]; declared && !reachable[callee] {
					queue = append(queue, callee)
				}
			}
			return true
		})
	}

	for fn := range reachable {
		decl := decls[fn]
		if decl == nil {
			continue
		}
		checkHotAllocBody(pass, fn, decl)
	}
}

func checkHotAllocBody(pass *Pass, fn *types.Func, decl *ast.FuncDecl) {
	info := pass.Pkg.Info
	name := fn.Name()
	annotated := pass.Facts.Hot[fn]
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// hotpath already reports closures in annotated bodies; only
			// the reachable-but-unannotated tail is new information.
			if !annotated {
				pass.Reportf(n.Pos(),
					"%s is reachable from a hot path and allocates a closure", name)
			}
			return false // the literal runs at call time, not here
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t, ok := info.TypeOf(n).(*types.Basic); ok && t.Info()&types.IsString != 0 {
					if tv, ok := info.Types[n]; !ok || tv.Value == nil {
						pass.Reportf(n.Pos(),
							"%s is reachable from a hot path and concatenates strings", name)
					}
				}
			}
		case *ast.CallExpr:
			checkHotAllocCall(pass, fn, name, annotated, n)
		}
		return true
	})
}

func checkHotAllocCall(pass *Pass, fn *types.Func, name string, annotated bool, call *ast.CallExpr) {
	info := pass.Pkg.Info
	switch {
	case isBuiltin(info, call, "append"):
		pass.Reportf(call.Pos(), "%s is reachable from a hot path and calls append", name)
		return
	case isBuiltin(info, call, "make"):
		pass.Reportf(call.Pos(), "%s is reachable from a hot path and calls make", name)
		return
	case isBuiltin(info, call, "new"):
		pass.Reportf(call.Pos(), "%s is reachable from a hot path and calls new", name)
		return
	}

	// Explicit conversion to an interface type (unannotated functions
	// only; hotpath covers the annotated bodies).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if !annotated && types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at := info.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at) {
				pass.Reportf(call.Pos(),
					"%s is reachable from a hot path and boxes %s into an interface", name, at)
			}
		}
		return
	}

	callee, _ := calleeObj(info, call).(*types.Func)
	if callee == nil {
		// Indirect call: a func value or method value whose target is
		// unknown; flag only dynamic dispatch through selectors (calling
		// a captured func parameter is the caller's contract).
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
				pass.Reportf(call.Pos(),
					"%s is reachable from a hot path and calls %s dynamically through an interface", name, sel.Sel.Name)
			}
		}
		return
	}

	// Dynamic dispatch: the selection's receiver is an interface.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			if recv := s.Recv(); recv != nil && types.IsInterface(recv) {
				pass.Reportf(call.Pos(),
					"%s is reachable from a hot path and calls %s dynamically through an interface", name, callee.Name())
				return
			}
		}
	}

	// Annotation closure across module packages.
	if cp := callee.Pkg(); cp != nil && cp != pass.Pkg.Types &&
		pass.Facts.ModulePkgs[cp.Path()] && !pass.Facts.Hot[callee] {
		pass.Reportf(call.Pos(),
			"%s is reachable from a hot path and calls %s.%s, which is not annotated texsim:hot",
			name, cp.Name(), callee.Name())
		return
	}

	// Implicit interface boxing at the call boundary: a concrete argument
	// passed to an interface parameter is heap-boxed per call.
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			last := sig.Params().At(sig.Params().Len() - 1)
			if sl, ok := last.Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(),
			"%s is reachable from a hot path and boxes %s into an interface argument of %s",
			name, at, callee.Name())
	}
}
