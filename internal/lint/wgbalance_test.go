package lint

import "testing"

func TestWgbalance(t *testing.T) {
	src := `package wgbalance

import "sync"

func work() {}

// Add inside the spawned goroutine races with Wait: the main goroutine
// can reach Wait (counter zero) before any worker is scheduled.
func addInsideGoroutine() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		go func() { //want Add is called inside the spawned goroutine
			wg.Add(1)
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// The classic forgotten Done: Add pairs with the go statement right after
// it, and the goroutine never decrements.
func forgottenDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { //want never calls Done
		work()
	}()
	wg.Wait()
}

// Correct pool shape (prefetch/sweep miniature): Add before go, deferred
// Done first thing in the worker, Wait after the loop.
func pool(jobs []int) {
	var wg sync.WaitGroup
	sem := make(chan struct{}, 2)
	for range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			work()
		}()
	}
	wg.Wait()
}

func worker(wg *sync.WaitGroup) {
	defer wg.Done()
	work()
}

// The Done lives in a helper; the texflow summary sees through the call.
func poolViaHelper() {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg)
	wg.Wait()
}

func byValue(wg sync.WaitGroup) { //want passed by value
	wg.Wait()
}

// A goroutine that never touches the WaitGroup and is not Add-paired is
// none of our business.
func unrelatedGoroutine() {
	var wg sync.WaitGroup
	wg.Add(1)
	done := make(chan struct{}, 1)
	go func() { done <- struct{}{} }()
	go worker(&wg)
	wg.Wait()
	<-done
}
`
	testAnalyzer(t, Wgbalance, "wgbalance", src)
}
