package lint

import (
	"go/ast"
	"go/types"
)

// Determinism flags constructs that can make the simulated texel reference
// stream — and therefore every table in the reproduction — depend on
// anything but its inputs: wall-clock reads, randomness without a fixed
// seed, and map-iteration order feeding slices or output.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, unseeded randomness and order-dependent map iteration",
	Run:  runDeterminism,
}

// randGlobalOK lists math/rand functions that do not draw from the global
// source; everything else at package level does.
var randGlobalOK = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var stmts []ast.Stmt
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterminismCall(pass, n)
				return true
			case *ast.BlockStmt:
				stmts = n.List
			case *ast.CaseClause:
				stmts = n.Body
			case *ast.CommClause:
				stmts = n.Body
			default:
				return true
			}
			// Range statements are checked with their successor statement
			// in hand, so the canonical collect-keys-then-sort pattern is
			// recognized rather than flagged.
			for i, s := range stmts {
				for {
					lbl, ok := s.(*ast.LabeledStmt)
					if !ok {
						break
					}
					s = lbl.Stmt
				}
				rng, ok := s.(*ast.RangeStmt)
				if !ok {
					continue
				}
				var next ast.Stmt
				if i+1 < len(stmts) {
					next = stmts[i+1]
				}
				checkMapRange(pass, rng, next)
			}
			return true
		})
	}
}

func checkDeterminismCall(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	for _, name := range []string{"Now", "Since"} {
		if calleeIsPkgFunc(info, call, "time", name) {
			pass.Reportf(call.Pos(),
				"time.%s makes results depend on the wall clock; simulator state must be a pure function of its inputs", name)
			return
		}
	}
	pkgPath := calleePkgPath(info, call)
	if pkgPath != "math/rand" && pkgPath != "math/rand/v2" {
		return
	}
	obj := calleeObj(info, call)
	if _, ok := obj.(*types.Func); !ok {
		return
	}
	if obj.Name() == "New" && len(call.Args) == 1 {
		if fixedSeedSource(pass, call.Args[0]) {
			return
		}
		pass.Reportf(call.Pos(),
			"rand.New without a fixed-seed rand.NewSource(<constant>) makes runs irreproducible")
		return
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		// Methods on *rand.Rand are fine: the source was vetted at New.
		return
	}
	if !randGlobalOK[obj.Name()] {
		pass.Reportf(call.Pos(),
			"%s.%s draws from the global random source; use rand.New(rand.NewSource(<constant>))",
			pkgPath, obj.Name())
	}
}

// fixedSeedSource reports whether e is rand.NewSource (or NewPCG etc.)
// applied to compile-time constant arguments.
func fixedSeedSource(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	obj := calleeObj(pass.Pkg.Info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if p := obj.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
		return false
	}
	for _, arg := range call.Args {
		if tv, ok := pass.Pkg.Info.Types[arg]; !ok || tv.Value == nil {
			return false
		}
	}
	return true
}

// checkMapRange flags `for ... range m` over a map whose body appends to
// or indexes into a slice, or emits output: iteration order is randomized
// per run, so anything order-sensitive built inside is nondeterministic.
// The canonical remedy — collecting the keys and sorting them immediately
// after the loop — is recognized via next and not flagged.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, next ast.Stmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	reported := false
	report := func(what string) {
		if reported {
			return
		}
		reported = true
		pass.Reportf(rng.Pos(),
			"map iteration order is randomized but the loop body %s; sort the keys first", what)
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(pass.Pkg.Info, n, "append") {
				if !sortedAfterLoop(pass, n, next) {
					report("appends to a slice")
				}
				return true
			}
			if isOutputCall(pass, n) {
				report("writes output")
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if bt := pass.TypeOf(ix.X); bt != nil {
						switch bt.Underlying().(type) {
						case *types.Slice, *types.Array, *types.Pointer:
							report("assigns through a slice index")
						}
					}
				}
			}
		}
		return true
	})
}

// sortedAfterLoop reports whether the statement following the range loop
// sorts the slice that appendCall appends to — the collect-then-sort
// idiom this analyzer's diagnostic recommends.
func sortedAfterLoop(pass *Pass, appendCall *ast.CallExpr, next ast.Stmt) bool {
	if next == nil || len(appendCall.Args) == 0 {
		return false
	}
	target, ok := ast.Unparen(appendCall.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Pkg.Info.ObjectOf(target)
	if obj == nil {
		return false
	}
	stmt, ok := next.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	if p := calleePkgPath(pass.Pkg.Info, call); p != "sort" && p != "slices" {
		return false
	}
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.Pkg.Info.ObjectOf(id) == obj {
			return true
		}
	}
	return false
}

// outputFuncs are fmt functions that write to a stream.
var outputFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// outputMethods are io-style writer methods; emitting them per map entry
// serializes random order into the output.
var outputMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Printf": true, "Print": true, "Println": true,
}

func isOutputCall(pass *Pass, call *ast.CallExpr) bool {
	info := pass.Pkg.Info
	if p := calleePkgPath(info, call); p == "fmt" {
		obj := calleeObj(info, call)
		return obj != nil && outputFuncs[obj.Name()]
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
		return outputMethods[sel.Sel.Name]
	}
	return false
}
