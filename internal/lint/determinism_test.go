package lint

import "testing"

func TestDeterminism(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"wallclock", `package fix

import "time"

var epoch time.Time

func f() time.Duration {
	now := time.Now() //want time.Now
	_ = now
	return time.Since(epoch) //want time.Since
}

func ok() time.Duration {
	// Pure duration arithmetic is fine; only clock reads are flagged.
	return 3 * time.Second
}
`},
		{"rand-global", `package fix

import "math/rand"

func f() int {
	return rand.Intn(6) //want global random source
}

func g() {
	rand.Shuffle(3, func(i, j int) {}) //want global random source
}
`},
		{"rand-seeded", `package fix

import "math/rand"

var seed int64

func fixed() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(6) // methods on a vetted *rand.Rand are fine
}

func unseeded() *rand.Rand {
	return rand.New(rand.NewSource(seed)) //want without a fixed-seed
}
`},
		{"map-append", `package fix

import "sort"

func bad(m map[string]int) []string {
	var out []string
	for k := range m { //want sort the keys
		out = append(out, k)
	}
	return out
}

func good(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
`},
		{"map-output", `package fix

import (
	"fmt"
	"io"
)

func bad(w io.Writer, m map[string]int) {
	for k, v := range m { //want writes output
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func alsoBad(w io.Writer, m map[string]int) {
	for k := range m { //want writes output
		if _, err := w.Write([]byte(k)); err != nil {
			return
		}
	}
}
`},
		{"map-index", `package fix

func bad(m map[int]int, out []int) {
	i := 0
	for _, v := range m { //want slice index
		out[i] = v
		i++
	}
}

func good(m map[int]int) int {
	// Commutative reduction into a scalar does not depend on order.
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
`},
		{"slice-range-ok", `package fix

func f(s []int) []int {
	var out []int
	for _, v := range s {
		out = append(out, v) // slice iteration is ordered; no finding
	}
	return out
}
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			testAnalyzer(t, Determinism, "determinism_"+tc.name, tc.src)
		})
	}
}
