// Package-scoped analyzer waivers. Ignore directives waive single lines;
// some privileges are architectural and belong to a whole package — the
// telemetry package is the module's one sanctioned wall-clock reader, for
// example. Those waivers live in texlint.conf.json at the module root so
// they are reviewed like code, instead of accreting as per-line comments.
package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ConfigFile is the name of the waiver file at the module root.
const ConfigFile = "texlint.conf.json"

// FileConfig is the parsed texlint.conf.json.
type FileConfig struct {
	// Allow maps analyzer name -> import paths of packages exempt from
	// it. An entry waives the analyzer for those packages only; every
	// other package is still checked.
	Allow map[string][]string `json:"allow"`
}

// ParseConfig decodes and validates waiver JSON. Unknown analyzer names
// are rejected so a typo cannot silently waive nothing.
func ParseConfig(data []byte) (*FileConfig, error) {
	var cfg FileConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("lint: parsing %s: %w", ConfigFile, err)
	}
	if name := firstUnknownAnalyzer(cfg.Allow); name != "" {
		return nil, fmt.Errorf("lint: %s allows unknown analyzer %q", ConfigFile, name)
	}
	return &cfg, nil
}

// firstUnknownAnalyzer returns the lexically first waived analyzer name
// that is not registered, or "". Sorted so the reported name does not
// depend on map iteration order.
func firstUnknownAnalyzer(allow map[string][]string) string {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	names := make([]string, 0, len(allow))
	for name := range allow {
		if !known[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return ""
	}
	return names[0]
}

// LoadConfig reads the waiver file from the module root. A missing file
// is not an error: it yields a nil config, which allows nothing.
func LoadConfig(root string) (*FileConfig, error) {
	data, err := os.ReadFile(filepath.Join(root, ConfigFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return ParseConfig(data)
}

// Allows reports whether the config waives the analyzer for the package.
// A nil config allows nothing.
func (c *FileConfig) Allows(analyzer, pkgPath string) bool {
	if c == nil {
		return false
	}
	for _, p := range c.Allow[analyzer] {
		if p == pkgPath {
			return true
		}
	}
	return false
}
