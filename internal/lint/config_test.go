package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// wallClockFixture reads the wall clock, which the determinism analyzer
// forbids everywhere the config does not waive it.
const wallClockFixture = `package fx

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`

func checkWaived(t *testing.T, path string, cfg *FileConfig) []Diagnostic {
	t.Helper()
	pkg, err := CheckSource(path, map[string]string{"fx.go": wallClockFixture})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunConfigured([]*Package{pkg}, []*Analyzer{Determinism}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// TestRunConfiguredRejectsUnregisteredWaiver: a FileConfig built in code
// (not via ParseConfig) with a typo'd analyzer name must be an error, not
// a waiver that silently applies to nothing.
func TestRunConfiguredRejectsUnregisteredWaiver(t *testing.T) {
	pkg, err := CheckSource("texcache/internal/core", map[string]string{"fx.go": wallClockFixture})
	if err != nil {
		t.Fatal(err)
	}
	cfg := &FileConfig{Allow: map[string][]string{
		"determinsim": {"texcache/internal/core"}, // note the typo
	}}
	if _, err := RunConfigured([]*Package{pkg}, []*Analyzer{Determinism}, cfg); err == nil {
		t.Fatal("unregistered waived analyzer name accepted")
	} else if !strings.Contains(err.Error(), "determinsim") {
		t.Errorf("error %q does not name the offending analyzer", err)
	}
}

// TestConfigWaivesAllowlistedPackage: the same wall-clock-reading source
// is clean at an allowlisted import path and still fires anywhere else —
// the waiver is package-scoped, not analyzer-wide.
func TestConfigWaivesAllowlistedPackage(t *testing.T) {
	cfg := &FileConfig{Allow: map[string][]string{
		"determinism": {"texcache/internal/telemetry"},
	}}
	if diags := checkWaived(t,"texcache/internal/telemetry", cfg); len(diags) != 0 {
		t.Errorf("allowlisted package still flagged: %v", diags)
	}
	diags := checkWaived(t,"texcache/internal/core", cfg)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "time.Now") {
		t.Errorf("non-allowlisted package not flagged: %v", diags)
	}
}

func TestNilConfigAllowsNothing(t *testing.T) {
	if diags := checkWaived(t,"texcache/internal/telemetry", nil); len(diags) != 1 {
		t.Errorf("nil config waived the finding: %v", diags)
	}
	var cfg *FileConfig
	if cfg.Allows("determinism", "any") {
		t.Error("nil config Allows returned true")
	}
}

func TestParseConfigRejectsUnknownAnalyzer(t *testing.T) {
	if _, err := ParseConfig([]byte(`{"allow":{"nosuch":["a"]}}`)); err == nil {
		t.Error("unknown analyzer name accepted")
	}
	if _, err := ParseConfig([]byte(`{bad json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	cfg, err := ParseConfig([]byte(`{"allow":{"determinism":["x"]}}`))
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Allows("determinism", "x") || cfg.Allows("determinism", "y") ||
		cfg.Allows("hotpath", "x") {
		t.Errorf("Allows misbehaves: %+v", cfg)
	}
}

func TestLoadConfig(t *testing.T) {
	dir := t.TempDir()
	cfg, err := LoadConfig(dir)
	if err != nil || cfg != nil {
		t.Errorf("missing file: cfg=%v err=%v, want nil/nil", cfg, err)
	}
	path := filepath.Join(dir, ConfigFile)
	if err := os.WriteFile(path, []byte(`{"allow":{"determinism":["p"]}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err = LoadConfig(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Allows("determinism", "p") {
		t.Error("loaded config does not allow configured package")
	}
}

// TestModuleConfigMatchesPolicy pins the checked-in waiver file: only the
// telemetry package may be waived, and only for determinism. Widening the
// file means consciously editing this test.
func TestModuleConfigMatchesPolicy(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(root)
	if err != nil {
		t.Fatal(err)
	}
	if cfg == nil {
		t.Fatal("module has no texlint.conf.json")
	}
	if len(cfg.Allow) != 1 ||
		len(cfg.Allow["determinism"]) != 1 ||
		cfg.Allow["determinism"][0] != "texcache/internal/telemetry" {
		t.Errorf("waiver file widened beyond the telemetry determinism waiver: %+v", cfg.Allow)
	}
}
