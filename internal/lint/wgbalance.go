package lint

// wgbalance checks sync.WaitGroup accounting across goroutine boundaries.
// The repo's pools all follow the same shape — wg.Add(1) in the spawning
// loop, defer wg.Done() first thing in the worker, wg.Wait() after the
// loop — and the analyzer enforces the properties that make that shape
// correct:
//
//   - Add must happen before the go statement: an Add inside the spawned
//     goroutine races with Wait, which can return before the goroutine is
//     scheduled;
//   - every goroutine that participates in a WaitGroup must guarantee a
//     Done (directly, deferred, or via a module helper whose texflow
//     summary calls Done), or Wait blocks forever;
//   - a sync.WaitGroup must not be passed by value: Add/Done on a copy
//     never reach the Wait on the original.
//
// The checks are presence-based, not counting-based: whether Add(1) per
// iteration matches one Done per worker is undecidable statically, so a
// goroutine with any Done on any path passes. Summaries make the checks
// interprocedural: go worker(&wg) is as visible as a literal.

import (
	"go/ast"
	"go/types"
)

// Wgbalance reports WaitGroup Add/Done/Wait mismatches across goroutine
// boundaries and by-value WaitGroup parameters.
var Wgbalance = &Analyzer{
	Name: "wgbalance",
	Doc:  "sync.WaitGroup misuse: Add inside the spawned goroutine, missing Done, WaitGroup passed by value",
	Run:  runWgbalance,
}

func runWgbalance(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, sc := range scopesOf(file) {
			wgbalanceScope(pass, sc)
		}
	}
}

// localWaitGroups finds `var wg sync.WaitGroup` declarations in the scope.
func localWaitGroups(info *types.Info, sc funcScope) []*types.Var {
	var out []*types.Var
	inspectScope(sc.body, func(n ast.Node) bool {
		spec, ok := n.(*ast.ValueSpec)
		if !ok {
			return true
		}
		for _, name := range spec.Names {
			v, ok := info.Defs[name].(*types.Var)
			if !ok || !isWaitGroup(v.Type()) {
				continue
			}
			if _, isPtr := v.Type().Underlying().(*types.Pointer); !isPtr {
				out = append(out, v)
			}
		}
		return true
	})
	return out
}

// goWGOps returns the WaitGroup ops the goroutine started by g may
// perform on v, whether the goroutine references v at all, and whether
// those references are fully understood (false when v is handed to a
// function outside the module, whose behaviour is unknown).
func goWGOps(facts *Facts, info *types.Info, g *ast.GoStmt, v *types.Var) (ops WGOps, refs, known bool) {
	var flow *FlowFacts
	if facts != nil {
		flow = facts.Flow
	}
	known = true
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
				refs = true
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// &wg escaping into foreign code makes the goroutine's
			// accounting unknowable.
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && wgIs(info, sel.X, v) {
				return true // wg.Add/Done/Wait themselves
			}
			for _, arg := range call.Args {
				if wgIs(info, arg, v) && !isModuleFunc(facts, calleeObj(info, call)) {
					known = false
				}
			}
			return true
		})
		return wgOpsIn(info, flow, lit.Body, v), refs, known
	}
	for _, arg := range g.Call.Args {
		if wgIs(info, arg, v) {
			if flow != nil {
				ops = flow.WGArgOps(info, g.Call, v)
			}
			return ops, true, isModuleFunc(facts, calleeObj(info, g.Call))
		}
	}
	return WGOps{}, false, true
}

func wgbalanceScope(pass *Pass, sc funcScope) {
	info := pass.Pkg.Info

	// By-value WaitGroup parameters (declarations only; literals cannot
	// usefully be annotated).
	if sc.decl != nil && sc.decl.Type.Params != nil {
		for _, field := range sc.decl.Type.Params.List {
			t := info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); !isPtr && isWaitGroup(t) {
				pass.Reportf(field.Pos(), "sync.WaitGroup passed by value: Add/Done act on a copy and never release the caller's Wait")
			}
		}
	}

	flow := pass.Facts.Flow
	wgs := localWaitGroups(info, sc)
	if len(wgs) == 0 {
		return
	}
	var gos []*ast.GoStmt
	inspectScope(sc.body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			gos = append(gos, g)
		}
		return true
	})

	for _, v := range wgs {
		// Ops in the spawner itself. Goroutine subtrees are excluded: the
		// literal bodies are skipped here and judged per-goroutine below.
		var main WGOps
		inspectScope(sc.body, func(n ast.Node) bool {
			if _, ok := n.(*ast.GoStmt); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			ops := wgOpsIn(info, flow, call, v)
			main.Adds = main.Adds || ops.Adds
			main.Dones = main.Dones || ops.Dones
			main.Waits = main.Waits || ops.Waits
			return true
		})

		// A wg.Add statement immediately before a go statement pairs the
		// two: that goroutine owes the matching Done even if its body
		// never mentions wg (the classic forgotten-Done shape).
		paired := make(map[*ast.GoStmt]bool)
		inspectScope(sc.body, func(n ast.Node) bool {
			blk, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i := 0; i+1 < len(blk.List); i++ {
				g, ok := blk.List[i+1].(*ast.GoStmt)
				if !ok {
					continue
				}
				if _, isGo := blk.List[i].(*ast.GoStmt); isGo {
					continue
				}
				if wgOpsIn(info, flow, blk.List[i], v).Adds {
					paired[g] = true
				}
			}
			return true
		})

		for _, g := range gos {
			ops, refs, known := goWGOps(pass.Facts, info, g, v)
			if (!refs && !paired[g]) || !known {
				continue
			}
			if ops.Adds && main.Waits && !main.Adds {
				pass.Reportf(g.Pos(), "%s.Add is called inside the spawned goroutine: Wait can return before the goroutine runs; call Add before the go statement", v.Name())
			}
			if !ops.Dones && main.Adds && main.Waits {
				pass.Reportf(g.Pos(), "goroutine spawned for %s never calls Done on any path: Wait may block forever", v.Name())
			}
		}
	}
}
