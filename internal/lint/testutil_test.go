package lint

import (
	"strings"
	"testing"
)

// testAnalyzer type-checks the fixture source as an in-memory package and
// compares the analyzer's diagnostics against `//want <substring>` markers:
// a line carrying a marker must produce exactly one diagnostic whose
// message contains the substring, and no unmarked line may produce any.
func testAnalyzer(t *testing.T, a *Analyzer, name, src string) {
	t.Helper()
	pkg, err := CheckSource(name, map[string]string{name + ".go": src})
	if err != nil {
		t.Fatalf("fixture %s does not type-check: %v", name, err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{a})

	want := make(map[int]string)
	for i, line := range strings.Split(src, "\n") {
		if _, after, ok := strings.Cut(line, "//want "); ok {
			want[i+1] = strings.TrimSpace(after)
		}
	}

	seen := make(map[int]bool)
	for _, d := range diags {
		sub, ok := want[d.Pos.Line]
		if !ok {
			t.Errorf("unexpected diagnostic at line %d: %s", d.Pos.Line, d.Message)
			continue
		}
		if seen[d.Pos.Line] {
			t.Errorf("duplicate diagnostic at line %d: %s", d.Pos.Line, d.Message)
			continue
		}
		seen[d.Pos.Line] = true
		if !strings.Contains(d.Message, sub) {
			t.Errorf("line %d: message %q does not contain %q", d.Pos.Line, d.Message, sub)
		}
		if d.Analyzer != a.Name {
			t.Errorf("line %d: diagnostic attributed to %q, want %q", d.Pos.Line, d.Analyzer, a.Name)
		}
	}
	for line, sub := range want {
		if !seen[line] {
			t.Errorf("missing diagnostic at line %d (want %q)", line, sub)
		}
	}
}
