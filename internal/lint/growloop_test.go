package lint

import "testing"

// TestGrowloopCountedAppends covers the flagged shapes: counted for
// loops, range loops over slices, integer ranges, and unset fields of a
// local composite literal.
func TestGrowloopCountedAppends(t *testing.T) {
	testAnalyzer(t, Growloop, "growfix", `package growfix

func counted(n int) []int {
	var xs []int
	for i := 0; i < n; i++ {
		xs = append(xs, i) //want appends to xs once per iteration of a loop bounded by n
	}
	return xs
}

func ranged(src []string) []string {
	out := []string{}
	for _, s := range src {
		out = append(out, s) //want bounded by len(src)
	}
	return out
}

func intRange(n int) []int {
	xs := make([]int, 0)
	for range n {
		xs = append(xs, 0) //want bounded by n
	}
	return xs
}

type report struct {
	rows [][]string
	name string
}

func field(n int) *report {
	r := &report{name: "r"}
	for i := 0; i < n; i++ {
		r.rows = append(r.rows, nil) //want appends to r.rows
	}
	return r
}
`)
}

// TestGrowloopQuietShapes covers every screen: explicit capacity, the
// scratch reset, cross-loop accumulators, multiple appends, conditional
// appends, underivable bounds, and fields the literal preallocates.
func TestGrowloopQuietShapes(t *testing.T) {
	testAnalyzer(t, Growloop, "quietfix", `package quietfix

func preallocated(n int) []int {
	xs := make([]int, 0, n)
	for i := 0; i < n; i++ {
		xs = append(xs, i)
	}
	return xs
}

func scratch(n int, sink func([]int)) {
	var xs []int
	for i := 0; i < n; i++ {
		xs = xs[:0]
		xs = append(xs, i)
		sink(xs)
	}
}

// The slice accumulates across outer iterations; the inner bound is not
// its final length.
func accumulates(batches [][]int) []int {
	var all []int
	for _, b := range batches {
		for range b {
			all = append(all, 0)
		}
	}
	return all
}

// Two appends per iteration: the bound is not the final length.
func twoAppends(n int) []int {
	var xs []int
	for i := 0; i < n; i++ {
		xs = append(xs, i)
		xs = append(xs, -i)
	}
	return xs
}

func conditional(src []int) []int {
	var evens []int
	for _, v := range src {
		if v%2 == 0 {
			evens = append(evens, v)
		}
	}
	return evens
}

// Channel ranges have no derivable trip count.
func drain(ch chan int) []int {
	var xs []int
	for v := range ch {
		xs = append(xs, v)
	}
	return xs
}

// The bound is reassigned in the body.
func movingBound(n int) []int {
	var xs []int
	for i := 0; i < n; i++ {
		if i == 0 {
			n = n / 2
		}
		xs = append(xs, i)
	}
	return xs
}

// A target initialized from a call may arrive preallocated.
func fromCall(n int, seed func() []int) []int {
	xs := seed()
	for i := 0; i < n; i++ {
		xs = append(xs, i)
	}
	return xs
}

type report struct{ rows [][]string }

func fieldPrealloc(n int) *report {
	r := &report{rows: make([][]string, 0, n)}
	for i := 0; i < n; i++ {
		r.rows = append(r.rows, nil)
	}
	return r
}

func fieldAssigned(n int) *report {
	r := &report{}
	r.rows = make([][]string, 0, n)
	for i := 0; i < n; i++ {
		r.rows = append(r.rows, nil)
	}
	return r
}
`)
}
