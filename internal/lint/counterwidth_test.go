package lint

import "testing"

func TestCounterwidth(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"narrow-fields", `package fix

type stats struct {
	hostBytes int32
	texels    int
	misses    uint32
	hits      int64
}

func (s *stats) record(n int32) {
	s.hostBytes += n //want use int64
	s.texels++       //want use int64
	s.misses++       //want use int64
	s.hits++         // already 64-bit
}
`},
		{"wide-ok", `package fix

type counters struct {
	l2ReadBytes int64
	lookups     uint64
}

func (c *counters) tick(dl int64) {
	c.l2ReadBytes += dl
	c.lookups++
}
`},
		{"non-counter-names", `package fix

func f(n int) int {
	// Loop indices and scalars without counter names stay exempt even
	// when 32-bit; the analyzer keys on accumulator naming.
	sum := 0
	for i := 0; i < n; i++ {
		sum += i
	}
	return sum
}
`},
		{"locals-and-elements", `package fix

func f(perLevelRefs []int32, texels int16) {
	perLevelRefs[0] += 1 //want use int64
	texels++             //want use int64
}
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			testAnalyzer(t, Counterwidth, "counterwidth_"+tc.name, tc.src)
		})
	}
}
