package lint

import "testing"

func TestChanprotocol(t *testing.T) {
	src := `package chanprotocol

func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) //want may already be closed
}

func sendAfterClose() {
	ch := make(chan int)
	close(ch)
	ch <- 1 //want after it is closed
}

func sendTo(ch chan int) { ch <- 2 }

// The late send hides behind a summarized helper.
func sendAfterCloseViaHelper() {
	ch := make(chan int)
	close(ch)
	sendTo(ch) //want after it is closed
}

func closeParam(ch chan int) {
	close(ch) //want non-owner
}

// Ownership transfer asserted: the spawner hands the channel over.
//
//texsim:closes producer owns the results channel it was handed
func closeOwned(ch chan int) {
	close(ch)
}

// Mutually exclusive branches never close twice at runtime.
func closeEitherBranch(a bool) {
	ch := make(chan int)
	if a {
		close(ch)
	} else {
		close(ch)
	}
}

type rendered struct {
	shards [][]byte
	ready  []chan struct{}
}

// Render-farm miniature: store the shard, then announce it.
//
//texsim:publishes shards ready
func (rt *rendered) publish(f int, data []byte) {
	rt.shards[f] = data
	close(rt.ready[f])
}

// The store-then-close order is inverted: a reader woken by the close can
// observe a nil shard.
//
//texsim:publishes shards ready
func (rt *rendered) publishInverted(f int, data []byte) {
	close(rt.ready[f]) //want texsim:publishes contract
	rt.shards[f] = data
}

//texsim:publishes shards
func (rt *rendered) badAnnotation(f int) { //want malformed //texsim:publishes annotation
	close(rt.ready[f])
}

// Abort miniature: closing ready[f] across loop iterations closes a
// different channel each time, not the same one twice.
func (rt *rendered) abort(from int) {
	for f := from; f < len(rt.ready); f++ {
		close(rt.ready[f])
	}
}
`
	testAnalyzer(t, Chanprotocol, "chanprotocol", src)
}
