package lint

import "testing"

// TestPoolcheckPerIterationAlloc covers rule 1: a large allocation per
// worker-loop iteration whose memory is published to a long-lived sink,
// against the full set of reuse idioms that must stay quiet.
func TestPoolcheckPerIterationAlloc(t *testing.T) {
	testAnalyzer(t, Poolcheck, "poolfix", `package poolfix

func nop() {}

func fanout(n int, out [][]byte) {
	go nop()
	for i := 0; i < n; i++ {
		buf := make([]byte, 1<<16) //want allocates a make'd buffer of constant size per loop iteration
		out[i] = buf
	}
}

// Preallocated capacity is the reuse pattern itself.
func preallocated(n int, out [][]byte) {
	go nop()
	buf := make([]byte, 0, 1<<16)
	for i := 0; i < n; i++ {
		buf = buf[:0]
		buf = append(buf, byte(i))
		out[i] = nil
	}
}

// A scratch buffer resliced to zero each iteration amortizes to one
// allocation.
func scratch(n int, sink func([]byte)) {
	go nop()
	var b []byte
	for i := 0; i < n; i++ {
		b = b[:0]
		b = append(b, byte(i))
		sink(b)
	}
}

// Small constant allocations are not worth pooling.
func small(n int, out [][]byte) {
	go nop()
	for i := 0; i < n; i++ {
		buf := make([]byte, 64)
		out[i] = buf
	}
}

// An allocation that dies within the iteration needs no pool.
func dies(n int) int {
	go nop()
	total := 0
	for i := 0; i < n; i++ {
		buf := make([]byte, 1<<16)
		total += len(buf)
	}
	return total
}

// Outside worker context (no goroutines, not hot), per-iteration
// allocation is not poolcheck's business.
func coldPath(n int, out [][]byte) {
	for i := 0; i < n; i++ {
		buf := make([]byte, 1<<16)
		out[i] = buf
	}
}
`)
}

// TestPoolcheckGrownFieldPublish covers rule 2 with a miniature of the
// pre-fix parallel sweep engine: a per-frame shardBuffer local whose
// append-grown backing store is published into the task's shard table
// every iteration — the exact shape behind the 90x memory blowup.
func TestPoolcheckGrownFieldPublish(t *testing.T) {
	testAnalyzer(t, Poolcheck, "sweepfix", `package sweepfix

// shardBuffer accumulates one frame's encoded trace shard.
type shardBuffer struct {
	data []byte
}

func (s *shardBuffer) Write(p []byte) (int, error) {
	s.data = append(s.data, p...)
	return len(p), nil
}

type renderTask struct {
	shards [][]byte
	frames int
}

func (rt *renderTask) consume() {}

func (rt *renderTask) render(chunk []byte) {
	for f := 0; f < rt.frames; f++ {
		var buf shardBuffer
		if _, err := buf.Write(chunk); err != nil {
			return
		}
		rt.shards[f] = buf.data //want publishes per-iteration buffer buf.data, grown by append in shardBuffer methods
	}
	go rt.consume()
}

// Reusing one buffer across frames and copying into storage the task
// already owns is the fix: no per-iteration growth is published.
func (rt *renderTask) renderPooled(chunk []byte) {
	var buf shardBuffer
	for f := 0; f < rt.frames; f++ {
		buf.data = buf.data[:0]
		if _, err := buf.Write(chunk); err != nil {
			return
		}
		copy(rt.shards[f], buf.data)
	}
	go rt.consume()
}
`)
}

// TestPoolcheckPerCallStore covers rule 3: a spawned worker storing the
// result of a function summarized as allocating unpooled memory on
// every call, while the same store in a non-goroutine setup loop stays
// quiet (building one hierarchy per spec before spawning is setup, not
// a leak).
func TestPoolcheckPerCallStore(t *testing.T) {
	testAnalyzer(t, Poolcheck, "callfix", `package callfix

func decode(n int) []byte {
	b := make([]byte, 1<<16)
	for i := 0; i < n; i++ {
		b = append(b, byte(i))
	}
	return b
}

// pooledDecode recycles its buffers internally.
//
// texsim:pool
func pooledDecode(n int) []byte { return decode(n) }

func worker(jobs []int, out [][]byte) {
	for i := range jobs {
		out[i] = decode(jobs[i]) //want stores the result of decode, which allocates unpooled memory on every call
	}
}

func pooledWorker(jobs []int, out [][]byte) {
	for i := range jobs {
		out[i] = pooledDecode(jobs[i])
	}
}

func run(jobs []int, out [][]byte) {
	go worker(jobs, out)
	go pooledWorker(jobs, out)
}

// Setup loops on the spawning side run once per spec, not per frame on
// a worker goroutine.
func setup(specs []int, out [][]byte, jobs []int) {
	for i := range specs {
		out[i] = decode(specs[i])
	}
	go worker(jobs, out)
}
`)
}
