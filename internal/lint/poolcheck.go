package lint

import (
	"go/ast"
	"go/types"
)

// Poolcheck is the texmem per-iteration allocation analyzer. It hunts
// the pattern that produced the parallel sweep engine's 90x memory
// blowup: a worker loop that, every iteration, allocates (or grows) a
// large buffer and publishes it to a long-lived sink, so no iteration's
// memory is ever reused. Three rules, all confined to worker context —
// functions that spawn goroutines, everything they call, goroutine
// bodies themselves, and the call closure of texsim:hot roots:
//
//  1. A direct allocation site inside a loop whose size class is large
//     (constant >= 4 KiB, bounded by a parameter length, or unknown)
//     and whose memory escapes to a long-lived sink, with no recognized
//     reuse pattern (sync.Pool, cap guard, [:0] reslice, preallocated
//     capacity, texsim:pool allocator).
//  2. A loop-local variable of a buffer type — a struct one of whose
//     fields is grown by append in its methods (texmem GrowFields) —
//     whose grown field is stored out of the loop per iteration: the
//     render loop's `var buf shardBuffer; ...; shards[f] = buf.data`.
//  3. Inside functions launched by `go` (and goroutine literals): a
//     per-iteration call to a module function summarized as allocating
//     unpooled large memory on every call (texmem PerCall fixpoint),
//     whose result is stored through a long-lived sink.
//
// The fix is always the same family: thread a pooled or per-worker
// reusable buffer through the loop instead of allocating per iteration.
var Poolcheck = &Analyzer{
	Name: "poolcheck",
	Doc:  "flag per-iteration large allocations escaping worker loops that pooling could eliminate",
	Run:  runPoolcheck,
}

func runPoolcheck(pass *Pass) {
	mem := pass.Facts.Mem
	if mem == nil {
		return
	}
	for fn, decl := range mem.WorkerContexts(pass) {
		pc := &poolChecker{pass: pass, mem: mem, fn: fn}
		pc.sites = mem.Allocs[fn]
		pc.checkBody(decl.Body, mem.Spawned[fn])
	}
}

// poolChecker carries per-function state across the loop walks.
type poolChecker struct {
	pass  *Pass
	mem   *MemFacts
	fn    *types.Func
	sites []*AllocSite
}

// checkBody finds the outermost loops of a body (descending into
// goroutine literals with the spawned flag set) and applies the rules
// to each.
func (pc *poolChecker) checkBody(body ast.Node, spawned bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			pc.checkLoop(n.Body, spawned)
			return false
		case *ast.RangeStmt:
			pc.checkLoop(n.Body, spawned)
			return false
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				pc.checkBody(lit.Body, true)
			}
			return false
		case *ast.FuncLit:
			return false // non-goroutine closures are their own context
		}
		return true
	})
}

// checkLoop applies the three per-iteration rules to one loop body.
// inGo marks bodies that execute on a worker goroutine.
func (pc *poolChecker) checkLoop(body *ast.BlockStmt, inGo bool) {
	info := pc.pass.Pkg.Info

	// Loop-local variables of buffer types (structs with append-grown
	// fields), for rule 2.
	growLocal := make(map[types.Object]*types.Named)
	record := func(id *ast.Ident) {
		obj := info.ObjectOf(id)
		if obj == nil {
			return
		}
		t := obj.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && len(pc.mem.GrowFields[named]) > 0 {
			growLocal[obj] = named
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				pc.checkBody(lit.Body, true)
			}
			return false
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, name := range vs.Names {
							record(name)
						}
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok.String() == ":=" {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						record(id)
					}
				}
			}
			pc.checkStores(n, growLocal, inGo)
		case *ast.CallExpr:
			// Rule 1: a direct large escaping allocation per iteration.
			site := pc.siteAt(n)
			if site == nil || site.Reused || !site.Large() || site.Escape != EscapeSink {
				return true
			}
			pc.pass.Reportf(n.Pos(),
				"%s allocates %s per loop iteration and publishes it to a long-lived sink; reuse a pooled or per-worker buffer (sync.Pool, cap-guarded scratch, or [:0] reslice)",
				pc.fn.Name(), allocNoun(site))
		}
		return true
	})
}

// checkStores applies rules 2 and 3 to one assignment in a loop body.
func (pc *poolChecker) checkStores(n *ast.AssignStmt, growLocal map[types.Object]*types.Named, inGo bool) {
	info := pc.pass.Pkg.Info
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		switch ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		default:
			continue
		}
		rhs := ast.Unparen(n.Rhs[i])

		// Rule 2: grown field of a loop-local buffer published per
		// iteration: shards[f] = buf.data.
		if sel, ok := rhs.(*ast.SelectorExpr); ok {
			if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				obj := info.ObjectOf(base)
				if named, isGrow := growLocal[obj]; isGrow && pc.mem.GrowFields[named][sel.Sel.Name] {
					pc.pass.Reportf(n.Pos(),
						"%s publishes per-iteration buffer %s.%s, grown by append in %s methods, to a long-lived sink every iteration; pool the buffer or reuse its storage",
						pc.fn.Name(), base.Name, sel.Sel.Name, named.Obj().Name())
				}
			}
		}

		// Rule 3: per-iteration call to a PerCall module function with
		// the result stored through a sink, on a worker goroutine.
		if !inGo {
			continue
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		callee, _ := calleeObj(info, call).(*types.Func)
		if callee == nil || !pc.mem.PerCall[callee] || pc.mem.Pooled[callee] {
			continue
		}
		if cp := callee.Pkg(); cp == nil || !pc.pass.Facts.ModulePkgs[cp.Path()] {
			continue
		}
		pc.pass.Reportf(call.Pos(),
			"%s stores the result of %s, which allocates unpooled memory on every call, into a long-lived sink each worker-loop iteration; reuse a pooled buffer instead",
			pc.fn.Name(), callee.Name())
	}
}

// siteAt finds the texmem summary site for an allocating call by
// position.
func (pc *poolChecker) siteAt(call *ast.CallExpr) *AllocSite {
	for _, s := range pc.sites {
		if s.Pos == call.Pos() {
			return s
		}
	}
	return nil
}

// allocNoun renders a site's kind and size class for diagnostics.
func allocNoun(s *AllocSite) string {
	var what string
	switch s.Kind {
	case AllocMake:
		what = "a make'd buffer"
	case AllocNew:
		what = "a new object"
	default:
		what = "append growth"
	}
	switch s.Class {
	case SizeConst:
		return what + " of constant size"
	case SizeParamLen:
		return what + " sized by a parameter's length"
	default:
		return what + " of statically unknown size"
	}
}
