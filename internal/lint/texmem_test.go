package lint

import (
	"go/types"
	"testing"
)

// memFixture type-checks one in-memory file and returns its package and
// texmem facts.
func memFixture(t *testing.T, src string) (*Package, *MemFacts) {
	t.Helper()
	pkg, err := CheckSource("memfix", map[string]string{"memfix.go": src})
	if err != nil {
		t.Fatalf("fixture does not type-check: %v", err)
	}
	return pkg, CollectFacts([]*Package{pkg}).Mem
}

// TestMemFactsPerCallFixpoint exercises the interprocedural closure: a
// leaf that allocates a large unpooled buffer per call marks its whole
// caller chain PerCall, while pooling — the texsim:pool marker, a
// sync.Pool Get, an explicit capacity — stops the propagation.
func TestMemFactsPerCallFixpoint(t *testing.T) {
	pkg, mem := memFixture(t, `package memfix

import "sync"

func leaf() []byte { return make([]byte, 1<<16) }
func mid() []byte  { return leaf() }
func top() []byte  { return mid() }

// pooled hands out recycled buffers.
//
// texsim:pool
func pooled() []byte { return make([]byte, 1<<16) }

func viaPool() []byte { return pooled() }

var p sync.Pool

func fromPool() []byte  { return p.Get().([]byte) }
func viaGet() []byte    { return fromPool() }
func small() []byte     { return make([]byte, 64) }
func capped(n int) []byte {
	b := make([]byte, 0, n)
	return b
}
`)
	cases := []struct {
		fn      string
		perCall bool
	}{
		{"leaf", true},
		{"mid", true},  // direct callee
		{"top", true},  // two hops, needs the fixpoint
		{"pooled", false},
		{"viaPool", false},
		{"fromPool", false},
		{"viaGet", false},
		{"small", false},
		{"capped", false},
	}
	for _, c := range cases {
		fn := lookupFunc(t, pkg, c.fn)
		if got := mem.PerCall[fn]; got != c.perCall {
			t.Errorf("PerCall[%s] = %v, want %v", c.fn, got, c.perCall)
		}
	}
	for _, name := range []string{"pooled", "fromPool"} {
		if !mem.Pooled[lookupFunc(t, pkg, name)] {
			t.Errorf("Pooled[%s] = false, want true", name)
		}
	}
}

// TestMemFactsAllocSites checks the per-site summaries: kind, size
// class, and where the memory ends up.
func TestMemFactsAllocSites(t *testing.T) {
	pkg, mem := memFixture(t, `package memfix

type state struct{ buf []byte }

func sites(n int, dst [][]byte, s *state) {
	dead := make([]byte, 8192)
	_ = dead
	sized := make([]byte, len(dst))
	dst[0] = sized
	s.buf = make([]byte, 16)
}

func grower(xs []int, v int) []int {
	for i := 0; i < v; i++ {
		xs = append(xs, i)
	}
	return xs
}
`)
	sites := mem.Allocs[lookupFunc(t, pkg, "sites")]
	if len(sites) != 3 {
		t.Fatalf("sites: got %d alloc sites, want 3", len(sites))
	}
	dead, sized, field := sites[0], sites[1], sites[2]
	if dead.Kind != AllocMake || dead.Class != SizeConst || dead.Bytes != 8192 {
		t.Errorf("dead site = %+v, want const 8192-byte make", dead)
	}
	if dead.Escape != EscapeNone {
		t.Errorf("dead site escape = %v, want EscapeNone", dead.Escape)
	}
	if !dead.Large() {
		t.Errorf("8192-byte const site should be Large")
	}
	if sized.Class != SizeParamLen || sized.Param != 1 {
		t.Errorf("sized site = %+v, want SizeParamLen of param 1", sized)
	}
	if sized.Escape != EscapeSink {
		t.Errorf("sized site escape = %v, want EscapeSink (indexed slot)", sized.Escape)
	}
	if field.Class != SizeConst || field.Bytes != 16 || field.Large() {
		t.Errorf("field site = %+v, want small 16-byte const", field)
	}
	if field.Escape != EscapeSink {
		t.Errorf("field site escape = %v, want EscapeSink (struct field)", field.Escape)
	}

	grow := mem.Allocs[lookupFunc(t, pkg, "grower")]
	if len(grow) != 1 {
		t.Fatalf("grower: got %d alloc sites, want 1", len(grow))
	}
	g := grow[0]
	if g.Kind != AllocAppend || g.Class != SizeUnknown || !g.InLoop {
		t.Errorf("grower site = %+v, want in-loop append of unknown size", g)
	}
	if g.Escape != EscapeReturn {
		t.Errorf("grower site escape = %v, want EscapeReturn", g.Escape)
	}
}

// TestMemFactsReusePatterns checks that each recognized reuse idiom
// suppresses the Reused bit's absence.
func TestMemFactsReusePatterns(t *testing.T) {
	pkg, mem := memFixture(t, `package memfix

import "sync"

func scratch(n int, sink func([]byte)) {
	var b []byte
	for i := 0; i < n; i++ {
		b = b[:0]
		b = append(b, byte(i))
		sink(b)
	}
}

func guarded(b []byte, n int) []byte {
	if cap(b) < n {
		b = make([]byte, 0, n)
	}
	return b
}

var factory = sync.Pool{New: func() any { return make([]byte, 1<<16) }}

func prealloc(n int, dst [][]byte) {
	b := make([]byte, 0, 1<<16)
	dst[0] = b
}
`)
	for _, name := range []string{"scratch", "guarded", "prealloc"} {
		for i, s := range mem.Allocs[lookupFunc(t, pkg, name)] {
			if !s.Reused {
				t.Errorf("%s site %d = %+v, want Reused", name, i, s)
			}
		}
		if mem.PerCall[lookupFunc(t, pkg, name)] {
			t.Errorf("PerCall[%s] = true, want false (reuse pattern)", name)
		}
	}
}

// TestMemFactsGrowFieldsAndSpawn checks the buffer-type and goroutine
// facts poolcheck's worker-context rules consume.
func TestMemFactsGrowFieldsAndSpawn(t *testing.T) {
	pkg, mem := memFixture(t, `package memfix

type shardBuffer struct{ data []byte }

func (s *shardBuffer) Write(p []byte) (int, error) {
	s.data = append(s.data, p...)
	return len(p), nil
}

func worker(ch chan int) {
	for range ch {
	}
}

func spawn(ch chan int) {
	go worker(ch)
}
`)
	named, ok := pkg.Types.Scope().Lookup("shardBuffer").Type().(*types.Named)
	if !ok {
		t.Fatal("shardBuffer is not a named type")
	}
	if !mem.GrowFields[named]["data"] {
		t.Errorf("GrowFields[shardBuffer] = %v, want data", mem.GrowFields[named])
	}
	if !mem.Spawners[lookupFunc(t, pkg, "spawn")] {
		t.Error("Spawners[spawn] = false, want true")
	}
	if !mem.Spawned[lookupFunc(t, pkg, "worker")] {
		t.Error("Spawned[worker] = false, want true")
	}
}
