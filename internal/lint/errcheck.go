package lint

import (
	"go/ast"
	"go/types"
)

// Errcheck forbids silently dropped error returns: a call whose results
// include an error must consume it, or discard it explicitly with `_ =`
// so the decision is visible in review. Both plain statements and
// defer/go statements are checked. The fmt print family and methods on
// strings.Builder / bytes.Buffer are exempt: their errors are vestigial.
var Errcheck = &Analyzer{
	Name: "errcheck",
	Doc:  "error returns must be consumed or explicitly discarded with _ =",
	Run:  runErrcheck,
}

func runErrcheck(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					checkDropped(pass, call, "")
				}
			case *ast.DeferStmt:
				checkDropped(pass, n.Call, "deferred ")
			case *ast.GoStmt:
				checkDropped(pass, n.Call, "spawned ")
			}
			return true
		})
	}
}

func checkDropped(pass *Pass, call *ast.CallExpr, kind string) {
	if !returnsError(pass, call) || exemptCall(pass, call) {
		return
	}
	pass.Reportf(call.Pos(),
		"%scall to %s drops its error; handle it or discard explicitly with _ =",
		kind, callName(call))
}

// returnsError reports whether any result of the call has type error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// exemptCall reports whether the dropped error is conventionally ignored:
// fmt printing, or writes to in-memory buffers that cannot fail.
func exemptCall(pass *Pass, call *ast.CallExpr) bool {
	info := pass.Pkg.Info
	if calleePkgPath(info, call) == "fmt" {
		obj := calleeObj(info, call)
		if obj != nil {
			switch obj.Name() {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				return true
			}
		}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "strings" && name == "Builder") || (pkg == "bytes" && name == "Buffer")
}

// callName renders the callee for the diagnostic.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "function"
}
