package lint

import "testing"

func TestHotalloc(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"direct-builtins", `package fix

// texsim:hot
func hot(xs []int, n int) []int {
	ys := make([]int, 0, n) //want calls make
	ys = append(ys, xs...)  //want calls append
	p := new(int)           //want calls new
	_ = p
	return ys
}

func cold(n int) []int {
	return make([]int, n) // unreachable from any hot root: fine
}
`},
		{"transitive-reach", `package fix

type thing struct{ v int }

// texsim:hot
func root(x int) *thing {
	return helper(x)
}

func helper(x int) *thing {
	t := new(thing) //want calls new
	t.v = x
	return t
}
`},
		{"closure-in-reachable", `package fix

// texsim:hot
func root() int {
	return helper()()
}

func helper() func() int {
	return func() int { return 1 } //want allocates a closure
}
`},
		{"string-concat", `package fix

// texsim:hot
func hot(a, b string) string {
	return a + b //want concatenates strings
}

// texsim:hot
func constOK() string {
	return "a" + "b" // constant-folded at compile time
}
`},
		{"interface-dispatch", `package fix

type shaper interface{ area() int }

// texsim:hot
func hot(s shaper) int {
	return s.area() //want dynamically through an interface
}
`},
		{"implicit-boxing", `package fix

func sink(v interface{}) {}

// texsim:hot
func hot(x int) {
	sink(x) //want boxes int into an interface argument
}

// texsim:hot
func nilOK() {
	sink(nil) // untyped nil boxes nothing
}
`},
		{"concrete-method-ok", `package fix

type counter struct{ n int }

func (c *counter) bump() { c.n++ }

// texsim:hot
func hot(c *counter) {
	c.bump() // static dispatch on a concrete receiver
}
`},
		{"texlint-hotpath-marker", `package fix

// texlint:hotpath
func legacy(xs []int) []int {
	return helper(xs)
}

func helper(xs []int) []int {
	return append(xs, 1) //want calls append
}
`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { testAnalyzer(t, Hotalloc, "fix", c.src) })
	}
}
