package lint

// Helpers shared by the texflow analyzers (chanleak, chanprotocol,
// wgbalance): scope enumeration, channel/WaitGroup op collection that sees
// through module helper calls via FlowFacts, and the CFG walk that asks
// "can this function reach an exit without releasing a blocked goroutine".

import (
	"go/ast"
	"go/token"
	"go/types"
)

// funcScope is one function-like body: a declaration or a function
// literal. Literals are separate scopes because their bodies run on their
// own goroutine or call, not where they appear.
type funcScope struct {
	body *ast.BlockStmt
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
}

// scopesOf enumerates every function-like body in the file: each FuncDecl
// and each FuncLit anywhere inside it.
func scopesOf(file *ast.File) []funcScope {
	var out []funcScope
	for _, d := range file.Decls {
		fn, ok := d.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		out = append(out, funcScope{body: fn.Body, decl: fn})
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, funcScope{body: lit.Body, lit: lit})
			}
			return true
		})
	}
	return out
}

// inspectScope walks n in source order but does not descend into nested
// function literals — those are their own scopes.
func inspectScope(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return f(m)
	})
}

// isModuleFunc reports whether obj is a function declared in one of the
// packages under analysis (so texflow has a summary for it).
func isModuleFunc(facts *Facts, obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || facts == nil {
		return false
	}
	return facts.ModulePkgs[fn.Pkg().Path()]
}

// identIs reports whether e is a plain identifier for the variable v.
func identIs(info *types.Info, e ast.Expr, v *types.Var) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.Uses[id] == v
}

// chanOpsIn collects the channel operations node n may perform on v,
// skipping nested function literals and select statements, and folding in
// the texflow summaries of module helper calls (drain(ch) counts as a
// receive if drain's summary receives on that parameter).
func chanOpsIn(info *types.Info, flow *FlowFacts, n ast.Node, v *types.Var) ChanOps {
	var out ChanOps
	inspectScope(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.SelectStmt:
			return false
		case *ast.SendStmt:
			if identIs(info, m.Chan, v) {
				out.Sends = true
			}
		case *ast.UnaryExpr:
			if m.Op == token.ARROW && identIs(info, m.X, v) {
				out.Recvs = true
			}
		case *ast.RangeStmt:
			if identIs(info, m.X, v) {
				out.Recvs = true
			}
		case *ast.CallExpr:
			if isBuiltin(info, m, "close") && len(m.Args) == 1 && identIs(info, m.Args[0], v) {
				out.Closes = true
				return true
			}
			if flow != nil {
				ops := flow.ChanArgOps(info, m, v)
				out.Sends = out.Sends || ops.Sends
				out.Recvs = out.Recvs || ops.Recvs
				out.Closes = out.Closes || ops.Closes
			}
		}
		return true
	})
	return out
}

// wgIs reports whether e is wg or &wg for the variable v.
func wgIs(info *types.Info, e ast.Expr, v *types.Var) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = u.X
	}
	id, ok := e.(*ast.Ident)
	return ok && info.Uses[id] == v
}

// wgOpsIn collects the WaitGroup operations node n may perform on v,
// skipping nested function literals and folding in texflow summaries.
func wgOpsIn(info *types.Info, flow *FlowFacts, n ast.Node, v *types.Var) WGOps {
	var out WGOps
	inspectScope(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && wgIs(info, sel.X, v) {
			switch sel.Sel.Name {
			case "Add":
				out.Adds = true
			case "Done":
				out.Dones = true
			case "Wait":
				out.Waits = true
			}
			return true
		}
		if flow != nil {
			ops := flow.WGArgOps(info, call, v)
			out.Adds = out.Adds || ops.Adds
			out.Dones = out.Dones || ops.Dones
			out.Waits = out.Waits || ops.Waits
		}
		return true
	})
	return out
}

// canExitWithout reports whether, starting just after node start, the CFG
// can reach a function exit (a block with no successors) on a path that
// contains no node for which release returns true. It is the heart of
// chanleak: a goroutine blocked on a channel leaks exactly when its
// spawner can exit without performing the releasing operation.
func canExitWithout(g *CFG, start ast.Node, release func(ast.Node) bool) bool {
	startBlk := g.BlockOf(start)
	if startBlk == nil {
		// Start not in the graph (e.g. nested in an opaque construct):
		// stay quiet rather than guess.
		return false
	}
	from := 0
	for i, n := range startBlk.Nodes {
		if n == start {
			from = i + 1
			break
		}
	}
	type visit struct {
		b    *Block
		from int
	}
	stack := []visit{{startBlk, from}}
	seen := make(map[*Block]bool)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		released := false
		for _, n := range v.b.Nodes[v.from:] {
			if release(n) {
				released = true
				break
			}
		}
		if released {
			continue
		}
		if len(v.b.Succs) == 0 {
			return true
		}
		for _, s := range v.b.Succs {
			if seen[s] {
				continue
			}
			seen[s] = true
			stack = append(stack, visit{s, 0})
		}
	}
	return false
}
