package lint

import "testing"

func TestSharedstate(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"captured-write-then-read", `package fix

func f() int {
	x := 0
	go func() { //want writes captured x
		x = 1
	}()
	return x
}
`},
		{"spawner-write-goroutine-read", `package fix

func f() int {
	n := 0
	go func() { //want captured n is written after the go statement
		println(n)
	}()
	n = 1
	return n
}
`},
		{"spawner-write-behind-barrier-ok", `package fix

import "sync"

func f() int {
	n := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		println(n)
		wg.Done()
	}()
	wg.Wait()
	n = 1
	return n
}
`},
		{"spawner-write-before-spawn-ok", `package fix

func f() {
	n := 0
	n = 1
	go func() {
		println(n)
	}()
}
`},
		{"waitgroup-barrier", `package fix

import "sync"

func f() int {
	x := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		x = 1
		wg.Done()
	}()
	wg.Wait()
	return x
}
`},
		{"channel-barrier", `package fix

func f() int {
	x := 0
	done := make(chan struct{})
	go func() {
		x = 1
		close(done)
	}()
	<-done
	return x
}
`},
		{"loop-var-capture", `package fix

func f() {
	for i := 0; i < 4; i++ {
		go func() { //want captures loop variable i
			println(i)
		}()
	}
}
`},
		{"range-var-capture", `package fix

func f(xs []int) {
	for _, v := range xs {
		go func() { //want captures loop variable v
			println(v)
		}()
	}
}
`},
		{"loop-arg-ok", `package fix

func f() {
	for i := 0; i < 4; i++ {
		go func(i int) {
			println(i)
		}(i)
	}
}
`},
		{"loop-shared-accumulator", `package fix

func f() {
	sum := 0
	for i := 0; i < 4; i++ {
		go func(i int) { //want write captured sum
			sum += i
		}(i)
	}
}
`},
		{"slot-per-worker-ok", `package fix

import "sync"

func f() []int {
	results := make([]int, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = i * i
		}(i)
	}
	wg.Wait()
	return results
}
`},
		{"alias-write-after-spawn", `package fix

func f() {
	x := 0
	p := &x
	go func() { //want writes captured x
		x = 1
	}()
	*p = 2
}
`},
		{"mutex-guarded", `package fix

import "sync"

func f() int {
	x := 0
	var mu sync.Mutex
	go func() {
		mu.Lock()
		x = 1
		mu.Unlock()
	}()
	mu.Lock()
	v := x
	mu.Unlock()
	return v
}
`},
		{"send-then-write", `package fix

func f(ch chan []int) {
	buf := []int{1, 2, 3}
	ch <- buf //want sent over a channel and then written
	buf[0] = 9
}
`},
		{"send-value-ok", `package fix

func f(ch chan int) {
	n := 3
	ch <- n
	n = 9
	_ = n
}
`},
		{"send-no-write-ok", `package fix

func f(ch chan []int) {
	buf := []int{1, 2, 3}
	ch <- buf
	_ = len(buf)
}
`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { testAnalyzer(t, Sharedstate, "fix", c.src) })
	}
}
