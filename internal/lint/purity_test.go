package lint

import "testing"

func TestPurity(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"clean-arithmetic", `package fix

// wrapCoord clamps a texel coordinate.
// texsim:pure
func wrapCoord(x, n int) int {
	if x < 0 {
		return 0
	}
	if x >= n {
		return n - 1
	}
	return x
}
`},
		{"global-write", `package fix

var calls int

// texsim:pure
func impure(x int) int {
	calls++ //want writes package-level calls
	return x
}
`},
		{"global-read", `package fix

var weights = []int{1, 2, 3}

// texsim:pure
func weighted(i int) int {
	return weights[i] //want reads mutable package-level weights
}
`},
		{"param-write", `package fix

// texsim:pure
func store(dst []int, x int) {
	dst[0] = x //want writes through parameter or receiver dst
}
`},
		{"pointer-receiver-write", `package fix

type vec struct{ x, y int }

// texsim:pure
func (v *vec) scale(k int) {
	v.x = v.x * k //want writes through parameter or receiver v
}
`},
		{"value-receiver-ok", `package fix

type vec struct{ x, y int }

// texsim:pure
func (v vec) dot(o vec) int {
	return v.x*o.x + v.y*o.y
}
`},
		{"fresh-local-ok", `package fix

// texsim:pure
func ramp(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
`},
		{"fresh-append-ok", `package fix

// texsim:pure
func evens(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, 2*i)
	}
	return out
}
`},
		{"channel-ops", `package fix

// texsim:pure
func recv(ch chan int) int {
	return <-ch //want channel receive
}

// texsim:pure
func send(ch chan int, x int) {
	ch <- x //want channel send
}
`},
		{"goroutine", `package fix

// texsim:pure
func spawn() {
	go func() {}() //want spawns a goroutine
}
`},
		{"stdlib-whitelist", `package fix

import (
	"math"
	"strconv"
)

// texsim:pure
func dist(x, y float64) float64 {
	return math.Sqrt(x*x + y*y)
}

// texsim:pure
func render(x int) string {
	return strconv.Itoa(x)
}
`},
		{"impure-stdlib-call", `package fix

import "os"

// texsim:pure
func leak(x int) {
	os.Exit(x) //want not marked texsim:pure
}
`},
		{"transitive-pure-ok", `package fix

// texsim:pure
func outer(x int) int {
	return double(x)
}

func double(x int) int { return x * 2 }
`},
		{"transitive-impure", `package fix

var total int

// texsim:pure
func outer(x int) int {
	return bump(x) //want has side effects
}

func bump(x int) int {
	total += x
	return total
}
`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { testAnalyzer(t, Purity, "fix", c.src) })
	}
}
