package lint

import "testing"

func TestMapiter(t *testing.T) {
	src := `package mapiter

import (
	"fmt"
	"maps"
	"slices"
	"sort"
	"sync"
)

func direct(m map[string]int) {
	for k := range m {
		fmt.Println(k) //want map iteration order
	}
}

func keysOf(m map[string]int) []string {
	out := []string{}
	for k := range m {
		out = append(out, k)
	}
	return out
}

// The order-dependence crosses a function boundary: keysOf's summary says
// its result carries map order.
func throughHelper(m map[string]int) {
	ks := keysOf(m)
	fmt.Println(ks) //want map iteration order
}

// Collect-then-sort launders the taint.
func collectThenSort(m map[string]int) {
	out := []string{}
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	fmt.Println(out)
}

// So does the slices.Sorted(maps.Keys(m)) pipeline.
func sortedPipeline(m map[string]int) {
	for _, k := range slices.Sorted(maps.Keys(m)) {
		fmt.Println(k)
	}
}

type resultSet struct {
	Results []string
}

// Map order reaching a Results slot poisons downstream merges even though
// nothing is printed here.
func fillResults(rs *resultSet, m map[string]int) {
	i := 0
	for k := range m {
		rs.Results[i] = k //want Results
		i++
	}
}

func emitAll(vs []string) {
	for _, v := range vs {
		fmt.Println(v)
	}
}

// emitAll's summary marks its parameter as sink-bound, so handing it
// unsorted keys is flagged at the call site.
func sinkViaParam(m map[string]int) {
	ks := keysOf(m)
	emitAll(ks) //want emits parameter
}

type emitter struct{}

func (e *emitter) Emit(s string) {}

// Module emit methods are sinks; fmt.Sprint propagates the taint into the
// argument.
func viaEmitter(e *emitter, m map[int]int) {
	for k := range m {
		e.Emit(fmt.Sprint(k)) //want map iteration order
	}
}

// Prefetch-collector miniature: slot-per-worker results indexed by job
// order, merged in job order. No map order involved anywhere.
func prefetchMerge(jobs []string) []string {
	results := make([]string, len(jobs))
	var wg sync.WaitGroup
	for i, job := range jobs {
		wg.Add(1)
		go func(i int, job string) {
			defer wg.Done()
			results[i] = job + "!"
		}(i, job)
	}
	wg.Wait()
	merged := []string{}
	for _, r := range results {
		merged = append(merged, r)
	}
	return merged
}

// Deterministic map reads (indexing with a known key) stay clean.
func mapIndexIsClean(m map[string]int, key string) {
	fmt.Println(m[key])
}
`
	testAnalyzer(t, Mapiter, "mapiter", src)
}
