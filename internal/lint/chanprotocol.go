package lint

// chanprotocol enforces channel ownership and ordering contracts:
//
//   - close-of-closed: a close reachable from an earlier close of the same
//     channel panics at runtime;
//   - send-after-close: a send reachable from a close of the same channel
//     panics at runtime;
//   - close by non-owner: closing a channel received as a parameter is
//     only legitimate when ownership was transferred, asserted with a
//     //texsim:closes annotation on the closing function;
//   - publication contract: a function annotated
//     //texsim:publishes <payload> <announce> promises the render farm's
//     store-then-close idiom — every close of an <announce> channel must
//     be preceded, within its own basic block, by a store into <payload>,
//     so a reader woken by the close always observes the published data.
//
// Channel identity is syntactic: a key built from the root variable and
// the access path (ready, rt.ready, ready[3]). A variable index (ready[f])
// yields a unique key per occurrence, so closing ready[f] across loop
// iterations is never mistaken for a double close — at the cost of missing
// a genuine double close through the same variable index. Ordering is
// judged per function body on the texvet CFG; cross-goroutine orderings
// are out of scope, as are operations inside select statements.

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Chanprotocol reports close/send ordering violations and unannotated
// closes of foreign channels.
var Chanprotocol = &Analyzer{
	Name: "chanprotocol",
	Doc:  "channel close/send protocol violations (double close, send after close, non-owner close, broken publish contract)",
	Run:  runChanprotocol,
}

// chanEvent is one close or send site in a scope.
type chanEvent struct {
	node ast.Node // the statement carrying the op
	op   ast.Node // the close call or send statement itself
	key  string
	name string // printable channel expression
}

// chanKeyOf renders a stable identity for a channel expression, or
// ok=false when the path contains a variable index or an unsupported
// form (such a channel gets a unique per-site key).
func chanKeyOf(info *types.Info, e ast.Expr) (key, name string, ok bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(x)
		if obj == nil {
			return "", x.Name, false
		}
		return fmt.Sprintf("v%p", obj), x.Name, true
	case *ast.SelectorExpr:
		base, bname, ok := chanKeyOf(info, x.X)
		return base + "." + x.Sel.Name, bname + "." + x.Sel.Name, ok
	case *ast.IndexExpr:
		base, bname, ok := chanKeyOf(info, x.X)
		if tv, found := info.Types[x.Index]; found && tv.Value != nil {
			return base + "[" + tv.Value.String() + "]", bname + "[" + tv.Value.String() + "]", ok
		}
		return base + "[?]", bname + "[…]", false
	}
	return "", "channel", false
}

// exprMentions reports whether the expression's path contains an
// identifier or field named name.
func exprMentions(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if n.Name == name {
				found = true
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}

func runChanprotocol(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, sc := range scopesOf(file) {
			chanprotocolScope(pass, sc)
		}
	}
}

// collectChanEvents gathers close and send sites in the scope, outside
// selects and nested literals. Summarized module calls that close a plain
// channel argument count as closes of that argument.
func collectChanEvents(pass *Pass, sc funcScope) (closes, sends []chanEvent) {
	info := pass.Pkg.Info
	flow := pass.Facts.Flow
	uniq := 0
	keyFor := func(e ast.Expr) (string, string) {
		key, name, ok := chanKeyOf(info, e)
		if !ok {
			uniq++
			return fmt.Sprintf("!uniq%d", uniq), name
		}
		return key, name
	}
	var stmtStack []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return m == n
			case *ast.SelectStmt:
				return false
			case ast.Stmt:
				stmtStack = append(stmtStack, m)
			}
			if call, ok := m.(*ast.CallExpr); ok {
				top := m.(ast.Node)
				if len(stmtStack) > 0 {
					top = stmtStack[len(stmtStack)-1]
				}
				if isBuiltin(info, call, "close") && len(call.Args) == 1 {
					key, name := keyFor(call.Args[0])
					closes = append(closes, chanEvent{node: top, op: call, key: key, name: name})
				} else if flow != nil {
					for _, arg := range call.Args {
						id, ok := ast.Unparen(arg).(*ast.Ident)
						if !ok {
							continue
						}
						v, ok := info.Uses[id].(*types.Var)
						if !ok || !isChanType(v.Type()) {
							continue
						}
						ops := flow.ChanArgOps(info, call, v)
						key, name := keyFor(arg)
						if ops.Closes {
							closes = append(closes, chanEvent{node: top, op: call, key: key, name: name})
						}
						if ops.Sends {
							sends = append(sends, chanEvent{node: top, op: call, key: key, name: name})
						}
					}
				}
			}
			if send, ok := m.(*ast.SendStmt); ok {
				key, name := keyFor(send.Chan)
				sends = append(sends, chanEvent{node: send, op: send, key: key, name: name})
			}
			return true
		})
	}
	walk(sc.body)
	return closes, sends
}

// reaches reports whether the statement holding b is reachable from the
// statement holding a in the scope CFG (a strictly before b on some path).
func reaches(g *CFG, a, b chanEvent) bool {
	if a.op == b.op {
		return false
	}
	for _, n := range ReachableFrom(g, a.node, nil) {
		if n == b.node || contains(n, b.op) {
			return true
		}
	}
	return false
}

func chanprotocolScope(pass *Pass, sc funcScope) {
	info := pass.Pkg.Info
	flow := pass.Facts.Flow
	closes, sends := collectChanEvents(pass, sc)

	// Non-owner close: closing a channel parameter without texsim:closes.
	if sc.decl != nil && len(closes) > 0 {
		var declObj *types.Func
		if o, ok := info.Defs[sc.decl.Name].(*types.Func); ok {
			declObj = o
		}
		params := paramVars(info, sc.decl)
		sanctioned := declObj != nil && flow != nil &&
			(flow.Closers[declObj] || len(flow.Publishes[declObj]) > 0)
		if !sanctioned {
			for _, c := range closes {
				call, ok := c.op.(*ast.CallExpr)
				if !ok || !isBuiltin(info, call, "close") {
					continue
				}
				id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
				if !ok {
					continue
				}
				if v, ok := info.Uses[id].(*types.Var); ok {
					if _, isParam := params[v]; isParam {
						pass.Reportf(c.op.Pos(), "close of channel parameter %s by non-owner; annotate the function //texsim:closes if ownership is transferred", c.name)
					}
				}
			}
		}
	}

	var cfg *CFG
	graph := func() *CFG {
		if cfg == nil {
			cfg = BuildCFG(sc.body)
		}
		return cfg
	}

	// Double close and send-after-close, per identical channel key.
	for _, c := range closes {
		for _, c2 := range closes {
			if c.key == c2.key && c.op != c2.op && reaches(graph(), c, c2) {
				pass.Reportf(c2.op.Pos(), "%s may already be closed here (close of closed channel panics)", c2.name)
			}
		}
		for _, s := range sends {
			if c.key == s.key && reaches(graph(), c, s) {
				pass.Reportf(s.op.Pos(), "send on %s may happen after it is closed (send on closed channel panics)", s.name)
			}
		}
	}

	// Publication contract: store into payload must precede each close of
	// an announce channel within the close's basic block.
	if sc.decl == nil || flow == nil {
		return
	}
	declObj, ok := info.Defs[sc.decl.Name].(*types.Func)
	if !ok {
		return
	}
	fields, annotated := flow.Publishes[declObj]
	if !annotated {
		return
	}
	if len(fields) != 2 {
		pass.Reportf(sc.decl.Pos(), "malformed //texsim:publishes annotation: want \"//texsim:publishes <payload> <announce>\", got %d fields", len(fields))
		return
	}
	payload, announce := fields[0], fields[1]
	for _, c := range closes {
		call, ok := c.op.(*ast.CallExpr)
		if !ok || !isBuiltin(info, call, "close") || !exprMentions(call.Args[0], announce) {
			continue
		}
		blk := graph().BlockOf(c.node)
		if blk == nil {
			continue
		}
		stored := false
		for _, n := range blk.Nodes {
			if n == c.node || contains(n, c.op) {
				break
			}
			if assign, ok := n.(*ast.AssignStmt); ok {
				for _, lhs := range assign.Lhs {
					if exprMentions(lhs, payload) {
						stored = true
					}
				}
			}
		}
		if !stored {
			pass.Reportf(c.op.Pos(), "close of %s is not preceded by a store into %s in the same block (texsim:publishes contract: publish the payload before announcing)", c.name, payload)
		}
	}
}
