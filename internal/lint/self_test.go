package lint

import (
	"testing"
)

// TestRepositoryIsClean runs the whole suite over the real module, so any
// regression anywhere in the repository — a dropped error, a wall-clock
// read, a narrowed counter, an unprefixed panic, an allocation on a
// texlint:hotpath function — fails `go test ./...` without needing the
// texlint CLI to be wired into the build. The module's checked-in waiver
// config applies, exactly as the CLI applies it.
func TestRepositoryIsClean(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the module loader is missing sources", len(pkgs))
	}
	cfg, err := LoadConfig(root)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunConfigured(pkgs, All(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestLoadModuleOrder checks that dependencies precede importers, which
// the type-checking loop relies on.
func TestLoadModuleOrder(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, p := range pkgs {
		pos[p.Path] = i
	}
	for _, p := range pkgs {
		for _, imp := range p.Types.Imports() {
			j, ok := pos[imp.Path()]
			if ok && j >= pos[p.Path] {
				t.Errorf("%s checked before its dependency %s", p.Path, imp.Path())
			}
		}
	}
}
