package lint

import "testing"

func TestPanicstyle(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"literals", `package fix

func f(ok bool) {
	if !ok {
		panic("fix: invariant violated")
	}
	panic("invariant violated") //want must start with "fix: "
}
`},
		{"sprintf", `package fix

import "fmt"

func f(kind int) {
	if kind < 0 {
		panic(fmt.Sprintf("fix: unknown kind %d", kind))
	}
	panic(fmt.Sprintf("unknown kind %d", kind)) //want must start with "fix: "
}
`},
		{"concat", `package fix

func f(name string) {
	if name == "" {
		panic("fix: empty name " + name)
	}
	panic("empty name " + name) //want must start with "fix: "
}
`},
		{"const-prefix", `package fix

const prefix = "fix: "

func f() {
	panic(prefix + "boom") // constant-folded; prefix is verifiable
}
`},
		{"dynamic-exempt", `package fix

import "errors"

func f(err error) {
	if err != nil {
		// The error's text already carries the constructor's prefix;
		// its content cannot be checked statically.
		panic(err)
	}
	panic(errors.New("no prefix here")) // non-Sprintf dynamic value: exempt
}
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			testAnalyzer(t, Panicstyle, "panicstyle_"+tc.name, tc.src)
		})
	}
}
