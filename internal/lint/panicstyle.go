package lint

import (
	"go/ast"
	"go/constant"
	"strconv"
	"strings"
)

// Panicstyle enforces the repo's invariant-panic convention: a panic whose
// message is statically known must begin with "<package>: " (as in
// `panic("cache: unknown policy")`), so a crash in a long batch run names
// the subsystem without a symbolized stack. Panics re-raising an error
// value (`panic(err)`) are exempt — their text is the error's, which the
// constructors already prefix via fmt.Errorf.
var Panicstyle = &Analyzer{
	Name: "panicstyle",
	Doc:  "panic messages must carry the package-name prefix",
	Run:  runPanicstyle,
}

func runPanicstyle(pass *Pass) {
	want := pass.Pkg.Types.Name() + ": "
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isBuiltin(pass.Pkg.Info, call, "panic") || len(call.Args) != 1 {
				return true
			}
			head, ok := messageHead(pass, call.Args[0])
			if !ok {
				return true // dynamic value such as panic(err); cannot verify
			}
			if !strings.HasPrefix(head, want) {
				pass.Reportf(call.Pos(),
					"panic message %q must start with %q", truncate(head, 40), want)
			}
			return true
		})
	}
}

// messageHead extracts the static leading text of a panic argument: a
// string constant, the constant head of a `"lit" + x` concatenation, or
// the format string of fmt.Sprintf/fmt.Errorf.
func messageHead(pass *Pass, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		return messageHead(pass, e.X)
	case *ast.BasicLit:
		if s, err := strconv.Unquote(e.Value); err == nil {
			return s, true
		}
	case *ast.CallExpr:
		for _, fn := range []string{"Sprintf", "Sprint", "Errorf"} {
			if calleeIsPkgFunc(pass.Pkg.Info, e, "fmt", fn) && len(e.Args) > 0 {
				return messageHead(pass, e.Args[0])
			}
		}
	}
	return "", false
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
