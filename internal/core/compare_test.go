package core

import (
	"testing"

	"texcache/internal/cache"
	"texcache/internal/texture"
	"texcache/internal/workload"
)

func l2spec(name string, l1, mb int, tlb int) CacheSpec {
	return CacheSpec{
		Name:    name,
		L1Bytes: l1,
		L2: &cache.L2Config{
			SizeBytes: mb << 20,
			Layout:    texture.TileLayout{L2Size: 16, L1Size: 4},
			Policy:    cache.Clock,
		},
		TLBEntries: tlb,
	}
}

func TestRunComparisonMatchesIndividualRuns(t *testing.T) {
	render := testCfg()
	render.Frames = 6

	specs := []CacheSpec{
		{Name: "pull-2k", L1Bytes: 2 * 1024},
		l2spec("l2-2m", 2*1024, 2, 16),
	}
	cmp, err := RunComparison(workload.City(), render, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Results) != 2 {
		t.Fatalf("results = %d", len(cmp.Results))
	}

	// Each spec must match an individually simulated run exactly.
	pullCfg := render
	pullCfg.L1Bytes = 2 * 1024
	pull, err := Run(workload.City(), pullCfg)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Results[0].Totals != pull.Totals {
		t.Errorf("pull totals differ:\ncomparison %+v\nindividual %+v",
			cmp.Results[0].Totals, pull.Totals)
	}

	l2Cfg := withL2(render, 2)
	l2run, err := Run(workload.City(), l2Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Results[1].Totals != l2run.Totals {
		t.Errorf("l2 totals differ:\ncomparison %+v\nindividual %+v",
			cmp.Results[1].Totals, l2run.Totals)
	}
}

func TestRunComparisonSharedLayouts(t *testing.T) {
	render := testCfg()
	render.Frames = 4
	specs := []CacheSpec{
		l2spec("a", 2*1024, 2, 0),
		l2spec("b", 2*1024, 4, 0),
		l2spec("c", 16*1024, 2, 0),
	}
	cmp, err := RunComparison(workload.Village(), render, specs)
	if err != nil {
		t.Fatal(err)
	}
	// Larger L2 at same L1 must not increase host traffic.
	if cmp.Results[1].Totals.HostBytes > cmp.Results[0].Totals.HostBytes {
		t.Error("4MB L2 worse than 2MB")
	}
	// Larger L1 at same L2 must not increase L1 misses.
	if cmp.Results[2].Totals.L1.Misses > cmp.Results[0].Totals.L1.Misses {
		t.Error("16KB L1 missed more than 2KB")
	}
	// All specs saw the same reference stream.
	if cmp.Results[0].Totals.L1.Accesses != cmp.Results[2].Totals.L1.Accesses {
		t.Error("specs saw different access counts")
	}
}

func TestRunComparisonWithStats(t *testing.T) {
	render := testCfg()
	render.Frames = 4
	render.StatLayouts = []texture.TileLayout{{L2Size: 16, L1Size: 4}}
	cmp, err := RunComparison(workload.Village(), render,
		[]CacheSpec{{Name: "pull", L1Bytes: 2 * 1024}})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Results[0].Summary == nil {
		t.Fatal("stats not collected")
	}
	if len(cmp.FramePixels) != 4 {
		t.Errorf("frame pixels = %d entries", len(cmp.FramePixels))
	}
}

func TestRunComparisonErrors(t *testing.T) {
	if _, err := RunComparison(workload.Village(), testCfg(), nil); err == nil {
		t.Error("empty specs accepted")
	}
	bad := []CacheSpec{{Name: "bad", L1Bytes: 100}}
	if _, err := RunComparison(workload.Village(), testCfg(), bad); err == nil {
		t.Error("invalid L1 size accepted")
	}
}
