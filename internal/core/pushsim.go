package core

import (
	"texcache/internal/push"
	"texcache/internal/raster"
	"texcache/internal/scene"
	"texcache/internal/texture"
	"texcache/internal/workload"
)

// PushFrame records one frame of push-architecture simulation.
type PushFrame struct {
	// DownloadBytes is host->local traffic this frame (whole textures).
	DownloadBytes int64
	// Evictions and Compactions count manager activity this frame.
	Evictions   int64
	Compactions int64
	// ResidentBytes is local memory in use at frame end.
	ResidentBytes int64
}

// PushResults aggregates a push-architecture run.
type PushResults struct {
	Workload string
	Config   push.Config
	Frames   []PushFrame
	Totals   push.Stats
}

// AvgDownloadMBPerFrame returns mean host bandwidth in MB per frame.
func (r *PushResults) AvgDownloadMBPerFrame() float64 {
	if len(r.Frames) == 0 {
		return 0
	}
	return float64(r.Totals.DownloadBytes) / float64(len(r.Frames)) / (1 << 20)
}

// RunPush simulates the push architecture: the animation renders normally,
// and the first texel of each texture per frame forces the whole texture
// resident in the fixed local memory (LRU whole-texture replacement with
// compaction). The returned download traffic is what the application's
// texture manager would move across the bus — the paper's Figure 1a
// baseline measured rather than bounded.
func RunPush(w *workload.Workload, render Config, pushCfg push.Config) (*PushResults, error) {
	if render.Frames <= 0 {
		render.Frames = w.Frames
	}
	if render.L1Bytes == 0 {
		render.L1Bytes = 2 << 10
	}
	if err := render.Validate(); err != nil {
		return nil, err
	}
	mgr, err := push.NewManager(pushCfg, w.Scene.Textures)
	if err != nil {
		return nil, err
	}
	rast, err := raster.New(raster.Config{
		Width: render.Width, Height: render.Height,
		Mode:           render.Mode,
		ZBeforeTexture: render.ZBeforeTexture,
	})
	if err != nil {
		return nil, err
	}
	// Touch is cheap for resident textures (one array lookup), so it is
	// called per texel, exactly when the accelerator would sample.
	rast.SetSink(raster.SinkFunc(func(tid texture.ID, u, v, m int) {
		mgr.Touch(tid)
	}))
	pipeline := scene.NewPipeline(rast)

	res := &PushResults{
		Workload: w.Name,
		Config:   pushCfg,
		Frames:   make([]PushFrame, 0, render.Frames),
	}
	aspect := float64(render.Width) / float64(render.Height)
	var prev push.Stats
	for f := 0; f < render.Frames; f++ {
		pipeline.RenderFrame(w.Scene, w.Camera(aspect, f, render.Frames))
		cur := mgr.Stats()
		res.Frames = append(res.Frames, PushFrame{
			DownloadBytes: cur.DownloadBytes - prev.DownloadBytes,
			Evictions:     cur.Evictions - prev.Evictions,
			Compactions:   cur.Compactions - prev.Compactions,
			ResidentBytes: mgr.UsedBytes(),
		})
		prev = cur
	}
	res.Totals = mgr.Stats()
	return res, nil
}
