package core

import (
	"fmt"

	"texcache/internal/cache"
	"texcache/internal/raster"
	"texcache/internal/scene"
	"texcache/internal/stats"
	"texcache/internal/telemetry"
	"texcache/internal/texture"
	"texcache/internal/workload"
)

// FrameResult records one simulated frame.
type FrameResult struct {
	// Pipeline reports geometry activity.
	Pipeline scene.FrameStats
	// Pixels is the textured pixels rasterized this frame.
	Pixels int64
	// Counters is the cache activity of this frame alone.
	Counters cache.Counters
	// Stats carries working-set statistics when enabled.
	Stats *stats.Frame
}

// Results aggregates a run.
type Results struct {
	Workload string
	Config   Config
	Frames   []FrameResult
	// Totals is the cache activity over the whole animation.
	Totals cache.Counters
	// Summary aggregates working-set statistics when enabled.
	Summary *stats.Summary
	// Reuse is the reference stream's stack-distance histogram when
	// Config.CollectReuse was set.
	Reuse *telemetry.ReuseHistogram
	// ModelFrames is the frame count covered by an analytically modeled
	// result (the -fast sweep): such Results carry whole-run Totals but
	// no per-frame breakdown, so Frames stays empty and ModelFrames
	// records the denominator for per-frame averages.
	ModelFrames int
}

// AvgHostMBPerFrame returns the mean host (AGP/system memory) download
// bandwidth in MB per frame, the quantity of Table 3.
func (r *Results) AvgHostMBPerFrame() float64 {
	frames := len(r.Frames)
	if frames == 0 {
		frames = r.ModelFrames
	}
	if frames == 0 {
		return 0
	}
	return float64(r.Totals.HostBytes) / float64(frames) / (1 << 20)
}

// addrSink translates texel references to cache addresses and drives the
// hierarchy; it is the rasterizer's Sink on the hot path.
type addrSink struct {
	canon   []*texture.Tiling // canonical 16x16/4x4 tilings per texture
	l2til   []*texture.Tiling // tilings under the L2 layout, or nil
	l2start []uint32
	h       *cache.Hierarchy
	collect *stats.Collector // optional
	reuse   *reuseProbe      // optional; concrete pointer keeps dispatch static
}

// Texel is invoked once per texel reference — hundreds of millions of
// times per run — and must stay free of allocation and formatting.
//
// texlint:hotpath
func (s *addrSink) Texel(tid texture.ID, u, v, m int) {
	a := s.canon[tid].Addr(u, v, m)
	ref := cache.Ref{L1: cache.L1Ref{
		Tag: cache.PackTag(uint32(tid), a.L2, a.L1),
		Set: cache.SetHash(int32(u>>2), int32(v>>2), uint8(m), uint32(tid)),
	}}
	if s.l2til != nil {
		b := s.l2til[tid].Addr(u, v, m)
		ref.PTIndex = s.l2start[tid] + b.L2
		ref.Sub = uint8(b.L1)
	}
	s.h.Access(ref)
	if s.collect != nil {
		s.collect.Texel(tid, u, v, m)
	}
	if s.reuse != nil {
		s.reuse.Texel(tid, u, v, m)
	}
}

// Simulator runs a workload through the cache hierarchy.
type Simulator struct {
	w        *workload.Workload
	cfg      Config
	rast     *raster.Rasterizer
	pipeline *scene.Pipeline
	sink     *addrSink
	hier     *cache.Hierarchy
	collect  *stats.Collector
}

// NewSimulator prepares a simulation of w under cfg.
func NewSimulator(w *workload.Workload, cfg Config) (*Simulator, error) {
	if cfg.Frames <= 0 {
		cfg.Frames = w.Frames
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	set := w.Scene.Textures

	rast, err := raster.New(raster.Config{
		Width: cfg.Width, Height: cfg.Height,
		Mode:           cfg.Mode,
		ZBeforeTexture: cfg.ZBeforeTexture,
		Framebuffer:    cfg.Framebuffer,
	})
	if err != nil {
		return nil, err
	}

	hier, sink, err := buildHierarchy(set, cfg)
	if err != nil {
		return nil, err
	}
	var collect *stats.Collector
	if len(cfg.StatLayouts) > 0 {
		collect, err = stats.NewCollector(set, cfg.StatLayouts...)
		if err != nil {
			return nil, err
		}
		sink.collect = collect
	}
	if cfg.CollectReuse {
		sink.reuse = newReuseProbe(set)
	}
	rast.SetSink(sink)

	return &Simulator{
		w:        w,
		cfg:      cfg,
		rast:     rast,
		pipeline: scene.NewPipeline(rast),
		sink:     sink,
		hier:     hier,
		collect:  collect,
	}, nil
}

// buildHierarchy constructs the cache hierarchy and address sink for the
// texture set under cfg.
func buildHierarchy(set *texture.Set, cfg Config) (*cache.Hierarchy, *addrSink, error) {
	set.MustPrepare(texture.CanonicalL1())

	ways := cfg.L1Ways
	if ways == 0 {
		ways = cache.L1Ways
	}
	l1, err := cache.NewL1Assoc(cfg.L1Bytes, ways)
	if err != nil {
		return nil, nil, err
	}
	hier := &cache.Hierarchy{L1: l1}

	sink := &addrSink{
		canon: set.Tilings(texture.CanonicalL1()),
		h:     hier,
	}
	if cfg.L2 != nil {
		l2cfg := *cfg.L2
		// The L2 sub-block must be the 4x4 L1 tile so that sector bits
		// track exactly what the L1 cache downloads.
		l2cfg.Layout.L1Size = 4
		set.MustPrepare(l2cfg.Layout)
		l2, err := cache.NewL2(l2cfg, set.PageTableEntries(l2cfg.Layout))
		if err != nil {
			return nil, nil, err
		}
		hier.L2 = l2
		if cfg.TLBEntries > 0 {
			hier.TLB = cache.NewTLB(cfg.TLBEntries)
		}
		tilings := set.Tilings(l2cfg.Layout)
		starts := make([]uint32, set.Len())
		for i := range starts {
			starts[i] = set.Start(l2cfg.Layout, texture.ID(i))
		}
		sink.l2til = tilings
		sink.l2start = starts
	}
	return hier, sink, nil
}

// Run simulates all frames and returns the results.
func (s *Simulator) Run() (*Results, error) {
	res := &Results{
		Workload: s.w.Name,
		Config:   s.cfg,
		Frames:   make([]FrameResult, 0, s.cfg.Frames),
	}
	aspect := float64(s.cfg.Width) / float64(s.cfg.Height)
	prev := s.hier.Counters()
	for f := 0; f < s.cfg.Frames; f++ {
		cam := s.w.Camera(aspect, f, s.cfg.Frames)
		if s.collect != nil {
			s.collect.BeginFrame()
		}
		pst := s.pipeline.RenderFrame(s.w.Scene, cam)
		fr := FrameResult{
			Pipeline: pst,
			Pixels:   s.rast.Pixels(),
		}
		if s.collect != nil {
			s.collect.AddPixels(s.rast.Pixels())
			sf := s.collect.EndFrame()
			fr.Stats = &sf
		}
		cur := s.hier.Counters()
		fr.Counters = cur.Sub(prev)
		prev = cur
		if s.cfg.Metrics != nil {
			s.cfg.Metrics.Frame(metricsFrame(res.Workload, "", f, &fr))
		}
		res.Frames = append(res.Frames, fr)
	}
	res.Totals = prev
	if s.collect != nil {
		sum := stats.Summarize(s.collect.Frames(), int64(s.cfg.Width)*int64(s.cfg.Height))
		res.Summary = &sum
	}
	res.Reuse = s.sink.reuse.histogram()
	return res, nil
}

// Framebuffer returns the last rendered frame's colour buffer, or nil.
func (s *Simulator) Framebuffer() []texture.RGBA { return s.rast.Color() }

// Run is the one-call entry point: simulate workload w under cfg.
func Run(w *workload.Workload, cfg Config) (*Results, error) {
	sim, err := NewSimulator(w, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return sim.Run()
}
