package core

import (
	"testing"

	"texcache/internal/push"
	"texcache/internal/raster"
	"texcache/internal/workload"
)

func TestRunPushThrashVsAmple(t *testing.T) {
	render := Config{
		Width: 256, Height: 192,
		Frames: 8,
		Mode:   raster.Point,
	}
	small, err := RunPush(workload.City(), render, push.Config{LocalBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunPush(workload.City(), render, push.Config{LocalBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Frames) != 8 || len(big.Frames) != 8 {
		t.Fatalf("frame counts: %d, %d", len(small.Frames), len(big.Frames))
	}
	// Undersized local memory must download more and evict; ample memory
	// must never evict.
	if small.Totals.DownloadBytes <= big.Totals.DownloadBytes {
		t.Errorf("2MB downloads (%d) <= 64MB downloads (%d)",
			small.Totals.DownloadBytes, big.Totals.DownloadBytes)
	}
	if small.Totals.Evictions == 0 {
		t.Error("2MB push memory did not evict")
	}
	if big.Totals.Evictions != 0 {
		t.Errorf("64MB push memory evicted %d times", big.Totals.Evictions)
	}
	// With ample memory, downloads equal the distinct textures touched.
	if big.Totals.Downloads > int64(workload.City().Scene.Textures.Len()) {
		t.Errorf("downloads %d exceed texture count", big.Totals.Downloads)
	}
	// Per-frame deltas sum to totals.
	var sum int64
	for _, fr := range big.Frames {
		sum += fr.DownloadBytes
	}
	if sum != big.Totals.DownloadBytes {
		t.Errorf("frame deltas %d != totals %d", sum, big.Totals.DownloadBytes)
	}
	if big.AvgDownloadMBPerFrame() <= 0 {
		t.Error("zero average download")
	}
}

func TestRunPushValidatesConfig(t *testing.T) {
	render := Config{Width: 0, Height: 10, Frames: 1, Mode: raster.Point}
	if _, err := RunPush(workload.Village(), render,
		push.Config{LocalBytes: 1 << 20}); err == nil {
		t.Error("invalid render config accepted")
	}
	good := Config{Width: 64, Height: 48, Frames: 1, Mode: raster.Point}
	if _, err := RunPush(workload.Village(), good,
		push.Config{LocalBytes: 0}); err == nil {
		t.Error("invalid push config accepted")
	}
}
