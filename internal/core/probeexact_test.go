package core

import (
	"math/rand"
	"reflect"
	"testing"

	"texcache/internal/cache"
	"texcache/internal/telemetry"
	"texcache/internal/texture"
)

// naiveProbe is the reference implementation of the reuse probe: one
// full collector access and one full filter pass per texel, with none
// of reuseProbe's repeat/alternation batching. The optimized probe must
// be observationally identical to it — same profile, same filter stats,
// same TLB stats — on any reference stream.
type naiveProbe struct {
	tilings []*texture.Tiling
	starts  []uint32
	c       *telemetry.SectorReuseCollector
	filters []*probeFilter
}

func newNaiveProbe(set *texture.Set) *naiveProbe {
	layout := reuseLayout()
	set.MustPrepare(layout)
	starts := make([]uint32, set.Len())
	for i := range starts {
		starts[i] = set.Start(layout, texture.ID(i))
	}
	return &naiveProbe{
		tilings: set.Tilings(layout),
		starts:  starts,
		c: telemetry.NewSectorReuseCollector(
			int(set.PageTableEntries(layout)), layout.SubPerBlock(), layout.L2Size),
	}
}

func (p *naiveProbe) Texel(tid texture.ID, u, v, m int) {
	a := p.tilings[tid].Addr(u, v, m)
	block := p.starts[tid] + a.L2
	p.c.Access(block, a.L1)
	ref := cache.L1Ref{
		Tag: cache.PackTag(uint32(tid), a.L2, a.L1),
		Set: cache.SetHash(int32(u>>2), int32(v>>2), uint8(m), uint32(tid)),
	}
	for _, f := range p.filters {
		if f.l1.Access(ref) {
			continue
		}
		for _, t := range f.tlbs {
			t.tlb.Lookup(block)
		}
	}
}

// probeExactFilters attaches an identical filter/TLB arrangement to
// both probes: two L1 geometries, three TLBs, mirroring how the fast
// engine groups modeled TLB specs.
func probeExactFilters() (opt, ref []*probeFilter) {
	build := func() []*probeFilter {
		f1 := &probeFilter{l1: cache.MustNewL1Assoc(2<<10, 2)}
		f1.tlbs = []probeTLB{
			{specIdx: 0, tlb: cache.NewTLB(8)},
			{specIdx: 1, tlb: cache.NewTLB(16)},
		}
		f2 := &probeFilter{l1: cache.MustNewL1Assoc(8<<10, 4)}
		f2.tlbs = []probeTLB{{specIdx: 2, tlb: cache.NewTLB(16)}}
		return []*probeFilter{f1, f2}
	}
	return build(), build()
}

// TestProbeBatchingExact drives the batching probe and the naive
// reference over identical streams — crafted runs that force every
// batch path (repeats, same-block bilinear ping-pong, cross-block mip
// ping-pong, batch interruptions) plus a seeded random walk — and
// requires bit-identical profiles, filter stats, and TLB stats.
func TestProbeBatchingExact(t *testing.T) {
	set := texture.NewSet()
	set.Register(texture.MustNew("a", 128, 128, texture.RGBA8888, nil))
	set.Register(texture.MustNew("b", 64, 64, texture.RGBA8888, nil))

	opt := newReuseProbe(set)
	naive := newNaiveProbe(set)
	opt.filters, naive.filters = probeExactFilters()

	emit := func(tid texture.ID, u, v, m int) {
		opt.Texel(tid, u, v, m)
		naive.Texel(tid, u, v, m)
	}

	// Crafted patterns. Repeats: one tap over and over.
	for i := 0; i < 50; i++ {
		emit(0, 17, 9, 0)
	}
	// Same-block bilinear ping-pong: u=1 and u=5 are different 4x4
	// lines of the same 16x16 block; odd and even run lengths.
	for i := 0; i < 31; i++ {
		emit(0, 1+4*(i&1), 2, 0)
	}
	emit(0, 40, 40, 0) // interrupt
	for i := 0; i < 30; i++ {
		emit(0, 1+4*(i&1), 2, 0)
	}
	// Cross-block mip ping-pong: same texel coordinate on two mip
	// levels lives in two different blocks.
	for i := 0; i < 33; i++ {
		emit(0, 8, 8, i&1)
	}
	// Interrupt a cross run with repeats, then resume.
	for i := 0; i < 24; i++ {
		emit(0, 8, 8, i&1)
		if i == 11 {
			emit(0, 8, 8, 0)
			emit(0, 8, 8, 0)
		}
	}
	// Alternation immediately at stream positions where one side is
	// freshly cold: new pair of lines never touched before.
	for i := 0; i < 9; i++ {
		emit(1, 1+4*(i&1), 33, 0)
	}

	// Seeded random walk with locality: small steps, mip flips, and
	// injected runs so batch entries and exits happen at arbitrary
	// collector states.
	rng := rand.New(rand.NewSource(7))
	tid, u, v, m := 0, 20, 20, 0
	dims := [][2]int{{128, 128}, {64, 64}}
	for i := 0; i < 60000; i++ {
		switch rng.Intn(10) {
		case 0:
			tid = rng.Intn(2)
			m = 0
		case 1, 2:
			m = rng.Intn(3)
		case 3:
			u += rng.Intn(9) - 4
			v += rng.Intn(9) - 4
		default:
			u += rng.Intn(3) - 1
			v += rng.Intn(3) - 1
		}
		w, h := dims[tid][0]>>m, dims[tid][1]>>m
		if u < 0 {
			u = 0
		}
		if v < 0 {
			v = 0
		}
		if u >= w {
			u = w - 1
		}
		if v >= h {
			v = h - 1
		}
		emit(texture.ID(tid), u, v, m)
		if rng.Intn(4) == 0 { // repeat run
			for k := rng.Intn(6); k > 0; k-- {
				emit(texture.ID(tid), u, v, m)
			}
		}
		if rng.Intn(5) == 0 && u+4 < w { // same-block or cross-line alternation run
			for k := rng.Intn(8); k > 0; k-- {
				emit(texture.ID(tid), u+4*(k&1), v, m)
			}
		}
		if rng.Intn(5) == 0 && m+1 < 3 { // cross-block mip alternation run
			for k := rng.Intn(8); k > 0; k-- {
				emit(texture.ID(tid), u>>1, v>>1, m+(k&1))
			}
		}
	}

	got := opt.profile()
	want := naive.c.Profile()
	if !reflect.DeepEqual(*got, want) {
		t.Errorf("batched profile diverges from naive reference:\ngot  %+v\nwant %+v", *got, want)
	}
	for i := range opt.filters {
		// Batched references are provably filter hits and never reach the
		// filter, so its access count legitimately undercounts; its miss
		// count and set state must stay exact (any state drift would show
		// up as diverging misses on the post-batch stream), and the TLBs
		// behind it — the only stats the fast engine reports — must match
		// bit for bit.
		if g, w := opt.filters[i].l1.Stats().Misses, naive.filters[i].l1.Stats().Misses; g != w {
			t.Errorf("filter %d L1 misses diverge: got %d want %d", i, g, w)
		}
		for j := range opt.filters[i].tlbs {
			g := opt.filters[i].tlbs[j].tlb.Stats()
			w := naive.filters[i].tlbs[j].tlb.Stats()
			if g != w {
				t.Errorf("filter %d TLB %d stats diverge: got %+v want %+v", i, j, g, w)
			}
		}
	}
}
