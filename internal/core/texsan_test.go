//go:build texsan

package core

import (
	"testing"

	"texcache/internal/cache"
	"texcache/internal/raster"
	"texcache/internal/texture"
	"texcache/internal/workload"
)

// These tests exist for the texsan lane (go test -tags texsan ./...):
// they drive reduced Village and City animations through the paper's
// baseline hierarchy with the runtime invariant sanitizer compiled in, so
// every access replays the counter identities and every 4096th access
// cross-checks the page table, BRL and weak L1/L2 inclusion. A panic
// inside the cache package fails the test.

// sanConfig is the paper's baseline configuration at a reduced scale.
func sanConfig(frames int) Config {
	return Config{
		Width: 256, Height: 192, Frames: frames,
		Mode:    raster.Trilinear,
		L1Bytes: 2 << 10,
		L2: &cache.L2Config{
			SizeBytes: 2 << 20,
			Layout:    texture.TileLayout{L2Size: 16, L1Size: 4},
			Policy:    cache.Clock,
		},
		TLBEntries: 16,
	}
}

func runSanitized(t *testing.T, w *workload.Workload, cfg Config) {
	t.Helper()
	res, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals.L1.Accesses == 0 || res.Totals.L2.Accesses() == 0 {
		t.Fatalf("%s produced no cache activity: %+v", w.Name, res.Totals)
	}
}

func TestTexsanVillageReduced(t *testing.T) {
	runSanitized(t, workload.Village(), sanConfig(12))
}

func TestTexsanCityReduced(t *testing.T) {
	runSanitized(t, workload.City(), sanConfig(12))
}

func TestTexsanVillagePullArchitecture(t *testing.T) {
	cfg := sanConfig(6)
	cfg.L2 = nil
	cfg.TLBEntries = 0
	w := workload.Village()
	res, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals.HostBytes != res.Totals.L1.Misses*cache.L1LineBytes {
		t.Fatalf("pull bandwidth identity violated: %+v", res.Totals)
	}
}

// TestTexsanIntraSpecRangedReplay drives the frame-range-parallel sweep
// engine with the sanitizer compiled in: every checkpoint Snapshot /
// Restore pair must hand the successor shadow state that keeps replaying
// the counter identities and periodic structural cross-checks for the
// rest of the stream. The ranged totals must also agree with the serial
// engine's under the same sanitized build.
func TestTexsanIntraSpecRangedReplay(t *testing.T) {
	cfg := sanConfig(8)
	specs := []CacheSpec{{
		Name: "l2-2m", L1Bytes: cfg.L1Bytes,
		L2: cfg.L2, TLBEntries: cfg.TLBEntries,
	}}
	w := workload.Village()
	serial, err := RunComparison(w, cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	ranged := cfg
	ranged.ReplayWorkers = 4
	got, err := RunComparison(w, ranged, specs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Results[0].Totals != serial.Results[0].Totals {
		t.Fatalf("sanitized ranged totals diverged:\nranged %+v\nserial %+v",
			got.Results[0].Totals, serial.Results[0].Totals)
	}
}
