// Frame-range-parallel replay of a single cache spec (or spec group).
// The sweep engine in sweep.go parallelizes across specs — every worker
// replays the whole stream through its share of the hierarchies — so a
// single-spec replay is serial no matter how many cores are idle. This
// file shards the other axis: the frame sequence is partitioned into
// contiguous ranges, each range replays on its own clone of the group's
// hierarchies, and the clones are stitched into one serial-equivalent
// simulation by checkpoints — range k restores the complete cache state
// (L1 tags and LRU order, L2 page table, BRL and replacement-policy
// state, TLB contents, every counter, and under -tags texsan the
// sanitizer's shadow state) that range k−1 published at their shared
// frame boundary, then continues exactly where serial replay would be.
//
// The pipeline overlap comes from splitting the per-texel work: decoding
// and address translation are stateless with respect to the caches, but
// the cache access itself needs the checkpoint. Until its checkpoint
// arrives, a range worker decodes ahead and buffers translated
// references (structure-of-arrays blocks from a bounded per-worker
// pool); when the checkpoint lands it drains the backlog — access only,
// no re-decoding — and continues live. Cache work thus serializes along
// the checkpoint chain while decode + translate runs R-wide, which is
// the win: translation (two tiling walks per texel) dominates the
// per-texel cost.
//
// Determinism: every hierarchy transition of frame f happens on whichever
// worker owns f, in stream order, starting from state that is provably
// the serial state at f's boundary (by induction along the chain, range
// 0 starting cold). Counter deltas subtract the restored counters, so
// per-frame results are the serial ones; the last range writes Totals.
// Frames are filled by index into a preallocated slice — each frame
// owned by exactly one worker — so the assembled Results are
// DeepEqual-identical to a serial replay at every range count.
package core

import (
	"fmt"

	"texcache/internal/cache"
	"texcache/internal/telemetry"
	"texcache/internal/texture"
	"texcache/internal/trace"
)

const (
	// rangeBlockTexels is the capacity of one buffered reference block:
	// 32 Ki texels is ~0.4 MB per L2 layout, large enough that pool
	// traffic is noise against the per-texel work it holds.
	rangeBlockTexels = 32 << 10
	// rangeBlockBudget bounds the blocks one range worker may hold while
	// waiting for its checkpoint (~2 M buffered texels); at the budget
	// the worker stalls until the checkpoint arrives. A stalled worker
	// holds no chunk references and its predecessor is always actively
	// replaying a lower frame, so the render pipeline keeps draining.
	rangeBlockBudget = 64
)

// replayRangeCount resolves the ReplayWorkers knob to an effective range
// count for a replay of the given frame count: 0 and 1 mean off (one
// range), and a range never spans less than one frame.
func replayRangeCount(workers, frames int) int {
	if workers <= 1 || frames <= 1 {
		return 1
	}
	if workers > frames {
		workers = frames
	}
	return workers
}

// refBlock buffers translated references in structure-of-arrays form:
// per texel the canonical L1 tag and set hash, plus — per distinct L2
// layout in the group — the page-table index and sub-block. Blocks never
// span a frame boundary.
type refBlock struct {
	tags []uint64
	sets []uint32
	pts  [][]uint32
	subs [][]uint8
	n    int
}

// blockPool recycles reference blocks within one range worker. held
// counts the blocks currently buffering texels; the worker checks it
// against rangeBlockBudget between decoder feeds.
type blockPool struct {
	free []*refBlock
	held int
}

// get returns an empty block with room for nlayouts per-layout arrays,
// reusing a drained one when available.
//
// texsim:pool
func (p *blockPool) get(nlayouts int) *refBlock {
	p.held++
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return b
	}
	b := &refBlock{
		tags: make([]uint64, rangeBlockTexels),
		sets: make([]uint32, rangeBlockTexels),
		pts:  make([][]uint32, nlayouts),
		subs: make([][]uint8, nlayouts),
	}
	// Each layout gets its own full-capacity array: blocks recycle
	// through the free list, so these are sized up front and reused for
	// the worker's whole range.
	for i := range b.pts {
		b.pts[i] = make([]uint32, rangeBlockTexels, rangeBlockTexels)
		b.subs[i] = make([]uint8, rangeBlockTexels, rangeBlockTexels)
	}
	return b
}

// put returns a drained block to the free list.
func (p *blockPool) put(b *refBlock) {
	b.n = 0
	p.held--
	p.free = append(p.free, b)
}

// bufferedFrame is one fully decoded frame awaiting the checkpoint: its
// frame index, the pixel count its EndFrame reported, and its reference
// blocks in stream order.
type bufferedFrame struct {
	frame  int
	pixels int64
	blocks []*refBlock
}

// rangeLink is the checkpoint hand-off slot between consecutive range
// workers: the producer stores the snapshot payload (one cache.Snapshot
// per spec in the group, or nil with ok=false when it aborted or
// failed), then closes ready; the consumer reads the fields only after
// ready is closed. Each link is published exactly once.
type rangeLink struct {
	snaps []*cache.Snapshot
	ok    bool
	ready chan struct{}
}

func newRangeLink() *rangeLink { return &rangeLink{ready: make(chan struct{})} }

// publish stores the checkpoint payload and announces it to the waiting
// successor.
//
//texsim:publishes snaps ready
func (l *rangeLink) publish(snaps []*cache.Snapshot, ok bool) {
	l.snaps = snaps
	l.ok = ok
	close(l.ready)
}

// posted reports, without blocking, whether the checkpoint has been
// published.
func (l *rangeLink) posted() bool {
	select {
	case <-l.ready:
		return true
	default:
		return false
	}
}

// wait blocks until the checkpoint is published. ok=false means the
// predecessor aborted or failed and no state is coming.
func (l *rangeLink) wait() (snaps []*cache.Snapshot, ok bool) {
	<-l.ready
	return l.snaps, l.ok
}

// rangeReplayer replays one contiguous frame range [start, end) of the
// stream for one spec group; it is the trace.Handler a range worker
// drives its decoder through. The first range starts live (cold caches
// are the serial state at frame 0); later ranges buffer translated
// references until the predecessor's checkpoint restores their
// hierarchies, then drain and continue live. Its textrace track carries
// wall-only spans ("buffer", "frame", "drain", the "checkpoint-publish"
// instant): range shape is an engine-parallelism artifact with no serial
// counterpart, so none of it is canonical.
type rangeReplayer struct {
	sink  *multiSink
	specs []*sweepSpecState
	track *telemetry.Track

	start, end int
	last       bool       // final range: owns Results.Totals
	in         *rangeLink // nil for the first range
	out        *rangeLink // nil for the final range
	posted     bool

	frame int // frame currently being decoded
	live  bool
	open  telemetry.Region

	pool    blockPool
	tail    *refBlock // current append target, last of cur
	cur     []*refBlock
	pending []bufferedFrame

	// check enables per-texel bounds validation against the texture
	// registry (ReplayTrace replays external input; sweep chunks are
	// encoded in-process and trusted). err latches the first failure and
	// aborts the decode at the next frame boundary via ReplayErr.
	check      bool
	err        error
	badTID     uint32
	badU, badV int
	badM       int
}

func (g *rangeReplayer) BeginFrame() {
	if g.live {
		g.open = g.track.Begin("", "frame", int64(g.frame))
	} else {
		g.open = g.track.Begin("", "buffer", int64(g.frame))
	}
}

// Texel validates (when checking), translates and either presents or
// buffers one replayed reference. Like the chunk writer's encode side,
// it stays off the hot-annotation closure because its buffering branch
// draws blocks from the pool; the per-texel kernels it calls —
// multiSink.xlate, multiSink.access and accessBlock — carry the
// hot-path contract.
func (g *rangeReplayer) Texel(tid uint32, u, v, m int) {
	if g.check {
		if g.err != nil {
			return
		}
		if uint64(tid) >= uint64(len(g.sink.canon)) {
			g.fail(errReplayTID, tid, u, v, m)
			return
		}
		tex := g.sink.canon[tid].Tex
		if m < 0 || m >= len(tex.Levels) {
			g.fail(errReplayLevel, tid, u, v, m)
			return
		}
		if u < 0 || u >= tex.Levels[m].Width || v < 0 || v >= tex.Levels[m].Height {
			g.fail(errReplayCoord, tid, u, v, m)
			return
		}
	}
	if g.live {
		g.sink.Texel(texture.ID(tid), u, v, m)
		return
	}
	g.bufferTexel(texture.ID(tid), u, v, m)
}

// bufferTexel translates one reference and appends it to the current
// block, opening a fresh one at capacity.
func (g *rangeReplayer) bufferTexel(tid texture.ID, u, v, m int) {
	l1 := g.sink.xlate(tid, u, v, m)
	b := g.tail
	if b == nil || b.n == rangeBlockTexels {
		b = g.pool.get(len(g.sink.layouts))
		g.cur = append(g.cur, b)
		g.tail = b
	}
	n := b.n
	b.tags[n] = l1.Tag
	b.sets[n] = l1.Set
	for li, lx := range g.sink.layouts {
		b.pts[li][n] = lx.pt
		b.subs[li][n] = lx.sub
	}
	b.n = n + 1
}

// fail records the first invalid reference.
func (g *rangeReplayer) fail(err error, tid uint32, u, v, m int) {
	g.err = err
	g.badTID, g.badU, g.badV, g.badM = tid, u, v, m
}

// ReplayErr implements trace.FailingHandler: a validation failure aborts
// the decode at the next frame boundary.
func (g *rangeReplayer) ReplayErr() error { return g.err }

// describe wraps the latched validation error with the offending
// reference, off the hot path. Matches the serial replay's wording.
func (g *rangeReplayer) describe() error {
	return fmt.Errorf("core: replay: invalid reference <tid %d, u %d, v %d, mip %d>: %w",
		g.badTID, g.badU, g.badV, g.badM, g.err)
}

func (g *rangeReplayer) EndFrame(pixels int64) {
	if g.live {
		g.record(g.frame, pixels)
	} else {
		g.pending = append(g.pending, bufferedFrame{frame: g.frame, pixels: pixels, blocks: g.cur})
		g.cur = nil
		g.tail = nil
	}
	g.open.End()
	g.frame++
}

// record writes frame f's counter delta into its preallocated result
// slot — ranged Results are filled by index, every frame owned by
// exactly one worker — and samples each spec's canonical progress
// counter (a nil counter no-ops; ranged ReplayTrace emits none, matching
// its serial path).
func (g *rangeReplayer) record(f int, pixels int64) {
	for _, s := range g.specs {
		cur := s.hier.Counters()
		s.res.Frames[f] = FrameResult{Pixels: pixels, Counters: cur.Sub(s.prev)}
		s.prev = cur
		s.replayed.Sample(int64(f), int64(f)+1)
	}
}

// accessBlock presents one buffered block to every hierarchy, in the
// exact stream order the references were decoded.
//
// texlint:hotpath
func (g *rangeReplayer) accessBlock(b *refBlock) {
	specs := g.sink.specs
	for i := 0; i < b.n; i++ {
		l1 := cache.L1Ref{Tag: b.tags[i], Set: b.sets[i]}
		for j := range specs {
			sp := &specs[j]
			ref := cache.Ref{L1: l1}
			if sp.layoutIdx >= 0 {
				ref.PTIndex = b.pts[sp.layoutIdx][i]
				ref.Sub = b.subs[sp.layoutIdx][i]
			}
			sp.hier.Access(ref)
		}
	}
}

// restore seeds every hierarchy from the predecessor's checkpoint,
// drains the buffered backlog through them in frame order, and switches
// the worker live. The restored counters become each spec's delta base,
// so the first drained frame's delta is exactly what serial replay would
// report for it.
func (g *rangeReplayer) restore(snaps []*cache.Snapshot) error {
	if len(snaps) != len(g.specs) {
		return fmt.Errorf("core: range replay: checkpoint carries %d specs, want %d", len(snaps), len(g.specs))
	}
	for i, s := range g.specs {
		if err := s.hier.Restore(snaps[i]); err != nil {
			return fmt.Errorf("core: range replay: %w", err)
		}
		s.prev = s.hier.Counters()
	}
	sp := g.track.Begin("", "drain", int64(g.start))
	for _, bf := range g.pending {
		for _, b := range bf.blocks {
			g.accessBlock(b)
			g.pool.put(b)
		}
		g.record(bf.frame, bf.pixels)
	}
	g.pending = g.pending[:0]
	// The partially decoded current frame drains too; its remaining
	// texels arrive live.
	for _, b := range g.cur {
		g.accessBlock(b)
		g.pool.put(b)
	}
	g.cur = g.cur[:0]
	g.tail = nil
	g.live = true
	sp.End()
	return nil
}

// gate runs the between-feeds checks while buffering: upgrade to live if
// the checkpoint has been published; at the block budget, stall until it
// is. cont=false means the predecessor aborted or failed — this worker's
// frames will never be valid, so it stops (the predecessor reports the
// error).
func (g *rangeReplayer) gate() (cont bool, err error) {
	if g.live {
		return true, nil
	}
	if g.pool.held < rangeBlockBudget && !g.in.posted() {
		return true, nil
	}
	snaps, ok := g.in.wait()
	if !ok {
		return false, nil
	}
	if err := g.restore(snaps); err != nil {
		return false, err
	}
	return true, nil
}

// finishRange completes the worker's range: drains any backlog still
// waiting on the checkpoint, publishes this range's own checkpoint
// before anything else can block, and writes Totals when this is the
// final range.
func (g *rangeReplayer) finishRange() (cont bool, err error) {
	if !g.live {
		snaps, ok := g.in.wait()
		if !ok {
			return false, nil
		}
		if err := g.restore(snaps); err != nil {
			return false, err
		}
	}
	if g.out != nil {
		snaps := make([]*cache.Snapshot, len(g.specs))
		for i, s := range g.specs {
			snaps[i] = s.hier.Snapshot()
		}
		g.post(snaps, true)
		g.track.Instant("", "checkpoint-publish", int64(g.end), "")
	}
	if g.last {
		for _, s := range g.specs {
			s.res.Totals = s.hier.Counters()
		}
	}
	return true, nil
}

// post publishes this range's outgoing checkpoint at most once.
func (g *rangeReplayer) post(snaps []*cache.Snapshot, ok bool) {
	if g.out == nil || g.posted {
		return
	}
	g.posted = true
	g.out.publish(snaps, ok)
}

// abortOut tells the successor no checkpoint is coming; a no-op after a
// successful publish, so it is safe to defer on every exit path.
func (g *rangeReplayer) abortOut() { g.post(nil, false) }

// releaseFrame drains one frame's chunks unread, dropping this
// consumer's references so the pool keeps cycling. Reports false when
// the frame was aborted.
func releaseFrame(rt *renderedTrace, f int) bool {
	seq := rt.frames[f]
	for i := 0; ; i++ {
		c, ok := seq.next(i)
		if !ok {
			break
		}
		rt.release(c)
	}
	return !seq.wasAborted()
}

// consumeRange drives this range worker over the rendered trace as
// consumer ci. Frames before the range are released unread; frames in
// the range are decoded (buffered until the checkpoint arrives, live
// after); frames after the range are released unread only once the
// worker's own checkpoint is published, so a successor never waits
// behind chunk bookkeeping. Returns nil when the render aborted — the
// producer owns that error — and on an upstream abort or failure, which
// the upstream worker reports.
func (g *rangeReplayer) consumeRange(rt *renderedTrace, ci int) error {
	defer rt.detach(ci)
	defer g.abortOut()
	for f := 0; f < g.start; f++ {
		rt.advance(ci, f)
		if !releaseFrame(rt, f) {
			return nil
		}
	}
	var dec trace.ShardDecoder
	for f := g.start; f < g.end; f++ {
		seq := rt.frames[f]
		rt.advance(ci, f)
		dec.Reset()
		for i := 0; ; i++ {
			// Checkpoint and budget checks run between feeds only: a feed
			// hands the decoder this handler for the chunk's whole extent,
			// so mid-chunk state flips would tear a frame.
			if cont, err := g.gate(); err != nil {
				return err
			} else if !cont {
				return nil
			}
			c, ok := seq.next(i)
			if !ok {
				break
			}
			err := dec.Feed(c.data, g)
			rt.release(c)
			if err != nil {
				return fmt.Errorf("core: sweep replay: %w", err)
			}
		}
		if seq.wasAborted() {
			return nil
		}
		if _, err := dec.Finish(g); err != nil {
			return fmt.Errorf("core: sweep replay: %w", err)
		}
	}
	if cont, err := g.finishRange(); err != nil {
		return err
	} else if !cont {
		return nil
	}
	for f := g.end; f < len(rt.frames); f++ {
		rt.advance(ci, f)
		if !releaseFrame(rt, f) {
			return nil
		}
	}
	return nil
}

// consumeBytes replays this worker's frame range from a contiguous
// in-memory stream (the ranged ReplayTrace path): the frame index gives
// the byte window, the decoder seeks to the range's first frame, and the
// window is fed in chunk-sized slices so the checkpoint and budget gates
// run between feeds exactly as in sweep mode.
func (g *rangeReplayer) consumeBytes(data []byte, index []trace.FramePos) error {
	defer g.abortOut()
	start := index[g.start].Offset
	end := int64(len(data))
	if g.end < len(index) {
		end = index[g.end].Offset
	}
	var dec trace.ShardDecoder
	dec.Seek(index[g.start])
	for off := start; off < end; {
		if cont, err := g.gate(); err != nil {
			return err
		} else if !cont {
			return nil
		}
		nx := min(off+chunkSize, end)
		if err := dec.Feed(data[off:nx], g); err != nil {
			if g.err != nil {
				return g.describe()
			}
			return fmt.Errorf("core: replay: %w", err)
		}
		off = nx
	}
	if _, err := dec.Finish(g); err != nil {
		if g.err != nil {
			return g.describe()
		}
		return fmt.Errorf("core: replay: %w", err)
	}
	_, err := g.finishRange()
	return err
}
