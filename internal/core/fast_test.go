package core

import (
	"strings"
	"testing"

	"texcache/internal/cache"
	"texcache/internal/texture"
	"texcache/internal/workload"
)

// TestModelExactFullyAssociative pins the model's cold-miss and counter
// accounting against the exact simulator on a configuration where the
// model's assumptions hold exactly: a fully-associative true-LRU L1
// (ways == lines) in front of an L2 too large to ever evict. Both sides
// derive from the same reduced-Village render — the probe taps the very
// stream the hierarchy simulates — so every counter must match exactly:
// full misses are precisely the cold blocks, partial hits the cold
// lines in warm blocks, and evictions zero.
func TestModelExactFullyAssociative(t *testing.T) {
	render := testCfg()
	render.Frames = 4
	render.CollectReuse = true
	const l1Bytes = 2 * 1024
	spec := CacheSpec{
		Name:    "exact",
		L1Bytes: l1Bytes,
		L1Ways:  l1Bytes / cache.L1LineBytes, // fully associative = true LRU
		L2: &cache.L2Config{
			SizeBytes: 1 << 30, // never evicts
			Layout:    texture.TileLayout{L2Size: 16, L1Size: 4},
			Policy:    cache.Clock,
		},
	}
	cmp, err := RunComparison(workload.Village(), render, []CacheSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Model) != 1 || !cmp.Model[0].Modeled || !cmp.Model[0].HasExact {
		t.Fatalf("model report missing: %+v", cmp.Model)
	}
	got := cmp.Model[0].Pred.Counters()
	want := cmp.Results[0].Totals
	// Victim-search statistics are declared unmodeled; nothing else may
	// differ.
	want.L2.SearchSteps, want.L2.MaxSearch = 0, 0
	if got != want {
		t.Errorf("model diverges from exact simulator:\n got  %+v\n want %+v", got, want)
	}
	if got.L2.Evictions != 0 {
		t.Errorf("evictions = %d in an unevictable L2", got.L2.Evictions)
	}
	if cmp.ReuseProfile == nil || cmp.ReuseProfile.BlockEdge != 16 {
		t.Fatalf("reuse profile missing or untagged: %+v", cmp.ReuseProfile)
	}
}

// TestFastSweepStructure checks the -fast engine's partitioning: modeled
// specs carry Totals and ModelFrames but no per-frame results,
// unreachable specs (here: random replacement) are replayed exactly, and
// spec order, names and frame pixels survive the reassembly.
func TestFastSweepStructure(t *testing.T) {
	render := testCfg()
	render.Frames = 4
	render.FastSweep = true

	random := l2spec("l2-random", 2*1024, 2, 0)
	random.L2.Policy = cache.Random
	specs := []CacheSpec{
		{Name: "pull-2k", L1Bytes: 2 * 1024},
		random,
		l2spec("l2-2m", 2*1024, 2, 16),
	}
	cmp, err := RunComparison(workload.Village(), render, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Results) != 3 || len(cmp.Model) != 3 {
		t.Fatalf("results/model = %d/%d entries", len(cmp.Results), len(cmp.Model))
	}
	for i, spec := range specs {
		if cmp.Specs[i] != spec.Name {
			t.Errorf("spec %d = %q, want %q", i, cmp.Specs[i], spec.Name)
		}
	}
	if len(cmp.FramePixels) != 4 {
		t.Errorf("frame pixels = %d entries", len(cmp.FramePixels))
	}
	// pull-2k and l2-2m are modeled; l2-random replays.
	for _, i := range []int{0, 2} {
		res := cmp.Results[i]
		if !cmp.Model[i].Modeled || cmp.Model[i].HasExact {
			t.Errorf("%s: model entry = %+v, want modeled without exact", cmp.Specs[i], cmp.Model[i])
		}
		if len(res.Frames) != 0 || res.ModelFrames != 4 {
			t.Errorf("%s: frames/modelframes = %d/%d, want 0/4",
				cmp.Specs[i], len(res.Frames), res.ModelFrames)
		}
		if res.Totals.L1.Accesses == 0 {
			t.Errorf("%s: empty modeled totals", cmp.Specs[i])
		}
		if res.AvgHostMBPerFrame() <= 0 {
			t.Errorf("%s: AvgHostMBPerFrame = %v", cmp.Specs[i], res.AvgHostMBPerFrame())
		}
	}
	if m := cmp.Model[1]; m.Modeled || !strings.Contains(m.Unreachable, "random") {
		t.Errorf("random-policy model entry = %+v, want unreachable", m)
	}
	if res := cmp.Results[1]; len(res.Frames) != 4 {
		t.Errorf("replayed spec frames = %d, want 4", len(res.Frames))
	}
	// All specs saw the same stream, whether modeled or replayed.
	if cmp.Results[0].Totals.L1.Accesses != cmp.Results[1].Totals.L1.Accesses {
		t.Errorf("modeled accesses %d != replayed accesses %d",
			cmp.Results[0].Totals.L1.Accesses, cmp.Results[1].Totals.L1.Accesses)
	}
	errs := cmp.ModelErrors()
	if len(errs) != 3 || errs[1].Modeled || !errs[0].Modeled {
		t.Errorf("manifest model report = %+v", errs)
	}
}

// TestFastSweepTLBExact pins the -fast TLB strategy: a modeled TLB
// spec's TLB statistics come from a real TLB behind a real L1 filter
// inside the probe and must equal the exact simulator's bit for bit.
func TestFastSweepTLBExact(t *testing.T) {
	render := testCfg()
	render.Frames = 4
	specs := []CacheSpec{
		l2spec("l2-2m", 2*1024, 2, 16),
		l2spec("tlb-2", 2*1024, 2, 2),
	}

	fast := render
	fast.FastSweep = true
	fcmp, err := RunComparison(workload.Village(), fast, specs)
	if err != nil {
		t.Fatal(err)
	}
	ecmp, err := RunComparison(workload.Village(), render, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if !fcmp.Model[i].Modeled {
			t.Fatalf("%s not modeled: %s", specs[i].Name, fcmp.Model[i].Unreachable)
		}
		got, want := fcmp.Results[i].Totals.TLB, ecmp.Results[i].Totals.TLB
		if got != want {
			t.Errorf("%s: fast TLB stats %+v != exact %+v", specs[i].Name, got, want)
		}
		if got.Lookups == 0 {
			t.Errorf("%s: no TLB lookups recorded", specs[i].Name)
		}
	}
}

// TestFastSweepRejectsStats documents the one unsupported combination.
func TestFastSweepRejectsStats(t *testing.T) {
	render := testCfg()
	render.FastSweep = true
	render.StatLayouts = []texture.TileLayout{{L2Size: 16, L1Size: 4}}
	_, err := RunComparison(workload.Village(), render,
		[]CacheSpec{{Name: "pull", L1Bytes: 2 * 1024}})
	if err == nil {
		t.Fatal("fast sweep with StatLayouts accepted")
	}
}
