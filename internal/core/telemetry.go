// Simulator-side telemetry wiring: mapping per-frame cache counters onto
// the texscope metric stream, and the reuse-distance probe that taps the
// texel reference stream on the hot path. The layering rule is one-way:
// the simulator feeds telemetry, telemetry never feeds the simulator, so
// enabling any of it cannot perturb simulation results.
package core

import (
	"texcache/internal/cache"
	"texcache/internal/telemetry"
	"texcache/internal/texture"
)

// metricsFrame flattens one frame's results into a metric record.
func metricsFrame(workload, spec string, frame int, fr *FrameResult) telemetry.FrameMetrics {
	c := &fr.Counters
	return telemetry.FrameMetrics{
		Workload:      workload,
		Spec:          spec,
		Frame:         frame,
		Pixels:        fr.Pixels,
		L1Accesses:    c.L1.Accesses,
		L1Misses:      c.L1.Misses,
		L2FullHits:    c.L2.FullHits,
		L2PartialHits: c.L2.PartialHits,
		L2FullMisses:  c.L2.FullMisses,
		L2Evictions:   c.L2.Evictions,
		L2SearchSteps: c.L2.SearchSteps,
		L2MaxSearch:   c.L2.MaxSearch,
		TLBLookups:    c.TLB.Lookups,
		TLBHits:       c.TLB.Hits,
		HostBytes:     c.HostBytes,
		L2ReadBytes:   c.L2ReadBytes,
		L2WriteBytes:  c.L2WriteBytes,
	}
}

// EmitMetrics replays a completed run's per-frame counters into e under
// the given spec label. It is how memoized or deferred results (the
// experiment runner caches Results across experiments) reach a metric
// stream after the fact; a nil emitter is a no-op.
func EmitMetrics(e telemetry.Emitter, res *Results, spec string) {
	if e == nil || res == nil {
		return
	}
	for f := range res.Frames {
		e.Frame(metricsFrame(res.Workload, spec, f, &res.Frames[f]))
	}
}

// EmitComparisonMetrics replays a completed comparison into e in the
// canonical stream order: frame-major, spec-minor — the order the serial
// engine streams records in while running, which makes emitted output
// byte-identical no matter which engine produced the comparison.
func EmitComparisonMetrics(e telemetry.Emitter, cmp *Comparison) {
	if e == nil || cmp == nil {
		return
	}
	for f := 0; f < len(cmp.FramePixels); f++ {
		for i, res := range cmp.Results {
			if f >= len(res.Frames) {
				continue
			}
			e.Frame(metricsFrame(cmp.Workload, cmp.Specs[i], f, &res.Frames[f]))
		}
	}
}

// reuseLayout is the fixed measurement granularity of the reuse-distance
// probe: the paper's canonical 16x16-texel L2 blocks. The probe measures
// locality of the reference stream itself, independent of whichever cache
// configurations are being swept, so one granularity serves every run.
func reuseLayout() texture.TileLayout {
	return texture.TileLayout{L2Size: 16, L1Size: 4}
}

// probeTLB is one swept spec's TLB carried inside the reuse probe: the
// -fast engine simulates TLBs exactly (they are tiny and sensitive to
// the L1-filtered stream, so the analytic model does not attempt them)
// by giving each TLB spec a real cache.TLB fed through a real L1 filter.
type probeTLB struct {
	// specIdx is the spec's index in the comparison, where the exact
	// stats are patched into the modeled Results.
	specIdx int
	tlb     *cache.TLB
}

// probeFilter is an exact L1 cache shared by every probed TLB spec with
// the same L1 geometry: the TLBs see precisely the miss stream the real
// hierarchy would send them.
type probeFilter struct {
	l1   *cache.L1Cache
	tlbs []probeTLB
}

// reuseProbe taps the texel reference stream, translating each reference
// to its global L2 block address and feeding the sector-aware
// stack-distance collector (plus, in -fast sweeps, the exact TLB
// filters). It rides the rasterizer hot path behind a concrete-pointer
// nil check, so runs without CollectReuse pay one predictable branch.
type reuseProbe struct {
	tilings []*texture.Tiling
	starts  []uint32
	c       *telemetry.SectorReuseCollector
	filters []*probeFilter
	// lastKey and prevKey identify the two most recently probed L1 lines
	// as <tid, mip, u/4, v/4>; lastBlock/prevBlock and lastRef/prevRef
	// cache their translations. Two stream shapes are resolved without
	// touching the collector or filters, before even the address
	// translation:
	//
	//   - a repeat of lastKey is distance 0 in every distribution, a
	//     guaranteed L1-filter hit, and reaches no TLB — repeats counts
	//     them, flushed once at snapshot time (pure counts commute);
	//   - a return to prevKey is a two-line alternation: within one block
	//     (the bilinear ping-pong across a line boundary) every
	//     distribution but the line stack sits still; across two blocks
	//     (the trilinear ping-pong between mip levels) each reference is
	//     distance 1 everywhere and the sector bookkeeping advances by
	//     pure per-side counts. Either way both lines provably stay
	//     filter-resident, because a >=2-way LRU set cannot evict its
	//     most recent line on one distinct fill, so no TLB is reached.
	//     alternations counts the run and altKind its shape;
	//     syncAlternations settles the order-dependent leftovers (stack
	//     top-two order and filter recency, both a parity) before the
	//     next real access.
	lastKey, prevKey     uint64
	lastBlock, prevBlock uint32
	lastSub, prevSub     uint16
	lastRef, prevRef     cache.L1Ref
	altKind              uint8
	repeats              int64
	alternations         int64
}

// Alternation-run shapes: no valid pair yet, both lines in one block, or
// lines in two different blocks.
const (
	altNone = iota
	altSame
	altCross
)

// newReuseProbe sizes a probe for the texture set's page table under the
// canonical layout.
func newReuseProbe(set *texture.Set) *reuseProbe {
	layout := reuseLayout()
	set.MustPrepare(layout)
	starts := make([]uint32, set.Len())
	for i := range starts {
		starts[i] = set.Start(layout, texture.ID(i))
	}
	return &reuseProbe{
		tilings: set.Tilings(layout),
		starts:  starts,
		c: telemetry.NewSectorReuseCollector(
			int(set.PageTableEntries(layout)), layout.SubPerBlock(), layout.L2Size),
		lastKey: ^uint64(0),
		prevKey: ^uint64(0),
	}
}

// Texel records one reference: its L2 block and L1 sub-tile feed the
// sector collector, and on -fast sweeps the same translated address
// drives the exact TLB filters. The probe's measurement layout equals
// the canonical L1 layout, so one translation serves both.
//
// texlint:hotpath
func (p *reuseProbe) Texel(tid texture.ID, u, v, m int) {
	key := uint64(tid)<<48 | uint64(m)<<40 | uint64(u>>2)<<20 | uint64(v>>2)
	if key == p.lastKey {
		p.repeats++
		return
	}
	if key == p.prevKey && p.altKind != altNone {
		p.alternations++
		p.lastKey, p.prevKey = p.prevKey, p.lastKey
		p.lastBlock, p.prevBlock = p.prevBlock, p.lastBlock
		p.lastSub, p.prevSub = p.prevSub, p.lastSub
		p.lastRef, p.prevRef = p.prevRef, p.lastRef
		return
	}
	p.syncAlternations()
	a := p.tilings[tid].Addr(u, v, m)
	block := p.starts[tid] + a.L2
	p.c.Access(block, a.L1)
	ref := cache.L1Ref{
		Tag: cache.PackTag(uint32(tid), a.L2, a.L1),
		Set: cache.SetHash(int32(u>>2), int32(v>>2), uint8(m), uint32(tid)),
	}
	switch {
	case p.lastKey == ^uint64(0):
		p.altKind = altNone
	case block == p.lastBlock:
		p.altKind = altSame
	default:
		p.altKind = altCross
	}
	p.prevKey, p.prevBlock, p.prevSub, p.prevRef = p.lastKey, p.lastBlock, p.lastSub, p.lastRef
	p.lastKey, p.lastBlock, p.lastSub, p.lastRef = key, block, a.L1, ref
	for _, f := range p.filters {
		if f.l1.Access(ref) {
			continue
		}
		for _, t := range f.tlbs {
			t.tlb.Lookup(block)
		}
	}
}

// syncAlternations settles a finished ping-pong run: the batched tallies
// go to the collector (the cross-block form also advances the blocks'
// close counters), and when the run's parity left the other line on
// top, the filters replay one guaranteed-hit access so their LRU recency
// matches the true stream (the collector's register order is fixed
// inside the Record call).
//
// texlint:hotpath
func (p *reuseProbe) syncAlternations() {
	if p.alternations == 0 {
		return
	}
	if p.altKind == altSame {
		p.c.RecordAlternations(p.alternations)
	} else {
		p.c.RecordCrossAlternations(p.alternations,
			p.lastBlock, p.lastSub, p.prevBlock, p.prevSub)
	}
	if p.alternations&1 == 1 {
		for _, f := range p.filters {
			f.l1.Access(p.lastRef)
		}
	}
	p.alternations = 0
}

// flush drains every batched count into the collector so a snapshot
// observes the complete reference stream.
func (p *reuseProbe) flush() {
	p.syncAlternations()
	if p.repeats > 0 {
		p.c.RecordRepeats(p.repeats)
		p.repeats = 0
	}
}

// histogram snapshots the probe's block-distance histogram (the
// pre-existing Comparison.Reuse artifact), nil-safe for runs without one.
func (p *reuseProbe) histogram() *telemetry.ReuseHistogram {
	if p == nil {
		return nil
	}
	p.flush()
	h := p.c.Profile().Blocks
	return &h
}

// profile snapshots the full three-histogram sector profile the analytic
// model consumes, nil-safe for runs without a probe.
func (p *reuseProbe) profile() *telemetry.SectorProfile {
	if p == nil {
		return nil
	}
	p.flush()
	pr := p.c.Profile()
	return &pr
}
