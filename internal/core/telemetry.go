// Simulator-side telemetry wiring: mapping per-frame cache counters onto
// the texscope metric stream, and the reuse-distance probe that taps the
// texel reference stream on the hot path. The layering rule is one-way:
// the simulator feeds telemetry, telemetry never feeds the simulator, so
// enabling any of it cannot perturb simulation results.
package core

import (
	"texcache/internal/telemetry"
	"texcache/internal/texture"
)

// metricsFrame flattens one frame's results into a metric record.
func metricsFrame(workload, spec string, frame int, fr *FrameResult) telemetry.FrameMetrics {
	c := &fr.Counters
	return telemetry.FrameMetrics{
		Workload:      workload,
		Spec:          spec,
		Frame:         frame,
		Pixels:        fr.Pixels,
		L1Accesses:    c.L1.Accesses,
		L1Misses:      c.L1.Misses,
		L2FullHits:    c.L2.FullHits,
		L2PartialHits: c.L2.PartialHits,
		L2FullMisses:  c.L2.FullMisses,
		L2Evictions:   c.L2.Evictions,
		L2SearchSteps: c.L2.SearchSteps,
		L2MaxSearch:   c.L2.MaxSearch,
		TLBLookups:    c.TLB.Lookups,
		TLBHits:       c.TLB.Hits,
		HostBytes:     c.HostBytes,
		L2ReadBytes:   c.L2ReadBytes,
		L2WriteBytes:  c.L2WriteBytes,
	}
}

// EmitMetrics replays a completed run's per-frame counters into e under
// the given spec label. It is how memoized or deferred results (the
// experiment runner caches Results across experiments) reach a metric
// stream after the fact; a nil emitter is a no-op.
func EmitMetrics(e telemetry.Emitter, res *Results, spec string) {
	if e == nil || res == nil {
		return
	}
	for f := range res.Frames {
		e.Frame(metricsFrame(res.Workload, spec, f, &res.Frames[f]))
	}
}

// EmitComparisonMetrics replays a completed comparison into e in the
// canonical stream order: frame-major, spec-minor — the order the serial
// engine streams records in while running, which makes emitted output
// byte-identical no matter which engine produced the comparison.
func EmitComparisonMetrics(e telemetry.Emitter, cmp *Comparison) {
	if e == nil || cmp == nil {
		return
	}
	for f := 0; f < len(cmp.FramePixels); f++ {
		for i, res := range cmp.Results {
			if f >= len(res.Frames) {
				continue
			}
			e.Frame(metricsFrame(cmp.Workload, cmp.Specs[i], f, &res.Frames[f]))
		}
	}
}

// reuseLayout is the fixed measurement granularity of the reuse-distance
// probe: the paper's canonical 16x16-texel L2 blocks. The probe measures
// locality of the reference stream itself, independent of whichever cache
// configurations are being swept, so one granularity serves every run.
func reuseLayout() texture.TileLayout {
	return texture.TileLayout{L2Size: 16, L1Size: 4}
}

// reuseProbe taps the texel reference stream, translating each reference
// to its global L2 block address and feeding the stack-distance
// collector. It rides the rasterizer hot path behind a concrete-pointer
// nil check, so runs without CollectReuse pay one predictable branch.
type reuseProbe struct {
	tilings []*texture.Tiling
	starts  []uint32
	c       *telemetry.ReuseCollector
}

// newReuseProbe sizes a probe for the texture set's page table under the
// canonical layout.
func newReuseProbe(set *texture.Set) *reuseProbe {
	layout := reuseLayout()
	set.MustPrepare(layout)
	starts := make([]uint32, set.Len())
	for i := range starts {
		starts[i] = set.Start(layout, texture.ID(i))
	}
	return &reuseProbe{
		tilings: set.Tilings(layout),
		starts:  starts,
		c:       telemetry.NewReuseCollector(int(set.PageTableEntries(layout))),
	}
}

// Texel records one reference's L2 block address.
//
// texlint:hotpath
func (p *reuseProbe) Texel(tid texture.ID, u, v, m int) {
	a := p.tilings[tid].Addr(u, v, m)
	p.c.Access(p.starts[tid] + a.L2)
}

// histogram snapshots the probe, nil-safe for runs without one.
func (p *reuseProbe) histogram() *telemetry.ReuseHistogram {
	if p == nil {
		return nil
	}
	h := p.c.Histogram()
	return &h
}
