package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"texcache/internal/cache"
	"texcache/internal/trace"
	"texcache/internal/workload"
)

// addCounters folds per-frame counter deltas back into a running total.
// Sub is fieldwise subtraction, so a + b == a - (0 - b); MaxSearch is not
// additive (per-frame values carry the running maximum) and is patched by
// the caller.
func addCounters(a, b cache.Counters) cache.Counters {
	var zero cache.Counters
	return a.Sub(zero.Sub(b))
}

func TestReplayTraceHonorsFrameLimit(t *testing.T) {
	cfg := withL2(testCfg(), 2)
	cfg.Frames = 8

	direct, err := Run(workload.Village(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := RecordTrace(workload.Village(), cfg, &buf); err != nil {
		t.Fatal(err)
	}

	limited := cfg
	limited.Frames = 3
	replayed, err := ReplayTrace(&buf, workload.Village().Scene.Textures, limited)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed.Frames) != 3 {
		t.Fatalf("replayed frames = %d, want 3", len(replayed.Frames))
	}
	var want cache.Counters
	for i := 0; i < 3; i++ {
		if replayed.Frames[i].Counters != direct.Frames[i].Counters {
			t.Errorf("frame %d counters differ:\nreplay %+v\ndirect %+v",
				i, replayed.Frames[i].Counters, direct.Frames[i].Counters)
		}
		want = addCounters(want, direct.Frames[i].Counters)
	}
	want.L2.MaxSearch = direct.Frames[2].Counters.L2.MaxSearch
	if replayed.Totals != want {
		t.Errorf("truncated totals = %+v, want %+v", replayed.Totals, want)
	}
}

// hostileTrace encodes a single-frame stream containing one reference,
// bypassing any validation the simulator applies while recording.
func hostileTrace(t testing.TB, tid uint32, u, v, m int) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	w.BeginFrame()
	w.Texel(0, 0, 0, 0) // a valid reference first: failure must latch later
	w.Texel(tid, u, v, m)
	w.EndFrame(1)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestReplayTraceRejectsHostileStreams(t *testing.T) {
	set := workload.Village().Scene.Textures
	cfg := withL2(testCfg(), 2)
	cases := []struct {
		name string
		tid  uint32
		u, v int
		m    int
		want string
	}{
		{"tid out of range", uint32(set.Len()), 0, 0, 0, "texture id out of range"},
		{"tid far out of range", 1 << 30, 0, 0, 0, "texture id out of range"},
		{"negative level", 0, 0, 0, -1, "MIP level out of range"},
		{"level too deep", 0, 0, 0, 99, "MIP level out of range"},
		{"u outside extent", 0, 1 << 20, 0, 0, "texel coordinate outside level extent"},
		{"negative v", 0, 0, -5, 0, "texel coordinate outside level extent"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := hostileTrace(t, tc.tid, tc.u, tc.v, tc.m)
			res, err := ReplayTrace(buf, set, cfg)
			if err == nil {
				t.Fatalf("hostile stream accepted: %+v", res.Totals)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %q, want it to mention %q", err, tc.want)
			}
			if !strings.Contains(err.Error(), "invalid reference") {
				t.Errorf("err = %q, want the offending reference described", err)
			}
		})
	}
}

// failAfterWriter accepts limit bytes, then refuses: the captured prefix
// models what actually reached a failing disk.
type failAfterWriter struct {
	buf   bytes.Buffer
	limit int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.buf.Len()+len(p) > w.limit {
		room := w.limit - w.buf.Len()
		if room > 0 {
			w.buf.Write(p[:room])
		}
		return room, errors.New("sink full")
	}
	w.buf.Write(p)
	return len(p), nil
}

func TestRecordTraceReportsWrittenFrames(t *testing.T) {
	cfg := testCfg()
	cfg.Width, cfg.Height = 128, 96
	cfg.Frames = 6

	// Learn the stream size, then replay against a sink that fails at
	// roughly 40% of it — mid-run, after at least one complete frame.
	var probe bytes.Buffer
	frames, err := RecordTrace(workload.Village(), cfg, &probe)
	if err != nil {
		t.Fatal(err)
	}
	if frames != 6 {
		t.Fatalf("clean record reported %d frames, want 6", frames)
	}

	sink := &failAfterWriter{limit: probe.Len() * 2 / 5}
	frames, err = RecordTrace(workload.Village(), cfg, sink)
	if err == nil {
		t.Fatal("failing sink not reported")
	}
	if frames < 1 || frames >= 6 {
		t.Errorf("frames = %d, want mid-run count in [1,5]", frames)
	}
	// The accepted prefix must still decode without panicking; its
	// complete frames are salvageable.
	decoded, _ := trace.ReplayBytes(sink.buf.Bytes(), discardTexels{})
	if decoded < 1 {
		t.Errorf("salvaged %d frames from the partial stream, want >= 1", decoded)
	}
}

// discardTexels drops replayed events.
type discardTexels struct{}

func (discardTexels) BeginFrame()                   {}
func (discardTexels) Texel(tid uint32, u, v, m int) {}
func (discardTexels) EndFrame(pixels int64)         {}

// FuzzReplayTrace feeds arbitrary byte streams through the full replay
// path — decoder, reference validation, address translation, cache
// hierarchy. Any input must produce a result or an error, never a panic.
func FuzzReplayTrace(f *testing.F) {
	cfg := testCfg()
	cfg.Width, cfg.Height = 64, 48
	cfg.Frames = 0
	set := workload.Village().Scene.Textures

	var valid bytes.Buffer
	w := trace.NewWriter(&valid)
	w.BeginFrame()
	w.Texel(0, 3, 5, 0)
	w.Texel(1, 0, 0, 2)
	w.EndFrame(9)
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(hostileTrace(f, 1<<20, 0, 0, 0).Bytes())
	f.Add(hostileTrace(f, 0, 1<<20, 1<<20, 30).Bytes())
	f.Add([]byte{'T', 'X', 'T', 'R', 1, 0x01, 0x04, 0x81, 0x81})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReplayTrace(bytes.NewReader(data), set, cfg)
	})
}

// TestRecordReplayGolden is the end-to-end contract behind the sweep
// engine: a recorded stream replayed through a hierarchy reproduces the
// direct simulation exactly — totals and every per-frame delta — for both
// architectures on both camera-path styles, at the Bench scale the
// benchmarks use.
func TestRecordReplayGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale golden run")
	}
	workloads := []struct {
		name   string
		make   func() *workload.Workload
		frames int
	}{
		{"village", workload.Village, 24},
		{"city", workload.City, 30},
	}
	for _, wl := range workloads {
		base := testCfg()
		base.Width, base.Height = 256, 192
		base.Frames = wl.frames

		var buf bytes.Buffer
		frames, err := RecordTrace(wl.make(), base, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if frames != wl.frames {
			t.Fatalf("%s: recorded %d frames, want %d", wl.name, frames, wl.frames)
		}
		data := buf.Bytes()

		for _, spec := range []struct {
			name string
			cfg  Config
		}{
			{"pull", base},
			{"l2-2m", withL2(base, 2)},
		} {
			direct, err := Run(wl.make(), spec.cfg)
			if err != nil {
				t.Fatal(err)
			}
			replayed, err := ReplayTrace(bytes.NewReader(data), wl.make().Scene.Textures, spec.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if direct.Totals != replayed.Totals {
				t.Errorf("%s/%s: totals differ:\ndirect %+v\nreplay %+v",
					wl.name, spec.name, direct.Totals, replayed.Totals)
			}
			if len(direct.Frames) != len(replayed.Frames) {
				t.Fatalf("%s/%s: frame counts differ", wl.name, spec.name)
			}
			for i := range direct.Frames {
				if direct.Frames[i].Counters != replayed.Frames[i].Counters {
					t.Errorf("%s/%s: frame %d counters differ", wl.name, spec.name, i)
				}
				if direct.Frames[i].Pixels != replayed.Frames[i].Pixels {
					t.Errorf("%s/%s: frame %d pixels differ", wl.name, spec.name, i)
				}
			}
		}
	}
}
