package core

import (
	"testing"

	"texcache/internal/raster"
	"texcache/internal/texture"
	"texcache/internal/workload"
)

// TestRunDeterministic: two identical runs (fresh workloads, fresh caches)
// must produce bit-identical counters — the property that makes the study
// reproducible.
func TestRunDeterministic(t *testing.T) {
	cfg := withL2(testCfg(), 2)
	cfg.Frames = 5
	a, err := Run(workload.Village(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(workload.Village(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Totals != b.Totals {
		t.Errorf("totals differ:\n%+v\n%+v", a.Totals, b.Totals)
	}
	for i := range a.Frames {
		if a.Frames[i].Counters != b.Frames[i].Counters {
			t.Fatalf("frame %d counters differ", i)
		}
		if a.Frames[i].Pixels != b.Frames[i].Pixels {
			t.Fatalf("frame %d pixels differ", i)
		}
	}
}

// TestStatsConsistentWithCacheTraffic cross-checks the two measurement
// systems: the §4 minimum bandwidth (unique 4x4 L1 tiles touched * 64B)
// can never exceed the pull architecture's actual download bytes, and the
// actual bytes can never exceed texel references * 64B.
func TestStatsConsistentWithCacheTraffic(t *testing.T) {
	cfg := testCfg()
	cfg.Frames = 8
	cfg.Mode = raster.Bilinear
	cfg.StatLayouts = []texture.TileLayout{{L2Size: 4, L1Size: 4}}
	res, err := Run(workload.City(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, fr := range res.Frames {
		tiles, _ := fr.Stats.LayoutStats(texture.TileLayout{L2Size: 4, L1Size: 4})
		minBytes := tiles.Blocks * 64
		if fr.Counters.HostBytes < minBytes {
			t.Errorf("frame %d: actual host bytes %d < minimum %d",
				i, fr.Counters.HostBytes, minBytes)
		}
		if max := fr.Stats.TexelRefs * 64; fr.Counters.HostBytes > max {
			t.Errorf("frame %d: host bytes %d > refs*64 %d",
				i, fr.Counters.HostBytes, max)
		}
	}
}

// TestPerFrameDeltasSumToTotals over every counter field.
func TestPerFrameDeltasSumToTotals(t *testing.T) {
	cfg := withL2(testCfg(), 2)
	cfg.Frames = 6
	res, err := Run(workload.Village(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var acc struct {
		l1a, l1m, full, part, miss, host, l2r, l2w, tlbL, tlbH int64
	}
	for _, fr := range res.Frames {
		c := fr.Counters
		acc.l1a += c.L1.Accesses
		acc.l1m += c.L1.Misses
		acc.full += c.L2.FullHits
		acc.part += c.L2.PartialHits
		acc.miss += c.L2.FullMisses
		acc.host += c.HostBytes
		acc.l2r += c.L2ReadBytes
		acc.l2w += c.L2WriteBytes
		acc.tlbL += c.TLB.Lookups
		acc.tlbH += c.TLB.Hits
	}
	tot := res.Totals
	if acc.l1a != tot.L1.Accesses || acc.l1m != tot.L1.Misses ||
		acc.full != tot.L2.FullHits || acc.part != tot.L2.PartialHits ||
		acc.miss != tot.L2.FullMisses || acc.host != tot.HostBytes ||
		acc.l2r != tot.L2ReadBytes || acc.l2w != tot.L2WriteBytes ||
		acc.tlbL != tot.TLB.Lookups || acc.tlbH != tot.TLB.Hits {
		t.Errorf("per-frame deltas do not sum to totals:\nsum %+v\ntot %+v", acc, tot)
	}
}
