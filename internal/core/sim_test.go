package core

import (
	"bytes"
	"testing"

	"texcache/internal/cache"
	"texcache/internal/raster"
	"texcache/internal/texture"
	"texcache/internal/workload"
)

// testCfg is a small, fast configuration used across tests.
func testCfg() Config {
	return Config{
		Width: 256, Height: 192,
		Frames:  10,
		Mode:    raster.Bilinear,
		L1Bytes: 2 * 1024,
	}
}

func withL2(cfg Config, mb int) Config {
	cfg.L2 = &cache.L2Config{
		SizeBytes: mb << 20,
		Layout:    texture.TileLayout{L2Size: 16, L1Size: 4},
		Policy:    cache.Clock,
	}
	cfg.TLBEntries = 16
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := testCfg()
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := testCfg()
	bad.Width = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero width accepted")
	}
	bad = testCfg()
	bad.L1Bytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero L1 accepted")
	}
	bad = withL2(testCfg(), 2)
	bad.L2.Layout = texture.TileLayout{L2Size: 3, L1Size: 4}
	if err := bad.Validate(); err == nil {
		t.Error("bad L2 layout accepted")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
}

func TestRunPullArchitecture(t *testing.T) {
	res, err := Run(workload.Village(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 10 {
		t.Fatalf("frames = %d", len(res.Frames))
	}
	if res.Totals.L1.Accesses == 0 {
		t.Fatal("no texel accesses")
	}
	// The pull architecture downloads a 64-byte L1 tile per miss.
	if want := res.Totals.L1.Misses * cache.L1LineBytes; res.Totals.HostBytes != want {
		t.Errorf("HostBytes = %d, want %d", res.Totals.HostBytes, want)
	}
	// L1 hit rates on real workloads are high (paper Table 2: > 0.95).
	if hr := res.Totals.L1.HitRate(); hr < 0.90 {
		t.Errorf("L1 hit rate = %.3f, want > 0.90", hr)
	}
	// Per-frame deltas must sum to the totals.
	var host int64
	for _, f := range res.Frames {
		host += f.Counters.HostBytes
	}
	if host != res.Totals.HostBytes {
		t.Errorf("frame deltas sum %d != totals %d", host, res.Totals.HostBytes)
	}
}

func TestL2SavesHostBandwidth(t *testing.T) {
	w := workload.Village()
	pull, err := Run(w, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Run(workload.Village(), withL2(testCfg(), 2))
	if err != nil {
		t.Fatal(err)
	}
	// The headline result: even a 2 MB L2 slashes host bandwidth. At
	// paper scale the factor is 5-18x; at test scale demand at least 3x.
	ratio := float64(pull.Totals.HostBytes) / float64(l2.Totals.HostBytes)
	if ratio < 3 {
		t.Errorf("host bandwidth ratio pull/L2 = %.2f, want >= 3", ratio)
	}
	// L1 behaviour must be identical across architectures (same stream).
	if pull.Totals.L1.Misses != l2.Totals.L1.Misses {
		t.Errorf("L1 misses differ: pull %d vs L2 %d",
			pull.Totals.L1.Misses, l2.Totals.L1.Misses)
	}
	// L2 hit + partial + miss must equal L1 misses.
	if got := l2.Totals.L2.Accesses(); got != l2.Totals.L1.Misses {
		t.Errorf("L2 accesses %d != L1 misses %d", got, l2.Totals.L1.Misses)
	}
	// With L2, host bytes only flow on partial hits and misses.
	want := (l2.Totals.L2.PartialHits + l2.Totals.L2.FullMisses) * cache.L1LineBytes
	if l2.Totals.HostBytes != want {
		t.Errorf("HostBytes = %d, want %d", l2.Totals.HostBytes, want)
	}
}

func TestBiggerL1ReducesMisses(t *testing.T) {
	w := workload.Village()
	small, err := Run(w, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	big := testCfg()
	big.L1Bytes = 16 * 1024
	bigRes, err := Run(workload.Village(), big)
	if err != nil {
		t.Fatal(err)
	}
	if bigRes.Totals.L1.Misses >= small.Totals.L1.Misses {
		t.Errorf("16KB L1 misses (%d) >= 2KB L1 misses (%d)",
			bigRes.Totals.L1.Misses, small.Totals.L1.Misses)
	}
}

func TestBiggerL2ReducesHostBytes(t *testing.T) {
	a, err := Run(workload.City(), withL2(testCfg(), 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(workload.City(), withL2(testCfg(), 8))
	if err != nil {
		t.Fatal(err)
	}
	if b.Totals.HostBytes > a.Totals.HostBytes {
		t.Errorf("8MB L2 host bytes (%d) > 1MB L2 host bytes (%d)",
			b.Totals.HostBytes, a.Totals.HostBytes)
	}
}

func TestZBeforeTextureReducesTraffic(t *testing.T) {
	base, err := Run(workload.Village(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	zcfg := testCfg()
	zcfg.ZBeforeTexture = true
	z, err := Run(workload.Village(), zcfg)
	if err != nil {
		t.Fatal(err)
	}
	if z.Totals.L1.Accesses >= base.Totals.L1.Accesses {
		t.Errorf("z-before-texture accesses %d >= baseline %d",
			z.Totals.L1.Accesses, base.Totals.L1.Accesses)
	}
	var zp, bp int64
	for i := range z.Frames {
		zp += z.Frames[i].Pixels
		bp += base.Frames[i].Pixels
	}
	if zp >= bp {
		t.Errorf("z-before-texture pixels %d >= baseline %d", zp, bp)
	}
}

func TestStatsCollection(t *testing.T) {
	cfg := testCfg()
	cfg.Mode = raster.Point
	cfg.StatLayouts = []texture.TileLayout{{L2Size: 16, L1Size: 4}}
	res, err := Run(workload.City(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary == nil {
		t.Fatal("no summary")
	}
	if res.Summary.DepthComplexity <= 1 {
		t.Errorf("depth complexity = %v, want > 1", res.Summary.DepthComplexity)
	}
	ls, ok := res.Summary.Layout(texture.TileLayout{L2Size: 16, L1Size: 4})
	if !ok || ls.AvgBlocks == 0 {
		t.Fatal("no layout stats")
	}
	// Inter-frame locality: new blocks must be a small fraction of total.
	if ls.AvgNewBlocks/ls.AvgBlocks > 0.5 {
		t.Errorf("new/total blocks = %.2f, want < 0.5 (inter-frame locality)",
			ls.AvgNewBlocks/ls.AvgBlocks)
	}
	for _, f := range res.Frames {
		if f.Stats == nil {
			t.Fatal("frame missing stats")
		}
	}
}

func TestTraceReplayMatchesDirectRun(t *testing.T) {
	w := workload.City()
	cfg := withL2(testCfg(), 2)
	cfg.Frames = 6

	direct, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	frames, err := RecordTrace(workload.City(), cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if frames != 6 {
		t.Fatalf("recorded frames = %d", frames)
	}
	replayed, err := ReplayTrace(&buf, workload.City().Scene.Textures, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Transaction-exact equivalence between rendering and replay.
	if direct.Totals != replayed.Totals {
		t.Errorf("totals differ:\ndirect  %+v\nreplay  %+v",
			direct.Totals, replayed.Totals)
	}
	if len(direct.Frames) != len(replayed.Frames) {
		t.Fatalf("frame counts differ")
	}
	for i := range direct.Frames {
		if direct.Frames[i].Counters != replayed.Frames[i].Counters {
			t.Errorf("frame %d counters differ", i)
		}
		if direct.Frames[i].Pixels != replayed.Frames[i].Pixels {
			t.Errorf("frame %d pixels differ", i)
		}
	}
}

func TestAvgHostMBPerFrame(t *testing.T) {
	r := &Results{
		Frames: make([]FrameResult, 4),
		Totals: cache.Counters{HostBytes: 8 << 20},
	}
	if got := r.AvgHostMBPerFrame(); got != 2 {
		t.Errorf("AvgHostMBPerFrame = %v, want 2", got)
	}
	var empty Results
	if empty.AvgHostMBPerFrame() != 0 {
		t.Error("empty results nonzero")
	}
}

func TestTLBHitRateImprovesWithEntries(t *testing.T) {
	w := workload.Village()
	rates := make([]float64, 0, 3)
	for _, entries := range []int{1, 4, 16} {
		cfg := withL2(testCfg(), 2)
		cfg.Frames = 5
		cfg.TLBEntries = entries
		res, err := Run(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		w = workload.Village() // fresh scene: caches are per-run anyway
		rates = append(rates, res.Totals.TLB.HitRate())
	}
	if !(rates[0] < rates[1] && rates[1] < rates[2]) {
		t.Errorf("TLB hit rates not increasing: %v", rates)
	}
	// Paper Table 8: 16 entries capture > 90%.
	if rates[2] < 0.80 {
		t.Errorf("16-entry TLB hit rate = %.2f, want > 0.80", rates[2])
	}
}

func TestFramebufferSnapshot(t *testing.T) {
	cfg := testCfg()
	cfg.Frames = 1
	cfg.Framebuffer = true
	sim, err := NewSimulator(workload.Village(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	fb := sim.Framebuffer()
	if len(fb) != 256*192 {
		t.Fatalf("framebuffer len = %d", len(fb))
	}
	// The image must not be all background: count distinct colours.
	colours := map[texture.RGBA]bool{}
	for _, c := range fb {
		colours[c] = true
	}
	if len(colours) < 10 {
		t.Errorf("distinct colours = %d, want a real image", len(colours))
	}
}

func TestFramesDefaultToWorkloadCount(t *testing.T) {
	cfg := testCfg()
	cfg.Frames = 0
	sim, err := NewSimulator(workload.Village(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sim.cfg.Frames != workload.VillageFrames {
		t.Errorf("frames = %d, want %d", sim.cfg.Frames, workload.VillageFrames)
	}
}
