// Pooled chunk storage for the sweep engine's in-memory trace. The
// first-generation renderedTrace accumulated each frame's encoded shard
// in one append-grown []byte: at bench scale that made the parallel
// sweep allocate ~90x the serial engine's bytes — doubling-growth churn
// while encoding, plus the whole trace retained until the last replay
// worker finished. This file replaces it with fixed-size chunks drawn
// from a bounded pool: the render pass packs the stream into chunks and
// publishes each one as it fills, replay workers decode chunk by chunk
// through trace.ShardDecoder, and the last consumer to release a chunk
// returns it to the pool for the next frame. Steady-state memory is the
// pool budget, not the trace length.
package core

import (
	"sync"
	"sync/atomic"

	"texcache/internal/telemetry"
)

const (
	// chunkSize is the unit of trace storage and publication. Large
	// enough that per-chunk synchronization is noise, small enough that
	// replay starts well before a frame finishes encoding.
	chunkSize = 256 << 10
	// chunkBudget bounds the chunks a pool hands out before producers
	// start waiting for consumers to release them (~4 MB in flight).
	chunkBudget = 16
)

// chunk is one fixed-capacity slab of encoded trace. data is append-free:
// the writer copies into the unused tail and reslices, so the backing
// array never moves. refs counts the consumers that have not released it.
type chunk struct {
	data []byte
	refs atomic.Int32
}

// chunkPool recycles chunks between frames. Producers acquire, the last
// consumer to release a chunk puts it back; when the pool has handed out
// chunkBudget chunks and none are free, acquire blocks until a release —
// unless the caller is urgent (see renderedTrace.acquire), because
// blocking the producer of the frame consumers are draining would
// deadlock the pipeline.
type chunkPool struct {
	mu          sync.Mutex
	cond        *sync.Cond
	free        []*chunk
	outstanding int
	// inflight, when non-nil, tracks the bytes currently held outside
	// the free list on the "chunk-bytes-inflight" textrace counter.
	inflight *telemetry.Counter
}

func newChunkPool() *chunkPool {
	p := &chunkPool{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// acquire returns an empty chunk with capacity chunkSize, reusing a
// released one when available and allocating past the budget only for
// urgent callers.
//
// texsim:pool
func (p *chunkPool) acquire(urgent func() bool) *chunk {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.free) == 0 && p.outstanding >= chunkBudget && !urgent() {
		p.cond.Wait()
	}
	p.inflight.Add(chunkSize)
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return c
	}
	p.outstanding++
	return &chunk{data: make([]byte, 0, chunkSize)}
}

// put returns a fully released chunk to the free list.
func (p *chunkPool) put(c *chunk) {
	c.data = c.data[:0]
	p.mu.Lock()
	p.inflight.Add(-chunkSize)
	p.free = append(p.free, c)
	p.cond.Signal()
	p.mu.Unlock()
}

// wake re-evaluates every blocked acquire; called when the consumption
// floor moves, which can turn a waiting producer urgent.
func (p *chunkPool) wake() {
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// chunkSeq is one frame's ordered chunk stream. The producer publishes
// chunks as they fill and marks the sequence done at the frame boundary
// (or aborted on a render error); consumers block in next until the
// chunk they need exists. Published chunks are immutable until the last
// consumer releases them.
type chunkSeq struct {
	mu      sync.Mutex
	cond    *sync.Cond
	chunks  []*chunk
	done    bool
	aborted bool
}

func newChunkSeq() *chunkSeq {
	s := &chunkSeq{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// publish appends one filled chunk, arming its release count, and wakes
// consumers waiting for it.
func (s *chunkSeq) publish(c *chunk, refs int32) {
	c.refs.Store(refs)
	s.mu.Lock()
	s.chunks = append(s.chunks, c)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// finish marks the frame's stream complete.
func (s *chunkSeq) finish() {
	s.mu.Lock()
	s.done = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// abort marks the stream dead after a render error so consumers drain
// what was published and stop instead of waiting forever.
func (s *chunkSeq) abort() {
	s.mu.Lock()
	s.aborted = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// next blocks until chunk i is published or the stream ends; ok reports
// whether a chunk was returned. After a false return, wasAborted
// distinguishes a complete frame from an aborted render.
func (s *chunkSeq) next(i int) (c *chunk, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.chunks) <= i && !s.done && !s.aborted {
		s.cond.Wait()
	}
	if i < len(s.chunks) {
		return s.chunks[i], true
	}
	return nil, false
}

func (s *chunkSeq) wasAborted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.aborted
}

// bytes joins the published chunks into one contiguous shard. Only
// meaningful in retain mode (a renderedTrace with zero consumers, where
// chunks are never recycled); the render-identity tests compare shard
// bytes across engine configurations with it.
func (s *chunkSeq) bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.chunks {
		n += len(c.data)
	}
	out := make([]byte, 0, n)
	for _, c := range s.chunks {
		out = append(out, c.data...)
	}
	return out
}

// chunkWriter is the io.Writer a frame's trace encoder drains into: it
// packs the stream into pooled chunks and publishes each one as it
// fills, so replay overlaps the rendering of the frame itself.
type chunkWriter struct {
	rt  *renderedTrace
	seq *chunkSeq
	f   int
	cur *chunk
}

func (w *chunkWriter) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if w.cur == nil {
			w.cur = w.rt.acquire(w.f)
		}
		m := len(w.cur.data)
		k := min(chunkSize-m, len(p))
		w.cur.data = w.cur.data[: m+k : chunkSize]
		copy(w.cur.data[m:], p[:k])
		p = p[k:]
		if len(w.cur.data) == chunkSize {
			// Account before publishing: once published, the chunk may be
			// released and recycled by consumers at any moment.
			w.rt.traceBytes.Add(chunkSize)
			w.seq.publish(w.cur, int32(w.rt.consumers))
			w.cur = nil
		}
	}
	return n, nil
}

// finish publishes the partial tail chunk and completes the frame.
func (w *chunkWriter) finish() {
	if w.cur != nil {
		w.rt.traceBytes.Add(int64(len(w.cur.data)))
		w.seq.publish(w.cur, int32(w.rt.consumers))
		w.cur = nil
	}
	w.seq.finish()
}

// abandon returns an unpublished tail to the pool after an encode error.
func (w *chunkWriter) abandon() {
	if w.cur != nil {
		w.rt.pool.put(w.cur)
		w.cur = nil
	}
}
