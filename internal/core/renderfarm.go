// Frame-parallel render farm. The sweep engine in sweep.go made replay
// parallel, which left the serial render pass as the wall-clock floor of
// every comparison. Frames are the natural unit of independence: each
// frame's trace is a complete, independently decodable stream (its delta
// coder restarts at the frame boundary), the rasterizer clears all
// per-frame state in BeginFrame, and the camera is a pure function of the
// frame index. So a pool of workers — each owning a full render context
// (rasterizer, z-buffer, pipeline, trace writer) and sharing only the
// read-only scene and prepared texture set — renders frames out of order
// and publishes frame f exactly as the serial pass does: pooled chunks
// into frames[f] as they fill, then finish. Replay workers already
// consume that chunkSeq contract, so the downstream pool needs no
// changes and the assembled Comparison is byte-identical at every worker
// count.
//
// The two collectors with cross-frame state (the §4 working-set collector
// stamps blocks with the frame that last touched them; the reuse probe
// measures LRU stack distances over the global reference order) cannot be
// fed out of order. The coordinator feeds them by replaying the published
// shards in frame order — the trace round trip is lossless, so they see
// the exact call sequence the serial pass would have produced.
package core

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"texcache/internal/raster"
	"texcache/internal/scene"
	"texcache/internal/stats"
	"texcache/internal/telemetry"
	"texcache/internal/texture"
	"texcache/internal/trace"
	"texcache/internal/workload"
)

// renderWorkerCount resolves the RenderWorkers knob to an effective farm
// size: 0 means GOMAXPROCS, capped at the frame count (a worker per frame
// saturates the farm), floor 1 (the serial oracle).
func renderWorkerCount(renderWorkers, frames int) int {
	if renderWorkers == 0 {
		renderWorkers = runtime.GOMAXPROCS(0)
	}
	if renderWorkers > frames {
		renderWorkers = frames
	}
	if renderWorkers < 1 {
		renderWorkers = 1
	}
	return renderWorkers
}

// renderContext is one farm worker's private rendering state. Everything
// mutated while rendering a frame lives here; the scene and texture set
// stay shared and read-only (bounds and tile layouts are pre-warmed
// before the farm spawns).
type renderContext struct {
	rast     *raster.Rasterizer
	pipeline *scene.Pipeline
	sink     raster.TraceSink
	aspect   float64
	// track is the worker's textrace timeline ("render worker K"); frame
	// spans carry the logical "render" identity so the canonical export
	// is the same whether the farm or the serial pass rendered them.
	track *telemetry.Track
}

func newRenderContext(render Config) (*renderContext, error) {
	rast, err := raster.New(raster.Config{
		Width: render.Width, Height: render.Height,
		Mode:           render.Mode,
		ZBeforeTexture: render.ZBeforeTexture,
	})
	if err != nil {
		return nil, err
	}
	rc := &renderContext{
		rast:     rast,
		pipeline: scene.NewPipeline(rast),
		aspect:   float64(render.Width) / float64(render.Height),
	}
	rast.SetSink(&rc.sink)
	return rc, nil
}

// renderFrame renders and encodes frame f, publishing pooled chunks into
// frames[f] as they fill; pipeline stats and pixels are stored before the
// chunkSeq finishes, which is the happens-before edge replay workers
// synchronise on. On error the frame's partial chunks are abandoned and
// the caller aborts the sequence.
func (rt *renderedTrace) renderFrame(rc *renderContext, w *workload.Workload, render Config, f int) error {
	fr := rc.track.Begin("render", "frame", int64(f))
	defer fr.End()
	enc := render.Tracer.Start("encode")
	cw := &chunkWriter{rt: rt, seq: rt.frames[f], f: f}
	tw := trace.NewWriter(cw)
	rc.sink.W = tw
	tw.BeginFrame()
	pst := rc.pipeline.RenderFrame(w.Scene, w.Camera(rc.aspect, f, render.Frames))
	tw.EndFrame(rc.rast.Pixels())
	if err := tw.Close(); err != nil {
		enc.End()
		cw.abandon()
		return fmt.Errorf("core: sweep: encoding frame %d: %w", f, err)
	}
	enc.End()
	pub := render.Tracer.Start("shard-publish")
	rt.pipeline[f] = pst
	rt.pixels[f] = rc.rast.Pixels()
	cw.finish()
	pub.End()
	rc.track.Instant("", "shard-publish", int64(f), "")
	rt.rendered.Add(1)
	rt.rendered.Gauge(int64(f))
	rt.traceBytes.Gauge(int64(f))
	return nil
}

// renderFrames is one farm worker's loop: claim the next unrendered frame
// from the shared counter, render it, repeat. Every claimed frame is
// resolved exactly once — after this worker's first error, later claims
// are aborted so blocked replay workers drain instead of waiting forever
// (frames claimed by other workers keep rendering; replay stops at the
// first aborted frame in frame order).
func (rt *renderedTrace) renderFrames(rc *renderContext, w *workload.Workload, render Config, next *atomic.Int64) error {
	var firstErr error
	frames := int64(render.Frames)
	for {
		f := next.Add(1) - 1
		if f >= frames {
			return firstErr
		}
		if firstErr != nil {
			rc.track.Instant("", "chunk-abort", f, "")
			rt.frames[f].abort()
			continue
		}
		if err := rt.renderFrame(rc, w, render, int(f)); err != nil {
			firstErr = err
			rc.track.Instant("", "chunk-abort", f, "")
			rt.frames[f].abort()
		}
	}
}

// statsHandler replays published shards in frame order into the serial
// collectors. The trace round trip is lossless, so the collector and the
// reuse probe observe the exact per-texel call sequence of the serial
// render pass, preserving their cross-frame state (new-block stamps,
// stack distances) bit for bit.
type statsHandler struct {
	rt      *renderedTrace
	collect *stats.Collector
	reuse   *reuseProbe
	frame   int
}

func (h *statsHandler) BeginFrame() {
	if h.collect != nil {
		h.collect.BeginFrame()
	}
}

// Texel forwards one trusted replayed reference to the collectors.
//
// texlint:hotpath
func (h *statsHandler) Texel(tid uint32, u, v, m int) {
	if h.collect != nil {
		h.collect.Texel(texture.ID(tid), u, v, m)
	}
	if h.reuse != nil {
		h.reuse.Texel(texture.ID(tid), u, v, m)
	}
}

func (h *statsHandler) EndFrame(pixels int64) {
	if h.collect != nil {
		h.collect.AddPixels(pixels)
		h.rt.stats[h.frame] = h.collect.EndFrame()
	}
	h.frame++
}

// replayStats drives the collectors through every frame's chunks in
// order on the coordinator goroutine, overlapping the farm workers, as
// chunk consumer ci. An aborted frame means a worker failed; that worker
// reports the error, so this just stops.
func (rt *renderedTrace) replayStats(collect *stats.Collector, reuse *reuseProbe, ci int) error {
	if collect == nil && reuse == nil {
		return nil
	}
	h := &statsHandler{rt: rt, collect: collect, reuse: reuse}
	return rt.consume(ci, h)
}

// renderFarm is the frame-parallel counterpart of renderedTrace.render:
// workers render frames out of order into per-frame chunk sequences
// while the coordinator replays published chunks in frame order for the
// serial collectors (as chunk consumer statsCi; -1 when no collectors
// run). The assembled output is byte-identical to the serial pass at
// every worker count — shard bytes are a function of the frame alone,
// and the frame-ordered stats replay reproduces the serial collector
// sequence.
func (rt *renderedTrace) renderFarm(w *workload.Workload, render Config, collect *stats.Collector, reuse *reuseProbe, workers, statsCi int) error {
	sp := render.Tracer.Start("render")
	defer sp.End()

	// Mesh bounds are memoized lazily on first use; warm them here so the
	// workers' culling passes only read the shared scene.
	w.Scene.PrepareBounds()

	ctxs := make([]*renderContext, workers)
	for k := range ctxs {
		rc, err := newRenderContext(render)
		if err != nil {
			rt.abort(0)
			return err
		}
		rc.track = render.Trace.Track("render worker " + strconv.Itoa(k))
		ctxs[k] = rc
	}
	if collect != nil {
		rt.stats = make([]stats.Frame, render.Frames)
	}

	var next atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for k := range ctxs {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			errs[k] = rt.renderFrames(ctxs[k], w, render, &next)
		}(k)
	}

	statsErr := rt.replayStats(collect, reuse, statsCi)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return statsErr
}
