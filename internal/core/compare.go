package core

import (
	"fmt"

	"texcache/internal/cache"
	"texcache/internal/raster"
	"texcache/internal/scene"
	"texcache/internal/stats"
	"texcache/internal/telemetry"
	"texcache/internal/texture"
	"texcache/internal/workload"
)

// CacheSpec names one cache configuration in a comparison run.
type CacheSpec struct {
	Name    string
	L1Bytes int
	// L1Ways is the L1 associativity; 0 means the paper's 2-way.
	L1Ways int
	// L2 is nil for the pull architecture.
	L2         *cache.L2Config
	TLBEntries int
}

// Comparison holds the results of simulating several cache configurations
// against one rendered reference stream.
type Comparison struct {
	Workload string
	Render   Config
	// Specs holds the spec names, parallel to Results; metric records
	// carry these as their spec label.
	Specs []string
	// Results is parallel to the specs passed to RunComparison; the
	// Config field of each Results reflects its spec.
	Results []*Results
	// Pixels per frame (shared across specs — same stream).
	FramePixels []int64
	// Reuse is the rendered stream's stack-distance histogram when
	// render.CollectReuse was set; the stream is shared across specs, so
	// the comparison carries one histogram, not one per spec.
	Reuse *telemetry.ReuseHistogram
	// ReuseProfile is the full sector-aware locality profile behind
	// Reuse (same probe, same stream), the input of the analytic model.
	ReuseProfile *telemetry.SectorProfile
	// Model is the analytic model's per-spec report, parallel to Specs,
	// present whenever a reuse profile was collected: the prediction for
	// every model-reachable spec, the refusal reason for the rest, and —
	// when that spec also has exact (replayed) results — the absolute
	// model error on the paper's headline rates.
	Model []SpecModel
}

// layoutXlate caches per-texture address translation for one L2 layout.
type layoutXlate struct {
	layout  texture.TileLayout
	tilings []*texture.Tiling
	starts  []uint32
	// per-texel scratch, refreshed by multiSink.Texel.
	pt  uint32
	sub uint8
}

// specState pairs a hierarchy with its layout translator index.
type specState struct {
	hier      *cache.Hierarchy
	layoutIdx int // -1 when no L2
}

// multiSink fans one texel reference stream out to several hierarchies,
// translating each distinct L2 layout only once per texel.
type multiSink struct {
	canon   []*texture.Tiling
	layouts []*layoutXlate
	specs   []specState
	collect *stats.Collector
	reuse   *reuseProbe
}

func (s *multiSink) Texel(tid texture.ID, u, v, m int) {
	l1 := s.xlate(tid, u, v, m)
	s.access(l1)
	if s.collect != nil {
		s.collect.Texel(tid, u, v, m)
	}
	if s.reuse != nil {
		s.reuse.Texel(tid, u, v, m)
	}
}

// xlate translates one texel to its canonical L1 reference and refreshes
// every distinct layout's page-table scratch (lx.pt / lx.sub). Split from
// Texel so the range-replay engine can translate references it cannot yet
// present to the hierarchies (its checkpoint has not arrived) and buffer
// the results instead.
//
// texlint:hotpath
func (s *multiSink) xlate(tid texture.ID, u, v, m int) cache.L1Ref {
	a := s.canon[tid].Addr(u, v, m)
	l1 := cache.L1Ref{
		Tag: cache.PackTag(uint32(tid), a.L2, a.L1),
		Set: cache.SetHash(int32(u>>2), int32(v>>2), uint8(m), uint32(tid)),
	}
	for _, lx := range s.layouts {
		b := lx.tilings[tid].Addr(u, v, m)
		lx.pt = lx.starts[tid] + b.L2
		lx.sub = uint8(b.L1)
	}
	return l1
}

// access presents the translated reference (l1 plus the layout scratch
// xlate left behind) to every hierarchy in the fan-out.
//
// texlint:hotpath
func (s *multiSink) access(l1 cache.L1Ref) {
	for i := range s.specs {
		sp := &s.specs[i]
		ref := cache.Ref{L1: l1}
		if sp.layoutIdx >= 0 {
			lx := s.layouts[sp.layoutIdx]
			ref.PTIndex = lx.pt
			ref.Sub = lx.sub
		}
		sp.hier.Access(ref)
	}
}

// specConfig merges one CacheSpec into the render configuration, yielding
// the Config recorded in that spec's Results.
func specConfig(render Config, spec CacheSpec) Config {
	cfg := render
	cfg.L1Bytes = spec.L1Bytes
	cfg.L1Ways = spec.L1Ways
	cfg.L2 = spec.L2
	cfg.TLBEntries = spec.TLBEntries
	return cfg
}

// RunComparison renders the workload once under render (resolution, frame
// count, filter, z-order) and simulates every spec against the identical
// texel reference stream. render's own cache fields are ignored. When
// render.StatLayouts is non-empty, working-set statistics are gathered once
// and attached to the first spec's results.
//
// render.Parallelism selects the engine: 1 runs the serial reference
// fan-out (every texel pushed through all hierarchies in one goroutine),
// anything else renders once into a sharded in-memory trace and replays
// it through the specs on a bounded worker pool (see sweep.go). The two
// paths produce byte-identical Comparisons.
func RunComparison(w *workload.Workload, render Config, specs []CacheSpec) (*Comparison, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: no cache specs")
	}
	if render.Frames <= 0 {
		render.Frames = w.Frames
	}
	if render.L1Bytes == 0 {
		render.L1Bytes = 2 * 1024 // irrelevant; satisfies validation
	}
	if err := render.Validate(); err != nil {
		return nil, err
	}
	if render.FastSweep {
		return runComparisonFast(w, render, specs)
	}
	par := sweepWorkers(render.Parallelism, len(specs))
	if par > 1 || replayRangeCount(render.ReplayWorkers, render.Frames) > 1 {
		// Intra-spec range parallelism runs on the trace engine even when
		// the spec count alone would take the serial path.
		return runComparisonParallel(w, render, specs, par, nil)
	}
	return runComparisonSerial(w, render, specs, nil)
}

// buildMultiSink builds the shared-translation fan-out sink both engines
// drive: one hierarchy per spec (readable through sink.specs, parallel
// to specs), with address translation shared across all specs that use
// the same L2 layout — each distinct layout is translated once per
// texel, however many specs consume it.
func buildMultiSink(set *texture.Set, specs []CacheSpec) (*multiSink, error) {
	sink := &multiSink{canon: set.Tilings(texture.CanonicalL1())}
	sink.specs = make([]specState, 0, len(specs))
	// Every spec contributes at most one layout, so len(specs) bounds the
	// deduplicated layout table.
	sink.layouts = make([]*layoutXlate, 0, len(specs))
	layoutIndex := map[texture.TileLayout]int{}

	for _, spec := range specs {
		ways := spec.L1Ways
		if ways == 0 {
			ways = cache.L1Ways
		}
		l1, err := cache.NewL1Assoc(spec.L1Bytes, ways)
		if err != nil {
			return nil, fmt.Errorf("core: spec %q: %w", spec.Name, err)
		}
		hier := &cache.Hierarchy{L1: l1}
		layoutIdx := -1
		if spec.L2 != nil {
			l2cfg := *spec.L2
			l2cfg.Layout.L1Size = 4
			idx, ok := layoutIndex[l2cfg.Layout]
			if !ok {
				set.MustPrepare(l2cfg.Layout)
				starts := make([]uint32, set.Len())
				for i := range starts {
					starts[i] = set.Start(l2cfg.Layout, texture.ID(i))
				}
				idx = len(sink.layouts)
				sink.layouts = append(sink.layouts, &layoutXlate{
					layout:  l2cfg.Layout,
					tilings: set.Tilings(l2cfg.Layout),
					starts:  starts,
				})
				layoutIndex[l2cfg.Layout] = idx
			}
			layoutIdx = idx
			l2, err := cache.NewL2(l2cfg, set.PageTableEntries(l2cfg.Layout))
			if err != nil {
				return nil, fmt.Errorf("core: spec %q: %w", spec.Name, err)
			}
			hier.L2 = l2
			if spec.TLBEntries > 0 {
				hier.TLB = cache.NewTLB(spec.TLBEntries)
			}
		}
		sink.specs = append(sink.specs, specState{hier: hier, layoutIdx: layoutIdx})
	}
	return sink, nil
}

// runComparisonSerial is the legacy single-goroutine engine, kept as the
// reference implementation the parallel path is tested against. A
// non-nil probe (the -fast engine injects one carrying TLB filters)
// overrides the CollectReuse-built probe and taps the render stream.
func runComparisonSerial(w *workload.Workload, render Config, specs []CacheSpec, probe *reuseProbe) (*Comparison, error) {
	set := w.Scene.Textures
	set.MustPrepare(texture.CanonicalL1())

	sink, err := buildMultiSink(set, specs)
	if err != nil {
		return nil, err
	}

	cmp := &Comparison{
		Workload:    w.Name,
		Render:      render,
		Specs:       make([]string, 0, len(specs)),
		Results:     make([]*Results, 0, len(specs)),
		FramePixels: make([]int64, 0, render.Frames),
	}
	for _, spec := range specs {
		cmp.Specs = append(cmp.Specs, spec.Name)
		cmp.Results = append(cmp.Results, &Results{
			Workload: w.Name, Config: specConfig(render, spec),
		})
	}

	if len(render.StatLayouts) > 0 {
		collect, err := stats.NewCollector(set, render.StatLayouts...)
		if err != nil {
			return nil, err
		}
		sink.collect = collect
	}
	if probe == nil && render.CollectReuse {
		probe = newReuseProbe(set)
	}
	sink.reuse = probe

	rast, err := raster.New(raster.Config{
		Width: render.Width, Height: render.Height,
		Mode:           render.Mode,
		ZBeforeTexture: render.ZBeforeTexture,
	})
	if err != nil {
		return nil, err
	}
	rast.SetSink(sink)
	pipeline := scene.NewPipeline(rast)

	// The serial engine emits the same logical textrace events as the
	// parallel engines — "render" frame spans and per-spec "replayed/"
	// samples — so a canonical-regime export is identical whichever
	// engine ran. Its single physical track is the render pass.
	tk := render.Trace.Track("render")
	replayed := make([]*telemetry.Counter, len(specs))
	for i, spec := range specs {
		replayed[i] = render.Trace.Counter("replayed/" + spec.Name)
	}

	aspect := float64(render.Width) / float64(render.Height)
	prev := make([]cache.Counters, len(specs))
	for f := 0; f < render.Frames; f++ {
		fspan := tk.Begin("render", "frame", int64(f))
		if sink.collect != nil {
			sink.collect.BeginFrame()
		}
		pst := pipeline.RenderFrame(w.Scene, w.Camera(aspect, f, render.Frames))
		fspan.End()
		cmp.FramePixels = append(cmp.FramePixels, rast.Pixels())
		var sf *stats.Frame
		if sink.collect != nil {
			sink.collect.AddPixels(rast.Pixels())
			v := sink.collect.EndFrame()
			sf = &v
		}
		for i := range sink.specs {
			cur := sink.specs[i].hier.Counters()
			fr := FrameResult{
				Pipeline: pst,
				Pixels:   rast.Pixels(),
				Counters: cur.Sub(prev[i]),
			}
			if i == 0 {
				fr.Stats = sf
			}
			prev[i] = cur
			// Streamed spec-minor within the frame: this loop defines the
			// canonical metric order every other engine must reproduce.
			if render.Metrics != nil {
				render.Metrics.Frame(metricsFrame(w.Name, cmp.Specs[i], f, &fr))
			}
			replayed[i].Sample(int64(f), int64(f)+1)
			cmp.Results[i].Frames = append(cmp.Results[i].Frames, fr)
		}
	}
	for i := range sink.specs {
		cmp.Results[i].Totals = sink.specs[i].hier.Counters()
	}
	if sink.collect != nil {
		sum := stats.Summarize(sink.collect.Frames(),
			int64(render.Width)*int64(render.Height))
		cmp.Results[0].Summary = &sum
	}
	cmp.Reuse = sink.reuse.histogram()
	cmp.ReuseProfile = sink.reuse.profile()
	attachModel(cmp, specs)
	return cmp, nil
}
