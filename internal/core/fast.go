// The analytic -fast sweep engine. The paper's capacity sweep replays
// one rendered reference stream through every cache configuration; the
// reuse model (internal/model/reusemodel) collapses that to a single
// instrumented render: the sector-aware reuse probe measures the
// stream's locality profile once, and every model-reachable spec's
// counters are predicted from it by arithmetic. Only specs outside the
// model's reach — direct-mapped L1s, random replacement, disabled
// sector mapping, off-granularity tile sizes — fall back to exact
// replay, through the unchanged serial or parallel engines with the
// probe riding their render pass. TLB statistics are never modeled:
// each modeled TLB spec gets a real cache.TLB behind a real L1 filter
// inside the probe, so its stats are exact by construction.
package core

import (
	"fmt"

	"texcache/internal/cache"
	"texcache/internal/model/reusemodel"
	"texcache/internal/raster"
	"texcache/internal/scene"
	"texcache/internal/texture"
	"texcache/internal/workload"
)

// runComparisonFast is the engine behind RunComparison when
// render.FastSweep is set.
func runComparisonFast(w *workload.Workload, render Config, specs []CacheSpec) (*Comparison, error) {
	if len(render.StatLayouts) > 0 {
		// The working-set collector attaches per-frame statistics to the
		// first spec's FrameResults, which a modeled result does not have.
		return nil, fmt.Errorf("core: fast sweep does not support working-set statistics")
	}
	set := w.Scene.Textures
	set.MustPrepare(texture.CanonicalL1())
	blockEdge := reuseLayout().L2Size

	// Partition the specs: model-reachable ones are predicted from the
	// probe's profile, the rest replay exactly. Modeled TLB specs get an
	// exact TLB in the probe, behind an L1 filter shared per L1 geometry;
	// the probe's page table is valid for them because Check already
	// pinned their tile edge to the probe's granularity.
	var replaySpecs []CacheSpec
	var replayIdx []int
	probe := newReuseProbe(set)
	mt := render.Trace.Track("model")
	type l1geom struct{ bytes, ways int }
	filters := map[l1geom]*probeFilter{}
	for i, spec := range specs {
		if err := reusemodel.Check(modelSpec(spec), blockEdge); err != nil {
			// A model refusal is a protocol edge: this spec leaves the
			// analytic path and falls back to exact replay.
			mt.Instant("model", "exact-fallback", int64(i), spec.Name)
			replaySpecs = append(replaySpecs, spec)
			replayIdx = append(replayIdx, i)
			continue
		}
		if spec.TLBEntries <= 0 {
			continue
		}
		g := l1geom{spec.L1Bytes, spec.L1Ways}
		f := filters[g]
		if f == nil {
			ways := spec.L1Ways
			if ways == 0 {
				ways = cache.L1Ways
			}
			l1, err := cache.NewL1Assoc(spec.L1Bytes, ways)
			if err != nil {
				return nil, fmt.Errorf("core: spec %q: %w", spec.Name, err)
			}
			f = &probeFilter{l1: l1, tlbs: make([]probeTLB, 0, len(specs))}
			filters[g] = f
			probe.filters = append(probe.filters, f)
		}
		f.tlbs = append(f.tlbs, probeTLB{specIdx: i, tlb: cache.NewTLB(spec.TLBEntries)})
	}

	// One pass over the stream: either the exact engines replay the
	// unreachable specs with the probe tapping their render, or — when
	// the model covers everything — a bare render drives the probe alone,
	// with no trace encoding or replay machinery at all.
	var framePixels []int64
	results := make([]*Results, len(specs))
	if len(replaySpecs) > 0 {
		fb := render.Tracer.Start("exact-fallback")
		sub := render
		sub.FastSweep = false
		var cmp *Comparison
		var err error
		par := sweepWorkers(sub.Parallelism, len(replaySpecs))
		if par > 1 || replayRangeCount(sub.ReplayWorkers, sub.Frames) > 1 {
			cmp, err = runComparisonParallel(w, sub, replaySpecs, par, probe)
		} else {
			cmp, err = runComparisonSerial(w, sub, replaySpecs, probe)
		}
		fb.End()
		if err != nil {
			return nil, err
		}
		framePixels = cmp.FramePixels
		for j, i := range replayIdx {
			results[i] = cmp.Results[j]
		}
	} else {
		sp := render.Tracer.Start("render")
		pt := render.Trace.Track("fast-probe")
		rast, err := raster.New(raster.Config{
			Width: render.Width, Height: render.Height,
			Mode:           render.Mode,
			ZBeforeTexture: render.ZBeforeTexture,
		})
		if err != nil {
			return nil, err
		}
		rast.SetSink(probe)
		pipeline := scene.NewPipeline(rast)
		aspect := float64(render.Width) / float64(render.Height)
		framePixels = make([]int64, 0, render.Frames)
		for f := 0; f < render.Frames; f++ {
			// Logical "probe": the bare instrumented render only exists
			// on the all-modeled path, a deterministic property of the
			// spec list, so it is canonical-visible.
			fr := pt.Begin("probe", "frame", int64(f))
			pipeline.RenderFrame(w.Scene, w.Camera(aspect, f, render.Frames))
			framePixels = append(framePixels, rast.Pixels())
			fr.End()
		}
		sp.End()
	}

	msp := render.Tracer.Start("model")
	defer msp.End()
	cmp := &Comparison{
		Workload:    w.Name,
		Render:      render,
		Specs:       make([]string, len(specs)),
		Results:     results,
		FramePixels: framePixels,
	}
	cmp.Reuse = probe.histogram()
	cmp.ReuseProfile = probe.profile()
	attachModel(cmp, specs)

	// Snapshot the probe's exact TLB filters; their stats overwrite the
	// modeled (absent) TLB numbers below.
	tp := render.Tracer.Start("tlb-patch")
	tlb2 := mt.Begin("model", "tlb-patch", int64(len(specs)))
	tlbStats := make(map[int]cache.TLBStats)
	for _, f := range probe.filters {
		for _, t := range f.tlbs {
			tlbStats[t.specIdx] = t.tlb.Stats()
		}
	}
	tlb2.End()
	tp.End()
	for i, spec := range specs {
		cmp.Specs[i] = spec.Name
		if cmp.Results[i] != nil {
			continue // replayed exactly
		}
		ev := mt.Begin("model", "eval", int64(i))
		m := &cmp.Model[i]
		if !m.Modeled {
			ev.End()
			// Check admitted the spec during partitioning, so Predict
			// cannot have refused it.
			return nil, fmt.Errorf("core: fast sweep: spec %q: %s", spec.Name, m.Unreachable)
		}
		totals := m.Pred.Counters()
		if st, ok := tlbStats[i]; ok {
			totals.TLB = st
		}
		cmp.Results[i] = &Results{
			Workload:    w.Name,
			Config:      specConfig(render, spec),
			Totals:      totals,
			ModelFrames: render.Frames,
		}
		ev.End()
	}
	return cmp, nil
}
