package core

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"texcache/internal/cache"
	"texcache/internal/raster"
	"texcache/internal/texture"
	"texcache/internal/workload"
)

// farmSweepSpecs hand-rolls the 13 cache specs of experiments.SweepSpecs()
// (this internal test package cannot import experiments without a cycle):
// the pull-architecture L1 sizes, the L2 sizes behind a 2 KB L1, and the
// TLB entry sweep, all with the cache studies' fixed 16x16 L2 tiles.
func farmSweepSpecs() []CacheSpec {
	layout := texture.TileLayout{L2Size: 16, L1Size: 4}
	l2 := func(name string, l1Bytes, l2MB, tlb int) CacheSpec {
		return CacheSpec{
			Name:    name,
			L1Bytes: l1Bytes,
			L2: &cache.L2Config{
				SizeBytes: l2MB << 20,
				Layout:    layout,
				Policy:    cache.Clock,
			},
			TLBEntries: tlb,
		}
	}
	specs := []CacheSpec{
		{Name: "pull-2k", L1Bytes: 2 << 10},
		{Name: "pull-4k", L1Bytes: 4 << 10},
		{Name: "pull-8k", L1Bytes: 8 << 10},
		{Name: "pull-16k", L1Bytes: 16 << 10},
		{Name: "pull-32k", L1Bytes: 32 << 10},
		l2("l2-2m", 2<<10, 2, 16),
		l2("l2-4m", 2<<10, 4, 0),
		l2("l2-8m", 2<<10, 8, 0),
		l2("l2-2m-16k", 16<<10, 2, 0),
	}
	for _, tlb := range []int{1, 2, 4, 8} {
		specs = append(specs, l2(fmt.Sprintf("tlb-%d", tlb), 2<<10, 2, tlb))
	}
	return specs
}

func farmRenderConfig() Config {
	return Config{
		Width:  192,
		Height: 144,
		Frames: 4,
		Mode:   raster.Trilinear,
	}
}

// farmWorkerCounts returns the render farm sizes the determinism tests
// sweep: the serial oracle, the smallest real farm, and GOMAXPROCS.
func farmWorkerCounts() []int {
	counts := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p > 2 {
		counts = append(counts, p)
	}
	return counts
}

// TestRenderFarmShardIdentity is the farm's low-level contract: for every
// worker count, the per-frame shard bytes, pipeline statistics and pixel
// counts published by renderFarm are byte-identical to those of the
// serial render pass. Shards are compared directly, before any replay,
// so a divergence pinpoints the render pass rather than the cache model.
func TestRenderFarmShardIdentity(t *testing.T) {
	w := workload.Village()
	render := farmRenderConfig()

	// Zero consumers puts the traces in retain mode: chunks are never
	// recycled, so each frame's full shard bytes stay joinable.
	serial := newRenderedTrace(render.Frames, 0, nil)
	if err := serial.render(w, render, nil, nil); err != nil {
		t.Fatal(err)
	}

	for _, workers := range farmWorkerCounts()[1:] {
		farm := newRenderedTrace(render.Frames, 0, nil)
		if err := farm.renderFarm(w, render, nil, nil, workers, -1); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for f := range serial.frames {
			sb, fb := serial.frames[f].bytes(), farm.frames[f].bytes()
			if !bytes.Equal(sb, fb) {
				t.Errorf("workers=%d frame %d: shard bytes differ (serial %d bytes, farm %d bytes)",
					workers, f, len(sb), len(fb))
			}
			if serial.pipeline[f] != farm.pipeline[f] {
				t.Errorf("workers=%d frame %d: pipeline stats differ", workers, f)
			}
			if serial.pixels[f] != farm.pixels[f] {
				t.Errorf("workers=%d frame %d: pixels = %d, want %d",
					workers, f, farm.pixels[f], serial.pixels[f])
			}
		}
	}
}

// TestRenderParallelMatchesSerial is the farm's end-to-end contract: the
// full 13-spec sweep assembles a Comparison deeply equal to the serial
// reference engine's at every render farm size. It runs at a tiny scale
// so the race lane covers the farm on every CI run; it is deliberately
// not gated.
func TestRenderParallelMatchesSerial(t *testing.T) {
	w := workload.Village()
	specs := farmSweepSpecs()

	base := farmRenderConfig()
	base.Parallelism = 1
	serial, err := RunComparison(w, base, specs)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range farmWorkerCounts() {
		render := farmRenderConfig()
		render.RenderWorkers = workers
		cmp, err := RunComparison(w, render, specs)
		if err != nil {
			t.Fatalf("renderworkers=%d: %v", workers, err)
		}
		// The engine knobs are recorded in the configs; normalise them
		// before demanding identity of everything else.
		cmp.Render.Parallelism = serial.Render.Parallelism
		cmp.Render.RenderWorkers = serial.Render.RenderWorkers
		for i := range cmp.Results {
			cmp.Results[i].Config.Parallelism = serial.Results[i].Config.Parallelism
			cmp.Results[i].Config.RenderWorkers = serial.Results[i].Config.RenderWorkers
		}
		for i, spec := range specs {
			if serial.Results[i].Totals != cmp.Results[i].Totals {
				t.Errorf("renderworkers=%d spec %q: totals differ:\nserial %+v\nfarm   %+v",
					workers, spec.Name, serial.Results[i].Totals, cmp.Results[i].Totals)
			}
		}
		if !reflect.DeepEqual(serial, cmp) {
			t.Errorf("renderworkers=%d: comparison differs beyond totals (frames, pixels, pipeline stats)", workers)
		}
	}
}

// TestRenderParallelStatsAndReuse covers the coordinator's frame-ordered
// stats replay: the §4 working-set collector and the reuse-distance probe
// both carry cross-frame state (new-block stamps, LRU stack distances)
// that must see the global reference order even when frames render out of
// order. The farm feeds them by replaying published shards in frame
// order; the result must match the serial pass exactly.
func TestRenderParallelStatsAndReuse(t *testing.T) {
	w := workload.Village()
	specs := farmSweepSpecs()[:2]

	base := farmRenderConfig()
	base.Parallelism = 1
	base.StatLayouts = []texture.TileLayout{{L2Size: 16, L1Size: 4}}
	base.CollectReuse = true
	serial, err := RunComparison(w, base, specs)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range farmWorkerCounts() {
		render := base
		render.Parallelism = 0
		render.RenderWorkers = workers
		cmp, err := RunComparison(w, render, specs)
		if err != nil {
			t.Fatalf("renderworkers=%d: %v", workers, err)
		}
		cmp.Render.Parallelism = serial.Render.Parallelism
		cmp.Render.RenderWorkers = serial.Render.RenderWorkers
		for i := range cmp.Results {
			cmp.Results[i].Config.Parallelism = serial.Results[i].Config.Parallelism
			cmp.Results[i].Config.RenderWorkers = serial.Results[i].Config.RenderWorkers
		}
		if !reflect.DeepEqual(serial.Reuse, cmp.Reuse) {
			t.Errorf("renderworkers=%d: reuse histogram differs", workers)
		}
		if !reflect.DeepEqual(serial.Results[0].Summary, cmp.Results[0].Summary) {
			t.Errorf("renderworkers=%d: working-set summary differs", workers)
		}
		if !reflect.DeepEqual(serial, cmp) {
			t.Errorf("renderworkers=%d: comparison differs (stats frames or counters)", workers)
		}
	}
}
