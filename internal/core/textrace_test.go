package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"texcache/internal/telemetry"
	"texcache/internal/workload"
)

// sweepTrace runs the canonical sweep at the given engine settings with
// the given clock and returns the Chrome trace_event export.
func sweepTrace(t *testing.T, clock telemetry.Clock, par, rw int, fast bool) []byte {
	t.Helper()
	return sweepTraceRanged(t, clock, par, rw, 0, fast)
}

// sweepTraceRanged adds the intra-spec frame-range dimension.
func sweepTraceRanged(t *testing.T, clock telemetry.Clock, par, rw, replay int, fast bool) []byte {
	t.Helper()
	cfg := testCfg()
	cfg.Frames = 4
	cfg.Parallelism = par
	cfg.RenderWorkers = rw
	cfg.ReplayWorkers = replay
	cfg.FastSweep = fast
	cfg.Trace = telemetry.NewTrace(clock)
	if _, err := RunComparison(workload.Village(), cfg, telemetrySpecs()); err != nil {
		t.Fatalf("par=%d rw=%d replay=%d fast=%v: %v", par, rw, replay, fast, err)
	}
	var buf bytes.Buffer
	if err := cfg.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceCanonicalDeterminism pins the tentpole acceptance criterion:
// under FakeClock the exported trace bytes are identical at every
// Parallelism / RenderWorkers setting — including the serial reference
// engine, which shares no code with the worker pool.
func TestTraceCanonicalDeterminism(t *testing.T) {
	base := sweepTrace(t, &telemetry.FakeClock{Step: 7}, 1, 1, false)
	for _, want := range []string{
		`"name":"frame"`, `"name":"render"`, `"replayed/pull-2k"`, `"replayed/l2-4m"`,
	} {
		if !bytes.Contains(base, []byte(want)) {
			t.Fatalf("canonical export missing %s:\n%s", want, base)
		}
	}
	// Scheduling-dependent events must not leak into the canonical
	// regime: physical track names, protocol instants, gauges — including
	// the intra-spec range engine's tracks and hand-off events.
	for _, reject := range []string{
		"replay group", "render worker", "shard-publish", "chunk-bytes-inflight",
		"replay range", "buffer", "drain", "checkpoint-publish",
	} {
		if bytes.Contains(base, []byte(reject)) {
			t.Fatalf("canonical export leaks wall-only data %q:\n%s", reject, base)
		}
	}
	for _, eng := range [][3]int{{4, 1, 0}, {4, 2, 0}, {2, 4, 0}, {0, 0, 0},
		{1, 1, 2}, {1, 1, 4}, {2, 2, 3}, {0, 0, 4}} {
		got := sweepTraceRanged(t, &telemetry.FakeClock{Step: 7}, eng[0], eng[1], eng[2], false)
		if !bytes.Equal(got, base) {
			t.Errorf("canonical trace at par=%d rw=%d replay=%d differs from serial (%d vs %d bytes)",
				eng[0], eng[1], eng[2], len(got), len(base))
		}
	}
}

// TestTraceFastSweepCanonicalDeterminism extends the byte-identity
// contract to the analytic engine: the exact-fallback sub-engine may run
// serial or parallel, the logical record must not move.
func TestTraceFastSweepCanonicalDeterminism(t *testing.T) {
	// pull-16k with 1-way L1 is outside the model's reach, forcing the
	// exact-fallback replay path next to the modeled specs.
	specs := telemetrySpecs()
	specs[3].L1Ways = 1
	run := func(par int) []byte {
		cfg := testCfg()
		cfg.Frames = 3
		cfg.Parallelism = par
		cfg.FastSweep = true
		cfg.Trace = telemetry.NewTrace(&telemetry.FakeClock{Step: 7})
		if _, err := RunComparison(workload.Village(), cfg, specs); err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		var buf bytes.Buffer
		if err := cfg.Trace.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := run(1)
	for _, want := range []string{
		`"name":"exact-fallback"`, `"name":"eval"`, `"name":"tlb-patch"`, `"name":"model"`,
	} {
		if !bytes.Contains(base, []byte(want)) {
			t.Fatalf("fast canonical export missing %s:\n%s", want, base)
		}
	}
	for _, par := range []int{4, 0} {
		if got := run(par); !bytes.Equal(got, base) {
			t.Errorf("fast canonical trace at par=%d differs from serial", par)
		}
	}
}

// TestTraceFastProbePhase covers the all-modeled branch: the bare
// instrumented render records logical "probe" frame spans, and the old
// Tracer gains the fast-sweep phase spans PR 8 left dark.
func TestTraceFastProbePhase(t *testing.T) {
	specs := []CacheSpec{l2spec("l2-2m", 2*1024, 2, 16), l2spec("l2-4m", 2*1024, 4, 16)}
	cfg := testCfg()
	cfg.Frames = 3
	cfg.FastSweep = true
	cfg.Trace = telemetry.NewTrace(&telemetry.FakeClock{Step: 7})
	cfg.Tracer = telemetry.NewTracer(&telemetry.FakeClock{Step: 7})
	if _, err := RunComparison(workload.Village(), cfg, specs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cfg.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"name":"probe"`)) {
		t.Fatalf("all-modeled fast sweep missing probe track:\n%s", buf.Bytes())
	}
	names := map[string]int{}
	for _, s := range cfg.Tracer.Spans() {
		names[s.Name]++
	}
	for _, want := range []string{"render", "model", "tlb-patch"} {
		if names[want] == 0 {
			t.Errorf("fast sweep Tracer missing %q span (got %v)", want, names)
		}
	}
}

// TestTraceWallExportShape pins the other half of the acceptance
// criterion against a wall-regime clock: the parallel engine's export
// carries at least 3 distinct worker tracks and at least 2 counter
// tracks, in valid trace_event shape.
func TestTraceWallExportShape(t *testing.T) {
	data := sweepTrace(t, &stepTestClock{step: 1000}, 4, 2, false)
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Args struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export not valid JSON: %v", err)
	}
	workerTracks := map[string]bool{}
	counters := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				n := ev.Args.Name
				if strings.HasPrefix(n, "render worker ") ||
					strings.HasPrefix(n, "replay group ") {
					workerTracks[n] = true
				}
			}
		case "C":
			counters[ev.Name] = true
		}
	}
	if len(workerTracks) < 3 {
		t.Errorf("wall export has %d worker tracks (%v), want >= 3", len(workerTracks), workerTracks)
	}
	if len(counters) < 2 {
		t.Errorf("wall export has %d counter tracks (%v), want >= 2", len(counters), counters)
	}
	for _, want := range []string{"shard-publish", "replay group 0", "replay group 3",
		"render worker 0", "render worker 1", "coordinator", "assemble"} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("wall export missing %q", want)
		}
	}
}

// stepTestClock advances by a fixed step per reading without
// implementing DeterministicClock, so the trace records wall-regime.
type stepTestClock struct {
	ns   int64
	step int64
}

func (c *stepTestClock) Now() int64 {
	c.ns += c.step
	return c.ns
}

// TestTraceCountersTrackEngineWork sanity-checks the live counters the
// monitor serves: after a parallel sweep every spec's replay counter
// equals the frame count, the rendered counter equals the frame count,
// and the chunk pool drained back to zero bytes in flight.
func TestTraceCountersTrackEngineWork(t *testing.T) {
	cfg := testCfg()
	cfg.Frames = 4
	cfg.Parallelism = 4
	cfg.Trace = telemetry.NewTrace(telemetry.NewWallClock())
	specs := telemetrySpecs()
	if _, err := RunComparison(workload.Village(), cfg, specs); err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if got := cfg.Trace.Counter("replayed/" + s.Name).Value(); got != 4 {
			t.Errorf("replayed/%s = %d, want 4", s.Name, got)
		}
	}
	if got := cfg.Trace.Counter("frames-rendered").Value(); got != 4 {
		t.Errorf("frames-rendered = %d, want 4", got)
	}
	if got := cfg.Trace.Counter("chunk-bytes-inflight").Value(); got != 0 {
		t.Errorf("chunk-bytes-inflight = %d after run, want 0", got)
	}
	if got := cfg.Trace.Counter("trace-bytes").Value(); got <= 0 {
		t.Errorf("trace-bytes = %d, want > 0", got)
	}

	mon := telemetry.NewMonitor(cfg.Trace, cfg.Frames)
	snap := mon.Snapshot()
	if len(snap.Specs) != len(specs) {
		t.Fatalf("monitor sees %d specs, want %d", len(snap.Specs), len(specs))
	}
	for _, sp := range snap.Specs {
		if sp.Done != 1 {
			t.Errorf("spec %s done = %v, want 1", sp.Spec, sp.Done)
		}
	}
}
