package core

import (
	"bytes"
	"reflect"
	"testing"

	"texcache/internal/telemetry"
	"texcache/internal/texture"
	"texcache/internal/workload"
)

// telemetrySpecs is a small sweep covering pull, two L2 sizes and a
// second L2 layout, so both engines exercise layout sharing.
func telemetrySpecs() []CacheSpec {
	return []CacheSpec{
		{Name: "pull-2k", L1Bytes: 2 * 1024},
		l2spec("l2-2m", 2*1024, 2, 16),
		l2spec("l2-4m", 2*1024, 4, 16),
		{Name: "pull-16k", L1Bytes: 16 * 1024},
	}
}

// TestMetricStreamDeterminism is the tentpole guarantee: the JSONL metric
// stream is byte-identical whether the serial fan-out streams it record
// by record or the parallel engine merges per-worker buffers after the
// join — at any Parallelism.
func TestMetricStreamDeterminism(t *testing.T) {
	specs := telemetrySpecs()
	run := func(par int) ([]byte, []telemetry.FrameMetrics, *Comparison) {
		var out bytes.Buffer
		var buf telemetry.Buffer
		cfg := testCfg()
		cfg.Frames = 4
		cfg.Parallelism = par
		cfg.Metrics = telemetry.Tee(telemetry.NewJSONL(&out), &buf)
		cfg.CollectReuse = true
		cmp, err := RunComparison(workload.Village(), cfg, specs)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		return out.Bytes(), buf.Records, cmp
	}

	serialBytes, serialRecs, serialCmp := run(1)
	wantRecords := 4 * len(specs)
	if len(serialRecs) != wantRecords {
		t.Fatalf("serial emitted %d records, want %d", len(serialRecs), wantRecords)
	}
	for _, par := range []int{0, 2} {
		gotBytes, gotRecs, gotCmp := run(par)
		if !reflect.DeepEqual(gotRecs, serialRecs) {
			t.Errorf("parallelism %d: records differ from serial", par)
		}
		if !bytes.Equal(gotBytes, serialBytes) {
			t.Errorf("parallelism %d: JSONL stream not byte-identical to serial", par)
		}
		if !reflect.DeepEqual(gotCmp.Reuse, serialCmp.Reuse) {
			t.Errorf("parallelism %d: reuse histogram differs from serial", par)
		}
		if !reflect.DeepEqual(gotCmp.Specs, serialCmp.Specs) {
			t.Errorf("parallelism %d: spec names differ", par)
		}
	}
	if serialCmp.Reuse == nil || serialCmp.Reuse.Accesses == 0 {
		t.Error("reuse histogram empty despite CollectReuse")
	}
}

func TestRunEmitsMetrics(t *testing.T) {
	var buf telemetry.Buffer
	cfg := withL2(testCfg(), 2)
	cfg.Frames = 3
	cfg.Metrics = &buf
	cfg.CollectReuse = true
	res, err := Run(workload.City(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf.Records) != 3 {
		t.Fatalf("emitted %d records, want 3", len(buf.Records))
	}
	for f, m := range buf.Records {
		want := metricsFrame(res.Workload, "", f, &res.Frames[f])
		if m != want {
			t.Errorf("frame %d record = %+v, want %+v", f, m, want)
		}
		if m.Workload != "city" || m.Frame != f {
			t.Errorf("frame %d mislabelled: %+v", f, m)
		}
		if m.L1Accesses == 0 || m.Pixels == 0 {
			t.Errorf("frame %d has empty counters: %+v", f, m)
		}
	}
	if res.Reuse == nil || res.Reuse.Accesses == 0 {
		t.Fatal("reuse histogram missing")
	}
	// Every texel reference must have been observed by the probe.
	if res.Reuse.Accesses != res.Totals.L1.Accesses {
		t.Errorf("reuse accesses = %d, L1 accesses = %d",
			res.Reuse.Accesses, res.Totals.L1.Accesses)
	}
}

// TestRunWithoutTelemetry pins the defaults: no emitter, no tracer, no
// probe — nothing telemetry-shaped reaches the results.
func TestRunWithoutTelemetry(t *testing.T) {
	cfg := testCfg()
	cfg.Frames = 2
	res, err := Run(workload.Village(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reuse != nil {
		t.Error("reuse histogram present without CollectReuse")
	}
}

// TestSweepSpans checks the parallel engine records the advertised phase
// spans through an injected deterministic clock.
func TestSweepSpans(t *testing.T) {
	cfg := testCfg()
	cfg.Frames = 2
	cfg.Parallelism = 2
	tracer := telemetry.NewTracer(&telemetry.FakeClock{Step: 1})
	cfg.Tracer = tracer
	specs := telemetrySpecs()[:2]
	if _, err := RunComparison(workload.Village(), cfg, specs); err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for _, s := range tracer.Spans() {
		count[s.Name]++
	}
	want := map[string]int{
		"render": 1, "encode": 2, "shard-publish": 2,
		"replay:pull-2k": 1, "replay:l2-2m": 1, "assemble": 1,
	}
	for name, n := range want {
		if count[name] != n {
			t.Errorf("span %q recorded %d times, want %d (all: %v)",
				name, count[name], n, count)
		}
	}
}

// TestEmitPathAllocFree asserts the per-texel hot path allocates nothing,
// with the reuse probe both disabled and enabled — the ISSUE's "zero
// allocs/op added on the per-access emit path".
func TestEmitPathAllocFree(t *testing.T) {
	w := workload.Village()
	cfg := withL2(testCfg(), 2)
	build := func(collectReuse bool) *addrSink {
		c := cfg
		c.CollectReuse = collectReuse
		sim, err := NewSimulator(w, c)
		if err != nil {
			t.Fatal(err)
		}
		return sim.sink
	}
	for name, sink := range map[string]*addrSink{
		"disabled": build(false),
		"enabled":  build(true),
	} {
		u, v := 0, 0
		if n := testing.AllocsPerRun(1000, func() {
			sink.Texel(texture.ID(0), u, v, 0)
			u = (u + 7) & 63
			v = (v + 3) & 63
		}); n != 0 {
			t.Errorf("probe %s: %.1f allocs per texel, want 0", name, n)
		}
	}
}

func BenchmarkTexelEmit(b *testing.B) {
	w := workload.Village()
	for _, collectReuse := range []bool{false, true} {
		name := "reuse-off"
		if collectReuse {
			name = "reuse-on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := withL2(testCfg(), 2)
			cfg.CollectReuse = collectReuse
			sim, err := NewSimulator(w, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.sink.Texel(texture.ID(0), i&63, (i>>6)&63, 0)
			}
		})
	}
}
