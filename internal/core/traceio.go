package core

import (
	"fmt"
	"io"

	"texcache/internal/cache"
	"texcache/internal/raster"
	"texcache/internal/scene"
	"texcache/internal/stats"
	"texcache/internal/texture"
	"texcache/internal/trace"
	"texcache/internal/workload"
)

// RecordTrace renders the workload once under cfg's resolution, frame
// count and filter mode, writing the texel reference stream to w. Cache
// settings in cfg are ignored — a trace captures references, not cache
// behaviour.
func RecordTrace(wk *workload.Workload, cfg Config, w io.Writer) (frames int, err error) {
	if cfg.Frames <= 0 {
		cfg.Frames = wk.Frames
	}
	rast, err := raster.New(raster.Config{
		Width: cfg.Width, Height: cfg.Height,
		Mode:           cfg.Mode,
		ZBeforeTexture: cfg.ZBeforeTexture,
	})
	if err != nil {
		return 0, err
	}
	tw := trace.NewWriter(w)
	rast.SetSink(raster.SinkFunc(func(tid texture.ID, u, v, m int) {
		tw.Texel(uint32(tid), u, v, m)
	}))
	pipeline := scene.NewPipeline(rast)
	aspect := float64(cfg.Width) / float64(cfg.Height)
	for f := 0; f < cfg.Frames; f++ {
		tw.BeginFrame()
		pipeline.RenderFrame(wk.Scene, wk.Camera(aspect, f, cfg.Frames))
		tw.EndFrame(rast.Pixels())
	}
	if err := tw.Close(); err != nil {
		return 0, err
	}
	return cfg.Frames, nil
}

// replayHandler adapts the cache hierarchy and collector to trace.Handler.
type replayHandler struct {
	sink    *addrSink
	collect *stats.Collector
	hier    *cache.Hierarchy
	res     *Results
	prev    cache.Counters
}

func (h *replayHandler) BeginFrame() {
	if h.collect != nil {
		h.collect.BeginFrame()
	}
}

func (h *replayHandler) Texel(tid uint32, u, v, m int) {
	h.sink.Texel(texture.ID(tid), u, v, m)
}

func (h *replayHandler) EndFrame(pixels int64) {
	fr := FrameResult{Pixels: pixels}
	if h.collect != nil {
		h.collect.AddPixels(pixels)
		sf := h.collect.EndFrame()
		fr.Stats = &sf
	}
	cur := h.hier.Counters()
	fr.Counters = cur.Sub(h.prev)
	h.prev = cur
	h.res.Frames = append(h.res.Frames, fr)
}

// ReplayTrace replays a recorded reference stream through the cache
// hierarchy configured by cfg. set must be the texture registry of the
// workload that recorded the trace (texture IDs must agree). Rendering
// parameters of cfg other than Width/Height (used for the working-set
// summary's screen resolution) are ignored.
func ReplayTrace(r io.Reader, set *texture.Set, cfg Config) (*Results, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hier, sink, err := buildHierarchy(set, cfg)
	if err != nil {
		return nil, err
	}
	var collect *stats.Collector
	if len(cfg.StatLayouts) > 0 {
		collect, err = stats.NewCollector(set, cfg.StatLayouts...)
		if err != nil {
			return nil, err
		}
		sink.collect = collect
	}
	res := &Results{Workload: "trace", Config: cfg}
	h := &replayHandler{sink: sink, collect: collect, hier: hier, res: res}
	if _, err := trace.Replay(r, h); err != nil {
		return nil, fmt.Errorf("core: replay: %w", err)
	}
	res.Totals = hier.Counters()
	if collect != nil {
		sum := stats.Summarize(collect.Frames(), int64(cfg.Width)*int64(cfg.Height))
		res.Summary = &sum
	}
	return res, nil
}
