package core

import (
	"errors"
	"fmt"
	"io"

	"texcache/internal/cache"
	"texcache/internal/raster"
	"texcache/internal/scene"
	"texcache/internal/stats"
	"texcache/internal/texture"
	"texcache/internal/trace"
	"texcache/internal/workload"
)

// RecordTrace renders the workload once under cfg's resolution, frame
// count and filter mode, writing the texel reference stream to w. Cache
// settings in cfg are ignored — a trace captures references, not cache
// behaviour. The returned count is the number of frames actually written:
// when the underlying writer fails mid-run, rendering stops at the next
// frame boundary, the complete frames already encoded are flushed, and
// the count reports how many of them the partial stream holds.
func RecordTrace(wk *workload.Workload, cfg Config, w io.Writer) (frames int, err error) {
	if cfg.Frames <= 0 {
		cfg.Frames = wk.Frames
	}
	rast, err := raster.New(raster.Config{
		Width: cfg.Width, Height: cfg.Height,
		Mode:           cfg.Mode,
		ZBeforeTexture: cfg.ZBeforeTexture,
	})
	if err != nil {
		return 0, err
	}
	tw := trace.NewWriter(w)
	rast.SetSink(&raster.TraceSink{W: tw})
	pipeline := scene.NewPipeline(rast)
	aspect := float64(cfg.Width) / float64(cfg.Height)
	for f := 0; f < cfg.Frames; f++ {
		tw.BeginFrame()
		pipeline.RenderFrame(wk.Scene, wk.Camera(aspect, f, cfg.Frames))
		tw.EndFrame(rast.Pixels())
		if tw.Err() != nil {
			// The stream is already broken; rendering further frames
			// would only burn time encoding into a failed writer.
			break
		}
		frames++
	}
	if err := tw.Close(); err != nil {
		return frames, fmt.Errorf("core: trace: %w", err)
	}
	return frames, nil
}

// Replay validation errors, latched by the handler on the hot path and
// wrapped with the offending values by ReplayTrace afterwards.
var (
	errReplayTID   = errors.New("texture id out of range")
	errReplayLevel = errors.New("MIP level out of range")
	errReplayCoord = errors.New("texel coordinate outside level extent")
)

// replayHandler adapts the cache hierarchy and collector to trace.Handler.
// A trace is external input, so every reference is bounds-checked against
// the texture registry before it reaches address translation — an
// unvalidated texture id, MIP level or texel coordinate would index the
// tiling tables and the L2 page table out of range. Failures latch into
// err (ReplayErr aborts the replay at the next frame boundary) instead of
// formatting or panicking per texel.
type replayHandler struct {
	sink    *addrSink
	collect *stats.Collector
	hier    *cache.Hierarchy
	res     *Results
	prev    cache.Counters
	err     error
	// The offending reference, for the error message.
	badTID     uint32
	badU, badV int
	badM       int
}

func (h *replayHandler) BeginFrame() {
	if h.collect != nil {
		h.collect.BeginFrame()
	}
}

// Texel validates one replayed reference and feeds it to the address
// sink. It runs once per texel of the trace; the checks are a handful of
// integer compares against the canonical tiling, and failures latch a
// constant error value rather than allocating on the hot path.
//
// texlint:hotpath
func (h *replayHandler) Texel(tid uint32, u, v, m int) {
	if h.err != nil {
		return
	}
	if uint64(tid) >= uint64(len(h.sink.canon)) {
		h.fail(errReplayTID, tid, u, v, m)
		return
	}
	tex := h.sink.canon[tid].Tex
	if m < 0 || m >= len(tex.Levels) {
		h.fail(errReplayLevel, tid, u, v, m)
		return
	}
	if u < 0 || u >= tex.Levels[m].Width || v < 0 || v >= tex.Levels[m].Height {
		h.fail(errReplayCoord, tid, u, v, m)
		return
	}
	h.sink.Texel(texture.ID(tid), u, v, m)
}

// fail records the first invalid reference.
//
// texlint:hotpath
func (h *replayHandler) fail(err error, tid uint32, u, v, m int) {
	h.err = err
	h.badTID, h.badU, h.badV, h.badM = tid, u, v, m
}

// ReplayErr implements trace.FailingHandler: a validation failure aborts
// the decode at the next frame boundary.
func (h *replayHandler) ReplayErr() error { return h.err }

// describe wraps the latched validation error with the offending
// reference, off the hot path.
func (h *replayHandler) describe() error {
	return fmt.Errorf("core: replay: invalid reference <tid %d, u %d, v %d, mip %d>: %w",
		h.badTID, h.badU, h.badV, h.badM, h.err)
}

func (h *replayHandler) EndFrame(pixels int64) {
	fr := FrameResult{Pixels: pixels}
	if h.collect != nil {
		h.collect.AddPixels(pixels)
		sf := h.collect.EndFrame()
		fr.Stats = &sf
	}
	cur := h.hier.Counters()
	fr.Counters = cur.Sub(h.prev)
	h.prev = cur
	h.res.Frames = append(h.res.Frames, fr)
}

// ReplayTrace replays a recorded reference stream through the cache
// hierarchy configured by cfg. set must be the texture registry of the
// workload that recorded the trace (texture IDs must agree); a stream
// that references textures, MIP levels or coordinates outside the
// registry is rejected with a descriptive error, never a panic. A
// positive cfg.Frames bounds the replay to the stream's first cfg.Frames
// frames (zero replays the whole stream). Rendering parameters of cfg
// other than Width/Height (used for the working-set summary's screen
// resolution) are ignored.
func ReplayTrace(r io.Reader, set *texture.Set, cfg Config) (*Results, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hier, sink, err := buildHierarchy(set, cfg)
	if err != nil {
		return nil, err
	}
	var collect *stats.Collector
	if len(cfg.StatLayouts) > 0 {
		collect, err = stats.NewCollector(set, cfg.StatLayouts...)
		if err != nil {
			return nil, err
		}
		sink.collect = collect
	}
	res := &Results{Workload: "trace", Config: cfg}
	h := &replayHandler{sink: sink, collect: collect, hier: hier, res: res}
	if _, err := trace.ReplayFrames(r, h, cfg.Frames); err != nil {
		if h.err != nil {
			return nil, h.describe()
		}
		return nil, fmt.Errorf("core: replay: %w", err)
	}
	res.Totals = hier.Counters()
	if collect != nil {
		sum := stats.Summarize(collect.Frames(), int64(cfg.Width)*int64(cfg.Height))
		res.Summary = &sum
	}
	return res, nil
}
