package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"

	"texcache/internal/cache"
	"texcache/internal/raster"
	"texcache/internal/scene"
	"texcache/internal/stats"
	"texcache/internal/texture"
	"texcache/internal/trace"
	"texcache/internal/workload"
)

// RecordTrace renders the workload once under cfg's resolution, frame
// count and filter mode, writing the texel reference stream to w. Cache
// settings in cfg are ignored — a trace captures references, not cache
// behaviour. The returned count is the number of frames actually written:
// when the underlying writer fails mid-run, rendering stops at the next
// frame boundary, the complete frames already encoded are flushed, and
// the count reports how many of them the partial stream holds.
func RecordTrace(wk *workload.Workload, cfg Config, w io.Writer) (frames int, err error) {
	if cfg.Frames <= 0 {
		cfg.Frames = wk.Frames
	}
	rast, err := raster.New(raster.Config{
		Width: cfg.Width, Height: cfg.Height,
		Mode:           cfg.Mode,
		ZBeforeTexture: cfg.ZBeforeTexture,
	})
	if err != nil {
		return 0, err
	}
	tw := trace.NewWriter(w)
	rast.SetSink(&raster.TraceSink{W: tw})
	pipeline := scene.NewPipeline(rast)
	aspect := float64(cfg.Width) / float64(cfg.Height)
	for f := 0; f < cfg.Frames; f++ {
		tw.BeginFrame()
		pipeline.RenderFrame(wk.Scene, wk.Camera(aspect, f, cfg.Frames))
		tw.EndFrame(rast.Pixels())
		if tw.Err() != nil {
			// The stream is already broken; rendering further frames
			// would only burn time encoding into a failed writer.
			break
		}
		frames++
	}
	if err := tw.Close(); err != nil {
		return frames, fmt.Errorf("core: trace: %w", err)
	}
	return frames, nil
}

// Replay validation errors, latched by the handler on the hot path and
// wrapped with the offending values by ReplayTrace afterwards.
var (
	errReplayTID   = errors.New("texture id out of range")
	errReplayLevel = errors.New("MIP level out of range")
	errReplayCoord = errors.New("texel coordinate outside level extent")
)

// replayHandler adapts the cache hierarchy and collector to trace.Handler.
// A trace is external input, so every reference is bounds-checked against
// the texture registry before it reaches address translation — an
// unvalidated texture id, MIP level or texel coordinate would index the
// tiling tables and the L2 page table out of range. Failures latch into
// err (ReplayErr aborts the replay at the next frame boundary) instead of
// formatting or panicking per texel.
type replayHandler struct {
	sink    *addrSink
	collect *stats.Collector
	hier    *cache.Hierarchy
	res     *Results
	prev    cache.Counters
	err     error
	// The offending reference, for the error message.
	badTID     uint32
	badU, badV int
	badM       int
}

func (h *replayHandler) BeginFrame() {
	if h.collect != nil {
		h.collect.BeginFrame()
	}
}

// Texel validates one replayed reference and feeds it to the address
// sink. It runs once per texel of the trace; the checks are a handful of
// integer compares against the canonical tiling, and failures latch a
// constant error value rather than allocating on the hot path.
//
// texlint:hotpath
func (h *replayHandler) Texel(tid uint32, u, v, m int) {
	if h.err != nil {
		return
	}
	if uint64(tid) >= uint64(len(h.sink.canon)) {
		h.fail(errReplayTID, tid, u, v, m)
		return
	}
	tex := h.sink.canon[tid].Tex
	if m < 0 || m >= len(tex.Levels) {
		h.fail(errReplayLevel, tid, u, v, m)
		return
	}
	if u < 0 || u >= tex.Levels[m].Width || v < 0 || v >= tex.Levels[m].Height {
		h.fail(errReplayCoord, tid, u, v, m)
		return
	}
	h.sink.Texel(texture.ID(tid), u, v, m)
}

// fail records the first invalid reference.
//
// texlint:hotpath
func (h *replayHandler) fail(err error, tid uint32, u, v, m int) {
	h.err = err
	h.badTID, h.badU, h.badV, h.badM = tid, u, v, m
}

// ReplayErr implements trace.FailingHandler: a validation failure aborts
// the decode at the next frame boundary.
func (h *replayHandler) ReplayErr() error { return h.err }

// describe wraps the latched validation error with the offending
// reference, off the hot path.
func (h *replayHandler) describe() error {
	return fmt.Errorf("core: replay: invalid reference <tid %d, u %d, v %d, mip %d>: %w",
		h.badTID, h.badU, h.badV, h.badM, h.err)
}

func (h *replayHandler) EndFrame(pixels int64) {
	fr := FrameResult{Pixels: pixels}
	if h.collect != nil {
		h.collect.AddPixels(pixels)
		sf := h.collect.EndFrame()
		fr.Stats = &sf
	}
	cur := h.hier.Counters()
	fr.Counters = cur.Sub(h.prev)
	h.prev = cur
	h.res.Frames = append(h.res.Frames, fr)
}

// ReplayTrace replays a recorded reference stream through the cache
// hierarchy configured by cfg. set must be the texture registry of the
// workload that recorded the trace (texture IDs must agree); a stream
// that references textures, MIP levels or coordinates outside the
// registry is rejected with a descriptive error, never a panic. A
// positive cfg.Frames bounds the replay to the stream's first cfg.Frames
// frames (zero replays the whole stream). Rendering parameters of cfg
// other than Width/Height (used for the working-set summary's screen
// resolution) are ignored.
func ReplayTrace(r io.Reader, set *texture.Set, cfg Config) (*Results, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Frame-range-parallel replay needs the whole stream in memory (the
	// frame index gives each worker its byte window); the cross-frame
	// working-set collector is inherently order-serial, so StatLayouts
	// keeps the serial path regardless of ReplayWorkers.
	if cfg.ReplayWorkers > 1 && len(cfg.StatLayouts) == 0 {
		data, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("core: replay: %w", err)
		}
		index, err := trace.IndexFrames(data)
		if err != nil {
			return nil, fmt.Errorf("core: replay: %w", err)
		}
		nframes := len(index)
		if cfg.Frames > 0 && cfg.Frames < nframes {
			nframes = cfg.Frames
		}
		if ranges := replayRangeCount(cfg.ReplayWorkers, nframes); ranges > 1 {
			return replayTraceRanged(data, index, nframes, ranges, set, cfg)
		}
		r = bytes.NewReader(data)
	}
	hier, sink, err := buildHierarchy(set, cfg)
	if err != nil {
		return nil, err
	}
	var collect *stats.Collector
	if len(cfg.StatLayouts) > 0 {
		collect, err = stats.NewCollector(set, cfg.StatLayouts...)
		if err != nil {
			return nil, err
		}
		sink.collect = collect
	}
	res := &Results{Workload: "trace", Config: cfg}
	h := &replayHandler{sink: sink, collect: collect, hier: hier, res: res}
	if _, err := trace.ReplayFrames(r, h, cfg.Frames); err != nil {
		if h.err != nil {
			return nil, h.describe()
		}
		return nil, fmt.Errorf("core: replay: %w", err)
	}
	res.Totals = hier.Counters()
	if collect != nil {
		sum := stats.Summarize(collect.Frames(), int64(cfg.Width)*int64(cfg.Height))
		res.Summary = &sum
	}
	return res, nil
}

// replayTraceRanged is the frame-range-parallel engine behind ReplayTrace
// for ReplayWorkers > 1: the stream's first nframes frames are
// partitioned into contiguous ranges, each replayed by a rangeReplayer
// (see rangereplay.go) on its own clone of the configured hierarchy and
// stitched serial-equivalent by checkpoints. Each worker re-validates its
// own references against the texture registry, exactly as the serial
// handler does; the earliest range's error wins, which is the error a
// serial replay of the same stream reports first. The assembled Results
// are identical to the serial path's at every range count.
func replayTraceRanged(data []byte, index []trace.FramePos, nframes, ranges int, set *texture.Set, cfg Config) (*Results, error) {
	// All layout preparation happens here, before any worker goroutine
	// reads the registry (MustPrepare memoizes into maps).
	set.MustPrepare(texture.CanonicalL1())
	spec := CacheSpec{Name: "trace", L1Bytes: cfg.L1Bytes, L1Ways: cfg.L1Ways, L2: cfg.L2, TLBEntries: cfg.TLBEntries}
	res := &Results{Workload: "trace", Config: cfg, Frames: make([]FrameResult, nframes)}
	frs := specGroups(nframes, ranges)
	workers := make([]*rangeReplayer, 0, len(frs))
	var prev *rangeLink
	for k, fr := range frs {
		sink, err := buildMultiSink(set, []CacheSpec{spec})
		if err != nil {
			return nil, err
		}
		g := &rangeReplayer{
			sink: sink,
			// The serial path emits no canonical textrace events, so the
			// ranged path emits only wall-only range tracks (no replayed
			// counter: sweepSpecState.replayed stays nil and no-ops).
			track: cfg.Trace.Track("replay range " + strconv.Itoa(k)),
			specs: []*sweepSpecState{{hier: sink.specs[0].hier, res: res}},
			start: fr[0], end: fr[1], frame: fr[0],
			last:  k == len(frs)-1,
			in:    prev,
			live:  k == 0,
			check: true,
		}
		if k < len(frs)-1 {
			g.out = newRangeLink()
		}
		prev = g.out
		workers = append(workers, g)
	}
	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for wi, g := range workers {
		wg.Add(1)
		go func(wi int, g *rangeReplayer) {
			defer wg.Done()
			errs[wi] = g.consumeBytes(data, index)
		}(wi, g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}
