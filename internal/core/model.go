// Bridge between the comparison engines and the analytic reuse model:
// converting sweep specs into model specs, attaching per-spec
// predictions (and, where exact results exist, model error) to a
// Comparison, and exporting the report in manifest form.
package core

import (
	"texcache/internal/model/reusemodel"
	"texcache/internal/telemetry"
)

// SpecModel is one spec's entry in a comparison's analytic-model report
// (Comparison.Model, parallel to Specs).
type SpecModel struct {
	Spec string
	// Modeled marks specs the reuse model reaches; Unreachable carries
	// the typed refusal's message for the rest.
	Modeled     bool
	Unreachable string
	// Pred is the model's prediction when Modeled.
	Pred *reusemodel.Prediction
	// HasExact marks specs that also have exact (replayed) results; Err
	// then holds the model-vs-exact comparison on the headline rates.
	HasExact bool
	Err      reusemodel.SpecError
}

// modelSpec projects a sweep spec onto the reuse model's input.
func modelSpec(s CacheSpec) reusemodel.Spec {
	ms := reusemodel.Spec{Name: s.Name, L1Bytes: s.L1Bytes, L1Ways: s.L1Ways}
	if s.L2 != nil {
		ms.L2Bytes = s.L2.SizeBytes
		ms.TileEdge = s.L2.Layout.L2Size
		ms.Policy = s.L2.Policy
		ms.NoSectorMapping = s.L2.NoSectorMapping
	}
	return ms
}

// attachModel fills cmp.Model from the comparison's reuse profile: a
// prediction (and error versus any exact results present) for every
// model-reachable spec, the refusal reason for the rest. A comparison
// without a profile gets no model report.
func attachModel(cmp *Comparison, specs []CacheSpec) {
	if cmp.ReuseProfile == nil {
		return
	}
	cmp.Model = make([]SpecModel, len(specs))
	for i, spec := range specs {
		sm := &cmp.Model[i]
		sm.Spec = spec.Name
		pred, err := reusemodel.Predict(cmp.ReuseProfile, modelSpec(spec))
		if err != nil {
			sm.Unreachable = err.Error()
			continue
		}
		sm.Modeled = true
		p := pred
		sm.Pred = &p
		if res := cmp.Results[i]; res != nil && len(res.Frames) > 0 {
			sm.HasExact = true
			sm.Err = reusemodel.Compare(pred, res.Totals)
		}
	}
}

// ModelErrors exports the model report in the manifest's form; nil when
// the comparison carries no report.
func (cmp *Comparison) ModelErrors() []telemetry.SpecModelError {
	if len(cmp.Model) == 0 {
		return nil
	}
	out := make([]telemetry.SpecModelError, len(cmp.Model))
	for i, m := range cmp.Model {
		out[i] = telemetry.SpecModelError{
			Spec:        m.Spec,
			Modeled:     m.Modeled,
			Unreachable: m.Unreachable,
			HasExact:    m.HasExact,
		}
		if m.HasExact {
			out[i].L1HitAbsErr = m.Err.L1AbsErr
			out[i].L2FullHitAbsErr = m.Err.L2AbsErr
		}
	}
	return out
}
