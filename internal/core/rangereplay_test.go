package core

import (
	"bytes"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"texcache/internal/cache"
	"texcache/internal/texture"
	"texcache/internal/trace"
	"texcache/internal/workload"
)

// normalizeEngineKnobs zeroes the engine-selection fields recorded in a
// comparison's configs so runs that differ only in how the work was
// scheduled (Parallelism, RenderWorkers, ReplayWorkers) DeepEqual each
// other — those knobs must never change any simulated quantity.
func normalizeEngineKnobs(cmp *Comparison) {
	cmp.Render.Parallelism = 0
	cmp.Render.RenderWorkers = 0
	cmp.Render.ReplayWorkers = 0
	for _, res := range cmp.Results {
		res.Config.Parallelism = 0
		res.Config.RenderWorkers = 0
		res.Config.ReplayWorkers = 0
	}
}

// TestIntraSpecReplayMatchesSerial is the tentpole identity: a
// single-spec comparison replayed as 1, 2, 3, 4 and GOMAXPROCS frame
// ranges must be DeepEqual — counters, per-frame deltas, TLB statistics,
// working-set StatLayouts and the reuse histogram — to the serial
// reference fan-out, over bench-scale Village and City.
func TestIntraSpecReplayMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		w      *workload.Workload
		frames int
	}{
		{workload.Village(), 12},
		{workload.City(), 8},
	} {
		t.Run(tc.w.Name, func(t *testing.T) {
			render := testCfg()
			render.Frames = tc.frames
			render.StatLayouts = []texture.TileLayout{{L2Size: 16, L1Size: 4}}
			render.CollectReuse = true
			specs := []CacheSpec{l2spec("l2-2m", 2*1024, 2, 16)}

			serial, err := RunComparison(tc.w, render, specs)
			if err != nil {
				t.Fatal(err)
			}
			normalizeEngineKnobs(serial)
			for _, ranges := range []int{1, 2, 3, 4, runtime.GOMAXPROCS(0)} {
				r2 := render
				r2.ReplayWorkers = ranges
				got, err := RunComparison(tc.w, r2, specs)
				if err != nil {
					t.Fatalf("ranges=%d: %v", ranges, err)
				}
				normalizeEngineKnobs(got)
				if !reflect.DeepEqual(got, serial) {
					t.Errorf("ranges=%d: comparison diverged from serial", ranges)
				}
			}
		})
	}
}

// TestIntraSpecReplayComposesWithSpecGroups runs both parallel axes at
// once — spec groups x frame ranges — against the serial reference.
func TestIntraSpecReplayComposesWithSpecGroups(t *testing.T) {
	render := testCfg()
	render.Frames = 8
	specs := []CacheSpec{
		{Name: "pull-2k", L1Bytes: 2 * 1024},
		l2spec("l2-2m", 2*1024, 2, 16),
		l2spec("l2-4m", 16*1024, 4, 8),
	}
	serial, err := RunComparison(workload.Village(), render, specs)
	if err != nil {
		t.Fatal(err)
	}
	normalizeEngineKnobs(serial)
	r2 := render
	r2.Parallelism = 2
	r2.ReplayWorkers = 3
	got, err := RunComparison(workload.Village(), r2, specs)
	if err != nil {
		t.Fatal(err)
	}
	normalizeEngineKnobs(got)
	if !reflect.DeepEqual(got, serial) {
		t.Error("grouped+ranged comparison diverged from serial")
	}
}

// TestIntraSpecReplayFastFallback covers the -fast engine's exact
// fallback with ranged replay: a random-replacement spec is outside the
// analytic model's reach, so it replays exactly — here as 3 frame ranges.
func TestIntraSpecReplayFastFallback(t *testing.T) {
	render := testCfg()
	render.Frames = 6
	spec := l2spec("l2-rand", 2*1024, 2, 16)
	spec.L2.Policy = cache.Random

	serial, err := RunComparison(workload.Village(), render, []CacheSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	r2 := render
	r2.FastSweep = true
	r2.ReplayWorkers = 3
	got, err := RunComparison(workload.Village(), r2, []CacheSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if got.Results[0].Totals != serial.Results[0].Totals {
		t.Errorf("fast-fallback ranged totals diverged:\nranged %+v\nserial %+v",
			got.Results[0].Totals, serial.Results[0].Totals)
	}
}

// TestReplayTraceRangedMatchesSerial pins the ranged ReplayTrace path:
// the same recorded stream replayed serially and at several range counts
// must produce DeepEqual Results, including under a frame limit.
func TestReplayTraceRangedMatchesSerial(t *testing.T) {
	cfg := withL2(testCfg(), 2)
	cfg.Frames = 8
	set := workload.Village().Scene.Textures
	var buf bytes.Buffer
	if _, err := RecordTrace(workload.Village(), cfg, &buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	serial, err := ReplayTrace(bytes.NewReader(data), set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 4, 8} {
		r2 := cfg
		r2.ReplayWorkers = workers
		got, err := ReplayTrace(bytes.NewReader(data), set, r2)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got.Config.ReplayWorkers = 0
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d: ranged replay diverged from serial", workers)
		}
	}

	// A frame limit bounds the ranged replay exactly like the serial one.
	lim := cfg
	lim.Frames = 3
	wantLim, err := ReplayTrace(bytes.NewReader(data), set, lim)
	if err != nil {
		t.Fatal(err)
	}
	lim.ReplayWorkers = 4
	gotLim, err := ReplayTrace(bytes.NewReader(data), set, lim)
	if err != nil {
		t.Fatal(err)
	}
	gotLim.Config.ReplayWorkers = 0
	if !reflect.DeepEqual(gotLim, wantLim) {
		t.Error("frame-limited ranged replay diverged from serial")
	}
}

// TestReplayTraceRangedRejectsHostileStreams: the ranged path keeps the
// serial path's per-reference validation — a multi-frame stream with an
// out-of-range reference in a later range is rejected with the same
// descriptive error, never a panic, at any worker count.
func TestReplayTraceRangedRejectsHostileStreams(t *testing.T) {
	set := workload.Village().Scene.Textures
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	for f := 0; f < 4; f++ {
		w.BeginFrame()
		w.Texel(0, 0, 0, 0)
		if f == 2 {
			w.Texel(uint32(set.Len()), 0, 0, 0)
		}
		w.EndFrame(1)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	cfg := withL2(testCfg(), 2)
	cfg.ReplayWorkers = 4
	_, err := ReplayTrace(bytes.NewReader(buf.Bytes()), set, cfg)
	if err == nil {
		t.Fatal("hostile stream accepted by ranged replay")
	}
	if !strings.Contains(err.Error(), "texture id out of range") ||
		!strings.Contains(err.Error(), "invalid reference") {
		t.Errorf("err = %q, want the offending reference described", err)
	}

	// A structurally truncated stream is rejected by the frame index.
	good := buf.Bytes()[:buf.Len()-2]
	if _, err := ReplayTrace(bytes.NewReader(good), set, cfg); err == nil {
		t.Error("truncated stream accepted by ranged replay")
	}
}

// TestReplayRangeCount pins the knob resolution.
func TestReplayRangeCount(t *testing.T) {
	cases := []struct{ workers, frames, want int }{
		{0, 10, 1}, {1, 10, 1}, {2, 10, 2}, {4, 10, 4},
		{16, 10, 10}, {4, 1, 1}, {4, 0, 1}, {2, 2, 2},
	}
	for _, c := range cases {
		if got := replayRangeCount(c.workers, c.frames); got != c.want {
			t.Errorf("replayRangeCount(%d, %d) = %d, want %d", c.workers, c.frames, got, c.want)
		}
	}
}
