// Render-once / replay-many parallel sweep engine. The paper's
// methodology is trace-driven: one rendered reference stream is replayed
// through many cache configurations (§3.3). The serial fan-out in
// compare.go interleaves rendering and all cache simulations in a single
// goroutine, so an N-spec sweep costs render + N×sim on one core. This
// engine instead renders the workload once into an in-memory chunked
// trace (the internal/trace varint encoding, one independently decodable
// stream per frame, stored in pooled fixed-size chunks — see chunk.go)
// and replays it through the specs concurrently: the specs are
// partitioned into one group per worker, each group decodes the stream
// once per frame through a trace.ShardDecoder and fans every texel out
// to its hierarchies. Workers consume chunks as the render pass
// publishes them, so replay overlaps rendering, and the last consumer
// to release a chunk recycles it — steady-state memory is the pool
// budget, not the trace length. Results are assembled in spec order and
// are byte-identical to the serial path: the trace encoding is
// lossless, every hierarchy sees the identical reference stream, and
// per-frame counter snapshots follow the same arithmetic.
package core

import (
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"texcache/internal/cache"
	"texcache/internal/raster"
	"texcache/internal/scene"
	"texcache/internal/stats"
	"texcache/internal/telemetry"
	"texcache/internal/texture"
	"texcache/internal/trace"
	"texcache/internal/workload"
)

// sweepWorkers resolves the Parallelism knob to an effective worker
// count: 0 means GOMAXPROCS, and a single-spec comparison always takes
// the serial path (the trace round trip buys nothing there).
func sweepWorkers(parallelism, nspecs int) int {
	if nspecs <= 1 {
		return 1
	}
	if parallelism == 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > nspecs {
		parallelism = nspecs
	}
	return parallelism
}

// renderedTrace is the texel reference stream sharded by frame, plus
// everything else the assembled Comparison needs from the render pass.
// Each frame is a complete stream (header plus one whole frame) held as
// a chunkSeq, so it replays independently and the per-frame delta coder
// restarts at every frame boundary. Consumers (replay groups, the
// farm's stats replay) are registered up front: every published chunk
// starts with one reference per consumer and returns to the pool when
// the last one releases it. With zero consumers the trace is retained
// whole — the mode tests use to compare shard bytes directly. pipeline,
// pixels and stats are touched only by the render pass and, after all
// workers are joined, the coordinator.
type renderedTrace struct {
	pool      *chunkPool
	frames    []*chunkSeq
	consumers int
	// pos[ci] is the frame consumer ci is currently draining; its
	// minimum is the consumption floor that unblocks that frame's
	// producer at the pool budget (math.MaxInt64 once detached).
	pos []atomic.Int64

	pipeline []scene.FrameStats
	pixels   []int64
	stats    []stats.Frame // per frame, when collecting

	// textrace wiring (all nil-safe no-ops when trc is nil): the
	// coordinator track carries protocol instants and the assemble span;
	// rendered counts finished frames, traceBytes the encoded stream
	// volume, qdepth the render-ahead distance of the slowest consumer.
	trc        *telemetry.Trace
	coord      *telemetry.Track
	rendered   *telemetry.Counter
	traceBytes *telemetry.Counter
	qdepth     *telemetry.Counter
}

func newRenderedTrace(frames, consumers int, trc *telemetry.Trace) *renderedTrace {
	rt := &renderedTrace{
		pool:      newChunkPool(),
		frames:    make([]*chunkSeq, frames),
		consumers: consumers,
		pos:       make([]atomic.Int64, consumers),
		pipeline:  make([]scene.FrameStats, frames),
		pixels:    make([]int64, frames),

		trc:        trc,
		coord:      trc.Track("coordinator"),
		rendered:   trc.Counter("frames-rendered"),
		traceBytes: trc.Counter("trace-bytes"),
		qdepth:     trc.Counter("replay-queue-depth"),
	}
	rt.pool.inflight = trc.Counter("chunk-bytes-inflight")
	for f := range rt.frames {
		rt.frames[f] = newChunkSeq()
	}
	return rt
}

// floor returns the lowest frame any consumer is still draining;
// math.MaxInt64 with no (or only detached) consumers.
func (rt *renderedTrace) floor() int64 {
	lo := int64(math.MaxInt64)
	for i := range rt.pos {
		if p := rt.pos[i].Load(); p < lo {
			lo = p
		}
	}
	return lo
}

// acquire hands the producer of frame f an empty chunk. At the pool
// budget it blocks until a consumer releases one — unless f is at (or
// past) the consumption floor: consumers are waiting on this very
// frame, so blocking would deadlock and the pool grows instead.
func (rt *renderedTrace) acquire(f int) *chunk {
	return rt.pool.acquire(func() bool { return rt.floor() >= int64(f) })
}

// advance records that consumer ci is now draining frame f and
// re-evaluates blocked producers, whose frame may have become the floor.
func (rt *renderedTrace) advance(ci, f int) {
	rt.pos[ci].Store(int64(f))
	if rt.qdepth != nil {
		// How far rendering runs ahead of this consumer — a wall-only
		// gauge (scheduling-dependent by nature).
		rt.qdepth.Set(rt.rendered.Value() - int64(f))
		rt.qdepth.Gauge(int64(f))
	}
	rt.pool.wake()
}

// detach removes consumer ci from the floor so producers stop waiting
// on it; deferred by every consumer so no exit path strands a blocked
// producer.
func (rt *renderedTrace) detach(ci int) {
	rt.pos[ci].Store(math.MaxInt64)
	rt.pool.wake()
}

// release drops one consumer reference; the last reference recycles the
// chunk.
func (rt *renderedTrace) release(c *chunk) {
	if c.refs.Add(-1) == 0 {
		rt.pool.put(c)
	}
}

// abort marks every frame from f on as dead so that blocked consumers
// wake up and drain instead of waiting forever.
func (rt *renderedTrace) abort(from int) {
	rt.coord.Instant("", "chunk-abort", int64(from), "")
	for f := from; f < len(rt.frames); f++ {
		rt.frames[f].abort()
	}
}

// wasAborted reports whether any abort hit the trace (abort always
// covers the trailing frame).
func (rt *renderedTrace) wasAborted() bool {
	n := len(rt.frames)
	return n > 0 && rt.frames[n-1].wasAborted()
}

// consume drives handler h through every frame's chunks in order as
// consumer ci, releasing each chunk as soon as it is decoded
// (ShardDecoder carries straddling operations internally, so a released
// chunk is never referenced again). Returns nil when the render
// aborted: the producer owns that error.
func (rt *renderedTrace) consume(ci int, h trace.Handler) error {
	defer rt.detach(ci)
	var dec trace.ShardDecoder
	for f, seq := range rt.frames {
		rt.advance(ci, f)
		dec.Reset()
		for i := 0; ; i++ {
			c, ok := seq.next(i)
			if !ok {
				break
			}
			err := dec.Feed(c.data, h)
			rt.release(c)
			if err != nil {
				return fmt.Errorf("core: sweep replay: %w", err)
			}
		}
		if seq.wasAborted() {
			return nil
		}
		if _, err := dec.Finish(h); err != nil {
			return fmt.Errorf("core: sweep replay: %w", err)
		}
	}
	return nil
}

// render renders every frame of the workload under render's resolution,
// frame count and filter, encoding the reference stream into pooled
// chunks — each published to the replay workers as soon as it fills —
// and feeding the optional working-set collector and reuse probe. When
// render.Tracer is set, the pass records a "render" span with nested
// per-frame "encode" and "shard-publish" spans.
func (rt *renderedTrace) render(w *workload.Workload, render Config, collect *stats.Collector, reuse *reuseProbe) error {
	sp := render.Tracer.Start("render")
	defer sp.End()
	tk := rt.trc.Track("render")
	rast, err := raster.New(raster.Config{
		Width: render.Width, Height: render.Height,
		Mode:           render.Mode,
		ZBeforeTexture: render.ZBeforeTexture,
	})
	if err != nil {
		rt.abort(0)
		return err
	}
	// With no collectors tapping the stream, references go straight to
	// the trace writer through the rasterizer's devirtualized TraceSink
	// fast path; only collector runs pay the interface-dispatch tee.
	var tw *trace.Writer
	ts := &raster.TraceSink{}
	if collect == nil && reuse == nil {
		rast.SetSink(ts)
	} else {
		rast.SetSink(raster.SinkFunc(func(tid texture.ID, u, v, m int) {
			tw.Texel(uint32(tid), u, v, m)
			if collect != nil {
				collect.Texel(tid, u, v, m)
			}
			if reuse != nil {
				reuse.Texel(tid, u, v, m)
			}
		}))
	}
	pipeline := scene.NewPipeline(rast)
	aspect := float64(render.Width) / float64(render.Height)
	if collect != nil {
		rt.stats = make([]stats.Frame, render.Frames)
	}

	for f := 0; f < render.Frames; f++ {
		fr := tk.Begin("render", "frame", int64(f))
		enc := render.Tracer.Start("encode")
		cw := &chunkWriter{rt: rt, seq: rt.frames[f], f: f}
		tw = trace.NewWriter(cw)
		ts.W = tw
		tw.BeginFrame()
		if collect != nil {
			collect.BeginFrame()
		}
		pst := pipeline.RenderFrame(w.Scene, w.Camera(aspect, f, render.Frames))
		tw.EndFrame(rast.Pixels())
		if err := tw.Close(); err != nil {
			enc.End()
			fr.End()
			cw.abandon()
			rt.abort(f)
			return fmt.Errorf("core: sweep: encoding frame %d: %w", f, err)
		}
		enc.End()
		pub := render.Tracer.Start("shard-publish")
		rt.pipeline[f] = pst
		rt.pixels[f] = rast.Pixels()
		if collect != nil {
			collect.AddPixels(rast.Pixels())
			rt.stats[f] = collect.EndFrame()
		}
		cw.finish()
		pub.End()
		tk.Instant("", "shard-publish", int64(f), "")
		rt.rendered.Add(1)
		rt.rendered.Gauge(int64(f))
		rt.traceBytes.Gauge(int64(f))
		fr.End()
	}
	return nil
}

// sweepSpecState is one spec's replay state within a group: its
// hierarchy (owned by the group's multiSink), its result slot, and the
// previous counter snapshot the per-frame deltas subtract from.
// replayed is the spec's textrace progress counter ("replayed/<name>"),
// sampled once per replayed frame with the deterministic frame count —
// the canonical-regime progress timeline every engine reproduces.
type sweepSpecState struct {
	hier     *cache.Hierarchy
	res      *Results
	prev     cache.Counters
	replayed *telemetry.Counter
}

// sweepGroup fans one decoded reference stream out to a worker's share
// of the specs through a shared-translation multiSink — each distinct
// L2 layout in the group is translated once per texel, exactly as the
// serial engine does — reproducing the FrameResults the serial fan-out
// produces for each spec. Unlike replayHandler (which guards
// ReplayTrace against hostile external streams), it performs no
// per-texel validation: sweep chunks are encoded in-process from
// rasterizer output, whose coordinates are valid by construction.
type sweepGroup struct {
	sink  *multiSink
	specs []*sweepSpecState
	// track is the group's physical textrace timeline ("replay group G");
	// frame counts replayed frames and open is the current frame span.
	track *telemetry.Track
	frame int
	open  telemetry.Region
}

func (g *sweepGroup) BeginFrame() {
	// Wall-only: the serial engine replays nothing, so replay frame
	// spans carry no logical identity.
	g.open = g.track.Begin("", "frame", int64(g.frame))
}

// Texel forwards one trusted reference to the group's fan-out sink.
//
// texlint:hotpath
func (g *sweepGroup) Texel(tid uint32, u, v, m int) {
	g.sink.Texel(texture.ID(tid), u, v, m)
}

func (g *sweepGroup) EndFrame(pixels int64) {
	for _, s := range g.specs {
		cur := s.hier.Counters()
		s.res.Frames = append(s.res.Frames, FrameResult{
			Pixels:   pixels,
			Counters: cur.Sub(s.prev),
		})
		s.prev = cur
		// Deterministic by construction: a group replays frames in
		// order, so frame g.frame completing means g.frame+1 frames of
		// this spec are done, whatever the scheduling.
		s.replayed.Sample(int64(g.frame), int64(g.frame)+1)
	}
	g.open.End()
	g.frame++
}

// replayGroup drives one worker's spec group through the whole rendered
// trace: the chunk stream is decoded once per frame and every texel
// fans out to the group's hierarchies, so an N-spec sweep on P workers
// costs P decodes instead of N. Each worker owns its hierarchies and
// sinks; nothing here is shared with other workers except the released
// chunks' refcounts and the mutex-protected tracer, which records one
// "replay:<specs>" span per worker.
func replayGroup(rt *renderedTrace, ci int, g *sweepGroup, tracer *telemetry.Tracer, span string) error {
	sp := tracer.Start("replay:" + span)
	defer sp.End()
	rg := g.track.Begin("", "replay", int64(ci))
	defer rg.End()
	if err := rt.consume(ci, g); err != nil {
		return err
	}
	if rt.wasAborted() {
		// Render aborted; the coordinator reports its error.
		return nil
	}
	for _, s := range g.specs {
		s.res.Totals = s.hier.Counters()
	}
	return nil
}

// replayRange drives one frame-range worker of a spec group through the
// rendered trace (see rangereplay.go for the checkpoint pipeline). Each
// worker owns clones of its group's hierarchies; the only cross-worker
// state is the released chunks' refcounts, the checkpoint links, and the
// mutex-protected tracer.
func replayRange(rt *renderedTrace, ci int, g *rangeReplayer, tracer *telemetry.Tracer, span string) error {
	sp := tracer.Start("replay:" + span)
	defer sp.End()
	rg := g.track.Begin("", "replay", int64(ci))
	defer rg.End()
	return g.consumeRange(rt, ci)
}

// specGroups partitions n specs into w contiguous, balanced index
// ranges, one per replay worker.
func specGroups(n, w int) [][2]int {
	if w > n {
		w = n
	}
	out := make([][2]int, 0, w)
	for i := 0; i < w; i++ {
		out = append(out, [2]int{i * n / w, (i + 1) * n / w})
	}
	return out
}

// runComparisonParallel is the render-once / replay-many engine behind
// RunComparison for Parallelism != 1. The hierarchies are built serially
// up front (so spec errors surface before the expensive render, and so
// every texture.Set layout is prepared before any worker goroutine reads
// the registry), then the specs are partitioned into par groups with one
// replay goroutine each, consuming trace chunks as the render pass
// publishes them; every group writes only its own specs' result and
// error slots. Assembly in spec order makes the output deterministic and
// byte-identical to runComparisonSerial.
func runComparisonParallel(w *workload.Workload, render Config, specs []CacheSpec, par int, probe *reuseProbe) (*Comparison, error) {
	set := w.Scene.Textures
	set.MustPrepare(texture.CanonicalL1())

	// Build every group's hierarchies and shared-translation sink before
	// spawning anything: buildMultiSink prepares tile layouts in the
	// texture registry, which memoizes into maps that must not be
	// written concurrently.
	ranges := replayRangeCount(render.ReplayWorkers, render.Frames)
	cmp := &Comparison{
		Workload: w.Name,
		Render:   render,
		Specs:    make([]string, 0, len(specs)),
		Results:  make([]*Results, 0, len(specs)),
	}
	for _, spec := range specs {
		cmp.Specs = append(cmp.Specs, spec.Name)
		res := &Results{Workload: w.Name, Config: specConfig(render, spec)}
		if ranges > 1 {
			// Ranged replay fills frames by index, each frame owned by
			// exactly one range worker; sized to the frame count up front.
			res.Frames = make([]FrameResult, render.Frames, render.Frames)
		} else {
			res.Frames = make([]FrameResult, 0, render.Frames)
		}
		cmp.Results = append(cmp.Results, res)
	}
	groups := specGroups(len(specs), par)
	// With ranges > 1 every group is further sharded into that many
	// frame-range workers chained by checkpoints (rangereplay.go); the
	// flat worker list is group-major, range-minor, matching the error
	// slots and consumer indices below.
	frs := specGroups(render.Frames, ranges)
	sweeps := make([]*sweepGroup, 0, len(groups))
	rangedWorkers := make([]*rangeReplayer, 0, len(groups)*len(frs))
	for gi, gr := range groups {
		if ranges > 1 {
			var prev *rangeLink
			for k, fr := range frs {
				ms, err := buildMultiSink(set, specs[gr[0]:gr[1]])
				if err != nil {
					return nil, err
				}
				g := &rangeReplayer{
					sink:  ms,
					specs: make([]*sweepSpecState, 0, gr[1]-gr[0]),
					track: render.Trace.Track("replay range " + strconv.Itoa(gi) + "." + strconv.Itoa(k)),
					start: fr[0], end: fr[1], frame: fr[0],
					last: k == len(frs)-1,
					in:   prev,
					live: k == 0,
				}
				if k < len(frs)-1 {
					g.out = newRangeLink()
				}
				prev = g.out
				for i := gr[0]; i < gr[1]; i++ {
					g.specs = append(g.specs, &sweepSpecState{
						hier:     ms.specs[i-gr[0]].hier,
						res:      cmp.Results[i],
						replayed: render.Trace.Counter("replayed/" + specs[i].Name),
					})
				}
				rangedWorkers = append(rangedWorkers, g)
			}
			continue
		}
		ms, err := buildMultiSink(set, specs[gr[0]:gr[1]])
		if err != nil {
			return nil, err
		}
		g := &sweepGroup{
			sink:  ms,
			specs: make([]*sweepSpecState, 0, gr[1]-gr[0]),
			track: render.Trace.Track("replay group " + strconv.Itoa(gi)),
		}
		for i := gr[0]; i < gr[1]; i++ {
			g.specs = append(g.specs, &sweepSpecState{
				hier:     ms.specs[i-gr[0]].hier,
				res:      cmp.Results[i],
				replayed: render.Trace.Counter("replayed/" + specs[i].Name),
			})
		}
		sweeps = append(sweeps, g)
	}

	var collect *stats.Collector
	if len(render.StatLayouts) > 0 {
		var err error
		collect, err = stats.NewCollector(set, render.StatLayouts...)
		if err != nil {
			return nil, err
		}
	}
	reuse := probe
	if reuse == nil && render.CollectReuse {
		reuse = newReuseProbe(set)
	}

	// Consumers of the chunk stream: one per replay worker (group × range),
	// plus the coordinator's frame-ordered stats replay when the render
	// farm is active (the serial render pass feeds the collectors inline).
	farmWorkers := renderWorkerCount(render.RenderWorkers, render.Frames)
	statsCi := -1
	nconsumers := len(groups) * ranges
	if farmWorkers > 1 && (collect != nil || reuse != nil) {
		statsCi = nconsumers
		nconsumers++
	}
	rt := newRenderedTrace(render.Frames, nconsumers, render.Trace)

	errs := make([]error, len(groups)*ranges)
	var wg sync.WaitGroup
	if ranges > 1 {
		for wi, g := range rangedWorkers {
			gi := wi / ranges
			gr := groups[gi]
			span := strings.Join(cmp.Specs[gr[0]:gr[1]], "+") + "#" + strconv.Itoa(wi%ranges)
			wg.Add(1)
			go func(wi int, g *rangeReplayer, span string) {
				defer wg.Done()
				errs[wi] = replayRange(rt, wi, g, render.Tracer, span)
			}(wi, g, span)
		}
	} else {
		for gi, gr := range groups {
			wg.Add(1)
			go func(gi int, g *sweepGroup, span string) {
				defer wg.Done()
				errs[gi] = replayGroup(rt, gi, g, render.Tracer, span)
			}(gi, sweeps[gi], strings.Join(cmp.Specs[gr[0]:gr[1]], "+"))
		}
	}

	// The render pass: RenderWorkers selects between the serial oracle
	// and the frame-parallel farm (renderfarm.go); both publish chunks
	// through the same chunkSeq contract and produce byte-identical
	// streams, so the replay pool above is oblivious to the choice.
	var renderErr error
	if farmWorkers > 1 {
		renderErr = rt.renderFarm(w, render, collect, reuse, farmWorkers, statsCi)
	} else {
		renderErr = rt.render(w, render, collect, reuse)
	}
	wg.Wait()
	if renderErr != nil {
		return nil, renderErr
	}
	for wi, err := range errs {
		if err != nil {
			// Worker order is group-major, range-minor, so the first error
			// is the earliest in group order, then stream order within it.
			gr := groups[wi/ranges]
			return nil, fmt.Errorf("core: specs %q: %w",
				strings.Join(cmp.Specs[gr[0]:gr[1]], "+"), err)
		}
	}

	// Workers account pixels and counters from the stream; the geometry
	// pipeline statistics come from the render pass.
	asm := render.Tracer.Start("assemble")
	defer asm.End()
	asm2 := rt.coord.Begin("", "assemble", 0)
	defer asm2.End()
	for _, res := range cmp.Results {
		for f := range res.Frames {
			res.Frames[f].Pipeline = rt.pipeline[f]
		}
	}
	cmp.FramePixels = append(cmp.FramePixels, rt.pixels...)
	if collect != nil {
		// As in the serial path, the working-set statistics ride on the
		// first spec's results.
		for f := range rt.stats {
			cmp.Results[0].Frames[f].Stats = &rt.stats[f]
		}
		sum := stats.Summarize(collect.Frames(),
			int64(render.Width)*int64(render.Height))
		cmp.Results[0].Summary = &sum
	}
	cmp.Reuse = reuse.histogram()
	cmp.ReuseProfile = reuse.profile()
	attachModel(cmp, specs)
	// The workers each filled their own Results slot — those are the
	// per-worker metric buffers. Replaying them frame-major, spec-minor
	// reproduces the serial engine's streamed order byte for byte.
	EmitComparisonMetrics(render.Metrics, cmp)
	return cmp, nil
}
