// Render-once / replay-many parallel sweep engine. The paper's
// methodology is trace-driven: one rendered reference stream is replayed
// through many cache configurations (§3.3). The serial fan-out in
// compare.go interleaves rendering and all cache simulations in a single
// goroutine, so an N-spec sweep costs render + N×sim on one core. This
// engine instead renders the workload once into an in-memory sharded
// trace (the internal/trace varint encoding, one independently decodable
// shard per frame) and replays the shards through each spec's hierarchy
// concurrently on a bounded worker pool. Workers consume shards as the
// render pass publishes them, so replay overlaps rendering instead of
// waiting for it. Results are assembled in spec order and are
// byte-identical to the serial path: the trace encoding is lossless,
// every hierarchy sees the identical reference stream, and per-frame
// counter snapshots follow the same arithmetic.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"texcache/internal/cache"
	"texcache/internal/raster"
	"texcache/internal/scene"
	"texcache/internal/stats"
	"texcache/internal/telemetry"
	"texcache/internal/texture"
	"texcache/internal/trace"
	"texcache/internal/workload"
)

// sweepWorkers resolves the Parallelism knob to an effective worker
// count: 0 means GOMAXPROCS, and a single-spec comparison always takes
// the serial path (the trace round trip buys nothing there).
func sweepWorkers(parallelism, nspecs int) int {
	if nspecs <= 1 {
		return 1
	}
	if parallelism == 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > nspecs {
		parallelism = nspecs
	}
	return parallelism
}

// renderedTrace is the texel reference stream sharded by frame, plus
// everything else the assembled Comparison needs from the render pass.
// Shards are complete streams (header plus one whole frame), so each
// replays independently and the per-frame delta coder restarts at every
// shard boundary. The producer (render pass) publishes shard f by closing
// ready[f] after storing shards[f]; the channel close is the
// happens-before edge that lets replay workers read the shard while later
// frames are still rendering. pipeline, pixels and stats are touched only
// by the producer and, after all workers are joined, the coordinator.
type renderedTrace struct {
	shards [][]byte
	ready  []chan struct{}

	pipeline []scene.FrameStats
	pixels   []int64
	stats    []stats.Frame // per frame, when collecting
}

func newRenderedTrace(frames int) *renderedTrace {
	rt := &renderedTrace{
		shards:   make([][]byte, frames),
		ready:    make([]chan struct{}, frames),
		pipeline: make([]scene.FrameStats, frames),
		pixels:   make([]int64, frames),
	}
	for f := range rt.ready {
		rt.ready[f] = make(chan struct{})
	}
	return rt
}

// abort publishes every not-yet-rendered shard as nil so that blocked
// workers wake up and drain instead of waiting forever.
func (rt *renderedTrace) abort(from int) {
	for f := from; f < len(rt.ready); f++ {
		close(rt.ready[f])
	}
}

// render renders every frame of the workload under render's resolution,
// frame count and filter, encoding the reference stream into one shard
// per frame — published to the replay workers as soon as it is complete —
// and feeding the optional working-set collector and reuse probe. When
// render.Tracer is set, the pass records a "render" span with nested
// per-frame "encode" and "shard-publish" spans.
//
//texsim:publishes shards ready
func (rt *renderedTrace) render(w *workload.Workload, render Config, collect *stats.Collector, reuse *reuseProbe) error {
	sp := render.Tracer.Start("render")
	defer sp.End()
	rast, err := raster.New(raster.Config{
		Width: render.Width, Height: render.Height,
		Mode:           render.Mode,
		ZBeforeTexture: render.ZBeforeTexture,
	})
	if err != nil {
		rt.abort(0)
		return err
	}
	// With no collectors tapping the stream, references go straight to
	// the trace writer through the rasterizer's devirtualized TraceSink
	// fast path; only collector runs pay the interface-dispatch tee.
	var tw *trace.Writer
	ts := &raster.TraceSink{}
	if collect == nil && reuse == nil {
		rast.SetSink(ts)
	} else {
		rast.SetSink(raster.SinkFunc(func(tid texture.ID, u, v, m int) {
			tw.Texel(uint32(tid), u, v, m)
			if collect != nil {
				collect.Texel(tid, u, v, m)
			}
			if reuse != nil {
				reuse.Texel(tid, u, v, m)
			}
		}))
	}
	pipeline := scene.NewPipeline(rast)
	aspect := float64(render.Width) / float64(render.Height)
	if collect != nil {
		rt.stats = make([]stats.Frame, render.Frames)
	}

	for f := 0; f < render.Frames; f++ {
		enc := render.Tracer.Start("encode")
		var buf shardBuffer
		tw = trace.NewWriter(&buf)
		ts.W = tw
		tw.BeginFrame()
		if collect != nil {
			collect.BeginFrame()
		}
		pst := pipeline.RenderFrame(w.Scene, w.Camera(aspect, f, render.Frames))
		tw.EndFrame(rast.Pixels())
		if err := tw.Close(); err != nil {
			enc.End()
			rt.abort(f)
			return fmt.Errorf("core: sweep: encoding frame %d: %w", f, err)
		}
		enc.End()
		pub := render.Tracer.Start("shard-publish")
		rt.pipeline[f] = pst
		rt.pixels[f] = rast.Pixels()
		if collect != nil {
			collect.AddPixels(rast.Pixels())
			rt.stats[f] = collect.EndFrame()
		}
		rt.shards[f] = buf.data
		close(rt.ready[f])
		pub.End()
	}
	return nil
}

// shardBuffer is a minimal append-only byte sink for one shard.
type shardBuffer struct{ data []byte }

func (b *shardBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

// sweepHandler feeds one spec's hierarchy from replayed shards,
// reproducing exactly the FrameResults the serial fan-out produces for
// that spec. Unlike replayHandler (which guards ReplayTrace against
// hostile external streams), it performs no per-texel validation: sweep
// shards are encoded in-process from rasterizer output, whose coordinates
// are valid by construction.
type sweepHandler struct {
	sink *addrSink
	hier *cache.Hierarchy
	res  *Results
	prev cache.Counters
}

func (h *sweepHandler) BeginFrame() {}

// Texel forwards one trusted reference to the address sink.
//
// texlint:hotpath
func (h *sweepHandler) Texel(tid uint32, u, v, m int) {
	h.sink.Texel(texture.ID(tid), u, v, m)
}

func (h *sweepHandler) EndFrame(pixels int64) {
	cur := h.hier.Counters()
	h.res.Frames = append(h.res.Frames, FrameResult{
		Pixels:   pixels,
		Counters: cur.Sub(h.prev),
	})
	h.prev = cur
}

// replaySpec drives one spec's pre-built hierarchy through every shard in
// frame order, blocking on shards the render pass has not published yet.
// Each worker owns its hierarchy and sink; nothing here is shared with
// other workers except the read-only shards and the mutex-protected
// tracer, which records one "replay:<spec>" span per worker.
func replaySpec(rt *renderedTrace, hier *cache.Hierarchy, sink *addrSink, res *Results, tracer *telemetry.Tracer, spec string) error {
	sp := tracer.Start("replay:" + spec)
	defer sp.End()
	h := &sweepHandler{sink: sink, hier: hier, res: res}
	for f := range rt.shards {
		<-rt.ready[f]
		shard := rt.shards[f]
		if shard == nil {
			// Render aborted; the coordinator reports its error.
			return nil
		}
		if _, err := trace.ReplayBytes(shard, h); err != nil {
			return fmt.Errorf("core: sweep replay: %w", err)
		}
	}
	res.Totals = hier.Counters()
	return nil
}

// runComparisonParallel is the render-once / replay-many engine behind
// RunComparison for Parallelism != 1. The hierarchies are built serially
// up front (so spec errors surface before the expensive render, and so
// every texture.Set layout is prepared before any worker goroutine reads
// the registry), then one goroutine per spec — at most par replaying at a
// time — consumes the shards as the coordinator renders them, each
// writing only its own result and error slot. Assembly in spec order
// makes the output deterministic and byte-identical to
// runComparisonSerial.
func runComparisonParallel(w *workload.Workload, render Config, specs []CacheSpec, par int) (*Comparison, error) {
	set := w.Scene.Textures
	set.MustPrepare(texture.CanonicalL1())

	// Build every spec's hierarchy and sink before spawning anything:
	// buildHierarchy prepares tile layouts in the texture registry, which
	// memoizes into maps that must not be written concurrently.
	hiers := make([]*cache.Hierarchy, len(specs))
	sinks := make([]*addrSink, len(specs))
	cmp := &Comparison{Workload: w.Name, Render: render}
	for i, spec := range specs {
		cfg := specConfig(render, spec)
		hier, sink, err := buildHierarchy(set, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: spec %q: %w", spec.Name, err)
		}
		hiers[i] = hier
		sinks[i] = sink
		cmp.Specs = append(cmp.Specs, spec.Name)
		cmp.Results = append(cmp.Results, &Results{Workload: w.Name, Config: cfg})
	}

	var collect *stats.Collector
	if len(render.StatLayouts) > 0 {
		var err error
		collect, err = stats.NewCollector(set, render.StatLayouts...)
		if err != nil {
			return nil, err
		}
	}
	var reuse *reuseProbe
	if render.CollectReuse {
		reuse = newReuseProbe(set)
	}

	rt := newRenderedTrace(render.Frames)

	// One goroutine per spec, at most par replaying concurrently; each
	// worker writes only its own errs slot and its own Results (joined by
	// wg.Wait before the coordinator reads either).
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = replaySpec(rt, hiers[i], sinks[i], cmp.Results[i],
				render.Tracer, specs[i].Name)
		}(i)
	}

	// The render pass: RenderWorkers selects between the serial oracle
	// and the frame-parallel farm (renderfarm.go); both publish shards
	// through the same ready-channel contract and produce byte-identical
	// shards, so the replay pool above is oblivious to the choice.
	var renderErr error
	if rw := renderWorkerCount(render.RenderWorkers, render.Frames); rw > 1 {
		renderErr = rt.renderFarm(w, render, collect, reuse, rw)
	} else {
		renderErr = rt.render(w, render, collect, reuse)
	}
	wg.Wait()
	if renderErr != nil {
		return nil, renderErr
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: spec %q: %w", specs[i].Name, err)
		}
	}

	// Workers account pixels and counters from the stream; the geometry
	// pipeline statistics come from the render pass.
	asm := render.Tracer.Start("assemble")
	defer asm.End()
	for _, res := range cmp.Results {
		for f := range res.Frames {
			res.Frames[f].Pipeline = rt.pipeline[f]
		}
	}
	cmp.FramePixels = append(cmp.FramePixels, rt.pixels...)
	if collect != nil {
		// As in the serial path, the working-set statistics ride on the
		// first spec's results.
		for f := range rt.stats {
			cmp.Results[0].Frames[f].Stats = &rt.stats[f]
		}
		sum := stats.Summarize(collect.Frames(),
			int64(render.Width)*int64(render.Height))
		cmp.Results[0].Summary = &sum
	}
	cmp.Reuse = reuse.histogram()
	// The workers each filled their own Results slot — those are the
	// per-worker metric buffers. Replaying them frame-major, spec-minor
	// reproduces the serial engine's streamed order byte for byte.
	EmitComparisonMetrics(render.Metrics, cmp)
	return cmp, nil
}
