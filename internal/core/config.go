// Package core is the study's simulator: it drives a workload's scripted
// animation through the geometry pipeline and rasterizer, translates each
// texel reference to the hierarchical virtual texture address, and presents
// it to the configured cache hierarchy (L1 only for the pull architecture,
// L1+L2 for the proposed architecture), gathering per-frame transaction
// counts, bandwidths, and working-set statistics.
//
// It also records and replays binary reference traces, decoupling the
// (expensive) rendering from (cheap) cache simulation, which is how the
// paper sweeps cache parameters over fixed animations.
package core

import (
	"fmt"

	"texcache/internal/cache"
	"texcache/internal/raster"
	"texcache/internal/telemetry"
	"texcache/internal/texture"
)

// Config parameterises one simulation run.
type Config struct {
	// Width and Height give the screen resolution; the paper uses
	// 1024x768.
	Width, Height int
	// Frames is the number of animation frames to simulate, spread
	// evenly over the workload's camera path. Zero means the workload's
	// paper-scale frame count.
	Frames int
	// Mode selects the texture filter (point for §4 statistics,
	// bilinear/trilinear for cache studies).
	Mode raster.SampleMode
	// L1Bytes is the L1 cache capacity; the paper studies 2 KB and
	// 16 KB primarily.
	L1Bytes int
	// L1Ways is the L1 associativity; 0 means the paper's 2-way.
	L1Ways int
	// L2 configures the L2 cache; nil simulates the pull architecture.
	L2 *cache.L2Config
	// TLBEntries sizes the page-table TLB (0 = no TLB statistics).
	TLBEntries int
	// ZBeforeTexture enables the §6 z-before-texture optimisation.
	ZBeforeTexture bool
	// StatLayouts, when non-empty, enables the §4 working-set collector
	// at the given tile granularities.
	StatLayouts []texture.TileLayout
	// Framebuffer renders colour output (snapshots); costs time.
	Framebuffer bool
	// Parallelism bounds the worker pool of comparison sweeps
	// (RunComparison): 0 means runtime.GOMAXPROCS(0), 1 selects the
	// serial reference fan-out, and higher values render the workload
	// once into a sharded trace and replay it through that many cache
	// hierarchies concurrently. Results are byte-identical at every
	// setting; the knob trades memory (the in-memory trace, roughly 2-3
	// bytes per texel reference) for wall-clock. Negative is invalid.
	Parallelism int
	// RenderWorkers sizes the frame-parallel render farm of comparison
	// sweeps: 0 means runtime.GOMAXPROCS(0), 1 keeps the serial render
	// pass (the oracle the farm is tested against), and higher values
	// render frames out of order on that many per-worker render contexts.
	// The knob only applies when the render-once/replay-many engine runs
	// (Parallelism != 1 with at least two specs); the serial reference
	// fan-out always renders serially. Shards and the assembled
	// Comparison are byte-identical at every setting. Negative is
	// invalid.
	RenderWorkers int
	// ReplayWorkers enables frame-range-parallel replay of each cache
	// spec: the frame sequence is partitioned into that many contiguous
	// ranges and each range replays on its own clone of the spec's
	// hierarchy, stitched together by checkpoints — range k restores the
	// complete cache state (L1, L2, TLB, replacement policy) range k−1
	// published at their shared boundary, so counters, per-frame deltas
	// and TLB statistics are bit-identical to a serial replay. Until its
	// checkpoint arrives a range worker decodes and translates ahead into
	// bounded reference buffers, overlapping the predecessor's cache
	// work. 0 and 1 both mean off (one range, the serial replay order);
	// values above the frame count are clamped to it. The knob applies to
	// the sweep engine's replay groups (RunComparison with Parallelism
	// != 1, including the -fast engine's exact fallback) and to
	// ReplayTrace; a ReplayWorkers above 1 forces the trace engine even
	// when Parallelism is 1. Negative is invalid.
	ReplayWorkers int
	// Metrics, when non-nil, receives one telemetry record per simulated
	// frame (and per cache spec in comparison runs) in a deterministic
	// frame-major, spec-minor order that is identical at every
	// Parallelism setting. Emission happens outside the per-texel hot
	// path; a nil Metrics costs nothing.
	Metrics telemetry.Emitter
	// Tracer, when non-nil, records phase spans (render, encode,
	// shard-publish, replay-per-spec, assemble) of the parallel sweep
	// engine. Span timings are observational sidecar data and never feed
	// back into simulation output.
	Tracer *telemetry.Tracer
	// Trace, when non-nil, is the textrace registry: worker-attributed
	// span tracks (render worker N, replay group G, fast-probe), counter
	// tracks (chunk-pool bytes in flight, frames rendered, per-spec
	// replay progress, replay queue depth) and instant events for
	// protocol edges (shard publish, chunk abort, model refusal), across
	// all three engines. Export it with WriteChromeTrace for
	// Perfetto/chrome://tracing, or serve it live through
	// telemetry.NewMonitor. Under a deterministic clock (FakeClock) the
	// export is byte-identical at every Parallelism / RenderWorkers
	// setting; a nil Trace costs one predictable branch per event site
	// and allocates nothing.
	Trace *telemetry.Trace
	// CollectReuse enables the reuse-distance probe: an LRU stack
	// distance histogram over L2 block addresses of the rendered
	// reference stream, attached to Results.Reuse / Comparison.Reuse.
	// Comparison runs additionally attach the sector profile and the
	// analytic model's per-spec report (Comparison.Model).
	CollectReuse bool
	// FastSweep switches RunComparison to the analytic engine: the
	// workload is rendered once through the reuse probe and every spec
	// the reuse model can reach (see internal/model/reusemodel) gets its
	// counters predicted from the profile instead of replayed — TLB
	// statistics come from exact in-probe filters. Specs outside the
	// model's reach (direct-mapped L1s, random replacement, disabled
	// sector mapping, off-granularity tile sizes) are replayed exactly as
	// before. Modeled Results carry Totals but no per-frame breakdown.
	// Implies CollectReuse for the comparison; incompatible with
	// StatLayouts.
	FastSweep bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("core: invalid resolution %dx%d", c.Width, c.Height)
	}
	if c.L1Bytes <= 0 {
		return fmt.Errorf("core: L1 size %d", c.L1Bytes)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("core: negative parallelism %d", c.Parallelism)
	}
	if c.RenderWorkers < 0 {
		return fmt.Errorf("core: negative render workers %d", c.RenderWorkers)
	}
	if c.ReplayWorkers < 0 {
		return fmt.Errorf("core: negative replay workers %d", c.ReplayWorkers)
	}
	if c.L2 != nil {
		if err := c.L2.Layout.Validate(); err != nil {
			return err
		}
	}
	for _, l := range c.StatLayouts {
		if err := l.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// DefaultConfig returns the paper's baseline configuration: 1024x768,
// trilinear, 2 KB L1, 2 MB L2 of 16x16 tiles with clock replacement, and a
// 16-entry TLB.
func DefaultConfig() Config {
	return Config{
		Width:   1024,
		Height:  768,
		Mode:    raster.Trilinear,
		L1Bytes: 2 * 1024,
		L2: &cache.L2Config{
			SizeBytes: 2 * 1024 * 1024,
			Layout:    texture.TileLayout{L2Size: 16, L1Size: 4},
			Policy:    cache.Clock,
		},
		TLBEntries: 16,
	}
}
