package telemetry

import (
	"math/rand"
	"reflect"
	"testing"
)

// naiveSectored is the reference sectored cache: a fully-associative
// LRU of n2 blocks whose recency is refreshed on every reference, with
// one valid bit per line inside each resident block (cleared when the
// block is loaded). access reports whether the referenced line's bit
// was already set — exactly the "sector survives" event the collector's
// running maximum M is built to predict (M < n2).
type naiveSectored struct {
	n2    int
	stack []uint32
	valid map[uint32]map[uint16]bool
}

func newNaiveSectored(n2 int) *naiveSectored {
	return &naiveSectored{n2: n2, valid: make(map[uint32]map[uint16]bool)}
}

func (s *naiveSectored) access(block uint32, sub uint16) bool {
	idx := -1
	for i, b := range s.stack {
		if b == block {
			idx = i
			break
		}
	}
	if idx >= 0 {
		copy(s.stack[1:idx+1], s.stack[:idx])
		s.stack[0] = block
	} else {
		if len(s.stack) == s.n2 {
			last := len(s.stack) - 1
			delete(s.valid, s.stack[last])
			s.stack = s.stack[:last]
		}
		s.stack = append([]uint32{block}, s.stack...)
		s.valid[block] = make(map[uint16]bool)
	}
	v := s.valid[block]
	set := v[sub]
	v[sub] = true
	return set
}

// sectorStream generates a texel-like reference stream: runs within a
// block (spatial coherence) interleaved with jumps across blocks.
func sectorStream(rng *rand.Rand, numBlocks, subPerBlock, refs int) [][2]uint32 {
	var stream [][2]uint32
	for len(stream) < refs {
		block := uint32(rng.Intn(numBlocks))
		run := 1 + rng.Intn(6)
		for i := 0; i < run && len(stream) < refs; i++ {
			stream = append(stream, [2]uint32{block, uint32(rng.Intn(subPerBlock))})
		}
	}
	return stream
}

// TestSectorAgainstNaive cross-checks the collector's sector histogram
// against the reference sectored cache at every capacity: the number of
// references whose sector bit survives in an N2-block cache must equal
// Sector.HitMass(N2) exactly (the block space is far below the fine
// threshold, so no interpolation is involved).
func TestSectorAgainstNaive(t *testing.T) {
	const (
		numBlocks   = 48
		subPerBlock = 4
		refs        = 5000
	)
	rng := rand.New(rand.NewSource(3))
	stream := sectorStream(rng, numBlocks, subPerBlock, refs)

	c := NewSectorReuseCollector(numBlocks, subPerBlock, 16)
	caps := []int{1, 2, 3, 5, 8, 13, 21, 34, 47, 48, 100}
	naive := make([]*naiveSectored, len(caps))
	survived := make([]int64, len(caps))
	for i, n2 := range caps {
		naive[i] = newNaiveSectored(n2)
	}
	for _, ref := range stream {
		c.Access(ref[0], uint16(ref[1]))
		for i := range caps {
			if naive[i].access(ref[0], uint16(ref[1])) {
				survived[i]++
			}
		}
	}
	p := c.Profile()
	for i, n2 := range caps {
		if got := p.Sector.HitMass(int64(n2)); got != float64(survived[i]) {
			t.Errorf("Sector.HitMass(%d) = %v, want exactly %d", n2, got, survived[i])
		}
	}
	if p.BlockEdge != 16 || p.Blocks.BlockEdge != 16 || p.Sector.BlockEdge != 16 {
		t.Errorf("profile block edge not stamped: %d/%d/%d",
			p.BlockEdge, p.Blocks.BlockEdge, p.Sector.BlockEdge)
	}
	if p.Lines.Accesses != refs || p.Blocks.Accesses != refs || p.Sector.Accesses != refs {
		t.Errorf("access counts diverge: %d/%d/%d, want %d",
			p.Lines.Accesses, p.Blocks.Accesses, p.Sector.Accesses, refs)
	}
	// Cold accounting: sector cold = cold lines (first touch of a line),
	// and the nesting d2 <= M <= d1 shows up as ordered hit masses.
	if p.Sector.Cold != p.Lines.Cold {
		t.Errorf("sector cold = %d, want lines cold %d", p.Sector.Cold, p.Lines.Cold)
	}
	for n := int64(1); n <= numBlocks; n++ {
		lines := p.Lines.HitMass(n) // line space is larger, but d1 >= M still
		sector := p.Sector.HitMass(n)
		blocks := p.Blocks.HitMass(n)
		if sector > blocks {
			t.Fatalf("HitMass ordering violated at %d: sector %v > blocks %v", n, sector, blocks)
		}
		if lines > sector {
			t.Fatalf("HitMass ordering violated at %d: lines %v > sector %v", n, lines, sector)
		}
	}
}

// TestSectorCompaction drives a tiny block space long enough to force
// many collector compactions and re-checks the naive equivalence across
// them.
func TestSectorCompaction(t *testing.T) {
	const (
		numBlocks   = 4
		subPerBlock = 2
		refs        = 20000
	)
	rng := rand.New(rand.NewSource(99))
	stream := sectorStream(rng, numBlocks, subPerBlock, refs)
	c := NewSectorReuseCollector(numBlocks, subPerBlock, 8)
	caps := []int{1, 2, 3, 4}
	naive := make([]*naiveSectored, len(caps))
	survived := make([]int64, len(caps))
	for i, n2 := range caps {
		naive[i] = newNaiveSectored(n2)
	}
	for _, ref := range stream {
		c.Access(ref[0], uint16(ref[1]))
		for i := range caps {
			if naive[i].access(ref[0], uint16(ref[1])) {
				survived[i]++
			}
		}
	}
	p := c.Profile()
	for i, n2 := range caps {
		if got := p.Sector.HitMass(int64(n2)); got != float64(survived[i]) {
			t.Errorf("after compactions: Sector.HitMass(%d) = %v, want %d", n2, got, survived[i])
		}
	}
}

func TestSectorRejectsEmptySpace(t *testing.T) {
	for _, bad := range [][2]int{{0, 4}, {4, 0}, {-1, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSectorReuseCollector(%d, %d, 8) did not panic", bad[0], bad[1])
				}
			}()
			NewSectorReuseCollector(bad[0], bad[1], 8)
		}()
	}
}

func TestSectorAccessAllocFree(t *testing.T) {
	c := NewSectorReuseCollector(64, 16, 16)
	rng := rand.New(rand.NewSource(1))
	refs := make([][2]uint32, 4096)
	for i := range refs {
		refs[i] = [2]uint32{uint32(rng.Intn(64)), uint32(rng.Intn(16))}
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		r := refs[i%len(refs)]
		c.Access(r[0], uint16(r[1]))
		i++
	})
	if allocs != 0 {
		t.Fatalf("SectorReuseCollector.Access allocates %v per call, want 0", allocs)
	}
}

func BenchmarkSectorAccess(b *testing.B) {
	c := NewSectorReuseCollector(4096, 16, 16)
	rng := rand.New(rand.NewSource(1))
	refs := make([][2]uint32, 1<<14)
	for i := range refs {
		refs[i] = [2]uint32{uint32(rng.Intn(4096)), uint32(rng.Intn(16))}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := refs[i&(1<<14-1)]
		c.Access(r[0], uint16(r[1]))
	}
}

// TestBatchRecordsMatchAccess drives two collectors over the same
// logical reference stream — one through Access alone, one substituting
// the batched Record calls for the runs they contract to cover — and
// requires identical profiles. Each batch kind is exercised at both
// parities, immediately after the two real accesses that establish its
// precondition, with shared random traffic in between so batches land
// on arbitrary collector states.
func TestBatchRecordsMatchAccess(t *testing.T) {
	const (
		numBlocks   = 24
		subPerBlock = 16
	)
	naive := NewSectorReuseCollector(numBlocks, subPerBlock, 16)
	batched := NewSectorReuseCollector(numBlocks, subPerBlock, 16)
	both := func(block uint32, sub uint16) {
		naive.Access(block, sub)
		batched.Access(block, sub)
	}

	// Zero-length batches are no-ops.
	batched.RecordRepeats(0)
	batched.RecordAlternations(0)
	batched.RecordCrossAlternations(0, 0, 0, 1, 0)

	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 200; round++ {
		for _, ref := range sectorStream(rng, numBlocks, subPerBlock, 12) {
			both(ref[0], uint16(ref[1]))
		}
		n := int64(1 + rng.Intn(7)) // both parities
		blk := uint32(rng.Intn(numBlocks))
		s1 := uint16(rng.Intn(subPerBlock))
		switch round % 3 {
		case 0: // repeats of the last line
			both(blk, s1)
			for i := int64(0); i < n; i++ {
				naive.Access(blk, s1)
			}
			batched.RecordRepeats(n)
		case 1: // same-block two-line ping-pong
			s2 := uint16((int(s1) + 1 + rng.Intn(subPerBlock-1)) % subPerBlock)
			both(blk, s1)
			both(blk, s2)
			for i := int64(0); i < n; i++ {
				if i&1 == 0 {
					naive.Access(blk, s1)
				} else {
					naive.Access(blk, s2)
				}
			}
			batched.RecordAlternations(n)
		case 2: // cross-block two-line ping-pong
			blk2 := uint32((int(blk) + 1 + rng.Intn(numBlocks-1)) % numBlocks)
			s2 := uint16(rng.Intn(subPerBlock))
			both(blk, s1)
			both(blk2, s2)
			for i := int64(0); i < n; i++ {
				if i&1 == 0 {
					naive.Access(blk, s1)
				} else {
					naive.Access(blk2, s2)
				}
			}
			if n&1 == 1 { // the side referenced last closes out the run
				batched.RecordCrossAlternations(n, blk, s1, blk2, s2)
			} else {
				batched.RecordCrossAlternations(n, blk2, s2, blk, s1)
			}
		}
	}
	// A shared tail so post-batch state differences would surface.
	for _, ref := range sectorStream(rng, numBlocks, subPerBlock, 200) {
		both(ref[0], uint16(ref[1]))
	}

	got, want := batched.Profile(), naive.Profile()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("batched profile diverges from Access-only reference:\ngot  %+v\nwant %+v", got, want)
	}
}
