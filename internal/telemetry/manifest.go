// Run manifests: a sidecar record that makes every results file
// traceable to the run that produced it — which binary configuration,
// which environment, how much work. Manifests are observational output
// and may carry wall-clock spans; they are never read back by the
// simulator.
package telemetry

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
)

// Manifest records the identity of one run.
type Manifest struct {
	// Tool names the producing command (e.g. "texsim -sweep").
	Tool string `json:"tool"`
	// ConfigHash fingerprints the run configuration (see ConfigHash).
	ConfigHash string `json:"config_hash"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workload   string `json:"workload"`
	Frames     int    `json:"frames"`
	// Specs lists the cache configurations of a comparison run.
	Specs []string `json:"specs,omitempty"`
	// Totals aggregates the run's metric stream.
	Totals RunTotals `json:"totals"`
	// Model carries the per-spec analytic-model report of a sweep run
	// that collected a reuse profile: which specs the model covered,
	// and its absolute error where an exact replay ran alongside.
	Model []SpecModelError `json:"model,omitempty"`
	// Spans carries the phase timing sidecar when a tracer was active.
	Spans []Span `json:"spans,omitempty"`
}

// SpecModelError is one sweep spec's entry in the manifest's model
// report. Modeled marks specs whose counters came from the analytic
// reuse model (the -fast sweep); Unreachable names why the model could
// not cover a spec; the error fields compare model against exact replay
// when both ran (HasExact), in absolute rate terms.
type SpecModelError struct {
	Spec        string  `json:"spec"`
	Modeled     bool    `json:"modeled"`
	Unreachable string  `json:"unreachable,omitempty"`
	HasExact    bool    `json:"has_exact"`
	L1HitAbsErr float64 `json:"l1_hit_abs_err"`
	// L2FullHitAbsErr compares full-hit rates conditioned on an L1 miss,
	// the paper's reporting convention.
	L2FullHitAbsErr float64 `json:"l2_full_hit_abs_err"`
}

// NewManifest returns a manifest pre-filled with the environment: the
// running Go version and effective GOMAXPROCS.
func NewManifest(tool string) Manifest {
	return Manifest{
		Tool:       tool,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// WriteJSON writes the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ConfigHash fingerprints a run configuration: FNV-1a over the canonical
// parts (workload, resolution, frame count, cache parameters, ...)
// joined with an unambiguous separator. Identical configurations hash
// identically across runs and machines; the hash deliberately excludes
// anything environmental, which the manifest records alongside it.
func ConfigHash(parts ...string) string {
	h := fnv.New64a()
	for _, p := range parts {
		// The writes cannot fail on a hash; ignore via the blank writer
		// contract of io.WriteString on hash.Hash.
		_, _ = io.WriteString(h, p)
		_, _ = h.Write([]byte{0x1f})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
