package telemetry

import (
	"math/rand"
	"strings"
	"testing"
)

// naiveReuse is the O(n)-per-access reference implementation: an LRU
// recency list scanned linearly. The tree collector must agree with it
// on every access.
type naiveReuse struct {
	stack []uint32 // most recent first
}

func (n *naiveReuse) access(addr uint32) int64 {
	for i, a := range n.stack {
		if a == addr {
			copy(n.stack[1:i+1], n.stack[:i])
			n.stack[0] = addr
			return int64(i)
		}
	}
	n.stack = append([]uint32{addr}, n.stack...)
	return -1
}

func TestReuseAgainstNaive(t *testing.T) {
	streams := map[string][]uint32{
		"repeat":    {0, 0, 0, 0},
		"pair":      {0, 1, 0, 1, 0},
		"scan":      {0, 1, 2, 3, 0, 1, 2, 3},
		"singleton": {5},
		"mixed":     {3, 1, 4, 1, 5, 2, 6, 5, 3, 5, 8, 1, 4},
	}
	for name, stream := range streams {
		c := NewReuseCollector(16)
		n := &naiveReuse{}
		for i, a := range stream {
			got, want := c.accessDist(a), n.access(a)
			if got != want {
				t.Errorf("%s: access %d (addr %d): distance = %d, want %d",
					name, i, a, got, want)
			}
		}
	}
}

// TestReuseCompaction forces many slot-array compactions (tiny address
// space, long stream) and checks distances stay correct throughout.
func TestReuseCompaction(t *testing.T) {
	const addrs = 8
	c := NewReuseCollector(addrs)
	n := &naiveReuse{}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10_000; i++ {
		a := uint32(rng.Intn(addrs))
		got, want := c.accessDist(a), n.access(a)
		if got != want {
			t.Fatalf("access %d (addr %d): distance = %d, want %d", i, a, got, want)
		}
	}
}

func TestReuseHistogram(t *testing.T) {
	c := NewReuseCollector(8)
	// Distances: cold, cold, cold, then 2 (a after b,c), 2 (b after c,a), 0 (b).
	for _, a := range []uint32{0, 1, 2, 0, 1, 1} {
		c.Access(a)
	}
	h := c.Histogram()
	if h.Accesses != 6 || h.Cold != 3 {
		t.Fatalf("accesses = %d cold = %d, want 6 and 3", h.Accesses, h.Cold)
	}
	var total int64
	for _, b := range h.Buckets {
		total += b.Count
		if b.Lo > b.Hi {
			t.Errorf("bucket [%d,%d] inverted", b.Lo, b.Hi)
		}
	}
	if total != h.Accesses-h.Cold {
		t.Errorf("bucket total = %d, want %d", total, h.Accesses-h.Cold)
	}
	// Distance 0 once -> bucket [0,0]; distance 2 twice -> bucket [2,3].
	if len(h.Buckets) != 2 || h.Buckets[0] != (ReuseBucket{0, 0, 1}) ||
		h.Buckets[1] != (ReuseBucket{2, 3, 2}) {
		t.Errorf("buckets = %+v", h.Buckets)
	}
}

func TestReuseHitRate(t *testing.T) {
	c := NewReuseCollector(8)
	for _, a := range []uint32{0, 1, 0, 1, 0, 1} {
		c.Access(a)
	}
	h := c.Histogram()
	// 4 re-references at distance 1: a 2-block LRU hits all of them.
	if got := h.HitRate(2); got != 4.0/6.0 {
		t.Errorf("HitRate(2) = %v, want %v", got, 4.0/6.0)
	}
	if got := h.HitRate(1); got != 0 {
		t.Errorf("HitRate(1) = %v, want 0", got)
	}
	if got := (ReuseHistogram{}).HitRate(4); got != 0 {
		t.Errorf("empty HitRate = %v, want 0", got)
	}
}

func TestReuseBucketBoundaries(t *testing.T) {
	cases := map[int64]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 1 << 40: reuseBuckets - 1}
	for d, want := range cases {
		if got := reuseBucket(d); got != want {
			t.Errorf("reuseBucket(%d) = %d, want %d", d, got, want)
		}
	}
}

func TestReuseWriteJSON(t *testing.T) {
	c := NewReuseCollector(8)
	for _, a := range []uint32{0, 1, 0} {
		c.Access(a)
	}
	var sb strings.Builder
	if err := c.Histogram().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"accesses": 3`, `"cold": 2`, `{"lo": 1, "hi": 1, "count": 1}`} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReuseRejectsEmptyAddressSpace(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewReuseCollector(0) did not panic")
		}
	}()
	NewReuseCollector(0)
}

// FuzzReuseDistance feeds arbitrary byte streams as address streams and
// cross-checks the tree collector against the naive reference, per
// access and on the final histogram totals.
func FuzzReuseDistance(f *testing.F) {
	f.Add([]byte{0, 1, 0, 1, 2, 0})
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, stream []byte) {
		const addrs = 16 // tiny, so compaction happens often
		c := NewReuseCollector(addrs)
		n := &naiveReuse{}
		var cold int64
		for i, b := range stream {
			a := uint32(b) % addrs
			got, want := c.accessDist(a), n.access(a)
			if got != want {
				t.Fatalf("access %d (addr %d): distance = %d, want %d", i, a, got, want)
			}
			if want < 0 {
				cold++
			}
		}
		h := c.Histogram()
		if h.Accesses != int64(len(stream)) || h.Cold != cold {
			t.Fatalf("histogram accesses/cold = %d/%d, want %d/%d",
				h.Accesses, h.Cold, len(stream), cold)
		}
	})
}

func BenchmarkReuseAccess(b *testing.B) {
	c := NewReuseCollector(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint32(i*2654435761) % 4096)
	}
}
