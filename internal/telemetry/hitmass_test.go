package telemetry

import (
	"math"
	"math/rand"
	"testing"
)

// hitCounts derives, from a stream replayed through the naive O(n)
// stack, the exact number of references a fully-associative LRU cache
// of each queried capacity would hit.
func hitCounts(stream []uint32, caps []int64) map[int64]int64 {
	n := &naiveReuse{}
	counts := make(map[int64]int64, len(caps))
	for _, a := range stream {
		d := n.access(a)
		if d < 0 {
			continue
		}
		for _, c := range caps {
			if d < c {
				counts[c]++
			}
		}
	}
	return counts
}

// TestHitMassExactAtFineCapacities is the regression test for the
// partial-bucket truncation bug: capacities inside the fine-count range
// (and power-of-two capacities above it, which align with bucket
// boundaries) must match the naive stack exactly — including
// adversarial non-power-of-two capacities that land mid-bucket, which
// the old HitRate counted as all-miss.
func TestHitMassExactAtFineCapacities(t *testing.T) {
	const addrs = 600
	rng := rand.New(rand.NewSource(7))
	c := NewReuseCollector(addrs)
	var stream []uint32
	emit := func(a uint32) {
		stream = append(stream, a)
		c.Access(a)
	}
	// Mix of scans (long distances at every length) and random reuse.
	for round := 0; round < 4; round++ {
		for a := 0; a < addrs; a++ {
			emit(uint32(a))
		}
		for i := 0; i < 2000; i++ {
			emit(uint32(rng.Intn(addrs)))
		}
	}
	caps := []int64{1, 2, 3, 5, 7, 12, 33, 100, 127, 129, 255, 300, 500, 599, 600, 1024}
	want := hitCounts(stream, caps)
	h := c.Histogram()
	for _, cap := range caps {
		got := h.HitMass(cap)
		if got != float64(want[cap]) {
			t.Errorf("HitMass(%d) = %v, want exactly %d", cap, got, want[cap])
		}
	}
}

// TestHitMassInterpolatedAboveFine exercises capacities above the
// fine-count range: power-of-two capacities align with bucket
// boundaries and stay exact, and mid-bucket capacities must land within
// the partial bucket's mass of the truth (the interpolation bound) —
// never the old behaviour of dropping the whole bucket.
func TestHitMassInterpolatedAboveFine(t *testing.T) {
	const addrs = 6000 // > fineLimit, so distances above 4096 exist
	if addrs <= fineLimit {
		t.Fatal("test needs an address space larger than fineLimit")
	}
	rng := rand.New(rand.NewSource(11))
	c := NewReuseCollector(addrs)
	var stream []uint32
	for round := 0; round < 2; round++ {
		for a := 0; a < addrs; a++ {
			stream = append(stream, uint32(a))
		}
		for i := 0; i < 1500; i++ {
			stream = append(stream, uint32(rng.Intn(addrs)))
		}
	}
	for _, a := range stream {
		c.Access(a)
	}
	h := c.Histogram()

	exactCaps := []int64{4096, 8192}
	midCaps := []int64{4097, 5000, 5999, 6000, 7321}
	want := hitCounts(stream, append(append([]int64{}, exactCaps...), midCaps...))
	for _, cap := range exactCaps {
		if got := h.HitMass(cap); got != float64(want[cap]) {
			t.Errorf("HitMass(%d) = %v, want exactly %d (bucket-aligned)", cap, got, want[cap])
		}
	}
	// Mass of the log2 bucket containing each mid-bucket capacity bounds
	// the interpolation error.
	bucketMass := func(cap int64) float64 {
		for _, b := range h.Buckets {
			if b.Lo <= cap && cap <= b.Hi {
				return float64(b.Count)
			}
		}
		return 0
	}
	for _, cap := range midCaps {
		got := h.HitMass(cap)
		if diff := math.Abs(got - float64(want[cap])); diff > bucketMass(cap) {
			t.Errorf("HitMass(%d) = %v, want %d within bucket mass %v",
				cap, got, want[cap], bucketMass(cap))
		}
		// The old bug: a partially covered bucket contributed nothing, so
		// the estimate could not exceed the bucket's lower boundary mass.
		if lower := h.HitMass(cap &^ (cap - 1)); cap > 4096 && got < lower {
			t.Errorf("HitMass(%d) = %v below the bucket floor %v", cap, got, lower)
		}
	}
}

// TestHitRateColdMisses pins the cold-miss convention: cold (compulsory)
// misses count against the hit rate at every capacity, matching the
// simulator, and an infinite cache hits exactly the warm references.
func TestHitRateColdMisses(t *testing.T) {
	c := NewReuseCollector(8)
	for _, a := range []uint32{0, 1, 2, 0, 1, 2} {
		c.Access(a)
	}
	h := c.Histogram()
	if h.Cold != 3 || h.Accesses != 6 {
		t.Fatalf("cold = %d accesses = %d, want 3/6", h.Cold, h.Accesses)
	}
	if got := h.HitRate(1 << 30); got != 0.5 {
		t.Errorf("infinite-cache HitRate = %v, want 0.5 (cold misses still count)", got)
	}
	if got := h.HitRate(0); got != 0 {
		t.Errorf("HitRate(0) = %v, want 0", got)
	}
}

// FuzzReuseHitRate checks the HitRate invariants on arbitrary streams:
// values stay in [0, 1], the curve is monotone non-decreasing in the
// capacity, and an infinite cache hits exactly the warm fraction.
func FuzzReuseHitRate(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 1, 1}, uint16(100))
	f.Add([]byte{9, 9, 9}, uint16(1))
	f.Add([]byte{}, uint16(5))
	f.Fuzz(func(t *testing.T, stream []byte, capSeed uint16) {
		const addrs = 64
		c := NewReuseCollector(addrs)
		for _, b := range stream {
			c.Access(uint32(b) % addrs)
		}
		h := c.Histogram()
		prev := 0.0
		for cap := int64(0); cap <= addrs+2; cap++ {
			r := h.HitRate(cap)
			if r < 0 || r > 1 || math.IsNaN(r) {
				t.Fatalf("HitRate(%d) = %v out of [0,1]", cap, r)
			}
			if r < prev {
				t.Fatalf("HitRate not monotone: HitRate(%d) = %v < %v", cap, r, prev)
			}
			prev = r
		}
		// Arbitrary larger capacity, derived from the fuzzed seed.
		big := int64(capSeed) + addrs
		if r := h.HitRate(big); r < prev || r > 1 {
			t.Fatalf("HitRate(%d) = %v breaks monotonicity past the address space", big, r)
		}
		if h.Accesses > 0 {
			warm := float64(h.Accesses-h.Cold) / float64(h.Accesses)
			if r := h.HitRate(1 << 40); math.Abs(r-warm) > 1e-12 {
				t.Fatalf("infinite-cache HitRate = %v, want warm fraction %v", r, warm)
			}
		}
	})
}
