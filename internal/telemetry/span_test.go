package telemetry

import (
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestTracerNesting(t *testing.T) {
	clock := &FakeClock{Step: 10}
	tr := NewTracer(clock)
	outer := tr.Start("render") // t=0
	inner := tr.Start("encode") // t=10
	inner.End()                 // t=20
	clock.Advance(5)
	outer.End() // t=35

	want := []Span{
		{Name: "render", Depth: 0, Start: 0, Dur: 35},
		{Name: "encode", Depth: 1, Start: 10, Dur: 10},
	}
	if got := tr.Spans(); !reflect.DeepEqual(got, want) {
		t.Errorf("spans = %+v, want %+v", got, want)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	s := tr.Start("anything")
	s.End() // must not panic
	if got := tr.Spans(); got != nil {
		t.Errorf("nil tracer spans = %+v, want nil", got)
	}
}

func TestTracerRequiresClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTracer(nil) did not panic")
		}
	}()
	NewTracer(nil)
}

func TestTracerSpansSorted(t *testing.T) {
	tr := NewTracer(&FakeClock{})
	// Same start time everywhere (Step=0): order must fall back to
	// (Depth, Name), independent of completion order.
	b := tr.Start("bravo")
	a := tr.Start("alpha")
	a.End()
	b.End()
	got := tr.Spans()
	if len(got) != 2 || got[0].Name != "bravo" || got[1].Name != "alpha" {
		t.Errorf("spans = %+v, want bravo (depth 0) before alpha (depth 1)", got)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(&FakeClock{Step: 1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Start("replay").End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 800 {
		t.Errorf("recorded %d spans, want 800", got)
	}
}

func TestTracerWriteJSON(t *testing.T) {
	tr := NewTracer(&FakeClock{Step: 7})
	tr.Start("render").End()
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	want := `{"name":"render","depth":0,"start_ns":0,"dur_ns":7}` + "\n"
	if sb.String() != want {
		t.Errorf("WriteJSON = %q, want %q", sb.String(), want)
	}
}

func TestWallClockMonotonic(t *testing.T) {
	c := NewWallClock()
	a := c.Now()
	b := c.Now()
	if a < 0 || b < a {
		t.Errorf("wall clock went backwards: %d then %d", a, b)
	}
}
