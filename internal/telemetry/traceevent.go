// Chrome trace_event export for textrace registries: the JSON object
// format ({"traceEvents":[...]}) that Perfetto and chrome://tracing
// open directly. Emission follows the regime the trace recorded in
// (textrace.go): the wall regime exports physical tracks with real
// microsecond timestamps; the canonical regime exports logical tracks
// with virtual position timestamps, a pure function of the recorded
// logical event multiset — identical bytes at every worker count.
package telemetry

import (
	"fmt"
	"io"
	"sort"
)

// chromeWriter emits one trace_event JSON array with error-sticky
// comma/newline management, using fixed Fprintf field orders so equal
// event sets yield byte-equal output.
type chromeWriter struct {
	w   io.Writer
	n   int
	err error
}

func (cw *chromeWriter) emitf(format string, args ...interface{}) {
	if cw.err != nil {
		return
	}
	sep := "\n"
	if cw.n > 0 {
		sep = ",\n"
	}
	if _, err := io.WriteString(cw.w, sep); err != nil {
		cw.err = err
		return
	}
	_, cw.err = fmt.Fprintf(cw.w, format, args...)
	cw.n++
}

// usec renders nanoseconds as the decimal microseconds trace_event
// timestamps use, with fixed sub-microsecond precision.
func usec(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

// WriteChromeTrace writes the run as trace_event JSON. A nil trace
// writes an empty (still valid) document.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "{\"traceEvents\":[]}\n")
		return err
	}
	cw := &chromeWriter{w: w}
	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	cw.emitf(`{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"textrace"}}`)
	if t.canonical {
		t.emitCanonical(cw)
	} else {
		t.emitWall(cw)
	}
	if cw.err != nil {
		return cw.err
	}
	_, err := io.WriteString(w, "\n],\"displayTimeUnit\":\"ms\"}\n")
	return err
}

// emitSpan writes one complete ("X") event. Open spans export with zero
// duration rather than being dropped: a live monitor snapshot should
// still show them.
func (cw *chromeWriter) emitSpan(tid int, ts, dur int64, name, arg string, seq int64) {
	if dur < 0 {
		dur = 0
	}
	if arg != "" {
		cw.emitf(`{"ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s,"name":%q,"args":{"seq":%d,"detail":%q}}`,
			tid, usec(ts), usec(dur), name, seq, arg)
		return
	}
	cw.emitf(`{"ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s,"name":%q,"args":{"seq":%d}}`,
		tid, usec(ts), usec(dur), name, seq)
}

// emitInstant writes one thread-scoped instant ("i") event.
func (cw *chromeWriter) emitInstant(tid int, ts int64, name, arg string, seq int64) {
	if arg != "" {
		cw.emitf(`{"ph":"i","pid":1,"tid":%d,"ts":%s,"s":"t","name":%q,"args":{"seq":%d,"detail":%q}}`,
			tid, usec(ts), name, seq, arg)
		return
	}
	cw.emitf(`{"ph":"i","pid":1,"tid":%d,"ts":%s,"s":"t","name":%q,"args":{"seq":%d}}`,
		tid, usec(ts), name, seq)
}

// emitWall exports the physical recording: one thread per track in name
// order, events in recorded order with their real timestamps, and every
// counter sample (explicit Samples and scheduling-dependent Gauges
// alike) in recorded order.
func (t *Trace) emitWall(cw *chromeWriter) {
	tracks := t.snapshotTracks()
	tid := 0
	for _, k := range tracks {
		events := k.snapshotEvents()
		if len(events) == 0 {
			continue
		}
		tid++
		cw.emitf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%q}}`,
			tid, k.name)
		for _, ev := range events {
			if ev.kind == evInstant {
				cw.emitInstant(tid, ev.start, ev.name, ev.arg, ev.seq)
			} else {
				cw.emitSpan(tid, ev.start, ev.dur, ev.name, ev.arg, ev.seq)
			}
		}
	}
	for _, c := range t.snapshotCounters() {
		samples := c.snapshotSamples()
		for _, s := range samples {
			cw.emitf(`{"ph":"C","pid":1,"tid":0,"ts":%s,"name":%q,"args":{"value":%d}}`,
				usec(s.at), c.name, s.value)
		}
	}
}

// emitCanonical exports the logical recording: events regroup onto their
// logical tracks (wall-only events — logical "" — are dropped, as are
// still-open spans), order within a track is the deterministic
// (seq, kind, name, arg) key, and timestamps are virtual positions in
// that order. Counter timelines keep only explicit Samples, sorted by
// seq. Nothing here depends on which goroutine recorded what or when,
// so the bytes are identical at every Parallelism / RenderWorkers
// setting.
func (t *Trace) emitCanonical(cw *chromeWriter) {
	type canonEvent struct {
		track string
		ev    traceEvent
	}
	var all []canonEvent
	for _, k := range t.snapshotTracks() {
		for _, ev := range k.snapshotEvents() {
			if ev.logical == "" || (ev.kind == evSpan && ev.dur < 0) {
				continue
			}
			all = append(all, canonEvent{track: ev.logical, ev: ev})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.track != b.track {
			return a.track < b.track
		}
		if a.ev.seq != b.ev.seq {
			return a.ev.seq < b.ev.seq
		}
		if a.ev.kind != b.ev.kind {
			return a.ev.kind < b.ev.kind
		}
		if a.ev.name != b.ev.name {
			return a.ev.name < b.ev.name
		}
		return a.ev.arg < b.ev.arg
	})

	tid := 0
	pos := 0
	last := ""
	for i, ce := range all {
		if i == 0 || ce.track != last {
			tid++
			pos = 0
			last = ce.track
			cw.emitf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%q}}`,
				tid, ce.track)
		}
		// Virtual time: each event occupies a 2 µs slot in canonical
		// order; spans fill half their slot so nesting never overlaps.
		ts := int64(pos) * 2000
		pos++
		if ce.ev.kind == evInstant {
			cw.emitInstant(tid, ts, ce.ev.name, ce.ev.arg, ce.ev.seq)
		} else {
			cw.emitSpan(tid, ts, 1000, ce.ev.name, ce.ev.arg, ce.ev.seq)
		}
	}

	for _, c := range t.snapshotCounters() {
		samples := c.snapshotSamples()
		if len(samples) == 0 {
			continue
		}
		sort.Slice(samples, func(i, j int) bool {
			if samples[i].seq != samples[j].seq {
				return samples[i].seq < samples[j].seq
			}
			return samples[i].value < samples[j].value
		})
		for i, s := range samples {
			cw.emitf(`{"ph":"C","pid":1,"tid":0,"ts":%s,"name":%q,"args":{"value":%d}}`,
				usec(int64(i)*1000), c.name, s.value)
		}
	}
}
