// Aggregation over a recorded textrace: per-track utilization, per-phase
// span statistics, the run's critical path, and a straggler report. The
// pass reads the physical recording (real spans on real tracks), so it
// is most meaningful for wall-regime traces; it is pure read-side
// analysis and never feeds back into simulation output.
package telemetry

import (
	"fmt"
	"io"
	"sort"
)

// TrackUtil is one track's share of the run: busy nanoseconds summed
// over its closed top-level spans, against the whole run's extent.
type TrackUtil struct {
	Name        string
	Spans       int
	BusyNS      int64
	Utilization float64
}

// PhaseStat aggregates every closed span with one name across all
// tracks.
type PhaseStat struct {
	Name     string
	Count    int
	TotalNS  int64
	MeanNS   int64
	MaxNS    int64
	MaxTrack string
	// PctOfRun is TotalNS over the run extent; above 1 means the phase
	// ran concurrently on several tracks.
	PctOfRun float64
}

// CriticalStep is one span on the run's critical path.
type CriticalStep struct {
	Track   string
	Name    string
	Seq     int64
	StartNS int64
	DurNS   int64
}

// Straggler is a span that ran disproportionately long against its
// phase's median.
type Straggler struct {
	Phase  string
	Track  string
	Seq    int64
	DurNS  int64
	Median int64
	Ratio  float64
}

// TraceReport is the aggregation of one recorded run.
type TraceReport struct {
	// DurationNS is the run extent: latest event end minus earliest
	// event start.
	DurationNS int64
	Tracks     []TrackUtil
	Phases     []PhaseStat
	// Critical is a dependency-free critical path estimate: walking
	// backward from the last-ending span, each step is the
	// latest-ending span that ended at or before the current one
	// started. CriticalNS sums its durations.
	Critical   []CriticalStep
	CriticalNS int64
	Stragglers []Straggler
}

// reportSpan is one closed span with its physical track attached.
type reportSpan struct {
	track string
	ev    traceEvent
}

// Report aggregates the trace's physical recording. Nil trace, nil
// report.
func (t *Trace) Report() *TraceReport {
	if t == nil {
		return nil
	}
	rep := &TraceReport{}
	var spans []reportSpan
	var lo, hi int64
	seen := false
	for _, k := range t.snapshotTracks() {
		events := k.snapshotEvents()
		busy := int64(0)
		closed := 0
		for _, ev := range events {
			if !seen || ev.start < lo {
				lo = ev.start
			}
			end := ev.start + ev.dur
			if ev.kind != evSpan || ev.dur < 0 {
				end = ev.start
			}
			if !seen || end > hi {
				hi = end
			}
			seen = true
			if ev.kind != evSpan || ev.dur < 0 {
				continue
			}
			closed++
			if ev.depth == 0 {
				busy += ev.dur
			}
			spans = append(spans, reportSpan{track: k.name, ev: ev})
		}
		if len(events) > 0 {
			rep.Tracks = append(rep.Tracks, TrackUtil{
				Name: k.name, Spans: closed, BusyNS: busy,
			})
		}
	}
	if seen {
		rep.DurationNS = hi - lo
	}
	if rep.DurationNS > 0 {
		for i := range rep.Tracks {
			rep.Tracks[i].Utilization =
				float64(rep.Tracks[i].BusyNS) / float64(rep.DurationNS)
		}
	}
	rep.Phases = phaseStats(spans, rep.DurationNS)
	rep.Critical, rep.CriticalNS = criticalPath(spans)
	rep.Stragglers = stragglers(spans)
	return rep
}

// phaseStats groups closed spans by name. Spans are sorted first so the
// grouping never depends on track registration or recording order.
func phaseStats(spans []reportSpan, runNS int64) []PhaseStat {
	byName := append([]reportSpan(nil), spans...)
	sort.Slice(byName, func(i, j int) bool {
		a, b := byName[i], byName[j]
		if a.ev.name != b.ev.name {
			return a.ev.name < b.ev.name
		}
		if a.ev.start != b.ev.start {
			return a.ev.start < b.ev.start
		}
		return a.track < b.track
	})
	var out []PhaseStat
	for _, s := range byName {
		if n := len(out); n == 0 || out[n-1].Name != s.ev.name {
			out = append(out, PhaseStat{Name: s.ev.name})
		}
		p := &out[len(out)-1]
		p.Count++
		p.TotalNS += s.ev.dur
		if s.ev.dur > p.MaxNS || p.MaxTrack == "" {
			p.MaxNS = s.ev.dur
			p.MaxTrack = s.track
		}
	}
	for i := range out {
		out[i].MeanNS = out[i].TotalNS / int64(out[i].Count)
		if runNS > 0 {
			out[i].PctOfRun = float64(out[i].TotalNS) / float64(runNS)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalNS != out[j].TotalNS {
			return out[i].TotalNS > out[j].TotalNS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// criticalPath walks backward from the last-ending span: each
// predecessor is the latest-ending span whose end does not pass the
// current span's start (ties broken by start, then track, then name, so
// the walk is deterministic). Only top-level spans participate — nested
// spans are already covered by their parents.
func criticalPath(spans []reportSpan) ([]CriticalStep, int64) {
	var tops []reportSpan
	for _, s := range spans {
		if s.ev.depth == 0 {
			tops = append(tops, s)
		}
	}
	if len(tops) == 0 {
		return nil, 0
	}
	// Order the spans latest-ending first; the walk then only ever moves
	// forward through this order, which both picks the latest-ending
	// predecessor and guarantees termination on zero-duration ties.
	sort.Slice(tops, func(i, j int) bool {
		a, b := tops[i], tops[j]
		ae, be := a.ev.start+a.ev.dur, b.ev.start+b.ev.dur
		if ae != be {
			return ae > be
		}
		if a.ev.start != b.ev.start {
			return a.ev.start > b.ev.start
		}
		if a.track != b.track {
			return a.track < b.track
		}
		return a.ev.name < b.ev.name
	})
	var path []CriticalStep
	var total int64
	cur := 0
	for cur >= 0 {
		s := tops[cur]
		path = append(path, CriticalStep{
			Track: s.track, Name: s.ev.name, Seq: s.ev.seq,
			StartNS: s.ev.start, DurNS: s.ev.dur,
		})
		total += s.ev.dur
		next := -1
		for k := cur + 1; k < len(tops); k++ {
			if tops[k].ev.start+tops[k].ev.dur <= s.ev.start {
				next = k
				break
			}
		}
		cur = next
	}
	// The walk built the path back-to-front; present it in time order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, total
}

// stragglers flags spans that took over twice their phase's median,
// strongest ratio first.
func stragglers(spans []reportSpan) []Straggler {
	byName := append([]reportSpan(nil), spans...)
	sort.Slice(byName, func(i, j int) bool {
		a, b := byName[i], byName[j]
		if a.ev.name != b.ev.name {
			return a.ev.name < b.ev.name
		}
		return a.ev.dur < b.ev.dur
	})
	var out []Straggler
	for i := 0; i < len(byName); {
		j := i
		for j < len(byName) && byName[j].ev.name == byName[i].ev.name {
			j++
		}
		group := byName[i:j]
		if len(group) >= 3 {
			med := group[len(group)/2].ev.dur
			if med > 0 {
				for _, s := range group {
					if s.ev.dur > 2*med {
						out = append(out, Straggler{
							Phase: s.ev.name, Track: s.track, Seq: s.ev.seq,
							DurNS: s.ev.dur, Median: med,
							Ratio: float64(s.ev.dur) / float64(med),
						})
					}
				}
			}
		}
		i = j
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ratio != out[j].Ratio {
			return out[i].Ratio > out[j].Ratio
		}
		if out[i].Phase != out[j].Phase {
			return out[i].Phase < out[j].Phase
		}
		return out[i].Seq < out[j].Seq
	})
	if len(out) > 10 {
		out = out[:10]
	}
	return out
}

// ms renders nanoseconds as milliseconds for the text report.
func ms(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e6) }

// WriteText renders the report as a compact fixed-width table set.
func (r *TraceReport) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	pct := func(v float64) string { return fmt.Sprintf("%.0f%%", 100*v) }
	if _, err := fmt.Fprintf(w, "textrace report: run %s ms, %d tracks, critical path %s ms\n",
		ms(r.DurationNS), len(r.Tracks), ms(r.CriticalNS)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-24s %12s %6s %7s\n", "track", "busy ms", "util", "spans"); err != nil {
		return err
	}
	for _, k := range r.Tracks {
		if _, err := fmt.Fprintf(w, "  %-24s %12s %6s %7d\n",
			k.Name, ms(k.BusyNS), pct(k.Utilization), k.Spans); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "  %-16s %6s %12s %10s %10s %6s  %s\n",
		"phase", "count", "total ms", "mean ms", "max ms", "%run", "max track"); err != nil {
		return err
	}
	for _, p := range r.Phases {
		if _, err := fmt.Fprintf(w, "  %-16s %6d %12s %10s %10s %6s  %s\n",
			p.Name, p.Count, ms(p.TotalNS), ms(p.MeanNS), ms(p.MaxNS),
			pct(p.PctOfRun), p.MaxTrack); err != nil {
			return err
		}
	}
	for _, s := range r.Stragglers {
		if _, err := fmt.Fprintf(w, "  straggler: %s seq %d on %s: %s ms (%.1fx median)\n",
			s.Phase, s.Seq, s.Track, ms(s.DurNS), s.Ratio); err != nil {
			return err
		}
	}
	for _, c := range r.Critical {
		if _, err := fmt.Fprintf(w, "  critical: %-24s %-16s seq %-6d %s +%s ms\n",
			c.Track, c.Name, c.Seq, ms(c.StartNS), ms(c.DurNS)); err != nil {
			return err
		}
	}
	return nil
}
