package telemetry

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func sampleMetrics() []FrameMetrics {
	return []FrameMetrics{
		{
			Workload: "village", Spec: "pull-16k", Frame: 0, Pixels: 100,
			L1Accesses: 400, L1Misses: 40,
			L2FullHits: 30, L2PartialHits: 5, L2FullMisses: 5,
			L2Evictions: 2, L2SearchSteps: 12, L2MaxSearch: 4,
			TLBLookups: 40, TLBHits: 39,
			HostBytes: 2048, L2ReadBytes: 1280, L2WriteBytes: 2048,
		},
		{Workload: "village", Spec: "l2-2m", Frame: 1},
	}
}

func TestJSONLGolden(t *testing.T) {
	var sb strings.Builder
	s := NewJSONL(&sb)
	for _, m := range sampleMetrics() {
		s.Frame(m)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	want := `{"workload":"village","spec":"pull-16k","frame":0,"pixels":100,` +
		`"l1_accesses":400,"l1_misses":40,` +
		`"l2_full_hits":30,"l2_partial_hits":5,"l2_full_misses":5,` +
		`"l2_evictions":2,"l2_search_steps":12,"l2_max_search":4,` +
		`"tlb_lookups":40,"tlb_hits":39,` +
		`"host_bytes":2048,"l2_read_bytes":1280,"l2_write_bytes":2048}` + "\n" +
		`{"workload":"village","spec":"l2-2m","frame":1,"pixels":0,` +
		`"l1_accesses":0,"l1_misses":0,` +
		`"l2_full_hits":0,"l2_partial_hits":0,"l2_full_misses":0,` +
		`"l2_evictions":0,"l2_search_steps":0,"l2_max_search":0,` +
		`"tlb_lookups":0,"tlb_hits":0,` +
		`"host_bytes":0,"l2_read_bytes":0,"l2_write_bytes":0}` + "\n"
	if sb.String() != want {
		t.Errorf("JSONL output:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestCSVGolden(t *testing.T) {
	var sb strings.Builder
	s := NewCSV(&sb)
	for _, m := range sampleMetrics() {
		s.Frame(m)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	want := csvHeader +
		"village,pull-16k,0,100,400,40,30,5,5,2,12,4,40,39,2048,1280,2048\n" +
		"village,l2-2m,1,0,0,0,0,0,0,0,0,0,0,0,0,0,0\n"
	if sb.String() != want {
		t.Errorf("CSV output:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// failWriter fails every write after the first n bytes worth of calls.
type failWriter struct{ calls int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.calls > 0 {
		return 0, errors.New("disk full")
	}
	w.calls++
	return len(p), nil
}

func TestStickyErrors(t *testing.T) {
	j := NewJSONL(&failWriter{calls: 1}) // fail immediately
	j.Frame(FrameMetrics{})
	if j.Err() == nil {
		t.Error("JSONL did not surface the write error")
	}
	j.Frame(FrameMetrics{}) // must not panic or clear the error
	if j.Err() == nil {
		t.Error("JSONL error was not sticky")
	}

	c := NewCSV(&failWriter{}) // header succeeds, first row fails
	c.Frame(FrameMetrics{})
	if c.Err() == nil {
		t.Error("CSV did not surface the write error")
	}
	c.Frame(FrameMetrics{})
	if c.Err() == nil {
		t.Error("CSV error was not sticky")
	}

	c2 := NewCSV(&failWriter{calls: 1}) // header itself fails
	c2.Frame(FrameMetrics{})
	if c2.Err() == nil {
		t.Error("CSV did not surface the header write error")
	}
}

func TestBufferReplayAndTee(t *testing.T) {
	src := sampleMetrics()
	var buf Buffer
	var tot Totals
	tee := Tee(&buf, &tot)
	for _, m := range src {
		tee.Frame(m)
	}
	if !reflect.DeepEqual(buf.Records, src) {
		t.Errorf("Buffer records = %+v, want %+v", buf.Records, src)
	}
	var replayed Buffer
	buf.Replay(&replayed)
	if !reflect.DeepEqual(replayed.Records, src) {
		t.Errorf("Replay records = %+v, want %+v", replayed.Records, src)
	}
	want := RunTotals{
		FrameRecords: 2, TexelRefs: 400, L1Misses: 40,
		HostBytes: 2048, L2ReadBytes: 1280, L2WriteBytes: 2048,
	}
	if tot.T != want {
		t.Errorf("totals = %+v, want %+v", tot.T, want)
	}
}
