// Reuse-distance (LRU stack distance) histograms over L2 block
// addresses. The distance of a reference is the number of *distinct*
// other blocks touched since the previous reference to the same block;
// a fully-associative LRU cache of N blocks hits exactly the references
// with distance < N, so the histogram is the canonical trace-derived
// locality signal: it predicts hit rate as a function of capacity from
// one pass over the stream (Ling et al., "Fast Modeling L2 Cache Reuse
// Distance Histograms", and Mattson's original stack algorithm).
//
// The collector is the classical O(log n) tree formulation: a Fenwick
// tree over time slots counts the still-live (most recent) reference of
// each block, so the distance of a re-reference is one prefix-sum query.
// Slots are recycled by compaction when the slot array fills, which
// keeps the structure allocation-free after construction — a hard
// requirement, because Access sits on the simulator's per-texel hot
// path (texsim:hot, enforced by the hotalloc analyzer).
package telemetry

import (
	"fmt"
	"io"
	"math/bits"
)

// reuseBuckets is the number of log2 histogram buckets: bucket 0 counts
// distance 0, bucket b >= 1 counts distances in [2^(b-1), 2^b). 2^32
// distinct blocks is far beyond any simulated texture set.
const reuseBuckets = 34

// ReuseCollector measures stack distances over a dense address space
// [0, numAddrs). Construct with NewReuseCollector; Access is the hot
// path and performs no allocation.
type ReuseCollector struct {
	// last maps address -> its live time slot, -1 when never referenced.
	last []int32
	// slotAddr maps time slot -> address, -1 when the slot is stale.
	slotAddr []int32
	// tree is a Fenwick tree (1-based) over slots: tree position s+1
	// carries 1 when slot s is live.
	tree []int64
	// next is the next unused time slot; live counts live slots.
	next int
	live int64
	cold int64
	hist [reuseBuckets]int64
	refs int64
}

// NewReuseCollector sizes the collector for addresses in [0, numAddrs).
// The slot array is twice the address space, so compaction (which keeps
// only the live slot per address) always reclaims at least half of it.
func NewReuseCollector(numAddrs int) *ReuseCollector {
	if numAddrs <= 0 {
		panic("telemetry: reuse collector needs a positive address space")
	}
	slots := 2 * numAddrs
	if slots < 16 {
		slots = 16
	}
	c := &ReuseCollector{
		last:     make([]int32, numAddrs),
		slotAddr: make([]int32, slots),
		tree:     make([]int64, slots+1),
	}
	for i := range c.last {
		c.last[i] = -1
	}
	for i := range c.slotAddr {
		c.slotAddr[i] = -1
	}
	return c
}

// Access records one reference to addr. It is invoked once per texel
// reference on instrumented runs and must stay free of allocation and
// formatting.
//
// texsim:hot
func (c *ReuseCollector) Access(addr uint32) {
	c.accessDist(addr)
}

// accessDist is Access returning the observed distance (-1 for a cold
// first reference), shared with the white-box tests and fuzzers.
func (c *ReuseCollector) accessDist(addr uint32) int64 {
	c.refs++
	d := int64(-1)
	if p := c.last[addr]; p < 0 {
		c.cold++
	} else {
		// Live slots strictly after p are exactly the distinct blocks
		// referenced since addr's previous reference.
		d = c.live - c.prefix(int(p)+1)
		c.hist[reuseBucket(d)]++
		c.add(int(p)+1, -1)
		c.slotAddr[p] = -1
		c.live--
	}
	if c.next == len(c.slotAddr) {
		c.compact()
	}
	s := c.next
	c.next++
	c.slotAddr[s] = int32(addr)
	c.last[addr] = int32(s)
	c.add(s+1, 1)
	c.live++
	return d
}

// compact reassigns the live slots to the front of the slot array in
// recency order and rebuilds the tree, all in place: live <= numAddrs
// <= len(slotAddr)/2, so at least half the array is reclaimed.
func (c *ReuseCollector) compact() {
	n := 0
	for s := 0; s < c.next; s++ {
		a := c.slotAddr[s]
		if a < 0 {
			continue
		}
		c.slotAddr[s] = -1
		c.slotAddr[n] = a
		c.last[a] = int32(n)
		n++
	}
	c.next = n
	for i := range c.tree {
		c.tree[i] = 0
	}
	for s := 0; s < n; s++ {
		c.add(s+1, 1)
	}
}

// add applies a Fenwick point update at 1-based index i.
func (c *ReuseCollector) add(i int, v int64) {
	for ; i < len(c.tree); i += i & -i {
		c.tree[i] += v
	}
}

// prefix returns the count of live slots with slot index < i.
func (c *ReuseCollector) prefix(i int) int64 {
	var s int64
	for ; i > 0; i -= i & -i {
		s += c.tree[i]
	}
	return s
}

// reuseBucket maps a distance to its log2 bucket.
func reuseBucket(d int64) int {
	b := bits.Len64(uint64(d))
	if b >= reuseBuckets {
		b = reuseBuckets - 1
	}
	return b
}

// ReuseBucket is one non-empty histogram bucket covering distances in
// [Lo, Hi].
type ReuseBucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// ReuseHistogram is the collector's output artifact.
type ReuseHistogram struct {
	// Accesses is the total references observed; Cold the first-touch
	// references (infinite distance). Accesses - Cold re-references are
	// distributed over Buckets.
	Accesses int64         `json:"accesses"`
	Cold     int64         `json:"cold"`
	Buckets  []ReuseBucket `json:"buckets"`
}

// Histogram snapshots the collector. Buckets are ascending and omit
// empty ranges.
func (c *ReuseCollector) Histogram() ReuseHistogram {
	h := ReuseHistogram{
		Accesses: c.refs,
		Cold:     c.cold,
		Buckets:  make([]ReuseBucket, 0, len(c.hist)),
	}
	for b, n := range c.hist {
		if n == 0 {
			continue
		}
		lo, hi := int64(0), int64(0)
		if b > 0 {
			lo = int64(1) << (b - 1)
			hi = int64(1)<<b - 1
		}
		h.Buckets = append(h.Buckets, ReuseBucket{Lo: lo, Hi: hi, Count: n})
	}
	return h
}

// HitRate returns the fraction of all references a fully-associative
// LRU cache of the given block count would hit (cold misses count
// against it). It answers "how big must the L2 be" directly from the
// histogram, conservatively attributing a partially covered bucket's
// references to misses.
func (h ReuseHistogram) HitRate(blocks int64) float64 {
	if h.Accesses == 0 {
		return 0
	}
	var hits int64
	for _, b := range h.Buckets {
		if b.Hi < blocks {
			hits += b.Count
		}
	}
	return float64(hits) / float64(h.Accesses)
}

// WriteJSON writes the histogram as a single JSON document with a fixed
// field order.
func (h ReuseHistogram) WriteJSON(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "{\n  \"accesses\": %d,\n  \"cold\": %d,\n  \"buckets\": [",
		h.Accesses, h.Cold); err != nil {
		return err
	}
	for i, b := range h.Buckets {
		sep := ","
		if i == len(h.Buckets)-1 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "\n    {\"lo\": %d, \"hi\": %d, \"count\": %d}%s",
			b.Lo, b.Hi, b.Count, sep); err != nil {
			return err
		}
	}
	_, err := fmt.Fprint(w, "\n  ]\n}\n")
	return err
}
