// Reuse-distance (LRU stack distance) histograms over L2 block
// addresses. The distance of a reference is the number of *distinct*
// other blocks touched since the previous reference to the same block;
// a fully-associative LRU cache of N blocks hits exactly the references
// with distance < N, so the histogram is the canonical trace-derived
// locality signal: it predicts hit rate as a function of capacity from
// one pass over the stream (Ling et al., "Fast Modeling L2 Cache Reuse
// Distance Histograms", and Mattson's original stack algorithm).
//
// The collector is the classical O(log n) tree formulation of Mattson's
// stack algorithm, with the live-slot set held as a bitmap plus a
// Fenwick tree over 64-slot groups: the distance of a re-reference is
// one group-prefix query plus a popcount, and the two structures stay
// small enough to be cache-resident even for million-line address
// spaces. Slots are recycled by compaction when the slot array fills, which
// keeps the structure allocation-free after construction — a hard
// requirement, because Access sits on the simulator's per-texel hot
// path (texsim:hot, enforced by the hotalloc analyzer).
//
// Distances below fineLimit are additionally counted exactly, one
// counter per distance, so capacity queries at any cache size up to
// fineLimit are histogram-exact rather than log2-bucket approximations.
package telemetry

import (
	"fmt"
	"io"
	"math/bits"
)

// reuseBuckets is the number of log2 histogram buckets: bucket 0 counts
// distance 0, bucket b >= 1 counts distances in [2^(b-1), 2^b). 2^32
// distinct blocks is far beyond any simulated texture set.
const reuseBuckets = 34

// fineLimit is the exact-count threshold: distances below it are tallied
// one counter per distance, so HitMass is exact for any capacity up to
// fineLimit blocks. 4096 covers every canonical sweep capacity (the
// largest L1 is 512 lines; the 8 MB L2 is 8192 blocks, which falls on a
// log2 bucket boundary and therefore also resolves exactly).
const fineLimit = 4096

// distTally accumulates a distance distribution: exact counts below
// fineLimit, log2 buckets everywhere (the buckets always cover the full
// range, so the fine counts refine rather than replace them).
type distTally struct {
	fine []int64
	hist [reuseBuckets]int64
	cold int64
	refs int64
}

// newDistTally sizes the exact-count array for distances in [0, maxDist).
func newDistTally(maxDist int) distTally {
	n := maxDist
	if n > fineLimit {
		n = fineLimit
	}
	if n < 1 {
		n = 1
	}
	return distTally{fine: make([]int64, n)}
}

// record tallies one observed distance d >= 0. Allocation-free.
//
// texsim:hot
func (t *distTally) record(d int64) {
	t.hist[reuseBucket(d)]++
	if d < int64(len(t.fine)) {
		t.fine[d]++
	}
}

// histogram snapshots the tally into the output artifact. The fine array
// is copied trimmed to its last non-zero entry; FineLimit records the
// exactly-covered range regardless of trimming.
func (t *distTally) histogram() ReuseHistogram {
	h := ReuseHistogram{
		Accesses:  t.refs,
		Cold:      t.cold,
		FineLimit: int64(len(t.fine)),
		Buckets:   make([]ReuseBucket, 0, len(t.hist)),
	}
	last := -1
	for d, n := range t.fine {
		if n != 0 {
			last = d
		}
	}
	if last >= 0 {
		h.Fine = make([]int64, last+1)
		copy(h.Fine, t.fine[:last+1])
	}
	for b, n := range t.hist {
		if n == 0 {
			continue
		}
		lo, hi := int64(0), int64(0)
		if b > 0 {
			lo = int64(1) << (b - 1)
			hi = int64(1)<<b - 1
		}
		h.Buckets = append(h.Buckets, ReuseBucket{Lo: lo, Hi: hi, Count: n})
	}
	return h
}

// ReuseCollector measures stack distances over a dense address space
// [0, numAddrs). Construct with NewReuseCollector; Access is the hot
// path and performs no allocation.
type ReuseCollector struct {
	// last maps address -> its live time slot, -1 when never referenced.
	last []int32
	// slotAddr maps time slot -> address, -1 when the slot is stale.
	slotAddr []int32
	// liveBits is a bitmap over slots (bit s set when slot s is live) and
	// gtree a Fenwick tree (1-based) over 64-slot groups of that bitmap
	// carrying each group's live count. A prefix sum is then a group-tree
	// query plus one popcount, and a point update is one bit flip plus a
	// group-tree walk — and, unlike a Fenwick tree over raw slots, both
	// structures together are ~65x smaller than the slot array, small
	// enough to stay cache-resident under million-line address spaces.
	liveBits []uint64
	gtree    []int32
	// next is the next unused time slot; live counts live slots.
	next int
	live int64
	// regs holds the regCount most recent addresses — the top of the LRU
	// stack — in logical recency order (regs[0] newest): a re-reference
	// to regs[j] is distance j and needs no tree or slot work, only a
	// register rotation. That turns the up-to-four-line cycle of a
	// trilinear texel footprint (two mip levels, each possibly straddling
	// a line boundary) into a handful of compares. Register-resident
	// addresses are kept out of the slot structures entirely (their last
	// entry is stale and never consulted, because the register scan runs
	// first): a miss's distance is the live-slot count above the stale
	// slot plus regCount, and demotion is a single front insertion — the
	// demoted entry is the (reuseRegs+1)-th most recent address, so the
	// front slot is exactly its stack position.
	regs     [reuseRegs]int32
	regCount int
	tally    distTally
}

// reuseRegs is the register-file depth: the top-of-stack entries
// resolved without touching the tree. Four covers a trilinear footprint
// that straddles line boundaries on both mip levels.
const reuseRegs = 4

// NewReuseCollector sizes the collector for addresses in [0, numAddrs).
// The slot array is twice the address space, so compaction (which keeps
// only the live slot per address) always reclaims at least half of it.
func NewReuseCollector(numAddrs int) *ReuseCollector {
	if numAddrs <= 0 {
		panic("telemetry: reuse collector needs a positive address space")
	}
	slots := 2 * numAddrs
	if slots < 16 {
		slots = 16
	}
	groups := (slots + 63) / 64
	c := &ReuseCollector{
		last:     make([]int32, numAddrs),
		slotAddr: make([]int32, slots),
		liveBits: make([]uint64, groups),
		gtree:    make([]int32, groups+1),
		tally:    newDistTally(numAddrs),
	}
	for i := range c.last {
		c.last[i] = -1
	}
	for i := range c.slotAddr {
		c.slotAddr[i] = -1
	}
	return c
}

// Access records one reference to addr. It is invoked once per texel
// reference on instrumented runs and must stay free of allocation and
// formatting.
//
// texsim:hot
func (c *ReuseCollector) Access(addr uint32) {
	c.accessDist(addr)
}

// accessDist is Access returning the observed distance (-1 for a cold
// first reference), shared with the white-box tests and fuzzers.
//
// texsim:hot
func (c *ReuseCollector) accessDist(addr uint32) int64 {
	c.tally.refs++
	a := int32(addr)
	for j := 0; j < c.regCount; j++ {
		if c.regs[j] != a {
			continue
		}
		// Register hit: exactly j distinct addresses sit above addr, so
		// the distance is j, and promotion is a register rotation — the
		// slot structures never see register-resident addresses.
		c.tally.record(int64(j))
		copy(c.regs[1:j+1], c.regs[:j])
		c.regs[0] = a
		return int64(j)
	}
	d := int64(-1)
	if p := c.last[addr]; p < 0 {
		c.tally.cold++
	} else {
		// Live slots strictly after p are the distinct non-register
		// addresses referenced since addr's previous reference; the
		// register entries (all logically above) are not slotted and are
		// added back as a constant.
		d = c.live - c.prefix(int(p)+1) + int64(c.regCount)
		c.tally.record(d)
		c.clearLive(int(p))
		c.slotAddr[p] = -1
		c.live--
	}
	if c.regCount == reuseRegs {
		// The oldest register entry leaves the register file. It is the
		// (reuseRegs+1)-th most recent address — everything slotted is
		// older — so the front slot is exactly its stack position.
		c.insertFront(c.regs[reuseRegs-1])
	} else {
		c.regCount++
	}
	copy(c.regs[1:c.regCount], c.regs[:c.regCount-1])
	c.regs[0] = a
	return d
}

// insertFront claims the next time slot for a, compacting first if the
// slot array is exhausted.
//
// texsim:hot
func (c *ReuseCollector) insertFront(a int32) {
	if c.next == len(c.slotAddr) {
		c.compact()
	}
	s := c.next
	c.next++
	c.slotAddr[s] = a
	c.last[a] = int32(s)
	c.setLive(s)
	c.live++
}

// compact reassigns the live slots to the front of the slot array in
// recency order and rebuilds the tree, all in place: live <= numAddrs
// <= len(slotAddr)/2, so at least half the array is reclaimed.
func (c *ReuseCollector) compact() {
	n := 0
	for s := 0; s < c.next; s++ {
		a := c.slotAddr[s]
		if a < 0 {
			continue
		}
		c.slotAddr[s] = -1
		c.slotAddr[n] = a
		c.last[a] = int32(n)
		n++
	}
	c.next = n
	for i := range c.liveBits {
		c.liveBits[i] = 0
	}
	for i := range c.gtree {
		c.gtree[i] = 0
	}
	for s := 0; s < n; s++ {
		c.setLive(s)
	}
}

// setLive marks slot s live: one bit flip plus a group-tree walk.
//
// texsim:hot
func (c *ReuseCollector) setLive(s int) {
	c.liveBits[s>>6] |= 1 << (uint(s) & 63)
	for i := s>>6 + 1; i < len(c.gtree); i += i & -i {
		c.gtree[i]++
	}
}

// clearLive marks slot s stale.
//
// texsim:hot
func (c *ReuseCollector) clearLive(s int) {
	c.liveBits[s>>6] &^= 1 << (uint(s) & 63)
	for i := s>>6 + 1; i < len(c.gtree); i += i & -i {
		c.gtree[i]--
	}
}

// prefix returns the count of live slots with slot index < i: the
// group-tree prefix over whole 64-slot groups plus a popcount of the
// partial group's bitmap word.
//
// texsim:hot
func (c *ReuseCollector) prefix(i int) int64 {
	var s int64
	for g := i >> 6; g > 0; g -= g & -g {
		s += int64(c.gtree[g])
	}
	if r := uint(i) & 63; r != 0 {
		s += int64(bits.OnesCount64(c.liveBits[i>>6] & (1<<r - 1)))
	}
	return s
}

// reuseBucket maps a distance to its log2 bucket.
func reuseBucket(d int64) int {
	b := bits.Len64(uint64(d))
	if b >= reuseBuckets {
		b = reuseBuckets - 1
	}
	return b
}

// ReuseBucket is one non-empty histogram bucket covering distances in
// [Lo, Hi].
type ReuseBucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// ReuseHistogram is the collector's output artifact.
type ReuseHistogram struct {
	// Accesses is the total references observed; Cold the first-touch
	// references (infinite distance). Accesses - Cold re-references are
	// distributed over Buckets (and, below FineLimit, over Fine).
	Accesses int64 `json:"accesses"`
	Cold     int64 `json:"cold"`
	// BlockEdge is the tile edge (in texels) of the address granularity
	// the histogram was collected at; 0 means unknown. A capacity model
	// must refuse a histogram whose granularity differs from the cache
	// geometry it is asked about — the counts would be a silent unit
	// error otherwise.
	BlockEdge int `json:"block_edge,omitempty"`
	// FineLimit bounds the exactly-counted distance range: Fine[d] is the
	// exact count of re-references at distance d for every d < FineLimit.
	// Fine may be trimmed of trailing zeros; FineLimit still records the
	// covered range.
	FineLimit int64   `json:"fine_limit,omitempty"`
	Fine      []int64 `json:"fine,omitempty"`
	Buckets   []ReuseBucket `json:"buckets"`
}

// Histogram snapshots the collector. Buckets are ascending and omit
// empty ranges.
func (c *ReuseCollector) Histogram() ReuseHistogram {
	return c.tally.histogram()
}

// HitMass returns the (possibly fractional) number of references a
// fully-associative LRU cache of the given block count would hit.
// Capacities below FineLimit are exact; above it, a partially covered
// log2 bucket contributes linearly interpolated mass — the distances
// within a bucket are assumed uniform, bounding the error by the
// bucket's count instead of silently dropping it (the pre-fix HitRate
// counted a partially covered bucket as all misses, which at
// non-power-of-two capacities was wrong by up to the full bucket mass).
func (h ReuseHistogram) HitMass(blocks int64) float64 {
	if blocks <= 0 {
		return 0
	}
	var mass float64
	n := blocks
	if n > int64(len(h.Fine)) {
		n = int64(len(h.Fine))
	}
	for d := int64(0); d < n; d++ {
		mass += float64(h.Fine[d])
	}
	if blocks <= h.FineLimit {
		return mass
	}
	for _, b := range h.Buckets {
		if b.Lo < h.FineLimit {
			// Entirely below the exact range: already counted via Fine.
			// FineLimit is always a power of two, so buckets never
			// straddle the boundary.
			continue
		}
		switch {
		case b.Hi < blocks:
			mass += float64(b.Count)
		case b.Lo < blocks:
			mass += float64(b.Count) * float64(blocks-b.Lo) / float64(b.Hi-b.Lo+1)
		}
	}
	return mass
}

// HitRate returns the fraction of all references a fully-associative
// LRU cache of the given block count would hit (cold misses count
// against it). It answers "how big must the L2 be" directly from the
// histogram; see HitMass for the exact-below/interpolated-above
// semantics.
func (h ReuseHistogram) HitRate(blocks int64) float64 {
	if h.Accesses == 0 {
		return 0
	}
	return h.HitMass(blocks) / float64(h.Accesses)
}

// WriteJSON writes the histogram as a single JSON document with a fixed
// field order.
func (h ReuseHistogram) WriteJSON(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "{\n  \"accesses\": %d,\n  \"cold\": %d,\n  \"block_edge\": %d,\n  \"fine_limit\": %d,\n  \"fine\": [",
		h.Accesses, h.Cold, h.BlockEdge, h.FineLimit); err != nil {
		return err
	}
	for i, n := range h.Fine {
		sep := ","
		if i == len(h.Fine)-1 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "%d%s", n, sep); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "],\n  \"buckets\": ["); err != nil {
		return err
	}
	for i, b := range h.Buckets {
		sep := ","
		if i == len(h.Buckets)-1 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "\n    {\"lo\": %d, \"hi\": %d, \"count\": %d}%s",
			b.Lo, b.Hi, b.Count, sep); err != nil {
			return err
		}
	}
	_, err := fmt.Fprint(w, "\n  ]\n}\n")
	return err
}
