package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

// stepClock is a non-deterministic-marked test clock: each reading
// advances by a fixed step, giving reproducible wall-regime recordings
// without marking the trace canonical.
type stepClock struct {
	ns   int64
	step int64
}

func (c *stepClock) Now() int64 {
	c.ns += c.step
	return c.ns
}

func TestTraceRegimeDetection(t *testing.T) {
	if tr := NewTrace(&FakeClock{Step: 1}); !tr.Canonical() {
		t.Fatal("FakeClock trace should be canonical")
	}
	if tr := NewTrace(&stepClock{step: 1}); tr.Canonical() {
		t.Fatal("stepClock trace should be wall-regime")
	}
	if tr := NewTrace(NewWallClock()); tr.Canonical() {
		t.Fatal("WallClock trace should be wall-regime")
	}
	var nilTrace *Trace
	if nilTrace.Canonical() {
		t.Fatal("nil trace is not canonical")
	}
}

func TestTraceNewTracePanicsWithoutClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTrace(nil) should panic")
		}
	}()
	NewTrace(nil)
}

func TestTextraceNilSafety(t *testing.T) {
	var tr *Trace
	k := tr.Track("render")
	c := tr.Counter("frames")
	if k != nil || c != nil {
		t.Fatal("nil trace must yield nil handles")
	}
	r := k.Begin("render", "frame", 0)
	r.End()
	k.Instant("", "publish", 1, "x")
	c.Add(5)
	c.Set(7)
	c.Sample(0, 1)
	c.Gauge(0)
	if c.Value() != 0 {
		t.Fatal("nil counter Value should be 0")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "{\"traceEvents\":[]}\n" {
		t.Fatalf("nil trace export = %q", got)
	}
	if tr.Report() != nil {
		t.Fatal("nil trace report should be nil")
	}
}

// TestTextraceDisabledAllocFree pins the acceptance criterion: every
// recording call on disabled (nil) handles is allocation-free.
func TestTextraceDisabledAllocFree(t *testing.T) {
	var tr *Trace
	k := tr.Track("render")
	c := tr.Counter("frames")
	allocs := testing.AllocsPerRun(1000, func() {
		r := k.Begin("render", "frame", 3)
		k.Instant("", "publish", 3, "")
		c.Add(1)
		c.Set(2)
		_ = c.Value()
		c.Sample(3, 4)
		c.Gauge(3)
		r.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled emit path allocates %.1f per op, want 0", allocs)
	}
}

func TestTrackRegistryShared(t *testing.T) {
	tr := NewTrace(&FakeClock{Step: 1})
	if tr.Track("a") != tr.Track("a") {
		t.Fatal("same name must return the same track")
	}
	if tr.Counter("c") != tr.Counter("c") {
		t.Fatal("same name must return the same counter")
	}
	if tr.Track("a") == tr.Track("b") {
		t.Fatal("distinct names must return distinct tracks")
	}
}

func TestCounterLiveValue(t *testing.T) {
	tr := NewTrace(&FakeClock{Step: 1})
	c := tr.Counter("bytes")
	c.Add(10)
	c.Add(-3)
	if got := c.Value(); got != 7 {
		t.Fatalf("Value = %d, want 7", got)
	}
	c.Set(42)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
}

func TestCounterGaugeSuppressedInCanonical(t *testing.T) {
	canon := NewTrace(&FakeClock{Step: 1})
	c := canon.Counter("depth")
	c.Set(9)
	c.Gauge(0)
	if n := len(c.snapshotSamples()); n != 0 {
		t.Fatalf("canonical Gauge recorded %d samples, want 0", n)
	}
	c.Sample(0, 5)
	if n := len(c.snapshotSamples()); n != 1 {
		t.Fatalf("canonical Sample recorded %d samples, want 1", n)
	}

	wall := NewTrace(&stepClock{step: 1})
	wc := wall.Counter("depth")
	wc.Set(9)
	wc.Gauge(0)
	s := wc.snapshotSamples()
	if len(s) != 1 || s[0].value != 9 {
		t.Fatalf("wall Gauge samples = %+v, want one sample of 9", s)
	}
}

// TestTextraceConcurrentRecording exercises the registry under -race: N
// goroutines each own a track and hammer shared counters while the main
// goroutine snapshots and exports concurrently.
func TestTextraceConcurrentRecording(t *testing.T) {
	const workers = 8
	const spans = 200
	tr := NewTrace(&FakeClock{Step: 3})
	shared := tr.Counter("shared")
	mon := NewMonitor(tr, spans)

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := tr.Track(fmt.Sprintf("worker %d", g))
			for i := 0; i < spans; i++ {
				r := k.Begin("work", "frame", int64(i))
				shared.Add(1)
				shared.Gauge(int64(i))
				k.Instant("", "edge", int64(i), "x")
				tr.Counter("late").Sample(int64(i), int64(i))
				r.End()
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = mon.Snapshot()
			if err := tr.WriteChromeTrace(io.Discard); err != nil {
				t.Errorf("concurrent export: %v", err)
				return
			}
			_ = tr.Report()
		}
	}()
	wg.Wait()
	<-done

	if got := shared.Value(); got != workers*spans {
		t.Fatalf("shared counter = %d, want %d", got, workers*spans)
	}
	for g := 0; g < workers; g++ {
		k := tr.Track(fmt.Sprintf("worker %d", g))
		nspans, _, open := k.status()
		if nspans != spans {
			t.Fatalf("worker %d closed %d spans, want %d", g, nspans, spans)
		}
		if open != "" {
			t.Fatalf("worker %d still has open span %q", g, open)
		}
	}
}

func TestTrackStatusOpenSpan(t *testing.T) {
	tr := NewTrace(&FakeClock{Step: 5})
	k := tr.Track("w")
	outer := k.Begin("", "outer", 0)
	inner := k.Begin("", "inner", 0)
	if _, _, open := k.status(); open != "inner" {
		t.Fatalf("open = %q, want inner", open)
	}
	inner.End()
	if _, _, open := k.status(); open != "outer" {
		t.Fatalf("open = %q, want outer", open)
	}
	outer.End()
	spans, busy, open := k.status()
	if open != "" || spans != 2 {
		t.Fatalf("status = (%d, %q), want (2, \"\")", spans, open)
	}
	// Only the depth-0 outer span counts toward busy.
	// Clock readings: outer.start=0, inner.start=5, inner.end=10,
	// outer.end=15 → outer dur 15.
	if busy != 15 {
		t.Fatalf("busy = %d, want 15", busy)
	}
}

// TestTraceReport drives the aggregation over a hand-built wall trace
// with a known layout: two workers, a straggler, and a two-step
// critical path.
func TestTraceReport(t *testing.T) {
	sc := &scriptClock{}
	tr := NewTrace(sc)

	a := tr.Track("worker a")
	b := tr.Track("worker b")
	// worker a: frame spans at [0,10), [10,20), [20,100) — the last is
	// a straggler (median 10, 80 > 2*10).
	for i, d := range []int64{10, 10, 80} {
		sc.at = [2]int64{sc.now, sc.now + d}
		r := a.Begin("render", "frame", int64(i))
		r.End()
	}
	// worker b: one span [100,130) that chains after a's last end.
	sc.at = [2]int64{100, 130}
	r := b.Begin("render", "frame", 3)
	r.End()

	rep := tr.Report()
	if rep.DurationNS != 130 {
		t.Fatalf("duration = %d, want 130", rep.DurationNS)
	}
	if len(rep.Tracks) != 2 {
		t.Fatalf("tracks = %d, want 2", len(rep.Tracks))
	}
	if rep.Tracks[0].Name != "worker a" || rep.Tracks[0].BusyNS != 100 {
		t.Fatalf("track[0] = %+v", rep.Tracks[0])
	}
	if len(rep.Phases) != 1 || rep.Phases[0].Name != "frame" ||
		rep.Phases[0].Count != 4 || rep.Phases[0].TotalNS != 130 ||
		rep.Phases[0].MaxNS != 80 || rep.Phases[0].MaxTrack != "worker a" {
		t.Fatalf("phase = %+v", rep.Phases[0])
	}
	// Phase durations [10,10,30,80]: median 30, so only the 80 ns span
	// passes the 2x bar.
	if len(rep.Stragglers) != 1 || rep.Stragglers[0].Seq != 2 ||
		rep.Stragglers[0].Median != 30 || rep.Stragglers[0].DurNS != 80 {
		t.Fatalf("stragglers = %+v", rep.Stragglers)
	}
	// Critical path: b's span [100,130) ← a's [20,100) ← a's [10,20) ←
	// a's [0,10), total 130, presented in time order.
	if rep.CriticalNS != 130 || len(rep.Critical) != 4 {
		t.Fatalf("critical = %d ns over %d steps, want 130 over 4",
			rep.CriticalNS, len(rep.Critical))
	}
	if rep.Critical[0].StartNS != 0 || rep.Critical[3].Track != "worker b" {
		t.Fatalf("critical path order wrong: %+v", rep.Critical)
	}

	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"textrace report", "worker a", "worker b",
		"frame", "straggler", "critical"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report text missing %q:\n%s", want, out)
		}
	}
}

// scriptClock returns at[0] then at[1] for each Begin/End pair.
type scriptClock struct {
	at  [2]int64
	i   int
	now int64
}

func (c *scriptClock) Now() int64 {
	v := c.at[c.i%2]
	c.i++
	c.now = v
	return v
}

func TestReportEmptyTrace(t *testing.T) {
	tr := NewTrace(&FakeClock{Step: 1})
	rep := tr.Report()
	if rep.DurationNS != 0 || len(rep.Tracks) != 0 || len(rep.Critical) != 0 {
		t.Fatalf("empty report = %+v", rep)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	var nilRep *TraceReport
	if err := nilRep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestChromeTraceGolden pins the canonical export bytes of a small
// hand-built trace, then validates the same document parses as the
// trace_event JSON-object shape Perfetto expects.
func TestChromeTraceGolden(t *testing.T) {
	tr := NewTrace(&FakeClock{Step: 7})
	k := tr.Track("replay group 0")
	r := k.Begin("render", "frame", 0)
	r.End()
	k.Instant("model", "exact-fallback", 1, "pull-2k")
	// Wall-only events must not appear in the canonical export.
	wr := k.Begin("", "replay", 0)
	wr.End()
	k.Instant("", "shard-publish", 0, "")
	c := tr.Counter("replayed/pull-2k")
	c.Sample(0, 1)
	c.Sample(1, 2)
	tr.Counter("empty") // no samples: skipped

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[
{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"textrace"}},
{"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"model"}},
{"ph":"i","pid":1,"tid":1,"ts":0.000,"s":"t","name":"exact-fallback","args":{"seq":1,"detail":"pull-2k"}},
{"ph":"M","pid":1,"tid":2,"name":"thread_name","args":{"name":"render"}},
{"ph":"X","pid":1,"tid":2,"ts":0.000,"dur":1.000,"name":"frame","args":{"seq":0}},
{"ph":"C","pid":1,"tid":0,"ts":0.000,"name":"replayed/pull-2k","args":{"value":1}},
{"ph":"C","pid":1,"tid":0,"ts":1.000,"name":"replayed/pull-2k","args":{"value":2}}
],"displayTimeUnit":"ms"}
`
	if got := buf.String(); got != want {
		t.Fatalf("canonical export mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	validateChromeShape(t, buf.Bytes())
}

// TestChromeTraceWallGolden pins the wall-regime export of the same
// recording under a reproducible step clock.
func TestChromeTraceWallGolden(t *testing.T) {
	tr := NewTrace(&stepClock{step: 500})
	k := tr.Track("render worker 0")
	r := k.Begin("render", "frame", 0)    // start=500
	r.End()                               // end=1000
	k.Instant("", "shard-publish", 0, "") // at=1500
	c := tr.Counter("frames-rendered")
	c.Add(1)
	c.Gauge(0) // at=2000, value 1

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[
{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"textrace"}},
{"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"render worker 0"}},
{"ph":"X","pid":1,"tid":1,"ts":0.500,"dur":0.500,"name":"frame","args":{"seq":0}},
{"ph":"i","pid":1,"tid":1,"ts":1.500,"s":"t","name":"shard-publish","args":{"seq":0}},
{"ph":"C","pid":1,"tid":0,"ts":2.000,"name":"frames-rendered","args":{"value":1}}
],"displayTimeUnit":"ms"}
`
	if got := buf.String(); got != want {
		t.Fatalf("wall export mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	validateChromeShape(t, buf.Bytes())
}

// validateChromeShape checks the exported document against the
// trace_event schema shape: a traceEvents array whose members carry the
// fields Perfetto requires per phase type.
func validateChromeShape(t *testing.T, data []byte) {
	t.Helper()
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
		DisplayUnit string                   `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayUnit)
	}
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		if ph == "" || name == "" {
			t.Fatalf("event %d missing ph/name: %v", i, ev)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event %d missing pid: %v", i, ev)
		}
		switch ph {
		case "M":
			args, ok := ev["args"].(map[string]interface{})
			if !ok || args["name"] == nil {
				t.Fatalf("metadata event %d missing args.name: %v", i, ev)
			}
		case "X":
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("X event %d missing ts: %v", i, ev)
			}
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("X event %d missing dur: %v", i, ev)
			}
		case "i":
			if s, _ := ev["s"].(string); s != "t" && s != "p" && s != "g" {
				t.Fatalf("instant event %d has scope %q: %v", i, s, ev)
			}
		case "C":
			args, ok := ev["args"].(map[string]interface{})
			if !ok || args["value"] == nil {
				t.Fatalf("counter event %d missing args.value: %v", i, ev)
			}
		default:
			t.Fatalf("event %d has unexpected phase %q", i, ph)
		}
	}
}

func TestUsecFormatting(t *testing.T) {
	cases := map[int64]string{
		0:     "0.000",
		1:     "0.001",
		999:   "0.999",
		1000:  "1.000",
		1500:  "1.500",
		-1500: "-1.500",
	}
	for ns, want := range cases {
		if got := usec(ns); got != want {
			t.Errorf("usec(%d) = %q, want %q", ns, got, want)
		}
	}
}
