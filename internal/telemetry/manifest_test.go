package telemetry

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"
)

func TestConfigHashStable(t *testing.T) {
	// Checked-in value: the hash must be stable across runs, platforms
	// and Go versions, since manifests are compared between machines.
	const want = "453ad41dabbfd00d"
	if got := ConfigHash("village", "608x448", "30"); got != want {
		t.Errorf("ConfigHash = %q, want %q", got, want)
	}
	// Separator must make part boundaries unambiguous.
	if ConfigHash("ab", "c") == ConfigHash("a", "bc") {
		t.Error("ConfigHash collides across part boundaries")
	}
	if ConfigHash() == ConfigHash("") {
		t.Error("ConfigHash conflates zero parts with one empty part")
	}
}

func TestManifestWriteJSON(t *testing.T) {
	m := NewManifest("texsim -sweep")
	if m.GoVersion != runtime.Version() || m.GOMAXPROCS < 1 {
		t.Fatalf("environment not captured: %+v", m)
	}
	m.ConfigHash = ConfigHash("village")
	m.Workload = "village"
	m.Frames = 30
	m.Specs = []string{"pull-16k", "l2-4m"}
	m.Totals = RunTotals{FrameRecords: 60, TexelRefs: 1234}
	m.Spans = []Span{{Name: "render", Start: 0, Dur: 5}}

	var sb strings.Builder
	if err := m.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("manifest is not valid JSON: %v\n%s", err, sb.String())
	}
	if back.Tool != m.Tool || back.Totals != m.Totals || len(back.Spans) != 1 {
		t.Errorf("round trip = %+v, want %+v", back, m)
	}
}
