// Live run monitor: stdlib-HTTP JSON snapshots of a running textrace
// registry. texsim -monitor addr serves one of these next to a sweep;
// every endpoint reads the same Trace the engines are recording into,
// so there is no second bookkeeping path to drift. The monitor never
// reads the wall clock itself — elapsed time comes from the trace's
// injected clock — so snapshot tests run entirely on a FakeClock.
package telemetry

import (
	"encoding/json"
	"net/http"
	"strings"
)

// CounterValue is one counter's live reading in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// TrackStatus is one track's live state in a snapshot.
type TrackStatus struct {
	Name string `json:"name"`
	// Open is the innermost span currently open, "" when idle.
	Open        string  `json:"open,omitempty"`
	Spans       int     `json:"spans"`
	BusyNS      int64   `json:"busy_ns"`
	Utilization float64 `json:"utilization"`
}

// SpecProgress is one swept spec's replay progress, derived from its
// "replayed/<spec>" counter.
type SpecProgress struct {
	Spec   string  `json:"spec"`
	Frames int64   `json:"frames_replayed"`
	Total  int64   `json:"frames_total,omitempty"`
	Done   float64 `json:"done"`
}

// MonitorSnapshot is the JSON document the monitor serves.
type MonitorSnapshot struct {
	ElapsedNS   int64          `json:"elapsed_ns"`
	FramesTotal int64          `json:"frames_total,omitempty"`
	Specs       []SpecProgress `json:"specs,omitempty"`
	Counters    []CounterValue `json:"counters,omitempty"`
	Tracks      []TrackStatus  `json:"tracks,omitempty"`
}

// replayedPrefix names the per-spec progress counters the engines
// maintain; the monitor derives SpecProgress rows from them.
const replayedPrefix = "replayed/"

// Monitor serves live snapshots of one trace registry. frames is the
// run's frame count, used to turn per-spec replay counters into
// fractions (0 = unknown).
type Monitor struct {
	tr     *Trace
	frames int64
}

// NewMonitor wraps a trace registry for serving.
func NewMonitor(tr *Trace, frames int) *Monitor {
	return &Monitor{tr: tr, frames: int64(frames)}
}

// Snapshot assembles the current state. Safe to call while engines are
// recording; a nil-trace monitor reports an empty snapshot.
func (m *Monitor) Snapshot() MonitorSnapshot {
	snap := MonitorSnapshot{FramesTotal: m.frames}
	if m.tr == nil {
		return snap
	}
	snap.ElapsedNS = m.tr.now()
	counters := m.tr.snapshotCounters()
	snap.Counters = make([]CounterValue, 0, len(counters))
	for _, c := range counters {
		v := c.Value()
		snap.Counters = append(snap.Counters, CounterValue{Name: c.name, Value: v})
		if spec, ok := strings.CutPrefix(c.name, replayedPrefix); ok {
			p := SpecProgress{Spec: spec, Frames: v, Total: m.frames}
			if m.frames > 0 {
				p.Done = float64(v) / float64(m.frames)
			}
			snap.Specs = append(snap.Specs, p)
		}
	}
	tracks := m.tr.snapshotTracks()
	snap.Tracks = make([]TrackStatus, 0, len(tracks))
	for _, k := range tracks {
		spans, busy, open := k.status()
		st := TrackStatus{Name: k.name, Open: open, Spans: spans, BusyNS: busy}
		if snap.ElapsedNS > 0 {
			st.Utilization = float64(busy) / float64(snap.ElapsedNS)
		}
		snap.Tracks = append(snap.Tracks, st)
	}
	return snap
}

// ServeHTTP serves the snapshot as JSON at / and /snapshot, and the
// full Chrome trace_event export so far at /trace.
func (m *Monitor) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/", "/snapshot":
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(m.Snapshot()); err != nil {
			// Client went away mid-write; nothing to clean up.
			return
		}
	case "/trace":
		w.Header().Set("Content-Type", "application/json")
		if err := m.tr.WriteChromeTrace(w); err != nil {
			return
		}
	default:
		http.NotFound(w, r)
	}
}
