// Sector-aware reuse profiling: one pass over the texel reference
// stream yields the three distance distributions an analytic cache model
// needs to predict the paper's whole capacity sweep.
//
// Per reference <block, sub> (an L2 block and the L1 line inside it):
//
//   - d1, the line stack distance: distinct other lines touched since
//     this line's previous reference. A fully-associative LRU L1 of N1
//     lines hits exactly the references with d1 < N1.
//   - d2, the block stack distance: distinct other blocks touched since
//     this block's previous reference. An LRU L2 of N2 blocks has the
//     block resident exactly when d2 < N2.
//   - M, the sector distance: the maximum d2 over the block's
//     consecutive reference intervals since this line's previous
//     reference. The line's sector bit survives in an N2-block L2
//     exactly when the block was never evicted in between, i.e. M < N2
//     — a whole-window distinct count would miss mid-window block
//     refreshes and over-predict evictions.
//
// The per-reference invariant d2 <= M <= d1 is what lets three 1-D
// histograms answer 2-D (L1 size x L2 size) questions exactly: every
// event set the model needs is nested, so joint counts collapse to
// differences of marginal hit masses (see internal/model/reusemodel).
package telemetry

// SectorProfile is the one-pass locality profile of a reference stream:
// the three distributions above, all collected at the same block
// granularity (BlockEdge-texel square L2 tiles over 4x4-texel lines).
type SectorProfile struct {
	// BlockEdge is the L2 tile edge in texels the profile was collected
	// at; predictions for a cache with a different tile size must be
	// refused (the block address space would be a different unit).
	BlockEdge int            `json:"block_edge"`
	Lines     ReuseHistogram `json:"lines"`
	Blocks    ReuseHistogram `json:"blocks"`
	Sector    ReuseHistogram `json:"sector"`
}

// SectorReuseCollector measures a SectorProfile over a dense block
// address space [0, numBlocks) with subPerBlock lines per block.
// Construct with NewSectorReuseCollector; Access is the hot path and
// performs no allocation.
type SectorReuseCollector struct {
	lines  *ReuseCollector
	blocks *ReuseCollector
	// sectorMax[line] is the maximum block-interval distance >= 2
	// observed since that line's previous reference. Distance-1 intervals
	// — the dominant case, from the two-block alternation of trilinear
	// filtering — are tracked lazily instead: closes[block] counts every
	// closed interval of the block and closeSnap[line] snapshots it at
	// the line's previous reference, so "did any interval close" is one
	// compare and the subPerBlock-wide maximum loop runs only for the
	// rare distances that could exceed 1. The counters are uint32 and
	// compared for equality only: they advance at most once per
	// reference, so they cannot lap each other within any feasible run,
	// and halving the per-line snapshot array keeps more of it cached.
	sectorMax   []int32
	closes      []uint32
	closeSnap   []uint32
	sector      distTally
	subPerBlock uint32
	blockEdge   int
}

// NewSectorReuseCollector sizes the collector for numBlocks L2 blocks of
// subPerBlock lines each, tagged with the tile edge (texels) of the
// block granularity.
func NewSectorReuseCollector(numBlocks, subPerBlock, blockEdge int) *SectorReuseCollector {
	if numBlocks <= 0 || subPerBlock <= 0 {
		panic("telemetry: sector reuse collector needs positive block/sub counts")
	}
	numLines := numBlocks * subPerBlock
	return &SectorReuseCollector{
		lines:       NewReuseCollector(numLines),
		blocks:      NewReuseCollector(numBlocks),
		sectorMax:   make([]int32, numLines),
		closes:      make([]uint32, numBlocks),
		closeSnap:   make([]uint32, numLines),
		sector:      newDistTally(numBlocks),
		subPerBlock: uint32(subPerBlock),
		blockEdge:   blockEdge,
	}
}

// Access records one reference to line sub of block. It is invoked once
// per texel reference on instrumented runs and must stay free of
// allocation and formatting.
//
// texsim:hot
func (c *SectorReuseCollector) Access(block uint32, sub uint16) {
	line := block*c.subPerBlock + uint32(sub)
	d1 := c.lines.accessDist(line)
	d2 := c.blocks.accessDist(block)
	if d2 > 0 {
		// A block interval just closed: it spans every line-of-this-
		// block's open window. Distance 1 is folded in lazily through the
		// close counter; anything larger feeds all the running maxima
		// eagerly. d2 == 0 (a same-block run) cannot move a maximum and
		// skips both.
		c.closes[block]++
		if d2 > 1 {
			base := block * c.subPerBlock
			m := int32(d2)
			for i := uint32(0); i < c.subPerBlock; i++ {
				if c.sectorMax[base+i] < m {
					c.sectorMax[base+i] = m
				}
			}
		}
	}
	c.sector.refs++
	if d1 < 0 {
		c.sector.cold++
	} else {
		m := int64(c.sectorMax[line])
		if m == 0 && c.closes[block] != c.closeSnap[line] {
			m = 1
		}
		c.sector.record(m)
	}
	c.sectorMax[line] = 0
	c.closeSnap[line] = c.closes[block]
}

// RecordRepeats tallies n additional references to the most recently
// accessed line. Each such reference has distance 0 in all three
// distributions and leaves every structure untouched, so callers that
// see the texel stream's same-line runs can batch them into one call
// instead of n Access calls — and because pure counts are
// order-independent, the batch may cover an entire run and be flushed
// once at snapshot time.
//
// texsim:hot
func (c *SectorReuseCollector) RecordRepeats(n int64) {
	if n <= 0 {
		return
	}
	c.lines.tally.refs += n
	c.lines.tally.hist[0] += n
	c.lines.tally.fine[0] += n
	c.blocks.tally.refs += n
	c.blocks.tally.hist[0] += n
	c.blocks.tally.fine[0] += n
	c.sector.refs += n
	c.sector.hist[0] += n
	c.sector.fine[0] += n
}

// RecordAlternations tallies n references alternating between the two
// most recently accessed lines, which the caller guarantees live in the
// same block (the bilinear ping-pong across a line boundary): each is
// line distance 1, block distance 0, and sector distance 0 — the block
// never closes an interval, so no sector state can move. Only the
// line-stack top-two order depends on n: an odd count leaves the other
// line on top, fixed here by a register swap.
//
// texsim:hot
func (c *SectorReuseCollector) RecordAlternations(n int64) {
	if n <= 0 {
		return
	}
	c.lines.tally.refs += n
	c.lines.tally.hist[1] += n
	c.lines.tally.fine[1] += n
	c.blocks.tally.refs += n
	c.blocks.tally.hist[0] += n
	c.blocks.tally.fine[0] += n
	c.sector.refs += n
	c.sector.hist[0] += n
	c.sector.fine[0] += n
	if n&1 == 1 {
		c.lines.regs[0], c.lines.regs[1] = c.lines.regs[1], c.lines.regs[0]
	}
}

// RecordCrossAlternations tallies n references alternating between the
// two most recently accessed lines when they live in different blocks —
// the trilinear ping-pong between two mip levels. Each reference is line
// distance 1 and block distance 1, and each closes exactly one
// distance-1 interval of its own block, so its sector distance is 1
// (nothing else can have raised the running maximum: the two real
// accesses that opened the run reset both lines' maxima, and every
// interval since has distance 1). The blocks' close counters advance by
// each side's share of the run — the side referenced last gets the odd
// reference — and both lines' close snapshots land on their block's
// final count, because each line's last reference coincides with its
// block's last closed interval. (lastBlock, lastSub) must be the side
// referenced last; an odd count leaves the other side's line and block
// on top of their stacks, fixed here by register swaps.
//
// texsim:hot
func (c *SectorReuseCollector) RecordCrossAlternations(n int64, lastBlock uint32, lastSub uint16, prevBlock uint32, prevSub uint16) {
	if n <= 0 {
		return
	}
	c.lines.tally.refs += n
	c.lines.tally.hist[1] += n
	c.lines.tally.fine[1] += n
	c.blocks.tally.refs += n
	c.blocks.tally.hist[1] += n
	c.blocks.tally.fine[1] += n
	c.sector.refs += n
	c.sector.hist[1] += n
	c.sector.fine[1] += n
	c.closes[lastBlock] += uint32((n + 1) / 2)
	c.closes[prevBlock] += uint32(n / 2)
	c.closeSnap[lastBlock*c.subPerBlock+uint32(lastSub)] = c.closes[lastBlock]
	c.closeSnap[prevBlock*c.subPerBlock+uint32(prevSub)] = c.closes[prevBlock]
	if n&1 == 1 {
		c.lines.regs[0], c.lines.regs[1] = c.lines.regs[1], c.lines.regs[0]
		c.blocks.regs[0], c.blocks.regs[1] = c.blocks.regs[1], c.blocks.regs[0]
	}
}

// Profile snapshots the collector.
func (c *SectorReuseCollector) Profile() SectorProfile {
	p := SectorProfile{
		BlockEdge: c.blockEdge,
		Lines:     c.lines.Histogram(),
		Blocks:    c.blocks.Histogram(),
		Sector:    c.sector.histogram(),
	}
	p.Blocks.BlockEdge = c.blockEdge
	p.Sector.BlockEdge = c.blockEdge
	return p
}
