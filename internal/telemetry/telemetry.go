// Package telemetry ("texscope") is the simulator's deterministic
// observability layer. The paper's entire methodology is measurement —
// working sets, hit rates and download bandwidth per frame (§3.2, §4) —
// and this package surfaces those quantities *inside* a run instead of
// only as end-of-run aggregates. It has four parts:
//
//   - a per-frame metric stream: an Emitter interface with JSONL and CSV
//     sinks that receives one FrameMetrics record per simulated frame and
//     per cache configuration, in a deterministic order that is
//     byte-identical regardless of how many replay workers produced it;
//   - span timing: nestable phases recorded through an injectable
//     monotonic Clock, so tests drive a FakeClock and stay deterministic
//     while production runs confine wall-clock data to a sidecar file
//     that never feeds simulation output;
//   - a reuse-distance histogram collector: an O(log n) tree-based stack
//     distance counter over L2 block addresses (see reuse.go);
//   - a run manifest: environment and configuration fingerprints that make
//     every results file traceable to the run that produced it.
//
// Everything here is standard library only. The simulator side of the
// wiring lives in internal/core; the rule is that telemetry may observe
// the simulation but must never feed back into it.
//
// This package is the only one allowlisted for texlint's determinism
// analyzer (texlint.conf.json): WallClock legitimately reads the wall
// clock, and the allowlist confines that privilege to this package — a
// time.Now anywhere else in the module still fails the lint suite.
package telemetry

import (
	"fmt"
	"io"
)

// FrameMetrics is one frame of one cache configuration, flattened to
// plain counters so every sink can serialise it without reflection.
// Workload and Spec identify the run ("" Spec for single-configuration
// runs); Frame is the zero-based frame index within it.
type FrameMetrics struct {
	Workload string
	Spec     string
	Frame    int
	// Pixels is the textured pixels rasterized this frame.
	Pixels int64
	// L1Accesses equals the texel references presented to the hierarchy.
	L1Accesses int64
	L1Misses   int64
	// L2 classification counts (zero without an L2).
	L2FullHits    int64
	L2PartialHits int64
	L2FullMisses  int64
	L2Evictions   int64
	// L2SearchSteps is the clock-hand march length accumulated over the
	// frame's victim searches; L2MaxSearch the worst single search so far.
	L2SearchSteps int64
	L2MaxSearch   int
	TLBLookups    int64
	TLBHits       int64
	// Byte counters follow Figure 7: HostBytes crosses AGP/system memory,
	// L2ReadBytes is L2->L1 fills, L2WriteBytes host->L2 downloads.
	HostBytes    int64
	L2ReadBytes  int64
	L2WriteBytes int64
}

// Emitter consumes the per-frame metric stream. Implementations need not
// be safe for concurrent use: the simulator guarantees single-goroutine
// emission in a deterministic frame-major, spec-minor order (the parallel
// sweep engine buffers per worker and merges before emitting).
type Emitter interface {
	Frame(m FrameMetrics)
}

// jsonlLine writes one record as a single JSON object line; field order
// is fixed so output is byte-stable across runs and Go versions.
func jsonlLine(w io.Writer, m FrameMetrics) error {
	_, err := fmt.Fprintf(w,
		`{"workload":%q,"spec":%q,"frame":%d,"pixels":%d,`+
			`"l1_accesses":%d,"l1_misses":%d,`+
			`"l2_full_hits":%d,"l2_partial_hits":%d,"l2_full_misses":%d,`+
			`"l2_evictions":%d,"l2_search_steps":%d,"l2_max_search":%d,`+
			`"tlb_lookups":%d,"tlb_hits":%d,`+
			`"host_bytes":%d,"l2_read_bytes":%d,"l2_write_bytes":%d}`+"\n",
		m.Workload, m.Spec, m.Frame, m.Pixels,
		m.L1Accesses, m.L1Misses,
		m.L2FullHits, m.L2PartialHits, m.L2FullMisses,
		m.L2Evictions, m.L2SearchSteps, m.L2MaxSearch,
		m.TLBLookups, m.TLBHits,
		m.HostBytes, m.L2ReadBytes, m.L2WriteBytes)
	return err
}

// JSONL streams one JSON object per line. Errors are sticky and surfaced
// through Err, so the per-frame path stays a single call.
type JSONL struct {
	w   io.Writer
	err error
}

// NewJSONL returns a JSONL sink writing to w.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{w: w} }

// Frame emits one record.
func (s *JSONL) Frame(m FrameMetrics) {
	if s.err != nil {
		return
	}
	s.err = jsonlLine(s.w, m)
}

// Err returns the first write error, if any.
func (s *JSONL) Err() error { return s.err }

// csvHeader is the CSV column order, matching the JSONL field order.
const csvHeader = "workload,spec,frame,pixels," +
	"l1_accesses,l1_misses," +
	"l2_full_hits,l2_partial_hits,l2_full_misses," +
	"l2_evictions,l2_search_steps,l2_max_search," +
	"tlb_lookups,tlb_hits," +
	"host_bytes,l2_read_bytes,l2_write_bytes\n"

// CSV streams records as comma-separated rows under a fixed header.
type CSV struct {
	w      io.Writer
	err    error
	header bool
}

// NewCSV returns a CSV sink writing to w. The header row is emitted
// before the first record.
func NewCSV(w io.Writer) *CSV { return &CSV{w: w} }

// Frame emits one row.
func (s *CSV) Frame(m FrameMetrics) {
	if s.err != nil {
		return
	}
	if !s.header {
		s.header = true
		if _, s.err = io.WriteString(s.w, csvHeader); s.err != nil {
			return
		}
	}
	_, s.err = fmt.Fprintf(s.w,
		"%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
		m.Workload, m.Spec, m.Frame, m.Pixels,
		m.L1Accesses, m.L1Misses,
		m.L2FullHits, m.L2PartialHits, m.L2FullMisses,
		m.L2Evictions, m.L2SearchSteps, m.L2MaxSearch,
		m.TLBLookups, m.TLBHits,
		m.HostBytes, m.L2ReadBytes, m.L2WriteBytes)
}

// Err returns the first write error, if any.
func (s *CSV) Err() error { return s.err }

// Buffer records the stream in memory. The parallel sweep engine gives
// each replay worker its own Buffer-like slot and merges in spec order;
// tests use it to assert on emitted records directly.
type Buffer struct {
	Records []FrameMetrics
}

// Frame appends one record.
func (b *Buffer) Frame(m FrameMetrics) { b.Records = append(b.Records, m) }

// Replay re-emits every buffered record into e, in order.
func (b *Buffer) Replay(e Emitter) {
	for _, m := range b.Records {
		e.Frame(m)
	}
}

// RunTotals aggregates a metric stream for the run manifest.
type RunTotals struct {
	FrameRecords int64 `json:"frame_records"`
	TexelRefs    int64 `json:"texel_refs"`
	L1Misses     int64 `json:"l1_misses"`
	HostBytes    int64 `json:"host_bytes"`
	L2ReadBytes  int64 `json:"l2_read_bytes"`
	L2WriteBytes int64 `json:"l2_write_bytes"`
}

// Totals is an Emitter accumulating RunTotals.
type Totals struct {
	T RunTotals
}

// Frame accumulates one record.
func (t *Totals) Frame(m FrameMetrics) {
	t.T.FrameRecords++
	t.T.TexelRefs += m.L1Accesses
	t.T.L1Misses += m.L1Misses
	t.T.HostBytes += m.HostBytes
	t.T.L2ReadBytes += m.L2ReadBytes
	t.T.L2WriteBytes += m.L2WriteBytes
}

// Tee duplicates the stream to every given emitter, in argument order.
func Tee(emitters ...Emitter) Emitter { return teeEmitter(emitters) }

type teeEmitter []Emitter

func (t teeEmitter) Frame(m FrameMetrics) {
	for _, e := range t {
		e.Frame(m)
	}
}
