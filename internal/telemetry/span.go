// Span timing: nestable phases recorded through an injectable monotonic
// clock. The simulator's sweep engine opens spans around its phases
// (render, encode, shard-publish, replay-per-spec, assemble); tests
// inject a FakeClock so recorded durations are a pure function of the
// test, and production runs use WallClock, whose readings are confined
// to telemetry sidecar files and never feed simulation output.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Clock yields monotonic nanoseconds. Implementations must be safe for
// use from a single goroutine; Tracer serialises access internally.
type Clock interface {
	Now() int64
}

// WallClock reads the process monotonic clock, reported relative to its
// construction. This is the one sanctioned wall-clock source in the
// module (the texlint determinism allowlist covers only this package).
type WallClock struct {
	start time.Time
}

// NewWallClock starts a wall clock at zero.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// Now returns nanoseconds since construction.
func (c *WallClock) Now() int64 { return time.Since(c.start).Nanoseconds() }

// FakeClock is a deterministic Clock for tests: Now returns the current
// reading and then advances it by Step, and Advance moves it explicitly.
type FakeClock struct {
	NS   int64
	Step int64
}

// Now returns the current reading and advances by Step.
func (c *FakeClock) Now() int64 {
	v := c.NS
	c.NS += c.Step
	return v
}

// Advance moves the clock forward by d nanoseconds.
func (c *FakeClock) Advance(d int64) { c.NS += d }

// Span is one completed phase. Depth is the nesting level at which the
// span was opened (0 = top level); Start and Dur are clock nanoseconds.
type Span struct {
	Name  string `json:"name"`
	Depth int    `json:"depth"`
	Start int64  `json:"start_ns"`
	Dur   int64  `json:"dur_ns"`
}

// Tracer records spans. It is safe for concurrent use: the parallel
// sweep engine opens replay spans from several workers at once. A nil
// *Tracer is valid and records nothing, so instrumented code needs no
// nil checks at every site.
type Tracer struct {
	mu    sync.Mutex
	clock Clock
	depth int
	spans []Span
}

// NewTracer returns a tracer reading time from clock.
func NewTracer(clock Clock) *Tracer {
	if clock == nil {
		panic("telemetry: NewTracer requires a clock")
	}
	return &Tracer{clock: clock}
}

// ActiveSpan is an open span; End closes it.
type ActiveSpan struct {
	t     *Tracer
	name  string
	depth int
	start int64
}

// Start opens a span at the current nesting depth. On a nil tracer it
// returns nil, and End on a nil span is a no-op.
func (t *Tracer) Start(name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &ActiveSpan{t: t, name: name, depth: t.depth, start: t.clock.Now()}
	t.depth++
	return s
}

// End closes the span, recording its duration.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.depth > 0 {
		t.depth--
	}
	t.spans = append(t.spans, Span{
		Name:  s.name,
		Depth: s.depth,
		Start: s.start,
		Dur:   t.clock.Now() - s.start,
	})
}

// Spans returns the completed spans ordered by (Start, Depth, Name) —
// a stable presentation regardless of the order concurrent workers
// happened to close them in. A nil tracer yields nil.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Depth != b.Depth {
			return a.Depth < b.Depth
		}
		return a.Name < b.Name
	})
	return out
}

// WriteJSON writes the spans as one JSON object per line (a sidecar
// stream, same shape as the metric stream).
func (t *Tracer) WriteJSON(w io.Writer) error {
	for _, s := range t.Spans() {
		if _, err := fmt.Fprintf(w,
			`{"name":%q,"depth":%d,"start_ns":%d,"dur_ns":%d}`+"\n",
			s.Name, s.Depth, s.Start, s.Dur); err != nil {
			return err
		}
	}
	return nil
}
