// textrace: the concurrent, worker-attributed tracing registry. The
// texscope Tracer (span.go) records nestable phase spans with no worker
// identity; textrace records what every worker of the three concurrent
// engines (render farm, partitioned replay pool, fast-sweep probe) is
// doing — per-worker span tracks, counter tracks, and instant events
// for protocol edges (shard publish, chunk abort, model refusal) — and
// exports the whole run as Chrome trace_event JSON (traceevent.go) that
// Perfetto or chrome://tracing opens directly.
//
// Two regimes share one recording API, selected by the injected clock:
//
//   - wall regime (WallClock or any other real clock): events carry real
//     timestamps and export on their physical tracks ("render worker 3",
//     "replay group 1"), showing true concurrency, stalls, stragglers;
//   - canonical regime (the clock implements DeterministicClock, as
//     FakeClock does): the export is a pure function of the logical work
//     performed — events regroup onto their logical tracks, timestamps
//     are virtual positions in canonical order, and scheduling-dependent
//     gauge samples are suppressed — so the exported bytes are identical
//     at every Parallelism / RenderWorkers setting.
//
// Every type is nil-safe: a nil *Trace yields nil *Track and *Counter
// handles whose methods do nothing and allocate nothing, so instrumented
// engine code pays one predictable branch when tracing is disabled.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// DeterministicClock marks a Clock whose readings are a pure function of
// call order rather than real time. A Trace built on such a clock
// records in the canonical regime: its export depends only on the
// logical events recorded, never on goroutine scheduling.
type DeterministicClock interface {
	DeterministicClock()
}

// DeterministicClock marks FakeClock as canonical: a trace driven by a
// FakeClock exports identical bytes at every worker-count setting.
func (*FakeClock) DeterministicClock() {}

// Trace is the registry of span tracks and counter tracks for one run.
// Track and Counter return one shared instance per name, so engine
// layers that cannot see each other (sweep coordinator, farm workers,
// chunk pool) still land on the same timeline.
type Trace struct {
	clockMu sync.Mutex
	clock   Clock
	// canonical is set when clock implements DeterministicClock; it
	// switches the export regime and suppresses Gauge samples.
	canonical bool

	mu       sync.Mutex
	tracks   []*Track   // registration order; export sorts by name
	counters []*Counter // registration order; export sorts by name
	tracksBy map[string]*Track
	countBy  map[string]*Counter
}

// NewTrace returns a trace registry reading time from clock.
func NewTrace(clock Clock) *Trace {
	if clock == nil {
		panic("telemetry: NewTrace requires a clock")
	}
	_, canonical := clock.(DeterministicClock)
	return &Trace{
		clock:     clock,
		canonical: canonical,
		tracksBy:  map[string]*Track{},
		countBy:   map[string]*Counter{},
	}
}

// Canonical reports whether the trace records in the canonical
// (deterministic-export) regime. False on a nil trace.
func (t *Trace) Canonical() bool { return t != nil && t.canonical }

// now reads the clock. Clock implementations need not be goroutine-safe
// (FakeClock mutates itself); the trace serialises access.
func (t *Trace) now() int64 {
	t.clockMu.Lock()
	v := t.clock.Now()
	t.clockMu.Unlock()
	return v
}

// Track returns the named span track, creating it on first use. A track
// is the physical recording surface for one goroutine's events: Begin
// and End must be called from a single owner at a time, while Snapshot
// and export may read it concurrently. Nil trace, nil track.
func (t *Trace) Track(name string) *Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	k := t.tracksBy[name]
	if k == nil {
		k = &Track{tr: t, name: name}
		t.tracksBy[name] = k
		t.tracks = append(t.tracks, k)
	}
	return k
}

// Counter returns the named counter track, creating it on first use.
// Counters are fully concurrent: any goroutine may Add, Set, Sample or
// Gauge. Nil trace, nil counter.
func (t *Trace) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.countBy[name]
	if c == nil {
		c = &Counter{tr: t, name: name}
		t.countBy[name] = c
		t.counters = append(t.counters, c)
	}
	return c
}

// Event kinds within a track.
const (
	evSpan uint8 = iota
	evInstant
)

// traceEvent is one recorded span or instant. logical names the logical
// track the event belongs to in the canonical export ("" = wall-only:
// the event is physical-schedule detail and is dropped from canonical
// output). seq is the event's deterministic ordering key within its
// logical track (typically a frame or spec index); arg is an optional
// label. dur is -1 while a span is open.
type traceEvent struct {
	kind    uint8
	depth   int
	logical string
	name    string
	arg     string
	seq     int64
	start   int64
	dur     int64
}

// Track is one physical span timeline. Events are recorded by a single
// owning goroutine; the mutex exists so snapshots and exports can read
// a live track safely.
type Track struct {
	tr   *Trace
	name string

	mu     sync.Mutex
	events []traceEvent
	open   []int // indices of open spans, innermost last
	busy   int64 // summed duration of closed depth-0 spans
}

// Region is an open span handle; End closes it. It is a value type so
// Begin/End pairs allocate nothing.
type Region struct {
	k   *Track
	idx int
}

// Begin opens a span on the track. logical names the canonical-regime
// track ("" records a wall-only span); seq is the deterministic order
// key (frame index, spec index). Nil track: returns a no-op Region.
func (k *Track) Begin(logical, name string, seq int64) Region {
	if k == nil {
		return Region{}
	}
	start := k.tr.now()
	k.mu.Lock()
	idx := len(k.events)
	k.events = append(k.events, traceEvent{
		kind:    evSpan,
		depth:   len(k.open),
		logical: logical,
		name:    name,
		seq:     seq,
		start:   start,
		dur:     -1,
	})
	k.open = append(k.open, idx)
	k.mu.Unlock()
	return Region{k: k, idx: idx}
}

// End closes the span, recording its duration. No-op on a zero Region.
func (r Region) End() {
	if r.k == nil {
		return
	}
	end := r.k.tr.now()
	r.k.mu.Lock()
	ev := &r.k.events[r.idx]
	ev.dur = end - ev.start
	if ev.dur < 0 {
		ev.dur = 0
	}
	if ev.depth == 0 {
		r.k.busy += ev.dur
	}
	// Spans close LIFO per owner; scan from the innermost in case an
	// outer Region was ended out of order.
	for i := len(r.k.open) - 1; i >= 0; i-- {
		if r.k.open[i] == r.idx {
			r.k.open = append(r.k.open[:i], r.k.open[i+1:]...)
			break
		}
	}
	r.k.mu.Unlock()
}

// Instant records a zero-duration event (a protocol edge: shard publish,
// chunk abort, model refusal). logical and seq follow Begin's contract;
// arg is an optional detail label. No-op on a nil track.
func (k *Track) Instant(logical, name string, seq int64, arg string) {
	if k == nil {
		return
	}
	start := k.tr.now()
	k.mu.Lock()
	k.events = append(k.events, traceEvent{
		kind:    evInstant,
		depth:   len(k.open),
		logical: logical,
		name:    name,
		arg:     arg,
		seq:     seq,
		start:   start,
	})
	k.mu.Unlock()
}

// snapshotEvents copies the track's recorded events.
func (k *Track) snapshotEvents() []traceEvent {
	k.mu.Lock()
	out := append([]traceEvent(nil), k.events...)
	k.mu.Unlock()
	return out
}

// status reads the track's live aggregates: closed-span count, busy
// nanoseconds, and the innermost open span's name ("" when idle).
func (k *Track) status() (spans int, busy int64, open string) {
	k.mu.Lock()
	for i := range k.events {
		if k.events[i].kind == evSpan && k.events[i].dur >= 0 {
			spans++
		}
	}
	busy = k.busy
	if n := len(k.open); n > 0 {
		open = k.events[k.open[n-1]].name
	}
	k.mu.Unlock()
	return spans, busy, open
}

// counterSample is one recorded point on a counter track.
type counterSample struct {
	seq   int64
	at    int64
	value int64
}

// Counter is one numeric track: a live atomic value (Add/Set/Value, the
// allocation-free per-event path) plus recorded samples that become the
// exported counter timeline (Sample/Gauge).
type Counter struct {
	tr   *Trace
	name string
	v    atomic.Int64

	mu      sync.Mutex
	samples []counterSample
}

// Add adjusts the live value by d. Nil-safe and allocation-free: this is
// the per-event emit path instrumented code may call at chunk rate.
//
// texlint:hotpath
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Set replaces the live value.
//
// texlint:hotpath
func (c *Counter) Set(v int64) {
	if c == nil {
		return
	}
	c.v.Store(v)
}

// Value reads the live value; 0 on a nil counter.
//
// texlint:hotpath
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Sample records value as the counter's reading at deterministic
// position seq, and makes it the live value. The value must itself be
// deterministic (a pure function of seq, like "frames of spec S
// replayed"): samples are exported in both regimes and are what the
// canonical byte-identity contract pins.
func (c *Counter) Sample(seq, value int64) {
	if c == nil {
		return
	}
	c.v.Store(value)
	at := c.tr.now()
	c.mu.Lock()
	c.samples = append(c.samples, counterSample{seq: seq, at: at, value: value})
	c.mu.Unlock()
}

// Gauge records the live value at position seq — a scheduling-dependent
// reading (queue depth, bytes in flight), so in the canonical regime it
// records nothing and the export stays parallelism-invariant.
func (c *Counter) Gauge(seq int64) {
	if c == nil || c.tr.canonical {
		return
	}
	c.Sample(seq, c.v.Load())
}

// snapshotSamples copies the counter's recorded samples.
func (c *Counter) snapshotSamples() []counterSample {
	c.mu.Lock()
	out := append([]counterSample(nil), c.samples...)
	c.mu.Unlock()
	return out
}

// snapshotTracks returns the registered tracks sorted by name.
func (t *Trace) snapshotTracks() []*Track {
	t.mu.Lock()
	tracks := append([]*Track(nil), t.tracks...)
	t.mu.Unlock()
	sort.Slice(tracks, func(i, j int) bool { return tracks[i].name < tracks[j].name })
	return tracks
}

// snapshotCounters returns the registered counters sorted by name.
func (t *Trace) snapshotCounters() []*Counter {
	t.mu.Lock()
	counters := append([]*Counter(nil), t.counters...)
	t.mu.Unlock()
	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	return counters
}
