package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// monitorFixture builds a mid-run trace on a FakeClock: one render
// track with an open frame, two spec progress counters, and a gauge.
func monitorFixture() *Trace {
	tr := NewTrace(&FakeClock{Step: 100})
	k := tr.Track("render worker 0")
	r := k.Begin("render", "frame", 0)
	r.End()
	k.Begin("render", "frame", 1) // left open: mid-run
	tr.Counter("replayed/pull-2k").Sample(1, 2)
	tr.Counter("replayed/pull-2k").Set(2)
	tr.Counter("replayed/l2-2m").Set(1)
	tr.Counter("chunk-bytes-inflight").Set(512 << 10)
	return tr
}

func TestMonitorSnapshot(t *testing.T) {
	m := NewMonitor(monitorFixture(), 4)
	snap := m.Snapshot()
	if snap.ElapsedNS <= 0 {
		t.Fatal("elapsed should advance under FakeClock")
	}
	if snap.FramesTotal != 4 {
		t.Fatalf("frames_total = %d", snap.FramesTotal)
	}
	if len(snap.Specs) != 2 {
		t.Fatalf("specs = %+v, want 2 entries", snap.Specs)
	}
	// Counters (and thus specs) are sorted by name: l2-2m before pull-2k.
	if snap.Specs[0].Spec != "l2-2m" || snap.Specs[0].Frames != 1 || snap.Specs[0].Done != 0.25 {
		t.Fatalf("specs[0] = %+v", snap.Specs[0])
	}
	if snap.Specs[1].Spec != "pull-2k" || snap.Specs[1].Done != 0.5 {
		t.Fatalf("specs[1] = %+v", snap.Specs[1])
	}
	if len(snap.Counters) != 3 {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	if snap.Counters[0].Name != "chunk-bytes-inflight" || snap.Counters[0].Value != 512<<10 {
		t.Fatalf("counters[0] = %+v", snap.Counters[0])
	}
	if len(snap.Tracks) != 1 {
		t.Fatalf("tracks = %+v", snap.Tracks)
	}
	tk := snap.Tracks[0]
	if tk.Name != "render worker 0" || tk.Spans != 1 || tk.Open != "frame" {
		t.Fatalf("track = %+v", tk)
	}
	if tk.BusyNS <= 0 || tk.Utilization <= 0 {
		t.Fatalf("track busy/utilization = %+v", tk)
	}
}

func TestMonitorNilTrace(t *testing.T) {
	m := NewMonitor(nil, 0)
	snap := m.Snapshot()
	if snap.ElapsedNS != 0 || len(snap.Tracks) != 0 || len(snap.Counters) != 0 {
		t.Fatalf("nil-trace snapshot = %+v", snap)
	}
}

func TestMonitorEndpoints(t *testing.T) {
	m := NewMonitor(monitorFixture(), 4)
	for _, path := range []string{"/", "/snapshot"} {
		rec := httptest.NewRecorder()
		m.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s -> %d", path, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s content-type %q", path, ct)
		}
		var snap MonitorSnapshot
		if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
			t.Fatalf("%s body: %v", path, err)
		}
		if len(snap.Specs) != 2 || snap.FramesTotal != 4 {
			t.Fatalf("%s snapshot = %+v", path, snap)
		}
	}

	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("/trace -> %d", rec.Code)
	}
	if !strings.HasPrefix(rec.Body.String(), `{"traceEvents":[`) {
		t.Fatalf("/trace body = %q", rec.Body.String()[:40])
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/trace not valid JSON: %v", err)
	}

	rec = httptest.NewRecorder()
	m.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != 404 {
		t.Fatalf("/nope -> %d", rec.Code)
	}
}
