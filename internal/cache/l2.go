package cache

import (
	"fmt"

	"texcache/internal/texture"
)

// L2Result classifies one L2 access given that an L1 miss occurred (§5.2,
// Figure 7).
type L2Result int

const (
	// L2FullHit: a physical block is allocated to the virtual block and
	// the required L1 sub-block has been downloaded (steps C and D yes).
	L2FullHit L2Result = iota
	// L2PartialHit: a physical block is allocated but the sub-block must
	// be downloaded from system memory (step D no -> step F).
	L2PartialHit
	// L2FullMiss: no physical block is allocated; the clock must find a
	// victim, then the sub-block is downloaded (step E -> F).
	L2FullMiss
)

// String implements fmt.Stringer.
func (r L2Result) String() string {
	switch r {
	case L2FullHit:
		return "full-hit"
	case L2PartialHit:
		return "partial-hit"
	case L2FullMiss:
		return "full-miss"
	default:
		return fmt.Sprintf("L2Result(%d)", int(r))
	}
}

// L2Config parameterises an L2 texture cache.
type L2Config struct {
	// SizeBytes is the L2 cache memory capacity (the paper studies 2, 4
	// and 8 MB).
	SizeBytes int
	// Layout gives the L2 tile size and the L1 sub-block size (the
	// paper studies L2 tiles of 8x8, 16x16 and 32x32 texels over 4x4
	// sub-blocks).
	Layout texture.TileLayout
	// Policy selects the replacement algorithm; Clock is the paper's.
	Policy PolicyKind
	// NoSectorMapping disables sector mapping: a full miss downloads the
	// entire L2 block rather than just the required L1 sub-block. The
	// paper employs sector mapping to avoid exceeding pull-architecture
	// download bandwidth; this switch is the A3 ablation.
	NoSectorMapping bool
}

// L2Stats counts L2 cache activity. Accesses = FullHits + PartialHits +
// FullMisses and equals the number of L1 misses presented.
type L2Stats struct {
	FullHits    int64
	PartialHits int64
	FullMisses  int64
	// Evictions counts victims that held a valid virtual block.
	Evictions int64
	// SearchSteps accumulates clock-march length over all victim
	// searches; MaxSearch is the worst single search ("pesky" behaviour).
	SearchSteps int64
	MaxSearch   int
}

// Accesses returns the total L2 lookups.
func (s L2Stats) Accesses() int64 { return s.FullHits + s.PartialHits + s.FullMisses }

// FullHitRate returns full hits as a fraction of L2 accesses (the paper
// reports L2 rates conditioned on an L1 miss having occurred).
func (s L2Stats) FullHitRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.FullHits) / float64(a)
	}
	return 0
}

// PartialHitRate returns partial hits as a fraction of L2 accesses.
func (s L2Stats) PartialHitRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.PartialHits) / float64(a)
	}
	return 0
}

// Sub subtracts an earlier snapshot.
func (s L2Stats) Sub(o L2Stats) L2Stats {
	return L2Stats{
		FullHits:    s.FullHits - o.FullHits,
		PartialHits: s.PartialHits - o.PartialHits,
		FullMisses:  s.FullMisses - o.FullMisses,
		Evictions:   s.Evictions - o.Evictions,
		SearchSteps: s.SearchSteps - o.SearchSteps,
		MaxSearch:   s.MaxSearch, // max is not meaningfully subtractable
	}
}

// pageEntry is one t_table[] entry (paper Appendix): the sector bit-vector
// of downloaded L1 sub-blocks and the physical block handle (zero when no
// block is allocated, else physical index + 1).
type pageEntry struct {
	sector uint64
	block  int32
}

// L2Cache is the virtual-memory-organised L2 texture cache: a texture page
// table maps virtual blocks <tid, L2> (flattened to page-table indices by
// the driver's tstart allocation) to physical blocks in L2 cache memory,
// with a Block Replacement List driving victim selection.
type L2Cache struct {
	cfg    L2Config
	table  []pageEntry
	owner  []int32 // BRL t_index: page-table index + 1, or 0 if free
	free   []int32 // unallocated physical blocks (never-used or freed)
	policy Policy
	// clock is non-nil when the configured policy is the paper's clock
	// algorithm; Access dispatches through it statically so the per-miss
	// fast path pays no interface-method indirection.
	clock     *clockPolicy
	numBlocks int
	fullMask  uint64 // all sub-block bits set
	stats     L2Stats
	// san is the texsan invariant sanitizer; empty unless built with
	// -tags texsan (see sanitize_on.go).
	san l2San
}

// NewL2 constructs an L2 cache. pageTableEntries must cover every <tid, L2>
// block that can be active in system memory at once (texture.Set provides
// this via PageTableEntries).
func NewL2(cfg L2Config, pageTableEntries uint32) (*L2Cache, error) {
	if err := cfg.Layout.Validate(); err != nil {
		return nil, err
	}
	if sub := cfg.Layout.SubPerBlock(); sub > 64 {
		return nil, fmt.Errorf("cache: %d sub-blocks exceed the 64-bit sector vector", sub)
	}
	blockBytes := cfg.Layout.L2BlockBytes()
	n := cfg.SizeBytes / blockBytes
	if n <= 0 || n*blockBytes != cfg.SizeBytes {
		return nil, fmt.Errorf("cache: L2 size %d not a multiple of block size %d",
			cfg.SizeBytes, blockBytes)
	}
	sub := cfg.Layout.SubPerBlock()
	var fullMask uint64
	if sub == 64 {
		fullMask = ^uint64(0)
	} else {
		fullMask = uint64(1)<<uint(sub) - 1
	}
	c := &L2Cache{
		cfg:       cfg,
		table:     make([]pageEntry, pageTableEntries),
		owner:     make([]int32, n),
		free:      make([]int32, n),
		policy:    NewPolicy(cfg.Policy, n),
		numBlocks: n,
		fullMask:  fullMask,
	}
	c.clock, _ = c.policy.(*clockPolicy)
	// Stack the free list so blocks allocate in index order, matching the
	// clock hand's initial march over the never-used BRL.
	for i := range c.free {
		c.free[i] = int32(n - 1 - i)
	}
	return c, nil
}

// MustNewL2 is NewL2 but panics on error.
func MustNewL2(cfg L2Config, pageTableEntries uint32) *L2Cache {
	c, err := NewL2(cfg, pageTableEntries)
	if err != nil {
		panic(err)
	}
	return c
}

// NumBlocks returns the number of physical L2 blocks.
func (c *L2Cache) NumBlocks() int { return c.numBlocks }

// Config returns the cache configuration.
func (c *L2Cache) Config() L2Config { return c.cfg }

// Access presents an L1 miss to the L2 cache. ptIndex is the page-table
// index (tstart + L2 block number within the texture) and sub the L1
// sub-block index within the L2 block. It returns the access class and
// updates replacement state, sector bits and allocation as in Figure 7.
//
// texlint:hotpath
func (c *L2Cache) Access(ptIndex uint32, sub uint8) L2Result {
	e := &c.table[ptIndex]
	bit := uint64(1) << sub
	if e.block != 0 {
		phys := int(e.block - 1)
		c.touch(phys)
		if e.sector&bit != 0 {
			c.stats.FullHits++
			return L2FullHit
		}
		if c.cfg.NoSectorMapping {
			e.sector = c.fullMask
		} else {
			e.sector |= bit
		}
		c.stats.PartialHits++
		return L2PartialHit
	}

	// Full miss: take a free block if one exists, else have the policy
	// find a victim and relinquish its owner.
	var victim, searched int
	if n := len(c.free); n > 0 {
		victim = int(c.free[n-1])
		c.free = c.free[:n-1]
		searched = 1
	} else {
		victim, searched = c.victim()
		if prev := c.owner[victim]; prev != 0 {
			c.table[prev-1] = pageEntry{}
			c.stats.Evictions++
			if sanitizing {
				c.san.noteEvict(uint32(prev - 1))
			}
		}
	}
	c.stats.SearchSteps += int64(searched)
	if searched > c.stats.MaxSearch {
		c.stats.MaxSearch = searched
	}
	c.owner[victim] = int32(ptIndex) + 1
	e.block = int32(victim) + 1
	if c.cfg.NoSectorMapping {
		e.sector = c.fullMask
	} else {
		e.sector = bit
	}
	c.touch(victim)
	c.stats.FullMisses++
	return L2FullMiss
}

// touch records an access on the replacement policy. The paper's clock
// policy is dispatched statically; the ablation policies (true LRU,
// random) fall back to the interface.
func (c *L2Cache) touch(phys int) {
	if c.clock != nil {
		c.clock.Touch(phys)
		return
	}
	//texlint:ignore hotalloc ablation-only policies accept dynamic dispatch off the paper's configuration
	c.policy.Touch(phys)
}

// victim selects a replacement victim, statically for the clock policy.
func (c *L2Cache) victim() (block, searched int) {
	if c.clock != nil {
		return c.clock.Victim()
	}
	//texlint:ignore hotalloc ablation-only policies accept dynamic dispatch off the paper's configuration
	return c.policy.Victim()
}

// Contains reports whether the sub-block is resident, without side effects.
func (c *L2Cache) Contains(ptIndex uint32, sub uint8) bool {
	e := c.table[ptIndex]
	return e.block != 0 && e.sector&(uint64(1)<<sub) != 0
}

// ResidentBlocks returns the number of physical blocks currently allocated.
func (c *L2Cache) ResidentBlocks() int {
	n := 0
	for _, o := range c.owner {
		if o != 0 {
			n++
		}
	}
	return n
}

// DeleteTexture deallocates the page-table range [tstart, tstart+tlen),
// releasing any physical blocks it owns — the host-driver deallocation path
// of §5.2.
func (c *L2Cache) DeleteTexture(tstart, tlen uint32) {
	for i := tstart; i < tstart+tlen; i++ {
		e := &c.table[i]
		if e.block != 0 {
			phys := int(e.block - 1)
			c.owner[phys] = 0
			c.policy.Reset(phys)
			c.free = append(c.free, int32(phys))
		}
		*e = pageEntry{}
		if sanitizing {
			c.san.noteEvict(i)
		}
	}
}

// Stats returns a snapshot of the counters.
func (c *L2Cache) Stats() L2Stats { return c.stats }
