package cache

import (
	"testing"

	"texcache/internal/texture"
)

func newTestL2(t *testing.T, sizeBytes int, layout texture.TileLayout, entries uint32) *L2Cache {
	t.Helper()
	c, err := NewL2(L2Config{SizeBytes: sizeBytes, Layout: layout, Policy: Clock}, entries)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewL2Capacity(t *testing.T) {
	layout := texture.TileLayout{L2Size: 16, L1Size: 4} // 1 KB blocks
	c := newTestL2(t, 2*1024*1024, layout, 100)
	if got := c.NumBlocks(); got != 2048 {
		t.Errorf("NumBlocks = %d, want 2048", got)
	}
}

func TestNewL2Rejects(t *testing.T) {
	layout := texture.TileLayout{L2Size: 16, L1Size: 4}
	if _, err := NewL2(L2Config{SizeBytes: 1000, Layout: layout}, 10); err == nil {
		t.Error("non-multiple size accepted")
	}
	if _, err := NewL2(L2Config{SizeBytes: 0, Layout: layout}, 10); err == nil {
		t.Error("zero size accepted")
	}
	bad := texture.TileLayout{L2Size: 4, L1Size: 8}
	if _, err := NewL2(L2Config{SizeBytes: 1 << 20, Layout: bad}, 10); err == nil {
		t.Error("invalid layout accepted")
	}
	// 64x64 over 4x4 would need 256 sector bits.
	huge := texture.TileLayout{L2Size: 64, L1Size: 4}
	if _, err := NewL2(L2Config{SizeBytes: 1 << 20, Layout: huge}, 10); err == nil {
		t.Error("oversized sector vector accepted")
	}
}

func TestL2SectorMappingTransitions(t *testing.T) {
	layout := texture.TileLayout{L2Size: 16, L1Size: 4}
	c := newTestL2(t, 16*1024, layout, 64)

	// Cold access: full miss.
	if got := c.Access(7, 3); got != L2FullMiss {
		t.Fatalf("first access = %v, want full-miss", got)
	}
	// Same sub-block again: full hit.
	if got := c.Access(7, 3); got != L2FullHit {
		t.Fatalf("repeat access = %v, want full-hit", got)
	}
	// Different sub-block of the same virtual block: partial hit.
	if got := c.Access(7, 4); got != L2PartialHit {
		t.Fatalf("sibling sub-block = %v, want partial-hit", got)
	}
	// And that sub-block is now resident.
	if got := c.Access(7, 4); got != L2FullHit {
		t.Fatalf("repeat sibling = %v, want full-hit", got)
	}
	s := c.Stats()
	if s.FullHits != 2 || s.PartialHits != 1 || s.FullMisses != 1 {
		t.Errorf("stats = %+v", s)
	}
	if got := s.Accesses(); got != 4 {
		t.Errorf("Accesses = %d, want 4", got)
	}
}

func TestL2DistinctBlocksAllocateDistinctPhysical(t *testing.T) {
	layout := texture.TileLayout{L2Size: 16, L1Size: 4}
	c := newTestL2(t, 16*1024, layout, 64) // 16 physical blocks
	for i := uint32(0); i < 16; i++ {
		if got := c.Access(i, 0); got != L2FullMiss {
			t.Fatalf("block %d: %v, want full-miss", i, got)
		}
	}
	if got := c.ResidentBlocks(); got != 16 {
		t.Errorf("ResidentBlocks = %d, want 16", got)
	}
	// All sixteen must still be resident (no premature eviction).
	for i := uint32(0); i < 16; i++ {
		if !c.Contains(i, 0) {
			t.Errorf("block %d evicted while capacity remained", i)
		}
	}
	if got := c.Stats().Evictions; got != 0 {
		t.Errorf("Evictions = %d, want 0", got)
	}
}

func TestL2EvictionOnOverflow(t *testing.T) {
	layout := texture.TileLayout{L2Size: 16, L1Size: 4}
	c := newTestL2(t, 4*1024, layout, 64) // 4 physical blocks
	for i := uint32(0); i < 5; i++ {
		c.Access(i, 0)
	}
	if got := c.Stats().Evictions; got != 1 {
		t.Fatalf("Evictions = %d, want 1", got)
	}
	if got := c.ResidentBlocks(); got != 4 {
		t.Errorf("ResidentBlocks = %d, want 4", got)
	}
	// The evicted virtual block must re-miss in full.
	evicted := -1
	for i := uint32(0); i < 5; i++ {
		if !c.Contains(i, 0) {
			evicted = int(i)
		}
	}
	if evicted < 0 {
		t.Fatal("no block was evicted")
	}
	if got := c.Access(uint32(evicted), 0); got != L2FullMiss {
		t.Errorf("evicted block re-access = %v, want full-miss", got)
	}
}

func TestL2EvictionClearsSector(t *testing.T) {
	layout := texture.TileLayout{L2Size: 8, L1Size: 4} // 4 sub-blocks, 256B blocks
	c := newTestL2(t, 2*256, layout, 64)               // 2 physical blocks
	c.Access(0, 0)
	c.Access(0, 1) // two sectors of block 0
	c.Access(1, 0)
	c.Access(2, 0) // evicts one of 0 or 1 (clock order)
	// Whichever was evicted, a subsequent access to a previously loaded
	// sector of an evicted block must be a full miss, not a stale hit.
	for pt := uint32(0); pt <= 1; pt++ {
		if !c.Contains(pt, 0) {
			if got := c.Access(pt, 0); got != L2FullMiss {
				t.Errorf("stale sector on pt %d: %v, want full-miss", pt, got)
			}
		}
	}
}

func TestL2ClockApproximatesLRU(t *testing.T) {
	layout := texture.TileLayout{L2Size: 8, L1Size: 4}
	c := newTestL2(t, 3*256, layout, 64) // 3 physical blocks
	c.Access(10, 0)
	c.Access(11, 0)
	c.Access(12, 0)
	// Re-touch 10 and 11, leaving 12's recency oldest in clock terms
	// (all actives set, but the hand will clear and pass 10, 11, 12 in
	// order — with all active the first inactive found after clearing is
	// the hand start, so behaviour is FIFO-like; we only require that
	// SOME block is evicted and counters advance).
	c.Access(10, 0)
	c.Access(11, 0)
	before := c.Stats().Evictions
	c.Access(13, 0)
	if got := c.Stats().Evictions; got != before+1 {
		t.Errorf("Evictions = %d, want %d", got, before+1)
	}
	if c.Stats().MaxSearch < 1 {
		t.Error("victim search recorded no steps")
	}
}

func TestL2NoSectorMapping(t *testing.T) {
	layout := texture.TileLayout{L2Size: 16, L1Size: 4}
	c, err := NewL2(L2Config{
		SizeBytes: 16 * 1024, Layout: layout, Policy: Clock, NoSectorMapping: true,
	}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Access(3, 0); got != L2FullMiss {
		t.Fatalf("first = %v", got)
	}
	// Without sector mapping the whole block downloads at once, so every
	// other sub-block is already resident.
	for sub := uint8(1); sub < 16; sub++ {
		if got := c.Access(3, sub); got != L2FullHit {
			t.Fatalf("sub %d = %v, want full-hit", sub, got)
		}
	}
}

func TestL2SixtyFourSubBlocks(t *testing.T) {
	// 32x32 over 4x4 uses the full 64-bit sector vector.
	layout := texture.TileLayout{L2Size: 32, L1Size: 4}
	c := newTestL2(t, 8*4096, layout, 16)
	if got := c.Access(0, 0); got != L2FullMiss {
		t.Fatalf("first = %v", got)
	}
	for sub := uint8(1); sub < 64; sub++ {
		if got := c.Access(0, sub); got != L2PartialHit {
			t.Fatalf("sub %d first = %v, want partial-hit", sub, got)
		}
	}
	for sub := uint8(0); sub < 64; sub++ {
		if got := c.Access(0, sub); got != L2FullHit {
			t.Fatalf("sub %d repeat = %v, want full-hit", sub, got)
		}
	}
}

func TestL2DeleteTexture(t *testing.T) {
	layout := texture.TileLayout{L2Size: 16, L1Size: 4}
	c := newTestL2(t, 16*1024, layout, 64)
	c.Access(5, 0)
	c.Access(6, 0)
	c.Access(20, 0)
	c.DeleteTexture(5, 2) // deallocate entries 5 and 6
	if c.Contains(5, 0) || c.Contains(6, 0) {
		t.Error("deleted texture blocks still resident")
	}
	if !c.Contains(20, 0) {
		t.Error("unrelated block lost")
	}
	if got := c.ResidentBlocks(); got != 1 {
		t.Errorf("ResidentBlocks = %d, want 1", got)
	}
	// Freed physical blocks must be reusable without evicting block 20.
	c.Access(7, 0)
	c.Access(8, 0)
	if !c.Contains(20, 0) {
		t.Error("block 20 evicted while freed blocks existed")
	}
}

func TestL2StatsRates(t *testing.T) {
	s := L2Stats{FullHits: 6, PartialHits: 3, FullMisses: 1}
	if got := s.FullHitRate(); got != 0.6 {
		t.Errorf("FullHitRate = %v", got)
	}
	if got := s.PartialHitRate(); got != 0.3 {
		t.Errorf("PartialHitRate = %v", got)
	}
	var zero L2Stats
	if zero.FullHitRate() != 0 || zero.PartialHitRate() != 0 {
		t.Error("zero stats rates nonzero")
	}
}

func TestL2ResultString(t *testing.T) {
	if L2FullHit.String() != "full-hit" || L2PartialHit.String() != "partial-hit" ||
		L2FullMiss.String() != "full-miss" {
		t.Error("unexpected L2Result strings")
	}
}
