//go:build texsan

package cache

import "testing"

// TestSnapshotRestoreUnderSanitizer drives the checkpoint/restore path
// with the invariant sanitizer compiled in: the restored hierarchy must
// carry the shadow fill map and stale set forward so that per-access
// counter identities, the periodic deep scan, and the weak-inclusion
// obligations all keep holding across a checkpoint boundary. The stream
// is long enough to cross several sanPeriod deep scans on both sides of
// the boundary; any violated identity panics inside Access.
func TestSnapshotRestoreUnderSanitizer(t *testing.T) {
	refs := snapshotRefs(6*sanPeriod, 64*16, 16)
	mid := len(refs) / 2

	head := snapshotHierarchy(Clock)
	for _, r := range refs[:mid] {
		head.Access(r)
	}
	snap := head.Snapshot()

	tail := snapshotHierarchy(Clock)
	if err := tail.Restore(snap); err != nil {
		t.Fatal(err)
	}
	// Force a full structural scan immediately after restore: the cloned
	// shadow state must be consistent with the restored caches before any
	// further access.
	tail.sanDeep()
	for _, r := range refs[mid:] {
		tail.Access(r)
	}

	// The boundary must also be restorable more than once under the
	// sanitizer: a second replica replays the same tail with its own
	// cloned shadow state.
	again := snapshotHierarchy(Clock)
	if err := again.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for _, r := range refs[mid:] {
		again.Access(r)
	}
	if tail.Counters() != again.Counters() {
		t.Errorf("two sanitized restores diverged: %+v vs %+v", tail.Counters(), again.Counters())
	}
}
