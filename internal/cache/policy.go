package cache

import "fmt"

// Policy selects victims among the physical blocks of the L2 cache. The
// paper uses the clock approximation of LRU; true LRU and random are
// provided for the future-work ablation on replacement behaviour (§6).
type Policy interface {
	// Touch records an access to a physical block.
	Touch(block int)
	// Victim selects a block to evict and returns its index along with
	// the number of candidate blocks examined (the search cost whose
	// "pesky" spikes the paper discusses in §5.4.2).
	Victim() (block, searched int)
	// Reset clears recency state for the given block (the block was
	// deallocated by the host driver).
	Reset(block int)
	// Clone returns an independent deep copy of the policy's replacement
	// state (clock hand and active bits, LRU order, PRNG state), so a
	// checkpointed cache can be restored without aliasing the original.
	Clone() Policy
	// Name identifies the policy in reports.
	Name() string
}

// PolicyKind names a replacement policy.
type PolicyKind int

const (
	// Clock is the paper's choice: LRU approximated by the clock
	// algorithm over the BRL active bits.
	Clock PolicyKind = iota
	// TrueLRU is exact least-recently-used replacement.
	TrueLRU
	// Random picks a uniform random resident block.
	Random
)

// String implements fmt.Stringer.
func (k PolicyKind) String() string {
	switch k {
	case Clock:
		return "clock"
	case TrueLRU:
		return "lru"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// NewPolicy constructs a policy over numBlocks physical blocks.
func NewPolicy(kind PolicyKind, numBlocks int) Policy {
	switch kind {
	case Clock:
		return newClockPolicy(numBlocks)
	case TrueLRU:
		return newLRUPolicy(numBlocks)
	case Random:
		return newRandomPolicy(numBlocks)
	default:
		panic(fmt.Sprintf("cache: unknown policy %d", int(kind)))
	}
}

// clockPolicy is the paper's Block Replacement List: one active bit per
// physical block, a circular hand, and a march that clears active bits
// until an inactive entry is found.
type clockPolicy struct {
	active []bool
	hand   int
}

func newClockPolicy(n int) *clockPolicy {
	return &clockPolicy{active: make([]bool, n)}
}

func (p *clockPolicy) Touch(block int) { p.active[block] = true }

func (p *clockPolicy) Victim() (int, int) {
	searched := 0
	for p.active[p.hand] {
		p.active[p.hand] = false
		p.hand = (p.hand + 1) % len(p.active)
		searched++
	}
	victim := p.hand
	p.hand = (p.hand + 1) % len(p.active)
	return victim, searched + 1
}

func (p *clockPolicy) Reset(block int) { p.active[block] = false }

func (p *clockPolicy) Clone() Policy {
	return &clockPolicy{active: append([]bool(nil), p.active...), hand: p.hand}
}

func (p *clockPolicy) Name() string { return "clock" }

// lruPolicy is exact LRU via a doubly-linked list over block indices; the
// least recently used block is at the tail.
type lruPolicy struct {
	prev, next []int32
	head, tail int32
}

func newLRUPolicy(n int) *lruPolicy {
	p := &lruPolicy{prev: make([]int32, n), next: make([]int32, n)}
	// Initial order: 0 is most recent, n-1 least recent; any order works
	// since all blocks begin unallocated.
	for i := 0; i < n; i++ {
		p.prev[i] = int32(i - 1)
		p.next[i] = int32(i + 1)
	}
	p.next[n-1] = -1
	p.head = 0
	p.tail = int32(n - 1)
	return p
}

// unlink removes b from the list.
func (p *lruPolicy) unlink(b int32) {
	if p.prev[b] >= 0 {
		p.next[p.prev[b]] = p.next[b]
	} else {
		p.head = p.next[b]
	}
	if p.next[b] >= 0 {
		p.prev[p.next[b]] = p.prev[b]
	} else {
		p.tail = p.prev[b]
	}
}

// moveToFront makes b the most recently used.
func (p *lruPolicy) moveToFront(b int32) {
	if p.head == b {
		return
	}
	p.unlink(b)
	p.prev[b] = -1
	p.next[b] = p.head
	p.prev[p.head] = b
	p.head = b
}

func (p *lruPolicy) Touch(block int) { p.moveToFront(int32(block)) }

func (p *lruPolicy) Victim() (int, int) {
	v := p.tail
	p.moveToFront(v)
	return int(v), 1
}

func (p *lruPolicy) Reset(block int) {
	// A deallocated block becomes the preferred victim.
	b := int32(block)
	if p.tail == b {
		return
	}
	p.unlink(b)
	p.prev[b] = p.tail
	p.next[b] = -1
	p.next[p.tail] = b
	p.tail = b
}

func (p *lruPolicy) Clone() Policy {
	return &lruPolicy{
		prev: append([]int32(nil), p.prev...),
		next: append([]int32(nil), p.next...),
		head: p.head,
		tail: p.tail,
	}
}

func (p *lruPolicy) Name() string { return "lru" }

// randomPolicy selects victims with an xorshift PRNG; deterministic across
// runs for reproducibility.
type randomPolicy struct {
	n     int
	state uint64
}

func newRandomPolicy(n int) *randomPolicy {
	return &randomPolicy{n: n, state: 0x9E3779B97F4A7C15}
}

func (p *randomPolicy) Touch(int) {}

func (p *randomPolicy) Victim() (int, int) {
	p.state ^= p.state << 13
	p.state ^= p.state >> 7
	p.state ^= p.state << 17
	return int(p.state % uint64(p.n)), 1
}

func (p *randomPolicy) Reset(int) {}

func (p *randomPolicy) Clone() Policy {
	return &randomPolicy{n: p.n, state: p.state}
}

func (p *randomPolicy) Name() string { return "random" }
