package cache

import (
	"reflect"
	"testing"

	"texcache/internal/texture"
)

// snapshotRefs builds a deterministic reference stream over a fixed
// tag -> <page, sub> mapping (the translation invariant texsan assumes):
// reference i of the universe always presents the same canonical tag,
// set hash, page-table index and sub-block.
func snapshotRefs(n, universe, subPerBlock int) []Ref {
	refs := make([]Ref, 0, n)
	state := uint64(0x243F6A8885A308D3)
	for len(refs) < n {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		i := int(state % uint64(universe))
		pt := uint32(i / subPerBlock)
		sub := uint8(i % subPerBlock)
		refs = append(refs, Ref{
			L1:      L1Ref{Tag: PackTag(0, pt, uint16(sub)), Set: uint32(i) * 2654435761},
			PTIndex: pt,
			Sub:     sub,
		})
	}
	return refs
}

// snapshotHierarchy builds a small hierarchy that exercises every
// component: 16 L2 blocks under 64 pages forces steady eviction, and a
// 4-entry TLB forces replacement there too.
func snapshotHierarchy(pol PolicyKind) *Hierarchy {
	layout := texture.TileLayout{L2Size: 16, L1Size: 4}
	l2 := MustNewL2(L2Config{SizeBytes: 16 * 1024, Layout: layout, Policy: pol}, 64)
	return &Hierarchy{L1: MustNewL1(2048), L2: l2, TLB: NewTLB(4)}
}

// TestSnapshotRestoreResumesExactly checkpoints a hierarchy mid-stream,
// restores it into a fresh replica, finishes the stream on both, and
// requires the full structural state — not just the counters — to match,
// for every replacement policy.
func TestSnapshotRestoreResumesExactly(t *testing.T) {
	refs := snapshotRefs(10000, 64*16, 16)
	for _, pol := range []PolicyKind{Clock, TrueLRU, Random} {
		serial := snapshotHierarchy(pol)
		for _, r := range refs {
			serial.Access(r)
		}

		head := snapshotHierarchy(pol)
		for _, r := range refs[:len(refs)/2] {
			head.Access(r)
		}
		snap := head.Snapshot()
		// Keep mutating the source after the snapshot: the copy must be
		// unaffected.
		for _, r := range refs[len(refs)/2:] {
			head.Access(r)
		}

		tail := snapshotHierarchy(pol)
		if err := tail.Restore(snap); err != nil {
			t.Fatalf("%v: Restore: %v", pol, err)
		}
		for _, r := range refs[len(refs)/2:] {
			tail.Access(r)
		}
		if !reflect.DeepEqual(tail.Counters(), serial.Counters()) {
			t.Errorf("%v: counters diverged:\nranged %+v\nserial %+v", pol, tail.Counters(), serial.Counters())
		}
		if !reflect.DeepEqual(tail, serial) {
			t.Errorf("%v: structural state diverged after restore", pol)
		}
	}
}

// TestSnapshotIsReusable restores the same snapshot twice and requires
// both replicas to replay the tail identically: Restore must not alias
// snapshot state into the target.
func TestSnapshotIsReusable(t *testing.T) {
	refs := snapshotRefs(4000, 64*16, 16)
	h := snapshotHierarchy(Clock)
	for _, r := range refs[:2000] {
		h.Access(r)
	}
	snap := h.Snapshot()

	a := snapshotHierarchy(Clock)
	if err := a.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for _, r := range refs[2000:] {
		a.Access(r)
	}
	b := snapshotHierarchy(Clock)
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for _, r := range refs[2000:] {
		b.Access(r)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two restores of one snapshot diverged")
	}
}

// TestSnapshotPullArchitecture covers the L2-less, TLB-less hierarchy.
func TestSnapshotPullArchitecture(t *testing.T) {
	refs := snapshotRefs(1000, 64*16, 16)
	serial := &Hierarchy{L1: MustNewL1(2048)}
	for _, r := range refs {
		serial.Access(r)
	}
	head := &Hierarchy{L1: MustNewL1(2048)}
	for _, r := range refs[:500] {
		head.Access(r)
	}
	tail := &Hierarchy{L1: MustNewL1(2048)}
	if err := tail.Restore(head.Snapshot()); err != nil {
		t.Fatal(err)
	}
	for _, r := range refs[500:] {
		tail.Access(r)
	}
	if !reflect.DeepEqual(tail, serial) {
		t.Error("pull-architecture restore diverged from serial")
	}
}

// TestRestoreRejectsGeometryMismatch pins the error paths: a checkpoint
// must only restore into a replica of the exact configuration.
func TestRestoreRejectsGeometryMismatch(t *testing.T) {
	layout := texture.TileLayout{L2Size: 16, L1Size: 4}
	base := snapshotHierarchy(Clock)
	snap := base.Snapshot()

	cases := []struct {
		name string
		h    *Hierarchy
	}{
		{"l1 size", &Hierarchy{
			L1:  MustNewL1(4096),
			L2:  MustNewL2(L2Config{SizeBytes: 16 * 1024, Layout: layout, Policy: Clock}, 64),
			TLB: NewTLB(4),
		}},
		{"l1 ways", &Hierarchy{
			L1:  MustNewL1Assoc(2048, 4),
			L2:  MustNewL2(L2Config{SizeBytes: 16 * 1024, Layout: layout, Policy: Clock}, 64),
			TLB: NewTLB(4),
		}},
		{"missing l2", &Hierarchy{L1: MustNewL1(2048), TLB: NewTLB(4)}},
		{"l2 size", &Hierarchy{
			L1:  MustNewL1(2048),
			L2:  MustNewL2(L2Config{SizeBytes: 32 * 1024, Layout: layout, Policy: Clock}, 64),
			TLB: NewTLB(4),
		}},
		{"l2 pages", &Hierarchy{
			L1:  MustNewL1(2048),
			L2:  MustNewL2(L2Config{SizeBytes: 16 * 1024, Layout: layout, Policy: Clock}, 128),
			TLB: NewTLB(4),
		}},
		{"missing tlb", &Hierarchy{
			L1: MustNewL1(2048),
			L2: MustNewL2(L2Config{SizeBytes: 16 * 1024, Layout: layout, Policy: Clock}, 64),
		}},
		{"tlb size", &Hierarchy{
			L1:  MustNewL1(2048),
			L2:  MustNewL2(L2Config{SizeBytes: 16 * 1024, Layout: layout, Policy: Clock}, 64),
			TLB: NewTLB(8),
		}},
	}
	for _, tc := range cases {
		if err := tc.h.Restore(snap); err == nil {
			t.Errorf("%s: Restore accepted a mismatched geometry", tc.name)
		}
	}
	// The matching geometry still restores.
	if err := snapshotHierarchy(Clock).Restore(snap); err != nil {
		t.Errorf("matching geometry rejected: %v", err)
	}
}
