package cache_test

import (
	"testing"

	"texcache/internal/cache"
	"texcache/internal/core"
	"texcache/internal/raster"
	"texcache/internal/texture"
	"texcache/internal/workload"
)

// TestTLBGoldenCounters pins the TLB lookup/hit counters of the paper's
// baseline hierarchy on reduced-scale Village (512x384, 80 frames,
// trilinear, 2KB L1, 2MB L2 of 16x16 tiles, 16-entry TLB). The hot-probe
// fast path in TLB.Lookup must not change which lookups hit: it only
// short-circuits the scan when the most recently touched entry matches,
// and membership plus round-robin victim choice are untouched. These
// counters were captured before the fast path landed and must never move.
func TestTLBGoldenCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("reduced-scale render in -short mode")
	}
	cfg := core.Config{
		Width:   512,
		Height:  384,
		Frames:  80,
		Mode:    raster.Trilinear,
		L1Bytes: 2 * 1024,
		L2: &cache.L2Config{
			SizeBytes: 2 * 1024 * 1024,
			Layout:    texture.TileLayout{L2Size: 16, L1Size: 4},
			Policy:    cache.Clock,
		},
		TLBEntries: 16,
	}
	res, err := core.Run(workload.Village(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	const (
		wantLookups = int64(17041996)
		wantHits    = int64(15359878)
	)
	got := res.Totals.TLB
	if got.Lookups != wantLookups || got.Hits != wantHits {
		t.Errorf("reduced-Village TLB counters = {Lookups:%d Hits:%d}, want {Lookups:%d Hits:%d}",
			got.Lookups, got.Hits, wantLookups, wantHits)
	}
}
