package cache

import "testing"

func TestTLBHitAfterInsert(t *testing.T) {
	tlb := NewTLB(4)
	if tlb.Lookup(10) {
		t.Fatal("cold lookup hit")
	}
	if !tlb.Lookup(10) {
		t.Fatal("warm lookup missed")
	}
	s := tlb.Stats()
	if s.Lookups != 2 || s.Hits != 1 {
		t.Errorf("stats = %+v", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", got)
	}
}

func TestTLBRoundRobinReplacement(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Lookup(1) // slot 0
	tlb.Lookup(2) // slot 1
	tlb.Lookup(3) // replaces slot 0 (round robin), evicting 1
	if tlb.Lookup(1) {
		t.Error("evicted entry 1 still present")
	}
	// That miss re-inserted 1 at slot 1, evicting 2; slot 0 still holds 3.
	if tlb.Lookup(2) {
		t.Error("entry 2 should have been replaced")
	}
	// And that miss re-inserted 2 at slot 0, evicting 3; 1 remains.
	if !tlb.Lookup(1) {
		t.Error("entry 1 lost from slot 1")
	}
}

func TestTLBSingleEntry(t *testing.T) {
	tlb := NewTLB(1)
	tlb.Lookup(5)
	if !tlb.Lookup(5) {
		t.Error("single-entry TLB lost its entry")
	}
	tlb.Lookup(6)
	if tlb.Lookup(5) {
		t.Error("single-entry TLB retained two entries")
	}
}

func TestTLBZeroEntries(t *testing.T) {
	tlb := NewTLB(0)
	for i := uint32(0); i < 10; i++ {
		if tlb.Lookup(i % 2) {
			t.Fatal("zero-entry TLB hit")
		}
	}
	if got := tlb.Stats().Lookups; got != 10 {
		t.Errorf("lookups = %d", got)
	}
}

func TestTLBInvalidate(t *testing.T) {
	tlb := NewTLB(4)
	tlb.Lookup(10)
	tlb.Lookup(11)
	tlb.Lookup(20)
	tlb.Invalidate(10, 2)
	if tlb.Lookup(10) || tlb.Lookup(11) {
		t.Error("invalidated entries still hit")
	}
	if !tlb.Lookup(20) {
		t.Error("unrelated entry lost")
	}
}

func TestTLBStatsZero(t *testing.T) {
	var s TLBStats
	if s.HitRate() != 0 {
		t.Error("zero stats hit rate nonzero")
	}
}

// refTLB reimplements Lookup exactly as it shipped before the hot-probe
// fast path: a plain scan with round-robin insertion and no shortcut
// state. TestTLBMatchesReferenceModel drives both models through the same
// sequences and demands identical per-lookup outcomes, which proves the
// fast path never changes membership, victim choice, or the counters.
type refTLB struct {
	entries []uint32
	next    int
}

func newRefTLB(n int) *refTLB {
	r := &refTLB{entries: make([]uint32, n)}
	for i := range r.entries {
		r.entries[i] = tlbInvalid
	}
	return r
}

func (r *refTLB) lookup(ptIndex uint32) bool {
	for _, e := range r.entries {
		if e == ptIndex {
			return true
		}
	}
	if len(r.entries) > 0 {
		r.entries[r.next] = ptIndex
		r.next = (r.next + 1) % len(r.entries)
	}
	return false
}

func (r *refTLB) invalidate(tstart, tlen uint32) {
	for i, e := range r.entries {
		if e != tlbInvalid && e >= tstart && e < tstart+tlen {
			r.entries[i] = tlbInvalid
		}
	}
}

func TestTLBMatchesReferenceModel(t *testing.T) {
	for _, size := range []int{0, 1, 2, 3, 4, 16} {
		tlb := NewTLB(size)
		ref := newRefTLB(size)
		// Deterministic LCG over a small page universe so repeats,
		// evictions and re-insertions all occur; periodic invalidations
		// exercise the interaction with the hot slot.
		state := uint32(12345)
		hits := int64(0)
		const lookups = 200000
		for i := 0; i < lookups; i++ {
			state = state*1664525 + 1013904223
			// Skewed page stream: low bits repeat often, mimicking the
			// run-heavy locality of a texel trace.
			page := (state >> 24) % 40
			got := tlb.Lookup(page)
			want := ref.lookup(page)
			if got != want {
				t.Fatalf("size %d, lookup %d (page %d): TLB hit=%v, reference hit=%v",
					size, i, page, got, want)
			}
			if want {
				hits++
			}
			if i%4096 == 4095 {
				start := (state >> 16) % 40
				tlb.Invalidate(start, 4)
				ref.invalidate(start, 4)
			}
		}
		s := tlb.Stats()
		if s.Lookups != lookups || s.Hits != hits {
			t.Errorf("size %d: stats = %+v, want {Lookups:%d Hits:%d}",
				size, s, int64(lookups), hits)
		}
	}
}
