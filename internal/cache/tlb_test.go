package cache

import "testing"

func TestTLBHitAfterInsert(t *testing.T) {
	tlb := NewTLB(4)
	if tlb.Lookup(10) {
		t.Fatal("cold lookup hit")
	}
	if !tlb.Lookup(10) {
		t.Fatal("warm lookup missed")
	}
	s := tlb.Stats()
	if s.Lookups != 2 || s.Hits != 1 {
		t.Errorf("stats = %+v", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", got)
	}
}

func TestTLBRoundRobinReplacement(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Lookup(1) // slot 0
	tlb.Lookup(2) // slot 1
	tlb.Lookup(3) // replaces slot 0 (round robin), evicting 1
	if tlb.Lookup(1) {
		t.Error("evicted entry 1 still present")
	}
	// That miss re-inserted 1 at slot 1, evicting 2; slot 0 still holds 3.
	if tlb.Lookup(2) {
		t.Error("entry 2 should have been replaced")
	}
	// And that miss re-inserted 2 at slot 0, evicting 3; 1 remains.
	if !tlb.Lookup(1) {
		t.Error("entry 1 lost from slot 1")
	}
}

func TestTLBSingleEntry(t *testing.T) {
	tlb := NewTLB(1)
	tlb.Lookup(5)
	if !tlb.Lookup(5) {
		t.Error("single-entry TLB lost its entry")
	}
	tlb.Lookup(6)
	if tlb.Lookup(5) {
		t.Error("single-entry TLB retained two entries")
	}
}

func TestTLBZeroEntries(t *testing.T) {
	tlb := NewTLB(0)
	for i := uint32(0); i < 10; i++ {
		if tlb.Lookup(i % 2) {
			t.Fatal("zero-entry TLB hit")
		}
	}
	if got := tlb.Stats().Lookups; got != 10 {
		t.Errorf("lookups = %d", got)
	}
}

func TestTLBInvalidate(t *testing.T) {
	tlb := NewTLB(4)
	tlb.Lookup(10)
	tlb.Lookup(11)
	tlb.Lookup(20)
	tlb.Invalidate(10, 2)
	if tlb.Lookup(10) || tlb.Lookup(11) {
		t.Error("invalidated entries still hit")
	}
	if !tlb.Lookup(20) {
		t.Error("unrelated entry lost")
	}
}

func TestTLBStatsZero(t *testing.T) {
	var s TLBStats
	if s.HitRate() != 0 {
		t.Error("zero stats hit rate nonzero")
	}
}
