package cache

import "fmt"

// Snapshot is a deep copy of a Hierarchy's complete state at some point
// in a reference stream: L1 tags, per-line LRU order and tick, the L2
// page table, BRL owner array, free list and replacement-policy state
// (clock hand and active bits, exact-LRU order, or PRNG state), TLB
// contents and round-robin/hot indices, every statistics counter, and —
// under -tags texsan — the sanitizer's shadow state, so a restored
// hierarchy re-verifies the same invariants serial replay would.
//
// A Snapshot shares nothing with the hierarchy it came from or with any
// hierarchy it is restored into: it may be restored any number of times,
// and the source may keep running. Together with Restore it is the
// checkpoint primitive of the frame-range-parallel replay engine: range
// k's worker restores the snapshot range k−1 published at its boundary
// and continues bit-identically to serial replay.
type Snapshot struct {
	l1  *L1Cache
	l2  *L2Cache
	tlb *TLB

	hostBytes    int64
	l2ReadBytes  int64
	l2WriteBytes int64

	san sanState
}

// clone returns an independent deep copy of the L1 cache.
func (c *L1Cache) clone() *L1Cache {
	return &L1Cache{
		ways:    c.ways,
		setMask: c.setMask,
		tags:    append([]uint64(nil), c.tags...),
		lastUse: append([]uint64(nil), c.lastUse...),
		tick:    c.tick,
		stats:   c.stats,
	}
}

// restoreFrom copies s's state into c, reusing c's arrays. The caller
// has verified the geometry matches.
func (c *L1Cache) restoreFrom(s *L1Cache) {
	copy(c.tags, s.tags)
	copy(c.lastUse, s.lastUse)
	c.tick = s.tick
	c.stats = s.stats
}

// clone returns an independent deep copy of the L2 cache.
func (c *L2Cache) clone() *L2Cache {
	out := &L2Cache{
		cfg:       c.cfg,
		table:     append([]pageEntry(nil), c.table...),
		owner:     append([]int32(nil), c.owner...),
		free:      append([]int32(nil), c.free...),
		policy:    c.policy.Clone(),
		numBlocks: c.numBlocks,
		fullMask:  c.fullMask,
		stats:     c.stats,
		san:       c.san.clone(),
	}
	out.clock, _ = out.policy.(*clockPolicy)
	return out
}

// restoreFrom copies s's state into c, reusing c's arrays where the
// geometry is fixed. The caller has verified the geometry matches.
func (c *L2Cache) restoreFrom(s *L2Cache) {
	copy(c.table, s.table)
	copy(c.owner, s.owner)
	c.free = append(c.free[:0], s.free...)
	c.policy = s.policy.Clone()
	c.clock, _ = c.policy.(*clockPolicy)
	c.stats = s.stats
	c.san = s.san.clone()
}

// clone returns an independent deep copy of the TLB.
func (t *TLB) clone() *TLB {
	return &TLB{
		entries: append([]uint32(nil), t.entries...),
		next:    t.next,
		hot:     t.hot,
		lookups: t.lookups,
		hits:    t.hits,
	}
}

// restoreFrom copies s's state into t, reusing t's entry array. The
// caller has verified the geometry matches.
func (t *TLB) restoreFrom(s *TLB) {
	copy(t.entries, s.entries)
	t.next = s.next
	t.hot = s.hot
	t.lookups = s.lookups
	t.hits = s.hits
}

// Snapshot captures the hierarchy's complete state as an independent
// deep copy. The hierarchy may keep running afterwards.
func (h *Hierarchy) Snapshot() *Snapshot {
	s := &Snapshot{
		l1:           h.L1.clone(),
		hostBytes:    h.hostBytes,
		l2ReadBytes:  h.l2ReadBytes,
		l2WriteBytes: h.l2WriteBytes,
		san:          h.san.clone(),
	}
	if h.L2 != nil {
		s.l2 = h.L2.clone()
	}
	if h.TLB != nil {
		s.tlb = h.TLB.clone()
	}
	return s
}

// Restore replaces the hierarchy's state with the snapshot's. The
// hierarchy must have the same geometry the snapshot was taken from —
// same L1 size and associativity, same L2 configuration and page-table
// extent, same TLB capacity — since a checkpoint is only meaningful
// between replicas of one simulated configuration. The snapshot is not
// consumed: it may be restored again, and shares no state with h after
// the call.
func (h *Hierarchy) Restore(s *Snapshot) error {
	if h.L1.ways != s.l1.ways || h.L1.setMask != s.l1.setMask {
		return fmt.Errorf("cache: restore: L1 geometry %d sets x %d ways does not match snapshot %d sets x %d ways",
			h.L1.Sets(), h.L1.Ways(), s.l1.Sets(), s.l1.Ways())
	}
	if (h.L2 == nil) != (s.l2 == nil) {
		return fmt.Errorf("cache: restore: L2 presence mismatch (hierarchy %v, snapshot %v)", h.L2 != nil, s.l2 != nil)
	}
	if h.L2 != nil {
		if h.L2.cfg != s.l2.cfg || len(h.L2.table) != len(s.l2.table) || h.L2.numBlocks != s.l2.numBlocks {
			return fmt.Errorf("cache: restore: L2 geometry does not match snapshot")
		}
	}
	if (h.TLB == nil) != (s.tlb == nil) {
		return fmt.Errorf("cache: restore: TLB presence mismatch (hierarchy %v, snapshot %v)", h.TLB != nil, s.tlb != nil)
	}
	if h.TLB != nil && len(h.TLB.entries) != len(s.tlb.entries) {
		return fmt.Errorf("cache: restore: TLB capacity %d does not match snapshot %d", len(h.TLB.entries), len(s.tlb.entries))
	}
	h.L1.restoreFrom(s.l1)
	if h.L2 != nil {
		h.L2.restoreFrom(s.l2)
	}
	if h.TLB != nil {
		h.TLB.restoreFrom(s.tlb)
	}
	h.hostBytes = s.hostBytes
	h.l2ReadBytes = s.l2ReadBytes
	h.l2WriteBytes = s.l2WriteBytes
	h.san = s.san.clone()
	return nil
}
