//go:build texsan

package cache

import (
	"strings"
	"testing"

	"texcache/internal/texture"
)

// newSanHierarchy builds a small L2-backed hierarchy whose 16 physical
// blocks come under heavy replacement pressure from the 256-entry page
// table, exercising evictions and the weak-inclusion retirement path.
func newSanHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	l2, err := NewL2(L2Config{
		SizeBytes: 16 << 10, // 16 blocks of 16x16 texels
		Layout:    texture.TileLayout{L2Size: 16, L1Size: 4},
		Policy:    Clock,
	}, 256)
	if err != nil {
		t.Fatal(err)
	}
	return &Hierarchy{L1: MustNewL1(2048), L2: l2, TLB: NewTLB(16)}
}

// drive pushes n references from a deterministic xorshift stream through
// the hierarchy with a consistent tag <-> (pt, sub) mapping.
func drive(h *Hierarchy, n int) {
	state := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < n; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		pt := uint32(state) % 256
		sub := uint8(state>>32) % 16
		h.Access(Ref{
			L1:      L1Ref{Tag: PackTag(0, pt, uint16(sub)), Set: uint32(state >> 40)},
			PTIndex: pt,
			Sub:     sub,
		})
	}
}

// expectPanic runs f and fails unless it panics with a message containing
// want.
func expectPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one containing %q", want)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v; want one containing %q", r, want)
		}
	}()
	f()
}

func TestSanitizerCleanRun(t *testing.T) {
	h := newSanHierarchy(t)
	drive(h, 3*sanPeriod) // crosses several deep-scan boundaries
	h.sanDeep()           // and one final full scan
	if h.Counters().L1.Accesses != 3*sanPeriod {
		t.Fatal("stream did not reach the hierarchy")
	}
}

func TestSanitizerCleanRunPullArchitecture(t *testing.T) {
	h := &Hierarchy{L1: MustNewL1(2048)}
	drive(h, 2*sanPeriod)
}

func TestSanitizerCleanRunNoSectorMapping(t *testing.T) {
	l2 := MustNewL2(L2Config{
		SizeBytes: 16 << 10,
		Layout:    texture.TileLayout{L2Size: 16, L1Size: 4},
		Policy:    Clock, NoSectorMapping: true,
	}, 256)
	h := &Hierarchy{L1: MustNewL1(2048), L2: l2}
	drive(h, 2*sanPeriod)
}

func TestSanitizerCleanAcrossDeleteTexture(t *testing.T) {
	h := newSanHierarchy(t)
	drive(h, sanPeriod/2)
	h.L2.DeleteTexture(0, 128) // host driver frees half the page table
	drive(h, sanPeriod)        // survives the next deep scans
	h.sanDeep()
}

func TestSanitizerDetectsCounterDrift(t *testing.T) {
	h := newSanHierarchy(t)
	drive(h, 100)
	h.hostBytes++ // simulate a lost download
	expectPanic(t, "host bytes", func() { drive(h, 1) })
}

func TestSanitizerDetectsOwnerCorruption(t *testing.T) {
	h := newSanHierarchy(t)
	drive(h, 100)
	for phys, o := range h.L2.owner {
		if o != 0 {
			h.L2.owner[phys] = 0 // BRL forgets the block's owner
			break
		}
	}
	expectPanic(t, "BRL owner", func() { h.sanDeep() })
}

func TestSanitizerDetectsSectorOutsideMask(t *testing.T) {
	h := newSanHierarchy(t)
	drive(h, 100)
	for pt := range h.L2.table {
		if h.L2.table[pt].block != 0 {
			h.L2.table[pt].sector |= 1 << 63 // bit beyond the 16 sub-blocks
			break
		}
	}
	expectPanic(t, "outside layout mask", func() { h.sanDeep() })
}

func TestSanitizerDetectsClockHandOutOfRange(t *testing.T) {
	h := newSanHierarchy(t)
	drive(h, 100)
	h.L2.clock.hand = h.L2.numBlocks
	expectPanic(t, "clock hand", func() { h.sanDeep() })
}

func TestSanitizerDetectsInclusionViolation(t *testing.T) {
	h := newSanHierarchy(t)
	drive(h, 64)
	// Clear one recorded fill's sector bit without an eviction: the L1
	// line now fronts data L2 no longer holds.
	for _, se := range h.san.shadow {
		if h.L2.Contains(se.pt, se.sub) {
			h.L2.table[se.pt].sector &^= 1 << se.sub
			break
		}
	}
	expectPanic(t, "left L2 without an eviction", func() { h.sanDeep() })
}

func TestSanitizerDetectsUnrecordedL1Line(t *testing.T) {
	h := newSanHierarchy(t)
	drive(h, 100)
	for i, tag := range h.L1.tags {
		if tag != invalidTag {
			h.L1.tags[i] = PackTag(7, 7, 7) // line appears from nowhere
			break
		}
	}
	expectPanic(t, "no recorded fill", func() { h.sanDeep() })
}

func TestSanitizerDetectsInconsistentTranslation(t *testing.T) {
	h := newSanHierarchy(t)
	r := Ref{L1: L1Ref{Tag: PackTag(0, 1, 2), Set: 9}, PTIndex: 1, Sub: 2}
	h.Access(r)
	// Evict the line from L1 by filling its set, then re-present the same
	// tag with different page-table coordinates.
	h.Access(Ref{L1: L1Ref{Tag: PackTag(1, 1, 2), Set: 9}, PTIndex: 3, Sub: 2})
	h.Access(Ref{L1: L1Ref{Tag: PackTag(2, 1, 2), Set: 9}, PTIndex: 4, Sub: 2})
	r.PTIndex = 5
	expectPanic(t, "refilled", func() { h.Access(r) })
}
