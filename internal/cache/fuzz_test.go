package cache

import "testing"

// FuzzPackTag verifies that PackTag is a lossless injection on the valid
// field ranges (16-bit tid, 32-bit L2 block, 16-bit L1 sub-tile): every
// field must be recoverable from the packed tag, so two distinct virtual
// addresses can never alias an L1 line.
func FuzzPackTag(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint16(0))
	f.Add(uint32(1), uint32(2), uint16(3))
	f.Add(uint32(0xFFFF), uint32(0xFFFFFFFF), uint16(0xFFFF))
	f.Add(uint32(411), uint32(1<<20), uint16(255))
	f.Fuzz(func(t *testing.T, tid, l2 uint32, l1 uint16) {
		tid &= 0xFFFF // valid tid range is 16 bits by construction
		tag := PackTag(tid, l2, l1)
		if got := uint32(tag >> 48); got != tid {
			t.Fatalf("tid not recoverable: packed %d, got %d", tid, got)
		}
		if got := uint32(tag >> 16); got != l2 {
			t.Fatalf("l2 not recoverable: packed %d, got %d", l2, got)
		}
		if got := uint16(tag); got != l1 {
			t.Fatalf("l1 not recoverable: packed %d, got %d", l1, got)
		}
		// Injectivity at the boundaries of each field: flipping any one
		// valid field must change the tag.
		if PackTag(tid^1, l2, l1) == tag || PackTag(tid, l2^1, l1) == tag ||
			PackTag(tid, l2, l1^1) == tag {
			t.Fatalf("tag %x collides with a single-field mutation", tag)
		}
	})
}

// FuzzSetHash verifies the 6D-blocked placement property SetHash exists
// for: the four L1 tiles of a bilinear footprint (a 2x2 tile neighbourhood
// at one MIP level of one texture) must map to four distinct sets even in
// the smallest L1 organisation of the study (2KB, 2-way: 16 sets), so a
// filter footprint never evicts itself. Neighbourhoods that straddle a
// 256-tile boundary fold through the high-bit mix and carry no such
// guarantee, matching the 8-bit interleave documented on SetHash.
func FuzzSetHash(f *testing.F) {
	f.Add(int32(0), int32(0), uint8(0), uint32(0))
	f.Add(int32(13), int32(97), uint8(3), uint32(7))
	f.Add(int32(254), int32(254), uint8(10), uint32(411))
	f.Fuzz(func(t *testing.T, tileU, tileV int32, level uint8, tid uint32) {
		if tileU < 0 || tileV < 0 {
			t.Skip("tile coordinates are non-negative")
		}
		if tileU&0xFF == 0xFF || tileV&0xFF == 0xFF {
			t.Skip("footprint straddles the 8-bit interleave window")
		}
		const sets = 16 // smallest L1 in the study: 2KB / 64B lines / 2 ways
		var hashes [4]uint32
		for i := 0; i < 4; i++ {
			hashes[i] = SetHash(tileU+int32(i&1), tileV+int32(i>>1), level, tid) % sets
		}
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				if hashes[i] == hashes[j] {
					t.Fatalf("footprint at (%d,%d) self-conflicts: corners %d and %d share set %d",
						tileU, tileV, i, j, hashes[i])
				}
			}
		}
	})
}
