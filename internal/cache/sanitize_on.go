//go:build texsan

// Texsan is the runtime invariant sanitizer for the cache hierarchy,
// compiled in with `go test -tags texsan ./...`. It shadows the
// hierarchy's architectural state and re-derives, after every access, the
// counter-conservation and byte-accounting identities the simulator's
// results rest on; every sanPeriod accesses it additionally cross-checks
// the full page table, block replacement list, free list and the weak
// L1/L2 inclusion property. "Weak" because the paper forgoes
// back-invalidation (§5.3.2 footnote): an L1 line may legally outlive the
// L2 block it was filled from, so the sanitizer retires — rather than
// flags — fills whose backing block was since evicted, and insists only
// that never-evicted fills stay resident and that every valid L1 line
// traces back to a recorded fill. Any panic below indicates a simulator
// bug, never a legal stream.
//
// The sanitizer assumes the Hierarchy is the sole driver of its component
// caches and that the address translation feeding it maps each L1 tag to
// a fixed <page-table index, sub-block> pair for the life of the run, as
// the simulator's precomputed tilings guarantee.

package cache

import "fmt"

// sanitizing reports whether the texsan invariant sanitizer is compiled in.
const sanitizing = true

// sanPeriod is the access interval between full structural scans.
const sanPeriod = 4096

// shadowEntry records where an L1 fill came from.
type shadowEntry struct {
	pt  uint32
	sub uint8
}

// sanState is the hierarchy-level sanitizer state.
type sanState struct {
	// shadow maps each L1 tag ever filled to its page-table coordinates,
	// for fills whose backing block has not been evicted since.
	shadow map[uint64]shadowEntry
	// stale holds tags whose backing block was evicted after the fill;
	// their L1 lines are legal but no longer verifiable against L2.
	stale    map[uint64]bool
	accesses int64
}

// l2San is the L2-level sanitizer state.
type l2San struct {
	// evicted accumulates page-table indices invalidated by clock
	// replacement or DeleteTexture since the last deep scan.
	evicted map[uint32]bool
}

// noteEvict records that a page-table entry lost its physical block.
func (s *l2San) noteEvict(pt uint32) {
	if s.evicted == nil {
		s.evicted = make(map[uint32]bool)
	}
	s.evicted[pt] = true
}

// clone deep-copies the sanitizer state so a checkpointed hierarchy
// carries its shadow map and stale set forward: a restored replay range
// then verifies the same weak-inclusion obligations the serial replay
// would at that point in the stream.
func (s sanState) clone() sanState {
	out := sanState{accesses: s.accesses}
	if s.shadow != nil {
		out.shadow = make(map[uint64]shadowEntry, len(s.shadow))
		for k, v := range s.shadow {
			out.shadow[k] = v
		}
	}
	if s.stale != nil {
		out.stale = make(map[uint64]bool, len(s.stale))
		for k, v := range s.stale {
			out.stale[k] = v
		}
	}
	return out
}

// clone deep-copies the pending-eviction set.
func (s l2San) clone() l2San {
	out := l2San{}
	if s.evicted != nil {
		out.evicted = make(map[uint32]bool, len(s.evicted))
		for k, v := range s.evicted {
			out.evicted[k] = v
		}
	}
	return out
}

// sanAccess runs after every hierarchy access: it records L1 fills in the
// shadow map, replays the O(1) counter identities, and periodically runs
// the full structural scan.
func (h *Hierarchy) sanAccess(ref Ref, l1Hit bool) {
	s := &h.san
	if s.shadow == nil {
		s.shadow = make(map[uint64]shadowEntry)
		s.stale = make(map[uint64]bool)
	}
	if !l1Hit && h.L2 != nil {
		if old, ok := s.shadow[ref.L1.Tag]; ok && (old.pt != ref.PTIndex || old.sub != ref.Sub) {
			panic(fmt.Sprintf("texsan: tag %#x refilled from pt=%d sub=%d, previously pt=%d sub=%d",
				ref.L1.Tag, ref.PTIndex, ref.Sub, old.pt, old.sub))
		}
		// The miss path just downloaded or read this sub-block, so it
		// must be resident in L2 right now.
		if !h.L2.Contains(ref.PTIndex, ref.Sub) {
			panic(fmt.Sprintf("texsan: L1 fill of tag %#x not resident in L2 (pt=%d sub=%d)",
				ref.L1.Tag, ref.PTIndex, ref.Sub))
		}
		s.shadow[ref.L1.Tag] = shadowEntry{pt: ref.PTIndex, sub: ref.Sub}
		delete(s.stale, ref.L1.Tag)
	}
	s.accesses++
	h.sanCounters()
	if s.accesses%sanPeriod == 0 {
		h.sanDeep()
	}
}

// sanCounters replays the byte-accounting and counter-conservation
// identities from the raw counters; it runs after every access.
func (h *Hierarchy) sanCounters() {
	l1 := &h.L1.stats
	if l1.Misses > l1.Accesses {
		panic("texsan: L1 misses exceed accesses")
	}
	if h.L2 == nil {
		// Pull architecture: every L1 miss downloads one line from host
		// memory and nothing else moves.
		if want := l1.Misses * L1LineBytes; h.hostBytes != want {
			panic(fmt.Sprintf("texsan: pull host bytes %d != misses*line %d", h.hostBytes, want))
		}
		if h.l2ReadBytes != 0 || h.l2WriteBytes != 0 {
			panic("texsan: pull architecture recorded L2 traffic")
		}
		return
	}
	l2 := &h.L2.stats
	acc := l2.FullHits + l2.PartialHits + l2.FullMisses
	if acc != l1.Misses {
		panic(fmt.Sprintf("texsan: %d L2 accesses != %d L1 misses", acc, l1.Misses))
	}
	if want := l2.FullHits * L1LineBytes; h.l2ReadBytes != want {
		panic(fmt.Sprintf("texsan: L2 read bytes %d != full hits * line = %d", h.l2ReadBytes, want))
	}
	dl := int64(L1LineBytes)
	if h.L2.cfg.NoSectorMapping {
		dl = int64(h.L2.cfg.Layout.L2BlockBytes())
	}
	if want := (l2.PartialHits + l2.FullMisses) * dl; h.l2WriteBytes != want {
		panic(fmt.Sprintf("texsan: L2 write bytes %d != downloads * %d = %d", h.l2WriteBytes, dl, want))
	}
	if h.hostBytes != h.l2WriteBytes {
		panic(fmt.Sprintf("texsan: host bytes %d != L2 write bytes %d", h.hostBytes, h.l2WriteBytes))
	}
	if l2.Evictions > l2.FullMisses {
		panic("texsan: more evictions than full misses")
	}
	if l2.SearchSteps < l2.FullMisses {
		panic("texsan: victim searches averaged under one step")
	}
	if l2.MaxSearch > h.L2.numBlocks+1 {
		panic(fmt.Sprintf("texsan: clock march of %d exceeds %d blocks + 1", l2.MaxSearch, h.L2.numBlocks))
	}
	if h.TLB != nil {
		if h.TLB.lookups != acc {
			panic(fmt.Sprintf("texsan: %d TLB lookups != %d L2 accesses", h.TLB.lookups, acc))
		}
		if h.TLB.hits > h.TLB.lookups {
			panic("texsan: TLB hits exceed lookups")
		}
	}
}

// sanDeep is the full structural scan: weak inclusion over the shadow map
// plus the L2 page-table/BRL/free-list consistency check.
func (h *Hierarchy) sanDeep() {
	if h.L2 == nil {
		return
	}
	// Retire fills whose backing block was evicted or deallocated since
	// the last scan: their L1 lines are legally stale.
	if ev := h.L2.san.evicted; len(ev) > 0 {
		for tag, se := range h.san.shadow {
			if ev[se.pt] {
				delete(h.san.shadow, tag)
				h.san.stale[tag] = true
			}
		}
		h.L2.san.evicted = nil
	}
	// Weak inclusion: every recorded fill that survived eviction must
	// still be resident in L2 (sector bits only clear on eviction).
	for tag, se := range h.san.shadow {
		if !h.L2.Contains(se.pt, se.sub) {
			panic(fmt.Sprintf("texsan: sub-block pt=%d sub=%d backing L1 tag %#x left L2 without an eviction",
				se.pt, se.sub, tag))
		}
	}
	// Every valid L1 line must trace back to a recorded fill.
	for _, tag := range h.L1.tags {
		if tag == invalidTag {
			continue
		}
		if _, ok := h.san.shadow[tag]; !ok && !h.san.stale[tag] {
			panic(fmt.Sprintf("texsan: L1 holds tag %#x with no recorded fill", tag))
		}
	}
	h.L2.sanCheck()
}

// sanCheck verifies the L2 structures against each other: the page table
// and BRL owner array must be a bijection over allocated blocks, sector
// vectors must be non-empty exactly on allocated entries and within the
// layout's mask, the free list must hold distinct unowned blocks, and the
// clock hand must be in range.
func (c *L2Cache) sanCheck() {
	refs := make([]int32, c.numBlocks) // physical block -> page-table index + 1
	for pt := range c.table {
		e := c.table[pt]
		if e.sector&^c.fullMask != 0 {
			panic(fmt.Sprintf("texsan: pt=%d sector %#x outside layout mask %#x", pt, e.sector, c.fullMask))
		}
		if e.block == 0 {
			if e.sector != 0 {
				panic(fmt.Sprintf("texsan: pt=%d has sector bits %#x but no block", pt, e.sector))
			}
			continue
		}
		phys := int(e.block - 1)
		if phys < 0 || phys >= c.numBlocks {
			panic(fmt.Sprintf("texsan: pt=%d block handle %d out of range", pt, e.block))
		}
		if refs[phys] != 0 {
			panic(fmt.Sprintf("texsan: physical block %d owned by pt=%d and pt=%d", phys, refs[phys]-1, pt))
		}
		refs[phys] = int32(pt) + 1
		if e.sector == 0 {
			panic(fmt.Sprintf("texsan: pt=%d allocated with empty sector vector", pt))
		}
		if c.owner[phys] != int32(pt)+1 {
			panic(fmt.Sprintf("texsan: BRL owner of block %d is %d, page table says %d", phys, c.owner[phys], pt+1))
		}
	}
	for phys, o := range c.owner {
		if o == 0 {
			if refs[phys] != 0 {
				panic(fmt.Sprintf("texsan: pt=%d maps unowned block %d", refs[phys]-1, phys))
			}
		} else if refs[phys] != o {
			panic(fmt.Sprintf("texsan: BRL owner %d of block %d has no page-table backlink", o, phys))
		}
	}
	seen := make(map[int32]bool, len(c.free))
	for _, f := range c.free {
		if f < 0 || int(f) >= c.numBlocks {
			panic(fmt.Sprintf("texsan: free-list block %d out of range", f))
		}
		if c.owner[f] != 0 {
			panic(fmt.Sprintf("texsan: free-list block %d has owner %d", f, c.owner[f]))
		}
		if seen[f] {
			panic(fmt.Sprintf("texsan: free-list block %d listed twice", f))
		}
		seen[f] = true
	}
	if c.clock != nil {
		c.clock.sanCheck()
	}
}

// sanCheck verifies the clock hand stayed within the BRL.
func (p *clockPolicy) sanCheck() {
	if p.hand < 0 || p.hand >= len(p.active) {
		panic(fmt.Sprintf("texsan: clock hand %d outside [0,%d)", p.hand, len(p.active)))
	}
}
