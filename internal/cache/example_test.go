package cache_test

import (
	"fmt"

	"texcache/internal/cache"
	"texcache/internal/texture"
)

// ExampleHierarchy walks the Figure 7 control flow: an L1 miss goes to the
// L2 cache, which allocates a block (full miss), then serves the sibling
// sub-block as a partial hit and repeats as full hits.
func ExampleHierarchy() {
	l2 := cache.MustNewL2(cache.L2Config{
		SizeBytes: 16 << 10,
		Layout:    texture.TileLayout{L2Size: 16, L1Size: 4},
		Policy:    cache.Clock,
	}, 128)
	h := &cache.Hierarchy{L1: cache.MustNewL1(2048), L2: l2, TLB: cache.NewTLB(16)}

	ref := func(pt uint32, sub uint8) cache.Ref {
		return cache.Ref{
			L1:      cache.L1Ref{Tag: cache.PackTag(0, pt, uint16(sub)), Set: pt*31 + uint32(sub)},
			PTIndex: pt,
			Sub:     sub,
		}
	}
	h.Access(ref(5, 0)) // L1 miss, L2 full miss: host download
	h.Access(ref(5, 0)) // L1 hit
	h.Access(ref(5, 1)) // L1 miss, L2 partial hit: host download
	h.Access(ref(5, 1)) // L1 hit

	c := h.Counters()
	fmt.Printf("L1: %d accesses, %d misses\n", c.L1.Accesses, c.L1.Misses)
	fmt.Printf("L2: %d full, %d partial, %d miss\n",
		c.L2.FullHits, c.L2.PartialHits, c.L2.FullMisses)
	fmt.Printf("host bytes: %d\n", c.HostBytes)
	// Output:
	// L1: 4 accesses, 2 misses
	// L2: 0 full, 1 partial, 1 miss
	// host bytes: 128
}

// ExampleL2Cache_DeleteTexture shows the host-driver deallocation path of
// §5.2: releasing a texture's page-table range frees its physical blocks.
func ExampleL2Cache_DeleteTexture() {
	l2 := cache.MustNewL2(cache.L2Config{
		SizeBytes: 4 << 10,
		Layout:    texture.TileLayout{L2Size: 16, L1Size: 4},
		Policy:    cache.Clock,
	}, 64)
	l2.Access(10, 0)
	l2.Access(11, 0)
	fmt.Println("resident before:", l2.ResidentBlocks())
	l2.DeleteTexture(10, 2)
	fmt.Println("resident after:", l2.ResidentBlocks())
	// Output:
	// resident before: 2
	// resident after: 0
}
