package cache

import (
	"testing"

	"texcache/internal/texture"
)

func ref(tag uint64, set uint32, pt uint32, sub uint8) Ref {
	return Ref{L1: L1Ref{Tag: tag, Set: set}, PTIndex: pt, Sub: sub}
}

func TestHierarchyPullArchitecture(t *testing.T) {
	h := &Hierarchy{L1: MustNewL1(2048)}
	r := ref(PackTag(0, 1, 2), 3, 0, 0)
	h.Access(r) // miss: downloads one line from host
	h.Access(r) // hit: no traffic
	c := h.Counters()
	if c.HostBytes != L1LineBytes {
		t.Errorf("HostBytes = %d, want %d", c.HostBytes, L1LineBytes)
	}
	if c.L2ReadBytes != 0 || c.L2WriteBytes != 0 {
		t.Error("pull architecture recorded L2 traffic")
	}
	if c.L1.Misses != 1 || c.L1.Accesses != 2 {
		t.Errorf("L1 stats = %+v", c.L1)
	}
}

func TestHierarchyL2Traffic(t *testing.T) {
	layout := texture.TileLayout{L2Size: 16, L1Size: 4}
	l2 := MustNewL2(L2Config{SizeBytes: 16 * 1024, Layout: layout, Policy: Clock}, 64)
	h := &Hierarchy{L1: MustNewL1(2048), L2: l2}

	a := ref(PackTag(0, 5, 0), 10, 5, 0)
	h.Access(a) // L1 miss, L2 full miss: host download 64B
	c := h.Counters()
	if c.HostBytes != 64 || c.L2WriteBytes != 64 || c.L2ReadBytes != 0 {
		t.Errorf("after full miss: %+v", c)
	}

	// Conflicting L1 line in the same set twice over evicts `a` from L1
	// while it remains in L2.
	b := ref(PackTag(1, 5, 0), 10, 6, 0)
	d := ref(PackTag(2, 5, 0), 10, 7, 0)
	h.Access(b)
	h.Access(d)
	h.Access(a) // L1 miss again, but L2 full hit: local read only
	c = h.Counters()
	if c.HostBytes != 3*64 {
		t.Errorf("HostBytes = %d, want %d", c.HostBytes, 3*64)
	}
	if c.L2ReadBytes != 64 {
		t.Errorf("L2ReadBytes = %d, want 64", c.L2ReadBytes)
	}
	if c.L2.FullHits != 1 {
		t.Errorf("L2 full hits = %d, want 1", c.L2.FullHits)
	}
}

func TestHierarchyPartialHitTraffic(t *testing.T) {
	layout := texture.TileLayout{L2Size: 16, L1Size: 4}
	l2 := MustNewL2(L2Config{SizeBytes: 16 * 1024, Layout: layout, Policy: Clock}, 64)
	h := &Hierarchy{L1: MustNewL1(2048), L2: l2}

	h.Access(ref(PackTag(0, 5, 0), 1, 5, 0)) // full miss
	h.Access(ref(PackTag(0, 5, 1), 2, 5, 1)) // same L2 block, new sub: partial
	c := h.Counters()
	if c.L2.PartialHits != 1 {
		t.Errorf("partial hits = %d, want 1", c.L2.PartialHits)
	}
	if c.HostBytes != 2*64 {
		t.Errorf("HostBytes = %d, want 128", c.HostBytes)
	}
}

func TestHierarchyNoSectorMappingDownloadsWholeBlock(t *testing.T) {
	layout := texture.TileLayout{L2Size: 16, L1Size: 4} // block = 1024B
	l2 := MustNewL2(L2Config{
		SizeBytes: 16 * 1024, Layout: layout, Policy: Clock, NoSectorMapping: true,
	}, 64)
	h := &Hierarchy{L1: MustNewL1(2048), L2: l2}
	h.Access(ref(PackTag(0, 5, 0), 1, 5, 0))
	c := h.Counters()
	if c.HostBytes != 1024 {
		t.Errorf("HostBytes = %d, want 1024 (whole L2 block)", c.HostBytes)
	}
}

func TestHierarchyTLBCountsOnlyL1Misses(t *testing.T) {
	layout := texture.TileLayout{L2Size: 16, L1Size: 4}
	l2 := MustNewL2(L2Config{SizeBytes: 16 * 1024, Layout: layout, Policy: Clock}, 64)
	h := &Hierarchy{L1: MustNewL1(2048), L2: l2, TLB: NewTLB(4)}
	r := ref(PackTag(0, 5, 0), 1, 5, 0)
	h.Access(r) // L1 miss -> TLB lookup (miss)
	h.Access(r) // L1 hit -> no TLB lookup
	h.Access(r)
	c := h.Counters()
	if c.TLB.Lookups != 1 {
		t.Errorf("TLB lookups = %d, want 1", c.TLB.Lookups)
	}
}

func TestCountersSub(t *testing.T) {
	a := Counters{
		L1:        L1Stats{Accesses: 10, Misses: 2},
		L2:        L2Stats{FullHits: 5},
		TLB:       TLBStats{Lookups: 4, Hits: 3},
		HostBytes: 100, L2ReadBytes: 50, L2WriteBytes: 25,
	}
	b := Counters{
		L1:        L1Stats{Accesses: 4, Misses: 1},
		L2:        L2Stats{FullHits: 2},
		TLB:       TLBStats{Lookups: 2, Hits: 1},
		HostBytes: 60, L2ReadBytes: 20, L2WriteBytes: 5,
	}
	d := a.Sub(b)
	if d.L1.Accesses != 6 || d.L2.FullHits != 3 || d.TLB.Hits != 2 ||
		d.HostBytes != 40 || d.L2ReadBytes != 30 || d.L2WriteBytes != 20 {
		t.Errorf("Sub = %+v", d)
	}
}

func TestInclusionNotGuaranteed(t *testing.T) {
	// The paper notes (§5.3.2 footnote) that unlike processor multi-level
	// caches, inclusion is not guaranteed: an L1 block A loaded from L2
	// block B may remain in L1 after B is replaced in L2.
	layout := texture.TileLayout{L2Size: 8, L1Size: 4} // 256B blocks, 4 subs
	l2 := MustNewL2(L2Config{SizeBytes: 2 * 256, Layout: layout, Policy: Clock}, 64)
	h := &Hierarchy{L1: MustNewL1(2048), L2: l2}

	a := ref(PackTag(0, 0, 0), 1, 0, 0)
	h.Access(a) // into L1 and L2
	// Two more virtual blocks overflow the 2-block L2, evicting block 0.
	h.Access(ref(PackTag(0, 1, 0), 2, 1, 0))
	h.Access(ref(PackTag(0, 2, 0), 3, 2, 0))
	if l2.Contains(0, 0) {
		t.Fatal("block 0 unexpectedly still in L2")
	}
	if !h.L1.Contains(a.L1) {
		t.Fatal("inclusion violated in the wrong direction: L1 lost the line")
	}
	// Re-access hits L1 even though L2 evicted the parent block.
	before := h.Counters()
	h.Access(a)
	after := h.Counters()
	if after.L1.Misses != before.L1.Misses {
		t.Error("L1 re-access missed; expected a hit despite L2 eviction")
	}
}
