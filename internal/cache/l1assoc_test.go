package cache

import "testing"

func TestNewL1AssocConfigs(t *testing.T) {
	cases := []struct {
		size, ways int
		wantSets   int
	}{
		{2048, 1, 32}, // direct-mapped
		{2048, 2, 16}, // paper baseline
		{2048, 4, 8},  // 4-way
		{2048, 32, 1}, // fully associative
		{16384, 4, 64},
	}
	for _, c := range cases {
		cache, err := NewL1Assoc(c.size, c.ways)
		if err != nil {
			t.Fatalf("NewL1Assoc(%d, %d): %v", c.size, c.ways, err)
		}
		if cache.Sets() != c.wantSets || cache.Ways() != c.ways {
			t.Errorf("(%d,%d): sets=%d ways=%d, want %d/%d",
				c.size, c.ways, cache.Sets(), cache.Ways(), c.wantSets, c.ways)
		}
	}
}

func TestNewL1AssocRejects(t *testing.T) {
	bad := []struct{ size, ways int }{
		{2048, 0},
		{2048, -2},
		{2048, 3}, // 3 does not divide 32 lines
		{0, 2},
		{2048, 64}, // more ways than lines
	}
	for _, c := range bad {
		if _, err := NewL1Assoc(c.size, c.ways); err == nil {
			t.Errorf("NewL1Assoc(%d, %d) accepted", c.size, c.ways)
		}
	}
	// Edge case that IS legal: 3 lines, 3 ways = a one-set (fully
	// associative) cache.
	if _, err := NewL1Assoc(192, 3); err != nil {
		t.Errorf("NewL1Assoc(192, 3) rejected: %v", err)
	}
}

func TestFourWayHoldsFourConflicting(t *testing.T) {
	c := MustNewL1Assoc(2048, 4)
	refs := make([]L1Ref, 4)
	for i := range refs {
		refs[i] = L1Ref{Tag: PackTag(uint32(i), 0, 0), Set: 5}
		c.Access(refs[i])
	}
	for i, r := range refs {
		if !c.Contains(r) {
			t.Errorf("line %d evicted from a 4-way set holding 4 lines", i)
		}
	}
	// A fifth conflicting line evicts the LRU (refs[0]).
	c.Access(L1Ref{Tag: PackTag(9, 0, 0), Set: 5})
	if c.Contains(refs[0]) {
		t.Error("LRU line survived")
	}
	if !c.Contains(refs[1]) {
		t.Error("non-LRU line evicted")
	}
}

func TestDirectMappedConflicts(t *testing.T) {
	c := MustNewL1Assoc(2048, 1)
	a := L1Ref{Tag: PackTag(1, 0, 0), Set: 3}
	b := L1Ref{Tag: PackTag(2, 0, 0), Set: 3}
	c.Access(a)
	c.Access(b)
	if c.Contains(a) {
		t.Error("direct-mapped cache retained both conflicting lines")
	}
	// Ping-pong: every access misses.
	before := c.Stats().Misses
	c.Access(a)
	c.Access(b)
	c.Access(a)
	if got := c.Stats().Misses - before; got != 3 {
		t.Errorf("conflict misses = %d, want 3", got)
	}
}

func TestFullyAssociativeNoConflicts(t *testing.T) {
	// 8-line fully associative cache: any 8 tags coexist regardless of
	// their set hashes.
	c := MustNewL1Assoc(8*L1LineBytes, 8)
	refs := make([]L1Ref, 8)
	for i := range refs {
		refs[i] = L1Ref{Tag: PackTag(uint32(i), 7, 7), Set: uint32(i * 977)}
		c.Access(refs[i])
	}
	for i, r := range refs {
		if !c.Contains(r) {
			t.Errorf("line %d missing from fully associative cache", i)
		}
	}
}

func TestHigherAssociativityNeverHurtsOnLoopingPattern(t *testing.T) {
	// A cyclic pattern over 24 lines mapping into few sets: hit rate
	// must be non-decreasing in associativity for this LRU-friendly...
	// actually cyclic patterns are LRU-adversarial; use a working-set
	// pattern with locality instead: random walk over 20 hot lines.
	mkRefs := func() []L1Ref {
		state := uint64(12345)
		refs := make([]L1Ref, 20000)
		hot := 0
		for i := range refs {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			if state%8 == 0 {
				hot = int(state/8) % 40
			}
			line := (hot + int(state%4)) % 40
			refs[i] = L1Ref{
				Tag: PackTag(uint32(line), 0, 0),
				Set: uint32(line),
			}
		}
		return refs
	}
	rates := map[int]float64{}
	for _, ways := range []int{1, 2, 4} {
		c := MustNewL1Assoc(2048, ways)
		for _, r := range mkRefs() {
			c.Access(r)
		}
		rates[ways] = c.Stats().HitRate()
	}
	if rates[2] < rates[1]-0.02 || rates[4] < rates[2]-0.02 {
		t.Errorf("associativity hurt hit rate: %v", rates)
	}
}

func TestL1LRUAcrossManyAccesses(t *testing.T) {
	// lastUse ordering must be exact: touch a, b, c, a; fill d -> b is
	// the victim.
	c := MustNewL1Assoc(4*L1LineBytes, 4)
	mk := func(id uint32) L1Ref { return L1Ref{Tag: PackTag(id, 0, 0), Set: 0} }
	c.Access(mk(1))
	c.Access(mk(2))
	c.Access(mk(3))
	c.Access(mk(1))
	c.Access(mk(4)) // fills the remaining way
	c.Access(mk(5)) // evicts 2 (oldest use)
	if c.Contains(mk(2)) {
		t.Error("LRU line 2 survived")
	}
	for _, id := range []uint32{1, 3, 4, 5} {
		if !c.Contains(mk(id)) {
			t.Errorf("line %d missing", id)
		}
	}
}
