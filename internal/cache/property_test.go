package cache

import (
	"testing"
	"testing/quick"

	"texcache/internal/texture"
)

// TestL2InvariantsUnderRandomStreams drives the L2 cache with randomized
// access streams and checks structural invariants after every access:
// resident blocks never exceed capacity, Contains agrees with the access
// classification, and counters balance.
func TestL2InvariantsUnderRandomStreams(t *testing.T) {
	layout := texture.TileLayout{L2Size: 8, L1Size: 4} // 4 sub-blocks
	f := func(stream []uint16) bool {
		c := MustNewL2(L2Config{
			SizeBytes: 8 * 256, // 8 physical blocks
			Layout:    layout,
			Policy:    Clock,
		}, 64)
		for _, s := range stream {
			pt := uint32(s) % 64
			sub := uint8(s>>6) % 4
			wasResident := c.Contains(pt, sub)
			res := c.Access(pt, sub)
			// Classification must agree with prior residency.
			if wasResident && res != L2FullHit {
				return false
			}
			if !wasResident && res == L2FullHit {
				return false
			}
			// After any access the block is resident.
			if !c.Contains(pt, sub) {
				return false
			}
			if c.ResidentBlocks() > 8 {
				return false
			}
		}
		st := c.Stats()
		return st.Accesses() == int64(len(stream))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestL2PoliciesAgreeOnCapacityMisses: whatever the policy, the number of
// full misses for a stream touching each block exactly once must equal the
// number of distinct blocks (no spurious hits), and with capacity for the
// whole stream no evictions may occur.
func TestL2PoliciesAgreeOnCapacityMisses(t *testing.T) {
	layout := texture.TileLayout{L2Size: 8, L1Size: 4}
	for _, kind := range []PolicyKind{Clock, TrueLRU, Random} {
		c := MustNewL2(L2Config{
			SizeBytes: 64 * 256,
			Layout:    layout,
			Policy:    kind,
		}, 64)
		for pt := uint32(0); pt < 64; pt++ {
			if got := c.Access(pt, 0); got != L2FullMiss {
				t.Errorf("%v: first touch of %d = %v", kind, pt, got)
			}
		}
		st := c.Stats()
		if st.FullMisses != 64 || st.Evictions != 0 {
			t.Errorf("%v: misses %d evictions %d, want 64/0",
				kind, st.FullMisses, st.Evictions)
		}
		// Second pass: all hits, regardless of policy.
		for pt := uint32(0); pt < 64; pt++ {
			if got := c.Access(pt, 0); got != L2FullHit {
				t.Errorf("%v: second touch of %d = %v", kind, pt, got)
			}
		}
	}
}

// TestLRUNeverWorseThanRandom verifies on a looping reference pattern with
// reuse that exact LRU achieves at least as many hits as random.
func TestLRUNeverWorseThanRandom(t *testing.T) {
	layout := texture.TileLayout{L2Size: 8, L1Size: 4}
	run := func(kind PolicyKind) int64 {
		c := MustNewL2(L2Config{
			SizeBytes: 16 * 256, // 16 blocks
			Layout:    layout,
			Policy:    kind,
		}, 64)
		// A sliding window of 12 blocks with heavy reuse.
		for i := 0; i < 4000; i++ {
			base := uint32(i/200) % 40
			pt := (base + uint32(i%12)) % 64
			c.Access(pt, 0)
		}
		return c.Stats().FullHits
	}
	if lru, rnd := run(TrueLRU), run(Random); lru < rnd {
		t.Errorf("LRU hits %d < random hits %d on a reuse-heavy stream", lru, rnd)
	}
}

// TestHierarchyByteConservation: host bytes with L2 equal 64B times
// (partial hits + misses) for arbitrary streams with sector mapping.
func TestHierarchyByteConservation(t *testing.T) {
	layout := texture.TileLayout{L2Size: 16, L1Size: 4}
	f := func(stream []uint32) bool {
		l2 := MustNewL2(L2Config{
			SizeBytes: 8 << 10, Layout: layout, Policy: Clock,
		}, 256)
		h := &Hierarchy{L1: MustNewL1(2048), L2: l2}
		for _, s := range stream {
			pt := s % 256
			sub := uint8(s>>8) % 16
			h.Access(Ref{
				L1:      L1Ref{Tag: PackTag(0, pt, uint16(sub)), Set: s},
				PTIndex: pt,
				Sub:     sub,
			})
		}
		c := h.Counters()
		wantHost := (c.L2.PartialHits + c.L2.FullMisses) * L1LineBytes
		wantLocal := c.L2.FullHits * L1LineBytes
		return c.HostBytes == wantHost && c.L2ReadBytes == wantLocal &&
			c.L2WriteBytes == c.HostBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestClockEventuallyEvictsEverything: under continuous conflict pressure
// every physical block gets recycled (no starvation/leak).
func TestClockEventuallyEvictsEverything(t *testing.T) {
	layout := texture.TileLayout{L2Size: 8, L1Size: 4}
	c := MustNewL2(L2Config{
		SizeBytes: 4 * 256, Layout: layout, Policy: Clock,
	}, 1024)
	for pt := uint32(0); pt < 1024; pt++ {
		c.Access(pt, 0)
	}
	st := c.Stats()
	if st.FullMisses != 1024 {
		t.Errorf("misses = %d, want 1024 (no reuse stream)", st.FullMisses)
	}
	if st.Evictions != 1024-4 {
		t.Errorf("evictions = %d, want %d", st.Evictions, 1024-4)
	}
	if got := c.ResidentBlocks(); got != 4 {
		t.Errorf("resident = %d, want 4", got)
	}
}
