package cache

import (
	"testing"
	"testing/quick"
)

func TestNewL1Sizes(t *testing.T) {
	for _, kb := range []int{2, 4, 8, 16, 32} {
		c, err := NewL1(kb * 1024)
		if err != nil {
			t.Fatalf("NewL1(%dKB): %v", kb, err)
		}
		if got := c.SizeBytes(); got != kb*1024 {
			t.Errorf("SizeBytes = %d, want %d", got, kb*1024)
		}
		wantSets := kb * 1024 / L1LineBytes / L1Ways
		if got := c.Sets(); got != wantSets {
			t.Errorf("Sets = %d, want %d", got, wantSets)
		}
	}
}

func TestNewL1Rejects(t *testing.T) {
	for _, sz := range []int{0, 63, 100, 96, 3 * 1024} {
		if _, err := NewL1(sz); err == nil {
			t.Errorf("NewL1(%d) succeeded, want error", sz)
		}
	}
}

func TestL1HitAfterMiss(t *testing.T) {
	c := MustNewL1(2048)
	ref := L1Ref{Tag: PackTag(1, 2, 3), Set: 5}
	if c.Access(ref) {
		t.Fatal("first access hit a cold cache")
	}
	if !c.Access(ref) {
		t.Fatal("second access missed")
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 2 accesses 1 miss", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", got)
	}
	if got := s.MissRate(); got != 0.5 {
		t.Errorf("MissRate = %v, want 0.5", got)
	}
}

func TestL1TwoWayAssociativity(t *testing.T) {
	c := MustNewL1(2048)
	// Two distinct tags mapping to the same set must coexist.
	a := L1Ref{Tag: PackTag(1, 0, 0), Set: 7}
	b := L1Ref{Tag: PackTag(2, 0, 0), Set: 7}
	c.Access(a)
	c.Access(b)
	if !c.Contains(a) || !c.Contains(b) {
		t.Fatal("two tags in one set did not coexist in a 2-way cache")
	}
	// A third tag in the same set evicts the LRU line (a, since b was
	// accessed after a).
	d := L1Ref{Tag: PackTag(3, 0, 0), Set: 7}
	c.Access(d)
	if c.Contains(a) {
		t.Error("LRU line a survived a conflicting fill")
	}
	if !c.Contains(b) || !c.Contains(d) {
		t.Error("MRU line b or new line d missing")
	}
}

func TestL1LRUWithinSet(t *testing.T) {
	c := MustNewL1(2048)
	a := L1Ref{Tag: PackTag(1, 0, 0), Set: 3}
	b := L1Ref{Tag: PackTag(2, 0, 0), Set: 3}
	d := L1Ref{Tag: PackTag(3, 0, 0), Set: 3}
	c.Access(a)
	c.Access(b)
	c.Access(a) // refresh a: b is now LRU
	c.Access(d) // should evict b
	if !c.Contains(a) {
		t.Error("recently used line a was evicted")
	}
	if c.Contains(b) {
		t.Error("LRU line b survived")
	}
}

func TestL1SetMasking(t *testing.T) {
	c := MustNewL1(2048) // 16 sets
	// Set hashes beyond the set count must wrap, not fault.
	ref := L1Ref{Tag: PackTag(9, 9, 9), Set: 0xFFFFFFFF}
	c.Access(ref)
	if !c.Contains(ref) {
		t.Error("reference with large set hash not cached")
	}
	// Same tag with an aliasing set hash maps to the same set.
	alias := L1Ref{Tag: PackTag(9, 9, 9), Set: 0xFFFFFFFF & uint32(c.Sets()-1)}
	if !c.Contains(alias) {
		t.Error("masked alias not found")
	}
}

func TestL1Flush(t *testing.T) {
	c := MustNewL1(2048)
	ref := L1Ref{Tag: PackTag(1, 1, 1), Set: 1}
	c.Access(ref)
	c.Flush()
	if c.Contains(ref) {
		t.Error("line survived Flush")
	}
	if got := c.Stats().Accesses; got != 1 {
		t.Errorf("Flush cleared stats: accesses = %d", got)
	}
}

func TestL1ContainsNoSideEffects(t *testing.T) {
	c := MustNewL1(2048)
	ref := L1Ref{Tag: PackTag(1, 1, 1), Set: 1}
	c.Contains(ref)
	s := c.Stats()
	if s.Accesses != 0 || s.Misses != 0 {
		t.Errorf("Contains changed stats: %+v", s)
	}
}

func TestPackTagUniqueness(t *testing.T) {
	f := func(tid1, l21 uint32, l11 uint16, tid2, l22 uint32, l12 uint16) bool {
		tid1 &= 0xFFFF
		tid2 &= 0xFFFF
		a := PackTag(tid1, l21, l11)
		b := PackTag(tid2, l22, l12)
		same := tid1 == tid2 && l21 == l22 && l11 == l12
		return (a == b) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetHashSpreadsNeighbours(t *testing.T) {
	// A trilinear footprint touches up to four adjacent tiles in one
	// level; the 6D-blocked hash must give each a distinct set so they
	// never thrash a 2-way set.
	sets := uint32(15) // 16-set mask
	base := SetHash(10, 20, 0, 0) & sets
	seen := map[uint32]bool{base: true}
	for _, d := range [][2]int32{{1, 0}, {0, 1}, {1, 1}} {
		h := SetHash(10+d[0], 20+d[1], 0, 0) & sets
		if seen[h] {
			t.Errorf("adjacent tile (+%d,+%d) collides in set %d", d[0], d[1], h)
		}
		seen[h] = true
	}
}

func TestSetHashDistribution(t *testing.T) {
	// Hashing a dense tile region over 16 sets should use every set.
	counts := make([]int, 16)
	for u := int32(0); u < 32; u++ {
		for v := int32(0); v < 32; v++ {
			counts[SetHash(u, v, 0, 0)&15]++
		}
	}
	for set, n := range counts {
		if n == 0 {
			t.Errorf("set %d never used", set)
		}
	}
}

func TestL1StatsSub(t *testing.T) {
	a := L1Stats{Accesses: 100, Misses: 10}
	b := L1Stats{Accesses: 40, Misses: 4}
	d := a.Sub(b)
	if d.Accesses != 60 || d.Misses != 6 {
		t.Errorf("Sub = %+v", d)
	}
}

func TestL1StatsZeroRates(t *testing.T) {
	var s L1Stats
	if s.HitRate() != 0 || s.MissRate() != 0 {
		t.Error("zero stats should have zero rates")
	}
}
