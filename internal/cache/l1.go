// Package cache implements the texture cache hierarchy of Cox et al.:
// a small on-chip L1 texture cache (2-way set associative, line size equal
// to a 4x4 texel tile, after Hakura & Gupta), an L2 texture cache in
// accelerator-local DRAM organised as virtual memory (texture page table,
// block replacement list with the clock algorithm, sector mapping of L1
// sub-blocks), and a translation lookaside buffer for the page table.
//
// The package is transaction-accurate, not cycle-accurate: it models which
// blocks move between host memory, L2 and L1 and counts the bytes, matching
// the paper's simulator (§3.3).
package cache

import "fmt"

// L1LineBytes is the size of one L1 cache line: a 4x4 tile of 32-bit
// texels. The paper restricts study to lines equal to tiles (§2.3).
const L1LineBytes = 64

// L1Ways is the associativity of the L1 cache. Hakura argues 2-way
// suffices to avoid conflict misses under trilinear filtering.
const L1Ways = 2

// L1Ref is one texel reference as seen by the L1 cache: a full virtual tag
// <tid, L2, L1> (packed) plus the spatial set hash computed from the 6D
// blocked tile coordinates. The simulator precomputes both.
type L1Ref struct {
	Tag uint64 // packed canonical <tid, L2, L1>
	Set uint32 // spatial hash; the cache masks it to its set count
}

// PackTag packs the canonical virtual address into an L1 tag. The fields
// are sized generously: 16-bit tid, 32-bit L2, 16-bit L1.
//
// texlint:hotpath
func PackTag(tid uint32, l2 uint32, l1 uint16) uint64 {
	return uint64(tid)<<48 | uint64(l2)<<16 | uint64(l1)
}

// SetHash computes the L1 set index hash from tile coordinates, MIP level
// and texture id. Interleaving the low bits of the tile coordinates is the
// "6D blocked representation" placement Hakura suggests: spatially adjacent
// tiles land in distinct sets, so a bilinear/trilinear footprint never
// self-conflicts; level and texture id are folded in to spread MIP levels
// and co-rendered textures.
//
// texlint:hotpath
func SetHash(tileU, tileV int32, level uint8, tid uint32) uint32 {
	h := interleave8(uint32(tileU)&0xFF, uint32(tileV)&0xFF)
	h ^= (uint32(tileU) >> 8 * 0x9E37) ^ (uint32(tileV) >> 8 * 0x79B9)
	h += uint32(level) * 37
	h += tid * 131
	return h
}

// interleave8 interleaves the low 8 bits of a and b (Morton order).
func interleave8(a, b uint32) uint32 {
	return spread8(a) | spread8(b)<<1
}

// spread8 spaces the low 8 bits of v into the even bit positions.
func spread8(v uint32) uint32 {
	v &= 0xFF
	v = (v | v<<4) & 0x0F0F
	v = (v | v<<2) & 0x3333
	v = (v | v<<1) & 0x5555
	return v
}

// L1Stats counts L1 cache activity.
type L1Stats struct {
	Accesses int64
	Misses   int64
}

// HitRate returns the fraction of accesses that hit, or 0 with no accesses.
func (s L1Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return 1 - float64(s.Misses)/float64(s.Accesses)
}

// MissRate returns the fraction of accesses that missed.
func (s L1Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Sub subtracts an earlier snapshot, yielding the counts in between.
func (s L1Stats) Sub(o L1Stats) L1Stats {
	return L1Stats{s.Accesses - o.Accesses, s.Misses - o.Misses}
}

// L1Cache is a set-associative on-chip texture cache with line size equal
// to the 4x4 L1 tile. Tags are the full virtual address <tid, L2, L1>,
// which (with the spatial set hash) implements the 6D blocked
// representation for collision avoidance. The paper follows Hakura in
// fixing 2-way associativity (NewL1); NewL1Assoc supports direct-mapped
// through fully-associative organisations for the associativity ablation.
type L1Cache struct {
	ways    uint32
	setMask uint32
	// tags[set*ways+way]; the valid bit is folded into tags via the
	// sentinel invalidTag since a packed tag of all-ones cannot occur.
	tags []uint64
	// lastUse[line] orders lines for LRU victim selection within a set.
	lastUse []uint64
	tick    uint64
	stats   L1Stats
}

const invalidTag = ^uint64(0)

// NewL1 constructs the paper's 2-way set-associative L1 cache of the given
// total size in bytes.
func NewL1(sizeBytes int) (*L1Cache, error) {
	return NewL1Assoc(sizeBytes, L1Ways)
}

// NewL1Assoc constructs an L1 cache with the given associativity. ways
// must divide the line count, and the resulting set count must be a power
// of two; ways equal to the line count gives a fully associative cache.
func NewL1Assoc(sizeBytes, ways int) (*L1Cache, error) {
	lines := sizeBytes / L1LineBytes
	if ways <= 0 || lines <= 0 || lines%ways != 0 {
		return nil, fmt.Errorf("cache: invalid L1 size %d / ways %d", sizeBytes, ways)
	}
	sets := lines / ways
	if sets&(sets-1) != 0 || lines*L1LineBytes != sizeBytes {
		return nil, fmt.Errorf("cache: invalid L1 size %d bytes (%d sets)", sizeBytes, sets)
	}
	c := &L1Cache{
		ways:    uint32(ways),
		setMask: uint32(sets - 1),
		tags:    make([]uint64, lines),
		lastUse: make([]uint64, lines),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c, nil
}

// MustNewL1 is NewL1 but panics on error.
func MustNewL1(sizeBytes int) *L1Cache {
	c, err := NewL1(sizeBytes)
	if err != nil {
		panic(err)
	}
	return c
}

// MustNewL1Assoc is NewL1Assoc but panics on error.
func MustNewL1Assoc(sizeBytes, ways int) *L1Cache {
	c, err := NewL1Assoc(sizeBytes, ways)
	if err != nil {
		panic(err)
	}
	return c
}

// Sets returns the number of sets.
func (c *L1Cache) Sets() int { return int(c.setMask) + 1 }

// Ways returns the associativity.
func (c *L1Cache) Ways() int { return int(c.ways) }

// SizeBytes returns the cache capacity.
func (c *L1Cache) SizeBytes() int { return len(c.tags) * L1LineBytes }

// Access looks up the reference, returning true on a hit. On a miss, the
// LRU line of the set is filled (the caller is responsible for modelling
// where the fill data came from).
//
// texlint:hotpath
func (c *L1Cache) Access(ref L1Ref) bool {
	c.stats.Accesses++
	c.tick++
	base := (ref.Set & c.setMask) * c.ways
	victim := base
	oldest := c.lastUse[base]
	for w := uint32(0); w < c.ways; w++ {
		line := base + w
		if c.tags[line] == ref.Tag {
			c.lastUse[line] = c.tick
			return true
		}
		if c.lastUse[line] < oldest {
			oldest = c.lastUse[line]
			victim = line
		}
	}
	c.stats.Misses++
	c.tags[victim] = ref.Tag
	c.lastUse[victim] = c.tick
	return false
}

// Contains reports whether the reference is resident without touching LRU
// state or statistics.
func (c *L1Cache) Contains(ref L1Ref) bool {
	base := (ref.Set & c.setMask) * c.ways
	for w := uint32(0); w < c.ways; w++ {
		if c.tags[base+w] == ref.Tag {
			return true
		}
	}
	return false
}

// Flush invalidates every line. Statistics are preserved.
func (c *L1Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
}

// Stats returns a snapshot of the counters.
func (c *L1Cache) Stats() L1Stats { return c.stats }
