package cache

// Ref is one texel reference with every address precomputed: the canonical
// L1 tag and set hash, plus the page-table index and sub-block number under
// the simulated L2 layout. The rasterizer-side translation produces these
// in a small number of shifts, adds and table lookups (§2.2).
type Ref struct {
	L1      L1Ref
	PTIndex uint32
	Sub     uint8
}

// Counters aggregates the hierarchy's activity. Byte counts model the
// traffic of Figure 7: HostBytes crosses AGP/system memory (the pull
// architecture's scarce resource), L2WriteBytes is host->L2 downloads and
// L2ReadBytes is L2->L1 fills, both absorbed by accelerator-local memory.
type Counters struct {
	L1           L1Stats
	L2           L2Stats
	TLB          TLBStats
	HostBytes    int64
	L2ReadBytes  int64
	L2WriteBytes int64
}

// Sub subtracts an earlier snapshot, yielding activity in between.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		L1: c.L1.Sub(o.L1),
		L2: c.L2.Sub(o.L2),
		TLB: TLBStats{
			Lookups: c.TLB.Lookups - o.TLB.Lookups,
			Hits:    c.TLB.Hits - o.TLB.Hits,
		},
		HostBytes:    c.HostBytes - o.HostBytes,
		L2ReadBytes:  c.L2ReadBytes - o.L2ReadBytes,
		L2WriteBytes: c.L2WriteBytes - o.L2WriteBytes,
	}
}

// Hierarchy composes the texture cache levels. With L2 == nil it models the
// pull architecture (L1 misses download directly from system memory); with
// an L2 it models the paper's proposed architecture. TLB is optional and
// only gathers statistics — it does not change transaction behaviour.
type Hierarchy struct {
	L1  *L1Cache
	L2  *L2Cache
	TLB *TLB

	hostBytes    int64
	l2ReadBytes  int64
	l2WriteBytes int64

	// san is the texsan invariant sanitizer; empty unless built with
	// -tags texsan (see sanitize_on.go).
	san sanState
}

// Access runs one texel reference through the hierarchy, following the
// control flow of Figure 7, and accounts the bytes moved.
//
// texlint:hotpath
func (h *Hierarchy) Access(ref Ref) {
	hit := h.L1.Access(ref.L1)
	if !hit {
		h.accessMiss(ref)
	}
	if sanitizing {
		h.sanAccess(ref, hit)
	}
}

// accessMiss services an L1 miss: a host download under the pull
// architecture, otherwise an L2 access with Figure 7's byte accounting.
//
// texlint:hotpath
func (h *Hierarchy) accessMiss(ref Ref) {
	if h.L2 == nil {
		// Pull architecture: download the L1 tile from system memory.
		h.hostBytes += L1LineBytes
		return
	}
	if h.TLB != nil {
		h.TLB.Lookup(ref.PTIndex)
	}
	switch h.L2.Access(ref.PTIndex, ref.Sub) {
	case L2FullHit:
		// Load the L1 sub-block from L2 cache memory into L1.
		h.l2ReadBytes += L1LineBytes
	case L2PartialHit, L2FullMiss:
		// Download from system memory into L2 and, in parallel, into
		// L1 (step F removes the latency of a second hop).
		dl := int64(L1LineBytes)
		if h.L2.Config().NoSectorMapping {
			dl = int64(h.L2.Config().Layout.L2BlockBytes())
		}
		h.hostBytes += dl
		h.l2WriteBytes += dl
	}
}

// Counters returns a snapshot of all counters.
func (h *Hierarchy) Counters() Counters {
	c := Counters{
		L1:           h.L1.Stats(),
		HostBytes:    h.hostBytes,
		L2ReadBytes:  h.l2ReadBytes,
		L2WriteBytes: h.l2WriteBytes,
	}
	if h.L2 != nil {
		c.L2 = h.L2.Stats()
	}
	if h.TLB != nil {
		c.TLB = h.TLB.Stats()
	}
	return c
}
