//go:build !texsan

package cache

// This file is the disabled half of the texsan runtime sanitizer; the
// sanitizer proper lives in sanitize_on.go behind the texsan build tag
// (go test -tags texsan ./...). In normal builds every hook below is an
// empty method on an empty struct, the sanitizing guard is a false
// constant, and the hierarchy's hot path pays nothing.

// sanitizing reports whether the texsan invariant sanitizer is compiled in.
const sanitizing = false

// sanState holds the hierarchy-level sanitizer state; empty when disabled.
type sanState struct{}

// sanAccess is the per-access invariant hook; a no-op when disabled.
func (h *Hierarchy) sanAccess(ref Ref, l1Hit bool) {}

// l2San holds the L2-level sanitizer state; empty when disabled.
type l2San struct{}

// noteEvict records a block eviction or deallocation; a no-op when disabled.
func (s *l2San) noteEvict(pt uint32) {}

// clone copies the (empty) sanitizer state for checkpointing.
func (s sanState) clone() sanState { return sanState{} }

// clone copies the (empty) pending-eviction set for checkpointing.
func (s l2San) clone() l2San { return l2San{} }
