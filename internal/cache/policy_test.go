package cache

import (
	"testing"
	"testing/quick"
)

func TestPolicyKindString(t *testing.T) {
	if Clock.String() != "clock" || TrueLRU.String() != "lru" || Random.String() != "random" {
		t.Error("unexpected policy names")
	}
}

func TestClockSecondChance(t *testing.T) {
	p := newClockPolicy(4)
	// Touch 0 and 1; hand at 0. Victim search clears 0, 1 and lands on 2.
	p.Touch(0)
	p.Touch(1)
	v, searched := p.Victim()
	if v != 2 {
		t.Errorf("victim = %d, want 2", v)
	}
	if searched != 3 {
		t.Errorf("searched = %d, want 3", searched)
	}
	// Next victim continues from the hand (3, inactive).
	v, _ = p.Victim()
	if v != 3 {
		t.Errorf("second victim = %d, want 3", v)
	}
}

func TestClockAllActiveTerminates(t *testing.T) {
	p := newClockPolicy(8)
	for i := 0; i < 8; i++ {
		p.Touch(i)
	}
	v, searched := p.Victim()
	// With every bit set the hand clears a full revolution and evicts
	// where it started.
	if v != 0 {
		t.Errorf("victim = %d, want 0", v)
	}
	if searched != 9 {
		t.Errorf("searched = %d, want 9", searched)
	}
}

func TestClockBoundedSearch(t *testing.T) {
	// Property: a victim search never exceeds n+1 steps.
	p := newClockPolicy(16)
	f := func(touches []uint8) bool {
		for _, b := range touches {
			p.Touch(int(b) % 16)
		}
		_, searched := p.Victim()
		return searched <= 17
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLRUExactOrder(t *testing.T) {
	p := newLRUPolicy(4)
	p.Touch(2)
	p.Touch(0)
	p.Touch(3)
	p.Touch(1)
	// LRU order is now 2, 0, 3, 1 (least to most recent).
	for _, want := range []int{2, 0, 3, 1} {
		v, searched := p.Victim()
		if v != want {
			t.Fatalf("victim = %d, want %d", v, want)
		}
		if searched != 1 {
			t.Errorf("LRU search cost = %d, want 1", searched)
		}
		p.Touch(v) // simulate reallocation to keep order deterministic
	}
}

func TestLRURefreshPreventsEviction(t *testing.T) {
	p := newLRUPolicy(3)
	p.Touch(0)
	p.Touch(1)
	p.Touch(2)
	p.Touch(0) // refresh 0: LRU is now 1
	v, _ := p.Victim()
	if v != 1 {
		t.Errorf("victim = %d, want 1", v)
	}
}

func TestLRUReset(t *testing.T) {
	p := newLRUPolicy(3)
	p.Touch(0)
	p.Touch(1)
	p.Touch(2)
	p.Reset(2) // deallocate most recent: becomes preferred victim
	v, _ := p.Victim()
	if v != 2 {
		t.Errorf("victim = %d, want 2", v)
	}
}

func TestLRUAgainstReferenceModel(t *testing.T) {
	// Drive the linked-list LRU and a simple slice-based reference model
	// with the same access stream; victims must agree.
	const n = 8
	p := newLRUPolicy(n)
	ref := make([]int, n) // ref[0] = least recent
	for i := range ref {
		ref[i] = i
	}
	refTouch := func(b int) {
		for i, v := range ref {
			if v == b {
				copy(ref[i:], ref[i+1:])
				ref[n-1] = b
				return
			}
		}
	}
	stream := []int{3, 1, 4, 1, 5, 2, 6, 5, 3, 7, 0, 0, 2, 4, 6, 1, 3}
	for _, b := range stream {
		p.Touch(b)
		refTouch(b)
	}
	for i := 0; i < n; i++ {
		v, _ := p.Victim()
		if v != ref[0] {
			t.Fatalf("victim %d = %d, reference says %d", i, v, ref[0])
		}
		p.Touch(v)
		refTouch(v)
	}
}

func TestRandomPolicyInRangeAndDeterministic(t *testing.T) {
	a := newRandomPolicy(7)
	b := newRandomPolicy(7)
	for i := 0; i < 100; i++ {
		va, _ := a.Victim()
		vb, _ := b.Victim()
		if va != vb {
			t.Fatal("random policy not deterministic across instances")
		}
		if va < 0 || va >= 7 {
			t.Fatalf("victim %d out of range", va)
		}
	}
}

func TestNewPolicyDispatch(t *testing.T) {
	if NewPolicy(Clock, 4).Name() != "clock" {
		t.Error("Clock dispatch")
	}
	if NewPolicy(TrueLRU, 4).Name() != "lru" {
		t.Error("TrueLRU dispatch")
	}
	if NewPolicy(Random, 4).Name() != "random" {
		t.Error("Random dispatch")
	}
}
