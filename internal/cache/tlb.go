package cache

// TLB is the texture page table translation lookaside buffer of §5.4.3: a
// small fully-associative buffer of recently used page-table entries with
// round-robin replacement. Because page tables live in the same external
// DRAM as L2 cache blocks, a TLB hit avoids a DRAM access on the L1-miss
// path; the paper shows 16 entries capture >90% of lookups.
type TLB struct {
	entries []uint32
	next    int
	hot     int
	lookups int64
	hits    int64
}

// tlbInvalid marks an empty TLB slot; page-table indices are far smaller.
const tlbInvalid = ^uint32(0)

// NewTLB constructs a TLB with n entries. n == 0 disables the TLB (every
// Lookup misses).
func NewTLB(n int) *TLB {
	t := &TLB{entries: make([]uint32, n)}
	for i := range t.entries {
		t.entries[i] = tlbInvalid
	}
	return t
}

// Entries returns the TLB capacity.
func (t *TLB) Entries() int { return len(t.entries) }

// Lookup checks whether the page-table index is cached, inserting it with
// round-robin replacement on a miss. It returns true on a hit.
//
// The hot index remembers the most recently touched slot and is probed
// before the associative scan. Texel streams revisit the same page many
// times in a row, so most hits resolve on that single compare. The probe
// is strictly non-mutating — membership and the round-robin victim
// pointer are exactly those of the plain scan — so hit/miss counters are
// bit-identical with or without it (pinned by TestTLBGoldenCounters and
// checked against the reference model in TestTLBMatchesReferenceModel).
//
// texlint:hotpath
func (t *TLB) Lookup(ptIndex uint32) bool {
	t.lookups++
	n := len(t.entries)
	if n == 0 {
		return false
	}
	if t.entries[t.hot] == ptIndex {
		t.hits++
		return true
	}
	for i, e := range t.entries {
		if e == ptIndex {
			t.hits++
			t.hot = i
			return true
		}
	}
	t.entries[t.next] = ptIndex
	t.hot = t.next
	t.next++
	if t.next == n {
		t.next = 0
	}
	return false
}

// Invalidate drops any cached translation for the page-table range
// [tstart, tstart+tlen), mirroring texture deallocation.
func (t *TLB) Invalidate(tstart, tlen uint32) {
	for i, e := range t.entries {
		if e != tlbInvalid && e >= tstart && e < tstart+tlen {
			t.entries[i] = tlbInvalid
		}
	}
}

// TLBStats reports lookup counters.
type TLBStats struct {
	Lookups int64
	Hits    int64
}

// HitRate returns hits as a fraction of lookups.
func (s TLBStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Stats returns a snapshot of the counters.
func (t *TLB) Stats() TLBStats { return TLBStats{t.lookups, t.hits} }
