package experiments

import (
	"texcache/internal/core"
	"texcache/internal/push"
	"texcache/internal/raster"
)

// Push measures the push architecture with a real texture-memory manager
// (first-fit segments, LRU whole-texture replacement, compaction) across
// local memory sizes, completing the three-way comparison of Figure 1:
// the paper bounds push behaviour analytically; this experiment runs it.
func (c *Context) Push() error {
	c.header("Extension: measured push architecture (whole-texture manager, trilinear)")
	c.printf("%-10s %10s %14s %10s %12s %12s %10s\n",
		"workload", "local MB", "DL MB/frame", "downloads", "evictions",
		"compactions", "failures")
	for _, name := range []string{"village", "city"} {
		for _, mb := range []int{4, 8, 16, 32} {
			render := core.Config{
				Width:  c.Scale.Width,
				Height: c.Scale.Height,
				Frames: c.frames(name),
				Mode:   raster.Trilinear,
			}
			res, err := core.RunPush(c.workloadByName(name), render,
				push.Config{LocalBytes: int64(mb) << 20})
			if err != nil {
				return err
			}
			st := res.Totals
			c.printf("%-10s %10d %14.3f %10d %12d %12d %10d\n",
				name, mb, res.AvgDownloadMBPerFrame(),
				st.Downloads, st.Evictions, st.Compactions, st.Failures)
		}
		// Reference: the L2 architecture's bandwidth with 2 MB of local
		// memory on the same reference stream.
		cmp, err := c.sweep(name, raster.Trilinear)
		if err != nil {
			return err
		}
		c.printf("%-10s %10s %14.3f  <- 2KB L1 + 2MB L2 (block granularity)\n",
			name, "L2: 2", specResult(cmp, "l2-2m").AvgHostMBPerFrame())
	}
	c.printf("\nWith enough local memory the push architecture's steady-state bandwidth\n")
	c.printf("is low (only new textures download), but it needs several times the L2\n")
	c.printf("cache's memory to get there, downloads whole textures on any miss, and\n")
	c.printf("the application pays the bin-packing cost (evictions + compactions).\n")
	c.printf("Undersized local memory thrashes catastrophically — the capacity wall\n")
	c.printf("the pull architecture was invented to avoid (§1).\n")
	return nil
}
