package experiments

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func TestExportCSV(t *testing.T) {
	c := ctx(t)
	dir := t.TempDir()
	if err := c.ExportCSV(dir); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"fig3.csv",
		"fig4-village.csv", "fig4-city.csv",
		"fig5-village.csv", "fig5-city.csv",
		"fig6-village.csv", "fig6-city.csv",
		"fig9-village.csv",
		"fig10-village.csv", "fig10-city.csv",
		"fig11-village.csv", "fig11-city.csv",
	}
	for _, name := range want {
		path := filepath.Join(dir, name)
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("%s missing: %v", name, err)
		}
		rows, err := csv.NewReader(f).ReadAll()
		f.Close()
		if err != nil {
			t.Fatalf("%s unreadable: %v", name, err)
		}
		if len(rows) < 2 {
			t.Fatalf("%s has no data rows", name)
		}
		// Every row matches the header width.
		for i, r := range rows {
			if len(r) != len(rows[0]) {
				t.Fatalf("%s row %d has %d fields, want %d",
					name, i, len(r), len(rows[0]))
			}
		}
	}

	// Spot-check fig10: per-frame host bytes for the pull config must be
	// positive and larger than for the 2MB L2 config in aggregate.
	f, _ := os.Open(filepath.Join(dir, "fig10-village.csv"))
	rows, _ := csv.NewReader(f).ReadAll()
	f.Close()
	var pull, l2 int64
	for _, r := range rows[1:] {
		p, _ := strconv.ParseInt(r[2], 10, 64) // pull-2k column
		q, _ := strconv.ParseInt(r[3], 10, 64) // l2-2m column
		pull += p
		l2 += q
	}
	if pull <= l2 || pull == 0 {
		t.Errorf("fig10 aggregate: pull %d vs l2 %d", pull, l2)
	}
}
