package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"texcache/internal/raster"
)

// Prefetch computes the memoized simulation runs that the experiments
// share — the three point-sampled statistics runs and the six
// workload-by-filter cache sweeps — concurrently, bounded by `parallel`
// goroutines (0 means GOMAXPROCS). Each run builds its own workload so the
// scenes never race; the memo maps are filled under a mutex once the runs
// complete. Subsequent experiment calls hit the memos and print instantly.
func (c *Context) Prefetch(parallel int) error {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	type statsJob struct{ name string }
	type sweepJob struct {
		name string
		mode raster.SampleMode
	}
	var jobs []any
	for _, name := range []string{"village", "city", "mall"} {
		jobs = append(jobs, statsJob{name})
		for _, mode := range []raster.SampleMode{raster.Bilinear, raster.Trilinear} {
			jobs = append(jobs, sweepJob{name, mode})
		}
	}

	var (
		mu    sync.Mutex
		wg    sync.WaitGroup
		sem   = make(chan struct{}, parallel)
		first error
	)
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if first == nil {
			first = err
		}
	}
	for _, job := range jobs {
		// Skip work that is already memoized.
		mu.Lock()
		switch j := job.(type) {
		case statsJob:
			if _, ok := c.statsRuns[j.name]; ok {
				mu.Unlock()
				continue
			}
		case sweepJob:
			if _, ok := c.cmpRuns[fmt.Sprintf("%s/%s", j.name, j.mode)]; ok {
				mu.Unlock()
				continue
			}
		}
		mu.Unlock()

		wg.Add(1)
		go func(job any) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// An isolated context computes the run against its own
			// workload instance (scene graphs are not goroutine-safe
			// to share across concurrent renders of different runs).
			iso := NewContext(c.Scale, c.Out)
			switch j := job.(type) {
			case statsJob:
				r, err := iso.statsRun(j.name)
				if err != nil {
					fail(err)
					return
				}
				mu.Lock()
				c.statsRuns[j.name] = r
				if _, ok := c.workloads[j.name]; !ok {
					c.workloads[j.name] = iso.workloads[j.name]
				}
				mu.Unlock()
			case sweepJob:
				r, err := iso.sweep(j.name, j.mode)
				if err != nil {
					fail(err)
					return
				}
				mu.Lock()
				c.cmpRuns[fmt.Sprintf("%s/%s", j.name, j.mode)] = r
				if _, ok := c.workloads[j.name]; !ok {
					c.workloads[j.name] = iso.workloads[j.name]
				}
				mu.Unlock()
			}
		}(job)
	}
	wg.Wait()
	return first
}
